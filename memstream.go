// Package memstream is a library for planning and simulating streaming
// media servers that use MEMS-based storage as a disk buffer or content
// cache, reproducing "MEMS-based Disk Buffer for Streaming Media Servers"
// (Rangaswami, Dimitrijević, Chang, Schauser — ICDE 2003).
//
// The package exposes three layers:
//
//   - Device catalogs: the paper's 2007 FutureDisk, the CMU G1–G3 MEMS
//     generations, and a 2002 Atlas 10K III, as plain parameter structs.
//   - The analytical planner: closed-form minimum DRAM buffer sizes and
//     buffering costs for direct, MEMS-buffered and MEMS-cached servers
//     (the paper's Theorems 1–4 and cost model).
//   - A discrete-event simulator that executes the planned schedules on
//     full disk/MEMS device models and reports underflows, utilization
//     and actual memory occupancy.
//
// Quantities use float64 bytes and bytes-per-second plus time.Duration,
// so the public API has no dependency on internal unit types.
package memstream

import (
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/tier"
	"memstream/internal/units"
)

// StorageDevice describes a device for planning purposes.
type StorageDevice struct {
	Name string
	// RateBytesPerSec is the sustained media transfer rate R_d.
	RateBytesPerSec float64
	// AvgLatency is the expected per-IO positioning overhead.
	AvgLatency time.Duration
	// MaxLatency is the worst-case per-IO positioning overhead. The paper
	// charges MEMS IOs this value.
	MaxLatency time.Duration
	// CapacityBytes is the device capacity.
	CapacityBytes float64
	// CostPerGB and CostPerDevice price the device.
	CostPerGB     float64
	CostPerDevice float64
}

// FutureDisk returns the paper's projected 2007 drive (Table 3).
func FutureDisk() StorageDevice { return fromDisk(disk.FutureDisk()) }

// Atlas10K3 returns the 2002 Maxtor Atlas 10K III approximation.
func Atlas10K3() StorageDevice { return fromDisk(disk.Atlas10K3()) }

// G3MEMS returns the third-generation CMU MEMS device (Table 3).
func G3MEMS() StorageDevice { return fromTier(tier.MustLookup("mems-g3")) }

// G2MEMS returns the interpolated second-generation MEMS device.
func G2MEMS() StorageDevice { return fromTier(tier.MustLookup("mems-g2")) }

// G1MEMS returns the interpolated first-generation MEMS device.
func G1MEMS() StorageDevice { return fromTier(tier.MustLookup("mems-g1")) }

// Tier returns a built-in middle-tier parameter set by registry name
// (e.g. "mems-g3", "nvm-optane", "ssd-sata"); unknown names error with
// the available sets.
func Tier(name string) (StorageDevice, error) {
	s, err := tier.Lookup(name)
	if err != nil {
		return StorageDevice{}, err
	}
	return fromTier(s), nil
}

// TierNames lists the built-in middle-tier parameter sets.
func TierNames() []string { return tier.Names() }

func fromDisk(p disk.Params) StorageDevice {
	return StorageDevice{
		Name:            p.Name,
		RateBytesPerSec: float64(p.OuterRate),
		AvgLatency:      p.AvgAccess(),
		MaxLatency:      p.MaxAccess(),
		CapacityBytes:   float64(p.Capacity),
		CostPerGB:       float64(p.CostPerGB),
		CostPerDevice:   float64(p.CostPerDev),
	}
}

func fromTier(s tier.Spec) StorageDevice {
	name := s.Name
	if s.MEMS != nil {
		name = s.MEMS.Name // keep the published device names, e.g. "G3 MEMS"
	}
	return StorageDevice{
		Name:            name,
		RateBytesPerSec: float64(s.Rate),
		AvgLatency:      s.AvgLatency,
		MaxLatency:      s.MaxLatency,
		CapacityBytes:   float64(s.Capacity),
		CostPerGB:       float64(s.CostPerGB),
		CostPerDevice:   float64(s.CostPerDev),
	}
}

// spec converts a device to the model's spec under the paper's latency
// convention: disks plan at average latency, MEMS at maximum.
func (d StorageDevice) diskSpec() model.DeviceSpec {
	return model.DeviceSpec{Rate: units.ByteRate(d.RateBytesPerSec), Latency: d.AvgLatency}
}

func (d StorageDevice) memsSpec() model.DeviceSpec {
	return model.DeviceSpec{Rate: units.ByteRate(d.RateBytesPerSec), Latency: d.MaxLatency}
}

// Load is the stream population a server must sustain: N concurrent
// constant-bit-rate streams averaging BitRate bytes per second.
type Load struct {
	Streams int
	BitRate float64
}

func (l Load) toModel() model.StreamLoad {
	return model.StreamLoad{N: l.Streams, BitRate: units.ByteRate(l.BitRate)}
}

// Plan is a feasible time-cycle schedule with its buffer sizing.
type Plan struct {
	// Cycle is the IO cycle length T.
	Cycle time.Duration
	// PerStreamBytes is the minimum per-stream DRAM buffer S.
	PerStreamBytes float64
	// TotalDRAMBytes is N·S.
	TotalDRAMBytes float64
	// IOBytes is the device IO size per stream per cycle.
	IOBytes float64
}

func fromDirect(p model.DirectPlan) Plan {
	return Plan{
		Cycle:          p.Cycle,
		PerStreamBytes: float64(p.PerStream),
		TotalDRAMBytes: float64(p.TotalDRAM),
		IOBytes:        float64(p.IOSize),
	}
}

// PlanDirect sizes a direct disk→DRAM server (Theorem 1 / Eq 3).
func PlanDirect(load Load, dsk StorageDevice) (Plan, error) {
	p, err := model.DiskDirect(load.toModel(), dsk.diskSpec())
	if err != nil {
		return Plan{}, err
	}
	return fromDirect(p), nil
}

// BufferPlan is the sizing of a MEMS-buffered server (Theorem 2).
type BufferPlan struct {
	Plan
	// DiskCycle and MEMSCycle are the two IO cycles T_disk and T_mems.
	DiskCycle time.Duration
	MEMSCycle time.Duration
	// M is the number of disk transfers per MEMS IO cycle (Eq 8).
	M int
	// DiskIOBytes is the large staged IO size S_disk-mems.
	DiskIOBytes float64
	// MEMSBufferBytes is the staged data held across the bank.
	MEMSBufferBytes float64
}

// PlanMEMSBuffer sizes a server that stages disk IOs through a bank of k
// MEMS devices (Theorem 2 / Eq 5–8).
func PlanMEMSBuffer(load Load, dsk, mem StorageDevice, k int) (BufferPlan, error) {
	cfg := model.BufferConfig{
		Load:          load.toModel(),
		Disk:          dsk.diskSpec(),
		Tier:          mem.memsSpec(),
		K:             k,
		SizePerDevice: units.Bytes(mem.CapacityBytes),
	}
	p, err := model.BufferPlan(cfg)
	if err != nil {
		return BufferPlan{}, err
	}
	return BufferPlan{
		Plan: Plan{
			Cycle:          p.MEMSCycle,
			PerStreamBytes: float64(p.PerStreamDRAM),
			TotalDRAMBytes: float64(p.TotalDRAM),
			IOBytes:        float64(p.PerStreamDRAM),
		},
		DiskCycle:       p.DiskCycle,
		MEMSCycle:       p.MEMSCycle,
		M:               p.M,
		DiskIOBytes:     float64(p.DiskIOSize),
		MEMSBufferBytes: float64(p.MEMSBufferUse),
	}, nil
}

// CachePolicy selects how cached content is spread over the bank.
type CachePolicy = model.CachePolicy

// Cache-management policies (paper §3.2).
const (
	Striped    = model.Striped
	Replicated = model.Replicated
)

// CachePlan is the sizing of a MEMS-cached server.
type CachePlan struct {
	// HitRatio is Eq 11's h for the configuration.
	HitRatio float64
	// FromCache and FromDisk split the population.
	FromCache, FromDisk int
	// CacheSide and DiskSide size each group's buffers.
	CacheSide, DiskSide Plan
	// TotalDRAMBytes combines both sides.
	TotalDRAMBytes float64
}

// PlanMEMSCache sizes a server that pins popular content on a k-device
// MEMS cache (Theorems 3–4, Eq 9–11). contentBytes is the catalog
// footprint Size_disk, and x:y is the popularity distribution ("x% of
// titles draw y% of accesses").
func PlanMEMSCache(load Load, dsk, mem StorageDevice, k int, policy CachePolicy,
	contentBytes, x, y float64) (CachePlan, error) {

	cfg := model.CacheConfig{
		Load:          load.toModel(),
		Disk:          dsk.diskSpec(),
		Tier:          mem.memsSpec(),
		K:             k,
		Policy:        policy,
		SizePerDevice: units.Bytes(mem.CapacityBytes),
		ContentSize:   units.Bytes(contentBytes),
		X:             x,
		Y:             y,
	}
	p, err := model.CachePlan(cfg)
	if err != nil {
		return CachePlan{}, err
	}
	return CachePlan{
		HitRatio:       p.HitRatio,
		FromCache:      p.FromCache,
		FromDisk:       p.FromDisk,
		CacheSide:      fromDirect(p.CacheSide),
		DiskSide:       fromDirect(p.DiskSide),
		TotalDRAMBytes: float64(p.TotalDRAM),
	}, nil
}

// HitRatio evaluates the paper's Eq 11: the cache hit ratio under an X:Y
// popularity distribution when the fraction p of the content is cached.
func HitRatio(x, y, p float64) (float64, error) {
	return model.HitRatio(x, y, p)
}

// MaxStreams returns the largest stream count a direct server sustains
// with at most dramBytes of DRAM (0 = unlimited).
func MaxStreams(bitRate float64, dsk StorageDevice, dramBytes float64) int {
	return model.MaxStreamsDirect(units.ByteRate(bitRate), dsk.diskSpec(), units.Bytes(dramBytes))
}

// MaxStreamsWithCache returns the largest stream count a cache-equipped
// server sustains with at most dramBytes of DRAM.
func MaxStreamsWithCache(bitRate float64, dsk, mem StorageDevice, k int,
	policy CachePolicy, contentBytes, x, y, dramBytes float64) int {

	cfg := model.CacheConfig{
		Load:          model.StreamLoad{N: 1, BitRate: units.ByteRate(bitRate)},
		Disk:          dsk.diskSpec(),
		Tier:          mem.memsSpec(),
		K:             k,
		Policy:        policy,
		SizePerDevice: units.Bytes(mem.CapacityBytes),
		ContentSize:   units.Bytes(contentBytes),
		X:             x,
		Y:             y,
	}
	return model.MaxStreamsCached(cfg, units.Bytes(dramBytes))
}

// Costs carries the buffering price points ($/GB for DRAM and MEMS, plus
// the per-device MEMS capacity used by the per-device price model).
type Costs struct {
	DRAMPerGB    float64
	MEMSPerGB    float64
	MEMSDeviceGB float64
}

// DefaultCosts returns the paper's Table 3 price points.
func DefaultCosts() Costs {
	return Costs{DRAMPerGB: 20, MEMSPerGB: 1, MEMSDeviceGB: 10}
}

func (c Costs) toModel() model.CostModel {
	return model.NewCostModel(
		units.Dollars(c.DRAMPerGB),
		units.Dollars(c.MEMSPerGB),
		units.Bytes(c.MEMSDeviceGB*1e9),
	)
}

// BufferingCost prices a direct server's DRAM (Eq 1) in dollars.
func BufferingCost(load Load, dsk StorageDevice, costs Costs) (float64, error) {
	d, err := model.CostWithoutMEMS(load.toModel(), dsk.diskSpec(), costs.toModel())
	return float64(d), err
}

// BufferedCost prices a MEMS-buffered server (Eq 2) in dollars.
func BufferedCost(load Load, dsk, mem StorageDevice, k int, costs Costs) (float64, error) {
	cfg := model.BufferConfig{
		Load:          load.toModel(),
		Disk:          dsk.diskSpec(),
		Tier:          mem.memsSpec(),
		K:             k,
		SizePerDevice: units.Bytes(mem.CapacityBytes),
	}
	d, err := model.CostWithBuffer(cfg, costs.toModel())
	return float64(d), err
}
