#!/bin/sh
# bench.sh — record one point on the kernel performance trajectory.
#
# Runs the internal/sim microbenchmark suite and a full experiment suite,
# then emits BENCH_<n>.json (n = first unused index, so the checked-in
# files form an append-only trajectory):
#
#   {
#     "schema": "bench/v1",
#     "recorded": "<UTC timestamp>",
#     "go": "<toolchain>",
#     "microbench": [ {"name", "ns_per_op", "bytes_per_op", "allocs_per_op"} ],
#     "experiments": [ {"id", "wall_ns", "events", "events_per_sec"} ]
#   }
#
# Knobs (environment):
#   BENCH_DIR      output directory (default: repo root)
#   BENCH_PATTERN  -bench regexp for the microbenchmarks (default: .)
#   BENCH_TIME     -benchtime (default: 1s)
set -eu

cd "$(dirname "$0")/.."

OUT_DIR="${BENCH_DIR:-.}"
n=0
while [ -e "$OUT_DIR/BENCH_${n}.json" ]; do n=$((n + 1)); done
OUT="$OUT_DIR/BENCH_${n}.json"

TMP_BENCH="$(mktemp)"
TMP_PERF="$(mktemp)"
TMP_ART="$(mktemp -d)"
trap 'rm -rf "$TMP_BENCH" "$TMP_PERF" "$TMP_ART"' EXIT

echo "bench: internal/sim microbenchmarks" >&2
go test -run '^$' -bench "${BENCH_PATTERN:-.}" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" ./internal/sim/ | tee "$TMP_BENCH" >&2

echo "bench: experiment suite (memsbench -perf)" >&2
go run ./cmd/memsbench -parallel 1 -perf "$TMP_PERF" -out "$TMP_ART" >/dev/null

{
    printf '{\n'
    printf '  "schema": "bench/v1",\n'
    printf '  "recorded": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "microbench": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = "null"; bytes = "null"; allocs = "null"
            for (i = 2; i < NF; i++) {
                if ($(i + 1) == "ns/op") ns = $i
                if ($(i + 1) == "B/op") bytes = $i
                if ($(i + 1) == "allocs/op") allocs = $i
            }
            if (count++) printf(",\n")
            printf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs)
        }
        END { printf("\n") }
    ' "$TMP_BENCH"
    printf '  ],\n'
    printf '  "experiments": '
    # Indent the perf array two spaces so the merged document stays readable.
    sed -e '1!s/^/  /' "$TMP_PERF"
    printf '}\n'
} >"$OUT"

echo "bench: wrote $OUT" >&2
