#!/bin/sh
# bench.sh — record one point on the kernel performance trajectory.
#
# Runs the internal/sim microbenchmark suite and a full experiment suite,
# then emits BENCH_<n>.json (n = first unused index, so the checked-in
# files form an append-only trajectory):
#
#   {
#     "schema": "bench/v2",
#     "recorded": "<UTC timestamp>",
#     "go": "<toolchain>",
#     "microbench": [ {"name", "ns_per_op", "bytes_per_op", "allocs_per_op"} ],
#     "experiments": [ {"id", "wall_ns", "events", "events_per_sec"} ],
#     "scaling": [ <memsim -scale docs, one per shard count> ],
#     "pacing": <pacing-scaling/v1 doc from the serve scaling harness>
#   }
#
# The scaling section runs the sharded uniform scenario at each shard
# count in BENCH_SHARDS. The merged counters in every entry are identical
# (determinism contract); events_per_sec is end-to-end wall rate, while
# aggregate_events_per_sec sums the per-shard uncontended rates — the
# capacity figure once the host has a core per shard (see DESIGN.md).
#
# The pacing section sweeps live stream populations across both serve
# data planes (goroutine-per-stream vs timer wheel) and records lag
# quantiles, wakeup rates, the largest population each plane sustains
# within the lag-p99 budget, and the wheel/goroutine ratio (see
# TestPacingScalingHarness in internal/serve and EXPERIMENTS.md).
#
# Knobs (environment):
#   BENCH_DIR        output directory (default: repo root)
#   BENCH_PATTERN    -bench regexp for the microbenchmarks (default: .)
#   BENCH_TIME       -benchtime (default: 1s)
#   BENCH_SCALE      -scale stream total for the scaling section (default: 65536)
#   BENCH_SCALE_PER  -scale-per partition size (default: 4096)
#   BENCH_SHARDS     shard counts to sweep, space-separated (default: "1 2 4 8")
#   BENCH_PACING_POPS        population ladder, comma-separated
#                            (default: harness default, up to 100000)
#   BENCH_PACING_MEASURE_MS  per-point measurement window (default: 2000)
set -eu

cd "$(dirname "$0")/.."

OUT_DIR="${BENCH_DIR:-.}"
n=0
while [ -e "$OUT_DIR/BENCH_${n}.json" ]; do n=$((n + 1)); done
OUT="$OUT_DIR/BENCH_${n}.json"

TMP_BENCH="$(mktemp)"
TMP_PERF="$(mktemp)"
TMP_ART="$(mktemp -d)"
trap 'rm -rf "$TMP_BENCH" "$TMP_PERF" "$TMP_ART"' EXIT

echo "bench: sim + metrics + wheel + serve + server + workload microbenchmarks" >&2
go test -run '^$' -bench "${BENCH_PATTERN:-.}" -benchmem \
    -benchtime "${BENCH_TIME:-1s}" \
    ./internal/sim/ ./internal/metrics/ ./internal/wheel/ ./internal/serve/ \
    ./internal/server/ ./internal/workload/ | tee "$TMP_BENCH" >&2

echo "bench: experiment suite (memsbench -perf)" >&2
go run ./cmd/memsbench -parallel 1 -perf "$TMP_PERF" -out "$TMP_ART" >/dev/null

echo "bench: pacing-plane scaling harness (both planes)" >&2
PACING_SCALING_OUT="$TMP_ART/pacing.json" \
PACING_SCALING_POPS="${BENCH_PACING_POPS:-}" \
PACING_SCALING_MEASURE_MS="${BENCH_PACING_MEASURE_MS:-}" \
    go test ./internal/serve/ -run TestPacingScalingHarness -count=1 -timeout 30m -v >&2

SCALE="${BENCH_SCALE:-65536}"
SCALE_PER="${BENCH_SCALE_PER:-4096}"
for shards in ${BENCH_SHARDS:-1 2 4 8}; do
    echo "bench: scaling scenario (${SCALE} streams, shards=${shards})" >&2
    go run ./cmd/memsim -scale "$SCALE" -scale-per "$SCALE_PER" \
        -shards "$shards" -json "$TMP_ART/scale_${shards}.json" >&2
done

{
    printf '{\n'
    printf '  "schema": "bench/v2",\n'
    printf '  "recorded": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "microbench": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = "null"; bytes = "null"; allocs = "null"
            for (i = 2; i < NF; i++) {
                if ($(i + 1) == "ns/op") ns = $i
                if ($(i + 1) == "B/op") bytes = $i
                if ($(i + 1) == "allocs/op") allocs = $i
            }
            if (count++) printf(",\n")
            printf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs)
        }
        END { printf("\n") }
    ' "$TMP_BENCH"
    printf '  ],\n'
    printf '  "experiments": '
    # Indent the perf array two spaces so the merged document stays readable.
    sed -e '1!s/^/  /' "$TMP_PERF"
    printf '  ,"scaling": [\n'
    first=1
    for shards in ${BENCH_SHARDS:-1 2 4 8}; do
        [ "$first" -eq 1 ] || printf '  ,\n'
        first=0
        sed -e 's/^/  /' "$TMP_ART/scale_${shards}.json"
    done
    printf '  ]\n'
    printf '  ,"pacing": '
    sed -e '1!s/^/  /' "$TMP_ART/pacing.json"
    printf '}\n'
} >"$OUT"

echo "bench: wrote $OUT" >&2
