#!/bin/sh
# benchgate.sh — fail-on-regression gate for the pinned hot-path
# microbenches, compared against a recorded BENCH_<n>.json point.
#
# Usage: sh scripts/benchgate.sh [BASELINE.json]
#
# Runs the bench-sim microbenchmark set and compares every benchmark
# that also appears in the baseline's "microbench" section:
#
#   - allocs/op must not exceed the baseline's (the zero-alloc
#     invariants can never regress, on any machine), and
#   - ns/op must stay under BENCH_GATE_FACTOR × the baseline's
#     (default 2.0 — wide enough to absorb runner-to-runner variance,
#     tight enough to catch a hot path falling off its fast path).
#
# Benchmarks not present in the baseline (newly added ones) are listed
# but not gated; they start gating once the next BENCH_<n>.json records
# them.
#
# Knobs (environment):
#   BENCH_GATE_FACTOR   ns/op regression multiplier (default: 2.0)
#   BENCH_GATE_PATTERN  -bench regexp (default: .)
#   BENCH_GATE_TIME     -benchtime (default: 1s)
set -eu

cd "$(dirname "$0")/.."

BASE="${1:-}"
if [ -z "$BASE" ]; then
    n=0
    while [ -e "BENCH_$((n + 1)).json" ]; do n=$((n + 1)); done
    BASE="BENCH_${n}.json"
fi
[ -e "$BASE" ] || { echo "benchgate: baseline $BASE not found" >&2; exit 2; }

TMP_BENCH="$(mktemp)"
trap 'rm -f "$TMP_BENCH"' EXIT

echo "benchgate: running microbenchmarks (baseline $BASE)" >&2
go test -run '^$' -bench "${BENCH_GATE_PATTERN:-.}" -benchmem \
    -benchtime "${BENCH_GATE_TIME:-1s}" \
    ./internal/sim/ ./internal/metrics/ ./internal/wheel/ ./internal/serve/ \
    ./internal/server/ ./internal/workload/ | tee -a "$TMP_BENCH" >&2

awk -v base="$BASE" -v factor="${BENCH_GATE_FACTOR:-2.0}" '
    BEGIN {
        # The baseline microbench entries are one JSON object per line,
        # exactly as bench.sh printf-ed them.
        while ((getline line < base) > 0) {
            if (line !~ /"ns_per_op"/) continue
            name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/,.*/, "", ns)
            al = line; sub(/.*"allocs_per_op": /, "", al); sub(/[,}].*/, "", al)
            base_ns[name] = ns + 0
            base_allocs[name] = al + 0
        }
        close(base)
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""; allocs = ""
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") ns = $i + 0
            if ($(i + 1) == "allocs/op") allocs = $i + 0
        }
        if (!(name in base_ns)) {
            printf("benchgate: %-44s %12.1f ns/op %6d allocs/op  (new, not gated)\n", name, ns, allocs)
            next
        }
        gated++
        status = "ok"
        if (allocs > base_allocs[name]) {
            printf("benchgate: FAIL %-39s %d allocs/op, baseline %d\n", name, allocs, base_allocs[name])
            fail = 1; status = "FAIL"
        }
        if (base_ns[name] > 0 && ns > factor * base_ns[name]) {
            printf("benchgate: FAIL %-39s %.1f ns/op, baseline %.1f (limit %.1f×)\n", name, ns, base_ns[name], factor)
            fail = 1; status = "FAIL"
        }
        if (status == "ok")
            printf("benchgate: %-44s %12.1f ns/op vs %.1f baseline  ok\n", name, ns, base_ns[name])
    }
    END {
        if (gated == 0) { print "benchgate: no gated benchmarks matched the baseline" > "/dev/stderr"; exit 2 }
        printf("benchgate: %d benchmarks gated against %s\n", gated, base)
        exit fail
    }
' "$TMP_BENCH"
