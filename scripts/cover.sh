#!/bin/sh
# cover.sh — statement coverage with per-package floors.
#
# The run-core refactor concentrated the simulation drivers' shared
# machinery in internal/server, and the allocation-free kernel rewrite
# made internal/sim the correctness keystone every Result depends on;
# these gates keep both test suites honest. Floors sit below measured
# coverage (89.8% server / 98.3% sim when introduced) so routine changes
# don't trip them while a dropped test suite does.
set -eu

FLOOR="${COVER_FLOOR:-80.0}"
SIM_FLOOR="${COVER_FLOOR_SIM:-90.0}"
TIER_FLOOR="${COVER_FLOOR_TIER:-85.0}"
PROFILE="$(mktemp)"
trap 'rm -f "$PROFILE"' EXIT

echo "cover: full repo"
go test -coverprofile="$PROFILE" ./...
go tool cover -func="$PROFILE" | tail -1

# check <pkg> <floor>: enforce a statement-coverage floor on one package.
check() {
    pkg="$1"
    floor="$2"
    echo "cover: $pkg floor ${floor}%"
    go test -coverprofile="$PROFILE" "./$pkg/" >/dev/null
    total="$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
    echo "cover: $pkg ${total}%"
    if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
        echo "cover: $pkg coverage ${total}% is below the ${floor}% floor" >&2
        exit 1
    fi
}

check internal/server "$FLOOR"
check internal/sim "$SIM_FLOOR"
# The tier registry is the seam every stack layer now goes through; its
# floor sits below the 91.3% measured when the package was introduced.
check internal/tier "$TIER_FLOOR"
echo "cover: OK"
