#!/bin/sh
# cover.sh — statement coverage with a floor on internal/server.
#
# The run-core refactor concentrated the simulation drivers' shared
# machinery in internal/server; this gate keeps its tests honest. The
# floor sits ~10 points below measured coverage (89.8% when introduced)
# so routine changes don't trip it while a dropped test suite does.
set -eu

FLOOR="${COVER_FLOOR:-80.0}"
PROFILE="$(mktemp)"
trap 'rm -f "$PROFILE"' EXIT

echo "cover: full repo"
go test -coverprofile="$PROFILE" ./...
go tool cover -func="$PROFILE" | tail -1

echo "cover: internal/server floor ${FLOOR}%"
go test -coverprofile="$PROFILE" ./internal/server/ >/dev/null
TOTAL="$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "cover: internal/server ${TOTAL}%"
if awk -v t="$TOTAL" -v f="$FLOOR" 'BEGIN { exit !(t < f) }'; then
    echo "cover: internal/server coverage ${TOTAL}% is below the ${FLOOR}% floor" >&2
    exit 1
fi
echo "cover: OK"
