#!/bin/sh
# smoke.sh — memserve ↔ memsload end-to-end smoke test.
#
# Starts the server, applies a short load that includes deliberately
# stalled readers, and asserts the hardening invariants:
#   1. the load itself completes with zero client errors,
#   2. every stalled reader is evicted (write deadline) and every slot
#      returns to the admission controller (admitted=0 via STAT),
#   3. SIGTERM drains gracefully: the server exits 0 within the drain
#      budget with no force-kill.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:9391}"
BIN="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

echo "smoke: building"
go build -o "$BIN/memserve" ./cmd/memserve
go build -o "$BIN/memsload" ./cmd/memsload

# -limit 0 (unlimited) so streams end only by eviction or client close:
# the stalled readers must fill the kernel socket buffers and trip the
# write deadline — the real eviction path, not completion into buffers.
echo "smoke: starting memserve on $ADDR"
"$BIN/memserve" -addr "$ADDR" -dram 1GB -bitrate 100KB -limit 0 \
    -read-timeout 2s -write-timeout 500ms -drain 5s -quantum 20ms &
SERVER_PID=$!

# Wait for the listener.
i=0
until "$BIN/memsload" -addr "$ADDR" -stat >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: server never came up" >&2
        exit 1
    fi
    sleep 0.1
done

echo "smoke: running load (8 clients: 5 normal, 1 slow, 2 stalled)"
"$BIN/memsload" -addr "$ADDR" -clients 8 -slow 1 -stall 2 -rate 4MB -duration 3s

echo "smoke: asserting zero leaked admission slots"
"$BIN/memsload" -addr "$ADDR" -drained 5s
METRICS_LINE="$("$BIN/memsload" -addr "$ADDR" -metrics)"
echo "$METRICS_LINE"
case "$METRICS_LINE" in
*" evicted=0 "*)
    echo "smoke: stalled readers were never evicted by the write deadline" >&2
    exit 1
    ;;
esac

echo "smoke: SIGTERM drain"
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "smoke: memserve exited $STATUS after SIGTERM, want 0" >&2
    exit 1
fi
echo "smoke: OK"
