#!/bin/sh
# smoke.sh — memserve ↔ memsload end-to-end smoke test.
#
# Starts the server, applies a short load that includes deliberately
# stalled readers, and asserts the hardening invariants:
#   1. the load itself completes with zero client errors,
#   2. every stalled reader is evicted (write deadline) and every slot
#      returns to the admission controller (admitted=0 via STAT),
#   3. the HTTP control plane stays live under load: /status and
#      /metrics answer valid JSON while streams are being paced,
#   4. the server's counter deltas over the load match the client-side
#      tallies exactly (memsload -verify-http): every admitted stream
#      lands in exactly one of completed/evicted/aborted, and nothing
#      is cross-counted as a slowloris reap,
#   5. SIGTERM drains gracefully: the server exits 0 within the drain
#      budget with no force-kill,
#   6. the wheel data plane (-pacing=wheel) survives a high-population
#      sweep: a 1000-stream cohort is admitted, paced, and completed with
#      per-step counter conservation (memsload -sweep), then the wheel
#      server drains cleanly too.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:9391}"
HTTP_ADDR="${SMOKE_HTTP_ADDR:-127.0.0.1:9392}"
WHEEL_ADDR="${SMOKE_WHEEL_ADDR:-127.0.0.1:9393}"
WHEEL_HTTP_ADDR="${SMOKE_WHEEL_HTTP_ADDR:-127.0.0.1:9394}"
BIN="$(mktemp -d)"
trap 'kill "$SERVER_PID" "$WHEEL_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT
SERVER_PID=""
WHEEL_PID=""

echo "smoke: building"
go build -o "$BIN/memserve" ./cmd/memserve
go build -o "$BIN/memsload" ./cmd/memsload

# -limit 0 (unlimited) so streams end only by eviction or client close:
# the stalled readers must fill the kernel socket buffers and trip the
# write deadline — the real eviction path, not completion into buffers.
echo "smoke: starting memserve on $ADDR"
"$BIN/memserve" -addr "$ADDR" -http "$HTTP_ADDR" -dram 1GB -bitrate 100KB -limit 0 \
    -read-timeout 2s -write-timeout 500ms -drain 5s -quantum 20ms &
SERVER_PID=$!

# Wait for both listeners.
i=0
until "$BIN/memsload" -addr "$ADDR" -stat >/dev/null 2>&1 &&
      "$BIN/memsload" -http-metrics "http://$HTTP_ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: server never came up" >&2
        exit 1
    fi
    sleep 0.1
done

echo "smoke: running load (8 clients: 5 normal, 1 slow, 2 stalled) with counter verification"
"$BIN/memsload" -addr "$ADDR" -clients 8 -slow 1 -stall 2 -rate 4MB -duration 3s \
    -verify-http "http://$HTTP_ADDR" &
LOAD_PID=$!

# While streams are live: the control plane must answer valid JSON.
# The probe itself exits non-zero on an unreachable endpoint or a
# decode failure, so each iteration is a liveness + validity assertion.
echo "smoke: probing HTTP control plane under load"
sleep 1
PROBE="$("$BIN/memsload" -http-metrics "http://$HTTP_ADDR")"
echo "$PROBE" | sed 's/^/smoke:   /'
case "$PROBE" in
*"status.state=serving"*) ;;
*)
    echo "smoke: /status did not report serving under load" >&2
    exit 1
    ;;
esac
case "$PROBE" in
*"counters.admitted_total=0"*)
    echo "smoke: /metrics shows no admissions while the load is running" >&2
    exit 1
    ;;
esac

LOAD_STATUS=0
wait "$LOAD_PID" || LOAD_STATUS=$?
if [ "$LOAD_STATUS" -ne 0 ]; then
    echo "smoke: load/verification failed (exit $LOAD_STATUS)" >&2
    exit 1
fi

echo "smoke: asserting zero leaked admission slots"
"$BIN/memsload" -addr "$ADDR" -drained 5s
METRICS_LINE="$("$BIN/memsload" -addr "$ADDR" -metrics)"
echo "$METRICS_LINE"
case "$METRICS_LINE" in
*" evicted=0 "*)
    echo "smoke: stalled readers were never evicted by the write deadline" >&2
    exit 1
    ;;
esac

# Counter-semantics spot checks over the whole run: nothing may have
# been miscounted as a slowloris reap (no client ever sat silent on the
# request line), and the duration-bounded clients that closed on their
# own must all show up as aborts, not evictions.
FINAL_PROBE="$("$BIN/memsload" -http-metrics "http://$HTTP_ADDR")"
case "$FINAL_PROBE" in
*"counters.reaped=0"*) ;;
*)
    echo "smoke: reaped != 0 — a disconnect was miscounted as a slowloris reap" >&2
    echo "$FINAL_PROBE" >&2
    exit 1
    ;;
esac
case "$FINAL_PROBE" in
*"counters.aborted=0"*)
    echo "smoke: aborted = 0 — client-initiated disconnects were not counted as aborts" >&2
    echo "$FINAL_PROBE" >&2
    exit 1
    ;;
esac

echo "smoke: SIGTERM drain"
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "smoke: memserve exited $STATUS after SIGTERM, want 0" >&2
    exit 1
fi

# --- wheel data plane: high-population sweep -------------------------
# A finite -limit so every stream completes on its own; 64GB DRAM so the
# admission plan fits the full cohort. The sweep brackets each step with
# /metrics fetches, so the asserted line is this step's deltas alone.
echo "smoke: starting wheel-mode memserve on $WHEEL_ADDR"
"$BIN/memserve" -addr "$WHEEL_ADDR" -http "$WHEEL_HTTP_ADDR" -dram 64GB \
    -bitrate 100KB -limit 20KB -read-timeout 5s -write-timeout 2s \
    -drain 5s -quantum 20ms -max-conns 4096 -pacing wheel &
WHEEL_PID=$!

i=0
until "$BIN/memsload" -addr "$WHEEL_ADDR" -stat >/dev/null 2>&1 &&
      "$BIN/memsload" -http-metrics "http://$WHEEL_HTTP_ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: wheel server never came up" >&2
        exit 1
    fi
    sleep 0.1
done

echo "smoke: wheel population sweep (100 then 1000 streams)"
SWEEP_OUT="$("$BIN/memsload" -addr "$WHEEL_ADDR" -http-metrics "http://$WHEEL_HTTP_ADDR" \
    -sweep 100,1000 -rate 100KB -duration 5s -sweep-json "$BIN/sweep.json")"
echo "$SWEEP_OUT" | sed 's/^/smoke:   /'
case "$SWEEP_OUT" in
*"sweep streams=1000: admitted=1000 busy=0 errors=0 completed=1000 evicted=0 aborted=0"*) ;;
*)
    echo "smoke: wheel sweep did not complete the 1000-stream cohort cleanly" >&2
    exit 1
    ;;
esac

# The wheel actually drove the cohort: nonzero wheel_fires on the wire.
WHEEL_PROBE="$("$BIN/memsload" -http-metrics "http://$WHEEL_HTTP_ADDR")"
case "$WHEEL_PROBE" in
*"counters.wheel_fires=0"*)
    echo "smoke: wheel plane never fired a stream" >&2
    exit 1
    ;;
esac

echo "smoke: wheel SIGTERM drain"
kill -TERM "$WHEEL_PID"
STATUS=0
wait "$WHEEL_PID" || STATUS=$?
WHEEL_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "smoke: wheel memserve exited $STATUS after SIGTERM, want 0" >&2
    exit 1
fi
echo "smoke: OK"
