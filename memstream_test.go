package memstream

import (
	"math"
	"testing"
	"time"
)

func TestDeviceCatalog(t *testing.T) {
	g3 := G3MEMS()
	if g3.RateBytesPerSec != 320e6 || g3.CapacityBytes != 10e9 {
		t.Errorf("G3 = %+v", g3)
	}
	if g3.MaxLatency != 590*time.Microsecond {
		t.Errorf("G3 max latency = %v", g3.MaxLatency)
	}
	fd := FutureDisk()
	if fd.RateBytesPerSec != 300e6 || fd.CapacityBytes != 1e12 {
		t.Errorf("FutureDisk = %+v", fd)
	}
	for _, d := range []StorageDevice{G1MEMS(), G2MEMS(), Atlas10K3()} {
		if d.RateBytesPerSec <= 0 || d.CapacityBytes <= 0 || d.Name == "" {
			t.Errorf("catalog device %+v degenerate", d)
		}
	}
	// Generations improve monotonically.
	if !(G1MEMS().RateBytesPerSec < G2MEMS().RateBytesPerSec &&
		G2MEMS().RateBytesPerSec < G3MEMS().RateBytesPerSec) {
		t.Error("MEMS generations not monotone in rate")
	}
}

func TestPlanDirect(t *testing.T) {
	plan, err := PlanDirect(Load{Streams: 100, BitRate: 1e6}, FutureDisk())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cycle <= 0 || plan.TotalDRAMBytes <= 0 {
		t.Fatalf("degenerate plan %+v", plan)
	}
	// Hand-checked: T = 100·0.0043·3e8/(2e8) = 0.645s, total = 64.5MB.
	if math.Abs(plan.Cycle.Seconds()-0.645) > 1e-9 {
		t.Errorf("cycle = %v", plan.Cycle)
	}
	if math.Abs(plan.TotalDRAMBytes-64.5e6) > 100 {
		t.Errorf("total DRAM = %v", plan.TotalDRAMBytes)
	}
	if _, err := PlanDirect(Load{Streams: 0, BitRate: 1e6}, FutureDisk()); err == nil {
		t.Error("zero streams accepted")
	}
}

func TestPlanMEMSBuffer(t *testing.T) {
	load := Load{Streams: 1000, BitRate: 1e5}
	direct, err := PlanDirect(load, FutureDisk())
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := PlanMEMSBuffer(load, FutureDisk(), G3MEMS(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if buffered.TotalDRAMBytes >= direct.TotalDRAMBytes {
		t.Errorf("buffered DRAM %v not below direct %v",
			buffered.TotalDRAMBytes, direct.TotalDRAMBytes)
	}
	if buffered.M < 1 || buffered.M >= load.Streams {
		t.Errorf("M = %d", buffered.M)
	}
	if buffered.DiskIOBytes <= direct.IOBytes {
		t.Error("staged disk IOs should be larger than direct IOs")
	}
	if buffered.MEMSBufferBytes > 2*G3MEMS().CapacityBytes {
		t.Error("staged data exceeds the bank")
	}
}

func TestPlanMEMSCache(t *testing.T) {
	plan, err := PlanMEMSCache(Load{Streams: 1000, BitRate: 1e4},
		FutureDisk(), G3MEMS(), 1, Striped, 1e12, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.HitRatio-0.99) > 1e-12 {
		t.Errorf("hit ratio = %v", plan.HitRatio)
	}
	if plan.FromCache != 990 || plan.FromDisk != 10 {
		t.Errorf("split = %d/%d", plan.FromCache, plan.FromDisk)
	}
	if plan.TotalDRAMBytes != plan.CacheSide.TotalDRAMBytes+plan.DiskSide.TotalDRAMBytes {
		t.Error("totals disagree")
	}
}

func TestHitRatioExported(t *testing.T) {
	h, err := HitRatio(10, 90, 0.05)
	if err != nil || math.Abs(h-0.45) > 1e-12 {
		t.Fatalf("HitRatio = %v, %v", h, err)
	}
	if _, err := HitRatio(0, 90, 0.05); err == nil {
		t.Error("bad X accepted")
	}
}

func TestMaxStreams(t *testing.T) {
	if n := MaxStreams(1e7, FutureDisk(), 0); n != 29 {
		t.Errorf("HDTV max = %d, want 29", n)
	}
	capped := MaxStreams(1e4, FutureDisk(), 5e9)
	uncapped := MaxStreams(1e4, FutureDisk(), 0)
	if capped <= 0 || capped >= uncapped {
		t.Errorf("capped=%d uncapped=%d", capped, uncapped)
	}
}

func TestMaxStreamsWithCache(t *testing.T) {
	base := MaxStreams(1e4, FutureDisk(), 2e9)
	cached := MaxStreamsWithCache(1e4, FutureDisk(), G3MEMS(), 1, Striped, 1e12, 1, 99, 2e9)
	if cached <= base {
		t.Errorf("cached %d not above direct %d", cached, base)
	}
}

func TestCosts(t *testing.T) {
	c := DefaultCosts()
	if c.DRAMPerGB/c.MEMSPerGB != 20 {
		t.Error("price ratio wrong")
	}
	load := Load{Streams: 10000, BitRate: 1e4}
	without, err := BufferingCost(load, FutureDisk(), c)
	if err != nil {
		t.Fatal(err)
	}
	with, err := BufferedCost(load, FutureDisk(), G3MEMS(), 2, c)
	if err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Errorf("buffered $%.2f not below direct $%.2f", with, without)
	}
}

func TestSimulateDirect(t *testing.T) {
	res, err := Simulate(SimConfig{
		Architecture: DirectServer,
		Streams:      50,
		BitRate:      1e6,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d", res.Underflows)
	}
	if res.DiskIOs == 0 || res.PeakDRAMBytes <= 0 {
		t.Errorf("result %+v lacks activity", res)
	}
}

func TestSimulateBufferedAndCached(t *testing.T) {
	b, err := Simulate(SimConfig{
		Architecture: BufferedServer,
		Streams:      100,
		BitRate:      1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Underflows != 0 || b.MEMSIOs == 0 {
		t.Errorf("buffered: %+v", b)
	}
	c, err := Simulate(SimConfig{
		Architecture: CachedServer,
		Streams:      200,
		BitRate:      1e5,
		Titles:       400,
		CachePolicy:  Replicated,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Underflows != 0 || c.FromCache == 0 {
		t.Errorf("cached: %+v", c)
	}
}

func TestArchitectureString(t *testing.T) {
	if DirectServer.String() != "direct" || BufferedServer.String() != "mems-buffer" ||
		CachedServer.String() != "mems-cache" {
		t.Error("architecture names wrong")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 14 {
		t.Fatalf("experiments = %v", ids)
	}
	title, ok := ExperimentTitle("fig2")
	if !ok || title == "" {
		t.Error("fig2 title missing")
	}
	out, err := RunExperiment("table2")
	if err != nil || len(out) < 100 {
		t.Errorf("RunExperiment(table2): %d bytes, %v", len(out), err)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
