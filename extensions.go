package memstream

import (
	"time"

	"memstream/internal/cache"
	"memstream/internal/model"
	"memstream/internal/units"
)

// GSSPlan sizes a server under Grouped Sweeping Scheduling (Yu, Chen &
// Kandlur), the scheduler-level resource trade-off the paper's
// introduction contrasts with adding MEMS hardware.
type GSSPlan struct {
	// Groups is the number of sweep groups g.
	Groups int
	// Cycle is the full service round; GroupSlot is one group's share.
	Cycle     time.Duration
	GroupSlot time.Duration
	// PerStreamBytes includes the (1+1/g) GSS buffering factor.
	PerStreamBytes float64
	TotalDRAMBytes float64
}

func fromGSS(p model.GSSPlan) GSSPlan {
	return GSSPlan{
		Groups:         p.Groups,
		Cycle:          p.Cycle,
		GroupSlot:      p.GroupSlot,
		PerStreamBytes: float64(p.PerStream),
		TotalDRAMBytes: float64(p.TotalDRAM),
	}
}

// PlanGSS sizes a GSS schedule with g groups on the given disk. The
// device's minimum positioning cost (track switch + settle, used for the
// in-sweep latency limit) is approximated as AvgLatency/3 when the caller
// has nothing better; pass it explicitly via PlanGSSWithMin for precision.
func PlanGSS(load Load, dsk StorageDevice, groups int) (GSSPlan, error) {
	return PlanGSSWithMin(load, dsk, dsk.AvgLatency/3, groups)
}

// PlanGSSWithMin is PlanGSS with an explicit minimum per-IO latency.
func PlanGSSWithMin(load Load, dsk StorageDevice, minLatency time.Duration, groups int) (GSSPlan, error) {
	p, err := model.GSS(load.toModel(), dsk.diskSpec(), minLatency, groups)
	if err != nil {
		return GSSPlan{}, err
	}
	return fromGSS(p), nil
}

// OptimalGSSPlan searches all group counts for the DRAM-minimal GSS plan.
func OptimalGSSPlan(load Load, dsk StorageDevice) (GSSPlan, error) {
	p, err := model.OptimalGSS(load.toModel(), dsk.diskSpec(), dsk.AvgLatency/3)
	if err != nil {
		return GSSPlan{}, err
	}
	return fromGSS(p), nil
}

// HybridSplit is the paper's future-work configuration (§7): part of the
// MEMS bank buffers disk IOs, the rest caches popular titles.
type HybridSplit struct {
	BufferBytes float64
	CacheBytes  float64
	Streams     int
}

// PlanHybridBank searches whole-device splits of a k-device bank between
// buffering and (striped) caching, maximizing sustained streams under the
// DRAM budget.
func PlanHybridBank(k int, dsk, mem StorageDevice, bitRate, contentBytes, x, y,
	dramBytes float64) (HybridSplit, error) {

	split, err := cache.PlanHybrid(k, units.Bytes(mem.CapacityBytes),
		dsk.diskSpec(), mem.memsSpec(), units.ByteRate(bitRate),
		units.Bytes(contentBytes), x, y, units.Bytes(dramBytes))
	if err != nil {
		return HybridSplit{}, err
	}
	return HybridSplit{
		BufferBytes: float64(split.BufferBytes),
		CacheBytes:  float64(split.CacheBytes),
		Streams:     split.Streams,
	}, nil
}

// ClassCount is one component of a mixed stream population.
type ClassCount struct {
	Streams int
	BitRate float64 // bytes per second
}

// MixedLoad folds a heterogeneous stream mix into the model's (N, B̄)
// form. The paper's framework works with the average bit-rate (its B̄ is
// defined as the average over the streams serviced), so mixes enter the
// theorems through this reduction.
func MixedLoad(classes ...ClassCount) Load {
	var n int
	var sum float64
	for _, c := range classes {
		if c.Streams <= 0 || c.BitRate <= 0 {
			continue
		}
		n += c.Streams
		sum += float64(c.Streams) * c.BitRate
	}
	if n == 0 {
		return Load{}
	}
	return Load{Streams: n, BitRate: sum / float64(n)}
}

// EstimateBlocking returns the Erlang-B blocking probability when
// offeredErlangs of session load (arrival rate x mean hold time) is
// offered to a server admitting at most capacity concurrent streams.
func EstimateBlocking(offeredErlangs float64, capacity int) (float64, error) {
	return model.ErlangB(offeredErlangs, capacity)
}

// CapacityForBlocking returns the smallest admission capacity that keeps
// Erlang-B blocking at or below target for the offered load.
func CapacityForBlocking(offeredErlangs, target float64) (int, error) {
	return model.ErlangCapacity(offeredErlangs, target)
}
