package memstream

import (
	"fmt"
	"time"

	"memstream/internal/disk"
	"memstream/internal/experiments"
	"memstream/internal/server"
	"memstream/internal/tier"
	"memstream/internal/units"
)

// Architecture selects the simulated server organization.
type Architecture uint8

// Architectures.
const (
	// DirectServer streams straight from disk to DRAM.
	DirectServer Architecture = iota
	// BufferedServer stages every disk IO through a MEMS bank.
	BufferedServer
	// CachedServer serves popular titles from a MEMS cache.
	CachedServer
	// HybridServer splits the bank between caching and buffering (the
	// paper's §7 future-work configuration).
	HybridServer
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case DirectServer:
		return "direct"
	case BufferedServer:
		return "mems-buffer"
	case CachedServer:
		return "mems-cache"
	case HybridServer:
		return "mems-hybrid"
	}
	return fmt.Sprintf("architecture(%d)", uint8(a))
}

// SimConfig describes one discrete-event simulation run. Devices are
// selected by name from the built-in catalogs to keep the simulation
// entry point self-contained; zero values select the paper's 2007
// defaults (FutureDisk, G3 MEMS, k=2, 10:90 popularity over 100 titles).
type SimConfig struct {
	Architecture Architecture
	Streams      int
	BitRate      float64 // bytes per second
	MEMSDevices  int
	// Tier selects the middle-tier parameter set by registry name
	// ("mems-g1".."mems-g3", "nvm-optane", "ssd-sata", "disk-future");
	// empty selects the paper's G3 MEMS.
	Tier string
	// CacheDevices is the cache share of the bank for HybridServer
	// (defaults to MEMSDevices/2).
	CacheDevices int
	CachePolicy  CachePolicy
	Titles       int
	PopularityX  float64
	PopularityY  float64

	// Writers marks that many of the streams as recorders (BufferedServer
	// only) — the write-stream extension of §3.1.
	Writers int
	// UseEDF runs the DirectServer under earliest-deadline-first instead
	// of time-cycle scheduling.
	UseEDF bool
	// VBRCoV makes DirectServer playback variable-bit-rate with this
	// coefficient of variation, handled as CBR + cushion (footnote 1).
	VBRCoV float64
	// BestEffort adds low-priority background reads that soak up the
	// MEMS bank's spare bandwidth (BufferedServer, §3.1.2).
	BestEffort bool
	// PausedFraction makes DirectServer playback interactive: this
	// fraction of stream-time is spent paused, with the scheduler
	// reclaiming the skipped IOs' bandwidth.
	PausedFraction float64

	Duration time.Duration // 0 = a few IO cycles
	Seed     uint64
}

// SimResult reports a run's measured behaviour.
type SimResult struct {
	Architecture  Architecture
	Streams       int
	SimulatedTime time.Duration

	// Underflows counts playback intervals that found an empty buffer;
	// UnderflowBytes is the total missed data.
	Underflows     int
	UnderflowBytes float64

	// PlannedDRAMBytes is the model's N·S; PeakDRAMBytes is the measured
	// high-water occupancy.
	PlannedDRAMBytes float64
	PeakDRAMBytes    float64

	// Utilization of the devices over the run.
	DiskUtilization float64
	MEMSUtilization float64

	// IO counts.
	DiskIOs uint64
	MEMSIOs uint64

	// FromCache/FromDisk split the population in CachedServer runs.
	FromCache, FromDisk int

	// WriterPeakDRAMBytes is the largest backlog a recorder held while
	// its data was being staged (runs with Writers > 0).
	WriterPeakDRAMBytes float64

	// BestEffortBytes is the non-real-time data moved in spare bank
	// bandwidth (runs with BestEffort).
	BestEffortBytes float64
}

// Simulate executes one run of the full server simulator.
func Simulate(cfg SimConfig) (SimResult, error) {
	mode := server.Direct
	switch cfg.Architecture {
	case BufferedServer:
		mode = server.Buffered
	case CachedServer:
		mode = server.Cached
	case HybridServer:
		mode = server.Hybrid
	}
	k := cfg.MEMSDevices
	if k == 0 {
		k = 2
	}
	tierName := cfg.Tier
	if tierName == "" {
		tierName = tier.Default
	}
	spec, err := tier.Lookup(tierName)
	if err != nil {
		return SimResult{}, err
	}
	cacheDevs := cfg.CacheDevices
	if mode == server.Hybrid && cacheDevs == 0 {
		cacheDevs = k / 2
	}
	scfg := server.Config{
		Mode:           mode,
		Disk:           disk.FutureDisk(),
		Tier:           spec,
		K:              k,
		CacheDevices:   cacheDevs,
		CachePolicy:    cfg.CachePolicy,
		N:              cfg.Streams,
		Writers:        cfg.Writers,
		BitRate:        units.ByteRate(cfg.BitRate),
		Titles:         cfg.Titles,
		X:              cfg.PopularityX,
		Y:              cfg.PopularityY,
		UseEDF:         cfg.UseEDF,
		VBRCoV:         cfg.VBRCoV,
		BestEffort:     cfg.BestEffort,
		PausedFraction: cfg.PausedFraction,
		Duration:       cfg.Duration,
		Seed:           cfg.Seed,
	}
	res, err := server.Run(scfg)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		Architecture:        cfg.Architecture,
		Streams:             res.Streams,
		SimulatedTime:       res.SimulatedTime,
		Underflows:          res.Underflows,
		UnderflowBytes:      float64(res.UnderflowBytes),
		PlannedDRAMBytes:    float64(res.PlannedDRAM),
		PeakDRAMBytes:       float64(res.DRAMHighWater),
		DiskUtilization:     res.DiskUtil,
		MEMSUtilization:     res.MEMSUtil,
		DiskIOs:             res.DiskIOs,
		MEMSIOs:             res.MEMSIOs,
		FromCache:           res.FromCache,
		FromDisk:            res.FromDisk,
		WriterPeakDRAMBytes: float64(res.WriterPeakDRAM),
		BestEffortBytes:     float64(res.BestEffortBytes),
	}, nil
}

// Experiments lists the IDs of the paper artifacts this library can
// regenerate (tables, figures, and the validation run).
func Experiments() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's display title.
func ExperimentTitle(id string) (string, bool) { return experiments.Title(id) }

// RunExperiment regenerates one paper artifact and returns its rendered
// text output.
func RunExperiment(id string) (string, error) {
	res, err := experiments.Run(id)
	if err != nil {
		return "", err
	}
	return res.Output, nil
}
