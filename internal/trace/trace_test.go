package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/device"
)

func sample() []Event {
	return []Event{
		{At: 0, Op: device.Read, Block: 100, Blocks: 8, Stream: 0},
		{At: 5 * time.Millisecond, Op: device.Write, Block: 2000, Blocks: 128, Stream: 1},
		{At: 12 * time.Millisecond, Op: device.Read, Block: 0, Blocks: 1, Stream: 2},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("events = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0 r 1 2 3\n   \n# tail\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Block != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"0 r 1 2",   // too few fields
		"x r 1 2 3", // bad timestamp
		"0 q 1 2 3", // bad op
		"0 r x 2 3", // bad block
		"0 r 1 x 3", // bad length
		"0 r 1 2 x", // bad stream
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("MS")); err == nil {
		t.Error("truncated magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d events", len(got))
	}
}

func TestEventRequest(t *testing.T) {
	e := Event{At: time.Second, Op: device.Write, Block: 7, Blocks: 3, Stream: 9}
	r := e.Request()
	if r.Op != device.Write || r.Block != 7 || r.Blocks != 3 || r.Stream != 9 || r.Issued != time.Second {
		t.Errorf("request = %+v", r)
	}
}

func TestFromCompletion(t *testing.T) {
	c := device.Completion{Request: device.Request{
		Op: device.Read, Block: 5, Blocks: 2, Stream: 1, Issued: 3 * time.Millisecond,
	}}
	e := FromCompletion(c)
	if e.At != 3*time.Millisecond || e.Block != 5 {
		t.Errorf("event = %+v", e)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Events != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalBlocks != 137 {
		t.Errorf("blocks = %d, want 137", s.TotalBlocks)
	}
	if s.Span != 12*time.Millisecond {
		t.Errorf("span = %v", s.Span)
	}
	empty := Summarize(nil)
	if empty.Events != 0 || empty.Span != 0 {
		t.Error("empty summary wrong")
	}
}

// Property: both codecs round-trip arbitrary well-formed traces.
func TestCodecsRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		events := make([]Event, 0, len(raw)/4)
		for i := 0; i+3 < len(raw); i += 4 {
			op := device.Read
			if raw[i]%2 == 1 {
				op = device.Write
			}
			events = append(events, Event{
				At:     time.Duration(raw[i]) * time.Microsecond,
				Op:     op,
				Block:  int64(raw[i+1]),
				Blocks: int64(raw[i+2]%1024) + 1,
				Stream: int(raw[i+3] % 4096),
			})
		}
		var tb, bb bytes.Buffer
		if err := WriteText(&tb, events); err != nil {
			return false
		}
		if err := WriteBinary(&bb, events); err != nil {
			return false
		}
		fromText, err := ReadText(&tb)
		if err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		if len(fromText) != len(events) || len(fromBin) != len(events) {
			return false
		}
		for i := range events {
			if fromText[i] != events[i] || fromBin[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
