package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks the text decoder never panics and that everything
// it accepts round-trips through the encoder.
func FuzzReadText(f *testing.F) {
	f.Add("0 r 1 2 3\n")
	f.Add("# comment\n\n100 w 5 6 7\n")
	f.Add("x r 1 2 3\n")
	f.Add("0 r 1 2\n")
	f.Add(strings.Repeat("1 r 2 3 4\n", 100))
	f.Fuzz(func(t *testing.T, in string) {
		events, err := ReadText(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, events); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("event %d changed: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}

// FuzzReadBinary checks the binary decoder tolerates arbitrary input.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, []Event{{Block: 1, Blocks: 2, Stream: 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("MSTR1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		events, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, events); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
