// Package trace records and replays device IO traces. Traces decouple
// workload generation from device evaluation: the memsim tool replays the
// same trace against disk and MEMS models to compare service behaviour,
// and tests use golden traces to pin scheduler behaviour.
//
// Two codecs are provided: a line-oriented text form (one event per line,
// grep-able) and a compact binary form (varint-encoded) for large traces.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"memstream/internal/device"
)

// Event is one trace record: a request and when it was issued.
type Event struct {
	At     time.Duration
	Op     device.Op
	Block  int64
	Blocks int64
	Stream int
}

// Request converts the event to a device request.
func (e Event) Request() device.Request {
	return device.Request{Op: e.Op, Block: e.Block, Blocks: e.Blocks, Stream: e.Stream, Issued: e.At}
}

// FromCompletion builds an event from a serviced request.
func FromCompletion(c device.Completion) Event {
	return Event{At: c.Issued, Op: c.Op, Block: c.Block, Blocks: c.Blocks, Stream: c.Stream}
}

// WriteText encodes events one per line:
//
//	<at_ns> <r|w> <block> <blocks> <stream>
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		op := "r"
		if e.Op == device.Write {
			op = "w"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %d %d\n",
			e.At.Nanoseconds(), op, e.Block, e.Blocks, e.Stream); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText decodes the text form. Blank lines and lines starting with '#'
// are skipped.
func ReadText(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, len(f))
		}
		at, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q", line, f[0])
		}
		var op device.Op
		switch f[1] {
		case "r":
			op = device.Read
		case "w":
			op = device.Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, f[1])
		}
		block, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad block %q", line, f[2])
		}
		blocks, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad length %q", line, f[3])
		}
		stream, err := strconv.Atoi(f[4])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad stream %q", line, f[4])
		}
		events = append(events, Event{At: time.Duration(at), Op: op, Block: block, Blocks: blocks, Stream: stream})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return events, nil
}

// binaryMagic guards against decoding unrelated files.
const binaryMagic = "MSTR1"

// WriteBinary encodes events in the compact varint form.
func WriteBinary(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	buf := make([]byte, binary.MaxVarintLen64)
	put := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(events))); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	for i, e := range events {
		op := uint64(0)
		if e.Op == device.Write {
			op = 1
		}
		for _, v := range []uint64{uint64(e.At), op, uint64(e.Block), uint64(e.Blocks), uint64(int64(e.Stream))} {
			if err := put(v); err != nil {
				return fmt.Errorf("trace: write event %d: %w", i, err)
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes the binary form.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	const maxEvents = 1 << 28
	if count > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		var vals [5]uint64
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d field %d: %w", i, j, err)
			}
			vals[j] = v
		}
		op := device.Read
		if vals[1] == 1 {
			op = device.Write
		}
		events = append(events, Event{
			At:     time.Duration(vals[0]),
			Op:     op,
			Block:  int64(vals[2]),
			Blocks: int64(vals[3]),
			Stream: int(int64(vals[4])),
		})
	}
	return events, nil
}

// Stats summarizes a trace.
type Stats struct {
	Events      int
	Reads       int
	Writes      int
	TotalBlocks int64
	Span        time.Duration
}

// Summarize computes trace statistics.
func Summarize(events []Event) Stats {
	var s Stats
	s.Events = len(events)
	for _, e := range events {
		if e.Op == device.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		s.TotalBlocks += e.Blocks
		if e.At > s.Span {
			s.Span = e.At
		}
	}
	return s
}
