package experiments

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/units"
)

func init() {
	register("sens", "Sensitivity study: cost and bandwidth (paper footnote 2)", runSensitivity)
}

// runSensitivity reproduces the paper's footnote-2 analysis: the MEMS
// buffering conclusion "holds true as long as the MEMS device is an order
// of magnitude cheaper than DRAM and provides streaming bandwidths
// comparable to or greater than those of disk-drives." We sweep the
// DRAM/MEMS price ratio and the MEMS bandwidth (relative to the disk's)
// at the off-the-shelf DivX operating point and report the cost
// reduction; the boundary of the positive region is the claim.
func runSensitivity(uint64) (Result, error) {
	d := paperDisk()
	bitRate := 100 * units.KBPS
	n := model.MaxStreamsDirect(bitRate, d, shelfDRAMCap)
	if n < 1 {
		return Result{}, fmt.Errorf("baseline infeasible")
	}
	load := model.StreamLoad{N: n, BitRate: bitRate}
	direct, err := model.DiskDirect(load, d)
	if err != nil {
		return Result{}, err
	}

	priceRatios := []float64{2, 5, 10, 20, 50}
	bwFactors := []float64{0.25, 0.5, 1, 2}

	t := &plot.Table{
		Title: fmt.Sprintf("Buffering-cost reduction (%%), DivX load N=%d, 2-device bank", n),
		Headers: append([]string{"MEMS BW / disk BW"}, func() []string {
			h := make([]string, len(priceRatios))
			for i, r := range priceRatios {
				h[i] = fmt.Sprintf("DRAM/MEMS=%gx", r)
			}
			return h
		}()...),
	}
	for _, bw := range bwFactors {
		m := paperTier()
		m.Rate = units.ByteRate(bw * float64(d.Rate))
		row := []string{fmt.Sprintf("%.2gx", bw)}
		for _, pr := range priceRatios {
			costs := model.NewCostModel(20, units.Dollars(20/pr), 10*units.GB)
			cell := "infeasible"
			cfg := model.BufferConfig{Load: load, Disk: d, Tier: m, K: shelfK, SizePerDevice: 10 * units.GB}
			if plan, err := model.BufferPlan(cfg); err == nil {
				without := costs.DRAMCost(direct.TotalDRAM)
				with := costs.BankCost(shelfK) + costs.DRAMCost(plan.TotalDRAM)
				cell = fmt.Sprintf("%+.0f%%", 100*(1-float64(with)/float64(without)))
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	out := t.Render() +
		"\nFootnote 2's claim: savings stay strongly positive while MEMS is ~an\n" +
		"order of magnitude cheaper than DRAM (≥10x) and its bandwidth is\n" +
		"comparable to or above the disk's (≥1x); they erode or vanish outside\n" +
		"that region (low bandwidth makes the 2x staging requirement binding;\n" +
		"low price ratios make the displaced DRAM too cheap to matter).\n"
	return Result{Output: out}, nil
}
