package experiments

import (
	"fmt"
	"hash/fnv"
	"regexp"
	"runtime"
	"sync"
	"time"

	"memstream/internal/sim"
)

// RunReport is one experiment's entry in the suite's metrics document.
type RunReport struct {
	ID         string        `json:"id"`
	Title      string        `json:"title"`
	Seed       uint64        `json:"seed"`
	Wall       time.Duration `json:"wall_ns"`
	Events     uint64        `json:"events"`
	Streams    int           `json:"streams"`
	Cycles     int64         `json:"cycles"`
	Underflows int           `json:"underflows"`
	Error      string        `json:"error,omitempty"`

	// Result carries the artifact itself; excluded from the JSON metrics
	// document, which is about run observability, not run output.
	Result Result `json:"-"`
}

// SuiteReport is the metrics document for one suite invocation.
type SuiteReport struct {
	RootSeed uint64        `json:"root_seed"`
	Parallel int           `json:"parallel"`
	Wall     time.Duration `json:"wall_ns"`
	Runs     []RunReport   `json:"runs"`
}

// Failed counts runs that returned an error.
func (s SuiteReport) Failed() int {
	n := 0
	for _, r := range s.Runs {
		if r.Error != "" {
			n++
		}
	}
	return n
}

// Match returns the experiment IDs whose ID matches the pattern, anchored
// at both ends (so an exact ID selects only itself and "fig9.*" selects
// the fig9 family). An empty pattern selects everything.
func Match(pattern string) ([]string, error) {
	if pattern == "" {
		return IDs(), nil
	}
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("experiments: bad -run pattern: %w", err)
	}
	var ids []string
	for _, id := range IDs() {
		if re.MatchString(id) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("experiments: no experiment matches %q (have %v)", pattern, IDs())
	}
	return ids, nil
}

// seedFor derives an experiment's seed from the suite's root seed via
// RNG.Split. Keying by the experiment ID — not its position in the work
// list or its completion order — makes every run's result a pure function
// of (rootSeed, id): the suite is byte-identical at any worker count, and
// a -run subset reproduces the full suite's per-experiment artifacts.
func seedFor(rootSeed uint64, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return sim.NewRNG(rootSeed ^ h.Sum64()).Split().Uint64()
}

// RunSuite executes the given experiments on a pool of parallel workers
// (parallel <= 0 means GOMAXPROCS) and returns per-run metrics plus the
// artifacts, ordered as ids. A run that fails is reported in its entry's
// Error field; it does not abort the rest of the suite. The progress
// callback, when non-nil, is invoked once per run in completion order
// (serialized, from worker goroutines).
func RunSuite(ids []string, rootSeed uint64, parallel int, progress func(done, total int, rep RunReport)) (SuiteReport, error) {
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return SuiteReport{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(ids) {
		parallel = len(ids)
	}
	if parallel < 1 {
		parallel = 1
	}

	suite := SuiteReport{
		RootSeed: rootSeed,
		Parallel: parallel,
		Runs:     make([]RunReport, len(ids)),
	}
	start := time.Now()

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes progress callbacks and the done counter
	done := 0
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				id := ids[i]
				seed := seedFor(rootSeed, id)
				runStart := time.Now()
				res, err := RunSeeded(id, seed)
				rep := RunReport{
					ID:   id,
					Seed: seed,
					Wall: time.Since(runStart),
				}
				rep.Title, _ = Title(id)
				if err != nil {
					rep.Error = err.Error()
				} else {
					res.Metrics.Wall = rep.Wall
					rep.Result = res
					rep.Events = res.Metrics.Events
					rep.Streams = res.Metrics.Streams
					rep.Cycles = res.Metrics.Cycles
					rep.Underflows = res.Metrics.Underflows
				}
				suite.Runs[i] = rep
				mu.Lock()
				done++
				if progress != nil {
					progress(done, len(ids), rep)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range ids {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	suite.Wall = time.Since(start)
	return suite, nil
}
