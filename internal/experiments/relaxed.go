package experiments

import (
	"math"

	"memstream/internal/model"
	"memstream/internal/units"
)

// relaxedPlan is a Theorem 2 evaluation under the relaxation of §5.1.1:
// MEMS storage is unlimited and priced per byte, so the disk cycle T_disk
// is free to grow. We choose the T that minimizes total buffering cost
// (MEMS staging at C_mems per byte plus DRAM at C_dram per byte), which is
// the operating point a cost-per-byte designer would pick.
type relaxedPlan struct {
	K         int
	DiskCycle float64 // seconds
	PerStream units.Bytes
	TotalDRAM units.Bytes
	MEMSBytes units.Bytes   // 2·N·B̄·T staged across the bank
	TotalCost units.Dollars // staging + DRAM
}

// relaxedBufferPlan evaluates the relaxed Theorem 2 for the
// bandwidth-minimal bank of at least two devices. It reports ok=false when
// no bank within maxK has the bandwidth for the load.
func relaxedBufferPlan(load model.StreamLoad, d, m model.DeviceSpec,
	costs model.CostModel, maxK int) (relaxedPlan, bool) {

	n := float64(load.N)
	b := float64(load.BitRate)
	rm := float64(m.Rate)

	// Disk-side feasibility first (Eq 6).
	rd := float64(d.Rate)
	if n*b >= rd {
		return relaxedPlan{}, false
	}
	tMin := n * d.Latency.Seconds() * rd / (rd - n*b)

	// Bandwidth-minimal bank (Eq 7 waived by the relaxation).
	k := 2
	for ; k <= maxK; k++ {
		if float64(k)*rm > 2*(n+float64(k)-1)*b {
			break
		}
	}
	if k > maxK {
		return relaxedPlan{}, false
	}
	c := n * m.Latency.Seconds() * rm / (float64(k)*rm - 2*(n+float64(k)-1)*b)

	slack := 1 + (2*float64(k)-2)/n
	perByteMEMS := float64(costs.Tiers[0].PerGB) / 1e9
	perByteDRAM := float64(costs.DRAMPerGB) / 1e9
	cost := func(t float64) float64 {
		s := b * c * slack * t / (t - c)
		return perByteMEMS*2*n*b*t + perByteDRAM*n*s
	}

	lo := math.Max(c*1.0001, tMin)
	hi := lo * 1e6
	// The objective is convex in T (linear + decreasing-convex), so golden
	// section converges.
	for i := 0; i < 200; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if cost(m1) < cost(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	t := (lo + hi) / 2
	s := b * c * slack * t / (t - c)
	return relaxedPlan{
		K:         k,
		DiskCycle: t,
		PerStream: units.Bytes(s),
		TotalDRAM: units.Bytes(n * s),
		MEMSBytes: units.Bytes(2 * n * b * t),
		TotalCost: units.Dollars(cost(t)),
	}, true
}
