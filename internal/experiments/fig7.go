package experiments

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/units"
)

func init() {
	register("fig7a", "Figure 7(a): percentage cost reduction vs latency ratio", runFig7a)
	register("fig7b", "Figure 7(b): cost-reduction regions (25/50/75% contours)", runFig7b)
}

// offTheShelf is the §5.1.3 case study box: DRAM capped at 5GB, a 2-device
// G3 buffer (20GB, $20).
const (
	shelfDRAMCap = 5 * units.GB
	shelfK       = 2
)

// costReductionAt computes the percentage reduction in buffering cost for
// one bit-rate and latency ratio under the off-the-shelf configuration:
// the stream population is the largest the DRAM-only box sustains, and the
// MEMS-buffered box must serve the same population.
func costReductionAt(bitRate units.ByteRate, ratio float64) (float64, bool) {
	d := paperDisk()
	m := tierAtRatio(ratio)

	n := model.MaxStreamsDirect(bitRate, d, shelfDRAMCap)
	if n < 1 {
		return 0, false
	}
	load := model.StreamLoad{N: n, BitRate: bitRate}
	direct, err := model.DiskDirect(load, d)
	if err != nil {
		return 0, false
	}
	costWithout := paperCosts.DRAMCost(direct.TotalDRAM)

	cfg := model.BufferConfig{Load: load, Disk: d, Tier: m, K: shelfK, SizePerDevice: tierCapacity()}
	plan, err := model.BufferPlan(cfg)
	if err != nil {
		return 0, false
	}
	costWith := paperCosts.BankCost(shelfK) + paperCosts.DRAMCost(plan.TotalDRAM)
	reduction := 100 * (1 - float64(costWith)/float64(costWithout))
	return reduction, true
}

// runFig7a reproduces Figure 7(a): cost-reduction curves for the four
// media classes as the disk/MEMS latency ratio sweeps 1..10.
func runFig7a(uint64) (Result, error) {
	var series []plot.Series
	for _, br := range bitRates {
		var pts []plot.Point
		for ratio := 1.0; ratio <= 10.0; ratio += 0.5 {
			if red, ok := costReductionAt(br.rate, ratio); ok {
				pts = append(pts, plot.Point{X: ratio, Y: red})
			}
		}
		series = append(series, plot.Series{Name: br.name, Points: pts})
	}
	c := &plot.Chart{
		Title:  "Percentage reduction in buffering cost (5GB DRAM box, 2xG3 buffer)",
		XLabel: "Latency ratio (L̄_disk / L̄_mems)",
		YLabel: "Cost reduction (%)",
		Series: series,
	}
	out := c.Render()
	out += "\nAt the G3 design point (ratio ≈ 7.3):\n"
	for _, br := range bitRates {
		if red, ok := costReductionAt(br.rate, 7.3); ok {
			out += fmt.Sprintf("  %-13s %.0f%%\n", br.name, red)
		} else {
			out += fmt.Sprintf("  %-13s infeasible\n", br.name)
		}
	}
	return Result{Output: out, Series: series}, nil
}

// runFig7b reproduces Figure 7(b): the same quantity as a contour map over
// (latency ratio, bit-rate), with the paper's 25/50/75% region boundaries.
func runFig7b(uint64) (Result, error) {
	ratios := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// Bit-rates 10KB/s..10MB/s on a log grid, high rates at the top as in
	// the paper's Y axis.
	var rates []units.ByteRate
	for _, base := range []float64{1e7, 5e6, 2e6, 1e6, 5e5, 2e5, 1e5, 5e4, 2e4, 1e4} {
		rates = append(rates, units.ByteRate(base))
	}
	cells := make([][]float64, len(rates))
	yticks := make([]string, len(rates))
	for i, r := range rates {
		cells[i] = make([]float64, len(ratios))
		yticks[i] = units.ByteRate(r).String()
		for j, ratio := range ratios {
			if red, ok := costReductionAt(r, ratio); ok {
				cells[i][j] = red
			} else {
				cells[i][j] = 0
			}
		}
	}
	xticks := make([]string, len(ratios))
	for j, r := range ratios {
		xticks[j] = fmt.Sprintf("%g", r)
	}
	c := &plot.Contour{
		Title:      "Cost-reduction regions",
		XLabel:     "latency ratio",
		YLabel:     "average stream bit-rate",
		XTicks:     xticks,
		YTicks:     yticks,
		Thresholds: []float64{25, 50, 75},
		Glyphs:     []byte(" .+#"),
		Cells:      cells,
	}
	return Result{Output: c.Render()}, nil
}
