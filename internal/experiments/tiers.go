package experiments

import (
	"fmt"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/server"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func init() {
	register("tiercompare",
		"MEMS-as-published vs NVM/SSD middle tiers (our addition)", runTierCompare)
}

// runTierCompare asks the question the tier abstraction exists to answer:
// does the paper's buffered-hierarchy argument survive swapping the MEMS
// middle tier for hardware that actually shipped? For each built-in
// parameter set we size the smallest feasible bank for the paper's DVD
// operating point (Theorem 2), price the hierarchy against direct
// disk→DRAM service (Eq 1/2/9), and then run the discrete-event buffered
// server with that bank to confirm the plan holds (no underflows).
func runTierCompare(seed uint64) (Result, error) {
	const n = 150
	bitRate := 1 * units.MBPS
	d := paperDisk()
	load := model.StreamLoad{N: n, BitRate: bitRate}
	direct, err := model.DiskDirect(load, d)
	if err != nil {
		return Result{}, err
	}
	directCost := paperCosts.DRAMCost(direct.TotalDRAM)

	t := &plot.Table{
		Title: fmt.Sprintf(
			"%d DVD streams, buffered hierarchy per middle tier (direct DRAM: %v, %v)",
			n, direct.TotalDRAM, directCost),
		Headers: []string{"tier", "R", "Lmax", "k", "DRAM", "cost", "$/stream",
			"max N (1GB)", "underflows", "tier util"},
	}
	var met Metrics
	for _, name := range []string{"mems-g3", "nvm-optane", "ssd-sata", "disk-future"} {
		p := tier.MustLookup(name)
		spec := model.DeviceSpec{Rate: p.Rate, Latency: p.MaxLatency}
		costs := model.NewCostModel(20, p.CostPerGB, p.Capacity)

		cfg := model.BufferConfig{Load: load, Disk: d, Tier: spec, SizePerDevice: p.Capacity}
		k, plan, err := model.MinFeasibleK(cfg, 2, 64)
		if err != nil {
			t.AddRow(name, p.Rate.String(), p.MaxLatency.String(),
				"-", "-", "infeasible", "-", "-", "-", "-")
			continue
		}
		cfg.K = k
		maxN := model.MaxStreamsBuffered(cfg, 1*units.GB)
		total := units.Dollars(float64(costs.TierBankCost(0, k)) +
			float64(costs.DRAMCost(plan.TotalDRAM)))

		scfg := server.Config{
			Mode: server.Buffered, Disk: disk.FutureDisk(), Tier: p,
			K: k, N: n, BitRate: bitRate, Titles: 100,
			X: 10, Y: 90, Seed: seed,
			Duration: 10 * time.Second,
		}
		res, err := server.Run(scfg)
		if err != nil {
			return Result{}, fmt.Errorf("tiercompare %s: %w", name, err)
		}
		met.addRun(res)

		t.AddRow(name, p.Rate.String(),
			p.MaxLatency.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", k), plan.TotalDRAM.String(), total.String(),
			fmt.Sprintf("%.2f", float64(total)/n),
			fmt.Sprintf("%d", maxN),
			fmt.Sprintf("%d", res.Underflows),
			fmt.Sprintf("%.2f", res.MEMSUtil))
	}
	out := t.Render() +
		"\nThe hierarchy argument is about the parameter point, not the device:\n" +
		"any middle tier that is an order of magnitude cheaper than DRAM with\n" +
		"disk-class streaming bandwidth buys the same DRAM displacement the\n" +
		"paper claims for MEMS (footnote 2). Optane-class NVM lands near the\n" +
		"published G3 point; SATA-class flash is cheaper still but its lower\n" +
		"bandwidth forces a wider bank; a second disk as \"buffer\" needs no\n" +
		"new technology but burns its savings on mechanical latency DRAM.\n"
	return Result{Output: out, Metrics: met}, nil
}
