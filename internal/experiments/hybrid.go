package experiments

import (
	"fmt"

	"memstream/internal/disk"
	"memstream/internal/plot"
	"memstream/internal/server"
	"memstream/internal/units"
)

func init() {
	register("hybrid",
		"Hybrid buffer+cache bank split, simulated (paper §7)", runHybridExperiment)
}

// runHybridExperiment simulates the §7 future-work configuration across
// bank splits: a 4-device bank serves 300 streams with j devices caching
// (striped) and 4−j buffering the misses, under skewed and near-uniform
// popularity. Pure configurations use the Cached/Buffered architectures;
// interior splits use the hybrid pipeline.
func runHybridExperiment(seed uint64) (Result, error) {
	const (
		k       = 4
		n       = 300
		bitRate = 100 * units.KBPS
		titles  = 400
	)
	var met Metrics
	t := &plot.Table{
		Title: fmt.Sprintf("Hybrid splits of a %d-device bank, %d streams, %v", k, n, bitRate),
		Headers: []string{"popularity", "cache/buffer split", "from cache",
			"underflows", "peak DRAM", "bank util"},
	}
	for _, dist := range []struct{ x, y float64 }{{5, 95}, {50, 50}} {
		for j := 0; j <= k; j++ {
			cfg := server.Config{
				Disk: disk.FutureDisk(), Tier: curTier,
				K: k, CacheDevices: j,
				N: n, BitRate: bitRate, Titles: titles,
				X: dist.x, Y: dist.y, Seed: seed,
			}
			switch j {
			case 0:
				cfg.Mode = server.Buffered
			case k:
				cfg.Mode = server.Cached
				cfg.CacheDevices = 0
			default:
				cfg.Mode = server.Hybrid
			}
			res, err := server.Run(cfg)
			if err != nil {
				return Result{}, err
			}
			met.addRun(res)
			t.AddRow(
				fmt.Sprintf("%g:%g", dist.x, dist.y),
				fmt.Sprintf("%d cache / %d buffer", j, k-j),
				fmt.Sprintf("%d", res.FromCache),
				fmt.Sprintf("%d", res.Underflows),
				res.DRAMHighWater.String(),
				fmt.Sprintf("%.2f", res.MEMSUtil),
			)
		}
	}
	out := t.Render() +
		"\nEvery split meets every deadline; skewed popularity shifts more\n" +
		"streams onto the cache side as the cache share grows, while uniform\n" +
		"popularity leaves the cache half-used — the trade-off §7 proposes to\n" +
		"exploit by re-splitting the bank as the popularity profile drifts.\n"
	return Result{Output: out, Metrics: met}, nil
}
