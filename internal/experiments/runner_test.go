package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestMatch(t *testing.T) {
	all, err := Match("")
	if err != nil || !reflect.DeepEqual(all, IDs()) {
		t.Fatalf("empty pattern: %v, %v", all, err)
	}
	one, err := Match("fig9a")
	if err != nil || !reflect.DeepEqual(one, []string{"fig9a"}) {
		t.Fatalf("exact id: %v, %v", one, err)
	}
	fam, err := Match("fig9.*")
	if err != nil || !reflect.DeepEqual(fam, []string{"fig9-zipf", "fig9a", "fig9b"}) {
		t.Fatalf("family: %v, %v", fam, err)
	}
	if _, err := Match("fig99"); err == nil {
		t.Error("no-match pattern accepted")
	}
	if _, err := Match("fig9(("); err == nil {
		t.Error("bad regexp accepted")
	}
}

func TestRunSuiteUnknownID(t *testing.T) {
	if _, err := RunSuite([]string{"table1", "fig99"}, 1, 1, nil); err == nil {
		t.Error("unknown id accepted")
	}
}

// sameRuns compares two suite runs modulo wall-clock fields.
func sameRuns(t *testing.T, a, b RunReport) {
	t.Helper()
	if a.ID != b.ID || a.Seed != b.Seed || a.Error != b.Error {
		t.Errorf("%s: identity drifted: %+v vs %+v", a.ID, a, b)
		return
	}
	if a.Events != b.Events || a.Streams != b.Streams || a.Underflows != b.Underflows {
		t.Errorf("%s: metrics drifted: events %d/%d streams %d/%d underflows %d/%d",
			a.ID, a.Events, b.Events, a.Streams, b.Streams, a.Underflows, b.Underflows)
	}
	if a.Result.Output != b.Result.Output {
		t.Errorf("%s: output not byte-identical", a.ID)
	}
	if !reflect.DeepEqual(a.Result.Series, b.Result.Series) {
		t.Errorf("%s: series drifted", a.ID)
	}
}

// The tentpole property: the full suite from one root seed is
// byte-identical at any worker count — parallel dispatch and completion
// order must not leak into any result.
func TestSuiteParallelDeterminism(t *testing.T) {
	ids := IDs()
	serial, err := RunSuite(ids, 42, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuite(ids, 42, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Failed() != 0 || parallel.Failed() != 0 {
		t.Fatalf("failures: serial %d, parallel %d", serial.Failed(), parallel.Failed())
	}
	if len(serial.Runs) != len(ids) || len(parallel.Runs) != len(ids) {
		t.Fatalf("run counts: %d, %d, want %d", len(serial.Runs), len(parallel.Runs), len(ids))
	}
	for i := range serial.Runs {
		sameRuns(t, serial.Runs[i], parallel.Runs[i])
	}
}

// Seeds key off the experiment ID, so running a subset reproduces the
// full suite's per-experiment artifacts.
func TestSuiteSubsetReproducesFullSuite(t *testing.T) {
	full, err := RunSuite([]string{"besteffort", "ablation-devcache", "table1"}, 7, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := RunSuite([]string{"ablation-devcache"}, 7, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRuns(t, full.Runs[1], sub.Runs[0])
}

// Different root seeds must actually reach the RNG-driven experiments.
func TestSuiteRootSeedPropagates(t *testing.T) {
	a, err := RunSuite([]string{"besteffort"}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite([]string{"besteffort"}, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs[0].Seed == b.Runs[0].Seed {
		t.Error("per-run seed ignores the root seed")
	}
	if a.Runs[0].Result.Output == b.Runs[0].Result.Output {
		t.Error("besteffort output identical across root seeds — seed not reaching the RNG")
	}
}

func TestSuiteProgressCallback(t *testing.T) {
	var seen []string
	progress := func(done, total int, rep RunReport) {
		if total != 2 || done < 1 || done > 2 {
			t.Errorf("progress counters done=%d total=%d", done, total)
		}
		seen = append(seen, rep.ID)
	}
	if _, err := RunSuite([]string{"table1", "table2"}, 1, 2, progress); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("progress fired %d times, want 2", len(seen))
	}
}

// Simulation-backed experiments must export non-zero run metrics.
func TestSimulationMetricsExported(t *testing.T) {
	res, err := Run("validate")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Events == 0 {
		t.Error("validate reports zero simulation events")
	}
	if res.Metrics.Streams == 0 {
		t.Error("validate reports zero streams served")
	}
	if res.Metrics.Underflows != 0 {
		t.Errorf("validate reports %d underflows, want 0", res.Metrics.Underflows)
	}
	if !strings.HasPrefix(res.ID, "validate") {
		t.Errorf("result tagged %q", res.ID)
	}
}
