package experiments

import (
	"fmt"
	"time"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

func init() {
	register("dynamics",
		"Session dynamics: admission blocking at equal cost (our addition)", runDynamics)
}

// runDynamics extends the paper's steady-state evaluation with the
// teletraffic view: Poisson session arrivals with exponential holding
// times are offered to three equal-budget servers (direct, MEMS-buffered,
// MEMS-cached), each admitting sessions up to the capacity its plan
// supports. The MEMS configurations' larger capacity regions translate
// into lower blocking at equal offered load.
func runDynamics(seed uint64) (Result, error) {
	const budget = units.Dollars(100)
	bitRate := 100 * units.KBPS

	// Capacity regions at equal cost.
	direct := model.MaxStreamsDirect(bitRate, paperDisk(), paperCosts.DRAMFor(budget))
	bufCfg := model.BufferConfig{
		Load: model.StreamLoad{BitRate: bitRate},
		Disk: paperDisk(), Tier: paperTier(), K: 2, SizePerDevice: tierCapacity(),
	}
	buffered := model.MaxStreamsBuffered(bufCfg, paperCosts.DRAMFor(budget-paperCosts.BankCost(2)))
	cacheCfg := model.CacheConfig{
		Load: model.StreamLoad{N: 1, BitRate: bitRate},
		Disk: paperDisk(), Tier: paperTier(), K: 2, Policy: model.Striped,
		SizePerDevice: tierCapacity(), ContentSize: contentSize, X: 5, Y: 95,
	}
	cached := model.MaxStreamsCached(cacheCfg, paperCosts.DRAMFor(budget-paperCosts.BankCost(2)))

	t := &plot.Table{
		Title: fmt.Sprintf("Blocking probability, $%0.f budget, %v sessions (5:95 popularity for the cache)",
			float64(budget), bitRate),
		Headers: []string{"offered erlangs",
			fmt.Sprintf("direct (cap %d)", direct),
			fmt.Sprintf("buffered (cap %d)", buffered),
			fmt.Sprintf("cached (cap %d)", cached)},
	}
	for _, offered := range []float64{0.5, 1.0, 1.5, 2.0} {
		row := []string{fmt.Sprintf("%.1fx direct cap", offered)}
		for _, capN := range []int{direct, buffered, cached} {
			p := workload.SessionProcess{
				ArrivalRate: offered * float64(direct) / 600, // hold = 600s
				MeanHold:    10 * time.Minute,
				BitRate:     bitRate,
			}
			sessions, err := p.Generate(sim.NewRNG(seed), 6*time.Hour)
			if err != nil {
				return Result{}, err
			}
			capN := capN
			stats := workload.ReplayAdmission(sessions, func(busy int) bool { return busy < capN })
			row = append(row, fmt.Sprintf("%.3f (avg %d busy)", stats.BlockProb, int(stats.AvgBusy)))
		}
		t.AddRow(row...)
	}
	out := t.Render() +
		"\nAt loads that saturate the direct server, the MEMS configurations'\n" +
		"larger capacity regions keep blocking near zero — the admission-control\n" +
		"consequence of the paper's throughput results.\n"
	return Result{Output: out}, nil
}
