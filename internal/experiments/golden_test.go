package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenIDs are the artifacts pinned byte-for-byte: they are pure
// functions of the Table 3 constants, so any drift means a model or
// rendering change that EXPERIMENTS.md must re-verify.
var goldenIDs = []string{"table1", "table2", "table3", "fig7b", "sens"}

func TestGoldenArtifacts(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(res.Output), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/experiments -update`): %v", err)
			}
			if string(want) != res.Output {
				t.Errorf("%s drifted from golden output; if intentional, re-run with -update and re-verify EXPERIMENTS.md", id)
			}
		})
	}
}
