package experiments

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/plot"
	"memstream/internal/sim"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func init() {
	register("ablation-devcache",
		"Ablation: on-device caches help best-effort, not streaming (§3, §6)", runAblationDevCache)
}

// runAblationDevCache demonstrates the distinction the paper draws between
// workload classes (§6): best-effort data has temporal locality that
// traditional caches exploit, streaming data does not. We run two access
// patterns against a G3 device with and without its on-device cache:
//
//   - a best-effort pattern with an 80/20 re-reference mix, where the
//     cache absorbs re-reads;
//   - a streaming pattern (sequential per-stream, round-robin), where
//     every access is new data and the cache never hits.
func runAblationDevCache(seed uint64) (Result, error) {
	const accesses = 2000
	t := &plot.Table{
		Title:   "G3 MEMS with a 16MB on-device cache: per-access mean service time",
		Headers: []string{"workload", "no cache", "with cache", "hit ratio", "speedup"},
	}

	bePlain, _, err := runPattern(false, false, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	beCached, beHits, err := runPattern(false, true, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("best-effort (80/20 re-reads)",
		bePlain.Round(time.Microsecond).String(),
		beCached.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", beHits),
		fmt.Sprintf("%.1fx", float64(bePlain)/float64(beCached)))

	stPlain, _, err := runPattern(true, false, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	stCached, stHits, err := runPattern(true, true, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("streaming (sequential, no re-reads)",
		stPlain.Round(time.Microsecond).String(),
		stCached.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", stHits),
		fmt.Sprintf("%.2fx", float64(stPlain)/float64(stCached)))

	out := t.Render() +
		"\nThe on-device cache (assumed by §3) pays off only where accesses\n" +
		"repeat; streaming consumes each byte once, which is why the paper\n" +
		"positions MEMS as a *buffer/cache layer sized for whole streams*\n" +
		"rather than relying on traditional block caching (§6, [18]).\n"
	return Result{Output: out}, nil
}

// runPattern measures mean service time and cache hit ratio for one
// workload shape.
func runPattern(streaming, cached bool, accesses int, seed uint64) (time.Duration, float64, error) {
	dev, err := tier.New(curTier)
	if err != nil {
		return 0, 0, err
	}
	d, ok := dev.(interface {
		tier.Device
		tier.Cacheable
	})
	if !ok {
		return 0, 0, fmt.Errorf("tier %s has no on-device cache support", curTier.Name)
	}
	if cached {
		if err := d.EnableCache(16*units.MB, 1*units.GBPS); err != nil {
			return 0, 0, err
		}
	}
	rng := sim.NewRNG(seed)
	const blocks = 128 // 64KB accesses
	g := d.Geometry()

	// Hot set for the best-effort pattern: 64 extents re-read 80% of the
	// time (classic 80/20).
	hot := make([]int64, 64)
	for i := range hot {
		hot[i] = int64(rng.Float64() * float64(g.Blocks-blocks))
	}
	// Streaming pattern state: 16 sequential streams served round-robin.
	streams := make([]int64, 16)
	for i := range streams {
		streams[i] = int64(rng.Float64() * float64(g.Blocks-blocks*int64(accesses)))
		if streams[i] < 0 {
			streams[i] = 0
		}
	}

	var now, total time.Duration
	for i := 0; i < accesses; i++ {
		var lbn int64
		if streaming {
			s := i % len(streams)
			lbn = streams[s]
			streams[s] += blocks
			if streams[s]+blocks > g.Blocks {
				streams[s] = 0
			}
		} else if rng.Float64() < 0.8 {
			lbn = hot[rng.Intn(len(hot))]
		} else {
			lbn = int64(rng.Float64() * float64(g.Blocks-blocks))
		}
		c, err := d.Service(now, device.Request{Op: device.Read, Block: lbn, Blocks: blocks})
		if err != nil {
			return 0, 0, err
		}
		total += c.ServiceTime()
		now = c.Finish
	}
	hitRatio := 0.0
	if d.Cache() != nil {
		hitRatio = d.Cache().HitRatio()
	}
	return total / time.Duration(accesses), hitRatio, nil
}
