package experiments

import (
	"fmt"
	"math"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/units"
	"memstream/internal/workload"
)

func init() {
	register("fig9-zipf",
		"Figure 9 under Zipf popularity (robustness check, our addition)", runFig9Zipf)
}

// runFig9Zipf re-runs the Figure 9(a) throughput comparison with Zipf
// popularity instead of the paper's piecewise-uniform X:Y model. The hit
// ratio comes from the empirical catalog weights (a prefix cache absorbs
// the top-ranked titles' probability mass), feeding the same Theorems 3–4
// sizing. The cache conclusion should be robust to the popularity model —
// skew is what matters, not its parametric form.
func runFig9Zipf(uint64) (Result, error) {
	const (
		budget  = units.Dollars(100)
		k       = 2
		bitRate = 10 * units.KBPS
		titles  = 1000
	)
	base := directThroughput(bitRate, budget)
	dram := paperCosts.DRAMFor(budget - paperCosts.BankCost(k))

	// One device title footprint: contentSize spread over the catalog.
	titleSize := contentSize / units.Bytes(titles)
	cachedTitles := int(float64(k) * float64(tierCapacity()) / float64(titleSize)) // striped pools capacity
	p := float64(cachedTitles) / float64(titles)

	t := &plot.Table{
		Title:   fmt.Sprintf("Max streams at $%.0f, 2xG3 striped cache, Zipf(s) popularity", float64(budget)),
		Headers: []string{"Zipf s", "hit ratio h", "w/o cache", "with cache", "gain"},
	}
	for _, s := range []float64{0.5, 0.8, 1.0, 1.2, 1.5} {
		w := workload.Zipf(titles, s)
		cat, err := workload.NewCatalog(titles, workload.MediaClass{
			Name: "zipf", BitRate: bitRate, Duration: titleSize.Duration(bitRate),
		}, w, 512)
		if err != nil {
			return Result{}, err
		}
		h := cat.TopFraction(p)

		cfg := model.CacheConfig{
			Load: model.StreamLoad{N: 1, BitRate: bitRate},
			Disk: paperDisk(), Tier: paperTier(),
			K: k, Policy: model.Striped,
			SizePerDevice: tierCapacity(), ContentSize: contentSize,
		}
		n := maxStreamsWithHit(cfg, h, dram)
		gain := 100 * (float64(n) - float64(base)) / float64(base)
		t.AddRow(
			fmt.Sprintf("%.1f", s),
			fmt.Sprintf("%.2f", h),
			fmt.Sprintf("%d", base),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%+.0f%%", gain),
		)
	}
	out := t.Render() +
		"\nThe cache pays off once the Zipf exponent gives the cached prefix a\n" +
		"large probability mass — the same crossover Figure 9 shows for X:Y\n" +
		"skew, confirming the conclusion does not depend on the popularity\n" +
		"model's parametric form.\n"
	return Result{Output: out}, nil
}

// maxStreamsWithHit is MaxStreamsCached for an explicit hit ratio.
func maxStreamsWithHit(cfg model.CacheConfig, h float64, dramCap units.Bytes) int {
	feasible := func(n int) bool {
		c := cfg
		c.Load.N = n
		plan, err := model.CachePlanWithHit(c, h)
		if err != nil {
			return false
		}
		return dramCap == 0 || plan.TotalDRAM <= dramCap
	}
	if !feasible(1) {
		return 0
	}
	lo, hi := 1, 2
	for feasible(hi) && hi < math.MaxInt32/2 {
		lo = hi
		hi *= 2
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
