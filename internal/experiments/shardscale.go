package experiments

import (
	"fmt"

	"memstream/internal/shard"
	"memstream/internal/units"
)

func init() {
	register("shardscale",
		"Sharded multi-core engine: partitioned direct servers with deterministic merge (our addition)", runShardScale)
}

// shardWorkers is the shard goroutine count the sharded experiments run
// with — wired from the CLIs' -shards flag. It changes only how much
// hardware a run uses: partition seeds are pure functions of (seed,
// partition) and the merge folds in partition order, so every artifact is
// byte-identical at any value (CI diffs -shards=1 vs -shards=8). Set it
// before starting a suite; it is read concurrently by suite workers.
var shardWorkers = 1

// SetShardWorkers configures the shard goroutine count for sharded
// experiments (values below 1 run as 1). Call before RunSuite.
func SetShardWorkers(n int) {
	if n < 1 {
		n = 1
	}
	shardWorkers = n
}

// runShardScale exercises the shard layer at suite-friendly size: 2048
// DivX streams split into 8 partitions of 256, each an independent
// direct-mode server on its own FutureDisk. The artifact renders the
// per-partition results and the deterministic merge; wall-clock and
// shard-count dependent figures are deliberately excluded so the artifact
// is byte-identical at any -shards value. The full-size variant of this
// scenario (a million streams across 245 partitions) runs via
// memsim -scale and is recorded in the BENCH_<n>.json trajectory.
func runShardScale(seed uint64) (Result, error) {
	plan, err := shard.Uniform(2048, 256, 100*units.KBPS, 0)
	if err != nil {
		return Result{}, err
	}
	rep, err := shard.Run(plan, seed, shardWorkers)
	if err != nil {
		return Result{}, err
	}

	var met Metrics
	out := fmt.Sprintf("plan %s: %d partitions, seeds split from root %d\n\n",
		rep.Plan, rep.Partitions, seed)
	out += fmt.Sprintf("%-5s %-20s %8s %8s %8s %11s\n",
		"part", "seed", "streams", "events", "cycles", "underflows")
	for _, pr := range rep.Parts {
		met.addRun(pr.Result)
		out += fmt.Sprintf("%-5d %-20d %8d %8d %8d %11d\n",
			pr.Part, pr.Seed, pr.Result.Streams, pr.Result.Events,
			pr.Result.Cycles, pr.Result.Underflows)
	}
	out += "\nmerged (order-independent fold, byte-identical at any shard count):\n"
	out += rep.Merged.Render()
	return Result{Output: out, Metrics: met}, nil
}
