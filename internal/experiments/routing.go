package experiments

import (
	"fmt"
	"time"

	"memstream/internal/bank"
	"memstream/internal/device"
	"memstream/internal/plot"
	"memstream/internal/sim"
	"memstream/internal/units"
)

func init() {
	register("ablation-routing",
		"Ablation: bank routing — whole IOs round-robin vs striping (§3.1.2)", runAblationRouting)
}

// runAblationRouting quantifies the paper's §3.1.2 design decision for the
// buffer bank: "Striping data for each stream across the k MEMS devices
// ... reduces the size of disk-side IOs by a factor of k. Since a smaller
// average IO size decreases the MEMS device throughput, striping can be
// undesirable." We stage a batch of disk-sized IOs on a k=2 bank under
// both routings, using the real device simulators, and report the
// achieved staging throughput.
func runAblationRouting(seed uint64) (Result, error) {
	const k = 2
	const batch = 64
	sizes := []units.Bytes{64 * units.KB, 256 * units.KB, 1 * units.MB, 4 * units.MB, 20 * units.MB}

	t := &plot.Table{
		Title:   fmt.Sprintf("Staging throughput of a %d-device G3 bank, %d IOs per batch", k, batch),
		Headers: []string{"disk IO size", "whole-IO round-robin", "striped 1/k pieces", "advantage"},
	}
	for _, size := range sizes {
		whole, err := stageWhole(k, batch, size, seed)
		if err != nil {
			return Result{}, err
		}
		striped, err := stageStriped(k, batch, size, seed)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(
			size.String(),
			whole.String(),
			striped.String(),
			fmt.Sprintf("%.2fx", float64(whole)/float64(striped)),
		)
	}
	out := t.Render() +
		"\nRouting each disk IO wholly to one device preserves large per-device\n" +
		"transfers; striping pays every device's positioning cost for 1/k of the\n" +
		"data. The gap closes as IOs grow — exactly why §3.1.2 routes whole IOs\n" +
		"round-robin and reserves striping for the cache (where it buys capacity).\n"
	return Result{Output: out}, nil
}

// stageWhole round-robins whole IOs across k parallel devices and returns
// the achieved aggregate throughput.
func stageWhole(k, batch int, size units.Bytes, seed uint64) (units.ByteRate, error) {
	devs, err := bank.New(k, curTier)
	if err != nil {
		return 0, err
	}
	blocks := int64(size / devs[0].Geometry().BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	rng := sim.NewRNG(seed)
	finish := make([]time.Duration, k)
	for i := 0; i < batch; i++ {
		dev := i % k
		// Staging rings belong to different streams, scattered over the sled.
		lbn := int64(rng.Float64() * float64(devs[dev].Geometry().Blocks-blocks))
		c, err := devs[dev].Service(finish[dev], device.Request{
			Op: device.Write, Block: lbn, Blocks: blocks,
		})
		if err != nil {
			return 0, err
		}
		finish[dev] = c.Finish
	}
	last := finish[0]
	for _, f := range finish[1:] {
		if f > last {
			last = f
		}
	}
	return units.RateOf(size.Mul(float64(batch)), last), nil
}

// stageStriped splits every IO into k lock-step pieces and returns the
// achieved aggregate throughput.
func stageStriped(k, batch int, size units.Bytes, seed uint64) (units.ByteRate, error) {
	devs, err := bank.New(k, curTier)
	if err != nil {
		return 0, err
	}
	piece := int64(size / units.Bytes(k) / devs[0].Geometry().BlockSize)
	if piece < 1 {
		piece = 1
	}
	rng := sim.NewRNG(seed)
	var now time.Duration
	for i := 0; i < batch; i++ {
		// All devices perform the same relative access; the IO completes
		// when the slowest finishes.
		lbn := int64(rng.Float64() * float64(devs[0].Geometry().Blocks-piece))
		var slowest time.Duration
		for _, d := range devs {
			c, err := d.Service(now, device.Request{
				Op: device.Write, Block: lbn, Blocks: piece,
			})
			if err != nil {
				return 0, err
			}
			if c.Finish > slowest {
				slowest = c.Finish
			}
		}
		now = slowest
	}
	return units.RateOf(size.Mul(float64(batch)), now), nil
}
