package experiments

import (
	"fmt"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/server"
	"memstream/internal/units"
)

func init() {
	register("occupancy",
		"Per-cycle dynamics: DRAM occupancy and device queues from the run-core probe (our addition)", runOccupancy)
}

// runOccupancy exercises the run-core's observability probe: the direct
// and MEMS-cached servers run with tracing on, and the per-cycle samples
// become occupancy and queue-depth series. The steady-state experiments
// report end-of-run scalars; this one shows the transient — buffers
// priming over the first cycle, occupancy flattening once supply and
// consumption balance, and the per-cycle IO batches draining inside each
// cycle (the cycle-level behaviour Figures 2 and 3 argue from).
func runOccupancy(seed uint64) (Result, error) {
	var met Metrics
	var out string
	var series []plot.Series

	runs := []struct {
		label string
		cfg   server.Config
	}{
		{"direct 50x1MB/s", server.Config{
			Mode: server.Direct, Disk: disk.FutureDisk(),
			N: 50, BitRate: 1 * units.MBPS,
			Titles: 50, X: 10, Y: 90, Seed: seed, Trace: true,
		}},
		{"mems-cache 400x100KB/s", server.Config{
			Mode: server.Cached, Disk: disk.FutureDisk(), Tier: curTier,
			K: 2, CachePolicy: model.Striped,
			N: 400, BitRate: 100 * units.KBPS,
			Titles: 200, X: 10, Y: 90, Seed: seed, Trace: true,
		}},
	}
	for _, rc := range runs {
		res, err := server.Run(rc.cfg)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", rc.label, err)
		}
		met.addRun(res)

		occ := plot.Series{Name: rc.label + " DRAM MB"}
		queue := plot.Series{Name: rc.label + " max queue"}
		var hits uint64
		for _, s := range res.Trace.Samples {
			at := s.At.Seconds()
			occ.Points = append(occ.Points, plot.Point{X: at, Y: float64(s.DRAMInUse) / 1e6})
			maxQ := 0
			for _, d := range s.Devices {
				if d.Queue > maxQ {
					maxQ = d.Queue
				}
			}
			queue.Points = append(queue.Points, plot.Point{X: at, Y: float64(maxQ)})
			hits += s.CacheFillsDelta
		}
		series = append(series, occ, queue)

		c := &plot.Chart{
			Title:  fmt.Sprintf("%s: DRAM occupancy over %d cycle samples", rc.label, len(res.Trace.Samples)),
			XLabel: "simulated seconds",
			YLabel: "DRAM in use (MB)",
		}
		c.Add("occupancy", occ.Points)
		out += c.Render() + "\n"
		out += fmt.Sprintf("%-24s samples=%d high-water=%v underflows=%d cache-fills=%d\n\n",
			rc.label, len(res.Trace.Samples), res.DRAMHighWater, res.Underflows, hits)
	}
	out += "The probe samples inside each scheduling cycle: occupancy climbs while\n" +
		"the cycle's IO batch fills buffers faster than playback drains them, then\n" +
		"decays until the next cycle — the sawtooth Theorem 1 provisions for.\n"
	res := Result{Output: out, Series: series}
	res.Metrics = met
	return res, nil
}
