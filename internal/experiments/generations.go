package experiments

import (
	"fmt"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func init() {
	register("generations",
		"MEMS generations G1-G3 as buffer and cache (our addition)", runGenerations)
	register("year2002",
		"The 2002 baseline that motivates the paper (our addition)", runYear2002)
}

// runGenerations sweeps the CMU device generations through the buffer and
// cache roles: the framework prices any (rate, latency, capacity, cost)
// point, so the G1→G3 trajectory shows when MEMS becomes compelling.
func runGenerations(uint64) (Result, error) {
	d := paperDisk()
	load := model.StreamLoad{N: 2000, BitRate: 100 * units.KBPS}
	direct, err := model.DiskDirect(load, d)
	if err != nil {
		return Result{}, err
	}
	directCost := paperCosts.DRAMCost(direct.TotalDRAM)

	t := &plot.Table{
		Title: fmt.Sprintf("2000 DivX streams: buffering/caching with each MEMS generation (direct DRAM: %v, %v)",
			direct.TotalDRAM, directCost),
		Headers: []string{"device", "R", "L̄max", "buffer k", "buffered DRAM",
			"buffer cost", "cache gain ($100, 1:99)"},
	}
	for _, gen := range []string{"mems-g1", "mems-g2", "mems-g3"} {
		p := tier.MustLookup(gen)
		spec := model.DeviceSpec{Rate: p.Rate, Latency: p.MaxLatency}
		costs := model.NewCostModel(20, p.CostPerGB, p.Capacity)

		bufferCell, dramCell, kCell := "infeasible", "-", "-"
		cfg := model.BufferConfig{Load: load, Disk: d, Tier: spec, SizePerDevice: p.Capacity}
		if k, plan, err := model.MinFeasibleK(cfg, 2, 64); err == nil {
			kCell = fmt.Sprintf("%d", k)
			dramCell = plan.TotalDRAM.String()
			total := units.Dollars(float64(costs.BankCost(k)) + float64(costs.DRAMCost(plan.TotalDRAM)))
			saved := float64(directCost - total)
			if saved >= 0 {
				bufferCell = fmt.Sprintf("%v (saves %.0f%%)", total, 100*saved/float64(directCost))
			} else {
				bufferCell = fmt.Sprintf("%v (%.1fx direct)", total, float64(total)/float64(directCost))
			}
		}

		// Cache gain at a $100 budget under 1:99 popularity.
		base := model.MaxStreamsDirect(load.BitRate, d, costs.DRAMFor(100))
		gainCell := "-"
		if devBudget := costs.DeviceCost(0); devBudget < 100 {
			k := 2
			dram := costs.DRAMFor(100 - costs.BankCost(k))
			if dram > 0 {
				ccfg := model.CacheConfig{
					Load: model.StreamLoad{N: 1, BitRate: load.BitRate},
					Disk: d, Tier: spec, K: k, Policy: model.Striped,
					SizePerDevice: p.Capacity, ContentSize: contentSize,
					X: 1, Y: 99,
				}
				n := model.MaxStreamsCached(ccfg, dram)
				gainCell = fmt.Sprintf("%+.0f%%", 100*(float64(n)-float64(base))/float64(base))
			}
		}
		t.AddRow(p.MEMS.Name, p.Rate.String(),
			p.MaxLatency.Round(10000).String(),
			kCell, dramCell, bufferCell, gainCell)
	}
	out := t.Render() +
		"\nEach generation doubles capacity and bandwidth while latency and $/GB\n" +
		"fall; the framework prices every point, showing the architecture is\n" +
		"attractive well before the G3 design the paper evaluates.\n"
	return Result{Output: out}, nil
}

// runYear2002 evaluates the paper's motivation on the 2002 hardware of its
// Table 1: an Atlas 10K III with DRAM at $200/GB. The DRAM bill for a
// loaded streaming server was brutal — which is exactly why a cheap
// low-latency layer looked so attractive.
func runYear2002(uint64) (Result, error) {
	p := disk.Atlas10K3()
	d := model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()}
	costs2002 := model.NewCostModel(200, 10, 3.46*units.GB)

	t := &plot.Table{
		Title:   "Year 2002: Atlas 10K III (55MB/s), DRAM at $200/GB",
		Headers: []string{"class", "max streams", "DRAM at 90% load", "DRAM cost"},
	}
	for _, br := range bitRates {
		nMax := model.MaxStreamsDirect(br.rate, d, 0)
		if nMax < 1 {
			t.AddRow(br.name, "0", "-", "-")
			continue
		}
		n := int(0.9 * float64(nMax))
		if n < 1 {
			n = 1
		}
		plan, err := model.DiskDirect(model.StreamLoad{N: n, BitRate: br.rate}, d)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(br.name,
			fmt.Sprintf("%d", nMax),
			plan.TotalDRAM.String(),
			costs2002.DRAMCost(plan.TotalDRAM).String(),
		)
	}
	out := t.Render() +
		"\nIn 2002 a single disk's worth of low bit-rate streams demanded hundreds\n" +
		"of dollars of DRAM per drive — the buffering-cost squeeze the paper's\n" +
		"introduction opens with, and the gap MEMS storage promised to fill.\n"
	return Result{Output: out}, nil
}
