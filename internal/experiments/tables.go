package experiments

import (
	"fmt"
	"time"

	"memstream/internal/disk"
	"memstream/internal/plot"
	"memstream/internal/tier"
)

func init() {
	register("table1", "Table 1: storage media characteristics (2002 and 2007)", runTable1)
	register("table2", "Table 2: analytical model parameters", runTable2)
	register("table3", "Table 3: 2007 device characteristics", runTable3)
}

// runTable1 reproduces the paper's Table 1: DRAM/MEMS/disk characteristics
// for 2002 and predicted 2007. The 2002 MEMS column is n/a — no device
// existed. Values are the paper's cited predictions ([16] for MEMS, [20]
// for disk, [12] for DRAM).
func runTable1(uint64) (Result, error) {
	t := &plot.Table{
		Title:   "Storage media characteristics",
		Headers: []string{"Year", "Metric", "DRAM", "MEMS", "Disk"},
	}
	t.AddRow("2002", "Capacity [GB]", "0.5", "n/a", "100")
	t.AddRow("2002", "Access time [ms]", "0.05", "n/a", "1-11")
	t.AddRow("2002", "Bandwidth [MB/s]", "2000", "n/a", "30-55")
	t.AddRow("2002", "Cost/GB", "$200", "n/a", "$2")
	t.AddRow("2002", "Cost/device", "$50-$200", "n/a", "$100-$300")

	m := tier.MustLookup("mems-g3")
	d := disk.FutureDisk()
	t.AddRow("2007", "Capacity [GB]", "5",
		fmt.Sprintf("%.0f", float64(m.Capacity)/1e9),
		fmt.Sprintf("%.0f", float64(d.Capacity)/1e9))
	t.AddRow("2007", "Access time [ms]", "0.03",
		fmt.Sprintf("%.2f (max)", float64(m.MaxLatency)/float64(time.Millisecond)),
		fmt.Sprintf("%.2f (avg)", float64(d.AvgAccess())/float64(time.Millisecond)))
	t.AddRow("2007", "Bandwidth [MB/s]", "10000",
		fmt.Sprintf("%.0f", float64(m.Rate)/1e6),
		fmt.Sprintf("%.0f-%.0f", float64(d.InnerRate)/1e6, float64(d.OuterRate)/1e6))
	t.AddRow("2007", "Cost/GB", "$20",
		fmt.Sprintf("$%.0f", float64(m.CostPerGB)),
		fmt.Sprintf("$%.1f", float64(d.CostPerGB)))
	t.AddRow("2007", "Cost/device", "$50-$200",
		fmt.Sprintf("$%.0f", float64(m.CostPerDev)),
		"$100-$300")
	return Result{Output: t.Render()}, nil
}

// runTable2 reproduces the paper's Table 2: the model's parameter glossary.
func runTable2(uint64) (Result, error) {
	t := &plot.Table{
		Title:   "Analytical model parameters",
		Headers: []string{"Parameter", "Description"},
	}
	rows := [][2]string{
		{"N", "Number of continuous media streams"},
		{"B̄", "Average bit-rate of the streams serviced [B/s]"},
		{"k", "Number of MEMS devices in system"},
		{"R_disk", "Data transfer rate from disk media [B/s]"},
		{"R_mems", "Data transfer rate from MEMS media [B/s]"},
		{"L̄_disk", "Average latency for disk IO operations [s]"},
		{"L̄_mems", "Average latency for MEMS IO operations [s]"},
		{"C_dram", "Unit DRAM cost [$/B]"},
		{"C_mems", "Unit MEMS cost [$/B]"},
		{"Size_mems", "MEMS capacity per device [B]"},
		{"Size_disk", "Disk capacity [B]"},
		{"S_disk-dram", "Average IO size from disk to DRAM [B]"},
		{"S_disk-mems", "Average IO size from disk to MEMS [B]"},
		{"S_mems-dram", "Average IO size from MEMS to DRAM [B]"},
		{"T_disk", "Disk IO cycle [s]"},
		{"T_mems", "MEMS IO cycle [s]"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return Result{Output: t.Render()}, nil
}

// runTable3 reproduces the paper's Table 3: the 2007 devices the
// evaluation uses, read back from our device models so the table is
// guaranteed to match what the experiments run.
func runTable3(uint64) (Result, error) {
	d := disk.FutureDisk()
	m := tier.MustLookup("mems-g3")
	t := &plot.Table{
		Title:   "Performance characteristics of storage devices in the year 2007",
		Headers: []string{"Parameter", "FutureDisk", "G3 MEMS", "DRAM"},
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
	}
	t.AddRow("RPM", fmt.Sprintf("%d", d.RPM), "-", "-")
	t.AddRow("Max. bandwidth [MB/s]",
		fmt.Sprintf("%.0f", float64(d.OuterRate)/1e6),
		fmt.Sprintf("%.0f", float64(m.Rate)/1e6),
		"10000")
	t.AddRow("Average seek [ms]", ms(d.AvgSeek), "-", "-")
	t.AddRow("Full stroke seek [ms]", ms(d.FullStrokeSeek), ms(m.MEMS.FullStrokeSeekX), "-")
	t.AddRow("X settle time [ms]", "-", ms(m.MEMS.SettleX), "-")
	t.AddRow("Capacity per device [GB]",
		fmt.Sprintf("%.0f", float64(d.Capacity)/1e9),
		fmt.Sprintf("%.0f", float64(m.Capacity)/1e9),
		"5 (max config)")
	t.AddRow("Cost/GB [$]",
		fmt.Sprintf("%.1f", float64(d.CostPerGB)),
		fmt.Sprintf("%.0f", float64(m.CostPerGB)),
		"20")
	t.AddRow("Cost/device [$]", "100-300",
		fmt.Sprintf("%.0f", float64(m.CostPerDev)),
		"50-200")
	out := t.Render()
	out += fmt.Sprintf("\nDerived: L̄_disk (avg seek + avg rotation) = %v; L̄_mems (max) = %v; latency ratio = %.1f\n",
		d.AvgAccess(), m.MaxLatency,
		d.AvgAccess().Seconds()/m.MaxLatency.Seconds())
	return Result{Output: out}, nil
}
