package experiments

import (
	"strings"
	"testing"

	"memstream/internal/model"
	"memstream/internal/units"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-devcache", "ablation-edf", "ablation-gss", "ablation-layout", "ablation-routing", "array", "besteffort", "dynamics",
		"fig10", "fig2", "fig4", "fig5", "fig6", "fig7a", "fig7b",
		"fig8", "fig9-zipf", "fig9a", "fig9b", "generations", "hybrid", "occupancy", "sens", "shardscale", "table1", "table2", "table3", "tiercompare", "validate", "year2002",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if _, ok := Title(id); !ok {
			t.Errorf("no title for %s", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	for _, id := range IDs() {
		res, err := Run(id)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(res.Output) < 50 {
			t.Errorf("%s: output suspiciously short (%d bytes)", id, len(res.Output))
		}
		if res.ID != id {
			t.Errorf("%s: result tagged %s", id, res.ID)
		}
	}
}

func TestTable3ReportsPaperNumbers(t *testing.T) {
	res, err := Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"20000", "300", "320", "2.80", "7.00", "0.45", "0.14", "1000", "10"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("table3 missing %q", want)
		}
	}
}

func TestFig2SeriesShape(t *testing.T) {
	res, err := Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2 (MEMS, disk)", len(res.Series))
	}
	memsS, diskS := res.Series[0], res.Series[1]
	// At small IOs MEMS wins big; at 10MB both approach their media rates.
	if memsS.Points[0].Y < 3*diskS.Points[0].Y {
		t.Errorf("at 16KB: MEMS %.1f vs disk %.1f, want ≥3x", memsS.Points[0].Y, diskS.Points[0].Y)
	}
	last := len(diskS.Points) - 1
	if diskS.Points[last].Y < 250 {
		t.Errorf("disk at 10MB = %.1fMB/s, want ≥250", diskS.Points[last].Y)
	}
	if memsS.Points[last].Y < 300 {
		t.Errorf("MEMS at 10MB = %.1fMB/s, want ≥300", memsS.Points[last].Y)
	}
}

func TestFig6OrderOfMagnitudeReduction(t *testing.T) {
	res, err := Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	// Find matching direct/buffered series and compare at common points.
	series := map[string][]float64{}
	xs := map[string][]float64{}
	for _, s := range res.Series {
		for _, p := range s.Points {
			series[s.Name] = append(series[s.Name], p.Y)
			xs[s.Name] = append(xs[s.Name], p.X)
		}
	}
	direct, buffered := series["direct mp3 10KB/s"], series["buffered mp3 10KB/s"]
	if len(direct) == 0 || len(buffered) == 0 {
		t.Fatalf("missing mp3 series; have %v", keysOf(series))
	}
	// The figure's claim: at matched N the buffered DRAM is at least an
	// order of magnitude below direct at mid-to-high loads.
	dx, bx := xs["direct mp3 10KB/s"], xs["buffered mp3 10KB/s"]
	checked := 0
	for i, x := range dx {
		if x < 1000 {
			continue
		}
		for j, x2 := range bx {
			if x2 == x && buffered[j] > 0 {
				if ratio := direct[i] / buffered[j]; ratio < 10 {
					t.Errorf("N=%.0f: reduction %.1fx < 10x", x, ratio)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Error("no common high-N points compared")
	}
}

func TestFig7aShape(t *testing.T) {
	res, err := Run("fig7a")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Errorf("series %s empty", s.Name)
			continue
		}
		// Cost reduction grows (weakly) with the latency ratio.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y-1e-6 {
				t.Errorf("%s: reduction fell from %.1f%% to %.1f%% at ratio %g",
					s.Name, s.Points[i-1].Y, s.Points[i].Y, s.Points[i].X)
				break
			}
		}
	}
	// Low/medium bit-rates reach the paper's 70-80% band at high ratios;
	// HDTV stays far below (its §5.1.3 observation).
	byName := map[string][]float64{}
	for _, s := range res.Series {
		for _, p := range s.Points {
			byName[s.Name] = append(byName[s.Name], p.Y)
		}
	}
	mp3 := byName["mp3 10KB/s"]
	hdtv := byName["HDTV 10MB/s"]
	if len(mp3) == 0 || len(hdtv) == 0 {
		t.Fatal("missing series")
	}
	if mp3[len(mp3)-1] < 60 {
		t.Errorf("mp3 reduction at ratio 10 = %.0f%%, want ≥60%%", mp3[len(mp3)-1])
	}
	if hdtv[len(hdtv)-1] > mp3[len(mp3)-1]/2 {
		t.Errorf("HDTV reduction %.0f%% should be well below mp3 %.0f%%",
			hdtv[len(hdtv)-1], mp3[len(mp3)-1])
	}
}

func TestFig7bHasRegions(t *testing.T) {
	res, err := Run("fig7b")
	if err != nil {
		t.Fatal(err)
	}
	for _, glyph := range []string{"#", "+"} {
		if !strings.Contains(res.Output, glyph) {
			t.Errorf("contour missing %q band", glyph)
		}
	}
}

func TestFig8SavingsSpanPaperRange(t *testing.T) {
	res, err := Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	peaks := map[string]float64{}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y > peaks[s.Name] {
				peaks[s.Name] = p.Y
			}
		}
	}
	// §5.1.2: tens of dollars for high bit-rates, tens of thousands for low.
	if peaks["mp3 10KB/s"] < 10000 {
		t.Errorf("mp3 peak saving $%.0f, want ≥$10k", peaks["mp3 10KB/s"])
	}
	if peaks["HDTV 10MB/s"] <= 0 || peaks["HDTV 10MB/s"] > 1000 {
		t.Errorf("HDTV peak saving $%.0f, want small but positive", peaks["HDTV 10MB/s"])
	}
	if peaks["mp3 10KB/s"] < 100*peaks["HDTV 10MB/s"] {
		t.Errorf("saving span mp3 $%.0f vs HDTV $%.0f too narrow",
			peaks["mp3 10KB/s"], peaks["HDTV 10MB/s"])
	}
}

func TestFig9aCacheBeatsBaselineWhenSkewed(t *testing.T) {
	// Rebuild the Figure 9(a) cells directly for precise assertions.
	br := 10 * units.KBPS
	base50 := directThroughput(br, 50)
	repl50 := cacheThroughput(br, 1, 99, 50, 1, model.Replicated)
	if repl50 <= base50 {
		t.Errorf("1:99 $50: cache %d not above baseline %d", repl50, base50)
	}
	// Uniform popularity: cache should lose.
	uni := cacheThroughput(br, 50, 50, 50, 1, model.Striped)
	if uni >= base50 {
		t.Errorf("50:50 $50: cache %d should trail baseline %d", uni, base50)
	}
	// Replication beats striping under extreme skew at k=4 (paper §5.2.1).
	r := cacheThroughput(br, 1, 99, 200, 4, model.Replicated)
	s := cacheThroughput(br, 1, 99, 200, 4, model.Striped)
	if r <= s {
		t.Errorf("1:99 $200: replicated %d should beat striped %d", r, s)
	}
	// Striping beats replication at moderate skew where capacity matters.
	r2 := cacheThroughput(br, 5, 95, 200, 4, model.Replicated)
	s2 := cacheThroughput(br, 5, 95, 200, 4, model.Striped)
	if s2 <= r2 {
		t.Errorf("5:95 $200: striped %d should beat replicated %d", s2, r2)
	}
}

func TestFig9bCacheGainIsBitRateIndependent(t *testing.T) {
	// §5.2.3: the cache's relative improvement persists at 1MB/s.
	br := 1 * units.MBPS
	base := directThroughput(br, 200)
	cached := cacheThroughput(br, 1, 99, 200, 4, model.Replicated)
	if cached < 2*base {
		t.Errorf("1MB/s 1:99 $200: cached %d, baseline %d — want ≥2x", cached, base)
	}
}

func TestFig10OptimalKExists(t *testing.T) {
	res, err := Run("fig10")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Points) != 8 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
	}
	series := map[string][]float64{}
	for _, s := range res.Series {
		for _, p := range s.Points {
			series[s.Name] = append(series[s.Name], p.Y)
		}
	}
	// 50:50 never improves (§5.2.4).
	for _, v := range series["50:50"] {
		if v > 0 {
			t.Errorf("uniform popularity improved throughput by %.0f%%", v)
		}
	}
	// 1:99 improves substantially and has an interior optimum.
	vals := series["1:99"]
	best, bestK := 0.0, 0
	for i, v := range vals {
		if v > best {
			best, bestK = v, i+1
		}
	}
	if best < 100 {
		t.Errorf("1:99 peak improvement %.0f%%, want ≥100%% (paper: up to 2.4x)", best)
	}
	if bestK == 8 && vals[7] > vals[6] {
		t.Error("1:99 improvement still rising at k=8; expected an interior optimum")
	}
}

func TestValidateReportsZeroUnderflows(t *testing.T) {
	res, err := Run("validate")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(res.Output, "\n")
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "| direct") || strings.HasPrefix(l, "| mems-") {
			rows++
			if !strings.Contains(l, "| 0 ") {
				t.Errorf("row with underflows: %s", l)
			}
		}
	}
	if rows != 6 {
		t.Errorf("validation rows = %d, want 6", rows)
	}
}

func TestSensitivityBoundary(t *testing.T) {
	res, err := Run("sens")
	if err != nil {
		t.Fatal(err)
	}
	// Footnote 2's region: strong savings at 10-20x price ratio with
	// BW ≥ disk; infeasible below the 2x staging bandwidth; negative at
	// price parity-ish ratios.
	for _, want := range []string{"infeasible", "+53%", "+73%", "-10"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("sensitivity output missing %q", want)
		}
	}
}

func TestSchedulesRender(t *testing.T) {
	for _, id := range []string{"fig4", "fig5"} {
		res, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Output, "Disk head") {
			t.Errorf("%s missing disk row", id)
		}
		if !strings.Contains(res.Output, "MEMS 1") {
			t.Errorf("%s missing MEMS row", id)
		}
	}
	res, _ := Run("fig5")
	if !strings.Contains(res.Output, "MEMS 3") {
		t.Error("fig5 should show 3 MEMS devices")
	}
}

func TestRelaxedBufferPlan(t *testing.T) {
	load := model.StreamLoad{N: 10000, BitRate: 10 * units.KBPS}
	plan, ok := relaxedBufferPlan(load, paperDisk(), paperTier(), paperCosts, 64)
	if !ok {
		t.Fatal("relaxed plan infeasible")
	}
	if plan.K < 2 {
		t.Errorf("k = %d, want ≥2", plan.K)
	}
	if plan.TotalDRAM <= 0 || plan.MEMSBytes <= 0 {
		t.Error("degenerate plan")
	}
	direct, err := model.DiskDirect(load, paperDisk())
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalDRAM >= direct.TotalDRAM {
		t.Errorf("relaxed buffered DRAM %v not below direct %v", plan.TotalDRAM, direct.TotalDRAM)
	}
	if float64(plan.TotalCost) >= float64(paperCosts.DRAMCost(direct.TotalDRAM)) {
		t.Error("relaxed plan costs more than direct DRAM")
	}
	// Infeasible load.
	if _, ok := relaxedBufferPlan(model.StreamLoad{N: 100000, BitRate: 10 * units.MBPS},
		paperDisk(), paperTier(), paperCosts, 8); ok {
		t.Error("impossible load accepted")
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
