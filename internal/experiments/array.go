package experiments

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/units"
)

func init() {
	register("array",
		"Ablation: scaling with disk arrays vs a MEMS buffer (our addition)", runArray)
}

// runArray prices the conventional alternative the paper's cost argument
// implies: instead of adding a MEMS bank, a designer could add disks. A
// D-drive stripe set behaves as one drive with D-fold bandwidth and
// unchanged latency, so Theorem 1 prices its DRAM directly. We fix a
// stream population near a single drive's limit and compare the total
// buffering+hardware bill of each escape route.
func runArray(uint64) (Result, error) {
	d := paperDisk()
	m := paperTier()
	diskPrice := units.Dollars(200) // FutureDisk mid-range, Table 3

	t := &plot.Table{
		Title: "Cost to serve N DivX streams: more DRAM vs more disks vs a MEMS bank",
		Headers: []string{"N", "config", "DRAM", "DRAM cost", "extra hardware",
			"total added cost"},
	}
	for _, frac := range []float64{0.50, 0.80} {
		nMax := model.MaxStreamsDirect(100*units.KBPS, d, 0)
		n := int(frac * float64(nMax))
		load := model.StreamLoad{N: n, BitRate: 100 * units.KBPS}

		// Option 1: single disk, buy DRAM.
		direct, err := model.DiskDirect(load, d)
		if err != nil {
			return Result{}, err
		}
		dramCost := paperCosts.DRAMCost(direct.TotalDRAM)
		t.AddRow(fmt.Sprintf("%d", n), "single disk + DRAM",
			direct.TotalDRAM.String(), dramCost.String(), "-", dramCost.String())

		// Option 2: stripe over D disks (D-fold rate, same latency).
		for _, dd := range []int{2, 4} {
			arr := model.DeviceSpec{
				Rate:    units.ByteRate(float64(dd) * float64(d.Rate)),
				Latency: d.Latency,
			}
			plan, err := model.DiskDirect(load, arr)
			if err != nil {
				return Result{}, err
			}
			hw := units.Dollars(float64(dd-1) * float64(diskPrice))
			total := units.Dollars(float64(paperCosts.DRAMCost(plan.TotalDRAM)) + float64(hw))
			t.AddRow("", fmt.Sprintf("%d-disk array + DRAM", dd),
				plan.TotalDRAM.String(),
				paperCosts.DRAMCost(plan.TotalDRAM).String(),
				hw.String(), total.String())
		}

		// Option 3: single disk + the smallest feasible MEMS bank (≥2
		// devices; high utilization needs more capacity for Eq 7).
		cfg := model.BufferConfig{Load: load, Disk: d, Tier: m, SizePerDevice: tierCapacity()}
		k, plan, err := model.MinFeasibleK(cfg, 2, 64)
		if err != nil {
			return Result{}, err
		}
		total := units.Dollars(float64(paperCosts.DRAMCost(plan.TotalDRAM)) +
			float64(paperCosts.BankCost(k)))
		t.AddRow("", fmt.Sprintf("single disk + %dxG3 MEMS", k),
			plan.TotalDRAM.String(),
			paperCosts.DRAMCost(plan.TotalDRAM).String(),
			paperCosts.BankCost(k).String(), total.String())
	}
	out := t.Render() +
		"\nAn array's extra bandwidth shortens the IO cycle and so trims DRAM,\n" +
		"but each added drive costs ~10-20x a MEMS device and leaves the access\n" +
		"latency untouched; the MEMS bank attacks the latency itself.\n"
	return Result{Output: out}, nil
}
