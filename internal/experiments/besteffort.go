package experiments

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/plot"
	"memstream/internal/sim"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func init() {
	register("besteffort",
		"Best-effort response time: MEMS vs disk (related work, §6)", runBestEffort)
}

// runBestEffort reproduces the claim the paper cites from Schlosser et
// al. ([16], discussed in its §6): serving best-effort data from MEMS
// instead of disk improves IO response time several-fold. We replay
// identical random small-IO batches against both device simulators under
// their respective seek-optimizing schedulers and compare response times
// (queue delay + service). Both devices replay the batch generated from
// the same seed, so the comparison is paired.
func runBestEffort(seed uint64) (Result, error) {
	sizes := []units.Bytes{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB}
	const batch = 64 // queued requests per run

	t := &plot.Table{
		Title: "Best-effort response time, 64-deep random batches",
		Headers: []string{"IO size", "disk mean", "disk p95", "MEMS mean",
			"MEMS p95", "mean speedup"},
	}
	for _, size := range sizes {
		diskMean, diskP95, err := responseDisk(size, batch, seed)
		if err != nil {
			return Result{}, err
		}
		memsMean, memsP95, err := responseMEMS(size, batch, seed)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(
			size.String(),
			diskMean.Round(10*time.Microsecond).String(),
			diskP95.Round(10*time.Microsecond).String(),
			memsMean.Round(10*time.Microsecond).String(),
			memsP95.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(diskMean)/float64(memsMean)),
		)
	}
	out := t.Render() +
		"\n[16] reports up to 3.5x IO response-time improvement from a MEMS cache\n" +
		"for best-effort data; the device simulators reproduce a several-fold\n" +
		"speedup from the order-of-magnitude positioning advantage.\n"
	return Result{Output: out}, nil
}

func responseDisk(size units.Bytes, batch int, seed uint64) (time.Duration, time.Duration, error) {
	d, err := disk.New(disk.FutureDisk())
	if err != nil {
		return 0, 0, err
	}
	s := disk.NewScheduler(d, disk.CLook)
	rng := sim.NewRNG(seed)
	blocks := int64(size / d.Geometry().BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	for i := 0; i < batch; i++ {
		lbn := int64(rng.Float64() * float64(d.Geometry().Blocks-blocks))
		s.Enqueue(device.Request{Op: device.Read, Block: lbn, Blocks: blocks, Stream: i})
	}
	cs, err := s.DrainAll(0)
	if err != nil {
		return 0, 0, err
	}
	m, p := responseStats(cs)
	return m, p, nil
}

func responseMEMS(size units.Bytes, batch int, seed uint64) (time.Duration, time.Duration, error) {
	d, err := tier.New(curTier)
	if err != nil {
		return 0, 0, err
	}
	s := tier.NewScheduler(d, tier.SPTF)
	rng := sim.NewRNG(seed)
	blocks := int64(size / d.Geometry().BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	for i := 0; i < batch; i++ {
		lbn := int64(rng.Float64() * float64(d.Geometry().Blocks-blocks))
		s.Enqueue(device.Request{Op: device.Read, Block: lbn, Blocks: blocks, Stream: i})
	}
	cs, err := s.DrainAll(0)
	if err != nil {
		return 0, 0, err
	}
	m, p := responseStats(cs)
	return m, p, nil
}

// responseStats returns the mean and p95 response time of a batch.
func responseStats(cs []device.Completion) (time.Duration, time.Duration) {
	if len(cs) == 0 {
		return 0, 0
	}
	var total time.Duration
	res := sim.NewReservoir(4096, 1)
	for _, c := range cs {
		r := c.Finish - c.Issued
		total += r
		res.Observe(r.Seconds())
	}
	p95, _ := res.Quantile(0.95) // cs is non-empty here
	return total / time.Duration(len(cs)), units.Seconds(p95)
}
