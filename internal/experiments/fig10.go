package experiments

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/units"
)

func init() {
	register("fig10", "Figure 10: throughput improvement vs number of MEMS cache devices", runFig10)
}

// runFig10 reproduces Figure 10: percentage improvement in server
// throughput as the striped MEMS cache grows from k=1 to 8 devices, at a
// fixed $100 buffering budget and 100KB/s streams. Each device caches 1%
// of the content (10GB of 1TB); each device's $10 displaces 500MB of DRAM.
func runFig10(uint64) (Result, error) {
	const budget = units.Dollars(100)
	const bitRate = 100 * units.KBPS
	base := directThroughput(bitRate, budget)
	if base <= 0 {
		return Result{}, fmt.Errorf("baseline server infeasible")
	}

	var series []plot.Series
	t := &plot.Table{
		Title:   "Throughput improvement (%) over the cache-less $100 server",
		Headers: []string{"k", "DRAM left", "1:99", "5:95", "10:90", "20:80", "50:50"},
	}
	cells := map[float64][]plot.Point{}
	for k := 1; k <= 8; k++ {
		dram := paperCosts.DRAMFor(budget - paperCosts.BankCost(k))
		row := []string{
			fmt.Sprintf("%d", k),
			dram.String(),
		}
		for _, dist := range distributions {
			n := cacheThroughput(bitRate, dist.x, dist.y, budget, k, model.Striped)
			imp := 100 * (float64(n) - float64(base)) / float64(base)
			row = append(row, fmt.Sprintf("%+.0f%%", imp))
			cells[dist.x] = append(cells[dist.x], plot.Point{X: float64(k), Y: imp})
		}
		t.AddRow(row...)
	}
	for _, dist := range distributions {
		series = append(series, plot.Series{
			Name:   fmt.Sprintf("%g:%g", dist.x, dist.y),
			Points: cells[dist.x],
		})
	}
	c := &plot.Chart{
		Title:  "Varying the size of the MEMS cache (striped, $100, 100KB/s)",
		XLabel: "Number of MEMS devices (k)",
		YLabel: "Improvement in throughput (%)",
		Series: series,
	}
	out := t.Render() + "\n" + c.Render() +
		"\nPaper behaviour: uniform 50:50 popularity always degrades throughput;\n" +
		"skewed distributions improve it (up to ≈2.4x), each with an optimal k (§5.2.4).\n"
	return Result{Output: out, Series: series}, nil
}
