package experiments

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/server"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func init() {
	register("ablation-gss",
		"Ablation: GSS scheduler trade-off vs time-cycle vs MEMS buffer", runAblationGSS)
	register("ablation-edf",
		"Ablation: EDF vs time-cycle scheduling (simulated)", runAblationEDF)
	register("ablation-layout",
		"Ablation: MEMS data placement (contiguous vs interleaved)", runAblationLayout)
}

// runAblationGSS quantifies the paper's framing: scheduler-level resource
// trade-offs (GSS, citation [25]) cannot close the gap that MEMS hardware
// does. For a sweep of loads we compare total DRAM under time-cycle
// scheduling (Theorem 1), the DRAM-optimal GSS, and a 2-device MEMS
// buffer.
func runAblationGSS(uint64) (Result, error) {
	d := paperDisk()
	m := paperTier()
	minLat := units.Milliseconds(0.3 + 1.5) // track switch + avg rotation

	t := &plot.Table{
		Title: "Total DRAM: time-cycle vs optimal GSS vs 2xG3 MEMS buffer",
		Headers: []string{"load", "time-cycle", "GSS (best g)", "MEMS buffer",
			"GSS gain", "MEMS gain"},
	}
	loads := []model.StreamLoad{
		{N: 500, BitRate: 100 * units.KBPS},
		{N: 1000, BitRate: 100 * units.KBPS},
		{N: 2000, BitRate: 100 * units.KBPS},
		{N: 100, BitRate: 1 * units.MBPS},
		{N: 200, BitRate: 1 * units.MBPS},
	}
	for _, load := range loads {
		direct, err := model.DiskDirect(load, d)
		if err != nil {
			return Result{}, err
		}
		gss, err := model.OptimalGSS(load, d, minLat)
		if err != nil {
			return Result{}, err
		}
		cfg := model.BufferConfig{Load: load, Disk: d, Tier: m, K: 2, SizePerDevice: tierCapacity()}
		buffered, err := model.BufferPlan(cfg)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(
			fmt.Sprintf("N=%d @ %v", load.N, load.BitRate),
			direct.TotalDRAM.String(),
			fmt.Sprintf("%v (g=%d)", gss.TotalDRAM, gss.Groups),
			buffered.TotalDRAM.String(),
			fmt.Sprintf("%.1fx", float64(direct.TotalDRAM)/float64(gss.TotalDRAM)),
			fmt.Sprintf("%.1fx", float64(direct.TotalDRAM)/float64(buffered.TotalDRAM)),
		)
	}
	out := t.Render() +
		"\nGSS trims DRAM by amortizing seeks inside sweep groups, but its gain\n" +
		"is bounded by the disk's own latency; the MEMS buffer replaces that\n" +
		"latency wholesale, which is the paper's point.\n"
	return Result{Output: out}, nil
}

// runAblationEDF contrasts the two real-time scheduler classes of the
// related work in simulation: same load, same IO sizes, different order.
func runAblationEDF(seed uint64) (Result, error) {
	var met Metrics
	t := &plot.Table{
		Title: "Time-cycle (C-LOOK order) vs EDF (deadline order), simulated",
		Headers: []string{"load", "scheduler", "underflows", "disk busy/IO",
			"disk util"},
	}
	for _, n := range []int{50, 100, 150} {
		for _, edf := range []bool{false, true} {
			cfg := server.Config{
				Mode: server.Direct, Disk: disk.FutureDisk(), Tier: curTier,
				K: 2, N: n, BitRate: 1 * units.MBPS, Titles: 100,
				X: 10, Y: 90, Seed: seed, UseEDF: edf,
				Duration: 10 * time.Second,
			}
			res, err := server.Run(cfg)
			if err != nil {
				return Result{}, err
			}
			met.addRun(res)
			name := "time-cycle"
			if edf {
				name = "EDF"
			}
			perIO := time.Duration(0)
			if res.DiskIOs > 0 {
				perIO = res.DiskBusy / time.Duration(res.DiskIOs)
			}
			t.AddRow(
				fmt.Sprintf("N=%d @ 1MB/s", n),
				name,
				fmt.Sprintf("%d", res.Underflows),
				perIO.Round(10*time.Microsecond).String(),
				fmt.Sprintf("%.2f", res.DiskUtil),
			)
		}
	}
	out := t.Render() +
		"\nBoth schedulers meet deadlines at feasible loads, but EDF's deadline\n" +
		"order forfeits the elevator's seek amortization — its per-IO busy time\n" +
		"is consistently higher, which is why the paper builds on the\n" +
		"time-cycle model (§3, §6).\n"
	return Result{Output: out, Metrics: met}, nil
}

// runAblationLayout measures the §7 placement policy on the MEMS device:
// positioning time for lock-step round-robin streaming under contiguous
// vs progress-interleaved layouts.
func runAblationLayout(uint64) (Result, error) {
	const n = 32
	const ioBytes = 1 * units.MB
	run := func(mk func(d tier.LayoutCapable) (tier.Layout, error)) (time.Duration, error) {
		d, err := tier.New(tier.MustLookup("mems-g3"))
		if err != nil {
			return 0, err
		}
		l, err := mk(d.(tier.LayoutCapable))
		if err != nil {
			return 0, err
		}
		chunk := int64(ioBytes / d.Geometry().BlockSize)
		var now, pos time.Duration
		for cycle := int64(0); cycle < 20; cycle++ {
			for s := 0; s < n; s++ {
				lbn, err := l.Map(s, cycle*chunk)
				if err != nil {
					return 0, err
				}
				if lbn+chunk > d.Geometry().Blocks {
					lbn = d.Geometry().Blocks - chunk
				}
				c, err := d.Service(now, device.Request{
					Op: device.Read, Block: lbn, Blocks: chunk, Stream: s,
				})
				if err != nil {
					return 0, err
				}
				pos += c.Position
				now = c.Finish
			}
		}
		return pos, nil
	}
	contig, err := run(func(d tier.LayoutCapable) (tier.Layout, error) { return d.ContiguousLayout(n) })
	if err != nil {
		return Result{}, err
	}
	inter, err := run(func(d tier.LayoutCapable) (tier.Layout, error) { return d.InterleavedLayout(n, ioBytes) })
	if err != nil {
		return Result{}, err
	}
	out := fmt.Sprintf(
		"MEMS data placement for %d lock-step streams, 1MB IOs, 20 cycles\n\n"+
			"  contiguous extents:     total positioning %v\n"+
			"  progress-interleaved:   total positioning %v  (%.1fx less)\n\n"+
			"Interleaving the j-th chunk of every stream into one stripe keeps the\n"+
			"sled's X excursions tiny under time-cycle service — the \"intelligent\n"+
			"placement\" direction of the paper's future work (§7).\n",
		n, contig.Round(time.Microsecond), inter.Round(time.Microsecond),
		float64(contig)/float64(inter))
	return Result{Output: out}, nil
}
