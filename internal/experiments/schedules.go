package experiments

import (
	"fmt"
	"strings"
	"time"

	"memstream/internal/model"
	"memstream/internal/units"
)

func init() {
	register("fig4", "Figure 4: MEMS IO scheduling (single device)", runFig4)
	register("fig5", "Figure 5: IO scheduling for a MEMS bank (N=45, k=3)", runFig5)
}

// timeline renders a coarse Gantt row: busy intervals marked over a span.
func timeline(label string, span time.Duration, busy [][2]time.Duration, mark byte) string {
	const width = 72
	row := []byte(strings.Repeat(".", width))
	for _, iv := range busy {
		a := int(float64(iv[0]) / float64(span) * width)
		b := int(float64(iv[1]) / float64(span) * width)
		if b <= a {
			b = a + 1
		}
		for i := a; i < b && i < width; i++ {
			row[i] = mark
		}
	}
	return fmt.Sprintf("%-12s |%s|\n", label, string(row))
}

// runFig4 reconstructs the paper's Figure 4: the activity of the disk
// head, the MEMS tips and the DRAM during one MEMS IO cycle, for N=10
// streams buffered by a single MEMS device. The schedule is derived from
// Theorem 2's cycle structure (M disk transfers and N DRAM transfers per
// MEMS IO cycle).
func runFig4(uint64) (Result, error) {
	return renderSchedule(10, 1)
}

// runFig5 reconstructs Figure 5: the same schedule for a bank of k=3
// devices serving N=45 streams — each disk IO routes wholly to one device
// while 15 DRAM transfers occur per device per cycle.
func runFig5(uint64) (Result, error) {
	return renderSchedule(45, 3)
}

func renderSchedule(n, k int) (Result, error) {
	d := paperDisk()
	m := paperTier()
	cfg := model.BufferConfig{
		Load: model.StreamLoad{N: n, BitRate: 1 * units.MBPS},
		Disk: d, Tier: m, K: k, SizePerDevice: tierCapacity(),
	}
	plan, err := model.BufferPlan(cfg)
	if err != nil {
		return Result{}, err
	}
	// Render one MEMS IO cycle. Within it: M disk transfers of S_disk-mems
	// and N DRAM transfers of B̄·T_mems spread across the k devices.
	span := plan.MEMSCycle
	diskXfer := plan.DiskIOSize.Duration(d.Rate)
	perDiskIO := d.Latency + diskXfer
	var diskBusy [][2]time.Duration
	at := time.Duration(0)
	for i := 0; i < plan.M; i++ {
		end := at + perDiskIO
		if end > span {
			end = span
		}
		diskBusy = append(diskBusy, [2]time.Duration{at, end})
		at = end + span/time.Duration(4*plan.M+1)
	}

	drain := units.BytesIn(cfg.Load.BitRate, plan.MEMSCycle)
	perDrain := m.Latency + drain.Duration(m.Rate)
	perStage := m.Latency + plan.DiskIOSize.Duration(m.Rate)

	var b strings.Builder
	fmt.Fprintf(&b, "One MEMS IO cycle: N=%d streams, k=%d device(s), M=%d disk transfers\n",
		n, k, plan.M)
	fmt.Fprintf(&b, "T_disk=%v  T_mems=%v  S_disk-mems=%v  DRAM transfer=%v\n\n",
		plan.DiskCycle.Round(time.Millisecond), plan.MEMSCycle.Round(time.Millisecond),
		plan.DiskIOSize, drain)
	b.WriteString(timeline("Disk head", span, diskBusy, '#'))

	perDev := n / k
	for dev := 0; dev < k; dev++ {
		var busy [][2]time.Duration
		at := time.Duration(0)
		// Stage writes for this device's share of the M disk transfers.
		stages := plan.M / k
		if dev < plan.M%k {
			stages++
		}
		for i := 0; i < stages; i++ {
			end := at + perStage
			if end > span {
				end = span
			}
			busy = append(busy, [2]time.Duration{at, end})
			at = end + span/time.Duration(2*(perDev+stages))
		}
		// DRAM-side reads for its streams.
		for i := 0; i < perDev; i++ {
			end := at + perDrain
			if end > span {
				end = span
			}
			busy = append(busy, [2]time.Duration{at, end})
			at = end + span/time.Duration(2*(perDev+stages))
			if at >= span {
				break
			}
		}
		b.WriteString(timeline(fmt.Sprintf("MEMS %d", dev+1), span, busy, '='))
	}
	fmt.Fprintf(&b, "\n# disk transfer into MEMS (S_disk-mems)   = DRAM transfer / stage on MEMS\n")
	fmt.Fprintf(&b, "Each disk IO routes wholly to one device; streams are assigned round-robin\n")
	fmt.Fprintf(&b, "so every k-th disk IO lands on the same device (§3.1.2).\n")
	return Result{Output: b.String()}, nil
}
