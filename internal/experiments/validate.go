package experiments

import (
	"fmt"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/server"
	"memstream/internal/units"
)

func init() {
	register("validate", "Model-vs-simulation cross-check (our addition)", runValidate)
}

// runValidate runs the discrete-event server simulator in all three
// architectures and checks the analytical model's promises against
// measured behaviour: zero underflows with model-sized buffers, and DRAM
// occupancy within the double-buffering envelope of the model's minimum.
func runValidate(seed uint64) (Result, error) {
	t := &plot.Table{
		Title: "Analytical model vs discrete-event simulation",
		Headers: []string{"Architecture", "Streams", "Bit-rate", "Underflows",
			"Planned DRAM", "Measured peak", "Disk util", "MEMS util", "margin p5"},
	}
	var met Metrics
	runs := []struct {
		mode   server.Mode
		label  string
		n      int
		br     units.ByteRate
		policy model.CachePolicy
	}{
		{server.Direct, "direct", 100, 1 * units.MBPS, model.Striped},
		{server.Direct, "direct", 2000, 100 * units.KBPS, model.Striped},
		{server.Buffered, "mems-buffer", 150, 1 * units.MBPS, model.Striped},
		{server.Buffered, "mems-buffer", 2000, 100 * units.KBPS, model.Striped},
		{server.Cached, "mems-cache/striped", 400, 100 * units.KBPS, model.Striped},
		{server.Cached, "mems-cache/replicated", 400, 100 * units.KBPS, model.Replicated},
	}
	for _, rc := range runs {
		cfg := server.Config{
			Mode:        rc.mode,
			Disk:        disk.FutureDisk(),
			Tier:        curTier,
			K:           2,
			CachePolicy: rc.policy,
			N:           rc.n,
			BitRate:     rc.br,
			Titles:      200,
			X:           10, Y: 90,
			Seed: seed,
		}
		res, err := server.Run(cfg)
		if err != nil {
			return Result{}, fmt.Errorf("%s N=%d: %w", rc.label, rc.n, err)
		}
		met.addRun(res)
		t.AddRow(
			rc.label,
			fmt.Sprintf("%d", rc.n),
			rc.br.String(),
			fmt.Sprintf("%d", res.Underflows),
			res.PlannedDRAM.String(),
			res.DRAMHighWater.String(),
			fmt.Sprintf("%.2f", res.DiskUtil),
			fmt.Sprintf("%.2f", res.MEMSUtil),
			res.MarginP5.Round(time.Millisecond).String(),
		)
	}
	out := t.Render() +
		"\nZero underflows confirm the closed-form buffer sizes admit feasible\n" +
		"schedules on the full device simulators. Peak DRAM exceeds the plan by\n" +
		"the double-buffering/pipelining factor the paper's careful-management\n" +
		"citation ([2], Chang & Garcia-Molina) is invoked to remove.\n"
	return Result{Output: out, Metrics: met}, nil
}
