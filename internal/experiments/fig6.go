package experiments

import (
	"errors"
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
)

func init() {
	register("fig6", "Figure 6: DRAM requirement vs number of streams (without/with MEMS buffer)", runFig6)
}

// streamCounts sweeps N logarithmically from 1 to 100,000, matching the
// figure's log X axis, and densifies near nMax — the region where the
// buffering requirement blows up and the paper's headline numbers live.
// nMax ≤ 0 skips the densification.
func streamCounts(nMax int) []int {
	var ns []int
	for _, base := range []int{1, 2, 5} {
		for mag := 1; mag <= 100000; mag *= 10 {
			n := base * mag
			if n <= 100000 {
				ns = append(ns, n)
			}
		}
	}
	if nMax > 0 {
		for _, f := range []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
			if n := int(f * float64(nMax)); n >= 1 {
				ns = append(ns, n)
			}
		}
	}
	// sort ascending and dedupe (bases interleave magnitudes).
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
	out := ns[:0]
	for i, n := range ns {
		if i == 0 || n != ns[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// runFig6 reproduces Figure 6: total DRAM required to sustain N streams of
// each media class, (a) streaming directly from the disk and (b) through a
// MEMS buffer bank (minimal feasible bank of at least two G3 devices, as
// in §5.1). Points beyond a configuration's feasibility limit are omitted,
// which is how the paper's curves terminate.
func runFig6(uint64) (Result, error) {
	d := paperDisk()
	m := paperTier()

	var without, with []plot.Series
	var summary string
	for _, br := range bitRates {
		var wPts, bPts []plot.Point
		nMax := model.MaxStreamsDirect(br.rate, d, 0)
		for _, n := range streamCounts(nMax) {
			load := model.StreamLoad{N: n, BitRate: br.rate}
			if plan, err := model.DiskDirect(load, d); err == nil {
				wPts = append(wPts, plot.Point{X: float64(n), Y: float64(plan.TotalDRAM) / 1e9})
			} else if !errors.Is(err, model.ErrInfeasible) {
				return Result{}, err
			}
			// §5.1.1 relaxation: unlimited MEMS storage at cost-per-byte,
			// bandwidth-minimal bank of ≥2 devices.
			if plan, ok := relaxedBufferPlan(load, d, m, paperCosts, 1024); ok {
				bPts = append(bPts, plot.Point{X: float64(n), Y: float64(plan.TotalDRAM) / 1e9})
			}
		}
		without = append(without, plot.Series{Name: br.name, Points: wPts})
		with = append(with, plot.Series{Name: br.name, Points: bPts})

		// Report the reduction at the highest N both configurations reach.
		if len(wPts) > 0 && len(bPts) > 0 {
			i, j := len(wPts)-1, len(bPts)-1
			for i >= 0 && j >= 0 {
				if wPts[i].X == bPts[j].X {
					summary += fmt.Sprintf("  %-13s N=%-7.0f direct %8.3fGB  buffered %8.3fGB  (%.0fx reduction)\n",
						br.name, wPts[i].X, wPts[i].Y, bPts[j].Y, wPts[i].Y/bPts[j].Y)
					break
				}
				if wPts[i].X > bPts[j].X {
					i--
				} else {
					j--
				}
			}
		}
	}

	ca := &plot.Chart{
		Title: "(a) Without MEMS buffer", XLabel: "Number of streams",
		YLabel: "DRAM requirement (GB)", LogX: true, LogY: true, Series: without,
	}
	cb := &plot.Chart{
		Title: "(b) With MEMS buffer", XLabel: "Number of streams",
		YLabel: "DRAM requirement (GB)", LogX: true, LogY: true, Series: with,
	}
	out := ca.Render() + "\n" + cb.Render() + "\nReduction at largest common N:\n" + summary
	all := append(append([]plot.Series{}, tagSeries("direct ", without)...), tagSeries("buffered ", with)...)
	return Result{Output: out, Series: all}, nil
}

func tagSeries(prefix string, in []plot.Series) []plot.Series {
	out := make([]plot.Series, len(in))
	for i, s := range in {
		out[i] = plot.Series{Name: prefix + s.Name, Points: s.Points}
	}
	return out
}
