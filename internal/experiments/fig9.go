package experiments

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/units"
)

func init() {
	register("fig9a", "Figure 9(a): MEMS cache performance, average bit-rate 10KB/s", runFig9a)
	register("fig9b", "Figure 9(b): MEMS cache performance, average bit-rate 1MB/s", runFig9b)
}

// budgets are the three total buffering budgets of Figure 9 with their
// bank sizes: each added $10 G3 device displaces 500MB of $20/GB DRAM.
var budgets = []struct {
	total units.Dollars
	k     int
}{
	{50, 1}, {100, 2}, {200, 4},
}

// cacheThroughput returns the maximum streams for one Figure 9 cell.
func cacheThroughput(bitRate units.ByteRate, x, y float64, budget units.Dollars,
	k int, policy model.CachePolicy) int {

	dram := paperCosts.DRAMFor(budget - paperCosts.BankCost(k))
	if dram <= 0 {
		return 0
	}
	cfg := model.CacheConfig{
		Load:          model.StreamLoad{N: 1, BitRate: bitRate},
		Disk:          paperDisk(),
		Tier:          paperTier(),
		K:             k,
		Policy:        policy,
		SizePerDevice: tierCapacity(),
		ContentSize:   contentSize,
		X:             x,
		Y:             y,
	}
	return model.MaxStreamsCached(cfg, dram)
}

// directThroughput is the no-cache column: all the budget buys DRAM.
func directThroughput(bitRate units.ByteRate, budget units.Dollars) int {
	return model.MaxStreamsDirect(bitRate, paperDisk(), paperCosts.DRAMFor(budget))
}

func runFig9(bitRate units.ByteRate, label string) (Result, error) {
	t := &plot.Table{
		Title: fmt.Sprintf("MEMS cache performance, average bit-rate %s", label),
		Headers: []string{"Popularity", "Budget", "k", "w/o MEMS cache",
			"Replicated", "Striped"},
	}
	var series []plot.Series
	var wo, repl, stri []plot.Point
	for _, dist := range distributions {
		for _, b := range budgets {
			none := directThroughput(bitRate, b.total)
			re := cacheThroughput(bitRate, dist.x, dist.y, b.total, b.k, model.Replicated)
			st := cacheThroughput(bitRate, dist.x, dist.y, b.total, b.k, model.Striped)
			t.AddRow(
				fmt.Sprintf("%g:%g", dist.x, dist.y),
				b.total.String(),
				fmt.Sprintf("%d", b.k),
				fmt.Sprintf("%d", none),
				fmt.Sprintf("%d", re),
				fmt.Sprintf("%d", st),
			)
			if b.total == 200 {
				xv := dist.x
				wo = append(wo, plot.Point{X: xv, Y: float64(none)})
				repl = append(repl, plot.Point{X: xv, Y: float64(re)})
				stri = append(stri, plot.Point{X: xv, Y: float64(st)})
			}
		}
	}
	series = append(series,
		plot.Series{Name: "w/o MEMS cache ($200)", Points: wo},
		plot.Series{Name: "replicated ($200, k=4)", Points: repl},
		plot.Series{Name: "striped ($200, k=4)", Points: stri},
	)
	// Grouped bars for the $200 budget, matching the paper's figure form.
	bars := &plot.BarChart{
		Title:  "Server throughput at $200 (k=4)",
		Series: []string{"w/o MEMS cache", "replicated", "striped"},
		Width:  46,
	}
	for i, dist := range distributions {
		bars.Groups = append(bars.Groups, plot.BarGroup{
			Label:  fmt.Sprintf("%g:%g", dist.x, dist.y),
			Values: []float64{wo[i].Y, repl[i].Y, stri[i].Y},
		})
	}
	out := t.Render() + "\n" + bars.Render()
	out += "\nReading the table: for skewed popularity (1:99 … 10:90) both cache\n" +
		"policies beat the cache-less server; toward uniform (50:50) the cache\n" +
		"cannot pay for itself (§5.2.1). Replication wins at 1:99 via its lower\n" +
		"effective latency; striping catches up as more distinct content must\n" +
		"be cached.\n"
	return Result{Output: out, Series: series}, nil
}

func runFig9a(uint64) (Result, error) { return runFig9(10*units.KBPS, "10KB/s") }

func runFig9b(uint64) (Result, error) { return runFig9(1*units.MBPS, "1MB/s") }
