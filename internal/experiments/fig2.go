package experiments

import (
	"fmt"

	"memstream/internal/device"
	"memstream/internal/plot"
	"memstream/internal/units"
)

func init() {
	register("fig2", "Figure 2: effective device throughput vs average IO size", runFig2)
}

// runFig2 reproduces Figure 2: effective throughput of the FutureDisk (at
// average access latency) and the G3 MEMS device (at maximum latency) as
// the average IO size grows from 16KB to 10MB.
func runFig2(uint64) (Result, error) {
	d := paperDisk()
	m := paperTier()

	sizes := []units.Bytes{
		16 * units.KB, 32 * units.KB, 64 * units.KB, 128 * units.KB,
		256 * units.KB, 512 * units.KB, 1 * units.MB, 2 * units.MB,
		3 * units.MB, 4 * units.MB, 5 * units.MB, 6 * units.MB,
		7 * units.MB, 8 * units.MB, 9 * units.MB, 10 * units.MB,
	}
	var diskPts, memsPts []plot.Point
	for _, s := range sizes {
		diskPts = append(diskPts, plot.Point{
			X: float64(s) / 1e3,
			Y: float64(device.EffectiveThroughput(s, d.Rate, d.Latency)) / 1e6,
		})
		memsPts = append(memsPts, plot.Point{
			X: float64(s) / 1e3,
			Y: float64(device.EffectiveThroughput(s, m.Rate, m.Latency)) / 1e6,
		})
	}
	series := []plot.Series{
		{Name: "MEMS (max. latency)", Points: memsPts},
		{Name: "Disk (avg. latency)", Points: diskPts},
	}
	c := &plot.Chart{
		Title:  "Effective device throughputs",
		XLabel: "Average IO size (kB)",
		YLabel: "Device throughput (MB/s)",
		Series: series,
	}
	out := c.Render()

	// Key scalar checkpoints the paper's prose relies on.
	out += fmt.Sprintf("\nAt 1MB IOs: disk %.0fMB/s, MEMS %.0fMB/s. At 10MB IOs: disk %.0fMB/s, MEMS %.0fMB/s.\n",
		float64(device.EffectiveThroughput(1*units.MB, d.Rate, d.Latency))/1e6,
		float64(device.EffectiveThroughput(1*units.MB, m.Rate, m.Latency))/1e6,
		float64(device.EffectiveThroughput(10*units.MB, d.Rate, d.Latency))/1e6,
		float64(device.EffectiveThroughput(10*units.MB, m.Rate, m.Latency))/1e6)
	return Result{Output: out, Series: series}, nil
}
