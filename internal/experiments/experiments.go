// Package experiments regenerates every table and figure in the paper's
// evaluation (its Section 5) plus a model-vs-simulation validation run.
// Each experiment produces a rendered text artifact and, where meaningful,
// structured series for CSV export. The experiment IDs match DESIGN.md's
// per-experiment index.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/plot"
	"memstream/internal/server"
	"memstream/internal/tier"
	"memstream/internal/units"
)

// Metrics is one run's observability record: what the run cost and what
// the simulations inside it did. Analytic (closed-form) experiments leave
// the simulation counters at zero.
type Metrics struct {
	Seed       uint64        `json:"seed"`
	Wall       time.Duration `json:"wall_ns"` // filled by the suite runner
	Events     uint64        `json:"events"`  // simulation-kernel events fired
	Streams    int           `json:"streams"` // streams served across embedded sims
	Cycles     int64         `json:"cycles"`  // scheduling cycles driven across embedded sims
	Underflows int           `json:"underflows"`
}

// addRun folds one server simulation's counters into the metrics.
func (m *Metrics) addRun(sr server.Result) {
	m.Events += sr.Events
	m.Streams += sr.Streams
	m.Cycles += sr.Cycles
	m.Underflows += sr.Underflows
}

// Result is one regenerated artifact.
type Result struct {
	ID      string
	Title   string
	Output  string        // rendered table/chart text
	Series  []plot.Series // structured data, when the artifact is a plot
	Metrics Metrics
}

// runner produces one artifact. Every run derives its randomness from the
// seed argument alone, so a (id, seed) pair is a pure function — the
// property the parallel suite runner depends on.
type runner struct {
	title string
	run   func(seed uint64) (Result, error)
}

// registry maps experiment IDs to runners; populated by the per-figure
// files' init functions.
var registry = map[string]runner{}

func register(id, title string, run func(seed uint64) (Result, error)) {
	registry[id] = runner{title: title, run: run}
}

// DefaultSeed seeds single-experiment runs that don't care about the
// seed (tests, the -run CLI path without an explicit -seed).
const DefaultSeed uint64 = 1

// IDs returns all experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's display title.
func Title(id string) (string, bool) {
	r, ok := registry[id]
	return r.title, ok
}

// Run executes one experiment by ID with DefaultSeed.
func Run(id string) (Result, error) { return RunSeeded(id, DefaultSeed) }

// RunSeeded executes one experiment by ID with an explicit seed.
func RunSeeded(id string, seed uint64) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	res, err := r.run(seed)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	res.Metrics.Seed = seed
	return res, nil
}

// --- Shared paper-default parameters ---

// paperDisk is the FutureDisk spec under the paper's convention
// (scheduler-informed average access: average seek + rotation).
func paperDisk() model.DeviceSpec {
	p := disk.FutureDisk()
	return model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()}
}

// curTier is the middle-tier parameter set the tier-aware experiments
// run with — wired from the CLIs' -tier flag. The default is the paper's
// G3 MEMS device, under which every artifact is byte-identical to the
// pre-tier goldens (the pinned sha256 suite enforces this). Experiments
// that study MEMS specifics (generation sweeps, Table 1–3, sled layout)
// pin their own specs and ignore the override. Set it before starting a
// suite; it is read concurrently by suite workers.
var curTier = tier.MustLookup(tier.Default)

// SetTier selects the middle-tier parameter set by registry name. Call
// before RunSuite; unknown names error with the available sets.
func SetTier(name string) error {
	s, err := tier.Lookup(name)
	if err != nil {
		return err
	}
	curTier = s
	return nil
}

// CurrentTier reports the active middle-tier parameter set.
func CurrentTier() tier.Spec { return curTier }

// paperTier is the configured middle tier under the paper's convention
// (maximum positioning latency). With the default tier this is exactly
// the old G3 MEMS spec.
func paperTier() model.DeviceSpec {
	return model.DeviceSpec{Rate: curTier.Rate, Latency: curTier.MaxLatency}
}

// tierAtRatio returns a middle-tier spec whose latency realizes the
// given disk/tier latency ratio (the sensitivity knob of §5.1).
func tierAtRatio(ratio float64) model.DeviceSpec {
	d := paperDisk()
	m := paperTier()
	m.Latency = units.Seconds(d.Latency.Seconds() / ratio)
	return m
}

// bitRates are the four media classes swept in Figures 6–8.
var bitRates = []struct {
	name string
	rate units.ByteRate
}{
	{"mp3 10KB/s", 10 * units.KBPS},
	{"DivX 100KB/s", 100 * units.KBPS},
	{"DVD 1MB/s", 1 * units.MBPS},
	{"HDTV 10MB/s", 10 * units.MBPS},
}

// distributions are the popularity points of Figures 9–10.
var distributions = []struct {
	x, y float64
}{
	{1, 99}, {5, 95}, {10, 90}, {20, 80}, {50, 50},
}

const (
	contentSize = 1000 * units.GB // Size_disk: one FutureDisk of content
)

// tierCapacity is Size_tier of the configured middle tier (10GB for the
// default G3 MEMS).
func tierCapacity() units.Bytes { return curTier.Capacity }

var paperCosts = model.Table3Costs()
