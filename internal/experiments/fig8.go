package experiments

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/plot"
)

func init() {
	register("fig8", "Figure 8: reduction in total buffering cost vs number of streams", runFig8)
}

// runFig8 reproduces Figure 8: the dollar reduction in total buffering
// cost (DRAM saved minus the MEMS bank's cost) across the stream-count
// sweep, for each media class, with unlimited DRAM and the minimal
// feasible bank of at least two G3 devices.
func runFig8(uint64) (Result, error) {
	d := paperDisk()
	m := paperTier()

	var series []plot.Series
	var summary string
	for _, br := range bitRates {
		var pts []plot.Point
		var peak float64
		nMax := model.MaxStreamsDirect(br.rate, d, 0)
		for _, n := range streamCounts(nMax) {
			load := model.StreamLoad{N: n, BitRate: br.rate}
			direct, err := model.DiskDirect(load, d)
			if err != nil {
				continue
			}
			// §5.1.2 relaxation: unlimited MEMS at cost-per-byte; the
			// saving is direct-DRAM cost minus the cost-optimal buffered
			// configuration (staging bytes + residual DRAM).
			plan, ok := relaxedBufferPlan(load, d, m, paperCosts, 1024)
			if !ok {
				continue
			}
			saved := float64(paperCosts.DRAMCost(direct.TotalDRAM)) - float64(plan.TotalCost)
			pts = append(pts, plot.Point{X: float64(n), Y: saved})
			if saved > peak {
				peak = saved
			}
		}
		series = append(series, plot.Series{Name: br.name, Points: pts})
		summary += fmt.Sprintf("  %-13s peak saving $%.0f\n", br.name, peak)
	}
	c := &plot.Chart{
		Title:  "Reduction in the total buffering cost",
		XLabel: "Number of streams",
		YLabel: "Cost reduction ($)",
		LogX:   true,
		LogY:   true,
		Series: series,
	}
	out := c.Render() + "\nPeak savings by media class:\n" + summary +
		"\n(The paper reports savings from tens of dollars for high bit-rates to\n" +
		" tens of thousands of dollars for low bit-rates — §5.1.2.)\n"
	return Result{Output: out, Series: series}, nil
}
