package experiments

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// pinnedSeeds are the root seeds the kernel-equivalence pin covers. Two
// seeds catch rewrites that happen to be correct at one seed by luck;
// per-experiment seeds still derive via seedFor, exactly as the suite
// runner does.
var pinnedSeeds = []uint64{DefaultSeed, 20030305}

// fingerprint collapses one experiment Result into a stable digest of
// everything a kernel rewrite could perturb: the rendered artifact, the
// structured series, and the simulation counters. Wall time and the seed
// echo are excluded — they are observability, not output.
func fingerprint(res Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "output:%s\n", res.Output)
	for _, s := range res.Series {
		b, _ := json.Marshal(s)
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "events:%d streams:%d cycles:%d underflows:%d\n",
		res.Metrics.Events, res.Metrics.Streams, res.Metrics.Cycles, res.Metrics.Underflows)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestPinnedResultEquivalence is the kernel-rewrite acceptance gate: every
// experiment configuration (all registered IDs, RNG-bearing and analytic
// alike) must reproduce the exact Result fingerprint recorded before the
// sim kernel was rewritten. A legitimate model/rendering change re-pins
// with `go test ./internal/experiments -update`; a kernel change that
// trips this test reordered or perturbed events and must be fixed, not
// re-pinned.
func TestPinnedResultEquivalence(t *testing.T) {
	// The pin is defined at the paper's published operating point: pin the
	// middle tier to G3 MEMS explicitly so a stray SetTier in another test
	// (or a future default change) cannot silently move the goalposts.
	prev := CurrentTier()
	if err := SetTier("mems-g3"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { curTier = prev })

	path := filepath.Join("testdata", "pinned_results.json")
	got := map[string]string{}
	for _, seed := range pinnedSeeds {
		for _, id := range IDs() {
			res, err := RunSeeded(id, seedFor(seed, id))
			if err != nil {
				t.Fatalf("%s @ seed %d: %v", id, seed, err)
			}
			got[fmt.Sprintf("%s@%d", id, seed)] = fingerprint(res)
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got)) // json.Marshal sorts map keys
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing pinned fingerprints (run `go test ./internal/experiments -update`): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for k, wf := range want {
		if got[k] == "" {
			t.Errorf("%s: pinned but no longer registered", k)
			continue
		}
		if got[k] != wf {
			t.Errorf("%s: Result fingerprint drifted — kernel no longer byte-identical", k)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: registered but not pinned (re-run with -update)", k)
		}
	}
}
