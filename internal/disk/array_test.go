package disk

import (
	"testing"
	"time"

	"memstream/internal/device"
	"memstream/internal/sim"
	"memstream/internal/units"
)

func TestNewArrayValidates(t *testing.T) {
	if _, err := NewArray(0, FutureDisk(), 64*units.KB); err == nil {
		t.Error("zero members accepted")
	}
	if _, err := NewArray(2, FutureDisk(), 100); err == nil {
		t.Error("sub-sector stripe accepted")
	}
	bad := FutureDisk()
	bad.RPM = 0
	if _, err := NewArray(2, bad, 64*units.KB); err == nil {
		t.Error("invalid member params accepted")
	}
}

func TestArrayGeometryAndModel(t *testing.T) {
	a, err := NewArray(4, FutureDisk(), 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Members() != 4 {
		t.Errorf("members = %d", a.Members())
	}
	single := a.Member(0).Geometry().Blocks
	if a.Geometry().Blocks != 4*single {
		t.Errorf("array blocks = %d, want %d", a.Geometry().Blocks, 4*single)
	}
	m := a.Model()
	if m.Rate != 4*300*units.MBPS {
		t.Errorf("array rate = %v, want 1.2GB/s", m.Rate)
	}
	if m.Name != "4x FutureDisk" {
		t.Errorf("name = %q", m.Name)
	}
}

func TestArrayLocateRoundRobin(t *testing.T) {
	a, _ := NewArray(3, FutureDisk(), 512) // one-block stripes
	for lbn := int64(0); lbn < 9; lbn++ {
		member, mlbn := a.locate(lbn)
		if member != int(lbn%3) {
			t.Errorf("lbn %d on member %d, want %d", lbn, member, lbn%3)
		}
		if mlbn != lbn/3 {
			t.Errorf("lbn %d -> member lbn %d, want %d", lbn, mlbn, lbn/3)
		}
	}
}

func TestArraySplitCoversRequest(t *testing.T) {
	a, _ := NewArray(4, FutureDisk(), 64*units.KB)
	subs, err := a.split(device.Request{Op: device.Read, Block: 100, Blocks: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range subs {
		total += s.req.Blocks
		if s.req.Blocks <= 0 || s.req.Blocks > a.stripe {
			t.Errorf("sub-request of %d blocks (stripe %d)", s.req.Blocks, a.stripe)
		}
	}
	if total != 1000 {
		t.Errorf("split covers %d blocks, want 1000", total)
	}
	if _, err := a.split(device.Request{Block: a.Geometry().Blocks, Blocks: 1}); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestArrayLargeReadsEngageAllMembers(t *testing.T) {
	a, _ := NewArray(4, FutureDisk(), 64*units.KB)
	// 1MB read spans all four members with 64KB stripes.
	c, err := a.Service(0, device.Request{Op: device.Read, Block: 0, Blocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if a.Member(i).Served() == 0 {
			t.Errorf("member %d idle", i)
		}
	}
	if c.Finish <= 0 {
		t.Error("no service time")
	}
}

func TestArrayThroughputScalesWithMembers(t *testing.T) {
	run := func(n int) units.ByteRate {
		a, err := NewArray(n, FutureDisk(), 1*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(5)
		const blocks = 32768 // 16MiB requests
		var now time.Duration
		var moved units.Bytes
		for i := 0; i < 64; i++ {
			lbn := int64(rng.Float64()*float64(a.Geometry().Blocks-blocks)) / a.stripe * a.stripe
			c, err := a.Service(now, device.Request{Op: device.Read, Block: lbn, Blocks: blocks})
			if err != nil {
				t.Fatal(err)
			}
			now = c.Finish
			moved += units.Bytes(blocks) * 512
		}
		return units.RateOf(moved, now)
	}
	one := run(1)
	four := run(4)
	// Striped arrays pay every member's positioning on each request, so
	// scaling is sublinear; at 16MiB requests ~3x of the ideal 4x remains.
	if float64(four) < 2.5*float64(one) {
		t.Errorf("4-drive array %v not well above single drive %v", four, one)
	}
}
