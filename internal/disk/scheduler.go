package disk

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/ring"
)

// Policy selects the order in which queued requests are serviced.
type Policy uint8

// Scheduling policies.
const (
	// FCFS services requests in arrival order.
	FCFS Policy = iota
	// SSTF services the request with the shortest seek from the current
	// cylinder.
	SSTF
	// CLook sweeps cylinders in one direction, then jumps back to the
	// lowest pending cylinder (the elevator variant most drives use; the
	// paper's disk IO scheduler "uses elevator scheduling to optimize for
	// disk utilization").
	CLook
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SSTF:
		return "sstf"
	case CLook:
		return "c-look"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Scheduler orders pending requests for a disk Device. The pending queue
// is a ring buffer: FCFS dispatch (pick index 0) is O(1) instead of the
// O(n) slice shift it used to be, and the seek-optimizing policies scan
// it in arrival order exactly as before.
type Scheduler struct {
	dev    *Device
	policy Policy
	queue  ring.Ring[device.Request]
}

// NewScheduler wraps dev with the given policy.
func NewScheduler(dev *Device, policy Policy) *Scheduler {
	return &Scheduler{dev: dev, policy: policy}
}

// Enqueue adds a request to the pending queue.
func (s *Scheduler) Enqueue(r device.Request) { s.queue.PushBack(r) }

// Len reports the number of pending requests.
func (s *Scheduler) Len() int { return s.queue.Len() }

func (s *Scheduler) pick() int {
	switch s.policy {
	case SSTF:
		cur := s.dev.cyl
		best, bestD := 0, int(^uint(0)>>1)
		for i, n := 0, s.queue.Len(); i < n; i++ {
			d := s.dev.Cylinder(s.queue.At(i).Block) - cur
			if d < 0 {
				d = -d
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		return best
	case CLook:
		cur := s.dev.cyl
		best, bestD := -1, int(^uint(0)>>1)
		lowest, lowestCyl := 0, int(^uint(0)>>1)
		for i, n := 0, s.queue.Len(); i < n; i++ {
			c := s.dev.Cylinder(s.queue.At(i).Block)
			if c < lowestCyl {
				lowest, lowestCyl = i, c
			}
			if d := c - cur; d >= 0 && d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			return best
		}
		return lowest // wrap the sweep
	default:
		return 0
	}
}

// Dispatch services the next request per the policy, starting at now.
func (s *Scheduler) Dispatch(now time.Duration) (device.Completion, bool, error) {
	if s.queue.Len() == 0 {
		return device.Completion{}, false, nil
	}
	r := s.queue.RemoveAt(s.pick())
	c, err := s.dev.Service(now, r)
	if err != nil {
		return device.Completion{}, false, err
	}
	c.QueueDelay = now - r.Issued
	return c, true, nil
}

// DrainAll services every queued request back-to-back starting at now.
func (s *Scheduler) DrainAll(now time.Duration) ([]device.Completion, error) {
	var out []device.Completion
	t := now
	for s.queue.Len() > 0 {
		c, ok, err := s.Dispatch(t)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, c)
		t = c.Finish
	}
	return out, nil
}
