package disk

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"memstream/internal/device"
)

// Policy selects the order in which queued requests are serviced.
type Policy uint8

// Scheduling policies.
const (
	// FCFS services requests in arrival order.
	FCFS Policy = iota
	// SSTF services the request with the shortest seek from the current
	// cylinder.
	SSTF
	// CLook sweeps cylinders in one direction, then jumps back to the
	// lowest pending cylinder (the elevator variant most drives use; the
	// paper's disk IO scheduler "uses elevator scheduling to optimize for
	// disk utilization").
	CLook
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SSTF:
		return "sstf"
	case CLook:
		return "c-look"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Scheduler orders pending requests for a disk Device.
//
// The pending set lives in one arrival-ordered slice with a removed mark
// per entry instead of a queue that shifts on every removal. C-LOOK picks
// come from a batch index built once per enqueue burst: request cylinders
// are resolved once each (the zone walk in locate was the single hottest
// call in whole-server profiles when it ran per comparison), the live
// entries are sorted by (cylinder, arrival), and each pick binary-searches
// for the first live entry at or above the head's current cylinder,
// wrapping to the lowest pending cylinder when the sweep is exhausted.
// That turns a batch of n dispatches from O(n²) cylinder resolutions into
// one O(n log n) build plus O(log n) picks — while reproducing the exact
// pick order of the historical arrival-order scan, including its
// tie-breaks (earliest arrival at equal cylinder, earliest arrival among
// the wrap candidates).
//
// All storage is reused across batches, and Rebind re-arms a pooled
// Scheduler for another device, so steady-state scheduling allocates
// nothing.
type Scheduler struct {
	dev    *Device
	policy Policy

	reqs    []device.Request // every enqueued request, arrival order
	removed []bool           // removed[i]: reqs[i] already dispatched
	live    int
	head    int // arrival cursor: everything before it is removed

	// C-LOOK batch index, valid while built and no Enqueue intervened.
	built     bool
	cyls      []int   // cyls[i] = cylinder of reqs[i] (live entries only)
	order     []int32 // live arrival indices sorted by (cylinder, arrival)
	orderCyl  []int   // cylinder at each order position (binary-search key)
	orderNext []int32 // skip pointers over removed order positions
}

// NewScheduler wraps dev with the given policy.
func NewScheduler(dev *Device, policy Policy) *Scheduler {
	return &Scheduler{dev: dev, policy: policy}
}

// Rebind resets a (typically pooled) Scheduler for a fresh batch against
// dev, keeping all backing storage.
func (s *Scheduler) Rebind(dev *Device, policy Policy) {
	s.dev, s.policy = dev, policy
	s.reset()
}

func (s *Scheduler) reset() {
	s.reqs = s.reqs[:0]
	s.removed = s.removed[:0]
	s.live = 0
	s.head = 0
	s.built = false
}

// Enqueue adds a request to the pending queue.
func (s *Scheduler) Enqueue(r device.Request) {
	s.reqs = append(s.reqs, r)
	s.removed = append(s.removed, false)
	s.live++
	s.built = false
}

// Len reports the number of pending requests.
func (s *Scheduler) Len() int { return s.live }

// build constructs the sorted C-LOOK index over the live entries.
func (s *Scheduler) build() {
	s.order = s.order[:0]
	s.cyls = grow(s.cyls, len(s.reqs))
	for i := range s.reqs {
		if s.removed[i] {
			continue
		}
		s.cyls[i] = s.dev.Cylinder(s.reqs[i].Block)
		s.order = append(s.order, int32(i))
	}
	// (cylinder, arrival) order: stable within a cylinder because arrival
	// index is the tiebreak, exactly the old scan's "first strictly
	// better" semantics.
	slices.SortFunc(s.order, func(a, b int32) int {
		if s.cyls[a] != s.cyls[b] {
			if s.cyls[a] < s.cyls[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})
	s.orderCyl = grow(s.orderCyl, len(s.order))
	s.orderNext = grow(s.orderNext, len(s.order))
	for p, i := range s.order {
		s.orderCyl[p] = s.cyls[i]
		s.orderNext[p] = int32(p + 1)
	}
	s.built = true
}

// skipLive advances an order position past removed entries, following and
// path-compressing the skip pointers so repeated picks stay near O(1).
func (s *Scheduler) skipLive(p int) int {
	n := len(s.order)
	p0 := p
	for p < n && s.removed[s.order[p]] {
		p = int(s.orderNext[p])
	}
	for p0 < p && p0 < n {
		nx := int(s.orderNext[p0])
		s.orderNext[p0] = int32(p)
		p0 = nx
	}
	return p
}

// pick returns the arrival index of the next request per the policy.
func (s *Scheduler) pick() int {
	switch s.policy {
	case SSTF:
		// Arrival-order scan, strict improvement only: ties go to the
		// earliest arrival, as they always have.
		cur := s.dev.cyl
		best, bestD := -1, int(^uint(0)>>1)
		for i := s.head; i < len(s.reqs); i++ {
			if s.removed[i] {
				continue
			}
			d := s.dev.Cylinder(s.reqs[i].Block) - cur
			if d < 0 {
				d = -d
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		return best
	case CLook:
		if !s.built {
			s.build()
		}
		cur := s.dev.cyl
		p := s.skipLive(sort.SearchInts(s.orderCyl, cur))
		if p >= len(s.order) {
			p = s.skipLive(0) // wrap the sweep to the lowest pending cylinder
		}
		return int(s.order[p])
	default: // FCFS
		for s.removed[s.head] {
			s.head++
		}
		return s.head
	}
}

// Dispatch services the next request per the policy, starting at now.
func (s *Scheduler) Dispatch(now time.Duration) (device.Completion, bool, error) {
	if s.live == 0 {
		return device.Completion{}, false, nil
	}
	i := s.pick()
	r := s.reqs[i]
	s.removed[i] = true
	s.live--
	if s.live == 0 {
		s.reset() // batch drained: recycle the arrays for the next burst
	}
	c, err := s.dev.Service(now, r)
	if err != nil {
		return device.Completion{}, false, err
	}
	c.QueueDelay = now - r.Issued
	return c, true, nil
}

// DrainAll services every queued request back-to-back starting at now.
func (s *Scheduler) DrainAll(now time.Duration) ([]device.Completion, error) {
	var out []device.Completion
	t := now
	for s.live > 0 {
		c, ok, err := s.Dispatch(t)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, c)
		t = c.Finish
	}
	return out, nil
}

// grow resizes a reusable scratch slice to n without preserving contents.
func grow[T int | int32](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
