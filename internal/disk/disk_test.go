package disk

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/device"
	"memstream/internal/sim"
	"memstream/internal/units"
)

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{FutureDisk(), Atlas10K3()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.RPM = 0 },
		func(p *Params) { p.Capacity = 0 },
		func(p *Params) { p.Heads = 0 },
		func(p *Params) { p.Zones = 0 },
		func(p *Params) { p.InnerRate = p.OuterRate + 1 },
		func(p *Params) { p.AvgSeek = p.SingleTrackSeek },
		func(p *Params) { p.FullStrokeSeek = p.AvgSeek },
	}
	for i, mut := range mutations {
		p := FutureDisk()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFutureDiskMatchesPaperTable3(t *testing.T) {
	p := FutureDisk()
	if p.RPM != 20000 {
		t.Errorf("RPM = %d, want 20000", p.RPM)
	}
	if p.OuterRate != 300*units.MBPS {
		t.Errorf("max bandwidth = %v, want 300MB/s", p.OuterRate)
	}
	if p.AvgSeek != units.Milliseconds(2.8) {
		t.Errorf("avg seek = %v, want 2.8ms", p.AvgSeek)
	}
	if p.FullStrokeSeek != units.Milliseconds(7.0) {
		t.Errorf("full stroke = %v, want 7ms", p.FullStrokeSeek)
	}
	if p.Capacity != 1000*units.GB {
		t.Errorf("capacity = %v, want 1TB", p.Capacity)
	}
	if p.CostPerGB != 0.2 {
		t.Errorf("cost = $%v/GB, want $0.2/GB", p.CostPerGB)
	}
}

func TestRotationPeriod(t *testing.T) {
	p := FutureDisk()
	if got := p.RotationPeriod(); got != 3*time.Millisecond {
		t.Errorf("20k RPM period = %v, want 3ms", got)
	}
	if got := p.AvgRotLatency(); got != 1500*time.Microsecond {
		t.Errorf("avg rotational latency = %v, want 1.5ms", got)
	}
}

func TestAvgAccess(t *testing.T) {
	p := FutureDisk()
	// L̄_disk = 2.8ms seek + 1.5ms rotation = 4.3ms.
	if got := p.AvgAccess(); got != units.Milliseconds(4.3) {
		t.Errorf("AvgAccess = %v, want 4.3ms", got)
	}
	if p.MaxAccess() != 10*time.Millisecond {
		t.Errorf("MaxAccess = %v, want 10ms", p.MaxAccess())
	}
}

func TestSeekCurveCalibration(t *testing.T) {
	// A uniformly random seek (measured over many random cylinder pairs)
	// should average close to the published AvgSeek.
	d, err := New(FutureDisk())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	var s sim.Stats
	p := d.Params()
	for i := 0; i < 50000; i++ {
		a, b := rng.Intn(d.Cylinders()), rng.Intn(d.Cylinders())
		dist := a - b
		if dist < 0 {
			dist = -dist
		}
		if dist == 0 {
			continue
		}
		s.Observe(p.seekTimeNorm(float64(dist)/float64(d.Cylinders()-1), d.exponent).Seconds())
	}
	got := units.Seconds(s.Mean())
	if diff := got - p.AvgSeek; diff < -200*time.Microsecond || diff > 200*time.Microsecond {
		t.Errorf("measured avg seek %v, want ≈%v", got, p.AvgSeek)
	}
}

func TestSeekCurveAnchors(t *testing.T) {
	d, _ := New(FutureDisk())
	p := d.Params()
	if got := p.seekTimeNorm(0, d.exponent); got != 0 {
		t.Errorf("zero-distance seek = %v", got)
	}
	one := p.seekTimeNorm(1.0/float64(d.Cylinders()-1), d.exponent)
	if one < p.SingleTrackSeek || one > p.SingleTrackSeek+50*time.Microsecond {
		t.Errorf("single-track seek = %v, want ≈%v", one, p.SingleTrackSeek)
	}
	if got := p.seekTimeNorm(1, d.exponent); got != p.FullStrokeSeek {
		t.Errorf("full-stroke seek = %v, want %v", got, p.FullStrokeSeek)
	}
}

func TestGeometryRealizesCapacity(t *testing.T) {
	for _, params := range []Params{FutureDisk(), Atlas10K3()} {
		d, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		got := d.Geometry().Capacity()
		if math.Abs(float64(got-params.Capacity)) > 0.01*float64(params.Capacity) {
			t.Errorf("%s: realized capacity %v, want ≈%v", params.Name, got, params.Capacity)
		}
	}
}

func TestZonesOuterFasterThanInner(t *testing.T) {
	d, _ := New(FutureDisk())
	first := d.ZoneRate(0)
	last := d.ZoneRate(d.Geometry().Blocks - 1)
	if first != 300*units.MBPS {
		t.Errorf("outer zone rate = %v, want 300MB/s", first)
	}
	if last != 170*units.MBPS {
		t.Errorf("inner zone rate = %v, want 170MB/s", last)
	}
	if first <= last {
		t.Error("outer zone not faster than inner")
	}
}

func TestLocateRoundTrip(t *testing.T) {
	d, _ := New(FutureDisk())
	// Walking LBNs within one zone advances sector, then head, then cylinder.
	c0, h0, s0 := d.locate(0)
	if c0 != 0 || h0 != 0 || s0 != 0 {
		t.Fatalf("locate(0) = (%d,%d,%d)", c0, h0, s0)
	}
	z := d.zones[0]
	_, h1, s1 := d.locate(z.sectors) // first sector of second track
	if h1 != 1 || s1 != 0 {
		t.Errorf("locate(track 1) = head %d sector %d, want 1, 0", h1, s1)
	}
	c2, _, _ := d.locate(z.sectors * int64(d.Params().Heads))
	if c2 != 1 {
		t.Errorf("locate(cyl 1) = cylinder %d, want 1", c2)
	}
}

func TestServiceSequentialStreamsAtZoneRate(t *testing.T) {
	d, _ := New(FutureDisk())
	// Read 30MB sequentially from the outer zone in 1MB chunks; aggregate
	// throughput should be close to 300MB/s (within switch overheads).
	const chunk = 2048 // sectors ≈ 1MiB
	var now time.Duration
	var bytes units.Bytes
	for i := int64(0); i < 30; i++ {
		c, err := d.Service(now, device.Request{Block: i * chunk, Blocks: chunk})
		if err != nil {
			t.Fatal(err)
		}
		now = c.Finish
		bytes += units.Bytes(chunk) * 512
	}
	rate := units.RateOf(bytes, now)
	if float64(rate) < 0.85*float64(300*units.MBPS) {
		t.Errorf("sequential throughput = %v, want ≈300MB/s", rate)
	}
}

func TestServiceRandomPaysPositioning(t *testing.T) {
	d, _ := New(FutureDisk())
	rng := sim.NewRNG(2)
	var pos sim.Stats
	now := time.Duration(0)
	for i := 0; i < 2000; i++ {
		lbn := int64(rng.Float64() * float64(d.Geometry().Blocks-64))
		c, err := d.Service(now, device.Request{Block: lbn, Blocks: 8})
		if err != nil {
			t.Fatal(err)
		}
		pos.Observe(c.Position.Seconds())
		now = c.Finish
	}
	avg := units.Seconds(pos.Mean())
	want := d.Params().AvgAccess()
	// Random 4KB accesses should average near seek+rotation; allow 25%.
	if math.Abs(float64(avg-want)) > 0.25*float64(want) {
		t.Errorf("avg random positioning = %v, want ≈%v", avg, want)
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	d, _ := New(FutureDisk())
	if _, err := d.Service(0, device.Request{Block: d.Geometry().Blocks, Blocks: 1}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := d.Service(0, device.Request{Block: 0, Blocks: 0}); err == nil {
		t.Error("zero-length accepted")
	}
}

func TestServiceAccountingAndReset(t *testing.T) {
	d, _ := New(FutureDisk())
	var now time.Duration
	for i := 0; i < 5; i++ {
		c, err := d.Service(now, device.Request{Block: int64(i) * 1e6, Blocks: 128})
		if err != nil {
			t.Fatal(err)
		}
		now = c.Finish
	}
	if d.Served() != 5 {
		t.Errorf("Served = %d", d.Served())
	}
	if d.BusyTime() != d.TotalSeekTime()+d.TotalRotTime()+d.TotalTransferTime() {
		t.Error("busy != seek+rot+xfer")
	}
	d.Reset()
	if d.Served() != 0 || d.BusyTime() != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestRotationalPositionTracking(t *testing.T) {
	d, _ := New(FutureDisk())
	// Two reads of the same sector back-to-back: the second must wait
	// almost a full revolution (deterministic, not random).
	c1, err := d.Service(0, device.Request{Block: 1000, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.Service(c1.Finish, device.Request{Block: 1000, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	period := d.Params().RotationPeriod()
	if c2.Position < time.Duration(0.9*float64(period)) {
		t.Errorf("re-read rotational wait = %v, want ≈%v", c2.Position, period)
	}
}

// Property: service positioning never exceeds MaxAccess and transfer time
// is positive.
func TestServiceBoundsProperty(t *testing.T) {
	d, _ := New(FutureDisk())
	max := d.Params().MaxAccess() + d.Params().HeadSwitch
	now := time.Duration(0)
	f := func(a uint32, n uint8) bool {
		blocks := int64(n%64) + 1
		lbn := int64(a) % (d.Geometry().Blocks - blocks)
		c, err := d.Service(now, device.Request{Block: lbn, Blocks: blocks})
		if err != nil {
			return false
		}
		now = c.Finish
		return c.Position >= 0 && c.Position <= max && c.Transfer > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchedulerCLookBeatsFCFS(t *testing.T) {
	run := func(policy Policy) time.Duration {
		d, _ := New(FutureDisk())
		s := NewScheduler(d, policy)
		rng := sim.NewRNG(3)
		for i := 0; i < 50; i++ {
			lbn := int64(rng.Float64() * float64(d.Geometry().Blocks-256))
			s.Enqueue(device.Request{Block: lbn, Blocks: 128, Stream: i})
		}
		cs, err := s.DrainAll(0)
		if err != nil {
			t.Fatal(err)
		}
		return cs[len(cs)-1].Finish
	}
	fcfs, clook := run(FCFS), run(CLook)
	if clook >= fcfs {
		t.Errorf("C-LOOK (%v) not faster than FCFS (%v)", clook, fcfs)
	}
}

func TestSchedulerSSTFServesAll(t *testing.T) {
	d, _ := New(FutureDisk())
	s := NewScheduler(d, SSTF)
	n := 25
	for i := 0; i < n; i++ {
		s.Enqueue(device.Request{Block: int64(i*997%100) * 1e7, Blocks: 8, Stream: i})
	}
	cs, err := s.DrainAll(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range cs {
		seen[c.Stream] = true
	}
	if len(seen) != n {
		t.Errorf("SSTF starved requests: served %d of %d", len(seen), n)
	}
}

func TestSchedulerFCFSPreservesOrder(t *testing.T) {
	d, _ := New(FutureDisk())
	s := NewScheduler(d, FCFS)
	for i := 0; i < 5; i++ {
		s.Enqueue(device.Request{Block: int64(4-i) * 1e6, Blocks: 8, Stream: i})
	}
	cs, _ := s.DrainAll(0)
	for i, c := range cs {
		if c.Stream != i {
			t.Fatalf("FCFS order violated: %v", cs)
		}
	}
}

func TestElevatorReducesAvgSeekBelowRandom(t *testing.T) {
	// The paper's L̄_disk is "scheduler-determined"; with C-LOOK over a
	// batch of N requests the per-request seek should be well under the
	// random-access average.
	d, _ := New(FutureDisk())
	s := NewScheduler(d, CLook)
	rng := sim.NewRNG(4)
	n := 100
	for i := 0; i < n; i++ {
		lbn := int64(rng.Float64() * float64(d.Geometry().Blocks-256))
		s.Enqueue(device.Request{Block: lbn, Blocks: 8})
	}
	cs, err := s.DrainAll(0)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, c := range cs {
		total += c.Position
	}
	avg := total / time.Duration(n)
	if avg >= d.Params().AvgAccess() {
		t.Errorf("elevator avg positioning %v not below random-access %v", avg, d.Params().AvgAccess())
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || SSTF.String() != "sstf" || CLook.String() != "c-look" {
		t.Error("policy names wrong")
	}
}

func TestOnControllerCache(t *testing.T) {
	d, _ := New(FutureDisk())
	if err := d.EnableCache(8*units.MB, 600*units.MBPS); err != nil {
		t.Fatal(err)
	}
	miss, err := d.Service(0, device.Request{Op: device.Read, Block: 5e6, Blocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Seek elsewhere, then re-read the cached extent.
	if _, err := d.Service(miss.Finish, device.Request{Op: device.Read, Block: 0, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	hit, err := d.Service(miss.Finish+time.Second, device.Request{Op: device.Read, Block: 5e6, Blocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Position != 0 || hit.ServiceTime() >= miss.ServiceTime() {
		t.Errorf("hit pos=%v time=%v vs miss %v", hit.Position, hit.ServiceTime(), miss.ServiceTime())
	}
	if d.Cache().HitRatio() <= 0 {
		t.Error("no hits recorded")
	}
}
