// Package disk models a magnetic disk drive: multi-zone recording, a
// calibrated seek curve, rotational position tracking, and elevator
// scheduling. The paper evaluates a projected 2007 drive ("FutureDisk",
// based on Maxtor roadmaps: 20,000 RPM, 300 MB/s, 2.8 ms average seek,
// 7.0 ms full stroke, 1 TB) against a 2002 Maxtor Atlas 10K III.
package disk

import (
	"fmt"
	"math"
	"time"

	"memstream/internal/units"
)

// Params describes a disk drive model. The cylinder count is not a
// parameter: the simulator derives it from capacity, zone transfer rates
// and sector size, so the stated capacity and bandwidth are always
// mutually consistent.
type Params struct {
	Name string
	Year int

	RPM         int
	Capacity    units.Bytes
	SectorBytes units.Bytes
	Heads       int // recording surfaces

	// Zoned recording: the outermost zone transfers at OuterRate, the
	// innermost at InnerRate, with Zones discrete steps in between.
	Zones     int
	OuterRate units.ByteRate
	InnerRate units.ByteRate

	// Seek curve anchors. The curve is t(u) = SingleTrackSeek +
	// (FullStrokeSeek-SingleTrackSeek) * u^p over normalized distance u,
	// with p calibrated so a uniformly random seek averages AvgSeek.
	SingleTrackSeek time.Duration
	AvgSeek         time.Duration
	FullStrokeSeek  time.Duration

	HeadSwitch time.Duration // head change within a cylinder

	CostPerGB  units.Dollars
	CostPerDev units.Dollars
}

// FutureDisk is the 2007 drive of the paper's Table 3.
func FutureDisk() Params {
	return Params{
		Name:            "FutureDisk",
		Year:            2007,
		RPM:             20000,
		Capacity:        1000 * units.GB,
		SectorBytes:     512,
		Heads:           8,
		Zones:           16,
		OuterRate:       300 * units.MBPS,
		InnerRate:       170 * units.MBPS,
		SingleTrackSeek: units.Milliseconds(0.3),
		AvgSeek:         units.Milliseconds(2.8),
		FullStrokeSeek:  units.Milliseconds(7.0),
		HeadSwitch:      units.Milliseconds(0.2),
		CostPerGB:       0.2,
		CostPerDev:      200,
	}
}

// Atlas10K3 approximates the 2002 Maxtor Atlas 10K III (paper Table 1's
// 2002 disk column: 1–11 ms access, 30–55 MB/s).
func Atlas10K3() Params {
	return Params{
		Name:            "Atlas 10K III",
		Year:            2002,
		RPM:             10000,
		Capacity:        73 * units.GB,
		SectorBytes:     512,
		Heads:           8,
		Zones:           16,
		OuterRate:       55 * units.MBPS,
		InnerRate:       30 * units.MBPS,
		SingleTrackSeek: units.Milliseconds(0.4),
		AvgSeek:         units.Milliseconds(4.5),
		FullStrokeSeek:  units.Milliseconds(10.5),
		HeadSwitch:      units.Milliseconds(0.5),
		CostPerGB:       2,
		CostPerDev:      150,
	}
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	switch {
	case p.RPM <= 0:
		return fmt.Errorf("disk: %s: non-positive RPM", p.Name)
	case p.Capacity <= 0 || p.SectorBytes <= 0:
		return fmt.Errorf("disk: %s: non-positive capacity or sector size", p.Name)
	case p.Heads <= 0 || p.Zones <= 0:
		return fmt.Errorf("disk: %s: bad geometry", p.Name)
	case p.OuterRate < p.InnerRate || p.InnerRate <= 0:
		return fmt.Errorf("disk: %s: bad zone rates", p.Name)
	case p.SingleTrackSeek < 0 || p.AvgSeek <= p.SingleTrackSeek || p.FullStrokeSeek <= p.AvgSeek:
		return fmt.Errorf("disk: %s: seek anchors must satisfy single < avg < full", p.Name)
	}
	return nil
}

// RotationPeriod is one full revolution.
func (p Params) RotationPeriod() time.Duration {
	return time.Duration(60e9 / float64(p.RPM))
}

// AvgRotLatency is half a revolution, the expected wait for a random sector.
func (p Params) AvgRotLatency() time.Duration { return p.RotationPeriod() / 2 }

// AvgAccess is the paper's L̄_disk under random access: average seek plus
// average rotational latency.
func (p Params) AvgAccess() time.Duration { return p.AvgSeek + p.AvgRotLatency() }

// MaxAccess is the worst-case positioning: full stroke plus a missed
// revolution.
func (p Params) MaxAccess() time.Duration { return p.FullStrokeSeek + p.RotationPeriod() }

// seekExponent calibrates the curve exponent q so that a uniformly random
// seek distance (density 2(1-u) on the normalized distance u) averages
// AvgSeek. E[u^q] = 2/((q+1)(q+2)) for that density, so we solve
//
//	SingleTrack + (Full-Single) * 2/((q+1)(q+2)) = Avg
//
// for q by bisection.
func (p Params) seekExponent() float64 {
	target := float64(p.AvgSeek-p.SingleTrackSeek) / float64(p.FullStrokeSeek-p.SingleTrackSeek)
	lo, hi := 1e-3, 64.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		e := 2 / ((mid + 1) * (mid + 2))
		if e > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// seekTimeNorm returns the arm move time across the normalized distance
// u in [0,1], given the pre-calibrated exponent.
func (p Params) seekTimeNorm(u, exponent float64) time.Duration {
	if u <= 0 {
		return 0
	}
	if u > 1 {
		u = 1
	}
	frac := math.Pow(u, exponent)
	return p.SingleTrackSeek + time.Duration(frac*float64(p.FullStrokeSeek-p.SingleTrackSeek))
}
