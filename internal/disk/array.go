package disk

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

// Array is a RAID-0-style stripe set over identical drives — the
// conventional way to scale a media server's disk bandwidth, and the
// alternative the MEMS bank is compared against (the paper's §6 points to
// the disk-array literature for load balancing; §5's cost argument is
// about beating exactly this kind of hardware scaling).
type Array struct {
	members    []*Device
	stripe     int64 // blocks per stripe unit
	geom       device.Geometry
	memberFree []time.Duration // when each member's last share completes
}

// NewArray builds an n-drive stripe set with the given stripe unit.
func NewArray(n int, p Params, stripeUnit units.Bytes) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("disk: array needs at least one member")
	}
	if stripeUnit < p.SectorBytes {
		return nil, fmt.Errorf("disk: stripe unit %v below sector size", stripeUnit)
	}
	members := make([]*Device, n)
	for i := range members {
		d, err := New(p)
		if err != nil {
			return nil, fmt.Errorf("disk: array member %d: %w", i, err)
		}
		members[i] = d
	}
	stripe := int64(stripeUnit / p.SectorBytes)
	return &Array{
		members:    members,
		stripe:     stripe,
		memberFree: make([]time.Duration, n),
		geom: device.Geometry{
			BlockSize: p.SectorBytes,
			Blocks:    members[0].Geometry().Blocks * int64(n),
		},
	}, nil
}

// Members returns the number of drives.
func (a *Array) Members() int { return len(a.members) }

// Member returns drive i (for statistics).
func (a *Array) Member(i int) *Device { return a.members[i] }

// Geometry returns the combined logical space.
func (a *Array) Geometry() device.Geometry { return a.geom }

// Model returns the array's planner-facing description: aggregate
// bandwidth, single-drive latency (stripes seek independently but a
// request's completion waits for its slowest member).
func (a *Array) Model() device.Model {
	m := a.members[0].Model()
	m.Name = fmt.Sprintf("%dx %s", len(a.members), m.Name)
	m.Rate = units.ByteRate(float64(m.Rate) * float64(len(a.members)))
	m.Capacity = a.geom.Capacity()
	m.CostPerDev = units.Dollars(float64(m.CostPerDev) * float64(len(a.members)))
	return m
}

// locate maps an array LBN to (member, member LBN).
func (a *Array) locate(lbn int64) (int, int64) {
	stripeIdx := lbn / a.stripe
	within := lbn % a.stripe
	member := int(stripeIdx % int64(len(a.members)))
	memberStripe := stripeIdx / int64(len(a.members))
	return member, memberStripe*a.stripe + within
}

// subRequest is one member's share of an array request.
type subRequest struct {
	member int
	req    device.Request
}

// split decomposes an array request into member requests.
func (a *Array) split(r device.Request) ([]subRequest, error) {
	if err := a.geom.Validate(r); err != nil {
		return nil, err
	}
	var subs []subRequest
	remaining := r.Blocks
	lbn := r.Block
	for remaining > 0 {
		member, mlbn := a.locate(lbn)
		chunk := a.stripe - lbn%a.stripe
		if chunk > remaining {
			chunk = remaining
		}
		subs = append(subs, subRequest{
			member: member,
			req: device.Request{
				Op: r.Op, Block: mlbn, Blocks: chunk,
				Stream: r.Stream, Issued: r.Issued,
			},
		})
		lbn += chunk
		remaining -= chunk
	}
	return subs, nil
}

// Service performs one request starting at now: member shares proceed in
// parallel (each on its own drive, queued behind that drive's in-flight
// work as tracked by memberFree), and the request completes when the
// slowest share does.
func (a *Array) Service(now time.Duration, r device.Request) (device.Completion, error) {
	subs, err := a.split(r)
	if err != nil {
		return device.Completion{}, err
	}
	var finish time.Duration
	var pos, xfer time.Duration
	for _, s := range subs {
		start := now
		if t := a.memberFree[s.member]; t > start {
			start = t
		}
		c, err := a.members[s.member].Service(start, s.req)
		if err != nil {
			return device.Completion{}, err
		}
		a.memberFree[s.member] = c.Finish
		if c.Finish > finish {
			finish = c.Finish
		}
		pos += c.Position
		xfer += c.Transfer
	}
	return device.Completion{
		Request:  r,
		Start:    now,
		Finish:   finish,
		Position: pos,
		Transfer: xfer,
	}, nil
}
