package disk

import (
	"fmt"
	"math"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

// zone is one band of cylinders recorded at a common density.
type zone struct {
	firstCyl   int
	cyls       int
	sectors    int64 // sectors per track
	rate       units.ByteRate
	firstBlock int64 // first LBN in the zone
	blocks     int64 // total LBNs in the zone
}

// Device is a simulated disk drive. Like the MEMS model it tracks head and
// rotational position between requests, so service times are a function of
// the request sequence, not constants.
type Device struct {
	p        Params
	exponent float64
	zones    []zone
	cyls     int
	geom     device.Geometry

	// Head state.
	cyl      int
	head     int
	nowAngle float64 // angular position at lastTime, in [0,1)
	lastTime time.Duration

	// Optional on-controller read cache, as found on current-day drives.
	cache     *device.ReadCache
	cacheRate units.ByteRate

	// Statistics.
	served   uint64
	busy     time.Duration
	seekTime time.Duration
	rotTime  time.Duration
	xferTime time.Duration
}

// EnableCache attaches a controller read cache of the given byte capacity
// served at ifaceRate. Cache hits skip seek, rotation and media transfer.
func (d *Device) EnableCache(capacity units.Bytes, ifaceRate units.ByteRate) error {
	if ifaceRate <= 0 {
		return fmt.Errorf("disk: non-positive cache interface rate %v", ifaceRate)
	}
	c, err := device.NewReadCache(int64(capacity / d.geom.BlockSize))
	if err != nil {
		return err
	}
	d.cache = c
	d.cacheRate = ifaceRate
	return nil
}

// Cache returns the attached read cache, or nil.
func (d *Device) Cache() *device.ReadCache { return d.cache }

// New constructs a Device. The cylinder count is derived so that the zoned
// layout realizes Params.Capacity as closely as sector rounding allows.
func New(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	period := p.RotationPeriod().Seconds()

	// Sectors per track in each zone follow the zone's media rate.
	sectorsAt := func(rate units.ByteRate) int64 {
		return int64(float64(rate) * period / float64(p.SectorBytes))
	}
	// Average sectors per track across zones determines how many
	// cylinders realize the target capacity.
	var avgSectors float64
	rates := make([]units.ByteRate, p.Zones)
	for z := 0; z < p.Zones; z++ {
		f := 0.0
		if p.Zones > 1 {
			f = float64(z) / float64(p.Zones-1)
		}
		rates[z] = p.OuterRate - units.ByteRate(f*float64(p.OuterRate-p.InnerRate))
		avgSectors += float64(sectorsAt(rates[z]))
	}
	avgSectors /= float64(p.Zones)
	cyls := int(math.Round(float64(p.Capacity) / (float64(p.Heads) * avgSectors * float64(p.SectorBytes))))
	if cyls < p.Zones {
		return nil, fmt.Errorf("disk: %s: capacity too small for %d zones", p.Name, p.Zones)
	}

	d := &Device{p: p, exponent: p.seekExponent(), cyls: cyls}
	perZone := cyls / p.Zones
	var lbn int64
	for z := 0; z < p.Zones; z++ {
		zc := perZone
		if z == p.Zones-1 {
			zc = cyls - perZone*(p.Zones-1) // remainder to the last zone
		}
		sec := sectorsAt(rates[z])
		zn := zone{
			firstCyl:   z * perZone,
			cyls:       zc,
			sectors:    sec,
			rate:       rates[z],
			firstBlock: lbn,
			blocks:     int64(zc) * int64(p.Heads) * sec,
		}
		lbn += zn.blocks
		d.zones = append(d.zones, zn)
	}
	d.geom = device.Geometry{BlockSize: p.SectorBytes, Blocks: lbn}
	return d, nil
}

// Params returns the drive's parameter set.
func (d *Device) Params() Params { return d.p }

// Geometry returns the logical block geometry.
func (d *Device) Geometry() device.Geometry { return d.geom }

// Cylinders returns the derived cylinder count.
func (d *Device) Cylinders() int { return d.cyls }

// Model returns the static description used by the analytical framework.
// Rate is the outer-zone (maximum) rate, matching how the paper quotes
// device bandwidth; AvgLatency is seek + rotational latency under random
// access.
func (d *Device) Model() device.Model {
	return device.Model{
		Name:       d.p.Name,
		Rate:       d.p.OuterRate,
		AvgLatency: d.p.AvgAccess(),
		MaxLatency: d.p.MaxAccess(),
		Capacity:   d.geom.Capacity(),
		CostPerGB:  d.p.CostPerGB,
		CostPerDev: d.p.CostPerDev,
	}
}

// zoneOf locates the zone containing lbn by linear scan (zones are few).
func (d *Device) zoneOf(lbn int64) *zone {
	for i := range d.zones {
		z := &d.zones[i]
		if lbn < z.firstBlock+z.blocks {
			return z
		}
	}
	return &d.zones[len(d.zones)-1]
}

// locate maps an LBN to (cylinder, head, sector).
func (d *Device) locate(lbn int64) (cyl, head int, sector int64) {
	z := d.zoneOf(lbn)
	off := lbn - z.firstBlock
	perCyl := int64(d.p.Heads) * z.sectors
	cyl = z.firstCyl + int(off/perCyl)
	rem := off % perCyl
	head = int(rem / z.sectors)
	sector = rem % z.sectors
	return cyl, head, sector
}

// Cylinder returns the cylinder holding lbn; schedulers sort on it.
func (d *Device) Cylinder(lbn int64) int {
	c, _, _ := d.locate(lbn)
	return c
}

// SeekTime returns the arm move time from the current cylinder to the
// cylinder holding lbn, without rotational wait.
func (d *Device) SeekTime(lbn int64) time.Duration {
	target, _, _ := d.locate(lbn)
	dist := target - d.cyl
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	return d.p.seekTimeNorm(float64(dist)/float64(d.cyls-1), d.exponent)
}

// angleAt returns the platter angle at time t, tracked deterministically
// from the last service.
func (d *Device) angleAt(t time.Duration) float64 {
	period := d.p.RotationPeriod()
	delta := float64((t-d.lastTime)%period) / float64(period)
	a := d.nowAngle + delta
	return a - math.Floor(a)
}

// Service performs one request starting at simulated time now. Positioning
// is seek plus the rotational wait for the target sector given the
// platter's tracked angle; transfers stream at the zone rate with head and
// track switches charged as they occur.
func (d *Device) Service(now time.Duration, r device.Request) (device.Completion, error) {
	if err := d.geom.Validate(r); err != nil {
		return device.Completion{}, err
	}
	if d.cache != nil {
		if r.Op == device.Write {
			d.cache.Invalidate(r.Block, r.Blocks)
		} else if d.cache.Lookup(r.Block, r.Blocks) {
			bytes := units.Bytes(r.Blocks) * d.geom.BlockSize
			xfer := bytes.Duration(d.cacheRate)
			c := device.Completion{Request: r, Start: now, Finish: now + xfer, Transfer: xfer}
			d.served++
			d.busy += xfer
			d.xferTime += xfer
			return c, nil
		}
	}
	z := d.zoneOf(r.Block)
	_, head, sector := d.locate(r.Block)

	seek := d.SeekTime(r.Block)
	if head != d.head && seek < d.p.HeadSwitch {
		seek = d.p.HeadSwitch // head switch not hidden under the seek
	}

	// Rotational wait for the first sector after the seek completes.
	period := d.p.RotationPeriod()
	arrive := now + seek
	angle := d.angleAt(arrive)
	targetAngle := float64(sector) / float64(z.sectors)
	wait := targetAngle - angle
	if wait < 0 {
		wait++
	}
	rot := time.Duration(wait * float64(period))

	// Transfer: per-sector time in this zone, plus a head switch per track
	// boundary and a single-track seek per cylinder boundary crossed.
	secTime := period / time.Duration(z.sectors)
	xfer := time.Duration(r.Blocks) * secTime
	firstTrack := (r.Block - z.firstBlock) / z.sectors
	lastTrack := (r.Block + r.Blocks - 1 - z.firstBlock) / z.sectors
	if lastTrack > firstTrack {
		switches := lastTrack - firstTrack
		xfer += time.Duration(switches) * d.p.HeadSwitch
		perCylTracks := int64(d.p.Heads)
		cylCross := lastTrack/perCylTracks - firstTrack/perCylTracks
		if cylCross > 0 {
			xfer += time.Duration(cylCross) * d.p.SingleTrackSeek
		}
	}

	finish := now + seek + rot + xfer

	// Update head/platter state.
	endCyl, endHead, endSector := d.locate(r.Block + r.Blocks - 1)
	d.cyl, d.head = endCyl, endHead
	d.lastTime = finish
	d.nowAngle = float64(endSector+1) / float64(z.sectors)
	d.nowAngle -= math.Floor(d.nowAngle)

	c := device.Completion{
		Request:  r,
		Start:    now,
		Finish:   finish,
		Position: seek + rot,
		Transfer: xfer,
	}
	d.served++
	d.busy += finish - now
	d.seekTime += seek
	d.rotTime += rot
	d.xferTime += xfer
	if d.cache != nil && r.Op == device.Read {
		d.cache.Insert(r.Block, r.Blocks)
	}
	return c, nil
}

// Reset parks the head at cylinder 0 and clears statistics.
func (d *Device) Reset() {
	d.cyl, d.head, d.nowAngle, d.lastTime = 0, 0, 0, 0
	d.served, d.busy, d.seekTime, d.rotTime, d.xferTime = 0, 0, 0, 0, 0
}

// Served reports completed requests.
func (d *Device) Served() uint64 { return d.served }

// BusyTime reports cumulative service time.
func (d *Device) BusyTime() time.Duration { return d.busy }

// TotalSeekTime reports cumulative arm-move time.
func (d *Device) TotalSeekTime() time.Duration { return d.seekTime }

// TotalRotTime reports cumulative rotational wait.
func (d *Device) TotalRotTime() time.Duration { return d.rotTime }

// TotalTransferTime reports cumulative media transfer time.
func (d *Device) TotalTransferTime() time.Duration { return d.xferTime }

// ZoneRate returns the media rate of the zone containing lbn.
func (d *Device) ZoneRate(lbn int64) units.ByteRate { return d.zoneOf(lbn).rate }

// EffectiveRate returns the block-weighted mean media rate across zones —
// the sustainable transfer rate for content spread over the whole surface.
// Planning against the outer-zone maximum is optimistic for whole-disk
// layouts; the server simulator plans against this value instead.
func (d *Device) EffectiveRate() units.ByteRate {
	var sum float64
	for _, z := range d.zones {
		sum += float64(z.rate) * float64(z.blocks)
	}
	return units.ByteRate(sum / float64(d.geom.Blocks))
}
