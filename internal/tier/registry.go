package tier

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"memstream/internal/disk"
	"memstream/internal/mems"
	"memstream/internal/units"
)

// Default is the registry name the stack uses when no tier is selected:
// the paper's G3 MEMS device (its Table 3). Running with the default
// reproduces the pre-tier pinned goldens byte-for-byte.
const Default = "mems-g3"

// builtin constructs every registered parameter set. Specs are built on
// demand (not stored) so callers can mutate the returned copy freely.
var builtin = map[string]func() Spec{
	"mems-g1":     func() Spec { return FromMEMS("mems-g1", mems.G1()) },
	"mems-g2":     func() Spec { return FromMEMS("mems-g2", mems.G2()) },
	"mems-g3":     func() Spec { return FromMEMS("mems-g3", mems.G3()) },
	"nvm-optane":  nvmOptane,
	"ssd-sata":    ssdSATA,
	"disk-future": diskFuture,
}

// aliases maps the short generation names the CLIs accepted before the
// tier registry existed.
var aliases = map[string]string{
	"g1": "mems-g1",
	"g2": "mems-g2",
	"g3": "mems-g3",
}

// Names lists the registered parameter sets in sorted order.
func Names() []string {
	out := make([]string, 0, len(builtin))
	for name := range builtin {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the named parameter set. Unknown names error with the
// list of available sets so a mistyped -tier flag is self-correcting.
func Lookup(name string) (Spec, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	mk, ok := builtin[name]
	if !ok {
		return Spec{}, fmt.Errorf("tier: unknown parameter set %q (available: %s)",
			name, strings.Join(Names(), ", "))
	}
	return mk(), nil
}

// MustLookup is Lookup for built-in names known at compile time.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// New constructs a simulated device from a parameter set: the
// position-dependent sled simulator when the spec carries MEMS
// parameters, the uniform-latency model otherwise.
func New(s Spec) (Device, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.MEMS != nil {
		return newMEMSDevice(s)
	}
	return newFlatDevice(s)
}

// nvmOptane is an Intel Optane SSD DC P4800X-class device (2017): 375 GB
// of 3D XPoint behind NVMe at ~2.4 GB/s, ~10 µs typical read latency
// (Intel's data sheet; ~30 µs at QoS tail), around $4/GB at launch
// street pricing. The first shipping hardware occupying the
// DRAM-to-flash gap the paper projected MEMS into.
func nvmOptane() Spec {
	return Spec{
		Name:       "nvm-optane",
		Kind:       "nvm",
		Year:       2017,
		Capacity:   375 * units.GB,
		BlockBytes: 512,
		Rate:       2400 * units.MBPS,
		AvgLatency: 10 * time.Microsecond,
		MaxLatency: 30 * time.Microsecond,
		CostPerGB:  4,
		CostPerDev: 1500,
	}
}

// ssdSATA is a datacenter SATA flash SSD (c. 2018, Samsung 860/Intel
// S4510 class): 480 GB, interface-bound at ~550 MB/s, ~60 µs typical
// read latency with ~250 µs under queueing, ~$0.12/GB.
func ssdSATA() Spec {
	return Spec{
		Name:       "ssd-sata",
		Kind:       "ssd",
		Year:       2018,
		Capacity:   480 * units.GB,
		BlockBytes: 512,
		Rate:       550 * units.MBPS,
		AvgLatency: 60 * time.Microsecond,
		MaxLatency: 250 * time.Microsecond,
		CostPerGB:  0.12,
		CostPerDev: 58,
	}
}

// diskFuture reuses the paper's FutureDisk (Table 3) as a middle tier —
// the degenerate hierarchy where the buffer is just more disk, useful as
// the baseline the MEMS/NVM tiers must beat on latency.
func diskFuture() Spec {
	p := disk.FutureDisk()
	return Spec{
		Name:       "disk-future",
		Kind:       "disk",
		Year:       p.Year,
		Capacity:   p.Capacity,
		BlockBytes: p.SectorBytes,
		Rate:       p.OuterRate,
		AvgLatency: p.AvgAccess(),
		MaxLatency: p.MaxAccess(),
		CostPerGB:  p.CostPerGB,
		CostPerDev: p.CostPerDev,
	}
}
