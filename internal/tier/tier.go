// Package tier abstracts the middle tier of the paper's three-level
// hierarchy (DRAM / buffer device / disk) behind a device interface and a
// registry of named parameter sets. The paper's argument — Eq 1–2 and 9
// show a middle tier is cost-effective for streaming — is not specific to
// MEMS sleds; this package lets the same planners, banks, and simulation
// drivers run against any hardware generation (MEMS G1–G3 as published,
// or NVM/SSD devices that actually shipped) by swapping one parameter
// set. Only this package and internal/mems know about sled mechanics;
// everything above speaks Spec and Device.
package tier

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

// Spec is the parameter set for one middle-tier device generation: the
// capacity/bandwidth/latency triple the analytical framework needs plus
// the cost numbers for the paper's Eq 1–2/9 price model. MEMS-backed
// specs additionally carry the full sled parameter set in MEMS; consumers
// that need sled-specific fields (e.g. the paper's Table 3 rendering)
// read them through that pointer without importing internal/mems.
type Spec struct {
	Name string // registry name, e.g. "mems-g3"
	Kind string // device family: "mems", "nvm", "ssd", "disk"
	Year int    // generation year the parameters are sourced from

	Capacity   units.Bytes
	BlockBytes units.Bytes // logical block size

	// Rate is the sustained media/interface transfer rate R; AvgLatency
	// and MaxLatency bound the per-IO positioning overhead L̄. The
	// paper's evaluation charges the middle tier MaxLatency (its §5).
	Rate       units.ByteRate
	AvgLatency time.Duration
	MaxLatency time.Duration

	CostPerGB  units.Dollars
	CostPerDev units.Dollars // per-device entry cost (paper Eq 2 price model)

	// MEMS, when non-nil, holds the sled parameter set and selects the
	// position-dependent MEMS simulator in New; flat-latency devices
	// (NVM, SSD, disk used as a buffer) leave it nil.
	MEMS *memsParams
}

// Validate checks the parameter set for internal consistency. Every
// registered set must pass; new generations added to the registry
// inherit the same checks.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("tier: spec has no name")
	case s.Capacity <= 0:
		return fmt.Errorf("tier: %s: non-positive capacity", s.Name)
	case s.BlockBytes <= 0:
		return fmt.Errorf("tier: %s: non-positive block size", s.Name)
	case s.Rate <= 0:
		return fmt.Errorf("tier: %s: non-positive rate", s.Name)
	case s.AvgLatency < 0 || s.MaxLatency < 0:
		return fmt.Errorf("tier: %s: negative latency", s.Name)
	case s.MaxLatency < s.AvgLatency:
		return fmt.Errorf("tier: %s: max latency below average", s.Name)
	case s.CostPerGB <= 0 || s.CostPerDev <= 0:
		return fmt.Errorf("tier: %s: non-positive cost", s.Name)
	}
	return nil
}

// DeviceCost is the per-device price under the paper's Eq 2 model:
// $/GB times device capacity.
func (s Spec) DeviceCost() units.Dollars {
	return units.PerGB(s.CostPerGB).Cost(s.Capacity)
}

// Device is one simulated middle-tier device. It is the contract the
// banks and the simulation rig program against: service a request at a
// simulated clock and report emergent statistics. Implementations are
// not safe for concurrent use; in a simulation a device belongs to a
// single Engine goroutine.
type Device interface {
	// Spec returns the parameter set the device was built from.
	Spec() Spec
	// Geometry returns the logical block geometry.
	Geometry() device.Geometry
	// Model returns the static performance description used by the
	// analytical framework.
	Model() device.Model
	// Service performs one request starting at simulated time now,
	// updates device state, and returns the completion record.
	Service(now time.Duration, r device.Request) (device.Completion, error)
	// Served reports the number of completed requests.
	Served() uint64
	// BusyTime reports cumulative service time.
	BusyTime() time.Duration
	// TotalSeekTime reports cumulative positioning time.
	TotalSeekTime() time.Duration
	// TotalTransferTime reports cumulative media transfer time.
	TotalTransferTime() time.Duration
	// Reset returns the device to its initial position and clears
	// statistics.
	Reset()
}

// Cacheable is implemented by devices that can attach an on-device read
// cache (paper §3 assumes the buffer devices carry one, like disk-drive
// caches).
type Cacheable interface {
	// EnableCache attaches a read cache of the given byte capacity
	// served at ifaceRate; hits skip positioning and media transfer.
	EnableCache(capacity units.Bytes, ifaceRate units.ByteRate) error
	// Cache returns the attached read cache, or nil.
	Cache() *device.ReadCache
}

// Layout maps stream-relative block addresses onto device LBNs — the
// placement-policy contract from the paper's §7 future work.
type Layout interface {
	// Name identifies the policy.
	Name() string
	// Map translates (stream, stream-relative block) to a device LBN.
	Map(stream int, block int64) (int64, error)
}

// LayoutCapable is implemented by devices whose positioning cost depends
// on data placement, making layout policies meaningful.
type LayoutCapable interface {
	// ContiguousLayout allocates n equal per-stream extents.
	ContiguousLayout(n int) (Layout, error)
	// InterleavedLayout groups the j-th chunk of every stream into the
	// j-th stripe so lock-step streams access neighboring positions.
	InterleavedLayout(n int, ioSize units.Bytes) (Layout, error)
}

// Policy selects the order in which a Scheduler services queued requests.
type Policy uint8

// Scheduling policies.
const (
	// FCFS services requests in arrival order.
	FCFS Policy = iota
	// SPTF services the request with the shortest positioning time from
	// the current device position.
	SPTF
	// Elevator sweeps the address space in alternating directions.
	Elevator
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SPTF:
		return "sptf"
	case Elevator:
		return "elevator"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps a CLI policy name (with common disk-world aliases) to
// a Policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS, nil
	case "sptf", "sstf":
		return SPTF, nil
	case "elevator", "c-look":
		return Elevator, nil
	}
	return FCFS, fmt.Errorf("tier: unknown policy %q (want fcfs, sptf/sstf, elevator/c-look)", name)
}

// Scheduler orders pending requests for a Device and services them one
// at a time. The caller owns simulated time.
type Scheduler interface {
	// Enqueue adds a request to the pending queue.
	Enqueue(r device.Request)
	// Len reports the number of pending requests.
	Len() int
	// Dispatch services the next request according to the policy,
	// starting at simulated time now; false when the queue is empty.
	Dispatch(now time.Duration) (device.Completion, bool, error)
	// DrainAll services every queued request back-to-back starting at
	// now and returns the completions in service order.
	DrainAll(now time.Duration) ([]device.Completion, error)
}
