package tier

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

// flatDevice simulates a uniform-latency block device: every IO pays the
// spec's average positioning latency (controller/protocol overhead — for
// solid-state devices there is no mechanical position to track) plus
// media transfer at the spec rate. It backs the NVM/SSD parameter sets
// and disk-as-buffer, and mirrors the MEMS simulator's optional read
// cache semantics so cache experiments run on any tier.
type flatDevice struct {
	spec Spec
	geom device.Geometry

	cache     *device.ReadCache
	cacheRate units.ByteRate

	served   uint64
	busy     time.Duration
	seekTime time.Duration
	xferTime time.Duration
}

// newFlatDevice constructs the uniform-latency simulator.
func newFlatDevice(s Spec) (Device, error) {
	return &flatDevice{
		spec: s,
		geom: device.Geometry{
			BlockSize: s.BlockBytes,
			Blocks:    int64(s.Capacity / s.BlockBytes),
		},
	}, nil
}

// Spec returns the parameter set the device was built from.
func (d *flatDevice) Spec() Spec { return d.spec }

// Geometry returns the logical block geometry.
func (d *flatDevice) Geometry() device.Geometry { return d.geom }

// Model returns the static performance description used by the
// analytical framework.
func (d *flatDevice) Model() device.Model {
	return device.Model{
		Name:       d.spec.Name,
		Rate:       d.spec.Rate,
		AvgLatency: d.spec.AvgLatency,
		MaxLatency: d.spec.MaxLatency,
		Capacity:   d.geom.Capacity(),
		CostPerGB:  d.spec.CostPerGB,
		CostPerDev: d.spec.CostPerDev,
	}
}

// EnableCache attaches an on-device read cache of the given byte
// capacity served at ifaceRate. Cache hits skip positioning and media
// transfer, exactly as on the MEMS simulator.
func (d *flatDevice) EnableCache(capacity units.Bytes, ifaceRate units.ByteRate) error {
	if ifaceRate <= 0 {
		return fmt.Errorf("tier: %s: non-positive cache interface rate %v", d.spec.Name, ifaceRate)
	}
	c, err := device.NewReadCache(int64(capacity / d.geom.BlockSize))
	if err != nil {
		return err
	}
	d.cache = c
	d.cacheRate = ifaceRate
	return nil
}

// Cache returns the attached read cache, or nil.
func (d *flatDevice) Cache() *device.ReadCache { return d.cache }

// Service performs one request starting at simulated time now.
func (d *flatDevice) Service(now time.Duration, r device.Request) (device.Completion, error) {
	if err := d.geom.Validate(r); err != nil {
		return device.Completion{}, err
	}
	if d.cache != nil {
		if r.Op == device.Write {
			d.cache.Invalidate(r.Block, r.Blocks)
		} else if d.cache.Lookup(r.Block, r.Blocks) {
			bytes := units.Bytes(r.Blocks) * d.geom.BlockSize
			xfer := bytes.Duration(d.cacheRate)
			c := device.Completion{Request: r, Start: now, Finish: now + xfer, Transfer: xfer}
			d.served++
			d.busy += xfer
			d.xferTime += xfer
			return c, nil
		}
	}
	pos := d.spec.AvgLatency
	bytes := units.Bytes(r.Blocks) * d.geom.BlockSize
	xfer := bytes.Duration(d.spec.Rate)
	c := device.Completion{
		Request:  r,
		Start:    now,
		Finish:   now + pos + xfer,
		Position: pos,
		Transfer: xfer,
	}
	d.served++
	d.busy += pos + xfer
	d.seekTime += pos
	d.xferTime += xfer
	if d.cache != nil && r.Op == device.Read {
		d.cache.Insert(r.Block, r.Blocks)
	}
	return c, nil
}

// Reset clears statistics.
func (d *flatDevice) Reset() {
	d.served, d.busy, d.seekTime, d.xferTime = 0, 0, 0, 0
}

// Served reports the number of completed requests.
func (d *flatDevice) Served() uint64 { return d.served }

// BusyTime reports cumulative service time.
func (d *flatDevice) BusyTime() time.Duration { return d.busy }

// TotalSeekTime reports cumulative positioning time.
func (d *flatDevice) TotalSeekTime() time.Duration { return d.seekTime }

// TotalTransferTime reports cumulative media transfer time.
func (d *flatDevice) TotalTransferTime() time.Duration { return d.xferTime }

var (
	_ Device    = (*flatDevice)(nil)
	_ Cacheable = (*flatDevice)(nil)
)

// fifoScheduler services requests in arrival order — on a uniform-latency
// device every ordering has the same cost, so FCFS is optimal.
type fifoScheduler struct {
	dev   Device
	queue []device.Request
}

// Enqueue adds a request to the pending queue.
func (s *fifoScheduler) Enqueue(r device.Request) { s.queue = append(s.queue, r) }

// Len reports the number of pending requests.
func (s *fifoScheduler) Len() int { return len(s.queue) }

// Dispatch services the oldest request; false when the queue is empty.
func (s *fifoScheduler) Dispatch(now time.Duration) (device.Completion, bool, error) {
	if len(s.queue) == 0 {
		return device.Completion{}, false, nil
	}
	r := s.queue[0]
	s.queue = s.queue[1:]
	c, err := s.dev.Service(now, r)
	if err != nil {
		return device.Completion{}, false, err
	}
	c.QueueDelay = now - r.Issued
	return c, true, nil
}

// DrainAll services every queued request back-to-back starting at now.
func (s *fifoScheduler) DrainAll(now time.Duration) ([]device.Completion, error) {
	var out []device.Completion
	t := now
	for len(s.queue) > 0 {
		c, ok, err := s.Dispatch(t)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, c)
		t = c.Finish
	}
	return out, nil
}
