package tier

import (
	"memstream/internal/mems"
	"memstream/internal/units"
)

// memsParams aliases the sled parameter struct so Spec can carry it by
// pointer. Being an alias (not a new type), consumers read fields like
// spec.MEMS.FullStrokeSeekX without importing internal/mems.
type memsParams = mems.Params

// FromMEMS builds a Spec from a sled parameter set, registered under the
// given name. The derived latency bounds are the same pure functions of
// the parameters the pre-tier stack used (MaxLatency/AvgLatency), so a
// MEMS-backed spec plans and simulates byte-for-byte like the direct
// mems.Params path did.
func FromMEMS(name string, p mems.Params) Spec {
	return Spec{
		Name:       name,
		Kind:       "mems",
		Year:       p.Year,
		Capacity:   p.Capacity,
		BlockBytes: p.SectorBytes,
		Rate:       p.Rate,
		AvgLatency: p.AvgLatency(),
		MaxLatency: p.MaxLatency(),
		CostPerGB:  p.CostPerGB,
		CostPerDev: p.CostPerDev,
		MEMS:       &p,
	}
}

// memsDevice adapts the position-dependent MEMS simulator to the Device
// interface. The embedded *mems.Device serves every request directly —
// method promotion, not delegation — so the float64 operations (and
// therefore the pinned Result bytes) are exactly those of the pre-tier
// stack.
type memsDevice struct {
	*mems.Device
	spec Spec
}

// Spec returns the parameter set the device was built from.
func (d *memsDevice) Spec() Spec { return d.spec }

// ContiguousLayout allocates n equal per-stream extents on the sled.
func (d *memsDevice) ContiguousLayout(n int) (Layout, error) {
	return mems.NewContiguous(d.Device, n)
}

// InterleavedLayout builds the streaming-aware sled interleaving for n
// streams issuing IOs of ioSize bytes.
func (d *memsDevice) InterleavedLayout(n int, ioSize units.Bytes) (Layout, error) {
	return mems.NewInterleaved(d.Device, n, ioSize)
}

var (
	_ Device        = (*memsDevice)(nil)
	_ Cacheable     = (*memsDevice)(nil)
	_ LayoutCapable = (*memsDevice)(nil)
)

// newMEMSDevice constructs the sled simulator behind the interface.
func newMEMSDevice(s Spec) (Device, error) {
	d, err := mems.New(*s.MEMS)
	if err != nil {
		return nil, err
	}
	return &memsDevice{Device: d, spec: s}, nil
}

// NewScheduler wraps dev with the given policy. MEMS-backed devices use
// the sled-aware scheduler (SPTF and Elevator consult actual sled
// position); flat-latency devices have no position to exploit, so every
// policy degenerates to FCFS ordering.
func NewScheduler(dev Device, policy Policy) Scheduler {
	if md, ok := dev.(*memsDevice); ok {
		var mp mems.Policy
		switch policy {
		case SPTF:
			mp = mems.SPTF
		case Elevator:
			mp = mems.Elevator
		default:
			mp = mems.FCFS
		}
		return mems.NewScheduler(md.Device, mp)
	}
	return &fifoScheduler{dev: dev}
}
