package tier

import (
	"strings"
	"testing"
	"time"

	"memstream/internal/device"
	"memstream/internal/mems"
	"memstream/internal/units"
)

func TestRegistryValid(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d sets, want at least 6: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid built-in spec: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("%s: spec.Name = %q", name, s.Name)
		}
		if s.AvgLatency > s.MaxLatency {
			t.Errorf("%s: avg latency %v above max %v", name, s.AvgLatency, s.MaxLatency)
		}
		d, err := New(s)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		if d.Geometry().Blocks <= 0 {
			t.Errorf("%s: non-positive block count", name)
		}
		if got := d.Model().Rate; got != s.Rate {
			t.Errorf("%s: Model rate %v, spec rate %v", name, got, s.Rate)
		}
	}
}

func TestLookupUnknownListsAvailable(t *testing.T) {
	_, err := Lookup("mems-g9")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestLookupAliases(t *testing.T) {
	for short, full := range map[string]string{"g1": "mems-g1", "g2": "mems-g2", "g3": "mems-g3"} {
		s, err := Lookup(short)
		if err != nil {
			t.Fatalf("%s: %v", short, err)
		}
		if s.Name != full {
			t.Errorf("Lookup(%q).Name = %q, want %q", short, s.Name, full)
		}
	}
}

// TestMEMSAnchoring pins the mems-g* specs to the published parameter
// sets: every derived field must be the same pure function of
// mems.Params the pre-tier stack used, or the byte-identity gate on the
// experiment goldens loses its meaning.
func TestMEMSAnchoring(t *testing.T) {
	gens := map[string]mems.Params{
		"mems-g1": mems.G1(), "mems-g2": mems.G2(), "mems-g3": mems.G3(),
	}
	for name, p := range gens {
		s := MustLookup(name)
		if s.MEMS == nil {
			t.Fatalf("%s: no MEMS parameters attached", name)
		}
		if *s.MEMS != p {
			t.Errorf("%s: attached params %+v != published %+v", name, *s.MEMS, p)
		}
		if s.Capacity != p.Capacity || s.BlockBytes != p.SectorBytes || s.Rate != p.Rate {
			t.Errorf("%s: geometry/rate drifted from params", name)
		}
		if s.AvgLatency != p.AvgLatency() || s.MaxLatency != p.MaxLatency() {
			t.Errorf("%s: latency bounds drifted: spec (%v, %v), params (%v, %v)",
				name, s.AvgLatency, s.MaxLatency, p.AvgLatency(), p.MaxLatency())
		}
		if s.CostPerGB != p.CostPerGB || s.CostPerDev != p.CostPerDev {
			t.Errorf("%s: costs drifted from params", name)
		}
		if s.Kind != "mems" || s.Year != p.Year {
			t.Errorf("%s: kind/year drifted", name)
		}
	}
}

// TestMEMSDeviceMatchesDirect verifies the adapter adds nothing to the
// service path: the same request sequence on a tier-wrapped device and a
// directly constructed mems.Device must complete at identical times.
func TestMEMSDeviceMatchesDirect(t *testing.T) {
	wrapped, err := New(MustLookup("mems-g3"))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mems.New(mems.G3())
	if err != nil {
		t.Fatal(err)
	}
	reqs := []device.Request{
		{Op: device.Read, Block: 0, Blocks: 128},
		{Op: device.Read, Block: 1 << 20, Blocks: 64},
		{Op: device.Write, Block: 9000, Blocks: 256},
		{Op: device.Read, Block: 42, Blocks: 1},
	}
	var nw, nd time.Duration
	for i, r := range reqs {
		cw, err := wrapped.Service(nw, r)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := direct.Service(nd, r)
		if err != nil {
			t.Fatal(err)
		}
		if cw != cd {
			t.Fatalf("request %d: wrapped completion %+v != direct %+v", i, cw, cd)
		}
		nw, nd = cw.Finish, cd.Finish
	}
	if wrapped.Served() != direct.Served() || wrapped.BusyTime() != direct.BusyTime() {
		t.Error("counters diverged between wrapped and direct device")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero capacity", func(s *Spec) { s.Capacity = 0 }},
		{"zero block size", func(s *Spec) { s.BlockBytes = 0 }},
		{"zero rate", func(s *Spec) { s.Rate = 0 }},
		{"negative avg latency", func(s *Spec) { s.AvgLatency = -time.Microsecond }},
		{"max below avg", func(s *Spec) { s.MaxLatency = s.AvgLatency / 2 }},
		{"zero $/GB", func(s *Spec) { s.CostPerGB = 0 }},
		{"zero $/device", func(s *Spec) { s.CostPerDev = 0 }},
	}
	for _, tc := range cases {
		s := MustLookup("nvm-optane")
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, s)
		}
		if _, err := New(s); err == nil {
			t.Errorf("%s: New accepted invalid spec", tc.name)
		}
	}
}

func TestFlatDeviceService(t *testing.T) {
	s := MustLookup("ssd-sata")
	d, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 128
	bytes := units.Bytes(blocks) * s.BlockBytes
	want := s.AvgLatency + bytes.Duration(s.Rate)
	c, err := d.Service(0, device.Request{Op: device.Read, Block: 0, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if c.Finish != want {
		t.Errorf("finish %v, want avg latency + transfer = %v", c.Finish, want)
	}
	if c.Position != s.AvgLatency {
		t.Errorf("position %v, want %v", c.Position, s.AvgLatency)
	}
	if d.Served() != 1 || d.BusyTime() != want {
		t.Errorf("counters served=%d busy=%v, want 1, %v", d.Served(), d.BusyTime(), want)
	}
	if _, err := d.Service(0, device.Request{Op: device.Read, Block: -1, Blocks: 1}); err == nil {
		t.Error("out-of-range request accepted")
	}
	d.Reset()
	if d.Served() != 0 || d.BusyTime() != 0 || d.TotalSeekTime() != 0 || d.TotalTransferTime() != 0 {
		t.Error("Reset left counters non-zero")
	}
}

func TestFlatDeviceCache(t *testing.T) {
	d, err := New(MustLookup("nvm-optane"))
	if err != nil {
		t.Fatal(err)
	}
	cd := d.(Cacheable)
	if err := cd.EnableCache(16*units.MB, 0); err == nil {
		t.Fatal("zero interface rate accepted")
	}
	if err := cd.EnableCache(16*units.MB, 10*units.GBPS); err != nil {
		t.Fatal(err)
	}
	req := device.Request{Op: device.Read, Block: 100, Blocks: 64}
	miss, err := d.Service(0, req)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := d.Service(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Position != 0 {
		t.Errorf("cache hit paid positioning %v", hit.Position)
	}
	if hit.Finish >= miss.Finish {
		t.Errorf("hit finish %v not faster than miss %v", hit.Finish, miss.Finish)
	}
	// A write invalidates; the next read misses again.
	if _, err := d.Service(0, device.Request{Op: device.Write, Block: 100, Blocks: 64}); err != nil {
		t.Fatal(err)
	}
	again, err := d.Service(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Position == 0 {
		t.Error("read after invalidating write still hit the cache")
	}
	if cd.Cache() == nil || cd.Cache().HitRatio() <= 0 {
		t.Error("cache statistics missing")
	}
}

func TestFIFOScheduler(t *testing.T) {
	d, err := New(MustLookup("ssd-sata"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(d, SPTF) // flat device: any policy is FCFS order
	if _, ok := s.(*fifoScheduler); !ok {
		t.Fatalf("flat device scheduler is %T, want fifoScheduler", s)
	}
	for i := 0; i < 3; i++ {
		s.Enqueue(device.Request{
			Op: device.Read, Block: int64(1000 - i), Blocks: 8,
			Stream: i, Issued: time.Duration(i) * time.Millisecond,
		})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	cs, err := s.DrainAll(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("drained %d, want 3", len(cs))
	}
	for i, c := range cs {
		if c.Stream != i {
			t.Errorf("completion %d served stream %d; FIFO order violated", i, c.Stream)
		}
		if i > 0 && c.Start != cs[i-1].Finish {
			t.Errorf("completion %d not back-to-back", i)
		}
	}
	if cs[0].QueueDelay != 10*time.Millisecond {
		t.Errorf("queue delay %v, want 10ms", cs[0].QueueDelay)
	}
	if _, ok, err := s.Dispatch(0); ok || err != nil {
		t.Errorf("Dispatch on empty queue: ok=%v err=%v", ok, err)
	}
}

func TestMEMSSchedulerSelected(t *testing.T) {
	d, err := New(MustLookup("mems-g3"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(d, Elevator)
	if _, ok := s.(*fifoScheduler); ok {
		t.Fatal("MEMS device got the flat FIFO scheduler")
	}
	s.Enqueue(device.Request{Op: device.Read, Block: 0, Blocks: 8})
	s.Enqueue(device.Request{Op: device.Read, Block: 1 << 18, Blocks: 8})
	cs, err := s.DrainAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("drained %d, want 2", len(cs))
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]Policy{
		"fcfs": FCFS, "sptf": SPTF, "sstf": SPTF, "elevator": Elevator, "c-look": Elevator,
	} {
		got, err := ParsePolicy(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
	if FCFS.String() == SPTF.String() || SPTF.String() == Elevator.String() {
		t.Error("policy names not distinct")
	}
}

func TestDeviceCost(t *testing.T) {
	s := MustLookup("mems-g3")
	// Eq 2 per-device pricing: $/GB times the device capacity.
	want := units.PerGB(s.CostPerGB).Cost(s.Capacity)
	if got := s.DeviceCost(); got != want {
		t.Errorf("DeviceCost = %v, want %v", got, want)
	}
}

func TestLayoutCapable(t *testing.T) {
	d, err := New(MustLookup("mems-g3"))
	if err != nil {
		t.Fatal(err)
	}
	lc, ok := d.(LayoutCapable)
	if !ok {
		t.Fatal("MEMS device not LayoutCapable")
	}
	contig, err := lc.ContiguousLayout(8)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := lc.InterleavedLayout(8, 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Layout{contig, inter} {
		lbn, err := l.Map(3, 0)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if lbn < 0 || lbn >= d.Geometry().Blocks {
			t.Errorf("%s: mapped block %d out of range", l.Name(), lbn)
		}
	}
	// Flat devices do not expose sled layouts.
	f, err := New(MustLookup("nvm-optane"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(LayoutCapable); ok {
		t.Error("flat device unexpectedly LayoutCapable")
	}
}
