// Package dram models the server's main-memory buffer pool. Streaming
// servers do not cache in DRAM — data flows through per-stream rings that
// are filled by device IO once per cycle and drained continuously by
// playback. What matters is accounting: how many bytes each stream holds,
// whether any stream underflows, and the pool-wide high-water mark that
// determines how much DRAM the configuration actually needs.
package dram

import (
	"fmt"
	"time"

	"memstream/internal/units"
)

// Pool is a byte-granular DRAM buffer pool shared by all streams.
type Pool struct {
	capacity  units.Bytes
	used      units.Bytes
	highWater units.Bytes
	streams   map[int]*StreamBuffer
}

// NewPool creates a pool of the given capacity. A zero capacity means
// unlimited (used by the model-exploration experiments before sizing).
func NewPool(capacity units.Bytes) *Pool {
	return &Pool{capacity: capacity, streams: make(map[int]*StreamBuffer)}
}

// Capacity returns the configured capacity (0 = unlimited).
func (p *Pool) Capacity() units.Bytes { return p.capacity }

// Used returns current total occupancy.
func (p *Pool) Used() units.Bytes { return p.used }

// HighWater returns the maximum occupancy observed.
func (p *Pool) HighWater() units.Bytes { return p.highWater }

// ErrExhausted reports an allocation beyond pool capacity.
var ErrExhausted = fmt.Errorf("dram: pool exhausted")

// StreamBuffer tracks one stream's staged data in DRAM.
type StreamBuffer struct {
	pool    *Pool
	id      int
	rate    units.ByteRate // playback drain rate
	level   units.Bytes    // bytes currently buffered
	drained time.Duration  // playback position (time drained so far)

	// Underflows counts drain attempts that found the buffer empty.
	Underflows int
	// Filled accumulates all bytes ever written into the buffer.
	Filled units.Bytes
}

// Open registers a stream draining at rate. The id must be unique.
func (p *Pool) Open(id int, rate units.ByteRate) (*StreamBuffer, error) {
	if _, dup := p.streams[id]; dup {
		return nil, fmt.Errorf("dram: stream %d already open", id)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("dram: stream %d has non-positive rate", id)
	}
	sb := &StreamBuffer{pool: p, id: id, rate: rate}
	p.streams[id] = sb
	return sb, nil
}

// Close releases a stream's buffer back to the pool.
func (p *Pool) Close(id int) {
	if sb, ok := p.streams[id]; ok {
		p.used -= sb.level
		delete(p.streams, id)
	}
}

// Streams returns the number of open streams.
func (p *Pool) Streams() int { return len(p.streams) }

// Level returns the stream's current buffered bytes.
func (b *StreamBuffer) Level() units.Bytes { return b.level }

// Fill stages n bytes arriving from a device IO. It fails if the pool
// would exceed capacity.
func (b *StreamBuffer) Fill(n units.Bytes) error {
	if n < 0 {
		return fmt.Errorf("dram: negative fill")
	}
	if b.pool.capacity > 0 && b.pool.used+n > b.pool.capacity {
		return fmt.Errorf("%w: need %v, free %v", ErrExhausted, n, b.pool.capacity-b.pool.used)
	}
	b.level += n
	b.Filled += n
	b.pool.used += n
	if b.pool.used > b.pool.highWater {
		b.pool.highWater = b.pool.used
	}
	return nil
}

// Drain consumes playback data for the elapsed interval d at the stream's
// nominal rate. If the buffer holds less than the playback requirement the
// stream underflows: the deficit is recorded and the buffer empties.
func (b *StreamBuffer) Drain(d time.Duration) (underflow units.Bytes) {
	b.drained += d
	return b.DrainBytes(units.BytesIn(b.rate, d))
}

// DrainBytes consumes an explicit byte amount — used by VBR playback,
// whose per-interval consumption varies around the nominal rate.
func (b *StreamBuffer) DrainBytes(need units.Bytes) (underflow units.Bytes) {
	if need <= 0 {
		return 0
	}
	if need <= b.level {
		b.level -= need
		b.pool.used -= need
		return 0
	}
	deficit := need - b.level
	b.pool.used -= b.level
	b.level = 0
	b.Underflows++
	return deficit
}

// PlaybackPosition returns how much stream time has been drained.
func (b *StreamBuffer) PlaybackPosition() time.Duration { return b.drained }

// Rate returns the stream's drain rate.
func (b *StreamBuffer) Rate() units.ByteRate { return b.rate }
