package dram

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/units"
)

func TestOpenCloseAccounting(t *testing.T) {
	p := NewPool(1 * units.GB)
	b, err := p.Open(1, 1*units.MBPS)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Fill(10 * units.MB); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 10*units.MB || p.Streams() != 1 {
		t.Errorf("used=%v streams=%d", p.Used(), p.Streams())
	}
	p.Close(1)
	if p.Used() != 0 || p.Streams() != 0 {
		t.Errorf("after close: used=%v streams=%d", p.Used(), p.Streams())
	}
}

func TestOpenDuplicateRejected(t *testing.T) {
	p := NewPool(0)
	if _, err := p.Open(7, 1*units.MBPS); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(7, 1*units.MBPS); err == nil {
		t.Fatal("duplicate stream id accepted")
	}
}

func TestOpenBadRate(t *testing.T) {
	p := NewPool(0)
	if _, err := p.Open(1, 0); err == nil {
		t.Fatal("zero-rate stream accepted")
	}
}

func TestFillCapacityEnforced(t *testing.T) {
	p := NewPool(10 * units.MB)
	b, _ := p.Open(1, 1*units.MBPS)
	if err := b.Fill(8 * units.MB); err != nil {
		t.Fatal(err)
	}
	err := b.Fill(4 * units.MB)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("overfill error = %v, want ErrExhausted", err)
	}
	// Unlimited pool accepts anything.
	u := NewPool(0)
	ub, _ := u.Open(1, 1*units.MBPS)
	if err := ub.Fill(100 * units.GB); err != nil {
		t.Fatal(err)
	}
}

func TestFillNegativeRejected(t *testing.T) {
	p := NewPool(0)
	b, _ := p.Open(1, 1*units.MBPS)
	if err := b.Fill(-1); err == nil {
		t.Fatal("negative fill accepted")
	}
}

func TestDrainConsumesAtRate(t *testing.T) {
	p := NewPool(0)
	b, _ := p.Open(1, 2*units.MBPS)
	if err := b.Fill(10 * units.MB); err != nil {
		t.Fatal(err)
	}
	if def := b.Drain(3 * time.Second); def != 0 {
		t.Fatalf("unexpected underflow %v", def)
	}
	if b.Level() != 4*units.MB {
		t.Errorf("level = %v, want 4MB", b.Level())
	}
	if p.Used() != 4*units.MB {
		t.Errorf("pool used = %v, want 4MB", p.Used())
	}
	if b.PlaybackPosition() != 3*time.Second {
		t.Errorf("position = %v", b.PlaybackPosition())
	}
}

func TestDrainUnderflow(t *testing.T) {
	p := NewPool(0)
	b, _ := p.Open(1, 2*units.MBPS)
	if err := b.Fill(1 * units.MB); err != nil {
		t.Fatal(err)
	}
	def := b.Drain(1 * time.Second) // needs 2MB, has 1MB
	if def != 1*units.MB {
		t.Errorf("deficit = %v, want 1MB", def)
	}
	if b.Underflows != 1 {
		t.Errorf("underflows = %d, want 1", b.Underflows)
	}
	if b.Level() != 0 || p.Used() != 0 {
		t.Errorf("level=%v used=%v after underflow", b.Level(), p.Used())
	}
}

func TestHighWaterTracksPeak(t *testing.T) {
	p := NewPool(0)
	a, _ := p.Open(1, 1*units.MBPS)
	b, _ := p.Open(2, 1*units.MBPS)
	if err := a.Fill(5 * units.MB); err != nil {
		t.Fatal(err)
	}
	if err := b.Fill(7 * units.MB); err != nil {
		t.Fatal(err)
	}
	a.Drain(4 * time.Second)
	if p.HighWater() != 12*units.MB {
		t.Errorf("high water = %v, want 12MB", p.HighWater())
	}
	if p.Used() != 8*units.MB {
		t.Errorf("used = %v, want 8MB", p.Used())
	}
}

func TestFilledAccumulates(t *testing.T) {
	p := NewPool(0)
	b, _ := p.Open(1, 1*units.MBPS)
	for i := 0; i < 4; i++ {
		if err := b.Fill(3 * units.MB); err != nil {
			t.Fatal(err)
		}
		b.Drain(3 * time.Second)
	}
	if b.Filled != 12*units.MB {
		t.Errorf("Filled = %v, want 12MB", b.Filled)
	}
}

// Property: pool usage equals the sum of stream levels after any sequence
// of fills and drains.
func TestPoolConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPool(0)
		bufs := make([]*StreamBuffer, 4)
		for i := range bufs {
			bufs[i], _ = p.Open(i, 1*units.MBPS)
		}
		for _, op := range ops {
			b := bufs[int(op)%len(bufs)]
			if op%2 == 0 {
				if err := b.Fill(units.Bytes(op) * units.KB); err != nil {
					return false
				}
			} else {
				b.Drain(time.Duration(op%100) * time.Millisecond)
			}
		}
		var sum units.Bytes
		for _, b := range bufs {
			sum += b.Level()
		}
		diff := float64(sum - p.Used())
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a stream filled with exactly rate*T bytes then drained for T
// never underflows, and ends empty.
func TestExactProvisioningProperty(t *testing.T) {
	f := func(rateKB uint16, secs uint8) bool {
		if rateKB == 0 || secs == 0 {
			return true
		}
		p := NewPool(0)
		b, _ := p.Open(1, units.ByteRate(rateKB)*units.KBPS)
		d := time.Duration(secs) * time.Second
		if err := b.Fill(units.BytesIn(b.Rate(), d)); err != nil {
			return false
		}
		def := b.Drain(d)
		return def == 0 && b.Underflows == 0 && float64(b.Level()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
