package device

import (
	"container/list"
	"fmt"
)

// ReadCache is a small on-device cache over logical block extents, the
// kind found in disk controllers and assumed for MEMS devices (paper §3).
// It caches at extent granularity: a read hits when its whole range is
// covered by cached extents; completed reads insert their extent; writes
// invalidate overlapping extents (write-through, no dirty state).
//
// Eviction is LRU by extent. The cache is deliberately simple — device
// caches mainly absorb re-reads and readahead, and streaming workloads
// defeat them (no temporal locality), which the tests demonstrate.
type ReadCache struct {
	capacity int64 // blocks
	used     int64
	order    *list.List // front = most recently used
	index    map[int64]*list.Element

	Hits, Misses uint64
}

type extent struct {
	start, blocks int64
}

// NewReadCache creates a cache holding up to capacityBlocks blocks.
func NewReadCache(capacityBlocks int64) (*ReadCache, error) {
	if capacityBlocks <= 0 {
		return nil, fmt.Errorf("device: non-positive cache capacity %d", capacityBlocks)
	}
	return &ReadCache{
		capacity: capacityBlocks,
		order:    list.New(),
		index:    make(map[int64]*list.Element),
	}, nil
}

// Lookup reports whether the range [start, start+blocks) is fully cached,
// updating hit/miss statistics and recency.
func (c *ReadCache) Lookup(start, blocks int64) bool {
	if c == nil {
		return false
	}
	// Walk the covering extents; ranges inserted by Insert are aligned to
	// past requests, so coverage is typically a single extent.
	remaining := blocks
	cursor := start
	var touched []*list.Element
	for remaining > 0 {
		e := c.covering(cursor)
		if e == nil {
			c.Misses++
			return false
		}
		ext := e.Value.(extent)
		advance := ext.start + ext.blocks - cursor
		cursor += advance
		remaining -= advance
		touched = append(touched, e)
	}
	for _, e := range touched {
		c.order.MoveToFront(e)
	}
	c.Hits++
	return true
}

// covering returns the cached extent containing block, if any.
func (c *ReadCache) covering(block int64) *list.Element {
	for e := c.order.Front(); e != nil; e = e.Next() {
		ext := e.Value.(extent)
		if block >= ext.start && block < ext.start+ext.blocks {
			return e
		}
	}
	return nil
}

// Insert caches the range [start, start+blocks), evicting LRU extents to
// fit. Ranges larger than the cache are not inserted.
func (c *ReadCache) Insert(start, blocks int64) {
	if c == nil || blocks <= 0 || blocks > c.capacity {
		return
	}
	// Drop overlapping extents first to keep the index disjoint.
	c.invalidate(start, blocks)
	for c.used+blocks > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ext := back.Value.(extent)
		c.order.Remove(back)
		delete(c.index, ext.start)
		c.used -= ext.blocks
	}
	c.index[start] = c.order.PushFront(extent{start: start, blocks: blocks})
	c.used += blocks
}

// Invalidate removes cached data overlapping [start, start+blocks) —
// called on writes.
func (c *ReadCache) Invalidate(start, blocks int64) {
	if c == nil {
		return
	}
	c.invalidate(start, blocks)
}

func (c *ReadCache) invalidate(start, blocks int64) {
	end := start + blocks
	var drop []*list.Element
	for e := c.order.Front(); e != nil; e = e.Next() {
		ext := e.Value.(extent)
		if ext.start < end && start < ext.start+ext.blocks {
			drop = append(drop, e)
		}
	}
	for _, e := range drop {
		ext := e.Value.(extent)
		c.order.Remove(e)
		delete(c.index, ext.start)
		c.used -= ext.blocks
	}
}

// UsedBlocks returns resident blocks.
func (c *ReadCache) UsedBlocks() int64 {
	if c == nil {
		return 0
	}
	return c.used
}

// HitRatio returns hits/(hits+misses), 0 before any lookup.
func (c *ReadCache) HitRatio() float64 {
	if c == nil || c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}
