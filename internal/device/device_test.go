package device

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/units"
)

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("Op strings wrong: %q %q", Read, Write)
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := Geometry{BlockSize: 512, Blocks: 2e6}
	if got := g.Capacity(); got != 1.024*units.GB {
		t.Errorf("Capacity = %v, want 1.024GB", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	g := Geometry{BlockSize: 512, Blocks: 100}
	ok := Request{Op: Read, Block: 0, Blocks: 100}
	if err := g.Validate(ok); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	for _, r := range []Request{
		{Block: 0, Blocks: 0},
		{Block: 0, Blocks: -1},
		{Block: -1, Blocks: 1},
		{Block: 50, Blocks: 51},
		{Block: 100, Blocks: 1},
	} {
		if err := g.Validate(r); err == nil {
			t.Errorf("invalid request %+v accepted", r)
		}
	}
}

func TestCompletionServiceTime(t *testing.T) {
	c := Completion{Start: 10 * time.Millisecond, Finish: 25 * time.Millisecond}
	if got := c.ServiceTime(); got != 15*time.Millisecond {
		t.Errorf("ServiceTime = %v", got)
	}
}

func TestEffectiveThroughputLimits(t *testing.T) {
	rate := 300 * units.MBPS
	lat := 4 * time.Millisecond
	// Tiny IOs are dominated by latency.
	small := EffectiveThroughput(4*units.KB, rate, lat)
	if small > 2*units.MBPS {
		t.Errorf("4KB IO throughput = %v, want << rate", small)
	}
	// Huge IOs approach the media rate.
	big := EffectiveThroughput(1*units.GB, rate, lat)
	if float64(big) < 0.99*float64(rate) {
		t.Errorf("1GB IO throughput = %v, want ≈%v", big, rate)
	}
	// Zero latency gives the media rate exactly.
	if got := EffectiveThroughput(1*units.MB, rate, 0); math.Abs(float64(got-rate)) > 1e-6 {
		t.Errorf("zero-latency throughput = %v, want %v", got, rate)
	}
	if got := EffectiveThroughput(0, rate, lat); got != 0 {
		t.Errorf("zero-size throughput = %v, want 0", got)
	}
}

// Figure 2 behaviour: at equal IO size the lower-latency MEMS device delivers
// much higher effective throughput than the disk until IOs grow large.
func TestFig2Crossover(t *testing.T) {
	diskRate, diskLat := 300*units.MBPS, 4300*time.Microsecond // FutureDisk, avg latency
	memsRate, memsLat := 320*units.MBPS, 590*time.Microsecond  // G3 MEMS, max latency

	at1MB := func(io units.Bytes) (d, m units.ByteRate) {
		return EffectiveThroughput(io, diskRate, diskLat),
			EffectiveThroughput(io, memsRate, memsLat)
	}
	d, m := at1MB(1 * units.MB)
	if m < 2*d {
		t.Errorf("at 1MB IOs MEMS (%v) should be >2x disk (%v)", m, d)
	}
	d, m = at1MB(100 * units.MB)
	if float64(m)/float64(d) > 1.2 {
		t.Errorf("at 100MB IOs devices should converge: disk %v mems %v", d, m)
	}
}

func TestIOSizeForRoundTrip(t *testing.T) {
	rate := 300 * units.MBPS
	lat := 4 * time.Millisecond
	target := 200 * units.MBPS
	s := IOSizeFor(target, rate, lat)
	if s <= 0 {
		t.Fatalf("IOSizeFor returned %v", s)
	}
	back := EffectiveThroughput(s, rate, lat)
	if math.Abs(float64(back-target)) > 1e-3*float64(target) {
		t.Errorf("round trip: %v -> %v -> %v", target, s, back)
	}
}

func TestIOSizeForUnreachable(t *testing.T) {
	rate := 300 * units.MBPS
	if got := IOSizeFor(rate, rate, time.Millisecond); got != 0 {
		t.Errorf("IOSizeFor(target=rate) = %v, want 0", got)
	}
	if got := IOSizeFor(400*units.MBPS, rate, time.Millisecond); got != 0 {
		t.Errorf("IOSizeFor above rate = %v, want 0", got)
	}
	if got := IOSizeFor(0, rate, time.Millisecond); got != 0 {
		t.Errorf("IOSizeFor(0) = %v, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	rate := 100 * units.MBPS
	lat := 10 * time.Millisecond
	// 1MB at 100MB/s takes 10ms transfer + 10ms latency: 50% utilization.
	if got := Utilization(1*units.MB, rate, lat); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := Utilization(1*units.MB, 0, lat); got != 0 {
		t.Errorf("Utilization with zero rate = %v, want 0", got)
	}
}

// Property: effective throughput is monotonically nondecreasing in IO size
// and never exceeds the media rate.
func TestEffectiveThroughputMonotoneProperty(t *testing.T) {
	rate := 320 * units.MBPS
	lat := 590 * time.Microsecond
	f := func(a, b uint32) bool {
		x, y := units.Bytes(a)+1, units.Bytes(b)+1
		if x > y {
			x, y = y, x
		}
		tx := EffectiveThroughput(x, rate, lat)
		ty := EffectiveThroughput(y, rate, lat)
		return tx <= ty+1e-9 && float64(ty) <= float64(rate)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: IOSizeFor is the inverse of EffectiveThroughput on (0, rate).
func TestIOSizeInverseProperty(t *testing.T) {
	rate := 300 * units.MBPS
	lat := 3 * time.Millisecond
	f := func(frac uint8) bool {
		target := units.ByteRate(float64(rate) * (float64(frac%99) + 1) / 100)
		s := IOSizeFor(target, rate, lat)
		got := EffectiveThroughput(s, rate, lat)
		return math.Abs(float64(got-target)) < 1e-6*float64(rate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
