package device

import (
	"testing"
	"testing/quick"
)

func TestNewReadCacheValidates(t *testing.T) {
	if _, err := NewReadCache(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewReadCache(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c, _ := NewReadCache(1000)
	if c.Lookup(100, 50) {
		t.Fatal("cold cache hit")
	}
	c.Insert(100, 50)
	if !c.Lookup(100, 50) {
		t.Fatal("exact re-read missed")
	}
	if !c.Lookup(110, 20) {
		t.Fatal("contained sub-range missed")
	}
	if c.Lookup(90, 20) {
		t.Fatal("partially uncovered range hit")
	}
	if c.HitRatio() <= 0 || c.HitRatio() >= 1 {
		t.Errorf("hit ratio = %v", c.HitRatio())
	}
}

func TestCacheSpanningExtents(t *testing.T) {
	c, _ := NewReadCache(1000)
	c.Insert(0, 50)
	c.Insert(50, 50)
	if !c.Lookup(20, 60) {
		t.Fatal("read spanning two adjacent extents missed")
	}
	if c.Lookup(80, 40) {
		t.Fatal("read past cached end hit")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c, _ := NewReadCache(100)
	c.Insert(0, 60)
	c.Insert(1000, 40) // full
	if !c.Lookup(0, 60) {
		t.Fatal("first extent missing")
	}
	c.Insert(2000, 50) // evicts LRU = extent at 1000
	if c.Lookup(1000, 40) {
		t.Error("LRU extent not evicted")
	}
	if !c.Lookup(2000, 50) {
		t.Error("new extent missing")
	}
	if c.UsedBlocks() > 100 {
		t.Errorf("used %d > capacity", c.UsedBlocks())
	}
}

func TestCacheInvalidateOnWrite(t *testing.T) {
	c, _ := NewReadCache(1000)
	c.Insert(100, 100)
	c.Invalidate(150, 10)
	if c.Lookup(100, 100) {
		t.Error("overlapping write did not invalidate")
	}
	// Non-overlapping invalidation is a no-op.
	c.Insert(100, 100)
	c.Invalidate(500, 10)
	if !c.Lookup(100, 100) {
		t.Error("unrelated write invalidated")
	}
}

func TestCacheOversizedInsertIgnored(t *testing.T) {
	c, _ := NewReadCache(10)
	c.Insert(0, 100)
	if c.UsedBlocks() != 0 {
		t.Error("oversized extent inserted")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *ReadCache
	if c.Lookup(0, 10) {
		t.Error("nil cache hit")
	}
	c.Insert(0, 10)
	c.Invalidate(0, 10)
	if c.UsedBlocks() != 0 || c.HitRatio() != 0 {
		t.Error("nil cache has state")
	}
}

// Property: used blocks never exceed capacity for any insert sequence.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewReadCache(256)
		if err != nil {
			return false
		}
		for _, op := range ops {
			start := int64(op % 1024)
			blocks := int64(op%64) + 1
			if op%3 == 0 {
				c.Invalidate(start, blocks)
			} else {
				c.Insert(start, blocks)
			}
			if c.UsedBlocks() > 256 || c.UsedBlocks() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a Lookup immediately after Insert of the same range hits.
func TestCacheInsertThenLookupProperty(t *testing.T) {
	f := func(start uint16, blocks uint8) bool {
		c, err := NewReadCache(1 << 20)
		if err != nil {
			return false
		}
		b := int64(blocks) + 1
		c.Insert(int64(start), b)
		return c.Lookup(int64(start), b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
