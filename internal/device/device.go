// Package device defines the common vocabulary shared by the disk and MEMS
// models: IO requests, service-time statistics, and the effective-throughput
// relation (paper Figure 2) that motivates buffering in the first place.
package device

import (
	"fmt"
	"time"

	"memstream/internal/units"
)

// Op distinguishes reads from writes.
type Op uint8

// Request operations.
const (
	Read Op = iota
	Write
)

// String names the operation.
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Request is one IO against a block device.
type Request struct {
	Op     Op
	Block  int64         // starting logical block
	Blocks int64         // length in logical blocks
	Stream int           // owning stream id, -1 for none
	Issued time.Duration // simulation time the request was issued
}

// Completion reports how one request was serviced.
type Completion struct {
	Request
	Start      time.Duration // service start (simulated)
	Finish     time.Duration // service end (simulated)
	Position   time.Duration // positioning (seek + settle/rotation) portion
	Transfer   time.Duration // media transfer portion
	QueueDelay time.Duration // time spent waiting in the device queue
}

// ServiceTime returns positioning plus transfer time.
func (c Completion) ServiceTime() time.Duration { return c.Finish - c.Start }

// Geometry describes a block device's addressable space.
type Geometry struct {
	BlockSize units.Bytes // bytes per logical block
	Blocks    int64       // total logical blocks
}

// Capacity returns the device's total byte capacity.
func (g Geometry) Capacity() units.Bytes {
	return g.BlockSize * units.Bytes(g.Blocks)
}

// Validate checks a request against the geometry.
func (g Geometry) Validate(r Request) error {
	if r.Blocks <= 0 {
		return fmt.Errorf("device: request has %d blocks", r.Blocks)
	}
	if r.Block < 0 || r.Block+r.Blocks > g.Blocks {
		return fmt.Errorf("device: request [%d,%d) outside device of %d blocks",
			r.Block, r.Block+r.Blocks, g.Blocks)
	}
	return nil
}

// Model is the static performance description every device exposes. The
// analytical framework needs only these three numbers per device; the
// simulators produce them as emergent behaviour.
type Model struct {
	Name       string
	Rate       units.ByteRate // media transfer rate R_d
	AvgLatency time.Duration  // average positioning overhead L̄_d
	MaxLatency time.Duration  // worst-case positioning overhead
	Capacity   units.Bytes
	CostPerGB  units.Dollars
	CostPerDev units.Dollars // per-device entry cost (paper Eq 2 price model)
}

// EffectiveThroughput returns the sustained throughput when the device is
// accessed in IOs of the given size, paying latency lat per IO:
//
//	T_eff(S) = S / (lat + S/R)
//
// This is the relation plotted in the paper's Figure 2.
func EffectiveThroughput(io units.Bytes, rate units.ByteRate, lat time.Duration) units.ByteRate {
	if io <= 0 {
		return 0
	}
	total := lat.Seconds() + io.Seconds(rate)
	if total <= 0 {
		return rate
	}
	return units.ByteRate(float64(io) / total)
}

// IOSizeFor inverts EffectiveThroughput: the IO size needed to sustain
// throughput target on a device with the given rate and per-IO latency.
// It returns 0 if the target is not achievable (target >= rate).
func IOSizeFor(target, rate units.ByteRate, lat time.Duration) units.Bytes {
	if target <= 0 || target >= rate {
		return 0
	}
	// S/(lat + S/R) = t  =>  S = t*lat / (1 - t/R)
	return units.Bytes(float64(target) * lat.Seconds() / (1 - float64(target)/float64(rate)))
}

// Utilization is the fraction of peak media rate delivered at IO size io.
func Utilization(io units.Bytes, rate units.ByteRate, lat time.Duration) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(EffectiveThroughput(io, rate, lat)) / float64(rate)
}
