// Package bank manages a bank of k middle-tier devices in the two roles
// the paper defines (its §3.1.2 and §3.2): a disk buffer with
// stream-granularity round-robin routing, and a content cache under
// striped or replicated management. The bank is tier-agnostic: it
// programs against tier.Device, so the same routing runs over MEMS
// sleds, NVM, or SSD parameter sets.
package bank

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/tier"
	"memstream/internal/units"
)

// New builds k identical middle-tier devices from the parameter set.
func New(k int, s tier.Spec) ([]tier.Device, error) {
	if k <= 0 {
		return nil, fmt.Errorf("bank: need at least one device, got %d", k)
	}
	devs := make([]tier.Device, k)
	for i := range devs {
		d, err := tier.New(s)
		if err != nil {
			return nil, fmt.Errorf("bank: device %d: %w", i, err)
		}
		devs[i] = d
	}
	return devs, nil
}

// BufferBank is a k-device disk buffer. Stream data is never striped:
// every disk IO lands wholly on one device, with streams assigned
// round-robin so every k-th disk IO hits the same device (paper §3.1.2 —
// striping would shrink disk-side IOs by k and hurt buffer throughput).
//
// Each stream owns a two-slot staging ring on its device: the disk writes
// one slot while the DRAM side drains the other, realizing the
// double-buffering the capacity bound (Eq 7) accounts for.
type BufferBank struct {
	devs     []tier.Device
	slotSize units.Bytes
	perDev   int // staging rings per device

	assign map[int]int   // stream -> device index
	ring   map[int]int64 // stream -> first block of its 2-slot ring
	next   int           // round-robin cursor
	counts []int         // streams per device
}

// NewBufferBank prepares a buffer bank whose staging rings hold slotSize
// bytes per slot (the disk-side IO size, S_disk-mems).
func NewBufferBank(devs []tier.Device, slotSize units.Bytes) (*BufferBank, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("bank: empty device list")
	}
	if slotSize <= 0 {
		return nil, fmt.Errorf("bank: non-positive slot size %v", slotSize)
	}
	g := devs[0].Geometry()
	slotBlocks := blocksFor(slotSize, g.BlockSize)
	perDev := int(g.Blocks / (2 * slotBlocks))
	if perDev < 1 {
		return nil, fmt.Errorf("bank: slot size %v too large for device capacity %v",
			slotSize, g.Capacity())
	}
	return &BufferBank{
		devs:     devs,
		slotSize: slotSize,
		perDev:   perDev,
		assign:   make(map[int]int),
		ring:     make(map[int]int64),
		counts:   make([]int, len(devs)),
	}, nil
}

func blocksFor(b units.Bytes, blockSize units.Bytes) int64 {
	n := int64(b / blockSize)
	if units.Bytes(n)*blockSize < b {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// K returns the bank size.
func (b *BufferBank) K() int { return len(b.devs) }

// SlotSize returns the staging slot size.
func (b *BufferBank) SlotSize() units.Bytes { return b.slotSize }

// Device returns device i.
func (b *BufferBank) Device(i int) tier.Device { return b.devs[i] }

// Attach assigns a stream to a device round-robin and reserves its staging
// ring. It returns the device index.
func (b *BufferBank) Attach(stream int) (int, error) {
	if _, dup := b.assign[stream]; dup {
		return 0, fmt.Errorf("bank: stream %d already attached", stream)
	}
	dev := b.next % len(b.devs)
	if b.counts[dev] >= b.perDev {
		// Find any device with a free ring before giving up.
		found := false
		for i := range b.devs {
			if b.counts[i] < b.perDev {
				dev, found = i, true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("bank: staging capacity exhausted (%d rings/device)", b.perDev)
		}
	}
	g := b.devs[dev].Geometry()
	slotBlocks := blocksFor(b.slotSize, g.BlockSize)
	b.assign[stream] = dev
	b.ring[stream] = int64(b.counts[dev]) * 2 * slotBlocks
	b.counts[dev]++
	b.next++
	return dev, nil
}

// Detach releases a stream. Its ring is not reused (simulations attach
// once); spare-capacity accounting still reflects the release.
func (b *BufferBank) Detach(stream int) {
	if dev, ok := b.assign[stream]; ok {
		b.counts[dev]--
		delete(b.assign, stream)
		delete(b.ring, stream)
	}
}

// DeviceOf returns the device index a stream is attached to.
func (b *BufferBank) DeviceOf(stream int) (int, bool) {
	d, ok := b.assign[stream]
	return d, ok
}

// StageRequest builds the buffer-device write request that stages bytes arriving
// from the disk for a stream, alternating between the ring's two slots by
// cycle parity.
func (b *BufferBank) StageRequest(stream int, cycle int64, size units.Bytes) (device.Request, int, error) {
	dev, ok := b.assign[stream]
	if !ok {
		return device.Request{}, 0, fmt.Errorf("bank: stream %d not attached", stream)
	}
	g := b.devs[dev].Geometry()
	slotBlocks := blocksFor(b.slotSize, g.BlockSize)
	base := b.ring[stream] + (cycle%2)*slotBlocks
	n := blocksFor(size, g.BlockSize)
	if n > slotBlocks {
		n = slotBlocks
	}
	return device.Request{Op: device.Write, Block: base, Blocks: n, Stream: stream}, dev, nil
}

// DrainRequest builds the buffer-device read request that moves a stream's staged
// data toward DRAM, reading from the slot the disk filled in the previous
// cycle.
func (b *BufferBank) DrainRequest(stream int, cycle int64, size units.Bytes) (device.Request, int, error) {
	r, dev, err := b.StageRequest(stream, cycle+1, size) // opposite parity slot
	if err != nil {
		return device.Request{}, 0, err
	}
	r.Op = device.Read
	return r, dev, nil
}

// SpareStorage returns unreserved bytes across the bank — available for
// the non-real-time uses the paper lists (§3.1.2: persistent write buffer,
// prefetch buffer, or caching whole streams).
func (b *BufferBank) SpareStorage() units.Bytes {
	var spare units.Bytes
	g := b.devs[0].Geometry()
	slotBlocks := blocksFor(b.slotSize, g.BlockSize)
	for _, c := range b.counts {
		freeRings := b.perDev - c
		spare += units.Bytes(int64(freeRings)*2*slotBlocks) * g.BlockSize
	}
	return spare
}

// SpareBandwidth estimates unused bank bandwidth given the attached
// streams' aggregate bit-rate: the bank moves each byte twice, so spare =
// k·R − 2·ΣB̄.
func (b *BufferBank) SpareBandwidth(aggregate units.ByteRate) units.ByteRate {
	total := float64(len(b.devs)) * float64(b.devs[0].Spec().Rate)
	spare := total - 2*float64(aggregate)
	if spare < 0 {
		spare = 0
	}
	return units.ByteRate(spare)
}

// Balance reports the min and max streams per device; round-robin keeps
// max−min ≤ 1.
func (b *BufferBank) Balance() (minStreams, maxStreams int) {
	if len(b.counts) == 0 {
		return 0, 0
	}
	minStreams, maxStreams = b.counts[0], b.counts[0]
	for _, c := range b.counts[1:] {
		if c < minStreams {
			minStreams = c
		}
		if c > maxStreams {
			maxStreams = c
		}
	}
	return minStreams, maxStreams
}

// ServiceOn runs one request on the bank device dev at time now.
func (b *BufferBank) ServiceOn(dev int, now time.Duration, r device.Request) (device.Completion, error) {
	if dev < 0 || dev >= len(b.devs) {
		return device.Completion{}, fmt.Errorf("bank: device %d out of range", dev)
	}
	return b.devs[dev].Service(now, r)
}
