package bank

import (
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/device"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func devs(t *testing.T, k int) []tier.Device {
	t.Helper()
	ds, err := New(k, tier.MustLookup("mems-g3"))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewValidates(t *testing.T) {
	if _, err := New(0, tier.MustLookup("mems-g3")); err == nil {
		t.Error("k=0 accepted")
	}
	bad := tier.MustLookup("mems-g3")
	bad.Capacity = 0
	if _, err := New(1, bad); err == nil {
		t.Error("invalid params accepted")
	}
	ds := devs(t, 3)
	if len(ds) != 3 {
		t.Fatalf("got %d devices", len(ds))
	}
}

func TestBufferBankRoundRobin(t *testing.T) {
	b, err := NewBufferBank(devs(t, 3), 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	// Streams go to devices 0,1,2,0,1,2,... (paper §3.1.2: every k-th disk
	// IO is routed to the same MEMS device).
	for i := 0; i < 9; i++ {
		dev, err := b.Attach(i)
		if err != nil {
			t.Fatal(err)
		}
		if dev != i%3 {
			t.Errorf("stream %d on device %d, want %d", i, dev, i%3)
		}
	}
	lo, hi := b.Balance()
	if lo != 3 || hi != 3 {
		t.Errorf("balance = %d..%d, want 3..3", lo, hi)
	}
}

func TestBufferBankDuplicateAttach(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 2), 1*units.MB)
	if _, err := b.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(1); err == nil {
		t.Error("duplicate attach accepted")
	}
}

func TestBufferBankDetach(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 2), 1*units.MB)
	if _, err := b.Attach(1); err != nil {
		t.Fatal(err)
	}
	b.Detach(1)
	if _, ok := b.DeviceOf(1); ok {
		t.Error("stream still attached after detach")
	}
	lo, hi := b.Balance()
	if lo != 0 || hi != 0 {
		t.Errorf("balance after detach = %d..%d", lo, hi)
	}
	b.Detach(99) // detaching an unknown stream is a no-op
}

func TestBufferBankValidation(t *testing.T) {
	if _, err := NewBufferBank(nil, 1*units.MB); err == nil {
		t.Error("empty device list accepted")
	}
	if _, err := NewBufferBank(devs(t, 1), 0); err == nil {
		t.Error("zero slot size accepted")
	}
	if _, err := NewBufferBank(devs(t, 1), 20*units.GB); err == nil {
		t.Error("slot larger than device accepted")
	}
}

func TestStagingRingsDisjoint(t *testing.T) {
	slot := 50 * units.MB
	b, _ := NewBufferBank(devs(t, 2), slot)
	type span struct{ lo, hi int64 }
	spans := map[int][]span{} // device -> spans
	for i := 0; i < 20; i++ {
		dev, err := b.Attach(i)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := int64(0); cyc < 2; cyc++ {
			r, rdev, err := b.StageRequest(i, cyc, slot)
			if err != nil {
				t.Fatal(err)
			}
			if rdev != dev {
				t.Fatalf("stage device %d != attach device %d", rdev, dev)
			}
			for _, s := range spans[dev] {
				if r.Block < s.hi && r.Block+r.Blocks > s.lo {
					t.Fatalf("stream %d cycle %d overlaps span [%d,%d)", i, cyc, s.lo, s.hi)
				}
			}
			spans[dev] = append(spans[dev], span{r.Block, r.Block + r.Blocks})
		}
	}
}

func TestStageDrainAlternateSlots(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 1), 10*units.MB)
	if _, err := b.Attach(0); err != nil {
		t.Fatal(err)
	}
	w0, _, err := b.StageRequest(0, 0, 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := b.DrainRequest(0, 1, 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 1's drain reads the slot cycle 0's stage wrote.
	if w0.Block != r1.Block {
		t.Errorf("drain(1) reads block %d, stage(0) wrote %d", r1.Block, w0.Block)
	}
	if r1.Op != device.Read || w0.Op != device.Write {
		t.Error("ops wrong")
	}
	// Same-cycle stage and drain must use different slots.
	r0, _, _ := b.DrainRequest(0, 0, 10*units.MB)
	if r0.Block == w0.Block {
		t.Error("same-cycle stage and drain collide")
	}
}

func TestStageRequestUnattached(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 1), 1*units.MB)
	if _, _, err := b.StageRequest(5, 0, units.MB); err == nil {
		t.Error("unattached stage accepted")
	}
	if _, _, err := b.DrainRequest(5, 0, units.MB); err == nil {
		t.Error("unattached drain accepted")
	}
}

func TestSpareStorageShrinksWithStreams(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 2), 100*units.MB)
	before := b.SpareStorage()
	for i := 0; i < 4; i++ {
		if _, err := b.Attach(i); err != nil {
			t.Fatal(err)
		}
	}
	after := b.SpareStorage()
	want := before - 4*2*100*units.MB
	if diff := float64(after - want); diff > 1e7 || diff < -1e7 {
		t.Errorf("spare = %v, want ≈%v", after, want)
	}
}

func TestSpareBandwidth(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 2), 1*units.MB)
	// 2 G3 devices: 640MB/s total; 100MB/s of streams needs 200MB/s.
	got := b.SpareBandwidth(100 * units.MBPS)
	if got != 440*units.MBPS {
		t.Errorf("spare bandwidth = %v, want 440MB/s", got)
	}
	if got := b.SpareBandwidth(400 * units.MBPS); got != 0 {
		t.Errorf("overloaded spare = %v, want 0", got)
	}
}

func TestServiceOn(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 2), 1*units.MB)
	if _, err := b.Attach(0); err != nil {
		t.Fatal(err)
	}
	r, dev, _ := b.StageRequest(0, 0, units.MB)
	c, err := b.ServiceOn(dev, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Finish <= 0 {
		t.Error("no service time")
	}
	if _, err := b.ServiceOn(9, 0, r); err == nil {
		t.Error("out-of-range device accepted")
	}
}

// Property: round-robin attachment keeps the bank balanced within one
// stream for any attach count.
func TestRoundRobinBalanceProperty(t *testing.T) {
	f := func(n uint8, kk uint8) bool {
		k := int(kk%7) + 1
		b, err := NewBufferBank(devsQuick(k), 100*units.MB)
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if _, err := b.Attach(i); err != nil {
				return true // staging exhaustion is fine
			}
		}
		lo, hi := b.Balance()
		return hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func devsQuick(k int) []tier.Device {
	ds, err := New(k, tier.MustLookup("mems-g3"))
	if err != nil {
		panic(err)
	}
	return ds
}

func TestStripedBankLockStep(t *testing.T) {
	sb, err := NewStripedBank(devs(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if sb.K() != 4 {
		t.Errorf("K = %d", sb.K())
	}
	if got := sb.Capacity(); got < 39*units.GB {
		t.Errorf("capacity = %v, want ≈40GB", got)
	}
	if err := sb.Assign(0); err != nil {
		t.Fatal(err)
	}
	if err := sb.Assign(0); err == nil {
		t.Error("duplicate assign accepted")
	}
	// A 4MB striped read moves 1MB per device; it should complete in about
	// the time a single device needs for 1MB plus one seek.
	c, err := sb.Read(0, 0, 0, 8192) // 4MiB in 512B blocks
	if err != nil {
		t.Fatal(err)
	}
	single := (units.Bytes(2048) * 512).Duration(320 * units.MBPS)
	if c.Finish < single || c.Finish > single+2*time.Millisecond {
		t.Errorf("striped read took %v, want ≈%v", c.Finish, single)
	}
	if sb.SeeksPerCycle(10) != 40 {
		t.Errorf("seeks = %d, want k·n = 40", sb.SeeksPerCycle(10))
	}
}

func TestReplicatedBankAssignment(t *testing.T) {
	rb, err := NewReplicatedBank(devs(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rb.K() != 3 {
		t.Errorf("K = %d", rb.K())
	}
	if got := rb.Capacity(); got > 11*units.GB {
		t.Errorf("capacity = %v, want one copy (≈10GB)", got)
	}
	for i := 0; i < 9; i++ {
		if err := rb.Assign(i); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := rb.Balance()
	if hi-lo > 1 {
		t.Errorf("balance = %d..%d", lo, hi)
	}
	if err := rb.Assign(0); err == nil {
		t.Error("duplicate assign accepted")
	}
	// Reads land on the pinned replica.
	dev, ok := rb.DeviceOf(4)
	if !ok {
		t.Fatal("stream 4 unassigned")
	}
	before := rb.devs[dev].Served()
	if _, err := rb.Read(0, 4, 0, 1024); err != nil {
		t.Fatal(err)
	}
	if rb.devs[dev].Served() != before+1 {
		t.Error("read did not hit the pinned replica")
	}
	if rb.SeeksPerCycle(10) != 10 {
		t.Errorf("seeks = %d, want n = 10", rb.SeeksPerCycle(10))
	}
}

func TestReplicatedReadUnassigned(t *testing.T) {
	rb, _ := NewReplicatedBank(devs(t, 2))
	if _, err := rb.Read(0, 99, 0, 8); err == nil {
		t.Error("unassigned read accepted")
	}
}

func TestCacheBankConstructorsReject(t *testing.T) {
	if _, err := NewStripedBank(nil); err == nil {
		t.Error("empty striped accepted")
	}
	if _, err := NewReplicatedBank(nil); err == nil {
		t.Error("empty replicated accepted")
	}
}

// Property: replicated assignment is always balanced within one stream.
func TestReplicatedBalanceProperty(t *testing.T) {
	f := func(n uint8, kk uint8) bool {
		k := int(kk%7) + 1
		rb, err := NewReplicatedBank(devsQuick(k))
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if err := rb.Assign(i); err != nil {
				return false
			}
		}
		if n == 0 {
			return true
		}
		lo, hi := rb.Balance()
		return hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBufferBankAccessors(t *testing.T) {
	b, _ := NewBufferBank(devs(t, 3), 5*units.MB)
	if b.K() != 3 {
		t.Errorf("K = %d", b.K())
	}
	if b.SlotSize() != 5*units.MB {
		t.Errorf("SlotSize = %v", b.SlotSize())
	}
	if b.Device(1) == nil {
		t.Error("Device(1) nil")
	}
}

func TestReplicatedReadClampsToReplica(t *testing.T) {
	rb, _ := NewReplicatedBank(devs(t, 2))
	if err := rb.Assign(0); err != nil {
		t.Fatal(err)
	}
	blocks := rb.devs[0].Geometry().Blocks
	// A read at the very end clamps back into range.
	c, err := rb.Read(0, 0, blocks-1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c.Block+c.Blocks > blocks {
		t.Errorf("read [%d,%d) escaped replica of %d", c.Block, c.Block+c.Blocks, blocks)
	}
	// A request bigger than the replica fails.
	if _, err := rb.Read(0, 0, 0, blocks+1); err == nil {
		t.Error("oversized read accepted")
	}
}
