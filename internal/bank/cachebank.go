package bank

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/tier"
	"memstream/internal/units"
)

// CacheBank is a k-device content cache under one of the paper's two
// management policies (§3.2).
type CacheBank interface {
	// K returns the bank size.
	K() int
	// Capacity returns the distinct content the bank can hold.
	Capacity() units.Bytes
	// Assign binds a stream to the bank and returns an opaque handle the
	// caller passes to Read.
	Assign(stream int) error
	// Read services one cached IO for the stream at time now and returns
	// when the data is fully available. Block addresses are relative to
	// the cached content image.
	Read(now time.Duration, stream int, block, blocks int64) (device.Completion, error)
	// SeeksPerCycle returns how many device seek operations one IO cycle
	// of n streams costs across the bank (k·n striped, n replicated —
	// paper §3.2.1/3.2.2).
	SeeksPerCycle(n int) int
}

// StripedBank stripes every title bit/byte-wise across all k devices,
// accessed in lock-step: every device performs the same relative access
// for every IO. Effective rate k·R, latency unchanged, capacity k·Size.
type StripedBank struct {
	devs    []tier.Device
	streams map[int]bool
}

// NewStripedBank wraps devs in lock-step striping.
func NewStripedBank(devs []tier.Device) (*StripedBank, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("bank: empty device list")
	}
	return &StripedBank{devs: devs, streams: make(map[int]bool)}, nil
}

// K returns the bank size.
func (s *StripedBank) K() int { return len(s.devs) }

// Capacity pools all devices.
func (s *StripedBank) Capacity() units.Bytes {
	return s.devs[0].Geometry().Capacity().Mul(float64(len(s.devs)))
}

// Assign registers a stream; striping needs no placement decision.
func (s *StripedBank) Assign(stream int) error {
	if s.streams[stream] {
		return fmt.Errorf("bank: stream %d already assigned", stream)
	}
	s.streams[stream] = true
	return nil
}

// Read performs the lock-step access: every device reads blocks/k at the
// same relative location; the IO completes when the slowest device
// finishes. Since the devices start aligned and perform identical seeks,
// the completion equals a single-device access at 1/k the size.
func (s *StripedBank) Read(now time.Duration, stream int, block, blocks int64) (device.Completion, error) {
	per := blocks / int64(len(s.devs))
	if per < 1 {
		per = 1
	}
	rel := block / int64(len(s.devs))
	g := s.devs[0].Geometry()
	if rel+per > g.Blocks {
		rel = g.Blocks - per
	}
	var last device.Completion
	for i, d := range s.devs {
		c, err := d.Service(now, device.Request{
			Op: device.Read, Block: rel, Blocks: per, Stream: stream,
		})
		if err != nil {
			return device.Completion{}, fmt.Errorf("bank: striped read on device %d: %w", i, err)
		}
		if i == 0 || c.Finish > last.Finish {
			last = c
		}
	}
	return last, nil
}

// SeeksPerCycle: all k devices seek for every one of the n IOs.
func (s *StripedBank) SeeksPerCycle(n int) int { return len(s.devs) * n }

// ReplicatedBank stores the full cached image on every device; each stream
// is pinned to one device, chosen least-loaded, and ⌈n/k⌉ streams share a
// device. Effective rate k·R, effective latency L̄/k, capacity Size.
type ReplicatedBank struct {
	devs   []tier.Device
	assign map[int]int
	counts []int
}

// NewReplicatedBank wraps devs in full replication.
func NewReplicatedBank(devs []tier.Device) (*ReplicatedBank, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("bank: empty device list")
	}
	return &ReplicatedBank{
		devs:   devs,
		assign: make(map[int]int),
		counts: make([]int, len(devs)),
	}, nil
}

// K returns the bank size.
func (r *ReplicatedBank) K() int { return len(r.devs) }

// Capacity is a single copy's worth.
func (r *ReplicatedBank) Capacity() units.Bytes {
	return r.devs[0].Geometry().Capacity()
}

// Assign pins the stream to the least-loaded device.
func (r *ReplicatedBank) Assign(stream int) error {
	if _, dup := r.assign[stream]; dup {
		return fmt.Errorf("bank: stream %d already assigned", stream)
	}
	best := 0
	for i, c := range r.counts {
		if c < r.counts[best] {
			best = i
		}
	}
	r.assign[stream] = best
	r.counts[best]++
	return nil
}

// DeviceOf returns the device a stream reads from.
func (r *ReplicatedBank) DeviceOf(stream int) (int, bool) {
	d, ok := r.assign[stream]
	return d, ok
}

// Read services the IO on the stream's pinned replica.
func (r *ReplicatedBank) Read(now time.Duration, stream int, block, blocks int64) (device.Completion, error) {
	dev, ok := r.assign[stream]
	if !ok {
		return device.Completion{}, fmt.Errorf("bank: stream %d not assigned", stream)
	}
	g := r.devs[dev].Geometry()
	if block+blocks > g.Blocks {
		block = g.Blocks - blocks
		if block < 0 {
			return device.Completion{}, fmt.Errorf("bank: request larger than replica")
		}
	}
	return r.devs[dev].Service(now, device.Request{
		Op: device.Read, Block: block, Blocks: blocks, Stream: stream,
	})
}

// SeeksPerCycle: each of the n IOs seeks on exactly one device.
func (r *ReplicatedBank) SeeksPerCycle(n int) int { return n }

// Balance reports min/max streams per device; least-loaded assignment
// keeps max−min ≤ 1.
func (r *ReplicatedBank) Balance() (minStreams, maxStreams int) {
	minStreams, maxStreams = r.counts[0], r.counts[0]
	for _, c := range r.counts[1:] {
		if c < minStreams {
			minStreams = c
		}
		if c > maxStreams {
			maxStreams = c
		}
	}
	return minStreams, maxStreams
}

var (
	_ CacheBank = (*StripedBank)(nil)
	_ CacheBank = (*ReplicatedBank)(nil)
)
