package units

import (
	"math"
	"time"
)

// Pacer converts a byte rate into a sequence of whole-byte chunk sizes,
// one per fixed pacing quantum, without losing the fractional bytes that
// integer truncation would drop. A naive `int(BytesIn(rate, quantum))`
// yields zero for sub-quantum rates (rate·quantum < 1 byte), so a sender
// paced that way never makes progress; the Pacer instead tracks the
// cumulative byte budget at each quantum boundary and emits the whole
// bytes that have become due, carrying the remainder forward.
//
// The budget is recomputed from the tick index on every call rather than
// accumulated incrementally, so per-quantum float error does not compound
// over long streams.
type Pacer struct {
	rate    ByteRate
	quantum time.Duration
	ticks   int64 // quanta elapsed
	sent    float64
}

// NewPacer creates a pacer emitting chunks for rate at one chunk per
// quantum. It panics on a non-positive quantum; a non-positive rate
// yields a pacer that always returns zero.
func NewPacer(rate ByteRate, quantum time.Duration) *Pacer {
	if quantum <= 0 {
		panic("units: non-positive pacing quantum")
	}
	return &Pacer{rate: rate, quantum: quantum}
}

// Quantum returns the pacing interval.
func (p *Pacer) Quantum() time.Duration { return p.quantum }

// Next advances one quantum and returns the whole bytes due, carrying
// any fractional remainder into later quanta. For sub-quantum rates it
// returns 0 for several calls and then 1 once a whole byte accrues.
func (p *Pacer) Next() int { return p.NextBatch(1) }

// NextBatch advances k quanta at once and returns the total whole bytes
// due across all of them — the timer-wheel catch-up path, where a
// stream that slept through k quantum boundaries settles its whole debt
// in one call. Because the budget is recomputed from the tick index,
// NextBatch(k) emits exactly the same total as k Next() calls
// (p.sent is always an integer, so the floors telescope). k <= 0 is a
// no-op returning 0.
func (p *Pacer) NextBatch(k int64) int {
	if p.rate <= 0 || k <= 0 {
		if k > 0 {
			p.ticks += k
		}
		return 0
	}
	p.ticks += k
	due := float64(p.rate) * (time.Duration(p.ticks) * p.quantum).Seconds()
	n := int(due - p.sent)
	if n < 0 {
		n = 0
	}
	p.sent += float64(n)
	return n
}

// Ticks returns how many quanta the pacer has issued.
func (p *Pacer) Ticks() int64 { return p.ticks }

// QuantaToNonzero returns the number of quanta that must elapse before
// the pacer next emits at least one whole byte — the timer wheel's
// skip-ahead: a sub-quantum stream parks that many ticks out instead of
// waking every quantum to emit nothing. Always at least 1; a
// non-positive rate returns a saturated horizon. Float rounding may
// put the estimate one quantum off in either direction (the division
// by perTick and the Duration-based accrual round differently): one
// short costs a spurious zero-byte wake and a re-park, one long delays
// a sub-quantum stream's next byte by a single quantum. Progress is
// never lost either way.
func (p *Pacer) QuantaToNonzero() int64 {
	if p.rate <= 0 {
		return math.MaxInt64 / 2
	}
	perTick := float64(p.rate) * p.quantum.Seconds()
	if perTick >= 1 {
		return 1
	}
	accrued := float64(p.rate) * (time.Duration(p.ticks) * p.quantum).Seconds()
	k := int64(math.Ceil((p.sent + 1 - accrued) / perTick))
	if k < 1 {
		k = 1
	}
	return k
}

// Deadline returns the wall-clock instant of the most recently issued
// quantum, measured from the given stream start. Pacing against these
// absolute boundaries (rather than sleeping a relative quantum after each
// write) keeps the schedule anchored to the monotonic clock: a write that
// blocks does not shift every later deadline.
func (p *Pacer) Deadline(start time.Time) time.Time {
	return start.Add(time.Duration(p.ticks) * p.quantum)
}
