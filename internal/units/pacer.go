package units

import "time"

// Pacer converts a byte rate into a sequence of whole-byte chunk sizes,
// one per fixed pacing quantum, without losing the fractional bytes that
// integer truncation would drop. A naive `int(BytesIn(rate, quantum))`
// yields zero for sub-quantum rates (rate·quantum < 1 byte), so a sender
// paced that way never makes progress; the Pacer instead tracks the
// cumulative byte budget at each quantum boundary and emits the whole
// bytes that have become due, carrying the remainder forward.
//
// The budget is recomputed from the tick index on every call rather than
// accumulated incrementally, so per-quantum float error does not compound
// over long streams.
type Pacer struct {
	rate    ByteRate
	quantum time.Duration
	ticks   int64 // quanta elapsed
	sent    float64
}

// NewPacer creates a pacer emitting chunks for rate at one chunk per
// quantum. It panics on a non-positive quantum; a non-positive rate
// yields a pacer that always returns zero.
func NewPacer(rate ByteRate, quantum time.Duration) *Pacer {
	if quantum <= 0 {
		panic("units: non-positive pacing quantum")
	}
	return &Pacer{rate: rate, quantum: quantum}
}

// Quantum returns the pacing interval.
func (p *Pacer) Quantum() time.Duration { return p.quantum }

// Next advances one quantum and returns the whole bytes due, carrying
// any fractional remainder into later quanta. For sub-quantum rates it
// returns 0 for several calls and then 1 once a whole byte accrues.
func (p *Pacer) Next() int {
	if p.rate <= 0 {
		return 0
	}
	p.ticks++
	due := float64(p.rate) * (time.Duration(p.ticks) * p.quantum).Seconds()
	n := int(due - p.sent)
	if n < 0 {
		n = 0
	}
	p.sent += float64(n)
	return n
}

// Deadline returns the wall-clock instant of the most recently issued
// quantum, measured from the given stream start. Pacing against these
// absolute boundaries (rather than sleeping a relative quantum after each
// write) keeps the schedule anchored to the monotonic clock: a write that
// blocks does not shift every later deadline.
func (p *Pacer) Deadline(start time.Time) time.Time {
	return start.Add(time.Duration(p.ticks) * p.quantum)
}
