package units

import (
	"math"
	"testing"
)

// FuzzParseBytes checks the size parser never panics and that accepted
// values are finite and render back to something parseable.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{"10GB", "1.5TB", "0", "-3MB", "GB", "1e9", "10 XB", "  7 kb "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ParseBytes(in)
		if err != nil {
			return
		}
		if math.IsNaN(float64(b)) {
			t.Fatalf("ParseBytes(%q) accepted NaN", in)
		}
		if math.IsInf(float64(b), 0) {
			return // "1e999GB"-style inputs legitimately overflow
		}
		if _, err := ParseBytes(b.String()); err != nil {
			t.Fatalf("rendered value %q does not re-parse", b.String())
		}
	})
}

// FuzzParseRate does the same for the rate parser.
func FuzzParseRate(f *testing.F) {
	for _, seed := range []string{"300MB/s", "10KB", "5", "/s", "MB/s"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		r, err := ParseRate(in)
		if err != nil {
			return
		}
		if math.IsNaN(float64(r)) {
			t.Fatalf("ParseRate(%q) accepted NaN", in)
		}
	})
}
