package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestByteConstants(t *testing.T) {
	if KB != 1e3 || MB != 1e6 || GB != 1e9 || TB != 1e12 {
		t.Fatalf("decimal byte constants wrong: KB=%v MB=%v GB=%v TB=%v", KB, MB, GB, TB)
	}
}

func TestBytesSeconds(t *testing.T) {
	tests := []struct {
		b    Bytes
		r    ByteRate
		want float64
	}{
		{300 * MB, 300 * MBPS, 1},
		{1 * GB, 100 * MBPS, 10},
		{0, 1 * MBPS, 0},
		{512 * KB, 1 * MBPS, 0.512},
	}
	for _, tc := range tests {
		if got := tc.b.Seconds(tc.r); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("(%v).Seconds(%v) = %v, want %v", tc.b, tc.r, got, tc.want)
		}
	}
}

func TestBytesSecondsZeroRate(t *testing.T) {
	if got := (1 * MB).Seconds(0); !math.IsInf(got, 1) {
		t.Errorf("Seconds with zero rate = %v, want +Inf", got)
	}
	if got := (1 * MB).Seconds(-5); !math.IsInf(got, 1) {
		t.Errorf("Seconds with negative rate = %v, want +Inf", got)
	}
}

func TestBytesDurationSaturates(t *testing.T) {
	d := (1 * TB).Duration(0)
	if d != time.Duration(math.MaxInt64) {
		t.Errorf("Duration at zero rate = %v, want max duration", d)
	}
	if got := (1 * MB).Duration(1 * MBPS); got != time.Second {
		t.Errorf("Duration = %v, want 1s", got)
	}
}

func TestBytesOver(t *testing.T) {
	if got := (10 * GB).Over(1 * GB); got != 10 {
		t.Errorf("Over = %v, want 10", got)
	}
	if got := (10 * GB).Over(0); got != 0 {
		t.Errorf("Over zero = %v, want 0", got)
	}
}

func TestBytesIn(t *testing.T) {
	if got := BytesIn(100*MBPS, 2*time.Second); got != 200*MB {
		t.Errorf("BytesIn = %v, want 200MB", got)
	}
}

func TestRateOf(t *testing.T) {
	if got := RateOf(100*MB, time.Second); got != 100*MBPS {
		t.Errorf("RateOf = %v, want 100MB/s", got)
	}
	if got := RateOf(100*MB, 0); got != 0 {
		t.Errorf("RateOf zero duration = %v, want 0", got)
	}
}

func TestPerGBCost(t *testing.T) {
	// Table 3: DRAM at $20/GB, 5GB costs $100.
	p := PerGB(20)
	if got := p.Cost(5 * GB); math.Abs(float64(got-100)) > 1e-9 {
		t.Errorf("Cost(5GB @ $20/GB) = %v, want $100", got)
	}
}

func TestBytesString(t *testing.T) {
	tests := []struct {
		b    Bytes
		want string
	}{
		{1500 * MB, "1.50GB"},
		{10 * GB, "10.00GB"},
		{2 * TB, "2.00TB"},
		{512, "512B"},
		{-3 * MB, "-3.00MB"},
		{10 * KB, "10.00KB"},
	}
	for _, tc := range tests {
		if got := tc.b.String(); got != tc.want {
			t.Errorf("(%g).String() = %q, want %q", float64(tc.b), got, tc.want)
		}
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		r    ByteRate
		want string
	}{
		{300 * MBPS, "300.00MB/s"},
		{10 * KBPS, "10.00KB/s"},
		{2 * GBPS, "2.00GB/s"},
		{5, "5B/s"},
	}
	for _, tc := range tests {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("rate String = %q, want %q", got, tc.want)
		}
	}
}

func TestDollarsString(t *testing.T) {
	if got := Dollars(12.345).String(); got != "$12.35" {
		t.Errorf("Dollars String = %q", got)
	}
	if got := Dollars(-3).String(); got != "-$3.00" {
		t.Errorf("negative Dollars String = %q", got)
	}
}

func TestMillisecondsSeconds(t *testing.T) {
	if got := Milliseconds(2.8); got != 2800*time.Microsecond {
		t.Errorf("Milliseconds(2.8) = %v", got)
	}
	if got := Seconds(1.5); got != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v", got)
	}
}

func TestParseBytes(t *testing.T) {
	tests := []struct {
		in   string
		want Bytes
	}{
		{"10GB", 10 * GB},
		{"10 GB", 10 * GB},
		{"1.5TB", 1.5 * TB},
		{"512KB", 512 * KB},
		{"128", 128},
		{"128B", 128},
		{"3M", 3 * MB},
	}
	for _, tc := range tests {
		got, err := ParseBytes(tc.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBytes(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "GB", "10XB", "ten GB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

func TestParseRate(t *testing.T) {
	got, err := ParseRate("300MB/s")
	if err != nil || got != 300*MBPS {
		t.Fatalf("ParseRate(300MB/s) = %v, %v", got, err)
	}
	got, err = ParseRate("10KB")
	if err != nil || got != 10*KBPS {
		t.Fatalf("ParseRate(10KB) = %v, %v", got, err)
	}
	if _, err := ParseRate("fast"); err == nil {
		t.Fatal("ParseRate(fast) succeeded, want error")
	}
}

// Property: transfer time is additive in size — moving a+b bytes takes the
// sum of moving a and b separately at the same rate.
func TestSecondsAdditiveProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		r := ByteRate(50 * MBPS)
		ab := (Bytes(a) + Bytes(b)).Seconds(r)
		sum := Bytes(a).Seconds(r) + Bytes(b).Seconds(r)
		return math.Abs(ab-sum) < 1e-9*(1+math.Abs(ab))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BytesIn and RateOf are inverses for positive durations.
func TestRateRoundTripProperty(t *testing.T) {
	f := func(r uint32, ms uint16) bool {
		if ms == 0 {
			return true
		}
		rate := ByteRate(r) + 1
		d := time.Duration(ms) * time.Millisecond
		b := BytesIn(rate, d)
		got := RateOf(b, d)
		return math.Abs(float64(got-rate)) < 1e-6*float64(rate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseBytes(b.String()) stays within rounding error of b for
// values rendered with two decimals.
func TestStringParseRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		b := Bytes(v) * KB
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		return math.Abs(float64(parsed-b)) <= 0.005*math.Max(float64(b), 1)*1e3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
