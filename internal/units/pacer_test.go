package units

import (
	"testing"
	"time"
)

// Regression: a sub-quantum rate (rate·quantum < 1 byte) must still make
// progress. The old memserve code computed int(BytesIn(rate, quantum))
// once — zero for rates below 10 B/s at 100ms quanta — so the stream
// never advanced and held its admission slot forever.
func TestPacerSubQuantumRateMakesProgress(t *testing.T) {
	p := NewPacer(3*BPS, 100*time.Millisecond) // 0.3 bytes per quantum
	total := 0
	for i := 0; i < 100; i++ { // 10 simulated seconds
		total += p.Next()
	}
	if total != 30 {
		t.Errorf("3 B/s over 10s emitted %d bytes, want 30", total)
	}
}

func TestPacerWholeQuantumRate(t *testing.T) {
	p := NewPacer(100*KBPS, 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		if n := p.Next(); n != 10000 {
			t.Fatalf("quantum %d: chunk = %d, want 10000", i, n)
		}
	}
}

// The cumulative budget is exact at every boundary: fractional carry
// never loses or duplicates bytes, whatever the rate/quantum mix.
func TestPacerCumulativeExact(t *testing.T) {
	for _, rate := range []ByteRate{1, 3, 7, 999, 100e3, 123456.789} {
		p := NewPacer(rate, 10*time.Millisecond)
		total := 0
		const quanta = 1000 // 10 simulated seconds
		for i := 0; i < quanta; i++ {
			total += p.Next()
		}
		want := float64(rate) * 10.0
		if diff := want - float64(total); diff < 0 || diff >= 1 {
			t.Errorf("rate %v: emitted %d bytes over 10s, want within 1 of %.2f", rate, total, want)
		}
	}
}

func TestPacerNonPositiveRate(t *testing.T) {
	p := NewPacer(0, time.Second)
	for i := 0; i < 3; i++ {
		if n := p.Next(); n != 0 {
			t.Fatalf("zero-rate pacer emitted %d bytes", n)
		}
	}
}

func TestPacerDeadlineAnchored(t *testing.T) {
	p := NewPacer(1*KBPS, 100*time.Millisecond)
	start := time.Unix(1000, 0)
	p.Next()
	p.Next()
	p.Next()
	if got, want := p.Deadline(start), start.Add(300*time.Millisecond); !got.Equal(want) {
		t.Errorf("Deadline after 3 quanta = %v, want %v", got, want)
	}
}

func TestPacerPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPacer(r, 0) did not panic")
		}
	}()
	NewPacer(1*KBPS, 0)
}
