package units

import (
	"testing"
	"time"
)

// Regression: a sub-quantum rate (rate·quantum < 1 byte) must still make
// progress. The old memserve code computed int(BytesIn(rate, quantum))
// once — zero for rates below 10 B/s at 100ms quanta — so the stream
// never advanced and held its admission slot forever.
func TestPacerSubQuantumRateMakesProgress(t *testing.T) {
	p := NewPacer(3*BPS, 100*time.Millisecond) // 0.3 bytes per quantum
	total := 0
	for i := 0; i < 100; i++ { // 10 simulated seconds
		total += p.Next()
	}
	if total != 30 {
		t.Errorf("3 B/s over 10s emitted %d bytes, want 30", total)
	}
}

func TestPacerWholeQuantumRate(t *testing.T) {
	p := NewPacer(100*KBPS, 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		if n := p.Next(); n != 10000 {
			t.Fatalf("quantum %d: chunk = %d, want 10000", i, n)
		}
	}
}

// The cumulative budget is exact at every boundary: fractional carry
// never loses or duplicates bytes, whatever the rate/quantum mix.
func TestPacerCumulativeExact(t *testing.T) {
	for _, rate := range []ByteRate{1, 3, 7, 999, 100e3, 123456.789} {
		p := NewPacer(rate, 10*time.Millisecond)
		total := 0
		const quanta = 1000 // 10 simulated seconds
		for i := 0; i < quanta; i++ {
			total += p.Next()
		}
		want := float64(rate) * 10.0
		if diff := want - float64(total); diff < 0 || diff >= 1 {
			t.Errorf("rate %v: emitted %d bytes over 10s, want within 1 of %.2f", rate, total, want)
		}
	}
}

func TestPacerNonPositiveRate(t *testing.T) {
	p := NewPacer(0, time.Second)
	for i := 0; i < 3; i++ {
		if n := p.Next(); n != 0 {
			t.Fatalf("zero-rate pacer emitted %d bytes", n)
		}
	}
}

func TestPacerDeadlineAnchored(t *testing.T) {
	p := NewPacer(1*KBPS, 100*time.Millisecond)
	start := time.Unix(1000, 0)
	p.Next()
	p.Next()
	p.Next()
	if got, want := p.Deadline(start), start.Add(300*time.Millisecond); !got.Equal(want) {
		t.Errorf("Deadline after 3 quanta = %v, want %v", got, want)
	}
}

// The catch-up contract the serving loop relies on after a blocked
// write: a stall of k quanta leaves the pacer k boundaries behind the
// wall clock, and the loop then calls Next repeatedly with no sleep in
// between (every Deadline is already past). Those catch-up calls must
// (a) emit exactly the owed rate × stall bytes cumulatively, (b) stay
// bounded per call — one quantum's worth each, never one giant
// stall-sized chunk — and (c) keep Deadline anchored to stream start,
// so the schedule never shifts by the stall.
func TestPacerCatchUpAfterStall(t *testing.T) {
	const (
		rate    = 100 * KBPS // 10000 B per 100ms quantum
		quantum = 100 * time.Millisecond
		perQ    = 10000
	)
	p := NewPacer(rate, quantum)
	start := time.Unix(1000, 0)

	// 5 on-schedule quanta.
	for i := 1; i <= 5; i++ {
		if n := p.Next(); n != perQ {
			t.Fatalf("quantum %d: chunk = %d, want %d", i, n, perQ)
		}
		if got, want := p.Deadline(start), start.Add(time.Duration(i)*quantum); !got.Equal(want) {
			t.Fatalf("quantum %d: Deadline = %v, want %v", i, got, want)
		}
	}

	// A 7-quantum stall: the writer was blocked, no Next calls happened.
	// The loop resumes and drains the owed quanta back-to-back.
	const stall = 7
	owed := 0
	for i := 0; i < stall; i++ {
		n := p.Next()
		if n > perQ+1 {
			t.Fatalf("catch-up call %d emitted %d bytes; must stay bounded by one quantum's %d", i, n, perQ)
		}
		owed += n
	}
	if owed != stall*perQ {
		t.Errorf("catch-up emitted %d bytes over %d quanta, want the owed %d", owed, stall, stall*perQ)
	}
	// Deadline is still start-anchored: 12 quanta issued in total, so the
	// boundary is start+12q regardless of when the calls actually ran.
	if got, want := p.Deadline(start), start.Add(12*quantum); !got.Equal(want) {
		t.Errorf("Deadline after stall catch-up = %v, want start-anchored %v", got, want)
	}
}

// Catch-up with a fractional-rate pacer: the owed bytes across a stall
// keep the cumulative budget exact (no double-count, no loss), even when
// single quanta owe fractional bytes.
func TestPacerCatchUpFractionalExact(t *testing.T) {
	p := NewPacer(7*BPS, 100*time.Millisecond) // 0.7 bytes per quantum
	total := 0
	for i := 0; i < 10; i++ { // 1s on schedule
		total += p.Next()
	}
	for i := 0; i < 30; i++ { // 3s stall drained in a burst
		total += p.Next()
	}
	if total != 28 { // 7 B/s × 4s
		t.Errorf("cumulative bytes = %d, want 28", total)
	}
}

func TestPacerPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPacer(r, 0) did not panic")
		}
	}()
	NewPacer(1*KBPS, 0)
}

// NextBatch(k) must emit exactly what k Next() calls emit: the budget
// is recomputed from the tick index and sent is always integral, so the
// floors telescope. This is the wheel plane's byte-conservation
// contract — a stream that slept through k quanta settles the same debt
// in one call as the goroutine plane does in k.
func TestPacerNextBatchEquivalence(t *testing.T) {
	rates := []ByteRate{5 * BPS, 7 * BPS, 100 * KBPS, 333333 * BPS}
	for _, rate := range rates {
		a := NewPacer(rate, 10*time.Millisecond)
		b := NewPacer(rate, 10*time.Millisecond)
		totalA, totalB := 0, 0
		// Mixed advancement pattern: singles vs batches of 1,2,3,5,25.
		batches := []int64{1, 2, 3, 5, 25, 1, 7}
		for _, k := range batches {
			for i := int64(0); i < k; i++ {
				totalA += a.Next()
			}
			totalB += b.NextBatch(k)
		}
		if totalA != totalB {
			t.Errorf("rate %v: %d singles emitted %d bytes, batches emitted %d",
				rate, 44, totalA, totalB)
		}
		if a.Ticks() != b.Ticks() {
			t.Errorf("rate %v: tick counts diverged: %d vs %d", rate, a.Ticks(), b.Ticks())
		}
	}
}

func TestPacerNextBatchNonPositive(t *testing.T) {
	p := NewPacer(1*KBPS, 10*time.Millisecond)
	if n := p.NextBatch(0); n != 0 {
		t.Errorf("NextBatch(0) = %d, want 0", n)
	}
	if n := p.NextBatch(-3); n != 0 {
		t.Errorf("NextBatch(-3) = %d, want 0", n)
	}
	if got := p.Ticks(); got != 0 {
		t.Errorf("non-positive batches advanced ticks to %d", got)
	}
}

// QuantaToNonzero is the wheel's skip-ahead: park a sub-quantum stream
// until a whole byte accrues. Parking that long then settling the debt
// must emit at least one byte; parking one quantum less must emit zero.
func TestPacerQuantaToNonzero(t *testing.T) {
	for _, rate := range []ByteRate{1 * BPS, 5 * BPS, 49 * BPS, 7 * BPS} {
		p := NewPacer(rate, 10*time.Millisecond)
		for step := 0; step < 20; step++ {
			k := p.QuantaToNonzero()
			if k < 1 {
				t.Fatalf("rate %v: QuantaToNonzero = %d, want >= 1", rate, k)
			}
			if k > 2 {
				// Well short of the estimate nothing must be due yet;
				// the documented float tolerance is one quantum.
				probe := *p
				if n := probe.NextBatch(k - 2); n != 0 {
					t.Fatalf("rate %v step %d: k=%d but k-2 quanta already emit %d bytes",
						rate, step, k, n)
				}
			}
			n := p.NextBatch(k)
			// Float rounding may leave the estimate one quantum short
			// (emitting 0 once); one extra quantum must then deliver.
			if n == 0 {
				if n2 := p.NextBatch(1); n2 < 1 {
					t.Fatalf("rate %v step %d: skip of %d then 1 more still emits nothing", rate, step, k)
				}
			}
		}
	}
	// At and above one byte per quantum the skip is always 1.
	p := NewPacer(100*BPS, 10*time.Millisecond)
	if k := p.QuantaToNonzero(); k != 1 {
		t.Errorf("super-quantum rate: QuantaToNonzero = %d, want 1", k)
	}
	// Non-positive rate parks on a saturated horizon.
	z := NewPacer(0, 10*time.Millisecond)
	if k := z.QuantaToNonzero(); k < 1<<40 {
		t.Errorf("zero rate: QuantaToNonzero = %d, want saturated", k)
	}
}
