package units

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human byte size such as "10GB", "512KB", "1.5TB" or a
// bare number of bytes. Units are decimal, matching the rest of the package.
func ParseBytes(s string) (Bytes, error) {
	v, unit, err := splitNumberUnit(s)
	if err != nil {
		return 0, fmt.Errorf("units: parse bytes %q: %w", s, err)
	}
	switch strings.ToUpper(unit) {
	case "", "B":
		return Bytes(v), nil
	case "KB", "K":
		return Bytes(v) * KB, nil
	case "MB", "M":
		return Bytes(v) * MB, nil
	case "GB", "G":
		return Bytes(v) * GB, nil
	case "TB", "T":
		return Bytes(v) * TB, nil
	}
	return 0, fmt.Errorf("units: parse bytes %q: unknown unit %q", s, unit)
}

// ParseRate parses a human data rate such as "300MB/s", "10KB/s" or a bare
// number of bytes per second.
func ParseRate(s string) (ByteRate, error) {
	t := strings.TrimSuffix(strings.TrimSpace(s), "/s")
	b, err := ParseBytes(t)
	if err != nil {
		return 0, fmt.Errorf("units: parse rate %q: %w", s, err)
	}
	return ByteRate(b), nil
}

func splitNumberUnit(s string) (float64, string, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, "", fmt.Errorf("empty input")
	}
	i := len(t)
	for i > 0 {
		c := t[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num, unit := strings.TrimSpace(t[:i]), strings.TrimSpace(t[i:])
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad number %q", num)
	}
	return v, unit, nil
}
