// Package units defines the scalar quantities used throughout memstream:
// byte counts, data rates, durations and monetary cost.
//
// The analytical model in the paper mixes decimal storage units (a "10GB"
// MEMS device), data rates in bytes per second, latencies in milliseconds
// and costs in dollars per gigabyte. Keeping each quantity in its own named
// type prevents the classic unit mix-ups (MB vs MiB, $/GB vs $/B) that
// would silently distort every figure.
package units

import (
	"fmt"
	"math"
	"time"
)

// Bytes is a byte count. Storage sizes in the paper are decimal
// (1 GB = 1e9 bytes), matching how drive vendors quote capacity.
type Bytes float64

// Decimal byte units, as used by storage vendors and by the paper.
const (
	B  Bytes = 1
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// ByteRate is a data transfer rate in bytes per second.
type ByteRate float64

// Common rates.
const (
	BPS  ByteRate = 1
	KBPS ByteRate = 1e3
	MBPS ByteRate = 1e6
	GBPS ByteRate = 1e9
)

// Dollars is a monetary amount in US dollars.
type Dollars float64

// PerByte is a unit cost in dollars per byte (the paper's C_dram, C_mems).
type PerByte float64

// PerGB converts a $/GB price (how the paper quotes costs) to PerByte.
func PerGB(d Dollars) PerByte { return PerByte(float64(d) / 1e9) }

// Cost returns the dollar cost of s bytes at unit price p.
func (p PerByte) Cost(s Bytes) Dollars { return Dollars(float64(p) * float64(s)) }

// Mul scales a byte count.
func (b Bytes) Mul(x float64) Bytes { return Bytes(float64(b) * x) }

// Seconds returns the time needed to move b bytes at rate r.
// It returns +Inf for non-positive rates.
func (b Bytes) Seconds(r ByteRate) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	return float64(b) / float64(r)
}

// Duration returns the transfer time of b bytes at rate r as a
// time.Duration, saturating at the maximum representable duration.
func (b Bytes) Duration(r ByteRate) time.Duration {
	s := b.Seconds(r)
	if math.IsInf(s, 1) || s > float64(math.MaxInt64)/1e9 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// Over returns b divided by per, i.e. how many whole units of size per fit
// into b. It returns 0 if per is non-positive.
func (b Bytes) Over(per Bytes) float64 {
	if per <= 0 {
		return 0
	}
	return float64(b) / float64(per)
}

// BytesIn returns the number of bytes transferred at rate r over d.
func BytesIn(r ByteRate, d time.Duration) Bytes {
	return Bytes(float64(r) * d.Seconds())
}

// RateOf returns the rate that moves b bytes in d. It returns 0 for
// non-positive durations.
func RateOf(b Bytes, d time.Duration) ByteRate {
	if d <= 0 {
		return 0
	}
	return ByteRate(float64(b) / d.Seconds())
}

// String renders a byte count with a scaled decimal suffix ("1.50GB").
func (b Bytes) String() string {
	v, neg := float64(b), ""
	if v < 0 {
		v, neg = -v, "-"
	}
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%s%.2fTB", neg, v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%s%.2fGB", neg, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.2fMB", neg, v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%s%.2fKB", neg, v/1e3)
	default:
		return fmt.Sprintf("%s%.0fB", neg, v)
	}
}

// String renders a rate with a scaled decimal suffix ("300.00MB/s").
func (r ByteRate) String() string {
	v, neg := float64(r), ""
	if v < 0 {
		v, neg = -v, "-"
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%s%.2fGB/s", neg, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.2fMB/s", neg, v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%s%.2fKB/s", neg, v/1e3)
	default:
		return fmt.Sprintf("%s%.0fB/s", neg, v)
	}
}

// String renders dollars ("$12.34").
func (d Dollars) String() string {
	if d < 0 {
		return fmt.Sprintf("-$%.2f", -float64(d))
	}
	return fmt.Sprintf("$%.2f", float64(d))
}

// Milliseconds converts a millisecond count to a time.Duration.
func Milliseconds(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Seconds converts a second count to a time.Duration.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
