package workload

import (
	"fmt"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
)

// SessionProcess generates a stream of viewer sessions: Poisson arrivals
// with exponentially distributed holding times — the standard teletraffic
// model for on-demand viewing. The paper's evaluation works with a fixed
// population N; this process drives the admission-control dynamics the
// served population emerges from.
type SessionProcess struct {
	ArrivalRate float64       // sessions per second
	MeanHold    time.Duration // mean session length
	BitRate     units.ByteRate
}

// Validate checks the process parameters.
func (p SessionProcess) Validate() error {
	if p.ArrivalRate <= 0 {
		return fmt.Errorf("workload: non-positive arrival rate %g", p.ArrivalRate)
	}
	if p.MeanHold <= 0 {
		return fmt.Errorf("workload: non-positive mean hold %v", p.MeanHold)
	}
	if p.BitRate <= 0 {
		return fmt.Errorf("workload: non-positive bit-rate %v", p.BitRate)
	}
	return nil
}

// OfferedLoad is the Erlang offered load a = λ·E[hold]: the stationary
// mean of concurrently active sessions were none rejected.
func (p SessionProcess) OfferedLoad() float64 {
	return p.ArrivalRate * p.MeanHold.Seconds()
}

// Session is one generated viewing session.
type Session struct {
	ID      int
	Arrive  time.Duration
	Hold    time.Duration
	BitRate units.ByteRate
}

// Generate draws sessions arriving within the horizon.
func (p SessionProcess) Generate(rng *sim.RNG, horizon time.Duration) ([]Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon %v", horizon)
	}
	var out []Session
	t := time.Duration(0)
	id := 0
	for {
		gap := units.Seconds(rng.Exp(1 / p.ArrivalRate))
		// At very high arrival rates the exponential draw truncates to a
		// zero duration; without a floor t would stop advancing and the
		// loop would grow out until OOM. One nanosecond is the finest
		// spacing the time base can express anyway.
		if gap <= 0 {
			gap = 1
		}
		t += gap
		if t >= horizon {
			return out, nil
		}
		out = append(out, Session{
			ID:      id,
			Arrive:  t,
			Hold:    units.Seconds(rng.Exp(p.MeanHold.Seconds())),
			BitRate: p.BitRate,
		})
		id++
	}
}

// AdmissionStats summarizes an admission-controlled run of a session
// trace.
type AdmissionStats struct {
	Offered   int
	Admitted  int
	Rejected  int
	PeakBusy  int
	AvgBusy   float64
	BlockProb float64
}

// ReplayAdmission drives a session trace (sessions must be in arrival
// order) through an admission test: capacity reports whether one more
// concurrent stream fits given the current count. It returns loss-system
// statistics — the Erlang-B view of the streaming server's capacity
// region.
func ReplayAdmission(sessions []Session, capacity func(busy int) bool) AdmissionStats {
	stats := AdmissionStats{Offered: len(sessions)}
	if len(sessions) == 0 {
		return stats
	}
	departures := &durationHeap{}
	busy := 0
	var busyArea float64
	last := time.Duration(0)
	advance := func(t time.Duration) {
		// Process departures before t, integrating busy-time exactly.
		for departures.Len() > 0 && departures.Min() <= t {
			d := departures.Pop()
			busyArea += float64(busy) * (d - last).Seconds()
			last = d
			busy--
		}
		busyArea += float64(busy) * (t - last).Seconds()
		last = t
	}
	for _, s := range sessions {
		advance(s.Arrive)
		if !capacity(busy) {
			stats.Rejected++
			continue
		}
		stats.Admitted++
		busy++
		departures.Push(s.Arrive + s.Hold)
		if busy > stats.PeakBusy {
			stats.PeakBusy = busy
		}
	}
	horizon := sessions[len(sessions)-1].Arrive
	if horizon > 0 {
		stats.AvgBusy = busyArea / horizon.Seconds()
	}
	stats.BlockProb = float64(stats.Rejected) / float64(stats.Offered)
	return stats
}

// durationHeap is a minimal binary min-heap of times.
type durationHeap struct{ v []time.Duration }

// Len reports heap size.
func (h *durationHeap) Len() int { return len(h.v) }

// Min returns the smallest element; callers must check Len first.
func (h *durationHeap) Min() time.Duration { return h.v[0] }

// Push inserts t.
func (h *durationHeap) Push(t time.Duration) {
	h.v = append(h.v, t)
	i := len(h.v) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.v[parent] <= h.v[i] {
			break
		}
		h.v[parent], h.v[i] = h.v[i], h.v[parent]
		i = parent
	}
}

// Pop removes and returns the minimum.
func (h *durationHeap) Pop() time.Duration {
	top := h.v[0]
	n := len(h.v) - 1
	h.v[0] = h.v[n]
	h.v = h.v[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.v[l] < h.v[small] {
			small = l
		}
		if r < n && h.v[r] < h.v[small] {
			small = r
		}
		if small == i {
			break
		}
		h.v[i], h.v[small] = h.v[small], h.v[i]
		i = small
	}
	return top
}
