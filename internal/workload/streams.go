package workload

import (
	"fmt"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
)

// Stream is one active playback session.
type Stream struct {
	ID      int
	Title   *Title
	BitRate units.ByteRate // CBR drain rate (peak rate for VBR)
	Start   time.Duration  // session start (simulated)
	Offset  units.Bytes    // starting byte offset within the title
}

// Set is a population of concurrent streams plus summary statistics.
type Set struct {
	Streams []Stream
}

// AvgBitRate returns B̄, the mean bit-rate across the set.
func (s *Set) AvgBitRate() units.ByteRate {
	if len(s.Streams) == 0 {
		return 0
	}
	var sum float64
	for _, st := range s.Streams {
		sum += float64(st.BitRate)
	}
	return units.ByteRate(sum / float64(len(s.Streams)))
}

// AggregateRate returns N·B̄, the total consumption bandwidth.
func (s *Set) AggregateRate() units.ByteRate {
	var sum float64
	for _, st := range s.Streams {
		sum += float64(st.BitRate)
	}
	return units.ByteRate(sum)
}

// Generator draws stream populations from a catalog.
type Generator struct {
	Catalog *Catalog
	RNG     *sim.RNG
}

// NewGenerator returns a generator over cat seeded deterministically.
func NewGenerator(cat *Catalog, seed uint64) *Generator {
	return &Generator{Catalog: cat, RNG: sim.NewRNG(seed)}
}

// Draw produces n concurrent streams whose titles follow the catalog's
// popularity weights. Offsets are uniformly random within each title so a
// simulated steady state does not start with every stream at block 0.
func (g *Generator) Draw(n int) (*Set, error) { return g.DrawRange(0, n) }

// DrawRange is the partition-aware variant of Draw: it produces n streams
// whose IDs run firstID..firstID+n-1, so a sharded run can hand each
// partition its own generator (seeded independently) while keeping stream
// IDs globally unique across the merged population. DrawRange(0, n) is
// exactly Draw(n) — same RNG consumption, same titles and offsets.
func (g *Generator) DrawRange(firstID, n int) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream count")
	}
	if firstID < 0 {
		return nil, fmt.Errorf("workload: negative first stream ID %d", firstID)
	}
	set := &Set{Streams: make([]Stream, n)}
	for i := 0; i < n; i++ {
		t := g.Catalog.Pick(g.RNG)
		off := units.Bytes(g.RNG.Float64() * float64(t.Size))
		set.Streams[i] = Stream{
			ID:      firstID + i,
			Title:   t,
			BitRate: t.Class.BitRate,
			Offset:  off,
		}
	}
	return set, nil
}

// DrawUniform produces n streams drawn uniformly over titles, ignoring
// popularity (the paper's "50:50" end point is equivalent).
func (g *Generator) DrawUniform(n int) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive stream count")
	}
	set := &Set{Streams: make([]Stream, n)}
	for i := 0; i < n; i++ {
		t := &g.Catalog.Titles[g.RNG.Intn(len(g.Catalog.Titles))]
		set.Streams[i] = Stream{ID: i, Title: t, BitRate: t.Class.BitRate}
	}
	return set, nil
}

// HitCount returns how many of the set's streams play titles with rank
// below cachedTitles — the streams a prefix cache of that many titles
// would absorb.
func (s *Set) HitCount(cachedTitles int) int {
	n := 0
	for _, st := range s.Streams {
		if st.Title.Rank < cachedTitles {
			n++
		}
	}
	return n
}

// VBRTrace synthesizes a variable-bit-rate consumption trace around a mean
// rate: per-interval rates follow a truncated normal with the given
// coefficient of variation. The paper models VBR as CBR plus a memory
// cushion (its footnote 1); this trace generator quantifies that cushion
// in the VBR example and tests.
func VBRTrace(rng *sim.RNG, mean units.ByteRate, cv float64, intervals int) []units.ByteRate {
	out := make([]units.ByteRate, intervals)
	for i := range out {
		r := rng.Norm(float64(mean), cv*float64(mean))
		if r < 0.1*float64(mean) {
			r = 0.1 * float64(mean)
		}
		out[i] = units.ByteRate(r)
	}
	return out
}

// CushionFor returns the extra buffering needed to serve trace as if it
// were CBR at its mean: the maximum running excess of consumption over the
// mean-rate supply across the trace, with dt the interval length.
func CushionFor(trace []units.ByteRate, dt time.Duration) units.Bytes {
	var mean float64
	for _, r := range trace {
		mean += float64(r)
	}
	if len(trace) == 0 {
		return 0
	}
	mean /= float64(len(trace))
	var excess, maxExcess float64
	for _, r := range trace {
		excess += (float64(r) - mean) * dt.Seconds()
		if excess < 0 {
			excess = 0
		}
		if excess > maxExcess {
			maxExcess = excess
		}
	}
	return units.Bytes(maxExcess)
}
