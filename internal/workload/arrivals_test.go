package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
)

func TestSessionProcessValidate(t *testing.T) {
	ok := SessionProcess{ArrivalRate: 1, MeanHold: time.Minute, BitRate: units.MBPS}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SessionProcess{
		{ArrivalRate: 0, MeanHold: time.Minute, BitRate: units.MBPS},
		{ArrivalRate: 1, MeanHold: 0, BitRate: units.MBPS},
		{ArrivalRate: 1, MeanHold: time.Minute, BitRate: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestOfferedLoad(t *testing.T) {
	p := SessionProcess{ArrivalRate: 2, MeanHold: 30 * time.Second, BitRate: units.MBPS}
	if got := p.OfferedLoad(); got != 60 {
		t.Errorf("offered load = %v, want 60 erlangs", got)
	}
}

func TestGenerateStatistics(t *testing.T) {
	p := SessionProcess{ArrivalRate: 5, MeanHold: 2 * time.Minute, BitRate: units.MBPS}
	rng := sim.NewRNG(1)
	horizon := 2 * time.Hour
	sessions, err := p.Generate(rng, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Expected count ≈ λ·T = 36000; allow 5%.
	want := p.ArrivalRate * horizon.Seconds()
	if math.Abs(float64(len(sessions))-want) > 0.05*want {
		t.Errorf("sessions = %d, want ≈%.0f", len(sessions), want)
	}
	// Arrivals in order and within horizon; holds have the right mean.
	var holdSum float64
	for i, s := range sessions {
		if s.Arrive >= horizon || s.Arrive < 0 {
			t.Fatalf("arrival %v outside horizon", s.Arrive)
		}
		if i > 0 && s.Arrive < sessions[i-1].Arrive {
			t.Fatal("arrivals out of order")
		}
		if s.ID != i {
			t.Fatalf("session %d has id %d", i, s.ID)
		}
		holdSum += s.Hold.Seconds()
	}
	meanHold := holdSum / float64(len(sessions))
	if math.Abs(meanHold-120) > 6 {
		t.Errorf("mean hold = %.1fs, want ≈120s", meanHold)
	}
}

// TestGenerateExtremeRateTerminates is the regression test for an
// unbounded loop: at very high arrival rates every exponential gap
// truncated to 0ns, simulated time never advanced past the horizon, and
// the session slice grew until OOM. With the 1ns gap floor the generator
// must terminate and arrivals stay strictly increasing.
func TestGenerateExtremeRateTerminates(t *testing.T) {
	p := SessionProcess{
		ArrivalRate: 1e12, // mean gap 1e-12s — far below the 1ns time base
		MeanHold:    time.Minute,
		BitRate:     units.MBPS,
	}
	horizon := time.Microsecond
	sessions, err := p.Generate(sim.NewRNG(7), horizon)
	if err != nil {
		t.Fatal(err)
	}
	// The 1ns floor bounds the output at horizon/1ns sessions.
	if len(sessions) > int(horizon) {
		t.Fatalf("generated %d sessions, more than the %d the gap floor allows", len(sessions), int(horizon))
	}
	if len(sessions) == 0 {
		t.Fatal("expected at least one session inside the horizon")
	}
	prev := time.Duration(-1)
	for _, s := range sessions {
		if s.Arrive <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", s.Arrive, prev)
		}
		if s.Arrive >= horizon {
			t.Fatalf("arrival %v beyond horizon %v", s.Arrive, horizon)
		}
		prev = s.Arrive
	}
}

func TestGenerateErrors(t *testing.T) {
	p := SessionProcess{ArrivalRate: 1, MeanHold: time.Minute, BitRate: units.MBPS}
	if _, err := p.Generate(sim.NewRNG(1), 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := (SessionProcess{}).Generate(sim.NewRNG(1), time.Hour); err == nil {
		t.Error("invalid process accepted")
	}
}

func TestReplayAdmissionUnlimited(t *testing.T) {
	p := SessionProcess{ArrivalRate: 1, MeanHold: time.Minute, BitRate: units.MBPS}
	sessions, _ := p.Generate(sim.NewRNG(2), time.Hour)
	stats := ReplayAdmission(sessions, func(int) bool { return true })
	if stats.Rejected != 0 || stats.Admitted != stats.Offered {
		t.Errorf("unlimited capacity rejected %d", stats.Rejected)
	}
	// Stationary busy count ≈ offered load (60 erlangs).
	if math.Abs(stats.AvgBusy-p.OfferedLoad()) > 0.25*p.OfferedLoad() {
		t.Errorf("avg busy = %.1f, want ≈%.0f", stats.AvgBusy, p.OfferedLoad())
	}
	if stats.PeakBusy < int(stats.AvgBusy) {
		t.Error("peak below average")
	}
}

func TestReplayAdmissionHardCap(t *testing.T) {
	p := SessionProcess{ArrivalRate: 2, MeanHold: time.Minute, BitRate: units.MBPS}
	sessions, _ := p.Generate(sim.NewRNG(3), time.Hour)
	const cap = 100
	stats := ReplayAdmission(sessions, func(busy int) bool { return busy < cap })
	if stats.PeakBusy > cap {
		t.Errorf("peak %d exceeded cap %d", stats.PeakBusy, cap)
	}
	// Offered 120 erlangs into 100 servers: Erlang-B blocking ≈ 0.19.
	if stats.BlockProb < 0.05 || stats.BlockProb > 0.4 {
		t.Errorf("blocking probability = %.3f, want Erlang-B-ish ≈0.19", stats.BlockProb)
	}
	if stats.Admitted+stats.Rejected != stats.Offered {
		t.Error("admitted + rejected != offered")
	}
}

func TestReplayAdmissionEmpty(t *testing.T) {
	stats := ReplayAdmission(nil, func(int) bool { return true })
	if stats.Offered != 0 || stats.BlockProb != 0 {
		t.Errorf("empty stats = %+v", stats)
	}
}

// Property: the duration heap pops in sorted order.
func TestDurationHeapProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		h := &durationHeap{}
		for _, v := range vals {
			h.Push(time.Duration(v))
		}
		sorted := make([]time.Duration, len(vals))
		for i := range sorted {
			sorted[i] = h.Pop()
		}
		want := make([]time.Duration, len(vals))
		for i, v := range vals {
			want[i] = time.Duration(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if sorted[i] != want[i] {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with a hard cap, blocking never lets busy exceed the cap and
// conservation holds.
func TestReplayAdmissionCapProperty(t *testing.T) {
	f := func(seed uint16, capRaw uint8) bool {
		capN := int(capRaw%50) + 1
		p := SessionProcess{ArrivalRate: 1, MeanHold: 30 * time.Second, BitRate: units.MBPS}
		sessions, err := p.Generate(sim.NewRNG(uint64(seed)), 30*time.Minute)
		if err != nil {
			return false
		}
		stats := ReplayAdmission(sessions, func(busy int) bool { return busy < capN })
		return stats.PeakBusy <= capN && stats.Admitted+stats.Rejected == stats.Offered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
