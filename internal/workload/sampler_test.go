package workload

import (
	"math"
	"testing"

	"memstream/internal/sim"
	"memstream/internal/units"
)

func testCatalog(t *testing.T, n int, w []float64) *Catalog {
	t.Helper()
	cat, err := NewCatalog(n, MP3, w, 512)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestSamplerMatchesLinearScanSequence is the pinned-sequence gate: for a
// shared RNG stream, the O(1) sampler must reproduce the legacy linear
// scan's draws byte for byte — same title IDs from the same Float64s —
// across the popularity shapes the rigs actually use.
func TestSamplerMatchesLinearScanSequence(t *testing.T) {
	shapes := map[string][]float64{
		"xy-10-90-64":   XYDistribution{X: 10, Y: 90}.Weights(64),
		"xy-1-99-200":   XYDistribution{X: 1, Y: 99}.Weights(200),
		"xy-50-50-100":  XYDistribution{X: 50, Y: 50}.Weights(100),
		"zipf-1.0-1000": Zipf(1000, 1.0),
		"zipf-0.5-64":   Zipf(64, 0.5),
		"single":        {1},
		"lopsided":      {1e-30, 0.9, 1e-30, 0.1, 1e-300},
	}
	for name, w := range shapes {
		t.Run(name, func(t *testing.T) {
			cat := testCatalog(t, len(w), w)
			if cat.sampler == nil {
				t.Fatal("sampler refused a well-formed weight vector")
			}
			fast, slow := sim.NewRNG(42), sim.NewRNG(42)
			for i := 0; i < 20000; i++ {
				f := cat.Pick(fast)
				l := cat.pickLinear(slow)
				if f != l {
					t.Fatalf("draw %d: sampler chose title %d, linear scan %d", i, f.ID, l.ID)
				}
			}
		})
	}
}

// TestSamplerExactAtBoundaries probes every internal decision boundary:
// at bound[i] and one ulp on either side, the sampler and the subtraction
// scan must resolve the same rank. This is the strongest form of the
// equivalence claim — random draws rarely land within an ulp of a bound.
func TestSamplerExactAtBoundaries(t *testing.T) {
	for _, w := range [][]float64{
		XYDistribution{X: 10, Y: 90}.Weights(100),
		Zipf(300, 1.2),
		{0.25, 0.25, 0.25, 0.25},
		{1e-9, 0.5, 1e-9, 0.5 - 3e-9, 1e-9},
	} {
		cat := testCatalog(t, len(w), w)
		s := cat.sampler
		if s == nil {
			t.Fatal("sampler refused a well-formed weight vector")
		}
		probe := func(u float64) {
			t.Helper()
			if u < 0 || u > s.total {
				return
			}
			if got, want := s.at(u), cat.pickLinearAt(u); got != want {
				t.Fatalf("u=%.20g: sampler rank %d, linear rank %d", u, got, want)
			}
		}
		probe(0)
		probe(s.total)
		for _, b := range s.bounds {
			probe(math.Nextafter(b, math.Inf(-1)))
			probe(b)
			probe(math.Nextafter(b, math.Inf(1)))
		}
	}
}

// TestSamplerChiSquared checks the draw distribution against the exact
// Zipf weights at several exponents: with 200k draws over 100 titles the
// χ² statistic should sit far below the df=99, p=0.001 critical value
// (~149) unless the sampler is biased.
func TestSamplerChiSquared(t *testing.T) {
	const n, draws = 100, 200000
	for _, alpha := range []float64{0.5, 0.8, 1.0, 1.2, 1.5} {
		w := Zipf(n, alpha)
		cat := testCatalog(t, n, w)
		rng := sim.NewRNG(7)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[cat.Pick(rng).Rank]++
		}
		var chi2 float64
		for i, c := range counts {
			exp := w[i] * draws
			d := float64(c) - exp
			chi2 += d * d / exp
		}
		if chi2 > 149 {
			t.Errorf("alpha=%.1f: chi²=%.1f exceeds the df=99 p=0.001 critical value", alpha, chi2)
		}
	}
}

// TestSamplerSplitDeterminism: generators seeded from the same RNG.Split
// lineage draw identical populations — the property the shard layer's
// per-partition seeding relies on.
func TestSamplerSplitDeterminism(t *testing.T) {
	w := XYDistribution{X: 10, Y: 90}.Weights(64)
	cat := testCatalog(t, 64, w)
	seq := func() []int {
		rng := sim.NewRNG(99).Split()
		out := make([]int, 4096)
		for i := range out {
			out[i] = cat.Pick(rng).ID
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged under identical Split lineage: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSamplerRefusesDegenerateWeights: the inversion is only sound for
// finite non-negative weights; anything else must fall back to the linear
// scan rather than mis-sample.
func TestSamplerRefusesDegenerateWeights(t *testing.T) {
	for name, tc := range map[string]struct {
		w     []float64
		total float64
	}{
		"nan":      {[]float64{0.5, math.NaN()}, math.NaN()},
		"negative": {[]float64{0.5, -0.1, 0.6}, 1.0},
		"inf":      {[]float64{math.Inf(1), 1}, math.Inf(1)},
		"zero":     {[]float64{0, 0}, 0},
		"empty":    {nil, 0},
	} {
		if s := NewSampler(tc.w, tc.total); s != nil {
			t.Errorf("%s: sampler accepted degenerate weights", name)
		}
	}
}

// A catalog whose weights the sampler refuses still draws via the scan.
func TestPickFallsBackWithoutSampler(t *testing.T) {
	cat := testCatalog(t, 2, []float64{0.5, 0.5})
	cat.sampler = nil
	rng := sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		if cat.Pick(rng) == nil {
			t.Fatal("fallback pick returned nil")
		}
	}
}

func benchmarkPick(b *testing.B, n int, linear bool) {
	w := Zipf(n, 1.0)
	cat, err := NewCatalog(n, MediaClass{Name: "b", BitRate: 100 * units.KBPS,
		Duration: MP3.Duration}, w, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		if linear {
			sink += cat.pickLinear(rng).Rank
		} else {
			sink += cat.Pick(rng).Rank
		}
	}
	_ = sink
}

func BenchmarkSamplerPick64(b *testing.B)      { benchmarkPick(b, 64, false) }
func BenchmarkSamplerPick4096(b *testing.B)    { benchmarkPick(b, 4096, false) }
func BenchmarkLinearScanPick64(b *testing.B)   { benchmarkPick(b, 64, true) }
func BenchmarkLinearScanPick4096(b *testing.B) { benchmarkPick(b, 4096, true) }
