package workload

import (
	"math"

	"memstream/internal/sim"
)

// Sampler draws title ranks from the catalog's popularity weights in O(1)
// expected time regardless of catalog size, replacing the per-draw linear
// subtraction scan Pick used to run.
//
// It is not a textbook alias table: an alias table partitions the unit
// interval its own way and cannot reproduce the legacy scan's draws bit
// for bit, which the pinned Result fingerprints require. Instead the
// sampler inverts the scan exactly. The legacy draw computed
//
//	u := rng.Float64() * total
//	u -= w[0]; u -= w[1]; ...   // return first i where u <= 0
//
// in float64 arithmetic, so the rank chosen for a given u is determined by
// the *rounded* running differences. For each rank i the build computes
// bound[i], the largest float64 u whose rounded subtraction chain crosses
// zero by step i, by inverting the chain backwards: starting from
// threshold 0, each step finds the largest v with fl(v-w[j]) <= t via a
// couple of math.Nextafter refinements around t+w[j]. Because weights are
// non-negative, a chain that has crossed zero stays crossed, so the
// chosen rank for any u is simply the first i with u <= bound[i] — and
// the bounds are non-decreasing, which makes that a search over a sorted
// array.
//
// Draws then go through a guide table: bucket k of m spans the u-range
// [k·total/m, (k+1)·total/m) and stores the first rank whose bound can
// fall in it, so the forward scan after the table lookup touches O(1)
// bounds in expectation for any weight shape with m = n buckets.
type Sampler struct {
	total  float64
	scale  float64 // m / total, the bucket index multiplier
	bounds []float64
	guide  []int32
}

// NewSampler builds the exact-inverse sampler for the given weights and
// an explicitly supplied total (the running float64 sum in weight order,
// exactly as the legacy scan accumulated it). It returns nil when the
// weights cannot be inverted safely — a non-finite or negative weight, or
// a non-positive total — in which case the caller should keep the linear
// scan, which is the behavioral reference for those degenerate inputs.
func NewSampler(w []float64, total float64) *Sampler {
	if len(w) == 0 || !(total > 0) || math.IsInf(total, 1) {
		return nil
	}
	for _, x := range w {
		if !(x >= 0) || math.IsInf(x, 1) {
			return nil
		}
	}
	s := &Sampler{total: total}
	s.bounds = make([]float64, len(w)-1)
	for i := range s.bounds {
		// Invert the subtraction chain for ranks i..0: t is the largest
		// value the running difference may hold after step j+1 while the
		// chain still crosses zero by step i.
		t := 0.0
		for j := i; j >= 0; j-- {
			t = largestPre(t, w[j])
		}
		s.bounds[i] = t
	}
	// Defensive: the bounds are provably non-decreasing for the inputs
	// accepted above; a violation would break the sorted-search draw, so
	// refuse rather than mis-sample.
	for i := 1; i < len(s.bounds); i++ {
		if s.bounds[i] < s.bounds[i-1] {
			return nil
		}
	}
	m := len(w)
	s.scale = float64(m) / total
	s.guide = make([]int32, m)
	i := 0
	for k := range s.guide {
		// First rank whose bound lands in bucket k or later, using the
		// same rounded bound*scale expression the draw applies to u: any
		// rank the draw could need for a u in bucket k is at or after it.
		for i < len(s.bounds) && int(s.bounds[i]*s.scale) < k {
			i++
		}
		s.guide[k] = int32(i)
	}
	return s
}

// largestPre returns the largest float64 v with fl(v-w) <= t.
func largestPre(t, w float64) float64 {
	v := t + w
	for v-w <= t {
		v = math.Nextafter(v, math.Inf(1))
	}
	for v-w > t {
		v = math.Nextafter(v, math.Inf(-1))
	}
	return v
}

// Draw consumes exactly one rng.Float64 — the same single draw the legacy
// scan consumed — and returns the chosen rank.
func (s *Sampler) Draw(rng *sim.RNG) int {
	return s.at(rng.Float64() * s.total)
}

// at returns the rank the legacy subtraction scan would choose for u.
func (s *Sampler) at(u float64) int {
	k := int(u * s.scale)
	if k >= len(s.guide) {
		k = len(s.guide) - 1 // u == total after rounding: last bucket
	}
	if k < 0 {
		k = 0
	}
	i := int(s.guide[k])
	for i < len(s.bounds) && u > s.bounds[i] {
		i++
	}
	return i // i == len(bounds): fell through every weight → last rank
}
