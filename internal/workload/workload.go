// Package workload generates the streaming workloads the paper evaluates:
// constant-bit-rate media streams drawn from a catalog with an X:Y
// popularity distribution ("X% of the titles receive Y% of the accesses").
//
// The paper's media classes (its §5): MP3 audio at 10 KB/s, DivX/MPEG-4 at
// 100 KB/s, DVD/MPEG-2 at 1 MB/s, and HDTV at 10 MB/s.
package workload

import (
	"fmt"
	"math"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
)

// MediaClass is a named CBR stream type.
type MediaClass struct {
	Name     string
	BitRate  units.ByteRate // B̄ for this class
	Duration time.Duration  // typical title length
}

// The paper's four media classes.
var (
	MP3  = MediaClass{Name: "mp3", BitRate: 10 * units.KBPS, Duration: 4 * time.Minute}
	DivX = MediaClass{Name: "DivX", BitRate: 100 * units.KBPS, Duration: 100 * time.Minute}
	DVD  = MediaClass{Name: "DVD", BitRate: 1 * units.MBPS, Duration: 110 * time.Minute}
	HDTV = MediaClass{Name: "HDTV", BitRate: 10 * units.MBPS, Duration: 60 * time.Minute}
)

// Classes lists the paper's media classes in bit-rate order.
func Classes() []MediaClass { return []MediaClass{MP3, DivX, DVD, HDTV} }

// Size returns the storage footprint of one title of this class.
func (m MediaClass) Size() units.Bytes {
	return units.BytesIn(m.BitRate, m.Duration)
}

// Title is one piece of content in the catalog.
type Title struct {
	ID      int
	Class   MediaClass
	Size    units.Bytes
	Rank    int     // popularity rank, 0 = most popular
	Weight  float64 // normalized access probability
	StartLB int64   // placement: first logical block on the backing store
}

// Catalog is a set of titles with a popularity distribution.
type Catalog struct {
	Titles []Title
	total  float64

	// sampler serves Pick in O(1) per draw; nil for degenerate weight
	// vectors (non-finite or negative), which keep the linear scan.
	sampler *Sampler
}

// XYDistribution is the paper's popularity model: X% of titles receive Y%
// of accesses, with uniform access within each group (its §5.2).
type XYDistribution struct {
	X, Y float64 // percentages in (0,100]
}

// Validate checks the distribution.
func (d XYDistribution) Validate() error {
	if d.X <= 0 || d.X > 100 || d.Y <= 0 || d.Y > 100 {
		return fmt.Errorf("workload: X:Y distribution %g:%g out of range", d.X, d.Y)
	}
	return nil
}

// String renders the distribution the way the paper labels it ("10:90").
func (d XYDistribution) String() string {
	return fmt.Sprintf("%g:%g", d.X, d.Y)
}

// PaperDistributions are the five popularity points of Figures 9 and 10.
func PaperDistributions() []XYDistribution {
	return []XYDistribution{{1, 99}, {5, 95}, {10, 90}, {20, 80}, {50, 50}}
}

// Weights returns per-rank access probabilities for n titles: the top
// ⌈X%·n⌉ titles split Y% of accesses uniformly; the rest split the
// remainder uniformly.
func (d XYDistribution) Weights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	hot := int(float64(n)*d.X/100 + 0.999999)
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	w := make([]float64, n)
	hotShare := d.Y / 100
	coldShare := 1 - hotShare
	for i := range w {
		if i < hot {
			w[i] = hotShare / float64(hot)
		} else {
			w[i] = coldShare / float64(n-hot)
		}
	}
	if hot == n {
		for i := range w {
			w[i] = 1 / float64(n)
		}
	}
	return w
}

// Zipf returns per-rank probabilities w_i ∝ 1/(i+1)^s, a common
// alternative popularity model included for sensitivity studies.
func Zipf(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// NewCatalog builds n titles of class c ranked by popularity weights w
// (len(w) == n) and lays them out contiguously from block 0 of a store
// with the given block size.
func NewCatalog(n int, c MediaClass, w []float64, blockSize units.Bytes) (*Catalog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: catalog needs at least one title")
	}
	if len(w) != n {
		return nil, fmt.Errorf("workload: %d weights for %d titles", len(w), n)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("workload: non-positive block size")
	}
	cat := &Catalog{Titles: make([]Title, n)}
	var lbn int64
	for i := 0; i < n; i++ {
		size := c.Size()
		blocks := int64(size / blockSize)
		if blocks < 1 {
			blocks = 1
		}
		cat.Titles[i] = Title{
			ID:      i,
			Class:   c,
			Size:    size,
			Rank:    i,
			Weight:  w[i],
			StartLB: lbn,
		}
		cat.total += w[i]
		lbn += blocks
	}
	cat.sampler = NewSampler(w, cat.total)
	return cat, nil
}

// TotalSize returns the catalog's storage footprint (the paper's
// Size_disk: "the total storage required for all the streams serviced").
func (c *Catalog) TotalSize() units.Bytes {
	var s units.Bytes
	for _, t := range c.Titles {
		s += t.Size
	}
	return s
}

// Pick draws a title according to the popularity weights. The draw is
// O(1) in the catalog size (see Sampler) and byte-identical to the linear
// subtraction scan it replaced, which survives as pickLinear — both the
// behavioral reference for the equivalence tests and the fallback for
// weight vectors the sampler refuses (non-finite or negative weights).
func (c *Catalog) Pick(rng *sim.RNG) *Title {
	if c.sampler != nil {
		return &c.Titles[c.sampler.Draw(rng)]
	}
	return c.pickLinear(rng)
}

// pickLinear is the legacy draw: one Float64 scaled to the weight total,
// walked down the weights until it crosses zero.
func (c *Catalog) pickLinear(rng *sim.RNG) *Title {
	u := rng.Float64() * c.total
	for i := range c.Titles {
		u -= c.Titles[i].Weight
		if u <= 0 {
			return &c.Titles[i]
		}
	}
	return &c.Titles[len(c.Titles)-1]
}

// pickLinearAt resolves an explicit u against the subtraction scan —
// the oracle the sampler equivalence tests probe boundary-by-boundary.
func (c *Catalog) pickLinearAt(u float64) int {
	for i := range c.Titles {
		u -= c.Titles[i].Weight
		if u <= 0 {
			return i
		}
	}
	return len(c.Titles) - 1
}

// TopFraction returns how much access probability the most popular
// fraction p of titles captures — the analytic hit rate for a cache that
// stores exactly that prefix.
func (c *Catalog) TopFraction(p float64) float64 {
	if p <= 0 {
		return 0
	}
	n := int(float64(len(c.Titles))*p + 0.999999)
	if n > len(c.Titles) {
		n = len(c.Titles)
	}
	var h float64
	for i := 0; i < n; i++ {
		h += c.Titles[i].Weight
	}
	return h / c.total
}
