package workload

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
)

func TestMediaClassesMatchPaper(t *testing.T) {
	want := map[string]units.ByteRate{
		"mp3":  10 * units.KBPS,
		"DivX": 100 * units.KBPS,
		"DVD":  1 * units.MBPS,
		"HDTV": 10 * units.MBPS,
	}
	for _, c := range Classes() {
		if c.BitRate != want[c.Name] {
			t.Errorf("%s bit-rate = %v, want %v", c.Name, c.BitRate, want[c.Name])
		}
	}
}

func TestMediaClassSize(t *testing.T) {
	// A 110-minute DVD title at 1MB/s is 6.6GB.
	if got := DVD.Size(); got != 6600*units.MB {
		t.Errorf("DVD size = %v, want 6.6GB", got)
	}
}

func TestXYValidate(t *testing.T) {
	for _, d := range PaperDistributions() {
		if err := d.Validate(); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
	for _, d := range []XYDistribution{{0, 50}, {50, 0}, {101, 50}, {50, 101}, {-1, 50}} {
		if err := d.Validate(); err == nil {
			t.Errorf("%v accepted", d)
		}
	}
}

func TestXYString(t *testing.T) {
	if got := (XYDistribution{10, 90}).String(); got != "10:90" {
		t.Errorf("String = %q", got)
	}
}

func TestXYWeightsSumToOne(t *testing.T) {
	for _, d := range PaperDistributions() {
		w := d.Weights(1000)
		var sum float64
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: weights sum to %v", d, sum)
		}
	}
}

func TestXYWeightsSkew(t *testing.T) {
	// 10:90 over 100 titles: top 10 each get 9%, rest get ~0.11%.
	w := (XYDistribution{10, 90}).Weights(100)
	if math.Abs(w[0]-0.09) > 1e-12 {
		t.Errorf("hot weight = %v, want 0.09", w[0])
	}
	if math.Abs(w[99]-0.1/90) > 1e-12 {
		t.Errorf("cold weight = %v, want %v", w[99], 0.1/90)
	}
	if w[9] <= w[10] {
		t.Error("boundary not monotone")
	}
}

func TestXYWeightsUniformAt5050(t *testing.T) {
	w := (XYDistribution{50, 50}).Weights(10)
	for i := 1; i < len(w); i++ {
		if math.Abs(w[i]-w[0]) > 1e-12 {
			t.Fatalf("50:50 weights not uniform: %v", w)
		}
	}
}

func TestXYWeightsEdgeCases(t *testing.T) {
	if w := (XYDistribution{10, 90}).Weights(0); w != nil {
		t.Error("Weights(0) should be nil")
	}
	w := (XYDistribution{1, 99}).Weights(1)
	if len(w) != 1 || math.Abs(w[0]-1) > 1e-12 {
		t.Errorf("single-title weights = %v", w)
	}
}

func TestZipf(t *testing.T) {
	w := Zipf(100, 1)
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Fatal("zipf weights not decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("zipf sum = %v", sum)
	}
	if math.Abs(w[0]/w[1]-2) > 1e-9 {
		t.Errorf("zipf(1) ratio w0/w1 = %v, want 2", w[0]/w[1])
	}
	if Zipf(0, 1) != nil {
		t.Error("Zipf(0) should be nil")
	}
}

func TestNewCatalog(t *testing.T) {
	d := XYDistribution{10, 90}
	cat, err := NewCatalog(50, DVD, d.Weights(50), 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Titles) != 50 {
		t.Fatalf("titles = %d", len(cat.Titles))
	}
	// Titles laid out contiguously without overlap.
	for i := 1; i < len(cat.Titles); i++ {
		prev, cur := cat.Titles[i-1], cat.Titles[i]
		prevBlocks := int64(prev.Size / 512)
		if cur.StartLB != prev.StartLB+prevBlocks {
			t.Fatalf("title %d starts at %d, want %d", i, cur.StartLB, prev.StartLB+prevBlocks)
		}
	}
	if got := cat.TotalSize(); got != 50*DVD.Size() {
		t.Errorf("TotalSize = %v", got)
	}
}

func TestNewCatalogErrors(t *testing.T) {
	if _, err := NewCatalog(0, DVD, nil, 512); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := NewCatalog(2, DVD, []float64{1}, 512); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := NewCatalog(1, DVD, []float64{1}, 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestCatalogPickFollowsWeights(t *testing.T) {
	d := XYDistribution{10, 90}
	n := 100
	cat, _ := NewCatalog(n, MP3, d.Weights(n), 512)
	rng := sim.NewRNG(5)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if cat.Pick(rng).Rank < 10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("hot fraction = %v, want ≈0.9", frac)
	}
}

func TestTopFractionMatchesEquation11(t *testing.T) {
	// Paper Eq 11 with X:Y popularity: caching p ≤ X of the titles yields
	// h = (p/X)·Y; caching p > X yields h = Y + (p-X)/(100-X)·(100-Y).
	d := XYDistribution{10, 90}
	n := 1000
	cat, _ := NewCatalog(n, MP3, d.Weights(n), 512)
	// p = 5% (< X): h = 5/10*0.9 = 0.45
	if h := cat.TopFraction(0.05); math.Abs(h-0.45) > 1e-9 {
		t.Errorf("h(5%%) = %v, want 0.45", h)
	}
	// p = 10% (= X): h = 0.9
	if h := cat.TopFraction(0.10); math.Abs(h-0.90) > 1e-9 {
		t.Errorf("h(10%%) = %v, want 0.90", h)
	}
	// p = 55%: h = 0.9 + (45/90)*0.1 = 0.95
	if h := cat.TopFraction(0.55); math.Abs(h-0.95) > 1e-9 {
		t.Errorf("h(55%%) = %v, want 0.95", h)
	}
	if h := cat.TopFraction(1); math.Abs(h-1) > 1e-9 {
		t.Errorf("h(100%%) = %v, want 1", h)
	}
	if h := cat.TopFraction(0); h != 0 {
		t.Errorf("h(0) = %v", h)
	}
}

func TestGeneratorDraw(t *testing.T) {
	d := XYDistribution{20, 80}
	cat, _ := NewCatalog(100, DivX, d.Weights(100), 512)
	g := NewGenerator(cat, 1)
	set, err := g.Draw(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Streams) != 500 {
		t.Fatalf("streams = %d", len(set.Streams))
	}
	if set.AvgBitRate() != DivX.BitRate {
		t.Errorf("avg bit-rate = %v", set.AvgBitRate())
	}
	if set.AggregateRate() != units.ByteRate(500*float64(DivX.BitRate)) {
		t.Errorf("aggregate = %v", set.AggregateRate())
	}
	for _, s := range set.Streams {
		if s.Offset < 0 || s.Offset >= s.Title.Size {
			t.Fatalf("offset %v outside title of %v", s.Offset, s.Title.Size)
		}
	}
}

func TestGeneratorDrawErrors(t *testing.T) {
	cat, _ := NewCatalog(10, MP3, Zipf(10, 1), 512)
	g := NewGenerator(cat, 1)
	if _, err := g.Draw(0); err == nil {
		t.Error("Draw(0) accepted")
	}
	if _, err := g.DrawUniform(-1); err == nil {
		t.Error("DrawUniform(-1) accepted")
	}
	if _, err := g.DrawRange(-1, 10); err == nil {
		t.Error("DrawRange(-1, ...) accepted")
	}
}

// TestDrawRangePartitionAware: DrawRange(0, n) is exactly Draw(n), and a
// nonzero firstID shifts only the IDs — titles and offsets stay the
// draws the seed dictates. Partitions built this way have globally unique
// IDs and per-seed-independent populations.
func TestDrawRangePartitionAware(t *testing.T) {
	d := XYDistribution{10, 90}
	cat, _ := NewCatalog(100, DVD, d.Weights(100), 512)
	base, err := NewGenerator(cat, 42).Draw(50)
	if err != nil {
		t.Fatal(err)
	}
	ranged, err := NewGenerator(cat, 42).DrawRange(1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Streams {
		b, r := base.Streams[i], ranged.Streams[i]
		if r.ID != 1000+i {
			t.Fatalf("stream %d: ID = %d, want %d", i, r.ID, 1000+i)
		}
		if b.Title.ID != r.Title.ID || b.Offset != r.Offset || b.BitRate != r.BitRate {
			t.Fatalf("stream %d: DrawRange draw differs from Draw: %+v vs %+v", i, r, b)
		}
	}
	zero, err := NewGenerator(cat, 42).DrawRange(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, base) {
		t.Error("DrawRange(0, n) differs from Draw(n)")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	d := XYDistribution{10, 90}
	cat, _ := NewCatalog(100, DVD, d.Weights(100), 512)
	a, _ := NewGenerator(cat, 42).Draw(100)
	b, _ := NewGenerator(cat, 42).Draw(100)
	for i := range a.Streams {
		if a.Streams[i].Title.ID != b.Streams[i].Title.ID {
			t.Fatal("same seed produced different draws")
		}
	}
}

func TestHitCount(t *testing.T) {
	d := XYDistribution{10, 90}
	cat, _ := NewCatalog(100, MP3, d.Weights(100), 512)
	g := NewGenerator(cat, 7)
	set, _ := g.Draw(10000)
	hits := set.HitCount(10)
	frac := float64(hits) / 10000
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("cache-prefix hit fraction = %v, want ≈0.9", frac)
	}
	if set.HitCount(0) != 0 {
		t.Error("HitCount(0) != 0")
	}
	if set.HitCount(100) != 10000 {
		t.Error("HitCount(all) != N")
	}
}

func TestVBRTraceAndCushion(t *testing.T) {
	rng := sim.NewRNG(3)
	trace := VBRTrace(rng, 1*units.MBPS, 0.3, 1000)
	if len(trace) != 1000 {
		t.Fatalf("trace length = %d", len(trace))
	}
	var mean float64
	for _, r := range trace {
		if r <= 0 {
			t.Fatal("non-positive VBR rate")
		}
		mean += float64(r)
	}
	mean /= float64(len(trace))
	if math.Abs(mean-1e6) > 0.05e6 {
		t.Errorf("trace mean = %v, want ≈1MB/s", units.ByteRate(mean))
	}
	cushion := CushionFor(trace, time.Second)
	if cushion <= 0 {
		t.Error("VBR trace needs a positive cushion")
	}
	// A CBR "trace" needs no cushion.
	flat := []units.ByteRate{1e6, 1e6, 1e6}
	if c := CushionFor(flat, time.Second); c != 0 {
		t.Errorf("CBR cushion = %v, want 0", c)
	}
	if c := CushionFor(nil, time.Second); c != 0 {
		t.Errorf("empty cushion = %v", c)
	}
}

// Property: TopFraction is monotone nondecreasing in p and bounded by 1.
func TestTopFractionMonotoneProperty(t *testing.T) {
	d := XYDistribution{5, 95}
	cat, _ := NewCatalog(200, MP3, d.Weights(200), 512)
	f := func(a, b uint8) bool {
		pa, pb := float64(a)/255, float64(b)/255
		if pa > pb {
			pa, pb = pb, pa
		}
		ha, hb := cat.TopFraction(pa), cat.TopFraction(pb)
		return ha <= hb+1e-12 && hb <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any strictly skewed X:Y (Y > X; at Y = X the ⌈X%·n⌉
// rounding can leave the hot group marginally under-weighted), weights
// are nonincreasing in rank.
func TestWeightsMonotoneProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		xv, yv := float64(x%98)+1, float64(y%98)+1
		if yv < xv {
			xv, yv = yv, xv
		}
		if yv <= xv {
			yv = xv + 1 // strict skew; covers the ceiling error at n=150
		}
		d := XYDistribution{X: xv, Y: yv}
		w := d.Weights(150)
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1]+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
