// Package shard scales the single-threaded simulation kernel to multiple
// cores by partitioning a large run into independent sub-simulations.
//
// The unit of determinism is the partition: a scenario fixes how many
// partitions it has and what each one simulates, every partition gets its
// own sim.Engine (inside its own server rig) and a seed that is a pure
// function of (rootSeed, partition index) — the same RNG.Split discipline
// the experiment suite uses for per-experiment seeds. The unit of
// parallelism is the shard: Run spawns one goroutine per shard, stripes
// partitions across them (partition p belongs to shard p mod shards), and
// gates execution at GOMAXPROCS so each running partition owns a core.
//
// Because partition results depend only on (rootSeed, partition) and the
// merge folds them in partition order, the merged Result — and any
// artifact rendered from it — is byte-identical at every shard count; the
// shard count only chooses how much hardware the run uses. CI enforces
// this with a -shards=1 vs -shards=8 artifact diff, the same way it pins
// the experiment suite's worker-count independence.
package shard

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"memstream/internal/server"
	"memstream/internal/sim"
	"memstream/internal/units"
)

// Plan describes a sharded run: a fixed number of independent partitions
// and a builder that yields each partition's server configuration.
type Plan struct {
	Name string

	// Partitions is the number of independent sub-simulations. It is part
	// of the scenario — changing it changes the system being simulated —
	// and is deliberately decoupled from the shard count, which only
	// changes how the work is executed.
	Partitions int

	// Build returns partition part's server configuration. The runner
	// overwrites Config.Seed with the partition seed it passes in, so a
	// builder can derive auxiliary parameters from seed but cannot
	// accidentally correlate partitions.
	Build func(part int, seed uint64) (server.Config, error)
}

// SeedFor derives partition part's seed from the root seed: FNV-1a over
// the partition key feeds an RNG.Split, so the seed is a pure function of
// (rootSeed, part) — independent of shard count, execution order, and
// every other partition. This mirrors the experiment suite's seedFor
// discipline (keyed there by experiment ID).
func SeedFor(rootSeed uint64, part int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "shard/%d", part)
	return sim.NewRNG(rootSeed ^ h.Sum64()).Split().Uint64()
}

// PartReport is one partition's run record.
type PartReport struct {
	Part  int
	Shard int // the goroutine stripe that executed it: Part mod shards
	Seed  uint64
	Wall  time.Duration // wall clock of the partition's server.Run
	Err   string

	// Result is the partition's simulation outcome; zero when Err is set.
	Result server.Result
}

// ShardReport aggregates one shard goroutine's execution: the partitions
// it ran, the events they fired, and the wall clock it spent simulating
// (the sum of its partitions' walls, which excludes time spent waiting
// for a core).
type ShardReport struct {
	Shard  int
	Parts  int
	Events uint64
	Wall   time.Duration
}

// EventsPerSec is this shard's simulation rate over its busy time.
func (s ShardReport) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// Result is the deterministic merge of every partition's server.Result.
// Counters sum; SimulatedTime is the longest partition horizon (the
// partitions run concurrently in the modeled system); DRAMHighWater sums
// because the partitions' footprints coexist; MeanDiskUtil averages the
// per-partition disk utilizations; WorstMarginP5 is the smallest
// 5th-percentile delivery margin any partition saw. The fold visits
// partitions in index order, so the merge is independent of completion
// order and shard count.
type Result struct {
	Partitions int
	Streams    int
	Events     uint64
	Cycles     int64

	Underflows     int
	UnderflowBytes units.Bytes

	DiskIOs uint64
	MEMSIOs uint64

	SimulatedTime time.Duration
	DRAMHighWater units.Bytes
	DiskBusy      time.Duration
	MeanDiskUtil  float64
	WorstMarginP5 time.Duration
}

// Render produces the merged artifact text. It contains no wall-clock or
// shard-count dependent values: two runs of the same plan and seed render
// identically at any shard count — the property the CI artifact diff pins.
func (r Result) Render() string {
	return fmt.Sprintf(
		"partitions=%d streams=%d\n"+
			"events=%d cycles=%d disk_ios=%d mems_ios=%d\n"+
			"underflows=%d underflow_bytes=%v\n"+
			"simulated=%v dram_high_water=%v disk_busy=%v mean_disk_util=%.4f\n"+
			"worst_margin_p5=%v\n",
		r.Partitions, r.Streams,
		r.Events, r.Cycles, r.DiskIOs, r.MEMSIOs,
		r.Underflows, r.UnderflowBytes,
		r.SimulatedTime, r.DRAMHighWater, r.DiskBusy, r.MeanDiskUtil,
		r.WorstMarginP5)
}

// Report is one sharded run: the merged result plus per-partition and
// per-shard execution records.
type Report struct {
	Plan       string
	Partitions int
	Shards     int
	RootSeed   uint64
	Wall       time.Duration // end-to-end wall clock of the whole run

	Merged Result
	Parts  []PartReport
	Stripe []ShardReport
}

// WallEventsPerSec is the end-to-end simulation rate: merged events over
// the run's total wall clock. On a machine with at least one core per
// shard this approaches AggregateEventsPerSec; with fewer cores the
// shards timeshare and this number stays near the single-core rate.
func (r Report) WallEventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Merged.Events) / r.Wall.Seconds()
}

// AggregateEventsPerSec sums the per-shard simulation rates: the rate the
// shard engines sustain given a core each. Execution is gated at
// GOMAXPROCS, so each shard's busy wall is measured uncontended and the
// aggregate is a hardware-independent capacity figure — the events/s the
// run reaches once the host has as many cores as shards.
func (r Report) AggregateEventsPerSec() float64 {
	var sum float64
	for _, s := range r.Stripe {
		sum += s.EventsPerSec()
	}
	return sum
}

// Run executes the plan's partitions on the given number of shard
// goroutines and deterministically merges their results. Shard counts
// below 1 run as 1; counts above the partition count are clamped. A
// partition failure does not abort the other partitions; Run returns the
// lowest-indexed failure alongside the full report.
func Run(plan Plan, rootSeed uint64, shards int) (Report, error) {
	if plan.Partitions <= 0 {
		return Report{}, fmt.Errorf("shard: plan %q needs at least one partition", plan.Name)
	}
	if plan.Build == nil {
		return Report{}, fmt.Errorf("shard: plan %q has no Build function", plan.Name)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > plan.Partitions {
		shards = plan.Partitions
	}

	rep := Report{
		Plan:       plan.Name,
		Partitions: plan.Partitions,
		Shards:     shards,
		RootSeed:   rootSeed,
		Parts:      make([]PartReport, plan.Partitions),
		Stripe:     make([]ShardReport, shards),
	}

	// Gate concurrent partitions at GOMAXPROCS: a running partition owns a
	// core, so per-partition walls measure uncontended simulation time and
	// the per-shard rates stay meaningful on any machine.
	slots := runtime.GOMAXPROCS(0)
	if slots > shards {
		slots = shards
	}
	tokens := make(chan struct{}, slots)

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// One arena per shard goroutine: partition p+1 runs in the
			// storage partition p grew, so the steady-state loop stops
			// allocating per partition. Arenas are goroutine-local, never
			// shared, and arena reuse is pinned byte-identical to
			// arena-free runs by the goldens and the 1-vs-8 shard gate.
			arena := server.NewArena()
			for p := s; p < plan.Partitions; p += shards {
				tokens <- struct{}{}
				seed := SeedFor(rootSeed, p)
				pr := PartReport{Part: p, Shard: s, Seed: seed}
				cfg, err := plan.Build(p, seed)
				if err == nil {
					cfg.Seed = seed
					cfg.Arena = arena
					runStart := time.Now()
					pr.Result, err = server.Run(cfg)
					pr.Wall = time.Since(runStart)
				}
				if err != nil {
					pr.Err = err.Error()
				}
				rep.Parts[p] = pr
				<-tokens
			}
		}(s)
	}
	wg.Wait()
	rep.Wall = time.Since(start)

	// Deterministic merge: fold partitions in index order. Completion
	// order and shard count cannot influence any merged value.
	for s := range rep.Stripe {
		rep.Stripe[s].Shard = s
	}
	var firstErr error
	var utilSum float64
	worstMargin := time.Duration(1<<63 - 1)
	m := &rep.Merged
	m.Partitions = plan.Partitions
	for p := range rep.Parts {
		pr := &rep.Parts[p]
		st := &rep.Stripe[pr.Shard]
		st.Parts++
		st.Events += pr.Result.Events
		st.Wall += pr.Wall
		if pr.Err != "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard: partition %d: %s", p, pr.Err)
			}
			continue
		}
		m.Streams += pr.Result.Streams
		m.Events += pr.Result.Events
		m.Cycles += pr.Result.Cycles
		m.Underflows += pr.Result.Underflows
		m.UnderflowBytes += pr.Result.UnderflowBytes
		m.DiskIOs += pr.Result.DiskIOs
		m.MEMSIOs += pr.Result.MEMSIOs
		m.DRAMHighWater += pr.Result.DRAMHighWater
		m.DiskBusy += pr.Result.DiskBusy
		utilSum += pr.Result.DiskUtil
		if pr.Result.SimulatedTime > m.SimulatedTime {
			m.SimulatedTime = pr.Result.SimulatedTime
		}
		if pr.Result.MarginP5 < worstMargin {
			worstMargin = pr.Result.MarginP5
		}
	}
	if firstErr != nil {
		return rep, firstErr
	}
	m.MeanDiskUtil = utilSum / float64(plan.Partitions)
	m.WorstMarginP5 = worstMargin
	return rep, nil
}
