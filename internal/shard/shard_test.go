package shard

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"memstream/internal/server"
	"memstream/internal/units"
)

// testPlan is a small uniform scenario: 4 partitions of 128 DivX streams.
func testPlan(t *testing.T) Plan {
	t.Helper()
	plan, err := Uniform(512, 128, 100*units.KBPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partitions != 4 {
		t.Fatalf("Partitions = %d, want 4", plan.Partitions)
	}
	return plan
}

func TestSeedForPureFunction(t *testing.T) {
	if SeedFor(1, 0) != SeedFor(1, 0) {
		t.Error("SeedFor not deterministic")
	}
	seen := map[uint64]int{}
	for p := 0; p < 100; p++ {
		s := SeedFor(1, p)
		if prev, dup := seen[s]; dup {
			t.Fatalf("partitions %d and %d collide on seed %d", prev, p, s)
		}
		seen[s] = p
	}
	if SeedFor(1, 5) == SeedFor(2, 5) {
		t.Error("root seed does not influence partition seed")
	}
}

// TestRunDeterministicAcrossShardCounts is the core contract: the merged
// result and every per-partition result are identical however many shard
// goroutines execute the plan — including a shard count that does not
// divide the partition count. Run under -race this also exercises the
// concurrent execution path.
func TestRunDeterministicAcrossShardCounts(t *testing.T) {
	plan := testPlan(t)
	base, err := Run(plan, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Merged.Streams != 512 {
		t.Errorf("merged streams = %d, want 512", base.Merged.Streams)
	}
	if base.Merged.Events == 0 || base.Merged.Cycles == 0 {
		t.Errorf("merged run fired no events/cycles: %+v", base.Merged)
	}
	for _, shards := range []int{2, 3, 4, 8} {
		rep, err := Run(plan, 42, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(rep.Merged, base.Merged) {
			t.Errorf("shards=%d: merged result differs:\n got %+v\nwant %+v", shards, rep.Merged, base.Merged)
		}
		if got, want := rep.Merged.Render(), base.Merged.Render(); got != want {
			t.Errorf("shards=%d: rendered artifact differs:\n got %q\nwant %q", shards, got, want)
		}
		for p := range rep.Parts {
			if rep.Parts[p].Seed != base.Parts[p].Seed {
				t.Errorf("shards=%d: partition %d seed %d != %d", shards, p, rep.Parts[p].Seed, base.Parts[p].Seed)
			}
			if !reflect.DeepEqual(rep.Parts[p].Result, base.Parts[p].Result) {
				t.Errorf("shards=%d: partition %d result differs", shards, p)
			}
		}
	}
}

func TestRunStripesAndClamping(t *testing.T) {
	plan := testPlan(t)
	rep, err := Run(plan, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stripe) != 3 {
		t.Fatalf("stripes = %d, want 3", len(rep.Stripe))
	}
	// Partition p runs on shard p mod 3: counts 2,1,1.
	if rep.Stripe[0].Parts != 2 || rep.Stripe[1].Parts != 1 || rep.Stripe[2].Parts != 1 {
		t.Errorf("stripe part counts = %d,%d,%d, want 2,1,1",
			rep.Stripe[0].Parts, rep.Stripe[1].Parts, rep.Stripe[2].Parts)
	}
	var stripeEvents uint64
	for _, s := range rep.Stripe {
		stripeEvents += s.Events
		if s.Wall <= 0 {
			t.Errorf("stripe %d has no measured wall", s.Shard)
		}
	}
	if stripeEvents != rep.Merged.Events {
		t.Errorf("stripe events %d != merged events %d", stripeEvents, rep.Merged.Events)
	}
	if rep.AggregateEventsPerSec() <= 0 || rep.WallEventsPerSec() <= 0 {
		t.Error("throughput figures not positive")
	}

	// Shard counts above the partition count clamp.
	rep, err = Run(plan, 7, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != plan.Partitions {
		t.Errorf("shards = %d, want clamped to %d", rep.Shards, plan.Partitions)
	}
}

func TestRunPartitionFailure(t *testing.T) {
	plan := testPlan(t)
	inner := plan.Build
	plan.Build = func(part int, seed uint64) (server.Config, error) {
		if part == 2 {
			return server.Config{}, fmt.Errorf("injected failure in partition %d", part)
		}
		return inner(part, seed)
	}
	rep, err := Run(plan, 1, 2)
	if err == nil {
		t.Fatal("expected an error from partition 2")
	}
	if !strings.Contains(err.Error(), "partition 2") {
		t.Errorf("error %q does not name the failing partition", err)
	}
	// The other partitions still ran.
	for _, p := range []int{0, 1, 3} {
		if rep.Parts[p].Err != "" || rep.Parts[p].Result.Events == 0 {
			t.Errorf("partition %d did not complete: %+v", p, rep.Parts[p])
		}
	}
}

func TestUniformPartitionSizing(t *testing.T) {
	plan, err := Uniform(1000, 300, 100*units.KBPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partitions != 4 {
		t.Fatalf("Partitions = %d, want 4", plan.Partitions)
	}
	total := 0
	for p := 0; p < plan.Partitions; p++ {
		cfg, err := plan.Build(p, SeedFor(1, p))
		if err != nil {
			t.Fatal(err)
		}
		if cfg.FirstStreamID != p*300 {
			t.Errorf("partition %d FirstStreamID = %d, want %d", p, cfg.FirstStreamID, p*300)
		}
		total += cfg.N
	}
	if total != 1000 {
		t.Errorf("partition sizes sum to %d, want 1000", total)
	}
	if _, err := Uniform(0, 10, 0, 0); err == nil {
		t.Error("Uniform(0, ...) did not fail")
	}
	if _, err := Uniform(10, 0, 0, 0); err == nil {
		t.Error("Uniform(.., 0, ...) did not fail")
	}
}

func TestMillionStreamsPlanShape(t *testing.T) {
	plan := MillionStreams()
	if plan.Partitions != 245 {
		t.Errorf("Partitions = %d, want 245", plan.Partitions)
	}
	total := 0
	for p := 0; p < plan.Partitions; p++ {
		cfg, err := plan.Build(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += cfg.N
	}
	if total != 1_000_000 {
		t.Errorf("stream total = %d, want 1000000", total)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Plan{Partitions: 0}, 1, 1); err == nil {
		t.Error("empty plan did not fail")
	}
	if _, err := Run(Plan{Partitions: 1}, 1, 1); err == nil {
		t.Error("plan without Build did not fail")
	}
}

// withTimeout guards the scenario-duration plumbing: a partition given an
// explicit duration must simulate at least that horizon.
func TestUniformDuration(t *testing.T) {
	plan, err := Uniform(128, 128, 100*units.KBPS, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(plan, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The rig floors the horizon to whole IO cycles, so allow one cycle of
	// slack below the requested duration.
	if rep.Merged.SimulatedTime < 25*time.Second {
		t.Errorf("simulated %v, want ≈30s (≥25s after cycle quantization)", rep.Merged.SimulatedTime)
	}
}
