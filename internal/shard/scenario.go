package shard

import (
	"fmt"
	"time"

	"memstream/internal/disk"
	"memstream/internal/server"
	"memstream/internal/units"
)

// Uniform builds the scaling scenario: total streams split into
// fixed-size partitions of per streams each (the last partition takes the
// remainder), every partition an independent direct-mode server on its
// own FutureDisk with a disjoint global stream-ID range. The partition
// size — not the shard count — is what fixes the simulated system, so the
// same total is byte-identical however many shards execute it.
//
// duration is the per-partition simulated run length (0 = the direct
// mode's default of 10 IO cycles). rate is the per-stream bit rate; the
// default 10 KB/s MP3 class keeps a 4096-stream partition comfortably
// inside one FutureDisk's bandwidth, which is what lets the scenario
// scale to a million streams across ~250 partitions.
func Uniform(total, per int, rate units.ByteRate, duration time.Duration) (Plan, error) {
	if total <= 0 {
		return Plan{}, fmt.Errorf("shard: uniform scenario needs a positive stream total, got %d", total)
	}
	if per <= 0 {
		return Plan{}, fmt.Errorf("shard: uniform scenario needs a positive partition size, got %d", per)
	}
	if per > total {
		per = total
	}
	if rate <= 0 {
		rate = 10 * units.KBPS
	}
	parts := (total + per - 1) / per
	size := per // captured: Build must not race on loop state
	return Plan{
		Name:       fmt.Sprintf("uniform-%d", total),
		Partitions: parts,
		Build: func(part int, seed uint64) (server.Config, error) {
			n := size
			if part == parts-1 {
				n = total - size*(parts-1)
			}
			return server.Config{
				Mode:          server.Direct,
				Disk:          disk.FutureDisk(),
				N:             n,
				BitRate:       rate,
				Titles:        64,
				X:             10,
				Y:             90,
				FirstStreamID: part * size,
				Duration:      duration,
				Seed:          seed,
			}, nil
		},
	}, nil
}

// MillionStreams is the headline scaling scenario: one million concurrent
// 10 KB/s streams across 245 partitions of 4096 — a run size whose
// single-threaded wall clock makes iteration impractical, and the point
// ROADMAP item 1 targets. Run it with as many shards as the host has
// cores.
func MillionStreams() Plan {
	p, err := Uniform(1_000_000, 4096, 10*units.KBPS, 0)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	return p
}
