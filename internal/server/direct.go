package server

import (
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/units"
)

// runDirect simulates the baseline disk→DRAM server on the shared rig:
// Theorem 1 sizes the IO cycle, and one per-cycle stage enqueues every
// stream's IO into a C-LOOK batch on the disk chain.
func runDirect(cfg Config) (Result, error) {
	r, err := newRig(cfg)
	if err != nil {
		return Result{}, err
	}
	plan, err := model.DiskDirect(model.StreamLoad{N: cfg.N, BitRate: cfg.BitRate}, diskSpec(r.dsk))
	if err != nil {
		return Result{}, err
	}

	for i, st := range r.set.Streams {
		if _, err := r.addPlayer(i, r.diskPos(st), plan.Cycle); err != nil {
			return Result{}, err
		}
	}

	cycles, end, raw := r.horizon(plan.Cycle, 10, 2)
	ioBlocks := blocksFor(plan.IOSize, r.dsk.Geometry().BlockSize)

	// Interactive playback: alternate exponentially distributed play and
	// pause phases per stream. Pauses enter through the consumption
	// integral (rate zero while paused); the per-cycle scheduler below
	// additionally skips IOs for streams whose buffers are already full.
	r.shapeInteractive(plan.Cycle, raw)

	// VBR playback (footnote 1): each stream consumes along a per-cycle
	// rate profile with the configured coefficient of variation; the
	// cushion CushionFor computes is prefetched before playback begins.
	if err := r.shapeVBR(plan.Cycle, int(cycles)+2, nil); err != nil {
		return Result{}, err
	}

	diskBlocks := r.dsk.Geometry().Blocks
	diskChain := r.newChain()
	r.observe("disk", r.dsk, diskChain)
	scheduleCycle := func(int64) {
		sched := disk.NewScheduler(r.dsk, disk.CLook)
		for i := range r.players {
			p := r.players[i]
			if cfg.PausedFraction > 0 {
				// Interactive service: skip IOs for streams already
				// holding two cycles of data (paused, or just resumed) —
				// two cycles, because a resumed stream's next fill can be
				// almost a full cycle away. The reclaimed slots are the
				// bandwidth interactive servers redistribute.
				p.drainTo(r.eng.Now())
				if p.buf.Level() >= 2*plan.IOSize {
					continue
				}
			}
			blk := p.pos
			if blk+ioBlocks > diskBlocks {
				blk = 0
			}
			sched.Enqueue(device.Request{
				Op: device.Read, Block: blk, Blocks: ioBlocks,
				Stream: i, Issued: r.eng.Now(),
			})
			p.pos = (blk + ioBlocks) % diskBlocks
		}
		// One chain slot per queued request; each slot dispatches the
		// scheduler's best pending request at its start time.
		for pending := sched.Len(); pending > 0; pending-- {
			s := sched
			diskChain.submit(func(start time.Duration) time.Duration {
				comp, ok, err := s.Dispatch(start)
				if err != nil || !ok {
					return start
				}
				p := r.players[comp.Stream]
				p.drainTo(comp.Finish)
				if err := p.buf.Fill(units.Bytes(comp.Blocks) * r.dsk.Geometry().BlockSize); err != nil {
					// Pool is unlimited; Fill cannot fail.
					panic(err)
				}
				return comp.Finish
			})
		}
	}
	r.cycleLoop("disk", plan.Cycle, 0, cycles, scheduleCycle)
	r.finish(end)

	res := r.result(Direct, end, cycles)
	res.PlannedDRAM = plan.TotalDRAM
	res.FromDisk = cfg.N
	return res, nil
}
