package server

import (
	"time"

	"memstream/internal/device"
	"memstream/internal/model"
	"memstream/internal/units"
)

// directRun is the assembled direct-mode simulation: the rig, the Theorem
// 1 plan, the resolved horizon, and the per-cycle scheduling stage. It is
// factored out of runDirect so the cycle-walk benchmark can drive stage
// directly — the exact code the cycleLoop events execute — without the
// loop scaffolding or the final drain.
type directRun struct {
	r      *rig
	plan   model.DirectPlan
	cycles int64
	end    time.Duration
	stage  func(c int64)
}

// newDirect builds the baseline disk→DRAM server on the shared rig:
// Theorem 1 sizes the IO cycle, and one per-cycle stage enqueues every
// stream's IO into a C-LOOK batch on the disk chain.
func newDirect(cfg Config) (*directRun, error) {
	r, err := newRig(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := model.DiskDirect(model.StreamLoad{N: cfg.N, BitRate: cfg.BitRate}, diskSpec(r.dsk))
	if err != nil {
		return nil, err
	}

	for i, st := range r.set.Streams {
		r.addPlayer(i, r.diskPos(st), plan.Cycle)
	}

	cycles, end, raw := r.horizon(plan.Cycle, 10, 2)
	ioBlocks := blocksFor(plan.IOSize, r.dsk.Geometry().BlockSize)

	// Interactive playback: alternate exponentially distributed play and
	// pause phases per stream. Pauses enter through the consumption
	// integral (rate zero while paused); the per-cycle scheduler below
	// additionally skips IOs for streams whose buffers are already full.
	r.shapeInteractive(plan.Cycle, raw)

	// VBR playback (footnote 1): each stream consumes along a per-cycle
	// rate profile with the configured coefficient of variation; the
	// cushion CushionFor computes is prefetched before playback begins.
	if err := r.shapeVBR(plan.Cycle, int(cycles)+2, nil); err != nil {
		return nil, err
	}

	diskBlocks := r.dsk.Geometry().Blocks
	blockSize := r.dsk.Geometry().BlockSize
	diskChain := r.newChain()
	r.observe("disk", r.dsk, diskChain)

	// dispatch services one slot of a cycle's C-LOOK batch: the scheduler
	// picks its best pending request, the filled stream drains to the
	// completion time, and the scheduler returns to the pool once empty.
	dispatch := func(it *chainItem, start time.Duration) time.Duration {
		comp, ok, err := it.sched.Dispatch(start)
		r.putSched(it.sched)
		if err != nil || !ok {
			return start
		}
		i := comp.Stream
		r.drainTo(i, comp.Finish)
		r.fill(i, units.Bytes(comp.Blocks)*blockSize)
		return comp.Finish
	}
	stage := func(int64) {
		sched := r.getSched()
		ps := &r.ar.ps
		for i := 0; i < r.n; i++ {
			if cfg.PausedFraction > 0 {
				// Interactive service: skip IOs for streams already
				// holding two cycles of data (paused, or just resumed) —
				// two cycles, because a resumed stream's next fill can be
				// almost a full cycle away. The reclaimed slots are the
				// bandwidth interactive servers redistribute.
				r.drainTo(i, r.eng.Now())
				if ps.level[i] >= 2*plan.IOSize {
					continue
				}
			}
			blk := ps.pos[i]
			if blk+ioBlocks > diskBlocks {
				blk = 0
			}
			sched.Enqueue(device.Request{
				Op: device.Read, Block: blk, Blocks: ioBlocks,
				Stream: i, Issued: r.eng.Now(),
			})
			ps.pos[i] = (blk + ioBlocks) % diskBlocks
		}
		// One chain slot per queued request; each slot dispatches the
		// scheduler's best pending request at its start time.
		pending := sched.Len()
		if pending == 0 {
			r.putSched(sched) // every stream skipped this cycle
			return
		}
		for ; pending > 0; pending-- {
			diskChain.submit(chainItem{fn: dispatch, sched: sched})
		}
	}
	return &directRun{r: r, plan: plan, cycles: cycles, end: end, stage: stage}, nil
}

// runDirect simulates the baseline disk→DRAM server.
func runDirect(cfg Config) (Result, error) {
	d, err := newDirect(cfg)
	if err != nil {
		return Result{}, err
	}
	d.r.cycleLoop("disk", d.plan.Cycle, 0, d.cycles, d.stage)
	d.r.finish(d.end)

	res := d.r.result(Direct, d.end, d.cycles)
	res.PlannedDRAM = d.plan.TotalDRAM
	res.FromDisk = cfg.N
	return res, nil
}
