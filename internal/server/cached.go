package server

import (
	"time"

	"memstream/internal/bank"
	"memstream/internal/cache"
	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/dram"
	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// runCached simulates the MEMS-cache architecture of §3.2: popular titles
// are pinned on the bank (striped or replicated); streams whose title is
// pinned run on the cache's own IO cycle, the rest on the disk's.
func runCached(cfg Config) (Result, error) {
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		return Result{}, err
	}
	devs, err := bank.New(cfg.K, cfg.MEMS)
	if err != nil {
		return Result{}, err
	}
	var cb bank.CacheBank
	if cfg.CachePolicy == model.Striped {
		cb, err = bank.NewStripedBank(devs)
	} else {
		cb, err = bank.NewReplicatedBank(devs)
	}
	if err != nil {
		return Result{}, err
	}
	cat, err := newCatalog(cfg, dsk.Geometry().BlockSize)
	if err != nil {
		return Result{}, err
	}
	placement, err := cache.Plan(cat, cb.Capacity())
	if err != nil {
		return Result{}, err
	}

	eng := &sim.Engine{}
	pool := dram.NewPool(0)
	rng := sim.NewRNG(cfg.Seed)
	gen := workload.NewGenerator(cat, rng.Uint64())
	set, err := gen.Draw(cfg.N)
	if err != nil {
		return Result{}, err
	}

	// Split the population by placement.
	var cachedIDs, diskIDs []int
	for i, st := range set.Streams {
		if placement.Contains(st.Title.ID) {
			cachedIDs = append(cachedIDs, i)
		} else {
			diskIDs = append(diskIDs, i)
		}
	}

	// Per-side plans.
	var cachePlan, diskPlan model.DirectPlan
	if len(cachedIDs) > 0 {
		if cfg.CachePolicy == model.Striped {
			cachePlan, err = model.StripedCache(len(cachedIDs), cfg.K, cfg.BitRate, memsSpec(cfg.MEMS))
		} else {
			cachePlan, err = model.ReplicatedCache(len(cachedIDs), cfg.K, cfg.BitRate, memsSpec(cfg.MEMS))
		}
		if err != nil {
			return Result{}, err
		}
	}
	if len(diskIDs) > 0 {
		diskPlan, err = model.DiskDirect(
			model.StreamLoad{N: len(diskIDs), BitRate: cfg.BitRate}, diskSpec(dsk))
		if err != nil {
			return Result{}, err
		}
	}

	players := make([]*player, cfg.N)
	margins := sim.NewReservoir(8192, cfg.Seed^0xabcdef)
	blockSize := dsk.Geometry().BlockSize
	diskBlocks := dsk.Geometry().Blocks
	imageBlocks := blocksFor(placement.Used, blockSize)
	for i, st := range set.Streams {
		buf, err := pool.Open(i, cfg.BitRate)
		if err != nil {
			return Result{}, err
		}
		p := &player{buf: buf, margins: margins}
		if placement.Contains(st.Title.ID) {
			p.pos = int64(st.Offset/blockSize) % maxI64(imageBlocks, 1)
			p.startAt = cachePlan.Cycle
			if err := cb.Assign(i); err != nil {
				return Result{}, err
			}
		} else {
			p.pos = (st.Title.StartLB + int64(st.Offset/blockSize)) % diskBlocks
			p.startAt = diskPlan.Cycle
		}
		p.lastDrain = p.startAt
		players[i] = p
	}

	// Simulation horizon: enough cycles of the slower side.
	duration := cfg.Duration
	if duration <= 0 {
		longest := cachePlan.Cycle
		if diskPlan.Cycle > longest {
			longest = diskPlan.Cycle
		}
		duration = 10 * longest
	}
	end := duration

	// Disk side, as in Direct mode.
	if len(diskIDs) > 0 {
		diskChain := &chain{eng: eng}
		ioBlocks := blocksFor(diskPlan.IOSize, blockSize)
		diskCycles := int64(end / diskPlan.Cycle)
		if diskCycles < 2 {
			diskCycles = 2
		}
		scheduleCycle := func(c int64) {
			sched := disk.NewScheduler(dsk, disk.CLook)
			for _, i := range diskIDs {
				p := players[i]
				blk := p.pos
				if blk+ioBlocks > diskBlocks {
					blk = 0
				}
				sched.Enqueue(device.Request{
					Op: device.Read, Block: blk, Blocks: ioBlocks,
					Stream: i, Issued: eng.Now(),
				})
				p.pos = (blk + ioBlocks) % diskBlocks
			}
			for pending := sched.Len(); pending > 0; pending-- {
				s := sched
				diskChain.submit(func(start time.Duration) time.Duration {
					comp, ok, err := s.Dispatch(start)
					if err != nil || !ok {
						return start
					}
					p := players[comp.Stream]
					p.drainTo(comp.Finish)
					if err := p.buf.Fill(units.Bytes(comp.Blocks) * blockSize); err != nil {
						panic(err)
					}
					return comp.Finish
				})
			}
		}
		for c := int64(0); c < diskCycles; c++ {
			c := c
			eng.Schedule(time.Duration(c)*diskPlan.Cycle, func() { scheduleCycle(c) })
		}
	}

	// Cache side. The striped bank moves in lock-step, so one chain
	// serializes the whole bank; the replicated bank runs its k devices
	// independently, so each gets its own chain (that parallelism is
	// exactly Corollary 4's latency advantage).
	if len(cachedIDs) > 0 {
		chains := []*chain{{eng: eng}}
		chainOf := func(int) *chain { return chains[0] }
		if rb, ok := cb.(*bank.ReplicatedBank); ok {
			chains = make([]*chain, cfg.K)
			for i := range chains {
				chains[i] = &chain{eng: eng}
			}
			chainOf = func(stream int) *chain {
				dev, _ := rb.DeviceOf(stream)
				return chains[dev]
			}
		}
		ioBlocks := blocksFor(cachePlan.IOSize, devs[0].Geometry().BlockSize)
		cacheCycles := int64(end / cachePlan.Cycle)
		if cacheCycles < 2 {
			cacheCycles = 2
		}
		scheduleCacheCycle := func(c int64) {
			for _, i := range cachedIDs {
				i := i
				p := players[i]
				blk := p.pos
				if blk+ioBlocks > imageBlocks {
					blk = 0
				}
				p.pos = (blk + ioBlocks) % maxI64(imageBlocks, 1)
				chainOf(i).submit(func(start time.Duration) time.Duration {
					comp, err := cb.Read(start, i, blk, ioBlocks)
					if err != nil {
						return start
					}
					p.drainTo(comp.Finish)
					if err := p.buf.Fill(cachePlan.IOSize); err != nil {
						panic(err)
					}
					return comp.Finish
				})
			}
		}
		for c := int64(0); c < cacheCycles; c++ {
			c := c
			eng.Schedule(time.Duration(c)*cachePlan.Cycle, func() { scheduleCacheCycle(c) })
		}
	}

	eng.Schedule(end, func() {
		for _, p := range players {
			p.drainTo(end)
		}
	})
	eng.Run()

	res := Result{
		Mode:          Cached,
		Streams:       cfg.N,
		SimulatedTime: end,
		Events:        eng.Executed(),
		PlannedDRAM:   cachePlan.TotalDRAM + diskPlan.TotalDRAM,
		DRAMHighWater: pool.HighWater(),
		DiskBusy:      dsk.BusyTime(),
		DiskUtil:      float64(dsk.BusyTime()) / float64(end),
		DiskIOs:       dsk.Served(),
		FromCache:     len(cachedIDs),
		FromDisk:      len(diskIDs),
	}
	var memsBusy time.Duration
	for _, d := range devs {
		memsBusy += d.BusyTime()
		res.MEMSIOs += d.Served()
	}
	res.MEMSBusy = memsBusy
	res.MEMSUtil = float64(memsBusy) / (float64(end) * float64(cfg.K))
	for _, p := range players {
		res.Underflows += p.underflow
		res.UnderflowBytes += p.deficit
	}
	if m, ok := margins.Quantile(0.05); ok {
		res.MarginP5 = units.Seconds(m)
	}
	return res, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
