package server

import (
	"fmt"
	"time"

	"memstream/internal/bank"
	"memstream/internal/cache"
	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/units"
)

// runCached simulates the MEMS-cache architecture of §3.2 on the shared
// rig: popular titles are pinned on the bank (striped or replicated);
// streams whose title is pinned run on the cache's own IO cycle, the rest
// on the disk's. Two independent cycle stages drive the two sides.
func runCached(cfg Config) (Result, error) {
	r, err := newRig(cfg)
	if err != nil {
		return Result{}, err
	}
	devs, err := bank.New(cfg.K, cfg.Tier)
	if err != nil {
		return Result{}, err
	}
	var cb bank.CacheBank
	if cfg.CachePolicy == model.Striped {
		cb, err = bank.NewStripedBank(devs)
	} else {
		cb, err = bank.NewReplicatedBank(devs)
	}
	if err != nil {
		return Result{}, err
	}
	r.trackTier(devs...)
	placement, err := cache.Plan(r.cat, cb.Capacity())
	if err != nil {
		return Result{}, err
	}

	// Split the population by placement.
	var cachedIDs, diskIDs []int
	for i, st := range r.set.Streams {
		if placement.Contains(st.Title.ID) {
			cachedIDs = append(cachedIDs, i)
		} else {
			diskIDs = append(diskIDs, i)
		}
	}

	// Per-side plans.
	var cachePlan, diskPlan model.DirectPlan
	if len(cachedIDs) > 0 {
		if cfg.CachePolicy == model.Striped {
			cachePlan, err = model.StripedCache(len(cachedIDs), cfg.K, cfg.BitRate, tierSpec(cfg.Tier))
		} else {
			cachePlan, err = model.ReplicatedCache(len(cachedIDs), cfg.K, cfg.BitRate, tierSpec(cfg.Tier))
		}
		if err != nil {
			return Result{}, err
		}
	}
	if len(diskIDs) > 0 {
		diskPlan, err = model.DiskDirect(
			model.StreamLoad{N: len(diskIDs), BitRate: cfg.BitRate}, diskSpec(r.dsk))
		if err != nil {
			return Result{}, err
		}
	}

	blockSize := r.dsk.Geometry().BlockSize
	diskBlocks := r.dsk.Geometry().Blocks
	imageBlocks := blocksFor(placement.Used, blockSize)
	for i, st := range r.set.Streams {
		pos := (st.Title.StartLB + int64(st.Offset/blockSize)) % diskBlocks
		startAt := diskPlan.Cycle
		if placement.Contains(st.Title.ID) {
			pos = int64(st.Offset/blockSize) % max(imageBlocks, 1)
			startAt = cachePlan.Cycle
		}
		if _, err := r.addPlayer(i, pos, startAt); err != nil {
			return Result{}, err
		}
		if placement.Contains(st.Title.ID) {
			if err := cb.Assign(i); err != nil {
				return Result{}, err
			}
		}
	}

	// Simulation horizon: enough cycles of the slower side.
	longest := cachePlan.Cycle
	if diskPlan.Cycle > longest {
		longest = diskPlan.Cycle
	}
	end := r.span(10 * longest)
	// Cycles reports the busier side's scheduling rounds.
	var cycles int64

	// Disk side, as in Direct mode.
	if len(diskIDs) > 0 {
		diskChain := r.newChain()
		r.observe("disk", r.dsk, diskChain)
		ioBlocks := blocksFor(diskPlan.IOSize, blockSize)
		diskCycles := int64(end / diskPlan.Cycle)
		if diskCycles < 2 {
			diskCycles = 2
		}
		cycles = max(cycles, diskCycles)
		scheduleCycle := func(int64) {
			sched := disk.NewScheduler(r.dsk, disk.CLook)
			for _, i := range diskIDs {
				p := r.players[i]
				blk := p.pos
				if blk+ioBlocks > diskBlocks {
					blk = 0
				}
				sched.Enqueue(device.Request{
					Op: device.Read, Block: blk, Blocks: ioBlocks,
					Stream: i, Issued: r.eng.Now(),
				})
				p.pos = (blk + ioBlocks) % diskBlocks
			}
			for pending := sched.Len(); pending > 0; pending-- {
				s := sched
				diskChain.submit(func(start time.Duration) time.Duration {
					comp, ok, err := s.Dispatch(start)
					if err != nil || !ok {
						return start
					}
					p := r.players[comp.Stream]
					p.drainTo(comp.Finish)
					if err := p.buf.Fill(units.Bytes(comp.Blocks) * blockSize); err != nil {
						panic(err)
					}
					return comp.Finish
				})
			}
		}
		r.cycleLoop("disk", diskPlan.Cycle, 0, diskCycles, scheduleCycle)
	}

	// Cache side. The striped bank moves in lock-step, so one chain
	// serializes the whole bank; the replicated bank runs its k devices
	// independently, so each gets its own chain (that parallelism is
	// exactly Corollary 4's latency advantage).
	if len(cachedIDs) > 0 {
		chains := []*chain{r.newChain()}
		chainOf := func(int) *chain { return chains[0] }
		if rb, ok := cb.(*bank.ReplicatedBank); ok {
			chains = make([]*chain, cfg.K)
			for i := range chains {
				chains[i] = r.newChain()
			}
			chainOf = func(stream int) *chain {
				dev, _ := rb.DeviceOf(stream)
				return chains[dev]
			}
		}
		for i, d := range devs {
			ch := chains[0]
			if len(chains) == cfg.K {
				ch = chains[i]
			}
			r.observe(fmt.Sprintf("cache%d", i), d, ch)
		}
		ioBlocks := blocksFor(cachePlan.IOSize, devs[0].Geometry().BlockSize)
		cacheCycles := int64(end / cachePlan.Cycle)
		if cacheCycles < 2 {
			cacheCycles = 2
		}
		cycles = max(cycles, cacheCycles)
		scheduleCacheCycle := func(int64) {
			for _, i := range cachedIDs {
				i := i
				p := r.players[i]
				blk := p.pos
				if blk+ioBlocks > imageBlocks {
					blk = 0
				}
				p.pos = (blk + ioBlocks) % max(imageBlocks, 1)
				chainOf(i).submit(func(start time.Duration) time.Duration {
					comp, err := cb.Read(start, i, blk, ioBlocks)
					if err != nil {
						return start
					}
					p.drainTo(comp.Finish)
					if err := p.buf.Fill(cachePlan.IOSize); err != nil {
						panic(err)
					}
					r.noteCacheFill(cachePlan.IOSize)
					return comp.Finish
				})
			}
		}
		r.cycleLoop("cache", cachePlan.Cycle, 0, cacheCycles, scheduleCacheCycle)
	}

	r.finish(end)

	res := r.result(Cached, end, cycles)
	res.PlannedDRAM = cachePlan.TotalDRAM + diskPlan.TotalDRAM
	res.FromCache = len(cachedIDs)
	res.FromDisk = len(diskIDs)
	return res, nil
}
