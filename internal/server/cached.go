package server

import (
	"fmt"
	"time"

	"memstream/internal/bank"
	"memstream/internal/cache"
	"memstream/internal/device"
	"memstream/internal/model"
	"memstream/internal/units"
)

// runCached simulates the MEMS-cache architecture of §3.2 on the shared
// rig: popular titles are pinned on the bank (striped or replicated);
// streams whose title is pinned run on the cache's own IO cycle, the rest
// on the disk's. Two independent cycle stages drive the two sides.
func runCached(cfg Config) (Result, error) {
	r, err := newRig(cfg)
	if err != nil {
		return Result{}, err
	}
	devs, err := bank.New(cfg.K, cfg.Tier)
	if err != nil {
		return Result{}, err
	}
	var cb bank.CacheBank
	if cfg.CachePolicy == model.Striped {
		cb, err = bank.NewStripedBank(devs)
	} else {
		cb, err = bank.NewReplicatedBank(devs)
	}
	if err != nil {
		return Result{}, err
	}
	r.trackTier(devs...)
	placement, err := cache.Plan(r.cat, cb.Capacity())
	if err != nil {
		return Result{}, err
	}

	// Split the population by placement.
	var cachedIDs, diskIDs []int
	for i, st := range r.set.Streams {
		if placement.Contains(st.Title.ID) {
			cachedIDs = append(cachedIDs, i)
		} else {
			diskIDs = append(diskIDs, i)
		}
	}

	// Per-side plans.
	var cachePlan, diskPlan model.DirectPlan
	if len(cachedIDs) > 0 {
		if cfg.CachePolicy == model.Striped {
			cachePlan, err = model.StripedCache(len(cachedIDs), cfg.K, cfg.BitRate, tierSpec(cfg.Tier))
		} else {
			cachePlan, err = model.ReplicatedCache(len(cachedIDs), cfg.K, cfg.BitRate, tierSpec(cfg.Tier))
		}
		if err != nil {
			return Result{}, err
		}
	}
	if len(diskIDs) > 0 {
		diskPlan, err = model.DiskDirect(
			model.StreamLoad{N: len(diskIDs), BitRate: cfg.BitRate}, diskSpec(r.dsk))
		if err != nil {
			return Result{}, err
		}
	}

	blockSize := r.dsk.Geometry().BlockSize
	diskBlocks := r.dsk.Geometry().Blocks
	imageBlocks := blocksFor(placement.Used, blockSize)
	for i, st := range r.set.Streams {
		pos := (st.Title.StartLB + int64(st.Offset/blockSize)) % diskBlocks
		startAt := diskPlan.Cycle
		if placement.Contains(st.Title.ID) {
			pos = int64(st.Offset/blockSize) % max(imageBlocks, 1)
			startAt = cachePlan.Cycle
		}
		r.addPlayer(i, pos, startAt)
		if placement.Contains(st.Title.ID) {
			if err := cb.Assign(i); err != nil {
				return Result{}, err
			}
		}
	}

	// Simulation horizon: enough cycles of the slower side.
	longest := cachePlan.Cycle
	if diskPlan.Cycle > longest {
		longest = diskPlan.Cycle
	}
	end := r.span(10 * longest)
	// Cycles reports the busier side's scheduling rounds.
	var cycles int64

	// Disk side, as in Direct mode.
	if len(diskIDs) > 0 {
		diskChain := r.newChain()
		r.observe("disk", r.dsk, diskChain)
		ioBlocks := blocksFor(diskPlan.IOSize, blockSize)
		diskCycles := int64(end / diskPlan.Cycle)
		if diskCycles < 2 {
			diskCycles = 2
		}
		cycles = max(cycles, diskCycles)
		dispatch := func(it *chainItem, start time.Duration) time.Duration {
			comp, ok, err := it.sched.Dispatch(start)
			r.putSched(it.sched)
			if err != nil || !ok {
				return start
			}
			i := comp.Stream
			r.drainTo(i, comp.Finish)
			r.fill(i, units.Bytes(comp.Blocks)*blockSize)
			return comp.Finish
		}
		scheduleCycle := func(int64) {
			sched := r.getSched()
			ps := &r.ar.ps
			for _, i := range diskIDs {
				blk := ps.pos[i]
				if blk+ioBlocks > diskBlocks {
					blk = 0
				}
				sched.Enqueue(device.Request{
					Op: device.Read, Block: blk, Blocks: ioBlocks,
					Stream: i, Issued: r.eng.Now(),
				})
				ps.pos[i] = (blk + ioBlocks) % diskBlocks
			}
			for pending := sched.Len(); pending > 0; pending-- {
				diskChain.submit(chainItem{fn: dispatch, sched: sched})
			}
		}
		r.cycleLoop("disk", diskPlan.Cycle, 0, diskCycles, scheduleCycle)
	}

	// Cache side. The striped bank moves in lock-step, so one chain
	// serializes the whole bank; the replicated bank runs its k devices
	// independently, so each gets its own chain (that parallelism is
	// exactly Corollary 4's latency advantage).
	if len(cachedIDs) > 0 {
		chains := []*chain{r.newChain()}
		chainOf := func(int) *chain { return chains[0] }
		if rb, ok := cb.(*bank.ReplicatedBank); ok {
			chains = make([]*chain, cfg.K)
			for i := range chains {
				chains[i] = r.newChain()
			}
			chainOf = func(stream int) *chain {
				dev, _ := rb.DeviceOf(stream)
				return chains[dev]
			}
		}
		for i, d := range devs {
			ch := chains[0]
			if len(chains) == cfg.K {
				ch = chains[i]
			}
			r.observe(fmt.Sprintf("cache%d", i), d, ch)
		}
		ioBlocks := blocksFor(cachePlan.IOSize, devs[0].Geometry().BlockSize)
		cacheCycles := int64(end / cachePlan.Cycle)
		if cacheCycles < 2 {
			cacheCycles = 2
		}
		cycles = max(cycles, cacheCycles)
		cacheRead := func(it *chainItem, start time.Duration) time.Duration {
			i := int(it.stream)
			comp, err := cb.Read(start, i, it.req.Block, ioBlocks)
			if err != nil {
				return start
			}
			r.drainTo(i, comp.Finish)
			r.fill(i, cachePlan.IOSize)
			r.noteCacheFill(cachePlan.IOSize)
			return comp.Finish
		}
		scheduleCacheCycle := func(int64) {
			ps := &r.ar.ps
			for _, i := range cachedIDs {
				blk := ps.pos[i]
				if blk+ioBlocks > imageBlocks {
					blk = 0
				}
				ps.pos[i] = (blk + ioBlocks) % max(imageBlocks, 1)
				chainOf(i).submit(chainItem{fn: cacheRead, stream: int32(i), req: device.Request{Block: blk}})
			}
		}
		r.cycleLoop("cache", cachePlan.Cycle, 0, cacheCycles, scheduleCacheCycle)
	}

	r.finish(end)

	res := r.result(Cached, end, cycles)
	res.PlannedDRAM = cachePlan.TotalDRAM + diskPlan.TotalDRAM
	res.FromCache = len(cachedIDs)
	res.FromDisk = len(diskIDs)
	return res, nil
}
