package server

import (
	"reflect"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// rigConfigs is one representative configuration per driver, small enough
// to run all five in a table test.
func rigConfigs() []struct {
	name string
	cfg  Config
} {
	edf := baseConfig(Direct, 50, units.MBPS)
	edf.UseEDF = true
	cached := baseConfig(Cached, 200, 100*units.KBPS)
	cached.CachePolicy = model.Striped
	cached.Titles = 400
	hybrid := baseConfig(Hybrid, 300, 100*units.KBPS)
	hybrid.K = 4
	hybrid.CacheDevices = 2
	hybrid.Titles = 400
	return []struct {
		name string
		cfg  Config
	}{
		{"direct", baseConfig(Direct, 50, units.MBPS)},
		{"edf", edf},
		{"buffered", baseConfig(Buffered, 100, units.MBPS)},
		{"cached", cached},
		{"hybrid", hybrid},
	}
}

// TestFirstStreamIDDoesNotChangeDynamics: stream IDs are identity, not
// behaviour — offsetting a partition's ID range must not perturb its
// Result. This is what lets the shard layer give every partition a
// disjoint global ID range for free.
func TestFirstStreamIDDoesNotChangeDynamics(t *testing.T) {
	cfg := baseConfig(Direct, 50, units.MBPS)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FirstStreamID = 4096
	shifted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, shifted) {
		t.Errorf("FirstStreamID changed the Result:\n got %+v\nwant %+v", shifted, base)
	}
}

// TestPopulationInjectionMatchesSelfDraw: a rig handed the exact stream
// slice it would have drawn itself produces the identical Result — the
// injection path (Config.Population) and the internal draw are
// equivalent, so shard-local slices can come from either side.
func TestPopulationInjectionMatchesSelfDraw(t *testing.T) {
	cfg := baseConfig(Direct, 50, units.MBPS)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the rig's own draw: same catalog layout, a generator
	// seeded with the first Uint64 of the run RNG.
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	cfgv := cfg
	if err := validate(&cfgv); err != nil {
		t.Fatal(err)
	}
	cat, err := newCatalog(cfgv, dsk.Geometry().BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cat, sim.NewRNG(cfg.Seed).Uint64())
	set, err := gen.Draw(cfg.N)
	if err != nil {
		t.Fatal(err)
	}

	inj := cfg
	inj.Population = set
	got, err := Run(inj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("injected population changed the Result:\n got %+v\nwant %+v", got, base)
	}
}

func TestPopulationSizeValidated(t *testing.T) {
	cfg := baseConfig(Direct, 50, units.MBPS)
	cfg.Population = &workload.Set{} // empty, N=50
	if _, err := Run(cfg); err == nil {
		t.Error("mismatched population size did not fail validation")
	}
	cfg = baseConfig(Direct, 5, units.MBPS)
	cfg.FirstStreamID = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative FirstStreamID did not fail validation")
	}
}

// Every mode populates the cross-mode Result fields the rig assembles.
func TestResultInvariantsAcrossModes(t *testing.T) {
	for _, tc := range rigConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Streams != tc.cfg.N {
				t.Errorf("Streams = %d, want %d", res.Streams, tc.cfg.N)
			}
			if res.Events <= 0 {
				t.Error("Events not populated")
			}
			if res.Cycles <= 0 {
				t.Error("Cycles not populated")
			}
			if res.SimulatedTime <= 0 {
				t.Error("SimulatedTime not populated")
			}
			if res.MarginP5 <= 0 {
				t.Errorf("MarginP5 = %v, want > 0 with %d streams", res.MarginP5, tc.cfg.N)
			}
			if res.DiskBusy <= 0 || res.DiskIOs == 0 {
				t.Error("disk accounting not populated")
			}
		})
	}
}

// Attaching the probe must not change the run: same seed, Trace on vs off,
// identical Result in every field but the trace itself.
func TestProbeAttachmentPreservesResult(t *testing.T) {
	for _, tc := range rigConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			traced := tc.cfg
			traced.Trace = true
			got, err := Run(traced)
			if err != nil {
				t.Fatal(err)
			}
			if got.Trace == nil {
				t.Fatal("Trace=true returned no trace")
			}
			got.Trace = nil
			if !reflect.DeepEqual(got, plain) {
				t.Errorf("probe changed the run:\n with %+v\n without %+v", got, plain)
			}
		})
	}
}

// The recorded trace is coherent: monotone timestamps, per-source cycle
// progression, deltas that sum to the Result totals, and the per-mode
// sources present.
func TestTraceContents(t *testing.T) {
	wantSources := map[string][]string{
		"direct":   {"disk"},
		"edf":      {}, // no cycle structure, empty trace
		"buffered": {"disk", "mems"},
		"cached":   {"disk", "cache"},
		"hybrid":   {"disk", "mems", "cache"},
	}
	for _, tc := range rigConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Trace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			samples := res.Trace.Samples
			want := wantSources[tc.name]
			if len(want) == 0 {
				if len(samples) != 0 {
					t.Fatalf("EDF recorded %d samples, want none", len(samples))
				}
				return
			}
			if len(samples) == 0 {
				t.Fatal("no samples recorded")
			}
			seen := map[string]bool{}
			lastAt := time.Duration(-1)
			lastCycle := map[string]int64{}
			var uf int
			var fills uint64
			for _, s := range samples {
				seen[s.Source] = true
				if s.At < lastAt {
					t.Fatalf("timestamps not monotone: %v after %v", s.At, lastAt)
				}
				lastAt = s.At
				if prev, ok := lastCycle[s.Source]; ok && s.Cycle != prev+1 {
					t.Fatalf("%s cycles not consecutive: %d after %d", s.Source, s.Cycle, prev)
				}
				lastCycle[s.Source] = s.Cycle
				if s.DRAMInUse > s.DRAMHighWater {
					t.Fatalf("in-use %v above high water %v", s.DRAMInUse, s.DRAMHighWater)
				}
				if s.DRAMHighWater > res.DRAMHighWater {
					t.Fatalf("sample high water %v above final %v", s.DRAMHighWater, res.DRAMHighWater)
				}
				for _, d := range s.Devices {
					if d.Queue < -1 || d.BusyDelta < 0 {
						t.Fatalf("bad device sample %+v", d)
					}
				}
				uf += s.UnderflowsDelta
				fills += s.CacheFillsDelta
			}
			for _, src := range want {
				if !seen[src] {
					t.Errorf("source %q missing from trace", src)
				}
			}
			// Deltas never exceed the run totals (the final drain happens
			// after the last sample, so strict equality isn't guaranteed).
			if uf > res.Underflows {
				t.Errorf("summed underflow deltas %d exceed total %d", uf, res.Underflows)
			}
			if res.FromCache > 0 && fills == 0 {
				t.Error("cache mode recorded no cache-fill deltas")
			}
		})
	}
}
