package server

import (
	"sort"
	"time"

	"memstream/internal/disk"
	"memstream/internal/sim"
	"memstream/internal/units"
)

// This file holds the rig's batch-oriented state: per-stream playback
// state as struct-of-arrays (playerSoA), the shared consumption tables
// that replaced the per-player integrator closures (consTables), and the
// Arena that lets a sequence of runs reuse all of it.
//
// The layout exists for the steady-state cycle walk: one cycle visits
// every stream once, and with per-player heap objects each visit was a
// pointer chase into a separately-allocated player plus an indirect call
// into a captured integrator closure. The SoA walk touches parallel
// arrays sequentially, and the consumption profiles index into two shared
// cumulative tables — same arithmetic, no per-player allocations, cache
// lines doing useful work. The pinned-golden gate (testdata of
// internal/experiments) holds this rewrite to byte-identical Results.

// playerSoA is every stream's playback state in parallel arrays indexed
// by stream slot (the rig's player index). It also carries the pool-wide
// DRAM occupancy accounting that used to live in dram.Pool: the rig's
// pool was always unlimited, so what mattered was the running total and
// its high-water mark.
type playerSoA struct {
	pos       []int64         // next block to read from the stream's source device
	startAt   []time.Duration // playback begins (and margins anchor) here
	lastDrain []time.Duration // drain clock; advanced by every fill and the final drain
	level     []units.Bytes   // bytes currently buffered in DRAM
	deficit   []units.Bytes   // cumulative underflow bytes
	underflow []int32         // underflow events
	cons      []consRef       // consumption profile; zero value = CBR

	used      units.Bytes // total DRAM occupancy across all streams
	highWater units.Bytes
}

// reset sizes every array for n streams and zeroes all state.
func (ps *playerSoA) reset(n int) {
	ps.pos = resize(ps.pos, n)
	ps.startAt = resize(ps.startAt, n)
	ps.lastDrain = resize(ps.lastDrain, n)
	ps.level = resize(ps.level, n)
	ps.deficit = resize(ps.deficit, n)
	ps.underflow = resize(ps.underflow, n)
	ps.cons = resize(ps.cons, n)
	ps.used, ps.highWater = 0, 0
}

// resize returns s with length n and zeroed contents, reusing capacity.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// consRef points a stream at its consumption profile. The zero value is
// CBR at the rig's nominal rate; trace and pause kinds index into the
// rig's shared consTables.
type consRef struct {
	kind consKind
	idx  int32
}

type consKind uint8

const (
	consCBR consKind = iota
	consTrace
	consPause
)

// consTables holds every VBR trace prefix-sum and pause-phase schedule of
// a run in shared append-only arrays. Each profile is an (offset, length)
// window; lookups reproduce the arithmetic of the closure-based
// traceIntegrator/pauseIntegrator (which survive, below in rig.go, as the
// behavioral reference) operation for operation, so a drain computes the
// same float64s it always did.
type consTables struct {
	// VBR traces: prefix[off+i] is the bytes consumed by the end of
	// interval i (prefix[off] == 0), built as the same running float64 sum
	// the integrator closure accumulated.
	prefix []float64
	traces []traceTable

	// Pause schedules: bounds[off+i] alternates play-end, pause-end, ...
	// in seconds; consumed[off+i] is cumulative consumption at that
	// boundary.
	bounds   []float64
	consumed []float64
	pauses   []pauseTable
}

type traceTable struct {
	off   int32
	dt    time.Duration // interval length
	span  time.Duration // len(trace)·dt
	total float64       // bytes consumed per full trace span
}

type pauseTable struct {
	off, n int32
	rateF  float64 // play-phase consumption rate, bytes/sec
}

func (t *consTables) reset() {
	t.prefix = t.prefix[:0]
	t.traces = t.traces[:0]
	t.bounds = t.bounds[:0]
	t.consumed = t.consumed[:0]
	t.pauses = t.pauses[:0]
}

// addTrace appends a normalized VBR trace's prefix sums and returns a
// consRef to it.
func (t *consTables) addTrace(trace []units.ByteRate, dt time.Duration) consRef {
	off := int32(len(t.prefix))
	p := 0.0
	t.prefix = append(t.prefix, 0)
	for _, r := range trace {
		p += float64(r) * dt.Seconds()
		t.prefix = append(t.prefix, p)
	}
	t.traces = append(t.traces, traceTable{
		off: off, dt: dt, span: time.Duration(len(trace)) * dt, total: p,
	})
	return consRef{kind: consTrace, idx: int32(len(t.traces) - 1)}
}

// addPause generates a play/pause phase schedule (alternating
// exponentially distributed phases out to horizon seconds, consuming
// rateF while playing) and returns a consRef to it. The RNG draws happen
// here, eagerly, in the caller's player order — the same consumption
// discipline the closure build had.
func (t *consTables) addPause(rng *sim.RNG, rateF, meanPlay, meanPause, horizon float64) consRef {
	off := int32(len(t.bounds))
	tt, c := 0.0, 0.0
	playing := true
	for tt < horizon {
		var d float64
		if playing {
			d = rng.Exp(meanPlay)
			c += rateF * d
		} else {
			d = rng.Exp(meanPause)
		}
		tt += d
		t.bounds = append(t.bounds, tt)
		t.consumed = append(t.consumed, c)
		playing = !playing
	}
	t.pauses = append(t.pauses, pauseTable{off: off, n: int32(len(t.bounds)) - off, rateF: rateF})
	return consRef{kind: consPause, idx: int32(len(t.pauses) - 1)}
}

// consume integrates profile ref over [from, to), offsets measured from
// playback start. ref.kind must not be consCBR (the rig handles CBR
// inline).
func (t *consTables) consume(ref consRef, from, to time.Duration) units.Bytes {
	if ref.kind == consTrace {
		tt := &t.traces[ref.idx]
		return units.Bytes(t.traceAt(tt, to) - t.traceAt(tt, from))
	}
	pt := &t.pauses[ref.idx]
	return units.Bytes(t.pauseAt(pt, to) - t.pauseAt(pt, from))
}

// traceAt is the cumulative consumption of a repeating piecewise-constant
// rate profile at offset at.
func (t *consTables) traceAt(tt *traceTable, at time.Duration) float64 {
	if at <= 0 {
		return 0
	}
	wraps := float64(at / tt.span)
	rem := at % tt.span
	i := int32(rem / tt.dt)
	frac := float64(rem%tt.dt) / float64(tt.dt)
	p := t.prefix[tt.off+i:]
	return wraps*tt.total + p[0] + (p[1]-p[0])*frac
}

// pauseAt is the cumulative consumption of a play/pause schedule at
// offset x; beyond the generated horizon the stream is treated as paused.
func (t *consTables) pauseAt(pt *pauseTable, x time.Duration) float64 {
	xs := x.Seconds()
	if xs <= 0 || pt.n == 0 {
		return 0
	}
	b := t.bounds[pt.off : pt.off+pt.n]
	i := sort.SearchFloat64s(b, xs) // first boundary ≥ xs
	if i == len(b) {
		return t.consumed[pt.off+pt.n-1]
	}
	prevT, prevC := 0.0, 0.0
	if i > 0 {
		prevT, prevC = b[i-1], t.consumed[int(pt.off)+i-1]
	}
	if i%2 == 0 { // inside a play phase
		return prevC + pt.rateF*(xs-prevT)
	}
	return prevC // inside a pause phase
}

// Arena is the reusable simulation state for a sequence of server runs:
// the event engine, the SoA player state, the consumption tables, the
// margins reservoir, and the pools of service chains and disk schedulers.
// A shard goroutine creates one Arena and threads it through every
// partition it executes (Config.Arena), so partition p+1 runs in the
// storage partition p grew — steady state allocates nothing per run
// beyond the run's own Result.
//
// An Arena is not safe for concurrent use: at most one run may own it at
// a time. Reuse is provably behavior-free — every reset restores exact
// zero-state semantics, and the pinned-golden and shard byte-identity
// gates hold runs with and without an arena to identical Results.
type Arena struct {
	eng     sim.Engine
	ps      playerSoA
	tab     consTables
	margins *sim.Reservoir

	chains     []*chain
	chainsUsed int
	scheds     []*disk.Scheduler
}

// NewArena returns an empty arena ready for Config.Arena.
func NewArena() *Arena { return &Arena{} }

// reset prepares the arena for a run of n streams.
func (a *Arena) reset(n int, marginSeed uint64) {
	a.eng.Reset()
	a.ps.reset(n)
	a.tab.reset()
	for _, c := range a.chains[:a.chainsUsed] {
		c.reset()
	}
	a.chainsUsed = 0
	if a.margins == nil {
		a.margins = sim.NewReservoir(8192, marginSeed)
	} else {
		a.margins.Reset(marginSeed)
	}
}

// getChain hands out a pooled service chain bound to eng.
func (a *Arena) getChain(eng *sim.Engine) *chain {
	if a.chainsUsed < len(a.chains) {
		c := a.chains[a.chainsUsed]
		a.chainsUsed++
		c.eng = eng
		return c
	}
	c := &chain{eng: eng}
	a.chains = append(a.chains, c)
	a.chainsUsed++
	return c
}

// getSched hands out a pooled C-LOOK scheduler re-armed for dev. The
// caller returns it with putSched once its batch has fully dispatched.
func (a *Arena) getSched(dev *disk.Device) *disk.Scheduler {
	if n := len(a.scheds); n > 0 {
		s := a.scheds[n-1]
		a.scheds = a.scheds[:n-1]
		s.Rebind(dev, disk.CLook)
		return s
	}
	return disk.NewScheduler(dev, disk.CLook)
}

func (a *Arena) putSched(s *disk.Scheduler) { a.scheds = append(a.scheds, s) }
