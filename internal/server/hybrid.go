package server

import (
	"fmt"
	"time"

	"memstream/internal/bank"
	"memstream/internal/cache"
	"memstream/internal/device"
	"memstream/internal/model"
	"memstream/internal/units"
)

// runHybrid simulates the paper's first future-work configuration (§7) on
// the shared rig: the MEMS bank is split — CacheDevices of the K devices
// pin popular titles (striped), the remainder buffer the disk IOs of the
// cache misses. Hot streams ride the cache's IO cycle; cold streams flow
// through the disk→buffer→DRAM pipeline. Three cycle stages drive it:
// disk staging, MEMS draining, and the cache's lock-step reads.
func runHybrid(cfg Config) (Result, error) {
	if cfg.CacheDevices <= 0 || cfg.CacheDevices >= cfg.K {
		return Result{}, fmt.Errorf("server: hybrid needs 0 < CacheDevices=%d < K=%d",
			cfg.CacheDevices, cfg.K)
	}
	r, err := newRig(cfg)
	if err != nil {
		return Result{}, err
	}
	cacheDevs, err := bank.New(cfg.CacheDevices, cfg.Tier)
	if err != nil {
		return Result{}, err
	}
	bufDevs, err := bank.New(cfg.K-cfg.CacheDevices, cfg.Tier)
	if err != nil {
		return Result{}, err
	}
	cb, err := bank.NewStripedBank(cacheDevs)
	if err != nil {
		return Result{}, err
	}
	r.trackTier(cacheDevs...)
	r.trackTier(bufDevs...)
	placement, err := cache.Plan(r.cat, cb.Capacity())
	if err != nil {
		return Result{}, err
	}

	var cachedIDs, missIDs []int
	for i, st := range r.set.Streams {
		if placement.Contains(st.Title.ID) {
			cachedIDs = append(cachedIDs, i)
		} else {
			missIDs = append(missIDs, i)
		}
	}
	if len(missIDs) == 0 {
		return Result{}, fmt.Errorf("server: hybrid run has no cache misses; use Cached mode")
	}

	// Cache-side plan (Theorem 3 on the cache sub-bank).
	var cachePlan model.DirectPlan
	if len(cachedIDs) > 0 {
		cachePlan, err = model.StripedCache(len(cachedIDs), cfg.CacheDevices,
			cfg.BitRate, tierSpec(cfg.Tier))
		if err != nil {
			return Result{}, err
		}
	}
	// Miss-side plan (Theorem 2 on the buffer sub-bank), disk cycle
	// capped for simulation exactly as in the buffered pipeline.
	missLoad := model.StreamLoad{N: len(missIDs), BitRate: cfg.BitRate}
	bufPlan, err := model.BufferPlan(model.BufferConfig{
		Load:          missLoad,
		Disk:          diskSpec(r.dsk),
		Tier:          tierSpec(cfg.Tier),
		K:             cfg.K - cfg.CacheDevices,
		SizePerDevice: cfg.Tier.Capacity,
	})
	if err != nil {
		return Result{}, err
	}
	bufPlan.CapDiskCycle(20*time.Second, missLoad)
	tDisk := bufPlan.DiskCycle
	tMems := bufPlan.MEMSCycle
	bb, err := bank.NewBufferBank(bufDevs, bufPlan.DiskIOSize)
	if err != nil {
		return Result{}, err
	}

	// Players.
	blockSize := r.dsk.Geometry().BlockSize
	diskBlocks := r.dsk.Geometry().Blocks
	imageBlocks := blocksFor(placement.Used, blockSize)
	missPlayStart := tDisk + 4*tMems
	for i, st := range r.set.Streams {
		pos := (st.Title.StartLB + int64(st.Offset/blockSize)) % diskBlocks
		startAt := missPlayStart
		if placement.Contains(st.Title.ID) {
			pos = int64(st.Offset/blockSize) % max(imageBlocks, 1)
			startAt = cachePlan.Cycle
		}
		r.addPlayer(i, pos, startAt)
		if placement.Contains(st.Title.ID) {
			if err := cb.Assign(i); err != nil {
				return Result{}, err
			}
		} else {
			if _, err := bb.Attach(i); err != nil {
				return Result{}, err
			}
		}
	}

	diskCycles, end, _ := r.horizon(tDisk, 3, 3)

	// --- Miss side: disk → buffer sub-bank → DRAM, as in runBuffered ---
	diskIOBlocks := blocksFor(bufPlan.DiskIOSize, blockSize)
	bufChains := make([]*chain, len(bufDevs))
	for i := range bufChains {
		bufChains[i] = r.newChain()
	}
	diskChain := r.newChain()
	r.observe("disk", r.dsk, diskChain)
	for i, d := range bufDevs {
		r.observe(fmt.Sprintf("mems%d", i), d, bufChains[i])
	}
	// bankIO is the staged write following a disk read: it only occupies
	// the buffer device.
	bankIO := func(it *chainItem, ws time.Duration) time.Duration {
		wc, err := bb.Device(int(it.dev)).Service(ws, it.req)
		if err != nil {
			return ws
		}
		return wc.Finish
	}
	diskDispatch := func(it *chainItem, start time.Duration) time.Duration {
		comp, ok, err := it.sched.Dispatch(start)
		r.putSched(it.sched)
		if err != nil || !ok {
			return start
		}
		wreq, dev, err := bb.StageRequest(comp.Stream, it.cycle, units.Bytes(comp.Blocks)*blockSize)
		if err != nil {
			return comp.Finish
		}
		bufChains[dev].submit(chainItem{fn: bankIO, req: wreq, dev: int32(dev)})
		return comp.Finish
	}
	scheduleDiskCycle := func(c int64) {
		sched := r.getSched()
		ps := &r.ar.ps
		for _, i := range missIDs {
			blk := ps.pos[i]
			if blk+diskIOBlocks > diskBlocks {
				blk = 0
			}
			sched.Enqueue(device.Request{
				Op: device.Read, Block: blk, Blocks: diskIOBlocks,
				Stream: i, Issued: r.eng.Now(),
			})
			ps.pos[i] = (blk + diskIOBlocks) % diskBlocks
		}
		for pending := sched.Len(); pending > 0; pending-- {
			diskChain.submit(chainItem{fn: diskDispatch, sched: sched, cycle: c})
		}
	}

	drainBytes := units.BytesIn(cfg.BitRate, tMems)
	slotBlocks := blocksFor(bufPlan.DiskIOSize, blockSize)
	slotCycle := make(map[int]int64, len(missIDs))
	slotOff := make(map[int]int64, len(missIDs))
	memsCycles := int64(end / tMems)
	readerDrain := func(it *chainItem, rs time.Duration) time.Duration {
		rc, err := bb.Device(int(it.dev)).Service(rs, it.req)
		if err != nil {
			return rs
		}
		i := int(it.stream)
		r.drainTo(i, rc.Finish)
		r.fill(i, units.Bytes(rc.Blocks)*blockSize)
		return rc.Finish
	}
	scheduleMEMSCycle := func(int64) {
		diskCyc := int64(r.eng.Now() / tDisk)
		if diskCyc == 0 {
			return
		}
		for _, i := range missIDs {
			if slotCycle[i] != diskCyc {
				slotCycle[i] = diskCyc
				slotOff[i] = 0
			}
			if slotOff[i] >= slotBlocks {
				continue
			}
			rreq, dev, err := bb.DrainRequest(i, diskCyc, drainBytes)
			if err != nil {
				continue
			}
			rreq.Block += slotOff[i]
			if rem := slotBlocks - slotOff[i]; rreq.Blocks > rem {
				rreq.Blocks = rem
			}
			slotOff[i] += rreq.Blocks
			bufChains[dev].submit(chainItem{fn: readerDrain, req: rreq, dev: int32(dev), stream: int32(i)})
		}
	}

	r.cycleLoop("disk", tDisk, 0, diskCycles, scheduleDiskCycle)
	r.cycleLoop("mems", tMems, 1, memsCycles, scheduleMEMSCycle)

	// --- Cache side: striped lock-step cycles, as in runCached ---
	if len(cachedIDs) > 0 {
		cacheChain := r.newChain()
		for i, d := range cacheDevs {
			r.observe(fmt.Sprintf("cache%d", i), d, cacheChain)
		}
		ioBlocks := blocksFor(cachePlan.IOSize, blockSize)
		cacheCycles := int64(end / cachePlan.Cycle)
		if cacheCycles < 2 {
			cacheCycles = 2
		}
		cacheRead := func(it *chainItem, start time.Duration) time.Duration {
			i := int(it.stream)
			comp, err := cb.Read(start, i, it.req.Block, ioBlocks)
			if err != nil {
				return start
			}
			r.drainTo(i, comp.Finish)
			r.fill(i, cachePlan.IOSize)
			r.noteCacheFill(cachePlan.IOSize)
			return comp.Finish
		}
		scheduleCacheCycle := func(int64) {
			ps := &r.ar.ps
			for _, i := range cachedIDs {
				blk := ps.pos[i]
				if blk+ioBlocks > imageBlocks {
					blk = 0
				}
				ps.pos[i] = (blk + ioBlocks) % max(imageBlocks, 1)
				cacheChain.submit(chainItem{fn: cacheRead, stream: int32(i), req: device.Request{Block: blk}})
			}
		}
		r.cycleLoop("cache", cachePlan.Cycle, 0, cacheCycles, scheduleCacheCycle)
	}

	r.finish(end)

	res := r.result(Hybrid, end, diskCycles)
	res.PlannedDRAM = cachePlan.TotalDRAM + bufPlan.TotalDRAM
	res.FromCache = len(cachedIDs)
	res.FromDisk = len(missIDs)
	return res, nil
}
