package server

import (
	"fmt"
	"time"

	"memstream/internal/bank"
	"memstream/internal/cache"
	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/dram"
	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// runHybrid simulates the paper's first future-work configuration (§7):
// the MEMS bank is split — CacheDevices of the K devices pin popular
// titles (striped), the remainder buffer the disk IOs of the cache
// misses. Hot streams ride the cache's IO cycle; cold streams flow
// through the disk→buffer→DRAM pipeline.
func runHybrid(cfg Config) (Result, error) {
	if cfg.CacheDevices <= 0 || cfg.CacheDevices >= cfg.K {
		return Result{}, fmt.Errorf("server: hybrid needs 0 < CacheDevices=%d < K=%d",
			cfg.CacheDevices, cfg.K)
	}
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		return Result{}, err
	}
	cacheDevs, err := bank.New(cfg.CacheDevices, cfg.MEMS)
	if err != nil {
		return Result{}, err
	}
	bufDevs, err := bank.New(cfg.K-cfg.CacheDevices, cfg.MEMS)
	if err != nil {
		return Result{}, err
	}
	cb, err := bank.NewStripedBank(cacheDevs)
	if err != nil {
		return Result{}, err
	}
	cat, err := newCatalog(cfg, dsk.Geometry().BlockSize)
	if err != nil {
		return Result{}, err
	}
	placement, err := cache.Plan(cat, cb.Capacity())
	if err != nil {
		return Result{}, err
	}

	eng := &sim.Engine{}
	pool := dram.NewPool(0)
	rng := sim.NewRNG(cfg.Seed)
	gen := workload.NewGenerator(cat, rng.Uint64())
	set, err := gen.Draw(cfg.N)
	if err != nil {
		return Result{}, err
	}

	var cachedIDs, missIDs []int
	for i, st := range set.Streams {
		if placement.Contains(st.Title.ID) {
			cachedIDs = append(cachedIDs, i)
		} else {
			missIDs = append(missIDs, i)
		}
	}
	if len(missIDs) == 0 {
		return Result{}, fmt.Errorf("server: hybrid run has no cache misses; use Cached mode")
	}

	// Cache-side plan (Theorem 3 on the cache sub-bank).
	var cachePlan model.DirectPlan
	if len(cachedIDs) > 0 {
		cachePlan, err = model.StripedCache(len(cachedIDs), cfg.CacheDevices,
			cfg.BitRate, memsSpec(cfg.MEMS))
		if err != nil {
			return Result{}, err
		}
	}
	// Miss-side plan (Theorem 2 on the buffer sub-bank).
	bufPlan, err := model.BufferPlan(model.BufferConfig{
		Load:          model.StreamLoad{N: len(missIDs), BitRate: cfg.BitRate},
		Disk:          diskSpec(dsk),
		MEMS:          memsSpec(cfg.MEMS),
		K:             cfg.K - cfg.CacheDevices,
		SizePerDevice: cfg.MEMS.Capacity,
	})
	if err != nil {
		return Result{}, err
	}
	tDisk := bufPlan.DiskCycle
	if max := 20 * time.Second; tDisk > max {
		tDisk = max
		bufPlan.DiskIOSize = units.Bytes(float64(cfg.BitRate) * tDisk.Seconds())
		bufPlan.MEMSCycle = time.Duration(float64(tDisk) * float64(bufPlan.M) / float64(len(missIDs)))
		if bufPlan.MEMSCycle < bufPlan.MinMEMSCycle {
			bufPlan.MEMSCycle = bufPlan.MinMEMSCycle
		}
	}
	tMems := bufPlan.MEMSCycle
	bb, err := bank.NewBufferBank(bufDevs, bufPlan.DiskIOSize)
	if err != nil {
		return Result{}, err
	}

	// Players.
	blockSize := dsk.Geometry().BlockSize
	diskBlocks := dsk.Geometry().Blocks
	imageBlocks := blocksFor(placement.Used, blockSize)
	players := make([]*player, cfg.N)
	margins := sim.NewReservoir(8192, cfg.Seed^0xabcdef)
	missPlayStart := tDisk + 4*tMems
	for i, st := range set.Streams {
		buf, err := pool.Open(i, cfg.BitRate)
		if err != nil {
			return Result{}, err
		}
		p := &player{buf: buf, margins: margins}
		if placement.Contains(st.Title.ID) {
			p.pos = int64(st.Offset/blockSize) % maxI64(imageBlocks, 1)
			p.startAt = cachePlan.Cycle
			if err := cb.Assign(i); err != nil {
				return Result{}, err
			}
		} else {
			p.pos = (st.Title.StartLB + int64(st.Offset/blockSize)) % diskBlocks
			p.startAt = missPlayStart
			if _, err := bb.Attach(i); err != nil {
				return Result{}, err
			}
		}
		p.lastDrain = p.startAt
		players[i] = p
	}

	duration := cfg.Duration
	if duration <= 0 {
		duration = 3 * tDisk
	}
	diskCycles := int64(duration / tDisk)
	if diskCycles < 3 {
		diskCycles = 3
	}
	end := time.Duration(diskCycles) * tDisk

	// --- Miss side: disk → buffer sub-bank → DRAM, as in runBuffered ---
	diskIOBlocks := blocksFor(bufPlan.DiskIOSize, blockSize)
	bufChains := make([]*chain, len(bufDevs))
	for i := range bufChains {
		bufChains[i] = &chain{eng: eng}
	}
	diskChain := &chain{eng: eng}
	scheduleDiskCycle := func(c int64) {
		sched := disk.NewScheduler(dsk, disk.CLook)
		for _, i := range missIDs {
			p := players[i]
			blk := p.pos
			if blk+diskIOBlocks > diskBlocks {
				blk = 0
			}
			sched.Enqueue(device.Request{
				Op: device.Read, Block: blk, Blocks: diskIOBlocks,
				Stream: i, Issued: eng.Now(),
			})
			p.pos = (blk + diskIOBlocks) % diskBlocks
		}
		for pending := sched.Len(); pending > 0; pending-- {
			s := sched
			diskChain.submit(func(start time.Duration) time.Duration {
				comp, ok, err := s.Dispatch(start)
				if err != nil || !ok {
					return start
				}
				wreq, dev, err := bb.StageRequest(comp.Stream, c, units.Bytes(comp.Blocks)*blockSize)
				if err != nil {
					return comp.Finish
				}
				bufChains[dev].submit(func(ws time.Duration) time.Duration {
					wc, err := bb.Device(dev).Service(ws, wreq)
					if err != nil {
						return ws
					}
					return wc.Finish
				})
				return comp.Finish
			})
		}
	}
	for c := int64(0); c < diskCycles; c++ {
		c := c
		eng.Schedule(time.Duration(c)*tDisk, func() { scheduleDiskCycle(c) })
	}

	drainBytes := units.BytesIn(cfg.BitRate, tMems)
	slotBlocks := blocksFor(bufPlan.DiskIOSize, blockSize)
	slotCycle := make(map[int]int64, len(missIDs))
	slotOff := make(map[int]int64, len(missIDs))
	memsCycles := int64(end / tMems)
	scheduleMEMSCycle := func() {
		diskCyc := int64(eng.Now() / tDisk)
		if diskCyc == 0 {
			return
		}
		for _, i := range missIDs {
			i := i
			p := players[i]
			if slotCycle[i] != diskCyc {
				slotCycle[i] = diskCyc
				slotOff[i] = 0
			}
			if slotOff[i] >= slotBlocks {
				continue
			}
			rreq, dev, err := bb.DrainRequest(i, diskCyc, drainBytes)
			if err != nil {
				continue
			}
			rreq.Block += slotOff[i]
			if rem := slotBlocks - slotOff[i]; rreq.Blocks > rem {
				rreq.Blocks = rem
			}
			slotOff[i] += rreq.Blocks
			bufChains[dev].submit(func(rs time.Duration) time.Duration {
				rc, err := bb.Device(dev).Service(rs, rreq)
				if err != nil {
					return rs
				}
				p.drainTo(rc.Finish)
				if err := p.buf.Fill(units.Bytes(rc.Blocks) * blockSize); err != nil {
					panic(err)
				}
				return rc.Finish
			})
		}
	}
	for m := int64(1); m <= memsCycles; m++ {
		eng.Schedule(time.Duration(m)*tMems, scheduleMEMSCycle)
	}

	// --- Cache side: striped lock-step cycles, as in runCached ---
	if len(cachedIDs) > 0 {
		cacheChain := &chain{eng: eng}
		ioBlocks := blocksFor(cachePlan.IOSize, blockSize)
		cacheCycles := int64(end / cachePlan.Cycle)
		if cacheCycles < 2 {
			cacheCycles = 2
		}
		scheduleCacheCycle := func() {
			for _, i := range cachedIDs {
				i := i
				p := players[i]
				blk := p.pos
				if blk+ioBlocks > imageBlocks {
					blk = 0
				}
				p.pos = (blk + ioBlocks) % maxI64(imageBlocks, 1)
				cacheChain.submit(func(start time.Duration) time.Duration {
					comp, err := cb.Read(start, i, blk, ioBlocks)
					if err != nil {
						return start
					}
					p.drainTo(comp.Finish)
					if err := p.buf.Fill(cachePlan.IOSize); err != nil {
						panic(err)
					}
					return comp.Finish
				})
			}
		}
		for c := int64(0); c < cacheCycles; c++ {
			eng.Schedule(time.Duration(c)*cachePlan.Cycle, scheduleCacheCycle)
		}
	}

	eng.Schedule(end, func() {
		for _, p := range players {
			p.drainTo(end)
		}
	})
	eng.Run()

	res := Result{
		Mode:          Hybrid,
		Streams:       cfg.N,
		SimulatedTime: end,
		Events:        eng.Executed(),
		Cycles:        diskCycles,
		PlannedDRAM:   cachePlan.TotalDRAM + bufPlan.TotalDRAM,
		DRAMHighWater: pool.HighWater(),
		DiskBusy:      dsk.BusyTime(),
		DiskUtil:      float64(dsk.BusyTime()) / float64(end),
		DiskIOs:       dsk.Served(),
		FromCache:     len(cachedIDs),
		FromDisk:      len(missIDs),
	}
	var memsBusy time.Duration
	for _, d := range cacheDevs {
		memsBusy += d.BusyTime()
		res.MEMSIOs += d.Served()
	}
	for _, d := range bufDevs {
		memsBusy += d.BusyTime()
		res.MEMSIOs += d.Served()
	}
	res.MEMSBusy = memsBusy
	res.MEMSUtil = float64(memsBusy) / (float64(end) * float64(cfg.K))
	for _, p := range players {
		res.Underflows += p.underflow
		res.UnderflowBytes += p.deficit
	}
	if m, ok := margins.Quantile(0.05); ok {
		res.MarginP5 = units.Seconds(m)
	}
	return res, nil
}
