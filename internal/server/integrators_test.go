package server

import (
	"math"
	"testing"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
)

// Regression: an all-zero VBR trace made normalizeTrace divide by zero,
// propagating NaN/Inf rates into traceIntegrator. The guard leaves such
// a trace untouched.
func TestNormalizeTraceAllZero(t *testing.T) {
	trace := make([]units.ByteRate, 8)
	normalizeTrace(trace, 100*units.KBPS)
	for i, r := range trace {
		if math.IsNaN(float64(r)) || math.IsInf(float64(r), 0) {
			t.Fatalf("trace[%d] = %v after normalizing an all-zero trace", i, r)
		}
		if r != 0 {
			t.Errorf("trace[%d] = %v, want untouched 0", i, r)
		}
	}
	// The downstream integrator stays finite too.
	consume := traceIntegrator(trace, 100*time.Millisecond)
	if got := consume(0, time.Second); math.IsNaN(float64(got)) || got != 0 {
		t.Errorf("integral over an all-zero trace = %v, want 0", got)
	}
}

func TestNormalizeTraceEmptyAndNaN(t *testing.T) {
	normalizeTrace(nil, 100*units.KBPS) // must not panic
	trace := []units.ByteRate{units.ByteRate(math.NaN()), 100 * units.KBPS}
	normalizeTrace(trace, 100*units.KBPS)
	if !math.IsNaN(float64(trace[0])) || trace[1] != 100*units.KBPS {
		t.Errorf("NaN-poisoned trace rescaled to %v; want untouched", trace)
	}
}

func TestNormalizeTraceRescalesMean(t *testing.T) {
	trace := []units.ByteRate{50 * units.KBPS, 150 * units.KBPS, 100 * units.KBPS, 100 * units.KBPS}
	normalizeTrace(trace, 200*units.KBPS)
	var sum float64
	for _, r := range trace {
		sum += float64(r)
	}
	if mean := sum / float64(len(trace)); math.Abs(mean-200e3) > 1e-6 {
		t.Errorf("normalized mean = %v, want 200KB/s", units.ByteRate(mean))
	}
}

// linearPauseAt is the pre-fix reference implementation of the
// pause-integrator lookup: a linear scan over all phase boundaries.
func linearPauseAt(boundaries, consumed []float64, rate units.ByteRate, x time.Duration) float64 {
	xs := x.Seconds()
	if xs <= 0 {
		return 0
	}
	prevT, prevC := 0.0, 0.0
	for i, b := range boundaries {
		if xs <= b {
			if i%2 == 0 {
				return prevC + float64(rate)*(xs-prevT)
			}
			return prevC
		}
		prevT, prevC = b, consumed[i]
	}
	return prevC
}

// pausePhases regenerates the boundary/consumption tables exactly as
// pauseIntegrator builds them, for the equivalence check and benchmark.
func pausePhases(rng *sim.RNG, rate units.ByteRate, meanPlay, meanPause, horizon float64) (boundaries, consumed []float64) {
	t, c := 0.0, 0.0
	playing := true
	for t < horizon {
		var d float64
		if playing {
			d = rng.Exp(meanPlay)
			c += float64(rate) * d
		} else {
			d = rng.Exp(meanPause)
		}
		t += d
		boundaries = append(boundaries, t)
		consumed = append(consumed, c)
		playing = !playing
	}
	return boundaries, consumed
}

// The binary-search lookup must agree with the linear reference at every
// probe point, including phase boundaries, t=0, and beyond the horizon.
func TestPauseIntegratorMatchesLinearScan(t *testing.T) {
	const rate = 100 * units.KBPS
	const horizon = 500.0
	integ := pauseIntegrator(sim.NewRNG(7), rate, 5.0, 2.0, horizon)
	boundaries, consumed := pausePhases(sim.NewRNG(7), rate, 5.0, 2.0, horizon)

	probe := func(x time.Duration) {
		t.Helper()
		want := units.Bytes(linearPauseAt(boundaries, consumed, rate, x))
		got := integ(0, x)
		if math.Abs(float64(got-want)) > 1e-6*math.Max(float64(want), 1) {
			t.Errorf("at(%v): binary %v, linear %v", x, got, want)
		}
	}
	probe(0)
	probe(-time.Second)
	rng := sim.NewRNG(99)
	for i := 0; i < 2000; i++ {
		probe(time.Duration(rng.Float64() * (horizon + 50) * float64(time.Second)))
	}
	// Exact boundaries are the edge the search must get right.
	for _, b := range boundaries[:min(len(boundaries), 200)] {
		probe(time.Duration(b * float64(time.Second)))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// The micro-benchmark behind the fix: every drain event calls at() twice,
// so a 10k-phase horizon made each drain a 10k-element scan. Run with
// -bench PauseIntegrator to compare.
func benchmarkPauseLookup(b *testing.B, linear bool) {
	const rate = 100 * units.KBPS
	const horizon = 35000.0 // ~10k phases at mean play 5s + pause 2s
	integ := pauseIntegrator(sim.NewRNG(7), rate, 5.0, 2.0, horizon)
	boundaries, consumed := pausePhases(sim.NewRNG(7), rate, 5.0, 2.0, horizon)
	probes := make([]time.Duration, 1024)
	rng := sim.NewRNG(99)
	for i := range probes {
		probes[i] = time.Duration(rng.Float64() * horizon * float64(time.Second))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		x := probes[i%len(probes)]
		if linear {
			sink += linearPauseAt(boundaries, consumed, rate, x)
		} else {
			sink += float64(integ(0, x))
		}
	}
	_ = sink
}

func BenchmarkPauseIntegratorBinarySearch(b *testing.B) { benchmarkPauseLookup(b, false) }
func BenchmarkPauseIntegratorLinearScan(b *testing.B)   { benchmarkPauseLookup(b, true) }
