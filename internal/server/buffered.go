package server

import (
	"fmt"
	"time"

	"memstream/internal/bank"
	"memstream/internal/device"
	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/units"
)

// runBuffered simulates the disk→MEMS-bank→DRAM pipeline of §3.1 on the
// shared rig: the disk runs its own IO cycle writing large staged IOs
// into per-stream rings on the bank; each MEMS device interleaves those
// writes with the small DRAM-side reads of its streams every MEMS cycle
// (Figures 4 and 5). Two cycle stages drive it: the disk stage stages
// reads (and ships recorder slots), the MEMS stage drains staged slots
// toward DRAM and assembles recorder data.
func runBuffered(cfg Config) (Result, error) {
	r, err := newRig(cfg)
	if err != nil {
		return Result{}, err
	}
	bcfg := model.BufferConfig{
		Load:          model.StreamLoad{N: cfg.N, BitRate: cfg.BitRate},
		Disk:          diskSpec(r.dsk),
		Tier:          tierSpec(cfg.Tier),
		K:             cfg.K,
		SizePerDevice: cfg.Tier.Capacity,
	}
	plan, err := model.BufferPlan(bcfg)
	if err != nil {
		return Result{}, err
	}
	// Cap the disk cycle for simulation: Theorem 2 maximizes T_disk to the
	// capacity bound (hundreds of seconds); simulating a handful of such
	// cycles is fine analytically but we bound it to keep per-request IO
	// sizes inside one staging ring.
	plan.CapDiskCycle(20*time.Second, bcfg.Load)
	tDisk := plan.DiskCycle

	devs, err := bank.New(cfg.K, cfg.Tier)
	if err != nil {
		return Result{}, err
	}
	bb, err := bank.NewBufferBank(devs, plan.DiskIOSize)
	if err != nil {
		return Result{}, err
	}
	r.trackTier(devs...)

	tMems := plan.MEMSCycle
	// Playback lags the pipeline by four MEMS cycles: intra-cycle
	// completion jitter on a device's FIFO chain is bounded by about two
	// cycles (position within the read batch plus a queued stage write),
	// so four cycles of standing headroom keep every fill ahead of its
	// deadline.
	playStart := tDisk + 4*tMems
	blockSize := r.dsk.Geometry().BlockSize
	memsBlock := devs[0].Geometry().BlockSize
	diskBlocks := r.dsk.Geometry().Blocks
	isWriter := func(i int) bool { return i < cfg.Writers }
	for i, st := range r.set.Streams {
		start := playStart
		if isWriter(i) {
			start = sim.MaxTime / 2 // recorders never drain (no playback)
		}
		r.addPlayer(i, r.diskPos(st), start)
		if _, err := bb.Attach(i); err != nil {
			return Result{}, err
		}
	}
	// VBR playback for the readers (footnote 1): per-MEMS-cycle rate
	// profiles with the cushion prefetched before playback, exactly as in
	// the direct architecture.
	if err := r.shapeVBR(tMems, int(4*tDisk/tMems)+2, isWriter); err != nil {
		return Result{}, err
	}

	// Recorder state: bytes staged to MEMS so far and the peak DRAM a
	// writer held (produced minus staged).
	writerStaged := make([]units.Bytes, cfg.Writers)
	var writerPeak units.Bytes
	writerNote := func(i int, at time.Duration) {
		produced := units.BytesIn(cfg.BitRate, at)
		if occ := produced - writerStaged[i]; occ > writerPeak {
			writerPeak = occ
		}
	}

	diskCycles, end, _ := r.horizon(tDisk, 4, 3)

	diskIOBlocks := blocksFor(plan.DiskIOSize, blockSize)
	memsChains := make([]*chain, cfg.K)
	for i := range memsChains {
		memsChains[i] = r.newChain()
	}
	diskChain := r.newChain()
	r.observe("disk", r.dsk, diskChain)
	for i, d := range devs {
		r.observe(fmt.Sprintf("mems%d", i), d, memsChains[i])
	}

	// Chain-item handlers, one closure per item shape per run. bankIO is
	// the plain bank transfer (a staged write after a disk read, or a
	// recorder's write-back read feeding the in-flight disk write): it
	// only occupies the device.
	bankIO := func(it *chainItem, ws time.Duration) time.Duration {
		wc, err := bb.Device(int(it.dev)).Service(ws, it.req)
		if err != nil {
			return ws
		}
		return wc.Finish
	}
	// writerAppend lands one MEMS-cycle's recorder production in the slot
	// being assembled and tracks the writer's standing DRAM.
	writerAppend := func(it *chainItem, ws time.Duration) time.Duration {
		wc, err := bb.Device(int(it.dev)).Service(ws, it.req)
		if err != nil {
			return ws
		}
		writerNote(int(it.stream), wc.Finish)
		writerStaged[it.stream] += units.Bytes(wc.Blocks) * memsBlock
		return wc.Finish
	}
	// readerDrain moves one MEMS-cycle's piece of a staged slot into the
	// stream's DRAM buffer.
	readerDrain := func(it *chainItem, rs time.Duration) time.Duration {
		rc, err := bb.Device(int(it.dev)).Service(rs, it.req)
		if err != nil {
			return rs
		}
		i := int(it.stream)
		r.drainTo(i, rc.Finish)
		r.fill(i, units.Bytes(rc.Blocks)*memsBlock)
		return rc.Finish
	}
	// diskDispatch services one slot of a disk cycle's C-LOOK batch and,
	// for readers, stages the read bytes on the stream's MEMS device.
	diskDispatch := func(it *chainItem, start time.Duration) time.Duration {
		comp, ok, err := it.sched.Dispatch(start)
		r.putSched(it.sched)
		if err != nil || !ok {
			return start
		}
		stream := comp.Stream
		if isWriter(stream) {
			return comp.Finish // data already left the bank
		}
		wreq, dev, err := bb.StageRequest(stream, it.cycle, units.Bytes(comp.Blocks)*blockSize)
		if err != nil {
			return comp.Finish
		}
		memsChains[dev].submit(chainItem{fn: bankIO, req: wreq, dev: int32(dev)})
		return comp.Finish
	}

	// Disk side. Each disk cycle: readers get one large disk read that is
	// then staged on their MEMS device; writers get the reverse — the bank
	// reads back the slot their recorder assembled last cycle, and one
	// large disk write ships it to the platter.
	scheduleDiskCycle := func(c int64) {
		sched := r.getSched()
		ps := &r.ar.ps
		for i := 0; i < r.n; i++ {
			if isWriter(i) && c == 0 {
				continue // nothing assembled yet
			}
			blk := ps.pos[i]
			if blk+diskIOBlocks > diskBlocks {
				blk = 0
			}
			op := device.Read
			if isWriter(i) {
				// The assembled slot (parity c−1) is read back from MEMS
				// in per-MEMS-cycle pieces (scheduled below), streaming
				// concurrently with this large disk write.
				op = device.Write
			}
			sched.Enqueue(device.Request{
				Op: op, Block: blk, Blocks: diskIOBlocks,
				Stream: i, Issued: r.eng.Now(),
			})
			ps.pos[i] = (blk + diskIOBlocks) % diskBlocks
		}
		pending := sched.Len()
		if pending == 0 {
			r.putSched(sched)
			return
		}
		for ; pending > 0; pending-- {
			diskChain.submit(chainItem{fn: diskDispatch, sched: sched, cycle: c})
		}
	}

	// MEMS side: every MEMS cycle each stream receives one DRAM transfer
	// of B̄·T_mems, progressing through the slot its previous disk cycle
	// staged (DrainRequest(cycle) addresses the opposite-parity slot).
	drainBytes := units.BytesIn(cfg.BitRate, tMems)
	slotBlocks := blocksFor(plan.DiskIOSize, memsBlock)
	slotCycle := make([]int64, cfg.N)
	slotOff := make([]int64, cfg.N)
	// Writers additionally read back the previously assembled slot (the
	// second media pass feeding the disk write), tracked separately.
	wbCycle := make([]int64, cfg.Writers)
	wbOff := make([]int64, cfg.Writers)
	memsCycles := int64(end / tMems)

	// Best-effort traffic (§3.1.2): a few low-priority random reads per
	// device per MEMS cycle soak up whatever bandwidth the real-time
	// schedule leaves idle.
	var bestEffortBytes units.Bytes
	beRNG := r.rng.Split()
	const bePerCycle = 4
	beBlocks := blocksFor(256*units.KB, memsBlock)
	bestEffort := func(it *chainItem, bs time.Duration) time.Duration {
		if bs >= end {
			return bs // past the horizon; don't skew utilization
		}
		bc, err := devs[it.dev].Service(bs, it.req)
		if err != nil {
			return bs
		}
		bestEffortBytes += units.Bytes(bc.Blocks) * memsBlock
		return bc.Finish
	}
	scheduleBestEffort := func() {
		for dev := 0; dev < cfg.K; dev++ {
			for j := 0; j < bePerCycle; j++ {
				lbn := int64(beRNG.Float64() * float64(devs[dev].Geometry().Blocks-beBlocks))
				memsChains[dev].submitLow(chainItem{fn: bestEffort, dev: int32(dev), req: device.Request{
					Op: device.Read, Block: lbn, Blocks: beBlocks, Stream: -1,
				}})
			}
		}
	}
	scheduleMEMSCycle := func(int64) {
		now := r.eng.Now()
		diskCyc := int64(now / tDisk)
		for i := 0; i < r.n; i++ {
			if !isWriter(i) && diskCyc == 0 {
				continue // nothing staged for readers yet
			}
			if slotCycle[i] != diskCyc {
				slotCycle[i] = diskCyc
				slotOff[i] = 0
			}
			if slotOff[i] >= slotBlocks {
				continue // slot consumed; the next disk cycle refills it
			}
			if isWriter(i) {
				// Recorder: append this cycle's produced bytes into the
				// slot being assembled (parity diskCyc)...
				wreq, dev, err := bb.StageRequest(i, diskCyc, drainBytes)
				if err != nil {
					continue
				}
				wreq.Block += slotOff[i]
				if rem := slotBlocks - slotOff[i]; wreq.Blocks > rem {
					wreq.Blocks = rem
				}
				slotOff[i] += wreq.Blocks
				memsChains[dev].submit(chainItem{fn: writerAppend, req: wreq, dev: int32(dev), stream: int32(i)})
				// ...and stream one piece of the previously assembled slot
				// back out toward the in-flight disk write.
				if diskCyc >= 1 {
					if wbCycle[i] != diskCyc {
						wbCycle[i] = diskCyc
						wbOff[i] = 0
					}
					if wbOff[i] < slotBlocks {
						rreq, rdev, err := bb.DrainRequest(i, diskCyc, drainBytes)
						if err == nil {
							rreq.Block += wbOff[i]
							if rem := slotBlocks - wbOff[i]; rreq.Blocks > rem {
								rreq.Blocks = rem
							}
							wbOff[i] += rreq.Blocks
							memsChains[rdev].submit(chainItem{fn: bankIO, req: rreq, dev: int32(rdev)})
						}
					}
				}
				continue
			}
			rreq, dev, err := bb.DrainRequest(i, diskCyc, drainBytes)
			if err != nil {
				continue
			}
			rreq.Block += slotOff[i]
			if rem := slotBlocks - slotOff[i]; rreq.Blocks > rem {
				rreq.Blocks = rem
			}
			slotOff[i] += rreq.Blocks
			memsChains[dev].submit(chainItem{fn: readerDrain, req: rreq, dev: int32(dev), stream: int32(i)})
		}
	}

	r.cycleLoop("disk", tDisk, 0, diskCycles, scheduleDiskCycle)
	r.cycleLoop("mems", tMems, 1, memsCycles, func(m int64) {
		scheduleMEMSCycle(m)
		if cfg.BestEffort {
			scheduleBestEffort()
		}
	})
	r.finish(end)

	res := r.result(Buffered, end, diskCycles)
	res.PlannedDRAM = plan.TotalDRAM
	res.WriterPeakDRAM = writerPeak
	res.BestEffortBytes = bestEffortBytes
	res.FromDisk = cfg.N
	return res, nil
}
