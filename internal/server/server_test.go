package server

import (
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/tier"
	"memstream/internal/units"
)

func baseConfig(mode Mode, n int, br units.ByteRate) Config {
	return Config{
		Mode:    mode,
		Disk:    disk.FutureDisk(),
		Tier:    tier.MustLookup("mems-g3"),
		K:       2,
		N:       n,
		BitRate: br,
		Titles:  50,
		X:       10, Y: 90,
		Seed: 1,
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := Config{Mode: Direct, Disk: disk.FutureDisk(), N: 5, BitRate: units.MBPS}
	if err := validate(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Titles != 100 || cfg.X != 10 || cfg.Y != 90 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestValidateRejects(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: Direct, N: 0, BitRate: units.MBPS},
		{Mode: Direct, N: 5, BitRate: 0},
		{Mode: Buffered, N: 5, BitRate: units.MBPS, K: 0},
		{Mode: Cached, N: 5, BitRate: units.MBPS, K: 0},
	} {
		c := cfg
		if err := validate(&c); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestModeString(t *testing.T) {
	if Direct.String() != "direct" || Buffered.String() != "mems-buffer" || Cached.String() != "mems-cache" {
		t.Error("mode names wrong")
	}
}

// The central validation: a direct server provisioned by Theorem 1 never
// underflows in simulation.
func TestDirectNoUnderflows(t *testing.T) {
	res, err := Run(baseConfig(Direct, 50, 1*units.MBPS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d (%v missing)", res.Underflows, res.UnderflowBytes)
	}
	if res.DiskIOs == 0 {
		t.Error("no disk IOs recorded")
	}
	if res.DRAMHighWater <= 0 {
		t.Error("no DRAM use recorded")
	}
	// Double-buffering keeps occupancy within ~2x of the model's minimum.
	if float64(res.DRAMHighWater) > 2.5*float64(res.PlannedDRAM) {
		t.Errorf("high water %v far above plan %v", res.DRAMHighWater, res.PlannedDRAM)
	}
}

func TestDirectInfeasibleLoad(t *testing.T) {
	if _, err := Run(baseConfig(Direct, 31, 10*units.MBPS)); err == nil {
		t.Fatal("31 HDTV streams should be infeasible on FutureDisk")
	}
}

func TestDirectDeterministic(t *testing.T) {
	a, err := Run(baseConfig(Direct, 20, 1*units.MBPS))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(Direct, 20, 1*units.MBPS))
	if err != nil {
		t.Fatal(err)
	}
	if a.DRAMHighWater != b.DRAMHighWater || a.DiskBusy != b.DiskBusy || a.DiskIOs != b.DiskIOs {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestDirectSeedChangesLayout(t *testing.T) {
	a, _ := Run(baseConfig(Direct, 20, 1*units.MBPS))
	cfg := baseConfig(Direct, 20, 1*units.MBPS)
	cfg.Seed = 99
	b, _ := Run(cfg)
	if a.DiskBusy == b.DiskBusy {
		t.Log("different seeds produced identical busy time (possible but unlikely)")
	}
	if b.Underflows != 0 {
		t.Errorf("seed 99 underflows = %d", b.Underflows)
	}
}

// The buffered pipeline also delivers without underflows, and the disk
// runs at high utilization thanks to the large staged IOs.
func TestBufferedNoUnderflows(t *testing.T) {
	cfg := baseConfig(Buffered, 100, 1*units.MBPS)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d (%v missing)", res.Underflows, res.UnderflowBytes)
	}
	if res.MEMSIOs == 0 {
		t.Error("no MEMS IOs recorded")
	}
	// Every byte is staged and re-read: MEMS moves ≈2x the stream data.
	if res.MEMSBusy == 0 {
		t.Error("MEMS devices never busy")
	}
}

func TestBufferedSingleDeviceInfeasibleAtHighLoad(t *testing.T) {
	cfg := baseConfig(Buffered, 200, 1*units.MBPS) // needs 402MB/s of MEMS
	cfg.K = 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("single-device buffer should be infeasible at 200MB/s of streams")
	}
	cfg.K = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("k=2 underflows = %d", res.Underflows)
	}
}

func TestBufferedDiskIOsAreLarge(t *testing.T) {
	// The whole point of the buffer: disk IOs grow to S_disk-mems,
	// far beyond the direct plan's S_disk-dram.
	cfg := baseConfig(Buffered, 100, 100*units.KBPS)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(baseConfig(Direct, 100, 100*units.KBPS))
	if err != nil {
		t.Fatal(err)
	}
	// Same stream data volume, far fewer disk IOs per unit time.
	diskIORateBuffered := float64(res.DiskIOs) / res.SimulatedTime.Seconds()
	diskIORateDirect := float64(direct.DiskIOs) / direct.SimulatedTime.Seconds()
	if diskIORateBuffered >= diskIORateDirect/5 {
		t.Errorf("buffered disk IO rate %.2f/s not well below direct %.2f/s",
			diskIORateBuffered, diskIORateDirect)
	}
}

func TestCachedStripedNoUnderflows(t *testing.T) {
	cfg := baseConfig(Cached, 200, 100*units.KBPS)
	cfg.CachePolicy = model.Striped
	cfg.Titles = 400 // DVD-sized catalog >> cache
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d (%v)", res.Underflows, res.UnderflowBytes)
	}
	if res.FromCache == 0 {
		t.Error("no streams served from cache")
	}
	if res.FromCache+res.FromDisk != cfg.N {
		t.Errorf("split %d+%d != %d", res.FromCache, res.FromDisk, cfg.N)
	}
	if res.MEMSIOs == 0 {
		t.Error("cache never accessed")
	}
}

func TestCachedReplicatedNoUnderflows(t *testing.T) {
	cfg := baseConfig(Cached, 200, 100*units.KBPS)
	cfg.CachePolicy = model.Replicated
	cfg.Titles = 400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d (%v)", res.Underflows, res.UnderflowBytes)
	}
	if res.FromCache == 0 {
		t.Error("no streams served from cache")
	}
}

func TestCachedSkewAffectsHitCount(t *testing.T) {
	run := func(x, y float64) int {
		cfg := baseConfig(Cached, 300, 10*units.KBPS)
		cfg.CachePolicy = model.Striped
		cfg.Titles = 1000
		cfg.X, cfg.Y = x, y
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FromCache
	}
	skewed := run(1, 99)
	uniform := run(50, 50)
	if skewed <= uniform {
		t.Errorf("1:99 cache hits (%d) should exceed 50:50 (%d)", skewed, uniform)
	}
}

func TestCachedStripedBusierBank(t *testing.T) {
	// Striping seeks on all k devices per IO (k·n seeks/cycle vs n) — its
	// aggregate bank busy time should exceed replication's for the same
	// run (paper §3.2.1 vs §3.2.2).
	base := baseConfig(Cached, 200, 100*units.KBPS)
	base.Titles = 400
	base.Duration = 30 * time.Second

	st := base
	st.CachePolicy = model.Striped
	stRes, err := Run(st)
	if err != nil {
		t.Fatal(err)
	}
	re := base
	re.CachePolicy = model.Replicated
	reRes, err := Run(re)
	if err != nil {
		t.Fatal(err)
	}
	if stRes.MEMSIOs <= reRes.MEMSIOs {
		t.Errorf("striped device-IOs (%d) should exceed replicated (%d)",
			stRes.MEMSIOs, reRes.MEMSIOs)
	}
}

func TestRunUnknownMode(t *testing.T) {
	cfg := baseConfig(Mode(99), 10, units.MBPS)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestDirectAtHDTVFeasibilityEdge(t *testing.T) {
	// With whole-disk content, the simulator plans against the effective
	// (block-weighted) zone rate ≈242MB/s, so the HDTV edge sits at 23
	// streams, not the paper's outer-zone-rate 29.
	cfg := baseConfig(Direct, 23, 10*units.MBPS)
	cfg.Duration = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("feasible edge underflowed: %d (%v)", res.Underflows, res.UnderflowBytes)
	}
	if res.DiskUtil < 0.5 {
		t.Errorf("edge-load disk utilization = %.2f, want high", res.DiskUtil)
	}
	// One stream past the planner's envelope must be rejected.
	over := baseConfig(Direct, 25, 10*units.MBPS)
	if _, err := Run(over); err == nil {
		t.Error("25 HDTV streams should exceed the effective-rate envelope")
	}
}

func TestChainSerializesWork(t *testing.T) {
	eng := &sim.Engine{}
	ch := &chain{eng: eng}
	var order []int
	var finishes []time.Duration
	work := func(it *chainItem, start time.Duration) time.Duration {
		order = append(order, int(it.stream))
		f := start + 10*time.Millisecond
		finishes = append(finishes, f)
		return f
	}
	for i := 0; i < 3; i++ {
		ch.submit(chainItem{fn: work, stream: int32(i)})
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	// Items run back-to-back: finishes at 10, 20, 30ms.
	for i, f := range finishes {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if f != want {
			t.Errorf("finish %d = %v, want %v", i, f, want)
		}
	}
}

func TestChainHandlesRegressingFinish(t *testing.T) {
	eng := &sim.Engine{}
	ch := &chain{eng: eng}
	ran := 0
	ch.submit(chainItem{fn: func(_ *chainItem, start time.Duration) time.Duration {
		ran++
		return start - time.Second // misbehaving item: finish before start
	}})
	ch.submit(chainItem{fn: func(_ *chainItem, start time.Duration) time.Duration {
		ran++
		return start
	}})
	eng.Run()
	if ran != 2 {
		t.Errorf("ran = %d, want 2 (chain must not stall)", ran)
	}
}

func TestBufferedDeterministic(t *testing.T) {
	cfg := baseConfig(Buffered, 50, 1*units.MBPS)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MEMSBusy != b.MEMSBusy || a.DiskIOs != b.DiskIOs || a.MEMSIOs != b.MEMSIOs {
		t.Error("buffered run not deterministic")
	}
}

func TestBufferedWriteStreams(t *testing.T) {
	// §3.1: "This model can be easily extended to address write streams."
	// A mixed population of players and recorders shares the pipeline; the
	// recorders' DRAM occupancy must stay bounded (staging keeps up) and
	// the players must still meet their deadlines.
	cfg := baseConfig(Buffered, 100, 1*units.MBPS)
	cfg.Writers = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("reader underflows = %d", res.Underflows)
	}
	if res.WriterPeakDRAM <= 0 {
		t.Error("no writer activity recorded")
	}
	// Occupancy stays within a few MEMS cycles of production.
	bound := units.BytesIn(cfg.BitRate, 10*time.Second)
	if res.WriterPeakDRAM > bound {
		t.Errorf("writer peak DRAM %v exceeds %v — staging fell behind", res.WriterPeakDRAM, bound)
	}
	// The disk now performs writes too.
	if res.DiskIOs == 0 {
		t.Error("no disk IOs")
	}
}

func TestWritersRejectedOutsideBufferedMode(t *testing.T) {
	cfg := baseConfig(Direct, 10, units.MBPS)
	cfg.Writers = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("writers accepted in direct mode")
	}
	cfg = baseConfig(Buffered, 10, units.MBPS)
	cfg.Writers = 11
	if _, err := Run(cfg); err == nil {
		t.Fatal("writers > N accepted")
	}
}

func TestAllWritersPipeline(t *testing.T) {
	cfg := baseConfig(Buffered, 50, 1*units.MBPS)
	cfg.Writers = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d for a pure-recording workload", res.Underflows)
	}
	if res.WriterPeakDRAM <= 0 || res.MEMSIOs == 0 {
		t.Errorf("pipeline inactive: %+v", res)
	}
}

func TestEDFMeetsDeadlinesAtModerateLoad(t *testing.T) {
	cfg := baseConfig(Direct, 50, 1*units.MBPS)
	cfg.UseEDF = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("EDF underflows = %d (%v)", res.Underflows, res.UnderflowBytes)
	}
	if res.DiskIOs == 0 {
		t.Error("no IOs serviced")
	}
}

func TestEDFPaysMorePositioningThanTimeCycle(t *testing.T) {
	// Same load, same IO sizes: EDF orders by deadline, the time-cycle
	// server orders by cylinder (C-LOOK), so EDF spends more of the disk's
	// time positioning — the reason the paper builds on time-cycle
	// scheduling.
	base := baseConfig(Direct, 100, 1*units.MBPS)
	base.Duration = 10 * time.Second
	tc, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	edfCfg := base
	edfCfg.UseEDF = true
	edf, err := Run(edfCfg)
	if err != nil {
		t.Fatal(err)
	}
	if edf.Underflows != 0 || tc.Underflows != 0 {
		t.Fatalf("underflows tc=%d edf=%d", tc.Underflows, edf.Underflows)
	}
	// Normalize busy time per IO: EDF should be costlier.
	tcPerIO := float64(tc.DiskBusy) / float64(tc.DiskIOs)
	edfPerIO := float64(edf.DiskBusy) / float64(edf.DiskIOs)
	if edfPerIO <= tcPerIO {
		t.Errorf("EDF per-IO time %.3fms not above time-cycle %.3fms",
			edfPerIO/1e6, tcPerIO/1e6)
	}
}

func TestVBRWithCushionNoUnderflows(t *testing.T) {
	// Footnote 1: VBR = CBR + memory cushion. With the CushionFor prefetch
	// the CBR-sized schedule absorbs the rate variability.
	cfg := baseConfig(Direct, 50, 1*units.MBPS)
	cfg.VBRCoV = 0.3
	cfg.Duration = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("VBR with cushion underflowed %d times (%v)", res.Underflows, res.UnderflowBytes)
	}
}

func TestVBRWithoutCushionUnderflows(t *testing.T) {
	// The same workload without the cushion must miss deadlines — that is
	// exactly why footnote 1 requires it.
	cfg := baseConfig(Direct, 50, 1*units.MBPS)
	cfg.VBRCoV = 0.3
	cfg.NoCushion = true
	cfg.Duration = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows == 0 {
		t.Error("cushionless VBR met every deadline; the cushion would be unnecessary")
	}
}

func TestVBRDeterministic(t *testing.T) {
	cfg := baseConfig(Direct, 20, 1*units.MBPS)
	cfg.VBRCoV = 0.2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.UnderflowBytes != b.UnderflowBytes || a.DRAMHighWater != b.DRAMHighWater {
		t.Error("VBR run not deterministic")
	}
}

func TestBestEffortUsesSpareBandwidth(t *testing.T) {
	// §3.1.2: spare bandwidth carries non-real-time traffic. The
	// best-effort reads must move real data without costing the real-time
	// streams a single deadline.
	cfg := baseConfig(Buffered, 100, 1*units.MBPS)
	cfg.BestEffort = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("best-effort traffic caused %d underflows", res.Underflows)
	}
	if res.BestEffortBytes <= 0 {
		t.Error("no best-effort data moved despite spare bandwidth")
	}
	// Compare with the same run without best-effort: identical real-time
	// behaviour, higher bank utilization.
	plain := baseConfig(Buffered, 100, 1*units.MBPS)
	base, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if base.BestEffortBytes != 0 {
		t.Error("baseline moved best-effort data")
	}
	if res.MEMSBusy <= base.MEMSBusy {
		t.Error("best-effort did not raise bank utilization")
	}
	if res.UnderflowBytes != base.UnderflowBytes {
		t.Error("real-time delivery changed")
	}
}

func TestBestEffortYieldsToRealTime(t *testing.T) {
	// Near the bank's bandwidth limit there is little spare capacity; the
	// low-priority queue must not disturb the real-time side.
	cfg := baseConfig(Buffered, 200, 1*units.MBPS)
	cfg.BestEffort = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("underflows = %d with best-effort at high load", res.Underflows)
	}
}

func TestHybridNoUnderflows(t *testing.T) {
	// §7 future work: part of the bank caches hot titles, the rest buffers
	// the misses' disk IOs. Both sides must deliver on time.
	cfg := baseConfig(Hybrid, 300, 100*units.KBPS)
	cfg.K = 4
	cfg.CacheDevices = 2
	cfg.Titles = 400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("hybrid underflows = %d (%v)", res.Underflows, res.UnderflowBytes)
	}
	if res.FromCache == 0 || res.FromDisk == 0 {
		t.Errorf("split = %d cached / %d missed; want both active", res.FromCache, res.FromDisk)
	}
	if res.MEMSIOs == 0 || res.DiskIOs == 0 {
		t.Error("one side idle")
	}
	if res.Mode != Hybrid {
		t.Errorf("mode = %v", res.Mode)
	}
}

func TestHybridValidatesSplit(t *testing.T) {
	cfg := baseConfig(Hybrid, 100, 100*units.KBPS)
	cfg.K = 4
	for _, cd := range []int{0, 4, 5} {
		cfg.CacheDevices = cd
		if _, err := Run(cfg); err == nil {
			t.Errorf("CacheDevices=%d accepted with K=4", cd)
		}
	}
}

func TestHybridModeString(t *testing.T) {
	if Hybrid.String() != "mems-hybrid" {
		t.Errorf("Hybrid = %q", Hybrid)
	}
}

func TestBufferedVBR(t *testing.T) {
	cfg := baseConfig(Buffered, 100, 1*units.MBPS)
	cfg.VBRCoV = 0.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("buffered VBR with cushion underflowed %d times (%v)",
			res.Underflows, res.UnderflowBytes)
	}
	// Without the cushion the variability must bite.
	cfg.NoCushion = true
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Underflows == 0 {
		t.Error("cushionless buffered VBR met every deadline; cushion would be unnecessary")
	}
}

func TestInteractivePauseResume(t *testing.T) {
	// Interactive service ([21] in the paper's related work): paused
	// streams consume nothing and their IOs are skipped, reclaiming disk
	// bandwidth without costing active streams a deadline.
	base := baseConfig(Direct, 100, 1*units.MBPS)
	base.Duration = 60 * time.Second
	busy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	paused := base
	paused.PausedFraction = 0.4
	res, err := Run(paused)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflows != 0 {
		t.Errorf("interactive run underflowed %d times (%v)", res.Underflows, res.UnderflowBytes)
	}
	// ~40% of stream-time paused: noticeably fewer disk IOs than the
	// always-playing run.
	if res.DiskIOs >= busy.DiskIOs {
		t.Errorf("paused run did %d IOs, always-on did %d — no bandwidth reclaimed",
			res.DiskIOs, busy.DiskIOs)
	}
	if float64(res.DiskIOs) > 0.9*float64(busy.DiskIOs) {
		t.Errorf("reclaimed only %d of %d IOs at 40%% pause",
			busy.DiskIOs-res.DiskIOs, busy.DiskIOs)
	}
}

func TestInteractiveDeterministic(t *testing.T) {
	cfg := baseConfig(Direct, 30, 1*units.MBPS)
	cfg.PausedFraction = 0.3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DiskIOs != b.DiskIOs || a.DRAMHighWater != b.DRAMHighWater {
		t.Error("interactive run not deterministic")
	}
}

func TestMarginP5Reported(t *testing.T) {
	res, err := Run(baseConfig(Direct, 50, 1*units.MBPS))
	if err != nil {
		t.Fatal(err)
	}
	// Planned schedules keep positive delivery margins.
	if res.MarginP5 <= 0 {
		t.Errorf("MarginP5 = %v, want positive", res.MarginP5)
	}
	// A near-edge run still has a (smaller) positive margin.
	edge := baseConfig(Direct, 23, 10*units.MBPS)
	eres, err := Run(edge)
	if err != nil {
		t.Fatal(err)
	}
	if eres.MarginP5 <= 0 {
		t.Errorf("edge MarginP5 = %v", eres.MarginP5)
	}
}
