package server

import (
	"math"
	"sort"
	"time"

	"memstream/internal/disk"
	"memstream/internal/dram"
	"memstream/internal/ring"
	"memstream/internal/sim"
	"memstream/internal/tier"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// rig is the shared run-core every architecture driver builds on: it owns
// the simulation engine, the DRAM pool, the run's RNG, the catalog and the
// drawn stream population, constructs players, applies the playback
// shaping extensions (VBR traces with cushions, the pause integrator),
// drives the per-cycle scheduling stages, performs the final drain, and
// assembles the cross-mode Result fields. Drivers contribute only their
// architecture: device/bank setup, per-player placement and start times,
// and the per-cycle scheduling stage each cycleLoop runs.
//
// Determinism contract: newRig consumes the run RNG exactly as every
// driver historically did (one Uint64 for the stream generator), and the
// shaping helpers Split it in driver-controlled order — so a refactored
// driver reproduces the pre-rig byte-identical Results for any seed.
type rig struct {
	cfg     Config
	eng     *sim.Engine
	pool    *dram.Pool
	rng     *sim.RNG
	dsk     *disk.Device
	cat     *workload.Catalog
	set     *workload.Set
	players []*player
	margins *sim.Reservoir

	// tierDevs are the bank devices registered for Result accounting
	// (busy time, IO counts, utilization over cfg.K).
	tierDevs []tier.Device

	// probe, when attached (Config.Trace), records the per-cycle time
	// series surfaced as Result.Trace. Sampling piggybacks on the cycle
	// events themselves, so attachment never perturbs the run.
	probe *probe

	// Cache-side fill accounting for the probe's hit deltas
	// (Cached/Hybrid drivers note each fill served from the cache bank).
	cacheFills     uint64
	cacheFillBytes units.Bytes
}

// newRig instantiates the shared machinery: the disk, the catalog laid
// out on it, the engine, an unlimited accounting pool, the run RNG and
// the stream population drawn from it.
func newRig(cfg Config) (*rig, error) {
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		return nil, err
	}
	cat, err := newCatalog(cfg, dsk.Geometry().BlockSize)
	if err != nil {
		return nil, err
	}
	eng := &sim.Engine{}
	pool := dram.NewPool(0)
	rng := sim.NewRNG(cfg.Seed)
	// The generator seed is drawn unconditionally — even when a shard-local
	// population is injected — so the rig consumes the run RNG identically
	// on both paths and the shaping splits downstream see the same stream.
	gen := workload.NewGenerator(cat, rng.Uint64())
	set := cfg.Population
	if set == nil {
		var err error
		set, err = gen.DrawRange(cfg.FirstStreamID, cfg.N)
		if err != nil {
			return nil, err
		}
	}
	r := &rig{
		cfg: cfg, eng: eng, pool: pool, rng: rng, dsk: dsk, cat: cat, set: set,
		players: make([]*player, cfg.N),
		margins: sim.NewReservoir(8192, cfg.Seed^0xabcdef),
	}
	if cfg.Trace {
		r.probe = newProbe(r)
	}
	return r, nil
}

// diskPos maps a drawn stream to its starting block on the disk image.
func (r *rig) diskPos(st workload.Stream) int64 {
	g := r.dsk.Geometry()
	return (st.Title.StartLB + int64(st.Offset/g.BlockSize)) % g.Blocks
}

// addPlayer opens stream i's DRAM buffer and installs its player, with
// playback beginning (and margin tracking anchored) at startAt.
func (r *rig) addPlayer(i int, pos int64, startAt time.Duration) (*player, error) {
	buf, err := r.pool.Open(i, r.cfg.BitRate)
	if err != nil {
		return nil, err
	}
	p := &player{buf: buf, pos: pos, startAt: startAt, lastDrain: startAt, margins: r.margins}
	r.players[i] = p
	return p, nil
}

// shapeInteractive wires the pause/resume consumption integrals when
// Config.PausedFraction asks for interactive playback: every player
// alternates exponentially distributed play and pause phases so the
// configured fraction of stream-time is paused. Consumes one RNG split.
func (r *rig) shapeInteractive(cycle, duration time.Duration) {
	if !(r.cfg.PausedFraction > 0 && r.cfg.PausedFraction < 1) {
		return
	}
	prng := r.rng.Split()
	meanPlay := 5 * cycle.Seconds()
	meanPause := meanPlay * r.cfg.PausedFraction / (1 - r.cfg.PausedFraction)
	horizon := (duration + cycle).Seconds()
	for _, p := range r.players {
		p.consume = pauseIntegrator(prng, r.cfg.BitRate, meanPlay, meanPause, horizon)
	}
}

// shapeVBR wires VBR playback (the paper's footnote 1) when Config.VBRCoV
// asks for it: each player consumes along a normalized per-interval rate
// trace, and unless NoCushion is set the CushionFor prefetch lands in its
// buffer before the run starts. skip, when non-nil, excludes players
// (recorders never play back). Consumes one RNG split.
func (r *rig) shapeVBR(interval time.Duration, intervals int, skip func(i int) bool) error {
	if r.cfg.VBRCoV <= 0 {
		return nil
	}
	vrng := r.rng.Split()
	for i, p := range r.players {
		if skip != nil && skip(i) {
			continue
		}
		trace := workload.VBRTrace(vrng, r.cfg.BitRate, r.cfg.VBRCoV, intervals)
		normalizeTrace(trace, r.cfg.BitRate)
		p.consume = traceIntegrator(trace, interval)
		if !r.cfg.NoCushion {
			if err := p.buf.Fill(workload.CushionFor(trace, interval)); err != nil {
				return err
			}
		}
	}
	return nil
}

// span resolves the run length for non-quantized horizons: the configured
// Duration, or def when unset.
func (r *rig) span(def time.Duration) time.Duration {
	if r.cfg.Duration > 0 {
		return r.cfg.Duration
	}
	return def
}

// horizon resolves a cycle-quantized run length: the configured Duration
// (or defCycles cycles when unset) floored to whole cycles with a minimum
// of minCycles. It returns the cycle count, the quantized end, and the
// raw un-quantized duration (the pause-process horizon spans the latter).
func (r *rig) horizon(cycle time.Duration, defCycles, minCycles int64) (cycles int64, end, raw time.Duration) {
	raw = r.span(time.Duration(defCycles) * cycle)
	cycles = int64(raw / cycle)
	if cycles < minCycles {
		cycles = minCycles
	}
	return cycles, time.Duration(cycles) * cycle, raw
}

// newChain allocates a FIFO service chain on the rig's engine.
func (r *rig) newChain() *chain { return &chain{eng: r.eng} }

// cycleLoop drives one periodic scheduling stage: fn runs once per cycle
// c ∈ [first, first+n) at time c·period. When a probe is attached, the
// cycle's resource sample is taken inside the same engine event right
// after fn, so attaching the probe changes neither the event calendar nor
// any Result field.
//
// All cycles are scheduled upfront (not self-chained) so that when
// several loops with different periods share the rig, their tie-break
// order at coinciding timestamps is fixed by driver setup order — the
// determinism contract the pinned Result fingerprints enforce. The
// per-cycle state lives in one contiguous slice and events go through
// ScheduleArg, so a loop of n cycles costs one allocation instead of a
// closure per cycle.
func (r *rig) cycleLoop(source string, period time.Duration, first, n int64, fn func(c int64)) {
	if n <= 0 {
		return
	}
	calls := make([]cycleCall, n)
	for c := first; c < first+n; c++ {
		cc := &calls[c-first]
		*cc = cycleCall{r: r, source: source, fn: fn, c: c}
		r.eng.ScheduleArg(time.Duration(c)*period, runCycleCall, cc)
	}
}

// cycleCall is one scheduled cycle of a cycleLoop.
type cycleCall struct {
	r      *rig
	source string
	fn     func(c int64)
	c      int64
}

func runCycleCall(arg any) {
	cc := arg.(*cycleCall)
	cc.fn(cc.c)
	if cc.r.probe != nil {
		cc.r.probe.sample(cc.source, cc.c)
	}
}

// finish schedules the final drain of every player at end and runs the
// calendar dry.
func (r *rig) finish(end time.Duration) {
	r.eng.Schedule(end, func() {
		for _, p := range r.players {
			p.drainTo(end)
		}
	})
	r.eng.Run()
}

// trackTier registers bank devices for the Result's middle-tier
// accounting (the MEMS-named Result fields, kept for artifact
// stability).
func (r *rig) trackTier(devs ...tier.Device) {
	r.tierDevs = append(r.tierDevs, devs...)
}

// noteCacheFill accounts one DRAM fill served from the cache bank — the
// per-cycle cache-hit delta the probe reports.
func (r *rig) noteCacheFill(b units.Bytes) {
	r.cacheFills++
	r.cacheFillBytes += b
}

// result assembles the cross-mode Result fields: identity, horizon,
// event/IO/busy accounting, DRAM high water, underflow totals, the
// delivery-margin quantile and, when a probe ran, the trace. Drivers fill
// the mode-specific fields afterwards (PlannedDRAM, the cache split,
// writer and best-effort accounting).
func (r *rig) result(mode Mode, end time.Duration, cycles int64) Result {
	res := Result{
		Mode:          mode,
		Streams:       r.cfg.N,
		SimulatedTime: end,
		Cycles:        cycles,
		Events:        r.eng.Executed(),
		DRAMHighWater: r.pool.HighWater(),
		DiskBusy:      r.dsk.BusyTime(),
		DiskUtil:      float64(r.dsk.BusyTime()) / float64(end),
		DiskIOs:       r.dsk.Served(),
	}
	var memsBusy time.Duration
	for _, d := range r.tierDevs {
		memsBusy += d.BusyTime()
		res.MEMSIOs += d.Served()
	}
	if len(r.tierDevs) > 0 {
		res.MEMSBusy = memsBusy
		res.MEMSUtil = float64(memsBusy) / (float64(end) * float64(r.cfg.K))
	}
	for _, p := range r.players {
		res.Underflows += p.underflow
		res.UnderflowBytes += p.deficit
	}
	if m, ok := r.margins.Quantile(0.05); ok {
		res.MarginP5 = units.Seconds(m)
	}
	if r.probe != nil {
		res.Trace = r.probe.trace
	}
	return res
}

// chain serializes work on one device: items run back-to-back in FIFO
// order, each receiving its start time and returning its finish time.
// Two priorities exist: real-time items (submit) always run before
// queued best-effort items (submitLow), which soak up spare bandwidth
// (§3.1.2) without delaying any already-queued real-time work.
//
// Both queues are ring buffers (O(1) dequeue at any depth) and the
// completion event goes through the kernel's ScheduleArg fast path, so a
// busy chain's dispatch loop allocates nothing in steady state.
type chain struct {
	eng  *sim.Engine
	busy bool
	last time.Duration
	q    ring.Ring[func(start time.Duration) time.Duration]
	low  ring.Ring[func(start time.Duration) time.Duration]
}

func (c *chain) submit(fn func(start time.Duration) time.Duration) {
	c.q.PushBack(fn)
	if !c.busy {
		c.busy = true
		c.runNext()
	}
}

// submitLow enqueues best-effort work served only when no real-time item
// is waiting.
func (c *chain) submitLow(fn func(start time.Duration) time.Duration) {
	c.low.PushBack(fn)
	if !c.busy {
		c.busy = true
		c.runNext()
	}
}

// depth is the number of items pending on the chain, including the one in
// service — the queue-depth gauge the probe samples.
func (c *chain) depth() int {
	n := c.q.Len() + c.low.Len()
	if c.busy {
		n++
	}
	return n
}

// chainRunNext is the static ScheduleArg callback driving the chain.
func chainRunNext(arg any) { arg.(*chain).runNext() }

func (c *chain) runNext() {
	var fn func(start time.Duration) time.Duration
	switch {
	case c.q.Len() > 0:
		fn = c.q.PopFront()
	case c.low.Len() > 0:
		fn = c.low.PopFront()
	default:
		c.busy = false
		return
	}
	start := c.eng.Now()
	if c.last > start {
		start = c.last
	}
	finish := fn(start)
	if finish < start {
		finish = start
	}
	c.last = finish
	c.eng.ScheduleArg(finish-c.eng.Now(), chainRunNext, c)
}

// player tracks one stream's playback state. Playback begins at startAt
// (after the priming cycle) and drains lazily: every fill and the end of
// the run advance the drain clock.
type player struct {
	buf       *dram.StreamBuffer
	pos       int64 // next block to read from its source device
	lastDrain time.Duration
	startAt   time.Duration
	deficit   units.Bytes
	underflow int

	// consume, when set, integrates a VBR consumption profile over
	// [from, to) measured from playback start; nil means CBR at the
	// buffer's nominal rate.
	consume func(from, to time.Duration) units.Bytes

	// margins, when set, records the post-drain buffer level in playback
	// seconds — the delivery margin distribution.
	margins *sim.Reservoir
}

func (p *player) drainTo(t time.Duration) {
	if t <= p.startAt || t <= p.lastDrain {
		return
	}
	from := p.lastDrain
	if from < p.startAt {
		from = p.startAt
	}
	var d units.Bytes
	if p.consume != nil {
		d = p.buf.DrainBytes(p.consume(from-p.startAt, t-p.startAt))
	} else {
		d = p.buf.Drain(t - from)
	}
	if d > 0 {
		p.deficit += d
		p.underflow++
	}
	if p.margins != nil {
		p.margins.Observe(p.buf.Level().Seconds(p.buf.Rate()))
	}
	p.lastDrain = t
}

// normalizeTrace rescales a VBR trace so its mean is exactly the nominal
// rate — the time-cycle supply delivers the nominal rate, so an off-mean
// trace would drift rather than oscillate. A trace whose sum is not a
// positive finite number (all-zero, or corrupted with NaN/Inf) is left
// untouched: dividing by it would inject NaN/Inf rates straight into the
// consumption integral.
func normalizeTrace(trace []units.ByteRate, nominal units.ByteRate) {
	var sum float64
	for _, r := range trace {
		sum += float64(r)
	}
	if !(sum > 0) || math.IsInf(sum, 1) {
		return
	}
	scale := float64(nominal) * float64(len(trace)) / sum
	for i := range trace {
		trace[i] = units.ByteRate(float64(trace[i]) * scale)
	}
}

// traceIntegrator returns the consumption integral of a piecewise-constant
// rate profile with interval length dt; offsets are measured from playback
// start and the profile repeats beyond its end.
func traceIntegrator(trace []units.ByteRate, dt time.Duration) func(from, to time.Duration) units.Bytes {
	prefix := make([]float64, len(trace)+1) // bytes consumed by end of interval i
	for i, r := range trace {
		prefix[i+1] = prefix[i] + float64(r)*dt.Seconds()
	}
	total := prefix[len(trace)]
	span := time.Duration(len(trace)) * dt
	at := func(t time.Duration) float64 {
		if t <= 0 {
			return 0
		}
		wraps := float64(t / span)
		rem := t % span
		i := int(rem / dt)
		frac := float64(rem%dt) / float64(dt)
		return wraps*total + prefix[i] + (prefix[i+1]-prefix[i])*frac
	}
	return func(from, to time.Duration) units.Bytes {
		return units.Bytes(at(to) - at(from))
	}
}

// pauseIntegrator builds a consumption integral for a play/pause process:
// alternating exponentially distributed play (consuming at rate) and
// pause (consuming nothing) phases, precomputed out to horizon seconds.
func pauseIntegrator(rng *sim.RNG, rate units.ByteRate, meanPlay, meanPause, horizon float64) func(from, to time.Duration) units.Bytes {
	// boundaries[i] alternates play-end, pause-end, ...; consumed[i] is the
	// cumulative consumption at boundaries[i].
	var boundaries []float64
	var consumed []float64
	t, c := 0.0, 0.0
	playing := true
	for t < horizon {
		var d float64
		if playing {
			d = rng.Exp(meanPlay)
			c += float64(rate) * d
		} else {
			d = rng.Exp(meanPause)
		}
		t += d
		boundaries = append(boundaries, t)
		consumed = append(consumed, c)
		playing = !playing
	}
	// The scheduler drains every player each cycle, so at() runs O(cycles)
	// times per stream; a linear scan over all boundaries made each drain
	// O(phases) and a run O(n²). Binary search over the sorted boundary
	// list keeps each lookup O(log n).
	at := func(x time.Duration) float64 {
		xs := x.Seconds()
		if xs <= 0 || len(boundaries) == 0 {
			return 0
		}
		i := sort.SearchFloat64s(boundaries, xs) // first boundary ≥ xs
		if i == len(boundaries) {
			return consumed[len(consumed)-1] // beyond the horizon: treat as paused
		}
		prevT, prevC := 0.0, 0.0
		if i > 0 {
			prevT, prevC = boundaries[i-1], consumed[i-1]
		}
		if i%2 == 0 { // inside a play phase
			return prevC + float64(rate)*(xs-prevT)
		}
		return prevC // inside a pause phase
	}
	return func(from, to time.Duration) units.Bytes {
		return units.Bytes(at(to) - at(from))
	}
}
