package server

import (
	"math"
	"sort"
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/ring"
	"memstream/internal/sim"
	"memstream/internal/tier"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// rig is the shared run-core every architecture driver builds on: it owns
// the simulation engine, the per-stream playback state, the run's RNG,
// the catalog and the drawn stream population, applies the playback
// shaping extensions (VBR traces with cushions, the pause integrator),
// drives the per-cycle scheduling stages, performs the final drain, and
// assembles the cross-mode Result fields. Drivers contribute only their
// architecture: device/bank setup, per-player placement and start times,
// and the per-cycle scheduling stage each cycleLoop runs.
//
// The steady-state machinery is batch-oriented (see state.go): player
// state lives in struct-of-arrays owned by the arena, consumption
// profiles index shared cumulative tables instead of capturing a closure
// per player, service chains carry pooled chainItem values instead of
// boxed closures, and C-LOOK schedulers are pooled across cycles. All of
// it reproduces the historical per-player-object arithmetic operation for
// operation.
//
// Determinism contract: newRig consumes the run RNG exactly as every
// driver historically did (one Uint64 for the stream generator), and the
// shaping helpers Split it in driver-controlled order — so a refactored
// driver reproduces the pre-rig byte-identical Results for any seed.
type rig struct {
	cfg     Config
	ar      *Arena
	eng     *sim.Engine
	rng     *sim.RNG
	dsk     *disk.Device
	cat     *workload.Catalog
	set     *workload.Set
	margins *sim.Reservoir
	n       int
	rate    units.ByteRate // every stream's nominal CBR rate

	// tierDevs are the bank devices registered for Result accounting
	// (busy time, IO counts, utilization over cfg.K).
	tierDevs []tier.Device

	// probe, when attached (Config.Trace), records the per-cycle time
	// series surfaced as Result.Trace. Sampling piggybacks on the cycle
	// events themselves, so attachment never perturbs the run.
	probe *probe

	// Cache-side fill accounting for the probe's hit deltas
	// (Cached/Hybrid drivers note each fill served from the cache bank).
	cacheFills     uint64
	cacheFillBytes units.Bytes
}

// newRig instantiates the shared machinery: the disk, the catalog laid
// out on it, the engine and player state (from Config.Arena when a
// pooled arena is supplied, fresh otherwise), the run RNG and the stream
// population drawn from it.
func newRig(cfg Config) (*rig, error) {
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		return nil, err
	}
	cat, err := newCatalog(cfg, dsk.Geometry().BlockSize)
	if err != nil {
		return nil, err
	}
	ar := cfg.Arena
	if ar == nil {
		ar = NewArena()
	}
	ar.reset(cfg.N, cfg.Seed^0xabcdef)
	rng := sim.NewRNG(cfg.Seed)
	// The generator seed is drawn unconditionally — even when a shard-local
	// population is injected — so the rig consumes the run RNG identically
	// on both paths and the shaping splits downstream see the same stream.
	gen := workload.NewGenerator(cat, rng.Uint64())
	set := cfg.Population
	if set == nil {
		var err error
		set, err = gen.DrawRange(cfg.FirstStreamID, cfg.N)
		if err != nil {
			return nil, err
		}
	}
	r := &rig{
		cfg: cfg, ar: ar, eng: &ar.eng, rng: rng, dsk: dsk, cat: cat, set: set,
		margins: ar.margins, n: cfg.N, rate: cfg.BitRate,
	}
	if cfg.Trace {
		r.probe = newProbe(r)
	}
	return r, nil
}

// diskPos maps a drawn stream to its starting block on the disk image.
func (r *rig) diskPos(st workload.Stream) int64 {
	g := r.dsk.Geometry()
	return (st.Title.StartLB + int64(st.Offset/g.BlockSize)) % g.Blocks
}

// addPlayer installs stream i's playback state, with playback beginning
// (and margin tracking anchored) at startAt.
func (r *rig) addPlayer(i int, pos int64, startAt time.Duration) {
	ps := &r.ar.ps
	ps.pos[i] = pos
	ps.startAt[i] = startAt
	ps.lastDrain[i] = startAt
}

// drainTo advances stream i's playback to time t: the consumption over
// [lastDrain, t) leaves its DRAM buffer, underflows are recorded when the
// buffer held less than the requirement, and the post-drain level lands
// in the margins reservoir (in playback seconds).
func (r *rig) drainTo(i int, t time.Duration) {
	ps := &r.ar.ps
	if t <= ps.startAt[i] || t <= ps.lastDrain[i] {
		return
	}
	from := ps.lastDrain[i]
	if from < ps.startAt[i] {
		from = ps.startAt[i]
	}
	var need units.Bytes
	if ref := ps.cons[i]; ref.kind != consCBR {
		need = r.ar.tab.consume(ref, from-ps.startAt[i], t-ps.startAt[i])
	} else {
		need = units.BytesIn(r.rate, t-from)
	}
	if need > 0 {
		if need <= ps.level[i] {
			ps.level[i] -= need
			ps.used -= need
		} else {
			ps.deficit[i] += need - ps.level[i]
			ps.used -= ps.level[i]
			ps.level[i] = 0
			ps.underflow[i]++
		}
	}
	r.margins.Observe(ps.level[i].Seconds(r.rate))
	ps.lastDrain[i] = t
}

// fill stages n bytes arriving from a device IO into stream i's buffer.
// The rig's pool is unlimited, so fills cannot fail; what matters is the
// occupancy accounting and its high-water mark.
func (r *rig) fill(i int, n units.Bytes) {
	ps := &r.ar.ps
	ps.level[i] += n
	ps.used += n
	if ps.used > ps.highWater {
		ps.highWater = ps.used
	}
}

// level returns stream i's current buffered bytes.
func (r *rig) level(i int) units.Bytes { return r.ar.ps.level[i] }

// shapeInteractive wires the pause/resume consumption integrals when
// Config.PausedFraction asks for interactive playback: every player
// alternates exponentially distributed play and pause phases so the
// configured fraction of stream-time is paused. Consumes one RNG split.
func (r *rig) shapeInteractive(cycle, duration time.Duration) {
	if !(r.cfg.PausedFraction > 0 && r.cfg.PausedFraction < 1) {
		return
	}
	prng := r.rng.Split()
	meanPlay := 5 * cycle.Seconds()
	meanPause := meanPlay * r.cfg.PausedFraction / (1 - r.cfg.PausedFraction)
	horizon := (duration + cycle).Seconds()
	for i := 0; i < r.n; i++ {
		r.ar.ps.cons[i] = r.ar.tab.addPause(prng, float64(r.rate), meanPlay, meanPause, horizon)
	}
}

// shapeVBR wires VBR playback (the paper's footnote 1) when Config.VBRCoV
// asks for it: each player consumes along a normalized per-interval rate
// trace, and unless NoCushion is set the CushionFor prefetch lands in its
// buffer before the run starts. skip, when non-nil, excludes players
// (recorders never play back). Consumes one RNG split.
func (r *rig) shapeVBR(interval time.Duration, intervals int, skip func(i int) bool) error {
	if r.cfg.VBRCoV <= 0 {
		return nil
	}
	vrng := r.rng.Split()
	for i := 0; i < r.n; i++ {
		if skip != nil && skip(i) {
			continue
		}
		trace := workload.VBRTrace(vrng, r.cfg.BitRate, r.cfg.VBRCoV, intervals)
		normalizeTrace(trace, r.cfg.BitRate)
		r.ar.ps.cons[i] = r.ar.tab.addTrace(trace, interval)
		if !r.cfg.NoCushion {
			r.fill(i, workload.CushionFor(trace, interval))
		}
	}
	return nil
}

// span resolves the run length for non-quantized horizons: the configured
// Duration, or def when unset.
func (r *rig) span(def time.Duration) time.Duration {
	if r.cfg.Duration > 0 {
		return r.cfg.Duration
	}
	return def
}

// horizon resolves a cycle-quantized run length: the configured Duration
// (or defCycles cycles when unset) floored to whole cycles with a minimum
// of minCycles. It returns the cycle count, the quantized end, and the
// raw un-quantized duration (the pause-process horizon spans the latter).
func (r *rig) horizon(cycle time.Duration, defCycles, minCycles int64) (cycles int64, end, raw time.Duration) {
	raw = r.span(time.Duration(defCycles) * cycle)
	cycles = int64(raw / cycle)
	if cycles < minCycles {
		cycles = minCycles
	}
	return cycles, time.Duration(cycles) * cycle, raw
}

// newChain hands out a pooled FIFO service chain on the rig's engine.
func (r *rig) newChain() *chain { return r.ar.getChain(r.eng) }

// getSched / putSched pool the per-cycle C-LOOK schedulers: a cycle stage
// borrows one, its dispatch items drain it, and the item that empties it
// returns it — so consecutive cycles whose batches overlap in time each
// hold their own scheduler while an idle run recycles a single one.
func (r *rig) getSched() *disk.Scheduler { return r.ar.getSched(r.dsk) }
func (r *rig) putSched(s *disk.Scheduler) {
	if s.Len() == 0 {
		r.ar.putSched(s)
	}
}

// cycleLoop drives one periodic scheduling stage: fn runs once per cycle
// c ∈ [first, first+n) at time c·period. When a probe is attached, the
// cycle's resource sample is taken inside the same engine event right
// after fn, so attaching the probe changes neither the event calendar nor
// any Result field.
//
// All cycles are scheduled upfront (not self-chained) so that when
// several loops with different periods share the rig, their tie-break
// order at coinciding timestamps is fixed by driver setup order — the
// determinism contract the pinned Result fingerprints enforce. The
// per-cycle state lives in one contiguous slice and events go through
// ScheduleArg, so a loop of n cycles costs one allocation instead of a
// closure per cycle.
func (r *rig) cycleLoop(source string, period time.Duration, first, n int64, fn func(c int64)) {
	if n <= 0 {
		return
	}
	calls := make([]cycleCall, n)
	for c := first; c < first+n; c++ {
		cc := &calls[c-first]
		*cc = cycleCall{r: r, source: source, fn: fn, c: c}
		r.eng.ScheduleArg(time.Duration(c)*period, runCycleCall, cc)
	}
}

// cycleCall is one scheduled cycle of a cycleLoop.
type cycleCall struct {
	r      *rig
	source string
	fn     func(c int64)
	c      int64
}

func runCycleCall(arg any) {
	cc := arg.(*cycleCall)
	cc.fn(cc.c)
	if cc.r.probe != nil {
		cc.r.probe.sample(cc.source, cc.c)
	}
}

// finish schedules the final drain of every player at end and runs the
// calendar dry.
func (r *rig) finish(end time.Duration) {
	r.eng.Schedule(end, func() {
		for i := 0; i < r.n; i++ {
			r.drainTo(i, end)
		}
	})
	r.eng.Run()
}

// trackTier registers bank devices for the Result's middle-tier
// accounting (the MEMS-named Result fields, kept for artifact
// stability).
func (r *rig) trackTier(devs ...tier.Device) {
	r.tierDevs = append(r.tierDevs, devs...)
}

// noteCacheFill accounts one DRAM fill served from the cache bank — the
// per-cycle cache-hit delta the probe reports.
func (r *rig) noteCacheFill(b units.Bytes) {
	r.cacheFills++
	r.cacheFillBytes += b
}

// result assembles the cross-mode Result fields: identity, horizon,
// event/IO/busy accounting, DRAM high water, underflow totals, the
// delivery-margin quantile and, when a probe ran, the trace. Drivers fill
// the mode-specific fields afterwards (PlannedDRAM, the cache split,
// writer and best-effort accounting).
func (r *rig) result(mode Mode, end time.Duration, cycles int64) Result {
	res := Result{
		Mode:          mode,
		Streams:       r.cfg.N,
		SimulatedTime: end,
		Cycles:        cycles,
		Events:        r.eng.Executed(),
		DRAMHighWater: r.ar.ps.highWater,
		DiskBusy:      r.dsk.BusyTime(),
		DiskUtil:      float64(r.dsk.BusyTime()) / float64(end),
		DiskIOs:       r.dsk.Served(),
	}
	var memsBusy time.Duration
	for _, d := range r.tierDevs {
		memsBusy += d.BusyTime()
		res.MEMSIOs += d.Served()
	}
	if len(r.tierDevs) > 0 {
		res.MEMSBusy = memsBusy
		res.MEMSUtil = float64(memsBusy) / (float64(end) * float64(r.cfg.K))
	}
	for i := 0; i < r.n; i++ {
		res.Underflows += int(r.ar.ps.underflow[i])
		res.UnderflowBytes += r.ar.ps.deficit[i]
	}
	if m, ok := r.margins.Quantile(0.05); ok {
		res.MarginP5 = units.Seconds(m)
	}
	if r.probe != nil {
		res.Trace = r.probe.trace
	}
	return res
}

// chainItem is one unit of work on a service chain: a static-per-run
// handler plus the item's dynamic operands, carried by value through the
// chain's ring buffer. Drivers build one handler closure per item shape
// per run (capturing the run's banks, chains and geometry once) instead
// of boxing a fresh closure per item per cycle; the operand fields cover
// every driver's item shapes.
type chainItem struct {
	fn     func(it *chainItem, start time.Duration) time.Duration
	sched  *disk.Scheduler // C-LOOK dispatch items
	req    device.Request  // bank/device service items
	dev    int32           // bank device index
	stream int32           // player index
	cycle  int64           // disk-cycle parity for staged slots
}

// chain serializes work on one device: items run back-to-back in FIFO
// order, each receiving its start time and returning its finish time.
// Two priorities exist: real-time items (submit) always run before
// queued best-effort items (submitLow), which soak up spare bandwidth
// (§3.1.2) without delaying any already-queued real-time work.
//
// Both queues are ring buffers of chainItem values (O(1) dequeue at any
// depth, no per-item boxing) and the completion event goes through the
// kernel's ScheduleArg fast path, so a busy chain's dispatch loop
// allocates nothing in steady state.
type chain struct {
	eng  *sim.Engine
	busy bool
	last time.Duration
	// cur is the item in service. It lives in the chain (not a runNext
	// local) because the handler receives its address through an indirect
	// call, which would otherwise force a per-item heap escape.
	cur chainItem
	q   ring.Ring[chainItem]
	low ring.Ring[chainItem]
}

// reset re-arms a pooled chain, keeping both rings' storage.
func (c *chain) reset() {
	c.busy = false
	c.last = 0
	c.cur = chainItem{}
	c.q.Reset()
	c.low.Reset()
}

func (c *chain) submit(it chainItem) {
	c.q.PushBack(it)
	if !c.busy {
		c.busy = true
		c.runNext()
	}
}

// submitLow enqueues best-effort work served only when no real-time item
// is waiting.
func (c *chain) submitLow(it chainItem) {
	c.low.PushBack(it)
	if !c.busy {
		c.busy = true
		c.runNext()
	}
}

// depth is the number of items pending on the chain, including the one in
// service — the queue-depth gauge the probe samples.
func (c *chain) depth() int {
	n := c.q.Len() + c.low.Len()
	if c.busy {
		n++
	}
	return n
}

// chainRunNext is the static ScheduleArg callback driving the chain.
func chainRunNext(arg any) { arg.(*chain).runNext() }

func (c *chain) runNext() {
	switch {
	case c.q.Len() > 0:
		c.cur = c.q.PopFront()
	case c.low.Len() > 0:
		c.cur = c.low.PopFront()
	default:
		c.busy = false
		return
	}
	start := c.eng.Now()
	if c.last > start {
		start = c.last
	}
	finish := c.cur.fn(&c.cur, start)
	if finish < start {
		finish = start
	}
	c.last = finish
	c.eng.ScheduleArg(finish-c.eng.Now(), chainRunNext, c)
}

// normalizeTrace rescales a VBR trace so its mean is exactly the nominal
// rate — the time-cycle supply delivers the nominal rate, so an off-mean
// trace would drift rather than oscillate. A trace whose sum is not a
// positive finite number (all-zero, or corrupted with NaN/Inf) is left
// untouched: dividing by it would inject NaN/Inf rates straight into the
// consumption integral.
func normalizeTrace(trace []units.ByteRate, nominal units.ByteRate) {
	var sum float64
	for _, r := range trace {
		sum += float64(r)
	}
	if !(sum > 0) || math.IsInf(sum, 1) {
		return
	}
	scale := float64(nominal) * float64(len(trace)) / sum
	for i := range trace {
		trace[i] = units.ByteRate(float64(trace[i]) * scale)
	}
}

// traceIntegrator returns the consumption integral of a piecewise-constant
// rate profile with interval length dt; offsets are measured from playback
// start and the profile repeats beyond its end.
//
// The steady-state rig consumes traces through consTables (state.go),
// which reproduces this arithmetic over shared arrays; the closure form
// survives as the behavioral reference the equivalence tests compare
// against.
func traceIntegrator(trace []units.ByteRate, dt time.Duration) func(from, to time.Duration) units.Bytes {
	prefix := make([]float64, len(trace)+1) // bytes consumed by end of interval i
	for i, r := range trace {
		prefix[i+1] = prefix[i] + float64(r)*dt.Seconds()
	}
	total := prefix[len(trace)]
	span := time.Duration(len(trace)) * dt
	at := func(t time.Duration) float64 {
		if t <= 0 {
			return 0
		}
		wraps := float64(t / span)
		rem := t % span
		i := int(rem / dt)
		frac := float64(rem%dt) / float64(dt)
		return wraps*total + prefix[i] + (prefix[i+1]-prefix[i])*frac
	}
	return func(from, to time.Duration) units.Bytes {
		return units.Bytes(at(to) - at(from))
	}
}

// pauseIntegrator builds a consumption integral for a play/pause process:
// alternating exponentially distributed play (consuming at rate) and
// pause (consuming nothing) phases, precomputed out to horizon seconds.
//
// Like traceIntegrator, this closure form is the behavioral reference for
// consTables.addPause/pauseAt, which the rig uses in steady state.
func pauseIntegrator(rng *sim.RNG, rate units.ByteRate, meanPlay, meanPause, horizon float64) func(from, to time.Duration) units.Bytes {
	// boundaries[i] alternates play-end, pause-end, ...; consumed[i] is the
	// cumulative consumption at boundaries[i].
	var boundaries []float64
	var consumed []float64
	t, c := 0.0, 0.0
	playing := true
	for t < horizon {
		var d float64
		if playing {
			d = rng.Exp(meanPlay)
			c += float64(rate) * d
		} else {
			d = rng.Exp(meanPause)
		}
		t += d
		boundaries = append(boundaries, t)
		consumed = append(consumed, c)
		playing = !playing
	}
	// The scheduler drains every player each cycle, so at() runs O(cycles)
	// times per stream; a linear scan over all boundaries made each drain
	// O(phases) and a run O(n²). Binary search over the sorted boundary
	// list keeps each lookup O(log n).
	at := func(x time.Duration) float64 {
		xs := x.Seconds()
		if xs <= 0 || len(boundaries) == 0 {
			return 0
		}
		i := sort.SearchFloat64s(boundaries, xs) // first boundary ≥ xs
		if i == len(boundaries) {
			return consumed[len(consumed)-1] // beyond the horizon: treat as paused
		}
		prevT, prevC := 0.0, 0.0
		if i > 0 {
			prevT, prevC = boundaries[i-1], consumed[i-1]
		}
		if i%2 == 0 { // inside a play phase
			return prevC + float64(rate)*(xs-prevT)
		}
		return prevC // inside a pause phase
	}
	return func(from, to time.Duration) units.Bytes {
		return units.Bytes(at(to) - at(from))
	}
}
