package server

import (
	"math"
	"testing"
	"time"

	"memstream/internal/units"
)

// The edges of the VBR shaping path the SoA rewrite must preserve:
// normalizeTrace on degenerate traces, and shapeVBR's skip and
// early-return paths.

func TestNormalizeTraceSingleInterval(t *testing.T) {
	// A one-interval trace's mean is its only entry, so normalization
	// must rescale it to exactly the nominal rate.
	tr := []units.ByteRate{123456}
	normalizeTrace(tr, units.MBPS)
	if tr[0] != units.MBPS {
		t.Errorf("single-interval trace normalized to %v, want %v", tr[0], units.MBPS)
	}
}

func TestNormalizeTraceAllEqualRates(t *testing.T) {
	// An all-equal trace already has zero variance; normalization must
	// map every interval to the nominal rate (within one float64 ulp of
	// the scale multiply) and leave the trace flat.
	tr := make([]units.ByteRate, 16)
	for i := range tr {
		tr[i] = 3 * units.KBPS
	}
	normalizeTrace(tr, units.MBPS)
	for i, r := range tr {
		if math.Abs(float64(r)-float64(units.MBPS)) > 1e-6 {
			t.Fatalf("interval %d = %v, want %v", i, r, units.MBPS)
		}
		if r != tr[0] {
			t.Fatalf("normalization broke flatness: tr[%d]=%v, tr[0]=%v", i, r, tr[0])
		}
	}
}

func TestNormalizeTraceDegenerateSumsUntouched(t *testing.T) {
	// Zero-sum and infinite-sum traces cannot be rescaled; normalizeTrace
	// must leave them as-is rather than producing NaN/Inf rates.
	zero := []units.ByteRate{0, 0, 0}
	normalizeTrace(zero, units.MBPS)
	for i, r := range zero {
		if r != 0 {
			t.Errorf("zero trace interval %d became %v", i, r)
		}
	}
	inf := []units.ByteRate{units.ByteRate(math.Inf(1)), units.MBPS}
	normalizeTrace(inf, units.MBPS)
	if !math.IsInf(float64(inf[0]), 1) || inf[1] != units.MBPS {
		t.Errorf("infinite-sum trace was rescaled: %v", inf)
	}
}

// newVBRRig builds a rig with players installed, ready for shapeVBR.
func newVBRRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	if err := validate(&cfg); err != nil {
		t.Fatal(err)
	}
	r, err := newRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range r.set.Streams {
		r.addPlayer(i, r.diskPos(st), time.Second)
	}
	return r
}

func TestShapeVBRSkipPath(t *testing.T) {
	cfg := baseConfig(Direct, 8, units.MBPS)
	cfg.VBRCoV = 0.3
	r := newVBRRig(t, cfg)
	skip := func(i int) bool { return i%2 == 0 }
	if err := r.shapeVBR(100*time.Millisecond, 12, skip); err != nil {
		t.Fatal(err)
	}
	ps := &r.ar.ps
	for i := 0; i < r.n; i++ {
		if skip(i) {
			// Skipped players (recorders in the buffered pipeline) keep
			// CBR consumption and receive no cushion prefetch.
			if ps.cons[i].kind != consCBR {
				t.Errorf("skipped player %d got consumption kind %d, want CBR", i, ps.cons[i].kind)
			}
			if ps.level[i] != 0 {
				t.Errorf("skipped player %d was prefetched %v bytes", i, ps.level[i])
			}
		} else {
			if ps.cons[i].kind != consTrace {
				t.Errorf("player %d got consumption kind %d, want trace", i, ps.cons[i].kind)
			}
			if ps.level[i] <= 0 {
				t.Errorf("player %d has no cushion (level %v)", i, ps.level[i])
			}
		}
	}
	// Skipped players draw no trace, so only the non-skipped half
	// consumed the VBR split: exactly 4 trace tables exist.
	if got := len(r.ar.tab.traces); got != 4 {
		t.Errorf("trace tables = %d, want 4 (one per non-skipped player)", got)
	}
}

func TestShapeVBRNoCushion(t *testing.T) {
	cfg := baseConfig(Direct, 4, units.MBPS)
	cfg.VBRCoV = 0.3
	cfg.NoCushion = true
	r := newVBRRig(t, cfg)
	if err := r.shapeVBR(100*time.Millisecond, 12, nil); err != nil {
		t.Fatal(err)
	}
	ps := &r.ar.ps
	for i := 0; i < r.n; i++ {
		if ps.cons[i].kind != consTrace {
			t.Errorf("player %d got consumption kind %d, want trace", i, ps.cons[i].kind)
		}
		if ps.level[i] != 0 {
			t.Errorf("NoCushion player %d was prefetched %v bytes", i, ps.level[i])
		}
	}
}

func TestShapeVBRDisabledConsumesNoRNG(t *testing.T) {
	// With VBRCoV unset, shapeVBR must return before taking its RNG
	// split, leaving the run RNG stream exactly where it was — the
	// invariant that keeps CBR goldens stable when the VBR path evolves.
	cfg := baseConfig(Direct, 4, units.MBPS)
	a := newVBRRig(t, cfg)
	b := newVBRRig(t, cfg)
	if err := a.shapeVBR(100*time.Millisecond, 12, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if x, y := a.rng.Uint64(), b.rng.Uint64(); x != y {
			t.Fatalf("draw %d diverged after disabled shapeVBR: %d vs %d", i, x, y)
		}
	}
	for i := 0; i < a.n; i++ {
		if a.ar.ps.cons[i].kind != consCBR || a.ar.ps.level[i] != 0 {
			t.Fatalf("disabled shapeVBR touched player %d", i)
		}
	}
}
