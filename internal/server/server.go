// Package server is a discrete-event simulation of the full streaming
// media server: the paper's three architectures (direct disk→DRAM,
// disk→MEMS-buffer→DRAM, disk+MEMS-cache→DRAM) plus the §7 hybrid split
// and the EDF scheduling baseline. It wires the device simulators, the
// time-cycle schedules derived from the analytical model, the MEMS bank
// managers and the DRAM pool together, and measures what the model only
// predicts: underflows, delivery margins, device utilization and actual
// DRAM occupancy. Extensions: write streams, VBR playback with cushions,
// interactive pause/resume, and best-effort traffic in spare bandwidth.
package server

import (
	"fmt"
	"math"
	"sort"
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/dram"
	"memstream/internal/mems"
	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// Mode selects the server architecture.
type Mode uint8

// Architectures.
const (
	// Direct streams straight from disk to DRAM (the baseline).
	Direct Mode = iota
	// Buffered stages every disk IO through a k-device MEMS buffer.
	Buffered
	// Cached serves popular titles from a k-device MEMS cache and the
	// rest from disk.
	Cached
	// Hybrid splits the bank: CacheDevices pin popular titles, the rest
	// buffer the misses' disk IOs (the paper's §7 future-work split).
	Hybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "direct"
	case Buffered:
		return "mems-buffer"
	case Cached:
		return "mems-cache"
	case Hybrid:
		return "mems-hybrid"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Config describes one simulation run.
type Config struct {
	Mode Mode

	Disk disk.Params
	MEMS mems.Params
	K    int // MEMS devices (Buffered/Cached/Hybrid)
	// CacheDevices is the cache share of the bank in Hybrid mode
	// (0 < CacheDevices < K).
	CacheDevices int

	CachePolicy model.CachePolicy // Cached only

	N       int            // concurrent streams
	Writers int            // of N, how many are recorders (Buffered mode only)
	BitRate units.ByteRate // CBR bit-rate for every stream
	Titles  int            // catalog size
	X, Y    float64        // popularity distribution (Cached draws titles by it)

	// UseEDF switches the Direct architecture from time-cycle scheduling
	// to earliest-deadline-first — the baseline scheduler class the
	// paper's related work contrasts (Daigle & Strosnider).
	UseEDF bool

	// VBRCoV, when positive, makes playback variable-bit-rate with this
	// coefficient of variation around BitRate (Direct mode). Per the
	// paper's footnote 1, VBR is handled as CBR plus a memory cushion:
	// the simulator prefetches each stream's cushion before playback.
	// NoCushion suppresses the prefetch, demonstrating why footnote 1
	// needs it.
	VBRCoV    float64
	NoCushion bool

	// PausedFraction, when positive (Direct mode), makes playback
	// interactive: each stream alternates exponentially distributed play
	// and pause phases so that this fraction of stream-time is paused.
	// The scheduler skips IOs for streams whose buffers are full — the
	// bandwidth reclamation interactive servers (paper §6, [21]) perform.
	PausedFraction float64

	// BestEffort, when true (Buffered mode), keeps a standing queue of
	// non-real-time MEMS reads that soak up the bank's spare bandwidth
	// (§3.1.2: "Spare bandwidth, if available, can be used for
	// non-real-time traffic"). Result.BestEffortBytes reports how much
	// they moved; real-time traffic keeps strict priority.
	BestEffort bool

	Duration time.Duration // simulated run length; 0 = 10 disk cycles
	Seed     uint64
}

// Result summarizes a run.
type Result struct {
	Mode    Mode
	Streams int

	SimulatedTime time.Duration
	Cycles        int64
	// Events is how many simulation-kernel events fired during the run
	// (Engine.Executed) — the per-run cost metric the experiment harness
	// exports.
	Events uint64

	// Real-time delivery.
	Underflows     int
	UnderflowBytes units.Bytes

	// Resources.
	DRAMHighWater units.Bytes
	PlannedDRAM   units.Bytes // the model's N·S prediction
	DiskBusy      time.Duration
	MEMSBusy      time.Duration
	DiskUtil      float64
	MEMSUtil      float64

	// IO accounting.
	DiskIOs uint64
	MEMSIOs uint64

	// Cached mode split.
	FromCache int
	FromDisk  int

	// Write-stream accounting (Buffered mode with Writers > 0): the peak
	// DRAM a recorder accumulated while waiting for its data to be staged
	// to MEMS. Bounded occupancy means the reverse pipeline keeps up.
	WriterPeakDRAM units.Bytes

	// BestEffortBytes is the non-real-time data the bank moved in its
	// spare bandwidth (Buffered mode with BestEffort).
	BestEffortBytes units.Bytes

	// MarginP5 is the 5th-percentile delivery margin: how many seconds of
	// playback remained buffered at drain instants. Positive margins mean
	// deadlines were met with room; values near zero flag a schedule
	// running on the edge.
	MarginP5 time.Duration
}

// chain serializes work on one device: items run back-to-back in FIFO
// order, each receiving its start time and returning its finish time.
// Two priorities exist: real-time items (submit) always run before
// queued best-effort items (submitLow), which soak up spare bandwidth
// (§3.1.2) without delaying any already-queued real-time work.
type chain struct {
	eng  *sim.Engine
	busy bool
	last time.Duration
	q    []func(start time.Duration) time.Duration
	low  []func(start time.Duration) time.Duration
}

func (c *chain) submit(fn func(start time.Duration) time.Duration) {
	c.q = append(c.q, fn)
	if !c.busy {
		c.busy = true
		c.runNext()
	}
}

// submitLow enqueues best-effort work served only when no real-time item
// is waiting.
func (c *chain) submitLow(fn func(start time.Duration) time.Duration) {
	c.low = append(c.low, fn)
	if !c.busy {
		c.busy = true
		c.runNext()
	}
}

func (c *chain) runNext() {
	var fn func(start time.Duration) time.Duration
	switch {
	case len(c.q) > 0:
		fn = c.q[0]
		c.q = c.q[:copy(c.q, c.q[1:])]
	case len(c.low) > 0:
		fn = c.low[0]
		c.low = c.low[:copy(c.low, c.low[1:])]
	default:
		c.busy = false
		return
	}
	start := c.eng.Now()
	if c.last > start {
		start = c.last
	}
	finish := fn(start)
	if finish < start {
		finish = start
	}
	c.last = finish
	c.eng.Schedule(finish-c.eng.Now(), c.runNext)
}

// player tracks one stream's playback state. Playback begins at startAt
// (after the priming cycle) and drains lazily: every fill and the end of
// the run advance the drain clock.
type player struct {
	buf       *dram.StreamBuffer
	pos       int64 // next block to read from its source device
	lastDrain time.Duration
	startAt   time.Duration
	deficit   units.Bytes
	underflow int

	// consume, when set, integrates a VBR consumption profile over
	// [from, to) measured from playback start; nil means CBR at the
	// buffer's nominal rate.
	consume func(from, to time.Duration) units.Bytes

	// margins, when set, records the post-drain buffer level in playback
	// seconds — the delivery margin distribution.
	margins *sim.Reservoir
}

func (p *player) drainTo(t time.Duration) {
	if t <= p.startAt || t <= p.lastDrain {
		return
	}
	from := p.lastDrain
	if from < p.startAt {
		from = p.startAt
	}
	var d units.Bytes
	if p.consume != nil {
		d = p.buf.DrainBytes(p.consume(from-p.startAt, t-p.startAt))
	} else {
		d = p.buf.Drain(t - from)
	}
	if d > 0 {
		p.deficit += d
		p.underflow++
	}
	if p.margins != nil {
		p.margins.Observe(p.buf.Level().Seconds(p.buf.Rate()))
	}
	p.lastDrain = t
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	if err := validate(&cfg); err != nil {
		return Result{}, err
	}
	switch cfg.Mode {
	case Direct:
		if cfg.UseEDF {
			return runEDF(cfg)
		}
		return runDirect(cfg)
	case Buffered:
		return runBuffered(cfg)
	case Cached:
		return runCached(cfg)
	case Hybrid:
		return runHybrid(cfg)
	}
	return Result{}, fmt.Errorf("server: unknown mode %v", cfg.Mode)
}

func validate(cfg *Config) error {
	if cfg.N <= 0 {
		return fmt.Errorf("server: need at least one stream")
	}
	if cfg.BitRate <= 0 {
		return fmt.Errorf("server: non-positive bit-rate")
	}
	if cfg.Titles <= 0 {
		cfg.Titles = 100
	}
	if cfg.X == 0 && cfg.Y == 0 {
		cfg.X, cfg.Y = 10, 90
	}
	if cfg.Mode != Direct && cfg.K <= 0 {
		return fmt.Errorf("server: mode %v needs K ≥ 1", cfg.Mode)
	}
	if cfg.Writers < 0 || cfg.Writers > cfg.N {
		return fmt.Errorf("server: writers %d outside [0, N=%d]", cfg.Writers, cfg.N)
	}
	if cfg.Writers > 0 && cfg.Mode != Buffered {
		return fmt.Errorf("server: write streams are supported in the buffered pipeline only")
	}
	return nil
}

// diskSpec derives the model-facing spec from an instantiated drive. The
// rate is the block-weighted effective zone rate, not the outer-zone
// maximum: simulated content spans the whole surface, so planning against
// the maximum would overcommit the inner zones.
func diskSpec(d *disk.Device) model.DeviceSpec {
	return model.DeviceSpec{Rate: d.EffectiveRate(), Latency: d.Params().AvgAccess()}
}

// memsSpec derives the model-facing spec; the paper always charges MEMS
// the maximum positioning latency.
func memsSpec(p mems.Params) model.DeviceSpec {
	return model.DeviceSpec{Rate: p.Rate, Latency: p.MaxLatency()}
}

// mediaClass builds a media class for the configured bit-rate. Feature-
// length titles keep the catalog comfortably larger than a small MEMS
// bank, so cache-capacity effects are visible in simulation.
func mediaClass(br units.ByteRate) workload.MediaClass {
	return workload.MediaClass{Name: "sim", BitRate: br, Duration: 100 * time.Minute}
}

// newCatalog lays the configured catalog out on the disk image.
func newCatalog(cfg Config, blockSize units.Bytes) (*workload.Catalog, error) {
	d := workload.XYDistribution{X: cfg.X, Y: cfg.Y}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return workload.NewCatalog(cfg.Titles, mediaClass(cfg.BitRate), d.Weights(cfg.Titles), blockSize)
}

// normalizeTrace rescales a VBR trace so its mean is exactly the nominal
// rate — the time-cycle supply delivers the nominal rate, so an off-mean
// trace would drift rather than oscillate. A trace whose sum is not a
// positive finite number (all-zero, or corrupted with NaN/Inf) is left
// untouched: dividing by it would inject NaN/Inf rates straight into the
// consumption integral.
func normalizeTrace(trace []units.ByteRate, nominal units.ByteRate) {
	var sum float64
	for _, r := range trace {
		sum += float64(r)
	}
	if !(sum > 0) || math.IsInf(sum, 1) {
		return
	}
	scale := float64(nominal) * float64(len(trace)) / sum
	for i := range trace {
		trace[i] = units.ByteRate(float64(trace[i]) * scale)
	}
}

// traceIntegrator returns the consumption integral of a piecewise-constant
// rate profile with interval length dt; offsets are measured from playback
// start and the profile repeats beyond its end.
func traceIntegrator(trace []units.ByteRate, dt time.Duration) func(from, to time.Duration) units.Bytes {
	prefix := make([]float64, len(trace)+1) // bytes consumed by end of interval i
	for i, r := range trace {
		prefix[i+1] = prefix[i] + float64(r)*dt.Seconds()
	}
	total := prefix[len(trace)]
	span := time.Duration(len(trace)) * dt
	at := func(t time.Duration) float64 {
		if t <= 0 {
			return 0
		}
		wraps := float64(t / span)
		rem := t % span
		i := int(rem / dt)
		frac := float64(rem%dt) / float64(dt)
		return wraps*total + prefix[i] + (prefix[i+1]-prefix[i])*frac
	}
	return func(from, to time.Duration) units.Bytes {
		return units.Bytes(at(to) - at(from))
	}
}

// pauseIntegrator builds a consumption integral for a play/pause process:
// alternating exponentially distributed play (consuming at rate) and
// pause (consuming nothing) phases, precomputed out to horizon seconds.
func pauseIntegrator(rng *sim.RNG, rate units.ByteRate, meanPlay, meanPause, horizon float64) func(from, to time.Duration) units.Bytes {
	// boundaries[i] alternates play-end, pause-end, ...; consumed[i] is the
	// cumulative consumption at boundaries[i].
	var boundaries []float64
	var consumed []float64
	t, c := 0.0, 0.0
	playing := true
	for t < horizon {
		var d float64
		if playing {
			d = rng.Exp(meanPlay)
			c += float64(rate) * d
		} else {
			d = rng.Exp(meanPause)
		}
		t += d
		boundaries = append(boundaries, t)
		consumed = append(consumed, c)
		playing = !playing
	}
	// The scheduler drains every player each cycle, so at() runs O(cycles)
	// times per stream; a linear scan over all boundaries made each drain
	// O(phases) and a run O(n²). Binary search over the sorted boundary
	// list keeps each lookup O(log n).
	at := func(x time.Duration) float64 {
		xs := x.Seconds()
		if xs <= 0 || len(boundaries) == 0 {
			return 0
		}
		i := sort.SearchFloat64s(boundaries, xs) // first boundary ≥ xs
		if i == len(boundaries) {
			return consumed[len(consumed)-1] // beyond the horizon: treat as paused
		}
		prevT, prevC := 0.0, 0.0
		if i > 0 {
			prevT, prevC = boundaries[i-1], consumed[i-1]
		}
		if i%2 == 0 { // inside a play phase
			return prevC + float64(rate)*(xs-prevT)
		}
		return prevC // inside a pause phase
	}
	return func(from, to time.Duration) units.Bytes {
		return units.Bytes(at(to) - at(from))
	}
}

func blocksFor(b units.Bytes, blockSize units.Bytes) int64 {
	n := int64(b / blockSize)
	if units.Bytes(n)*blockSize < b {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runDirect simulates the baseline disk→DRAM server.
func runDirect(cfg Config) (Result, error) {
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		return Result{}, err
	}
	plan, err := model.DiskDirect(model.StreamLoad{N: cfg.N, BitRate: cfg.BitRate}, diskSpec(dsk))
	if err != nil {
		return Result{}, err
	}
	cat, err := newCatalog(cfg, dsk.Geometry().BlockSize)
	if err != nil {
		return Result{}, err
	}

	eng := &sim.Engine{}
	pool := dram.NewPool(0)
	rng := sim.NewRNG(cfg.Seed)
	gen := workload.NewGenerator(cat, rng.Uint64())
	set, err := gen.Draw(cfg.N)
	if err != nil {
		return Result{}, err
	}

	players := make([]*player, cfg.N)
	margins := sim.NewReservoir(8192, cfg.Seed^0xabcdef)
	diskBlocks := dsk.Geometry().Blocks
	for i, st := range set.Streams {
		buf, err := pool.Open(i, cfg.BitRate)
		if err != nil {
			return Result{}, err
		}
		pos := (st.Title.StartLB + int64(st.Offset/dsk.Geometry().BlockSize)) % diskBlocks
		players[i] = &player{buf: buf, pos: pos, startAt: plan.Cycle, lastDrain: plan.Cycle, margins: margins}
	}

	duration := cfg.Duration
	if duration <= 0 {
		duration = 10 * plan.Cycle
	}
	cycles := int64(duration / plan.Cycle)
	if cycles < 2 {
		cycles = 2
	}
	ioBlocks := blocksFor(plan.IOSize, dsk.Geometry().BlockSize)

	// Interactive playback: alternate exponentially distributed play and
	// pause phases per stream. Pauses enter through the consumption
	// integral (rate zero while paused); the per-cycle scheduler below
	// additionally skips IOs for streams whose buffers are already full.
	if cfg.PausedFraction > 0 && cfg.PausedFraction < 1 {
		prng := rng.Split()
		meanPlay := 5 * plan.Cycle.Seconds()
		meanPause := meanPlay * cfg.PausedFraction / (1 - cfg.PausedFraction)
		horizon := (duration + plan.Cycle).Seconds()
		for _, p := range players {
			p.consume = pauseIntegrator(prng, cfg.BitRate, meanPlay, meanPause, horizon)
		}
	}

	// VBR playback (footnote 1): each stream consumes along a per-cycle
	// rate profile with the configured coefficient of variation; the
	// cushion CushionFor computes is prefetched before playback begins.
	if cfg.VBRCoV > 0 {
		vrng := rng.Split()
		for _, p := range players {
			trace := workload.VBRTrace(vrng, cfg.BitRate, cfg.VBRCoV, int(cycles)+2)
			normalizeTrace(trace, cfg.BitRate)
			p.consume = traceIntegrator(trace, plan.Cycle)
			if !cfg.NoCushion {
				if err := p.buf.Fill(workload.CushionFor(trace, plan.Cycle)); err != nil {
					return Result{}, err
				}
			}
		}
	}

	diskChain := &chain{eng: eng}
	scheduleCycle := func(c int64) {
		sched := disk.NewScheduler(dsk, disk.CLook)
		for i := range players {
			p := players[i]
			if cfg.PausedFraction > 0 {
				// Interactive service: skip IOs for streams already
				// holding two cycles of data (paused, or just resumed) —
				// two cycles, because a resumed stream's next fill can be
				// almost a full cycle away. The reclaimed slots are the
				// bandwidth interactive servers redistribute.
				p.drainTo(eng.Now())
				if p.buf.Level() >= 2*plan.IOSize {
					continue
				}
			}
			blk := p.pos
			if blk+ioBlocks > diskBlocks {
				blk = 0
			}
			sched.Enqueue(device.Request{
				Op: device.Read, Block: blk, Blocks: ioBlocks,
				Stream: i, Issued: eng.Now(),
			})
			p.pos = (blk + ioBlocks) % diskBlocks
		}
		// One chain slot per queued request; each slot dispatches the
		// scheduler's best pending request at its start time.
		for pending := sched.Len(); pending > 0; pending-- {
			s := sched
			diskChain.submit(func(start time.Duration) time.Duration {
				comp, ok, err := s.Dispatch(start)
				if err != nil || !ok {
					return start
				}
				p := players[comp.Stream]
				p.drainTo(comp.Finish)
				if err := p.buf.Fill(units.Bytes(comp.Blocks) * dsk.Geometry().BlockSize); err != nil {
					// Pool is unlimited; Fill cannot fail.
					panic(err)
				}
				return comp.Finish
			})
		}
	}
	for c := int64(0); c < cycles; c++ {
		c := c
		eng.Schedule(time.Duration(c)*plan.Cycle, func() { scheduleCycle(c) })
	}
	end := time.Duration(cycles) * plan.Cycle
	eng.Schedule(end, func() {
		for _, p := range players {
			p.drainTo(end)
		}
	})
	eng.Run()

	res := Result{
		Mode:          Direct,
		Streams:       cfg.N,
		SimulatedTime: end,
		Events:        eng.Executed(),
		Cycles:        cycles,
		PlannedDRAM:   plan.TotalDRAM,
		DRAMHighWater: pool.HighWater(),
		DiskBusy:      dsk.BusyTime(),
		DiskUtil:      float64(dsk.BusyTime()) / float64(end),
		DiskIOs:       dsk.Served(),
		FromDisk:      cfg.N,
	}
	for _, p := range players {
		res.Underflows += p.underflow
		res.UnderflowBytes += p.deficit
	}
	if m, ok := margins.Quantile(0.05); ok {
		res.MarginP5 = units.Seconds(m)
	}
	return res, nil
}
