// Package server is a discrete-event simulation of the full streaming
// media server: the paper's three architectures (direct disk→DRAM,
// disk→MEMS-buffer→DRAM, disk+MEMS-cache→DRAM) plus the §7 hybrid split
// and the EDF scheduling baseline. It wires the device simulators, the
// time-cycle schedules derived from the analytical model, the MEMS bank
// managers and the DRAM pool together, and measures what the model only
// predicts: underflows, delivery margins, device utilization and actual
// DRAM occupancy. Extensions: write streams, VBR playback with cushions,
// interactive pause/resume, and best-effort traffic in spare bandwidth.
//
// Every architecture runs on a shared run-core (see rig.go): the rig owns
// the engine, DRAM pool, RNG, catalog, player construction, playback
// shaping and Result assembly, and each run* driver contributes only its
// device setup plus per-cycle scheduling stages. An optional per-cycle
// observability probe (probe.go, Config.Trace) records the run's dynamics
// as Result.Trace without perturbing it.
package server

import (
	"fmt"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/tier"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// Mode selects the server architecture.
type Mode uint8

// Architectures.
const (
	// Direct streams straight from disk to DRAM (the baseline).
	Direct Mode = iota
	// Buffered stages every disk IO through a k-device MEMS buffer.
	Buffered
	// Cached serves popular titles from a k-device MEMS cache and the
	// rest from disk.
	Cached
	// Hybrid splits the bank: CacheDevices pin popular titles, the rest
	// buffer the misses' disk IOs (the paper's §7 future-work split).
	Hybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "direct"
	case Buffered:
		return "mems-buffer"
	case Cached:
		return "mems-cache"
	case Hybrid:
		return "mems-hybrid"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Config describes one simulation run.
type Config struct {
	Mode Mode

	Disk disk.Params
	Tier tier.Spec // middle-tier parameter set (the paper's MEMS)
	K    int       // middle-tier devices (Buffered/Cached/Hybrid)
	// CacheDevices is the cache share of the bank in Hybrid mode
	// (0 < CacheDevices < K).
	CacheDevices int

	CachePolicy model.CachePolicy // Cached only

	N       int            // concurrent streams
	Writers int            // of N, how many are recorders (Buffered mode only)
	BitRate units.ByteRate // CBR bit-rate for every stream
	Titles  int            // catalog size
	X, Y    float64        // popularity distribution (Cached draws titles by it)

	// FirstStreamID offsets the IDs of the drawn stream population. A
	// sharded run (internal/shard) gives every partition a disjoint ID
	// range so the merged population has globally unique stream IDs; the
	// default 0 reproduces the historical single-run numbering.
	FirstStreamID int

	// Population, when non-nil, is a shard-local stream slice the rig
	// serves instead of drawing its own: exactly N pre-drawn streams whose
	// Titles must come from a catalog laid out like this config's (same
	// Titles/BitRate/block size). The run RNG is consumed identically
	// either way, so a run with an injected population differing only in
	// draw order stays comparable with a self-drawn one.
	Population *workload.Set

	// UseEDF switches the Direct architecture from time-cycle scheduling
	// to earliest-deadline-first — the baseline scheduler class the
	// paper's related work contrasts (Daigle & Strosnider).
	UseEDF bool

	// VBRCoV, when positive, makes playback variable-bit-rate with this
	// coefficient of variation around BitRate (Direct mode). Per the
	// paper's footnote 1, VBR is handled as CBR plus a memory cushion:
	// the simulator prefetches each stream's cushion before playback.
	// NoCushion suppresses the prefetch, demonstrating why footnote 1
	// needs it.
	VBRCoV    float64
	NoCushion bool

	// PausedFraction, when positive (Direct mode), makes playback
	// interactive: each stream alternates exponentially distributed play
	// and pause phases so that this fraction of stream-time is paused.
	// The scheduler skips IOs for streams whose buffers are full — the
	// bandwidth reclamation interactive servers (paper §6, [21]) perform.
	PausedFraction float64

	// BestEffort, when true (Buffered mode), keeps a standing queue of
	// non-real-time MEMS reads that soak up the bank's spare bandwidth
	// (§3.1.2: "Spare bandwidth, if available, can be used for
	// non-real-time traffic"). Result.BestEffortBytes reports how much
	// they moved; real-time traffic keeps strict priority.
	BestEffort bool

	// Trace attaches the per-cycle observability probe: the run records
	// one Sample per scheduling cycle (DRAM occupancy, device queue
	// depth and busy deltas, underflow and cache-hit deltas) surfaced as
	// Result.Trace. Attachment is guaranteed not to change any other
	// Result field — sampling rides the existing cycle events. The EDF
	// baseline has no cycles and records an empty trace.
	Trace bool

	Duration time.Duration // simulated run length; 0 = 10 disk cycles
	Seed     uint64

	// Arena, when non-nil, supplies the reusable simulation state (event
	// engine, player arrays, consumption tables, chain and scheduler
	// pools) this run executes in. A caller running many configurations
	// back to back — the shard partition loop above all — creates one
	// Arena per goroutine and threads it through every run so steady
	// state stops allocating. An Arena must not be shared by concurrent
	// runs; reuse never changes a Result (the pinned-golden gates hold
	// arena and arena-free runs byte-identical). Nil means the run builds
	// a private arena.
	Arena *Arena
}

// Result summarizes a run.
type Result struct {
	Mode    Mode
	Streams int

	SimulatedTime time.Duration
	// Cycles counts the scheduling rounds of the run's dominant cycle
	// loop (disk cycles where the disk leads; the busier side in Cached
	// mode; planning cycles for EDF, which schedules per-request).
	Cycles int64
	// Events is how many simulation-kernel events fired during the run
	// (Engine.Executed) — the per-run cost metric the experiment harness
	// exports.
	Events uint64

	// Real-time delivery.
	Underflows     int
	UnderflowBytes units.Bytes

	// Resources.
	DRAMHighWater units.Bytes
	PlannedDRAM   units.Bytes // the model's N·S prediction
	DiskBusy      time.Duration
	MEMSBusy      time.Duration
	DiskUtil      float64
	MEMSUtil      float64

	// IO accounting.
	DiskIOs uint64
	MEMSIOs uint64

	// Cached mode split.
	FromCache int
	FromDisk  int

	// Write-stream accounting (Buffered mode with Writers > 0): the peak
	// DRAM a recorder accumulated while waiting for its data to be staged
	// to MEMS. Bounded occupancy means the reverse pipeline keeps up.
	WriterPeakDRAM units.Bytes

	// BestEffortBytes is the non-real-time data the bank moved in its
	// spare bandwidth (Buffered mode with BestEffort).
	BestEffortBytes units.Bytes

	// MarginP5 is the 5th-percentile delivery margin: how many seconds of
	// playback remained buffered at drain instants. Positive margins mean
	// deadlines were met with room; values near zero flag a schedule
	// running on the edge.
	MarginP5 time.Duration

	// Trace is the per-cycle time series recorded when Config.Trace is
	// set; nil otherwise.
	Trace *Trace
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	if err := validate(&cfg); err != nil {
		return Result{}, err
	}
	switch cfg.Mode {
	case Direct:
		if cfg.UseEDF {
			return runEDF(cfg)
		}
		return runDirect(cfg)
	case Buffered:
		return runBuffered(cfg)
	case Cached:
		return runCached(cfg)
	case Hybrid:
		return runHybrid(cfg)
	}
	return Result{}, fmt.Errorf("server: unknown mode %v", cfg.Mode)
}

func validate(cfg *Config) error {
	if cfg.N <= 0 {
		return fmt.Errorf("server: need at least one stream")
	}
	if cfg.BitRate <= 0 {
		return fmt.Errorf("server: non-positive bit-rate")
	}
	if cfg.Titles <= 0 {
		cfg.Titles = 100
	}
	if cfg.X == 0 && cfg.Y == 0 {
		cfg.X, cfg.Y = 10, 90
	}
	if cfg.Mode != Direct && cfg.K <= 0 {
		return fmt.Errorf("server: mode %v needs K ≥ 1", cfg.Mode)
	}
	if cfg.Writers < 0 || cfg.Writers > cfg.N {
		return fmt.Errorf("server: writers %d outside [0, N=%d]", cfg.Writers, cfg.N)
	}
	if cfg.Writers > 0 && cfg.Mode != Buffered {
		return fmt.Errorf("server: write streams are supported in the buffered pipeline only")
	}
	if cfg.FirstStreamID < 0 {
		return fmt.Errorf("server: negative first stream ID %d", cfg.FirstStreamID)
	}
	if cfg.Population != nil && len(cfg.Population.Streams) != cfg.N {
		return fmt.Errorf("server: population has %d streams, config wants N=%d",
			len(cfg.Population.Streams), cfg.N)
	}
	return nil
}

// diskSpec derives the model-facing spec from an instantiated drive. The
// rate is the block-weighted effective zone rate, not the outer-zone
// maximum: simulated content spans the whole surface, so planning against
// the maximum would overcommit the inner zones.
func diskSpec(d *disk.Device) model.DeviceSpec {
	return model.DeviceSpec{Rate: d.EffectiveRate(), Latency: d.Params().AvgAccess()}
}

// tierSpec derives the model-facing spec; the paper always charges the
// middle tier the maximum positioning latency (its §5).
func tierSpec(s tier.Spec) model.DeviceSpec {
	return model.DeviceSpec{Rate: s.Rate, Latency: s.MaxLatency}
}

// mediaClass builds a media class for the configured bit-rate. Feature-
// length titles keep the catalog comfortably larger than a small MEMS
// bank, so cache-capacity effects are visible in simulation.
func mediaClass(br units.ByteRate) workload.MediaClass {
	return workload.MediaClass{Name: "sim", BitRate: br, Duration: 100 * time.Minute}
}

// newCatalog lays the configured catalog out on the disk image.
func newCatalog(cfg Config, blockSize units.Bytes) (*workload.Catalog, error) {
	d := workload.XYDistribution{X: cfg.X, Y: cfg.Y}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return workload.NewCatalog(cfg.Titles, mediaClass(cfg.BitRate), d.Weights(cfg.Titles), blockSize)
}

func blocksFor(b units.Bytes, blockSize units.Bytes) int64 {
	n := int64(b / blockSize)
	if units.Bytes(n)*blockSize < b {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
