package server

import (
	"testing"

	"memstream/internal/disk"
	"memstream/internal/tier"
	"memstream/internal/units"
)

// newCycleWalk assembles a direct-mode run sized for n streams and warms
// its steady state: enough cycles that every pooled structure (engine
// slots, chain rings, scheduler arrays, the margins reservoir) has grown
// to its standing footprint. What remains is the pure per-cycle walk —
// the code the cycleLoop events execute in a real run — which the
// benchmarks time and the zero-alloc gate pins.
//
// The bit-rate keeps n·B̄ inside FutureDisk's effective-rate envelope
// (Theorem 1 feasibility) at both benchmark populations.
func newCycleWalk(tb testing.TB, n int, br units.ByteRate) *directRun {
	tb.Helper()
	cfg := Config{
		Mode:    Direct,
		Disk:    disk.FutureDisk(),
		Tier:    tier.MustLookup("mems-g3"),
		N:       n,
		BitRate: br,
		Titles:  50,
		X:       10, Y: 90,
		Seed: 1,
	}
	if err := validate(&cfg); err != nil {
		tb.Fatal(err)
	}
	d, err := newDirect(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for c := int64(0); c < 16; c++ {
		d.stage(c)
		d.r.eng.Run()
	}
	return d
}

func benchmarkCycleWalk(b *testing.B, n int, br units.ByteRate) {
	d := newCycleWalk(b, n, br)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.stage(int64(i))
		d.r.eng.Run()
	}
}

// BenchmarkCycleWalk measures one steady-state scheduling cycle of the
// direct architecture — the SoA player walk, the batch C-LOOK build and
// dispatch, and the per-stream drain/fill — at two populations.
func BenchmarkCycleWalk1k(b *testing.B)  { benchmarkCycleWalk(b, 1_000, 100*units.KBPS) }
func BenchmarkCycleWalk64k(b *testing.B) { benchmarkCycleWalk(b, 65_536, 3*units.KBPS) }

// The hard hot-path budget: once warm, a scheduling cycle allocates
// nothing — the SoA walk, pooled schedulers, chain rings and engine
// slots all reuse their storage. This is a test (not just a benchmark)
// so `go test` itself gates the invariant in CI.
func TestCycleWalkZeroAllocs(t *testing.T) {
	d := newCycleWalk(t, 1_000, 100*units.KBPS)
	c := int64(16)
	if n := testing.AllocsPerRun(50, func() {
		d.stage(c)
		d.r.eng.Run()
		c++
	}); n != 0 {
		t.Errorf("steady-state cycle walk allocates %v per cycle, want 0", n)
	}
}
