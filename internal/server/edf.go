package server

import (
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/dram"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// runEDF simulates the direct architecture under earliest-deadline-first
// scheduling (Daigle & Strosnider), the alternative real-time scheduler
// class the paper's related work contrasts with time-cycle/QPMS. Each
// stream keeps one request outstanding, deadlined at its buffer-empty
// time; the disk always services the most urgent request. EDF meets
// deadlines when feasible but forfeits the elevator's seek amortization,
// which the comparison test and bench quantify.
func runEDF(cfg Config) (Result, error) {
	dsk, err := disk.New(cfg.Disk)
	if err != nil {
		return Result{}, err
	}
	// Size IOs with the same Theorem 1 plan the time-cycle server uses so
	// the comparison isolates scheduling order.
	plan, err := model.DiskDirect(model.StreamLoad{N: cfg.N, BitRate: cfg.BitRate}, diskSpec(dsk))
	if err != nil {
		return Result{}, err
	}
	cat, err := newCatalog(cfg, dsk.Geometry().BlockSize)
	if err != nil {
		return Result{}, err
	}

	eng := &sim.Engine{}
	pool := dram.NewPool(0)
	rng := sim.NewRNG(cfg.Seed)
	gen := workload.NewGenerator(cat, rng.Uint64())
	set, err := gen.Draw(cfg.N)
	if err != nil {
		return Result{}, err
	}

	players := make([]*player, cfg.N)
	margins := sim.NewReservoir(8192, cfg.Seed^0xabcdef)
	diskBlocks := dsk.Geometry().Blocks
	for i, st := range set.Streams {
		buf, err := pool.Open(i, cfg.BitRate)
		if err != nil {
			return Result{}, err
		}
		pos := (st.Title.StartLB + int64(st.Offset/dsk.Geometry().BlockSize)) % diskBlocks
		players[i] = &player{buf: buf, pos: pos, startAt: plan.Cycle, lastDrain: plan.Cycle, margins: margins}
	}

	duration := cfg.Duration
	if duration <= 0 {
		duration = 10 * plan.Cycle
	}
	end := duration
	ioBlocks := blocksFor(plan.IOSize, dsk.Geometry().BlockSize)
	ioBytes := units.Bytes(ioBlocks) * dsk.Geometry().BlockSize

	var queue schedule.EDF
	busy := false

	// deadline is the instant stream i's buffer runs dry.
	deadline := func(i int, now time.Duration) time.Duration {
		p := players[i]
		level := p.buf.Level()
		drainStart := p.startAt
		if p.lastDrain > drainStart {
			drainStart = p.lastDrain
		}
		if now < drainStart {
			// Playback has not begun; the deadline is depletion measured
			// from playback start.
			return drainStart + level.Duration(units.ByteRate(cfg.BitRate))
		}
		// level reflects lastDrain; project forward.
		remaining := level - units.BytesIn(cfg.BitRate, now-drainStart)
		if remaining < 0 {
			remaining = 0
		}
		return now + remaining.Duration(units.ByteRate(cfg.BitRate))
	}

	var serviceNext func()
	issue := func(i int) {
		now := eng.Now()
		queue.Push(&schedule.Deadline{Stream: i, IOSize: ioBytes, Deadline: deadline(i, now)})
		if !busy {
			serviceNext()
		}
	}
	serviceNext = func() {
		d := queue.Pop()
		if d == nil {
			busy = false
			return
		}
		busy = true
		i := d.Stream
		p := players[i]
		blk := p.pos
		if blk+ioBlocks > diskBlocks {
			blk = 0
		}
		p.pos = (blk + ioBlocks) % diskBlocks
		comp, err := dsk.Service(eng.Now(), device.Request{
			Op: device.Read, Block: blk, Blocks: ioBlocks, Stream: i, Issued: eng.Now(),
		})
		if err != nil {
			busy = false
			return
		}
		eng.Schedule(comp.Finish-eng.Now(), func() {
			p.drainTo(comp.Finish)
			if err := p.buf.Fill(units.Bytes(comp.Blocks) * dsk.Geometry().BlockSize); err != nil {
				panic(err)
			}
			// Keep one request in flight per stream until the horizon.
			if comp.Finish < end {
				issue(i)
			}
			serviceNext()
		})
	}

	for i := range players {
		issue(i)
	}
	eng.Schedule(end, func() {
		eng.Stop()
	})
	eng.RunUntil(end)
	for _, p := range players {
		p.drainTo(end)
	}

	res := Result{
		Mode:          Direct,
		Streams:       cfg.N,
		SimulatedTime: end,
		Events:        eng.Executed(),
		PlannedDRAM:   plan.TotalDRAM,
		DRAMHighWater: pool.HighWater(),
		DiskBusy:      dsk.BusyTime(),
		DiskUtil:      float64(dsk.BusyTime()) / float64(end),
		DiskIOs:       dsk.Served(),
		FromDisk:      cfg.N,
	}
	for _, p := range players {
		res.Underflows += p.underflow
		res.UnderflowBytes += p.deficit
	}
	if m, ok := margins.Quantile(0.05); ok {
		res.MarginP5 = units.Seconds(m)
	}
	return res, nil
}
