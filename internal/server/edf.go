package server

import (
	"time"

	"memstream/internal/device"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/units"
)

// runEDF simulates the direct architecture under earliest-deadline-first
// scheduling (Daigle & Strosnider), the alternative real-time scheduler
// class the paper's related work contrasts with time-cycle/QPMS. Each
// stream keeps one request outstanding, deadlined at its buffer-empty
// time; the disk always services the most urgent request. EDF meets
// deadlines when feasible but forfeits the elevator's seek amortization,
// which the comparison test and bench quantify. There is no cycle
// structure, so an attached probe records no samples.
func runEDF(cfg Config) (Result, error) {
	r, err := newRig(cfg)
	if err != nil {
		return Result{}, err
	}
	// Size IOs with the same Theorem 1 plan the time-cycle server uses so
	// the comparison isolates scheduling order.
	plan, err := model.DiskDirect(model.StreamLoad{N: cfg.N, BitRate: cfg.BitRate}, diskSpec(r.dsk))
	if err != nil {
		return Result{}, err
	}

	for i, st := range r.set.Streams {
		r.addPlayer(i, r.diskPos(st), plan.Cycle)
	}
	r.observe("disk", r.dsk, nil)

	end := r.span(10 * plan.Cycle)
	diskBlocks := r.dsk.Geometry().Blocks
	ioBlocks := blocksFor(plan.IOSize, r.dsk.Geometry().BlockSize)
	ioBytes := units.Bytes(ioBlocks) * r.dsk.Geometry().BlockSize

	var queue schedule.EDF
	busy := false
	ps := &r.ar.ps

	// deadline is the instant stream i's buffer runs dry.
	deadline := func(i int, now time.Duration) time.Duration {
		level := r.level(i)
		drainStart := ps.startAt[i]
		if ps.lastDrain[i] > drainStart {
			drainStart = ps.lastDrain[i]
		}
		if now < drainStart {
			// Playback has not begun; the deadline is depletion measured
			// from playback start.
			return drainStart + level.Duration(units.ByteRate(cfg.BitRate))
		}
		// level reflects lastDrain; project forward.
		remaining := level - units.BytesIn(cfg.BitRate, now-drainStart)
		if remaining < 0 {
			remaining = 0
		}
		return now + remaining.Duration(units.ByteRate(cfg.BitRate))
	}

	var serviceNext func()
	issue := func(i int) {
		now := r.eng.Now()
		queue.Push(&schedule.Deadline{Stream: i, IOSize: ioBytes, Deadline: deadline(i, now)})
		if !busy {
			serviceNext()
		}
	}
	serviceNext = func() {
		d := queue.Pop()
		if d == nil {
			busy = false
			return
		}
		busy = true
		i := d.Stream
		blk := ps.pos[i]
		if blk+ioBlocks > diskBlocks {
			blk = 0
		}
		ps.pos[i] = (blk + ioBlocks) % diskBlocks
		comp, err := r.dsk.Service(r.eng.Now(), device.Request{
			Op: device.Read, Block: blk, Blocks: ioBlocks, Stream: i, Issued: r.eng.Now(),
		})
		if err != nil {
			busy = false
			return
		}
		r.eng.Schedule(comp.Finish-r.eng.Now(), func() {
			r.drainTo(i, comp.Finish)
			r.fill(i, units.Bytes(comp.Blocks)*r.dsk.Geometry().BlockSize)
			// Keep one request in flight per stream until the horizon.
			if comp.Finish < end {
				issue(i)
			}
			serviceNext()
		})
	}

	for i := 0; i < r.n; i++ {
		issue(i)
	}
	r.eng.Schedule(end, func() {
		r.eng.Stop()
	})
	r.eng.RunUntil(end)
	for i := 0; i < r.n; i++ {
		r.drainTo(i, end)
	}

	res := r.result(Direct, end, int64(end/plan.Cycle))
	res.PlannedDRAM = plan.TotalDRAM
	res.FromDisk = cfg.N
	return res, nil
}
