package server

import (
	"time"

	"memstream/internal/units"
)

// Trace is the optional per-cycle time series an instrumented run records
// (Config.Trace). Where Result collapses a run into end-of-run scalars,
// the trace exposes its dynamics: DRAM occupancy, per-device queue depth
// and work deltas, underflow deltas and cache-hit deltas, one sample per
// scheduling cycle. The EDF baseline has no cycle structure and records
// no samples.
type Trace struct {
	Samples []Sample `json:"samples"`
}

// Sample captures the rig's resource state inside the engine event that
// scheduled one cycle, after its scheduling stage ran. Deltas are
// measured since the previous sample of any source, so a mode with
// several interleaved cycle loops (disk + mems + cache) yields one
// coherent merged time series.
type Sample struct {
	// Source names the cycle loop that fired: "disk", "mems" or "cache".
	Source string `json:"source"`
	// Cycle is the loop-local cycle index.
	Cycle int64 `json:"cycle"`
	// At is the simulated time of the sample in nanoseconds.
	At time.Duration `json:"at_ns"`

	DRAMInUse     units.Bytes `json:"dram_in_use"`
	DRAMHighWater units.Bytes `json:"dram_high_water"`

	UnderflowsDelta     int         `json:"underflows_delta"`
	UnderflowBytesDelta units.Bytes `json:"underflow_bytes_delta"`

	// Cache-hit deltas: DRAM fills served from the cache bank since the
	// previous sample (Cached/Hybrid modes; zero elsewhere).
	CacheFillsDelta     uint64      `json:"cache_fills_delta,omitempty"`
	CacheFillBytesDelta units.Bytes `json:"cache_fill_bytes_delta,omitempty"`

	// Devices reports every instrumented device in registration order.
	Devices []DeviceSample `json:"devices"`
}

// DeviceSample is one device's queue depth and work delta at a sample.
type DeviceSample struct {
	Name string `json:"name"`
	// Queue is the depth of the device's service chain at the sample,
	// including the item in service; -1 when the device has no chain.
	Queue     int           `json:"queue"`
	BusyDelta time.Duration `json:"busy_delta_ns"`
	IOsDelta  uint64        `json:"ios_delta"`
}

// busyServer is the accounting surface shared by the disk and MEMS device
// simulators.
type busyServer interface {
	BusyTime() time.Duration
	Served() uint64
}

// instrument is one observed device: its cumulative counters plus the
// chain feeding it, for queue depth.
type instrument struct {
	name string
	dev  busyServer
	ch   *chain // nil when the driver keeps no chain (EDF)

	lastBusy   time.Duration
	lastServed uint64
}

// probe collects the per-cycle samples. It holds only last-sample
// snapshots of counters the run maintains anyway, and sampling runs
// inside existing cycle events — attaching it cannot change a Result.
type probe struct {
	r           *rig
	trace       *Trace
	instruments []*instrument

	lastUnderflows     int
	lastUnderflowBytes units.Bytes
	lastCacheFills     uint64
	lastCacheFillBytes units.Bytes
}

func newProbe(r *rig) *probe {
	// Samples starts non-nil so an empty trace (EDF) serializes as an
	// empty array rather than null.
	return &probe{r: r, trace: &Trace{Samples: []Sample{}}}
}

// observe registers a device with the rig's probe; a no-op when no probe
// is attached, so drivers call it unconditionally.
func (r *rig) observe(name string, dev busyServer, ch *chain) {
	if r.probe == nil {
		return
	}
	r.probe.instruments = append(r.probe.instruments, &instrument{name: name, dev: dev, ch: ch})
}

// sample appends one observation for the given cycle loop.
func (pr *probe) sample(source string, cycle int64) {
	r := pr.r
	ps := &r.ar.ps
	s := Sample{
		Source:        source,
		Cycle:         cycle,
		At:            r.eng.Now(),
		DRAMInUse:     ps.used,
		DRAMHighWater: ps.highWater,
	}

	var uf int
	var ufb units.Bytes
	for i := 0; i < r.n; i++ {
		uf += int(ps.underflow[i])
		ufb += ps.deficit[i]
	}
	s.UnderflowsDelta = uf - pr.lastUnderflows
	s.UnderflowBytesDelta = ufb - pr.lastUnderflowBytes
	pr.lastUnderflows, pr.lastUnderflowBytes = uf, ufb

	s.CacheFillsDelta = r.cacheFills - pr.lastCacheFills
	s.CacheFillBytesDelta = r.cacheFillBytes - pr.lastCacheFillBytes
	pr.lastCacheFills, pr.lastCacheFillBytes = r.cacheFills, r.cacheFillBytes

	s.Devices = make([]DeviceSample, 0, len(pr.instruments))
	for _, in := range pr.instruments {
		busy, served := in.dev.BusyTime(), in.dev.Served()
		d := DeviceSample{
			Name:      in.name,
			Queue:     -1,
			BusyDelta: busy - in.lastBusy,
			IOsDelta:  served - in.lastServed,
		}
		if in.ch != nil {
			d.Queue = in.ch.depth()
		}
		in.lastBusy, in.lastServed = busy, served
		s.Devices = append(s.Devices, d)
	}
	pr.trace.Samples = append(pr.trace.Samples, s)
}
