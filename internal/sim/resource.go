package sim

import "memstream/internal/ring"

// Server models a single-channel resource (a device arm, a bus) that
// serves queued work items one at a time in FIFO order. Device models
// layer their own reordering schedulers above it; Server only owns the
// busy/idle bookkeeping.
//
// The queue is a ring buffer and completions are scheduled through the
// kernel's ScheduleArg fast path, so steady-state Submit/complete cycles
// allocate nothing and dequeue is O(1) amortized at any queue depth.
type Server struct {
	eng   *Engine
	queue ring.Ring[work]
	cur   work // item in service, valid while busy
	busy  bool

	// Busy accumulates total time the server spent serving work,
	// for utilization accounting.
	Busy Time
	// Served counts completed work items.
	Served uint64
}

type work struct {
	dur  Time
	done func()
}

// NewServer returns a Server bound to eng.
func NewServer(eng *Engine) *Server { return &Server{eng: eng} }

// Submit enqueues a work item taking dur of service time; done (may be nil)
// runs when service completes.
func (s *Server) Submit(dur Time, done func()) {
	s.queue.PushBack(work{dur: dur, done: done})
	if !s.busy {
		s.startNext()
	}
}

// QueueLen reports the number of items waiting (not counting the one in
// service).
func (s *Server) QueueLen() int { return s.queue.Len() }

// Idle reports whether the server has no work in service.
func (s *Server) Idle() bool { return !s.busy }

func (s *Server) startNext() {
	if s.queue.Len() == 0 {
		s.busy = false
		return
	}
	s.cur = s.queue.PopFront()
	s.busy = true
	s.eng.ScheduleArg(s.cur.dur, serverComplete, s)
}

// serverComplete is the static completion callback: the Server itself is
// the ScheduleArg argument, so scheduling a completion never closes over
// per-item state.
func serverComplete(arg any) {
	s := arg.(*Server)
	s.Busy += s.cur.dur
	s.Served++
	done := s.cur.done
	s.cur = work{}
	if done != nil {
		done()
	}
	s.startNext()
}

// Counter is a saturating tally with high-water tracking, used for queue
// depths and buffer occupancy.
type Counter struct {
	v, max int64
}

// Add adjusts the counter by delta (which may be negative).
func (c *Counter) Add(delta int64) {
	c.v += delta
	if c.v > c.max {
		c.max = c.v
	}
}

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v }

// Max returns the high-water mark.
func (c *Counter) Max() int64 { return c.max }

// Stats accumulates a running mean/min/max over float64 samples without
// storing them.
type Stats struct {
	n          uint64
	sum, sumSq float64
	min, max   float64
}

// Observe records one sample.
func (s *Stats) Observe(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of samples.
func (s *Stats) N() uint64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample (0 with no samples).
func (s *Stats) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Stats) Max() float64 { return s.max }

// Sum returns the total of all samples.
func (s *Stats) Sum() float64 { return s.sum }

// Var returns the population variance (0 with fewer than 2 samples).
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0
	}
	return v
}
