package sim

import (
	"fmt"
	"testing"
	"time"
)

// The kernel microbenchmarks exercise the three steady-state shapes every
// simulation run is built from: schedule+fire churn (device completions),
// schedule+cancel churn (deadline timers that usually don't fire), and
// deep-queue Server dequeue (cycle scheduling bursts). scripts/bench.sh
// records them into BENCH_<n>.json and CI runs benchstat old-vs-new on
// them, so keep names stable.

// BenchmarkScheduleFire measures steady-state schedule+fire churn with a
// bounded calendar: each fired event schedules its successor, the shape of
// a device completion chain. The target is ~0 allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	var eng Engine
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			eng.Schedule(time.Microsecond, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(0, next)
	eng.Run()
	if n != b.N {
		b.Fatalf("fired %d, want %d", n, b.N)
	}
}

// BenchmarkScheduleArgFire measures the zero-closure fast path: a static
// callback plus a pointer argument, the shape of chain/Server completions.
func BenchmarkScheduleArgFire(b *testing.B) {
	var eng Engine
	type state struct {
		eng *Engine
		n   int
		max int
	}
	st := &state{eng: &eng, max: b.N}
	var next func(any)
	next = func(arg any) {
		s := arg.(*state)
		s.n++
		if s.n < s.max {
			s.eng.ScheduleArg(time.Microsecond, next, s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.ScheduleArg(0, next, st)
	eng.Run()
	if st.n != b.N {
		b.Fatalf("fired %d, want %d", st.n, b.N)
	}
}

// BenchmarkScheduleFireFanout keeps a deep calendar (1024 pending events)
// in steady state, stressing the heap's sift paths rather than the
// single-element fast case.
func BenchmarkScheduleFireFanout(b *testing.B) {
	var eng Engine
	const depth = 1024
	fired := 0
	var next func()
	next = func() {
		fired++
		if fired+eng.Pending() < b.N {
			// Replace the fired event, jittering the delay so the heap
			// actually reorders (a constant delay degenerates to FIFO).
			eng.Schedule(time.Duration(1+fired%7)*time.Microsecond, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < depth && i < b.N; i++ {
		eng.Schedule(time.Duration(1+i%7)*time.Microsecond, next)
	}
	eng.Run()
	b.StopTimer()
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// BenchmarkScheduleCancel measures the deadline-timer shape: schedule an
// event, then cancel it before it fires. With tombstone cancellation both
// halves must be O(1) amortized and allocation-free in steady state (the
// calendar stays bounded via dead-entry compaction).
func BenchmarkScheduleCancel(b *testing.B) {
	var eng Engine
	// A standing population of events keeps the calendar non-trivial.
	for i := 0; i < 64; i++ {
		eng.Schedule(time.Hour, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eng.Schedule(time.Minute, func() {})
		ev.Cancel()
	}
	b.StopTimer()
	eng.RunUntil(MaxTime)
}

// BenchmarkServerDeepQueue is the O(1)-amortized dequeue regression bench:
// a Server with a deep backlog must drain at constant per-item cost. The
// pre-ring implementation shifted the whole queue on every dequeue
// (O(n) per item, O(n²) per drain), which this bench makes visible as
// ns/op growing with depth.
func BenchmarkServerDeepQueue(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			served := 0
			for served < b.N {
				batch := depth
				if rem := b.N - served; rem < batch {
					batch = rem
				}
				var eng Engine
				srv := NewServer(&eng)
				for i := 0; i < batch; i++ {
					srv.Submit(time.Microsecond, nil)
				}
				eng.Run()
				if srv.Served != uint64(batch) {
					b.Fatalf("served %d, want %d", srv.Served, batch)
				}
				served += batch
			}
		})
	}
}
