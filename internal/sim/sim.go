// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock, an event calendar ordered by (time, sequence),
// and helper resources built on top of it.
//
// The kernel is deliberately single-threaded. All device and server models
// in memstream schedule callbacks on one Engine, so a simulation run is a
// pure function of its inputs and RNG seed — which is what lets the
// experiment harness reproduce the paper's figures byte-for-byte.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is simulated time measured as a duration since the start of the run.
type Time = time.Duration

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxInt64)

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once removed
	dead   bool
	engine *Engine
}

// At returns the time the event fires.
func (e *Event) At() Time { return e.at }

// Cancel removes the event from the calendar. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead || e.index < 0 {
		if e != nil {
			e.dead = true
		}
		return
	}
	e.dead = true
	heap.Remove(&e.engine.calendar, e.index)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation core: a clock plus an event calendar.
// The zero value is ready to use.
type Engine struct {
	now      Time
	seq      uint64
	calendar eventHeap
	executed uint64
	running  bool
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting on the calendar.
func (e *Engine) Pending() int { return len(e.calendar) }

// ErrPastEvent is returned by ScheduleAt for events in the simulated past.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule runs fn after delay d (clamped to zero for negative d).
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, _ := e.ScheduleAt(e.now+d, fn)
	return ev
}

// ScheduleAt runs fn at absolute time at. Scheduling in the past is an
// error: device models that compute service times must never go backwards.
func (e *Engine) ScheduleAt(at Time, fn func()) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, engine: e}
	heap.Push(&e.calendar, ev)
	return ev, nil
}

// Step fires the next event, advancing the clock. It reports whether an
// event was available.
func (e *Engine) Step() bool {
	for len(e.calendar) > 0 {
		ev := heap.Pop(&e.calendar).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the calendar is empty.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil fires events with timestamps at or before deadline, then advances
// the clock to deadline (if it has not passed it already).
func (e *Engine) RunUntil(deadline Time) {
	e.running = true
	for e.running && len(e.calendar) > 0 && e.calendar[0].at <= deadline {
		e.Step()
	}
	e.running = false
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.running = false }
