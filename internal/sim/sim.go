// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock, an event calendar ordered by (time, sequence),
// and helper resources built on top of it.
//
// The kernel is deliberately single-threaded. All device and server models
// in memstream schedule callbacks on one Engine, so a simulation run is a
// pure function of its inputs and RNG seed — which is what lets the
// experiment harness reproduce the paper's figures byte-for-byte.
//
// The hot path is allocation-free in steady state: the calendar is a
// monomorphic 4-ary min-heap of (time, seq, slot) entries, event state
// lives in a pooled slot arena recycled through a free list, Cancel is a
// lazy tombstone reclaimed at pop (or by compaction when tombstones
// outnumber live entries), and ScheduleArg carries a static callback plus
// a pointer argument so high-frequency call sites need no closure.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is simulated time measured as a duration since the start of the run.
type Time = time.Duration

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxInt64)

// Event is a handle to a scheduled callback. It is a small value: copying
// it is cheap and the zero Event is inert (Cancel and At are no-ops).
//
// Handles stay safe after the underlying pooled slot is recycled: each
// slot carries a generation counter captured into the handle at schedule
// time, and Cancel on a handle whose generation no longer matches —
// because the event fired, was cancelled, or the slot now hosts a newer
// event — is a no-op.
type Event struct {
	eng  *Engine
	at   Time
	slot int32
	gen  uint32
}

// At returns the time the event fires (or fired).
func (e Event) At() Time { return e.at }

// Cancel removes the event from the calendar. Cancelling an event that has
// already fired or been cancelled — or a stale handle whose pool slot has
// been recycled for a newer event — is a no-op. Cancellation is a lazy
// tombstone: the calendar entry is skipped at pop time instead of being
// removed from the heap, so Cancel is O(1).
func (e Event) Cancel() {
	if e.eng == nil {
		return
	}
	s := &e.eng.slots[e.slot]
	if s.gen != e.gen || s.dead {
		return
	}
	s.dead = true
	e.eng.live--
	e.eng.dead++
	// Keep the calendar bounded under cancel-heavy workloads (deadline
	// timers that almost never fire): once tombstones outnumber live
	// entries, sweep them out and re-heapify in one O(n) pass.
	if e.eng.dead > len(e.eng.cal)/2 && e.eng.dead > 64 {
		e.eng.compact()
	}
}

// calEntry is one calendar slot: the (time, sequence) ordering key plus
// the index of the pooled event slot holding the callback. Keeping the key
// inline means heap sifts never touch the slot arena.
type calEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// entLess orders entries by time, breaking ties by scheduling sequence so
// simultaneous events fire FIFO.
func entLess(a, b calEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventSlot is the pooled callback state. Exactly one of fn/afn is set.
type eventSlot struct {
	fn   func()
	afn  func(any)
	arg  any
	gen  uint32
	dead bool
}

// Engine is the simulation core: a clock plus an event calendar.
// The zero value is ready to use.
type Engine struct {
	now      Time
	seq      uint64
	executed uint64
	running  bool

	cal   []calEntry  // 4-ary min-heap ordered by (at, seq)
	slots []eventSlot // event slot arena; cal entries index into it
	free  []int32     // recycled slot indices
	live  int         // scheduled, not yet fired or cancelled
	dead  int         // tombstones still sitting in cal
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many live (un-cancelled, un-fired) events are
// waiting on the calendar.
func (e *Engine) Pending() int { return e.live }

// ErrPastEvent is returned by ScheduleAt for events in the simulated past.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule runs fn after delay d (clamped to zero for negative d).
func (e *Engine) Schedule(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	ev, _ := e.ScheduleAt(e.now+d, fn)
	return ev
}

// ScheduleAt runs fn at absolute time at. Scheduling in the past is an
// error: device models that compute service times must never go backwards.
func (e *Engine) ScheduleAt(at Time, fn func()) (Event, error) {
	if at < e.now {
		return Event{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	slot := e.allocSlot()
	e.slots[slot].fn = fn
	return e.enqueue(at, slot), nil
}

// ScheduleArg runs fn(arg) after delay d (clamped to zero for negative d).
// It is the zero-closure fast path for high-frequency call sites: fn is
// typically a static function and arg a pointer to long-lived state, so
// scheduling allocates nothing.
func (e *Engine) ScheduleArg(d Time, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	slot := e.allocSlot()
	s := &e.slots[slot]
	s.afn, s.arg = fn, arg
	return e.enqueue(e.now+d, slot)
}

// enqueue assigns the next sequence number and pushes slot onto the heap.
func (e *Engine) enqueue(at Time, slot int32) Event {
	e.seq++
	e.push(calEntry{at: at, seq: e.seq, slot: slot})
	e.live++
	return Event{eng: e, at: at, slot: slot, gen: e.slots[slot].gen}
}

// allocSlot returns a free slot index, growing the arena when the free
// list is empty.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.slots = append(e.slots, eventSlot{})
	return int32(len(e.slots) - 1)
}

// freeSlot recycles a slot: the generation bump invalidates every
// outstanding handle to the old event, and clearing the callback fields
// releases whatever they referenced.
func (e *Engine) freeSlot(i int32) {
	s := &e.slots[i]
	s.fn, s.afn, s.arg = nil, nil, nil
	s.dead = false
	s.gen++
	e.free = append(e.free, i)
}

// --- 4-ary min-heap over calEntry ---
//
// A 4-ary layout halves the tree depth of a binary heap; the extra sibling
// comparisons at each level are cheap (contiguous entries, one cache line)
// while each level descended is a dependent load. Children of i are
// 4i+1..4i+4, parent is (i-1)/4.

func (e *Engine) push(ent calEntry) {
	e.cal = append(e.cal, ent)
	i := len(e.cal) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(ent, e.cal[p]) {
			break
		}
		e.cal[i] = e.cal[p]
		i = p
	}
	e.cal[i] = ent
}

// popHead removes cal[0], restoring the heap property.
func (e *Engine) popHead() {
	n := len(e.cal) - 1
	e.cal[0] = e.cal[n]
	e.cal = e.cal[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// compact sweeps tombstoned entries out of the calendar and re-heapifies.
// Pop order is unchanged: live (at, seq) keys are untouched and dead
// entries would have been skipped anyway.
func (e *Engine) compact() {
	w := 0
	for _, ent := range e.cal {
		if e.slots[ent.slot].dead {
			e.freeSlot(ent.slot)
			continue
		}
		e.cal[w] = ent
		w++
	}
	e.cal = e.cal[:w]
	e.dead = 0
	if w > 1 {
		for i := (w - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// siftDown restores the heap property below i.
func (e *Engine) siftDown(i int) {
	n := len(e.cal)
	ent := e.cal[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(e.cal[j], e.cal[best]) {
				best = j
			}
		}
		if !entLess(e.cal[best], ent) {
			break
		}
		e.cal[i] = e.cal[best]
		i = best
	}
	e.cal[i] = ent
}

// skim discards tombstoned entries from the head of the calendar, so the
// head — if any — is live. Dead-event skipping happens here, once, for
// every run loop.
func (e *Engine) skim() {
	for len(e.cal) > 0 {
		ent := e.cal[0]
		if !e.slots[ent.slot].dead {
			return
		}
		e.popHead()
		e.freeSlot(ent.slot)
		e.dead--
	}
}

// fireHead pops and fires the live head entry. The slot is recycled before
// the callback runs, so a handle to the firing event is already stale
// inside its own callback (cancel-self is a no-op) and the slot may host a
// new event scheduled by the callback.
func (e *Engine) fireHead() {
	ent := e.cal[0]
	e.popHead()
	s := &e.slots[ent.slot]
	fn, afn, arg := s.fn, s.afn, s.arg
	e.freeSlot(ent.slot)
	e.live--
	e.now = ent.at
	e.executed++
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
}

// Step fires the next event, advancing the clock. It reports whether an
// event was available.
func (e *Engine) Step() bool {
	e.skim()
	if len(e.cal) == 0 {
		return false
	}
	e.fireHead()
	return true
}

// Run fires events until the calendar is empty.
func (e *Engine) Run() {
	e.running = true
	for e.running && e.Step() {
	}
	e.running = false
}

// RunUntil fires events with timestamps at or before deadline, then advances
// the clock to deadline (if it has not passed it already). A cancelled
// event at the head of the calendar never carries the run past the
// deadline: tombstones are skimmed before the deadline check, so the
// decision to fire is always made against a live event.
//
// A run cut short by Stop does NOT advance the clock to the deadline:
// events between the last fired event and the deadline never ran, so
// claiming their time would make Now() lie about how far the simulation
// actually got. A stopped run leaves Now() at the last fired event.
func (e *Engine) RunUntil(deadline Time) {
	e.running = true
	for e.running {
		e.skim()
		if len(e.cal) == 0 || e.cal[0].at > deadline {
			break
		}
		e.fireHead()
	}
	stopped := !e.running
	e.running = false
	if !stopped && e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.running = false }

// Reset returns the engine to its zero state while keeping the calendar
// and slot-arena storage, so a pooled engine's next run schedules without
// re-growing either. Every outstanding Event handle is invalidated by the
// per-slot generation bump — exactly as if each event had fired.
//
// Behavioral note for run-equivalence: slot indices never participate in
// event ordering (the calendar orders by (time, sequence) alone), so a
// reset engine replays any schedule byte-identically to a fresh one.
func (e *Engine) Reset() {
	e.now, e.seq, e.executed = 0, 0, 0
	e.running = false
	e.cal = e.cal[:0]
	e.free = e.free[:0]
	for i := len(e.slots) - 1; i >= 0; i-- {
		s := &e.slots[i]
		s.fn, s.afn, s.arg = nil, nil, nil
		s.dead = false
		s.gen++
		e.free = append(e.free, int32(i))
	}
	e.live, e.dead = 0, 0
}
