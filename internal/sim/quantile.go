package sim

import "sort"

// Reservoir estimates quantiles from a stream of samples using uniform
// reservoir sampling (Vitter's Algorithm R) with a deterministic RNG, so
// simulation percentile reports are reproducible.
type Reservoir struct {
	cap     int
	seen    uint64
	rng     *RNG
	samples []float64
	dirty   bool // samples unsorted since the last Quantile flush
}

// NewReservoir creates a reservoir holding up to capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, rng: NewRNG(seed)}
}

// Reset empties the reservoir and reseeds its RNG, keeping the sample
// storage. A reset reservoir observes a stream exactly as a fresh
// NewReservoir(capacity, seed) would.
func (r *Reservoir) Reset(seed uint64) {
	r.seen = 0
	r.samples = r.samples[:0]
	r.dirty = false
	r.rng = NewRNG(seed)
}

// Observe records one sample.
func (r *Reservoir) Observe(v float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		r.dirty = true
		return
	}
	// Replace a random element with probability cap/seen. Uint64n keeps
	// the slot choice unbiased; which slot is evicted does not affect the
	// retained sample's distribution, so flushing may reorder samples
	// between observations without harm.
	j := r.rng.Uint64n(r.seen)
	if j < uint64(r.cap) {
		r.samples[j] = v
		r.dirty = true
	}
}

// N reports how many samples were observed (not retained).
func (r *Reservoir) N() uint64 { return r.seen }

// flush sorts the retained sample once after any run of observations, so
// a burst of Quantile queries (the metrics export asks for several) costs
// one sort instead of one copy-and-sort per call.
func (r *Reservoir) flush() {
	if r.dirty {
		sort.Float64s(r.samples)
		r.dirty = false
	}
}

// Quantile returns the q-quantile (q clamped to [0,1]) of the retained
// sample, with linear interpolation between order statistics. The second
// result is false when no samples have been observed, distinguishing an
// empty reservoir from a genuine 0-valued quantile.
func (r *Reservoir) Quantile(q float64) (float64, bool) {
	if len(r.samples) == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	r.flush()
	if len(r.samples) == 1 {
		return r.samples[0], true
	}
	pos := q * float64(len(r.samples)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(r.samples) {
		return r.samples[len(r.samples)-1], true
	}
	return r.samples[i] + frac*(r.samples[i+1]-r.samples[i]), true
}

// Median is Quantile(0.5).
func (r *Reservoir) Median() (float64, bool) { return r.Quantile(0.5) }
