package sim

import "sort"

// Reservoir estimates quantiles from a stream of samples using uniform
// reservoir sampling (Vitter's Algorithm R) with a deterministic RNG, so
// simulation percentile reports are reproducible.
type Reservoir struct {
	cap     int
	seen    uint64
	rng     *RNG
	samples []float64
}

// NewReservoir creates a reservoir holding up to capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, rng: NewRNG(seed)}
}

// Observe records one sample.
func (r *Reservoir) Observe(v float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	// Replace a random element with probability cap/seen.
	j := r.rng.Uint64() % r.seen
	if j < uint64(r.cap) {
		r.samples[j] = v
	}
}

// N reports how many samples were observed (not retained).
func (r *Reservoir) N() uint64 { return r.seen }

// Quantile returns the q-quantile (q in [0,1]) of the retained sample,
// with linear interpolation. It returns 0 with no samples.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(r.samples))
	copy(sorted, r.samples)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Median is Quantile(0.5).
func (r *Reservoir) Median() float64 { return r.Quantile(0.5) }
