package sim

import (
	"math"
	"math/bits"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	var eng Engine
	var got []int
	eng.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	eng.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	eng.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	eng.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if eng.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", eng.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var eng Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	eng.Run()
	if !sort.IntsAreSorted(got) {
		t.Errorf("simultaneous events not FIFO: %v", got)
	}
}

func TestScheduleAtPastRejected(t *testing.T) {
	var eng Engine
	eng.Schedule(time.Second, func() {})
	eng.Run()
	if _, err := eng.ScheduleAt(time.Millisecond, func() {}); err == nil {
		t.Fatal("ScheduleAt in the past succeeded, want error")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var eng Engine
	fired := false
	eng.Schedule(-time.Second, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if eng.Now() != 0 {
		t.Errorf("Now = %v, want 0", eng.Now())
	}
}

func TestCancel(t *testing.T) {
	var eng Engine
	fired := false
	ev := eng.Schedule(time.Millisecond, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // double cancel is a no-op
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if eng.Executed() != 0 {
		t.Errorf("Executed = %d, want 0", eng.Executed())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	var eng Engine
	var got []int
	eng.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	ev := eng.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	eng.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	ev.Cancel()
	eng.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntil(t *testing.T) {
	var eng Engine
	var count int
	for i := 1; i <= 5; i++ {
		eng.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	eng.RunUntil(3 * time.Second)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if eng.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", eng.Now())
	}
	if eng.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", eng.Pending())
	}
	// RunUntil past all events advances the clock to the deadline.
	eng.RunUntil(10 * time.Second)
	if count != 5 || eng.Now() != 10*time.Second {
		t.Errorf("count=%d Now=%v, want 5, 10s", count, eng.Now())
	}
}

// TestStopDuringRunUntilDoesNotAdvanceClock is the regression test for a
// clock-skew bug: a RunUntil cut short by Stop used to advance the clock
// to the deadline anyway, so a stopped run reported Now() == deadline even
// though events between the last fired event and the deadline never ran.
func TestStopDuringRunUntilDoesNotAdvanceClock(t *testing.T) {
	var eng Engine
	count := 0
	for i := 1; i <= 5; i++ {
		eng.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	eng.RunUntil(10 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (Stop ignored)", count)
	}
	if eng.Now() != 2*time.Second {
		t.Errorf("Now = %v after Stop, want 2s (time of last fired event)", eng.Now())
	}
	// Resuming the run picks up where the stop left off and, completing
	// naturally this time, does advance to the deadline.
	eng.RunUntil(10 * time.Second)
	if count != 5 || eng.Now() != 10*time.Second {
		t.Errorf("after resume: count=%d Now=%v, want 5, 10s", count, eng.Now())
	}
}

func TestStop(t *testing.T) {
	var eng Engine
	count := 0
	for i := 1; i <= 5; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 (Stop ignored)", count)
	}
}

func TestEventChaining(t *testing.T) {
	var eng Engine
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			eng.Schedule(time.Millisecond, recurse)
		}
	}
	eng.Schedule(0, recurse)
	eng.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if eng.Now() != 99*time.Millisecond {
		t.Errorf("Now = %v, want 99ms", eng.Now())
	}
}

// Property: however events are scheduled, Run fires them in nondecreasing
// time order and the clock never goes backwards.
// TestFIFOSurvivesCancellationMidRunUntil is a property test: with many
// events sharing few distinct timestamps, and firing events cancelling
// random victims (including already-fired ones and themselves), the
// survivors must still fire in FIFO (scheduling) order within each
// timestamp — heap removals must not perturb the (time, seq) order. The
// run is split across RunUntil calls so cancellations land mid-run.
func TestFIFOSurvivesCancellationMidRunUntil(t *testing.T) {
	rng := NewRNG(77)
	for trial := 0; trial < 100; trial++ {
		const n = 40
		eng := &Engine{}
		events := make([]Event, n)
		times := make([]Time, n)
		cancels := make([][]int, n)
		for i := 0; i < n; i++ {
			times[i] = Time(rng.Intn(3)) * 10 // t ∈ {0, 10, 20}: heavy collisions
			for j := 0; j < 2; j++ {
				cancels[i] = append(cancels[i], rng.Intn(n))
			}
		}
		var fired []int
		for i := 0; i < n; i++ {
			i := i
			ev, err := eng.ScheduleAt(times[i], func() {
				fired = append(fired, i)
				for _, victim := range cancels[i] {
					events[victim].Cancel()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			events[i] = ev
		}
		eng.RunUntil(10) // fires the t=0 and t=10 groups
		eng.RunUntil(MaxTime)

		// Reference model: process indices in (time, scheduling order),
		// skipping dead ones; firing i kills its victims.
		var order []int
		for _, at := range []Time{0, 10, 20} {
			for i := 0; i < n; i++ {
				if times[i] == at {
					order = append(order, i)
				}
			}
		}
		dead := make([]bool, n)
		var want []int
		for _, i := range order {
			if dead[i] {
				continue
			}
			want = append(want, i)
			for _, victim := range cancels[i] {
				dead[victim] = true
			}
		}
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("trial %d: fired %v, want %v", trial, fired, want)
		}
	}
}

func TestMonotonicClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var eng Engine
		var times []Time
		for _, d := range delays {
			at := Time(d) * time.Millisecond
			eng.Schedule(at, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerFIFOAndUtilization(t *testing.T) {
	var eng Engine
	srv := NewServer(&eng)
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		srv.Submit(10*time.Millisecond, func() { done = append(done, i) })
	}
	if srv.QueueLen() != 2 {
		t.Errorf("QueueLen = %d, want 2 (one in service)", srv.QueueLen())
	}
	eng.Run()
	if len(done) != 3 || done[0] != 0 || done[2] != 2 {
		t.Fatalf("done = %v", done)
	}
	if srv.Busy != 30*time.Millisecond {
		t.Errorf("Busy = %v, want 30ms", srv.Busy)
	}
	if srv.Served != 3 {
		t.Errorf("Served = %d, want 3", srv.Served)
	}
	if !srv.Idle() {
		t.Error("server should be idle after Run")
	}
}

func TestServerAcceptsWorkWhileBusy(t *testing.T) {
	var eng Engine
	srv := NewServer(&eng)
	completed := 0
	srv.Submit(5*time.Millisecond, func() {
		completed++
		srv.Submit(5*time.Millisecond, func() { completed++ })
	})
	eng.Run()
	if completed != 2 {
		t.Errorf("completed = %d, want 2", completed)
	}
	if eng.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want 10ms", eng.Now())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(3)
	c.Add(-6)
	if c.Value() != 2 {
		t.Errorf("Value = %d, want 2", c.Value())
	}
	if c.Max() != 8 {
		t.Errorf("Max = %d, want 8", c.Max())
	}
}

func TestStats(t *testing.T) {
	var s Stats
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	if s.N() != 4 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 || s.Sum() != 10 {
		t.Errorf("stats = n=%d mean=%v min=%v max=%v sum=%v", s.N(), s.Mean(), s.Min(), s.Max(), s.Sum())
	}
	if math.Abs(s.Var()-1.25) > 1e-12 {
		t.Errorf("Var = %v, want 1.25", s.Var())
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty Stats should report zeros")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds look identical (%d collisions)", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered %d values, want 10", len(seen))
	}
}

// TestRNGIntnUniform is a chi-squared goodness-of-fit check on Intn over
// a bucket count that is not a power of two — the case where the old
// Uint64()%n implementation was modulo-biased.
func TestRNGIntnUniform(t *testing.T) {
	for _, n := range []int{3, 6, 10, 1000} {
		r := NewRNG(12345)
		const draws = 600000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[r.Intn(n)]++
		}
		expected := float64(draws) / float64(n)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// For k-1 degrees of freedom, chi2 concentrates around k-1 with
		// stddev sqrt(2(k-1)); 5 sigma keeps the deterministic test far
		// from both flakiness and real bias.
		dof := float64(n - 1)
		limit := dof + 5*math.Sqrt(2*dof)
		if chi2 > limit {
			t.Errorf("Intn(%d): chi2 = %.1f > %.1f — distribution biased", n, chi2, limit)
		}
	}
}

// TestRNGUint64nUnbiasedNearMax drives Uint64n with a bound just above
// 2^63, where nearly half of all 64-bit draws must be rejected; the old
// modulo reduction made values below 2^63 twice as likely.
func TestRNGUint64nUnbiasedNearMax(t *testing.T) {
	r := NewRNG(99)
	n := uint64(1)<<63 + 1
	const draws = 20000
	low := 0
	for i := 0; i < draws; i++ {
		v := r.Uint64n(n)
		if v >= n {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if v < n/2 {
			low++
		}
	}
	// Under modulo bias, low ≈ 2/3 of draws; unbiased is 1/2.
	if frac := float64(low) / draws; frac < 0.45 || frac > 0.55 {
		t.Errorf("low-half fraction = %.3f, want ~0.5", frac)
	}
}

// TestRNGUint64nRejectionPath pins the Lemire retry branch: for a bound
// just above 2^63, thresh = 2^64 mod n is nearly 2^63, so about half of
// all draws land below it and must be redrawn. The test mirrors the
// generator state step-by-step with a reference implementation, counts
// the rejections the real sampler must have taken, and checks that the
// retry loop actually triggered — the branch per-shard seeding leans on.
func TestRNGUint64nRejectionPath(t *testing.T) {
	n := uint64(1)<<63 + 1
	thresh := -n % n
	r := NewRNG(42)
	ref := NewRNG(42) // mirrored state: consumed in lockstep with r
	rejections := 0
	const draws = 256
	for i := 0; i < draws; i++ {
		// Reference: replay the algorithm, counting redraws.
		var want uint64
		for {
			hi, lo := bits.Mul64(ref.Uint64(), n)
			if lo < thresh {
				rejections++
				continue
			}
			want = hi
			break
		}
		got := r.Uint64n(n)
		if got != want {
			t.Fatalf("draw %d: Uint64n = %d, reference = %d (states diverged)", i, got, want)
		}
		if got >= n {
			t.Fatalf("draw %d: Uint64n out of range: %d", i, got)
		}
	}
	if rejections == 0 {
		t.Fatalf("rejection loop never triggered across %d draws with n=2^63+1 — test lost its teeth", draws)
	}
}

// TestRNGPermUniform checks Fisher–Yates output frequencies: over many
// permutations of 4 elements, each element must land in each position
// about 1/4 of the time. A biased swap (the classic i vs i+1 off-by-one)
// skews these counts far beyond the tolerance.
func TestRNGPermUniform(t *testing.T) {
	r := NewRNG(777)
	const n = 4
	const trials = 40000
	var counts [n][n]int // counts[value][position]
	for i := 0; i < trials; i++ {
		p := r.Perm(n)
		for pos, v := range p {
			counts[v][pos]++
		}
	}
	want := float64(trials) / n
	// 5-sigma binomial tolerance: sqrt(trials * 1/4 * 3/4).
	tol := 5 * math.Sqrt(float64(trials)*0.25*0.75)
	for v := 0; v < n; v++ {
		for pos := 0; pos < n; pos++ {
			if d := math.Abs(float64(counts[v][pos]) - want); d > tol {
				t.Errorf("element %d at position %d: %d occurrences, want %.0f±%.0f",
					v, pos, counts[v][pos], want, tol)
			}
		}
	}
}

func TestRNGUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var s Stats
	for i := 0; i < 200000; i++ {
		s.Observe(r.Exp(5))
	}
	if math.Abs(s.Mean()-5) > 0.1 {
		t.Errorf("Exp mean = %v, want ~5", s.Mean())
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	var s Stats
	for i := 0; i < 200000; i++ {
		s.Observe(r.Norm(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", s.Mean())
	}
	if math.Abs(math.Sqrt(s.Var())-2) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~2", math.Sqrt(s.Var()))
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(21)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream mirrors parent")
	}
}

func TestReservoirSmallStreamExact(t *testing.T) {
	r := NewReservoir(100, 1)
	for _, v := range []float64{5, 1, 3, 2, 4} {
		r.Observe(v)
	}
	if r.N() != 5 {
		t.Errorf("N = %d", r.N())
	}
	if got, ok := r.Quantile(0); !ok || got != 1 {
		t.Errorf("min = %v, %v", got, ok)
	}
	if got, ok := r.Quantile(1); !ok || got != 5 {
		t.Errorf("max = %v, %v", got, ok)
	}
	if got, ok := r.Median(); !ok || got != 3 {
		t.Errorf("median = %v, %v", got, ok)
	}
	// Interpolation between order statistics.
	if got, _ := r.Quantile(0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
}

func TestReservoirEmptyAndClamping(t *testing.T) {
	r := NewReservoir(10, 1)
	if _, ok := r.Quantile(0.5); ok {
		t.Error("empty reservoir should report ok=false")
	}
	if _, ok := r.Median(); ok {
		t.Error("empty median should report ok=false")
	}
	r.Observe(7)
	lo, okLo := r.Quantile(-1)
	hi, okHi := r.Quantile(2)
	if !okLo || !okHi || lo != 7 || hi != 7 {
		t.Error("q clamping failed")
	}
}

func TestReservoirObserveAfterQuantile(t *testing.T) {
	// Interleaving queries (which sort the retained sample in place) with
	// further observations must keep estimates consistent.
	r := NewReservoir(8, 1)
	for _, v := range []float64{9, 2, 7} {
		r.Observe(v)
	}
	if got, _ := r.Quantile(1); got != 9 {
		t.Errorf("max = %v before refill", got)
	}
	for _, v := range []float64{11, 1} {
		r.Observe(v)
	}
	if got, _ := r.Quantile(0); got != 1 {
		t.Errorf("min = %v after refill", got)
	}
	if got, _ := r.Quantile(1); got != 11 {
		t.Errorf("max = %v after refill", got)
	}
	if r.N() != 5 {
		t.Errorf("N = %d", r.N())
	}
}

func TestReservoirLargeStreamApproximation(t *testing.T) {
	// Uniform [0,1): quantile estimates should track q.
	r := NewReservoir(2048, 3)
	src := NewRNG(4)
	for i := 0; i < 200000; i++ {
		r.Observe(src.Float64())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, ok := r.Quantile(q)
		if !ok || math.Abs(got-q) > 0.05 {
			t.Errorf("Quantile(%v) = %v, %v", q, got, ok)
		}
	}
}

func TestReservoirDeterministic(t *testing.T) {
	mk := func() float64 {
		r := NewReservoir(64, 9)
		src := NewRNG(10)
		for i := 0; i < 10000; i++ {
			r.Observe(src.Float64())
		}
		q, _ := r.Quantile(0.95)
		return q
	}
	if mk() != mk() {
		t.Error("reservoir not deterministic")
	}
}
