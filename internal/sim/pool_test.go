package sim

import (
	"testing"
	"time"
)

// Event-pool and tombstone edge cases: the kernel recycles event slots
// through a free list, so every test here is really about generation
// counters making stale handles inert.

func TestCancelAfterFire(t *testing.T) {
	var eng Engine
	fired := 0
	ev := eng.Schedule(time.Millisecond, func() { fired++ })
	eng.Run()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The slot is back on the free list; Cancel must not resurrect or
	// corrupt anything.
	ev.Cancel()
	ev.Cancel()
	if eng.Pending() != 0 || eng.Executed() != 1 {
		t.Errorf("Pending=%d Executed=%d after cancel-after-fire", eng.Pending(), eng.Executed())
	}
	// The engine must still schedule and fire normally.
	eng.Schedule(time.Millisecond, func() { fired++ })
	eng.Run()
	if fired != 2 {
		t.Errorf("engine wedged after cancel-after-fire: fired = %d", fired)
	}
}

func TestDoubleCancelKeepsAccountingExact(t *testing.T) {
	var eng Engine
	ev := eng.Schedule(time.Millisecond, func() {})
	keep := eng.Schedule(2*time.Millisecond, func() {})
	ev.Cancel()
	if eng.Pending() != 1 {
		t.Fatalf("Pending = %d after first cancel, want 1", eng.Pending())
	}
	// A second cancel must not decrement the live count again.
	ev.Cancel()
	if eng.Pending() != 1 {
		t.Fatalf("Pending = %d after double cancel, want 1", eng.Pending())
	}
	keep.Cancel()
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", eng.Pending())
	}
	eng.Run()
	if eng.Executed() != 0 {
		t.Errorf("Executed = %d, want 0", eng.Executed())
	}
}

func TestCancelFromInsideOwnCallback(t *testing.T) {
	var eng Engine
	fired := 0
	var self Event
	self = eng.Schedule(time.Millisecond, func() {
		fired++
		// By the time the callback runs the slot is already recycled;
		// cancelling yourself must be a generation-mismatch no-op that in
		// particular cannot tombstone whatever event now occupies the slot.
		self.Cancel()
		eng.Schedule(time.Millisecond, func() { fired++ })
	})
	eng.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (self-cancel must not kill the successor)", fired)
	}
}

func TestStaleHandleAfterSlotRecycle(t *testing.T) {
	var eng Engine
	// Fire one event so its slot returns to the free list.
	stale := eng.Schedule(time.Millisecond, func() {})
	eng.Run()

	// The next schedule reuses that slot for a different event.
	fired := false
	fresh := eng.Schedule(time.Millisecond, func() { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse (stale=%d fresh=%d)", stale.slot, fresh.slot)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled slot did not bump its generation")
	}

	// Cancelling through the stale handle must not touch the new tenant.
	stale.Cancel()
	if eng.Pending() != 1 {
		t.Fatalf("stale Cancel killed the new event (Pending = %d)", eng.Pending())
	}
	eng.Run()
	if !fired {
		t.Error("new tenant of the recycled slot never fired")
	}
}

func TestAtSurvivesRecycle(t *testing.T) {
	var eng Engine
	ev := eng.Schedule(5*time.Millisecond, func() {})
	eng.Run()
	// At is captured in the handle, so it stays correct (and safe) after
	// the slot has been recycled any number of times.
	for i := 0; i < 10; i++ {
		eng.Schedule(time.Millisecond, func() {})
		eng.Run()
	}
	if ev.At() != 5*time.Millisecond {
		t.Errorf("At = %v after recycle, want 5ms", ev.At())
	}
	var zero Event
	zero.Cancel() // zero handle is inert
	if zero.At() != 0 {
		t.Errorf("zero handle At = %v", zero.At())
	}
}

// TestRunUntilDeadHeadAtDeadline is the boundary case the lazy-tombstone
// rewrite must get right: the head of the calendar is a cancelled event
// at (or before) the deadline, and the next live event lies beyond it.
// RunUntil must skip the tombstone without firing the live event and
// without advancing the clock past the deadline.
func TestRunUntilDeadHeadAtDeadline(t *testing.T) {
	var eng Engine
	headFired, lateFired := false, false
	head := eng.Schedule(3*time.Millisecond, func() { headFired = true })
	eng.Schedule(5*time.Millisecond, func() { lateFired = true })
	head.Cancel()

	eng.RunUntil(3 * time.Millisecond)
	if headFired {
		t.Error("cancelled head event fired")
	}
	if lateFired {
		t.Error("RunUntil fired an event past the deadline while skipping a dead head")
	}
	if eng.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want exactly the 3ms deadline", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", eng.Pending())
	}

	eng.RunUntil(MaxTime)
	if !lateFired {
		t.Error("live event never fired")
	}
}

// TestCancelHeavyCompaction drives the cancel-dominated workload that
// forces calendar compaction and checks survivors still fire in order
// with exact accounting.
func TestCancelHeavyCompaction(t *testing.T) {
	var eng Engine
	const n = 10000
	var fired []int
	handles := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		i := i
		handles = append(handles, eng.Schedule(time.Duration(i)*time.Microsecond, func() {
			fired = append(fired, i)
		}))
	}
	// Cancel everything not divisible by 97 — enough tombstones to trip
	// compaction several times over.
	for i, h := range handles {
		if i%97 != 0 {
			h.Cancel()
		}
	}
	want := 0
	for i := 0; i < n; i += 97 {
		want++
	}
	if eng.Pending() != want {
		t.Fatalf("Pending = %d, want %d", eng.Pending(), want)
	}
	eng.Run()
	if len(fired) != want {
		t.Fatalf("fired %d, want %d", len(fired), want)
	}
	for j := 1; j < len(fired); j++ {
		if fired[j-1] >= fired[j] {
			t.Fatalf("order violated at %d: %d >= %d", j, fired[j-1], fired[j])
		}
	}
	if eng.Executed() != uint64(want) {
		t.Errorf("Executed = %d, want %d", eng.Executed(), want)
	}
}

// TestCancelAllCompaction cancels every scheduled event so the compaction
// sweep triggered by Cancel runs with zero survivors — a regression test
// for the heapify loop indexing an empty calendar.
func TestCancelAllCompaction(t *testing.T) {
	var eng Engine
	const n = 65 // > the 64-tombstone compaction floor
	handles := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		handles = append(handles, eng.Schedule(time.Duration(i)*time.Microsecond, func() {
			t.Error("cancelled event fired")
		}))
	}
	for _, h := range handles {
		h.Cancel()
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", eng.Pending())
	}
	eng.Run()
	if eng.Executed() != 0 {
		t.Errorf("Executed = %d, want 0", eng.Executed())
	}
	// The calendar must still be usable after an all-tombstone sweep.
	fired := false
	eng.Schedule(time.Microsecond, func() { fired = true })
	eng.Run()
	if !fired {
		t.Error("event scheduled after full compaction never fired")
	}
}

// TestScheduleArg covers the zero-closure fast path: ordering with
// Schedule-created events, argument delivery, and cancellation.
func TestScheduleArg(t *testing.T) {
	var eng Engine
	var got []int
	push := func(arg any) { got = append(got, *arg.(*int)) }
	one, two, three := 1, 2, 3
	eng.ScheduleArg(2*time.Millisecond, push, &two)
	eng.Schedule(3*time.Millisecond, func() { got = append(got, three) })
	eng.ScheduleArg(time.Millisecond, push, &one)
	ev := eng.ScheduleArg(time.Millisecond, push, &three)
	ev.Cancel()
	eng.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	// Negative delays clamp like Schedule.
	fired := false
	eng.ScheduleArg(-time.Second, func(any) { fired = true }, nil)
	eng.Run()
	if !fired {
		t.Error("negative-delay ScheduleArg event never fired")
	}
}
