package sim

import (
	"math"
	"math/bits"
)

// RNG is a deterministic SplitMix64 pseudo-random generator. It is tiny,
// allocation-free, and — unlike math/rand's global source — completely
// reproducible across runs and Go versions, which the experiment harness
// relies on.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// bounded sampling with rejection, so every value is exactly equally
// likely (a plain Uint64()%n is biased toward small values whenever n is
// not a power of two). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		// Reject the sliver of the 64-bit range that maps unevenly:
		// thresh = 2^64 mod n; draws whose low product word falls below
		// it are redrawn. At most one retry is expected for any n.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value via Box–Muller.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; useful for giving each simulated
// entity its own stream without coupling their sequences.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xdeadbeefcafef00d)
}
