// Package metrics is the production observability layer for the serving
// front-end: lock-free hot-path primitives whose record paths cost one or
// two uncontended atomic RMWs and zero allocations, plus mergeable
// snapshots and the JSON schema the HTTP control plane renders and
// cmd/memsload consumes.
//
// Two primitives cover the streaming hot path:
//
//   - Counter: a cache-line-padded sharded atomic counter. A hot
//     goroutine (one paced stream) takes a Handle once at start and adds
//     to its own shard thereafter, so concurrent streams never contend on
//     one cache line. Total folds the shards on the (cold) read side.
//   - Histogram: a fixed-bucket log-spaced latency histogram. Observe
//     maps a value to its bucket with float-bit arithmetic (no math.Log,
//     no allocation, no lock) and increments one atomic bucket.
//
// Both replace the previous design in internal/serve, where every
// pacing-lag sample took a sync.Mutex around a sampling reservoir — a
// single contended lock shared by every stream on the box.
package metrics

import "sync/atomic"

// counterShards is the shard fan-out. Handles distribute round-robin, so
// up to this many hot goroutines write entirely uncontended cache lines;
// beyond it, collisions stay 1/counterShards. Must be a power of two.
const counterShards = 16

// counterShard pads one atomic to a 64-byte cache line so neighbouring
// shards never false-share.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonic counter sharded across cache-line-padded cells.
// The zero value is ready to use. Hot paths should take a Handle once and
// add through it; Add without a handle is for cold paths.
type Counter struct {
	shards [counterShards]counterShard
	next   atomic.Uint32
}

// Handle is a hot goroutine's pinned shard reference. Obtain one from
// Counter.Handle at goroutine start; the zero Handle is invalid.
type Handle struct {
	s *counterShard
}

// Handle assigns the next shard round-robin. One atomic increment here
// buys an uncontended hot path for the goroutine's lifetime.
func (c *Counter) Handle() Handle {
	i := c.next.Add(1) - 1
	return Handle{s: &c.shards[i%counterShards]}
}

// Add accumulates delta on the handle's shard.
func (h Handle) Add(delta uint64) { h.s.n.Add(delta) }

// Add accumulates delta on shard 0 — a convenience for cold paths that
// have no Handle (e.g. one-shot accounting outside the streaming loop).
func (c *Counter) Add(delta uint64) { c.shards[0].n.Add(delta) }

// Total folds every shard. It is not a consistent cut across shards
// (loads are independent), but the counter is monotonic, so Total is
// always between the true value at the start and end of the call.
func (c *Counter) Total() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Gauge is a lock-free instantaneous gauge (population counts, queue
// depths): a padded atomic so a hot gauge never false-shares with its
// neighbours in a metrics struct. The zero value is ready to use.
// Unlike Counter it can go down, and its single cell is the truth — a
// gauge read must never be smeared across shards the way a monotonic
// counter's Total may be.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
