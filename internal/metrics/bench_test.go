package metrics

import (
	"sync"
	"testing"

	"memstream/internal/sim"
)

// The collector's observe path is the per-chunk/per-quantum streaming hot
// path: CI gates these benchmarks at 0 allocs/op, and the parallel
// variants document the contention behaviour that motivated sharding.

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-5)
			i++
		}
	})
}

func BenchmarkCounterHandleAdd(b *testing.B) {
	var c Counter
	h := c.Handle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(1)
	}
}

func BenchmarkCounterHandleAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		h := c.Handle()
		for pb.Next() {
			h.Add(1)
		}
	})
}

// Baseline: the design this package replaced — every lag sample taking a
// sync.Mutex around a sampling reservoir (internal/serve's previous
// ObserveLag). Compare against BenchmarkHistogramObserve{,Parallel} for
// the hot-path cost delta; the reservoir also allocates on its sample
// buffer growth, so it cannot meet the 0 allocs/op budget.
func BenchmarkMutexReservoirObserve(b *testing.B) {
	var mu sync.Mutex
	r := sim.NewReservoir(8192, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		r.Observe(float64(i%1000) * 1e-5)
		mu.Unlock()
	}
}

func BenchmarkMutexReservoirObserveParallel(b *testing.B) {
	var mu sync.Mutex
	r := sim.NewReservoir(8192, 1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			r.Observe(float64(i%1000) * 1e-5)
			mu.Unlock()
			i++
		}
	})
}

func BenchmarkSnapshotAndQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		s.Quantile(0.95)
	}
}
