package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterHandleAndTotal(t *testing.T) {
	var c Counter
	h1, h2 := c.Handle(), c.Handle()
	h1.Add(3)
	h2.Add(4)
	c.Add(5)
	if got := c.Total(); got != 12 {
		t.Errorf("Total = %d, want 12", got)
	}
}

// Handles distribute round-robin: with more handles than shards the
// counter still sums exactly, and distinct early handles get distinct
// shards (the no-contention property for the common few-streams case).
func TestCounterManyHandlesExact(t *testing.T) {
	var c Counter
	const workers, perWorker = 64, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < perWorker; i++ {
				h.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != workers*perWorker {
		t.Errorf("Total = %d, want %d", got, workers*perWorker)
	}
	if c.Handle().s == c.Handle().s {
		t.Error("consecutive handles share a shard; round-robin broken")
	}
}

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{histMin, 0},              // bound is inclusive on the underflow side
		{histMin * 1.01, 1},       // first interior bucket
		{histMax, NumBuckets - 1}, // overflow
		{1e9, NumBuckets - 1},
		{math.Inf(1), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Every interior sample lands in a bucket whose bounds contain it.
func TestBucketOfWithinBounds(t *testing.T) {
	for v := histMin * 1.001; v < histMax; v *= 1.07 {
		i := bucketOf(v)
		if i <= 0 || i >= NumBuckets-1 {
			t.Fatalf("bucketOf(%v) = %d, want interior", v, i)
		}
		hi := BucketBound(i)
		lo := BucketBound(i - 1)
		if v <= lo || v > hi {
			t.Errorf("v=%v in bucket %d but bounds are (%v, %v]", v, i, lo, hi)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 1000 samples spread uniformly over [1ms, 101ms): the true q-quantile
	// is 1ms + q·100ms, and the bucket estimate must land within one
	// quarter-octave (±25%).
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 + float64(i)*0.0001)
	}
	if n := h.N(); n != 1000 {
		t.Fatalf("N = %d, want 1000", n)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("Quantile(%v) not ok", q)
		}
		want := 0.001 + q*0.1
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("Quantile(%v) = %v, want within 25%% of %v", q, got, want)
		}
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if _, ok := h.Quantile(0.5); ok {
		t.Error("Quantile ok on empty histogram")
	}
	w := h.Snapshot().Wire()
	if w.Quantiles != nil {
		t.Errorf("empty histogram rendered quantiles %v; want absent", w.Quantiles)
	}
	if w.Count != 0 || len(w.Buckets) != 0 {
		t.Errorf("empty histogram wire = %+v, want empty", w)
	}
}

// Zero-lag samples (the on-schedule common case) land in the underflow
// bucket and report a 0 quantile — distinguishable from "no data" only
// by Count, which is exactly how the METRICS line decides to render.
func TestHistogramZeroLag(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	v, ok := h.Quantile(0.99)
	if !ok || v != 0 {
		t.Errorf("Quantile(0.99) = %v,%v after zero-lag samples, want 0,true", v, ok)
	}
	if w := h.Snapshot().Wire(); w.Quantiles["p50_ms"] != 0 || w.Count != 10 {
		t.Errorf("wire = %+v, want count=10 with zero quantiles present", w)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(0.001)
		b.Observe(0.1)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.N != 200 {
		t.Errorf("merged N = %d, want 200", sa.N)
	}
	if v, _ := sa.Quantile(0.25); v < 0.00075 || v > 0.00125 {
		t.Errorf("merged p25 = %v, want ~1ms", v)
	}
	if v, _ := sa.Quantile(0.75); v < 0.075 || v > 0.125 {
		t.Errorf("merged p75 = %v, want ~100ms", v)
	}
}

// The hard hot-path budget: Observe and Add allocate nothing. This is a
// test (not just a benchmark) so `go test` itself gates the invariant.
func TestHotPathZeroAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	hd := c.Handle()
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0042)
		hd.Add(1)
	}); n != 0 {
		t.Errorf("hot path allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("cold Add allocates %v per op, want 0", n)
	}
}

// Race hammer: N writers on the counter and histogram while snapshots,
// totals, and quantiles are read concurrently. Run under -race in CI.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	var h Histogram
	var c Counter
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hd := c.Handle()
			// A minimum batch guarantees every writer records something
			// even if the reader loop below finishes first.
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%100) * 1e-4)
				hd.Add(1)
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%100) * 1e-4)
					hd.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < 500; i++ {
		s := h.Snapshot()
		var sum uint64
		for _, n := range s.Counts {
			sum += n
		}
		if sum != s.N {
			t.Fatalf("snapshot N=%d but buckets sum to %d", s.N, sum)
		}
		s.Quantile(0.95)
		c.Total()
	}
	close(stop)
	wg.Wait()
	if c.Total() == 0 || h.N() == 0 {
		t.Error("hammer recorded nothing")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Load(); got != 0 {
		t.Fatalf("zero Gauge = %d", got)
	}
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Errorf("after +5-2: %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Errorf("after Set(-7): %d", got)
	}
	allocs := testing.AllocsPerRun(100, func() { g.Add(1); _ = g.Load() })
	if allocs != 0 {
		t.Errorf("Gauge hot path allocates %.1f/op", allocs)
	}
}
