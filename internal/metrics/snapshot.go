package metrics

// This file is the control-plane wire schema: the JSON document shapes
// served by memserve's HTTP endpoints and decoded by cmd/memsload's
// -http-metrics probe and -verify-http consistency check. Producers and
// consumers share these types, so the schema cannot drift silently.

// Document is the GET /metrics response. The Streams array is rendered
// last and streamed entry-by-entry by the handler, so a server with
// thousands of live streams never buffers the whole document.
type Document struct {
	Server   string            `json:"server"`
	State    string            `json:"state"` // "serving" | "draining"
	UptimeMS float64           `json:"uptime_ms"`
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]int64  `json:"gauges"`
	Lag      HistogramJSON     `json:"lag"`
	Tiers    []Tier            `json:"tiers,omitempty"`
	Streams  []Stream          `json:"streams"`
}

// HistogramJSON is the wire form of a histogram Snapshot. Quantiles is
// absent until at least one sample exists; Buckets lists only non-empty
// buckets (le_ms is the bucket's inclusive upper bound in milliseconds);
// Overflow counts samples beyond the histogram range.
type HistogramJSON struct {
	Count     uint64             `json:"count"`
	SumMS     float64            `json:"sum_ms"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Buckets   []BucketJSON       `json:"buckets,omitempty"`
	Overflow  uint64             `json:"overflow,omitempty"`
}

// BucketJSON is one non-empty histogram bucket.
type BucketJSON struct {
	LeMS  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// Tier is one memory-hierarchy tier's admission-plan gauge set: the
// DRAM tier carries capacity/planned-use bytes, the disk tier carries
// bandwidth and the admitted aggregate. Utilization is used/cap for
// byte tiers and aggregate/rate for rate tiers.
type Tier struct {
	Name         string  `json:"tier"`
	CapBytes     float64 `json:"cap_bytes,omitempty"`
	UsedBytes    float64 `json:"used_bytes,omitempty"`
	RateBps      float64 `json:"rate_bps,omitempty"`
	AggregateBps float64 `json:"aggregate_bps,omitempty"`
	Utilization  float64 `json:"utilization"`
}

// Stream is one live paced stream.
type Stream struct {
	ID      uint64  `json:"id"`
	RateBps float64 `json:"rate_bps"`
	Bytes   uint64  `json:"bytes_out"`
	AgeMS   float64 `json:"age_ms"`
}

// Status is the GET /status response: the cheap liveness view without
// per-stream detail or histogram buckets.
type Status struct {
	Server        string  `json:"server"`
	State         string  `json:"state"`
	Admitted      int     `json:"admitted"`
	Capacity      int     `json:"capacity"`
	ActiveStreams int64   `json:"active_streams"`
	Conns         int     `json:"conns"`
	AggregateBps  float64 `json:"aggregate_bps"`
	UptimeMS      float64 `json:"uptime_ms"`
}
