package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: quarter-octave log2 buckets spanning
// [2^minExp, 2^maxExp) seconds, one underflow bucket (values ≤ 2^minExp,
// including the very common "zero lag") and one overflow bucket. With
// minExp = -20 (~0.95µs) and maxExp = 4 (16s) that is 24 octaves × 4
// sub-buckets + 2 = 98 buckets, and every bucket's width is ≤ 25% of its
// lower bound — comfortably finer than the millisecond resolution the
// METRICS line reports.
const (
	histMinExp  = -20
	histMaxExp  = 4
	histSubBits = 2 // sub-buckets per octave = 1<<histSubBits
	histSub     = 1 << histSubBits

	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets = (histMaxExp-histMinExp)*histSub + 2
)

var (
	histMin = math.Ldexp(1, histMinExp) // underflow bound, seconds
	histMax = math.Ldexp(1, histMaxExp) // overflow bound, seconds
)

// bucketOf maps a sample in seconds to its bucket index using the float's
// own binary representation: the exponent selects the octave and the top
// mantissa bits the sub-bucket. No log call, no branch on bucket bounds,
// no allocation.
func bucketOf(v float64) int {
	if !(v > histMin) { // also catches 0, negatives, and NaN
		return 0
	}
	if v >= histMax {
		return NumBuckets - 1
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52) - 1023
	sub := int(bits >> (52 - histSubBits) & (histSub - 1))
	return 1 + (exp-histMinExp)*histSub + sub
}

// BucketBound returns bucket i's inclusive upper bound in seconds. The
// overflow bucket's bound is +Inf.
func BucketBound(i int) float64 {
	switch {
	case i <= 0:
		return histMin
	case i >= NumBuckets-1:
		return math.Inf(1)
	}
	k := i - 1
	return math.Ldexp(1+float64(k%histSub+1)/histSub, histMinExp+k/histSub)
}

// bucketEstimate is the representative value reported for a quantile that
// lands in bucket i: 0 for the underflow bucket (lag below measurement
// resolution), the geometric midpoint for interior buckets, and the range
// maximum for the overflow bucket.
func bucketEstimate(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return histMax
	}
	hi := BucketBound(i)
	k := i - 1
	lo := math.Ldexp(1+float64(k%histSub)/histSub, histMinExp+k/histSub)
	return math.Sqrt(lo * hi)
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observe is lock-free and allocation-free; snapshots are mergeable. The
// zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sumNS   atomic.Uint64 // total of positive samples, nanoseconds
}

// Observe records one sample in seconds.
func (h *Histogram) Observe(sec float64) {
	h.buckets[bucketOf(sec)].Add(1)
	if sec > 0 {
		h.sumNS.Add(uint64(sec * 1e9))
	}
}

// N reports how many samples were observed.
func (h *Histogram) N() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot copies the histogram's state. Buckets are loaded independently
// (no global lock), so a snapshot taken during concurrent Observes is a
// slightly time-smeared but internally valid histogram.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.N += c
	}
	s.SumNS = h.sumNS.Load()
	return s
}

// Quantile reports the q-quantile in seconds from the live buckets; ok is
// false when no samples have been observed.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Snapshot is a point-in-time copy of a Histogram: mergeable across
// collectors (shards, servers) and the source for the JSON rendering.
type Snapshot struct {
	Counts [NumBuckets]uint64
	N      uint64
	SumNS  uint64
}

// Merge folds another snapshot into s.
func (s *Snapshot) Merge(o *Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.N += o.N
	s.SumNS += o.SumNS
}

// Quantile reports the q-quantile in seconds (q clamped to [0,1]); ok is
// false when the snapshot is empty. The estimate is bucket-resolution:
// exact to within the bucket's ≤25% width.
func (s *Snapshot) Quantile(q float64) (float64, bool) {
	if s.N == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.N)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			return bucketEstimate(i), true
		}
	}
	return bucketEstimate(NumBuckets - 1), true
}

// Wire renders the snapshot in the control-plane JSON schema: count, sum,
// standard quantiles (omitted while empty, so "no data yet" can never be
// mistaken for "true zero lag"), and the non-empty buckets.
func (s Snapshot) Wire() HistogramJSON {
	w := HistogramJSON{Count: s.N, SumMS: float64(s.SumNS) / 1e6}
	if s.N > 0 {
		w.Quantiles = map[string]float64{}
		for _, q := range [...]struct {
			name string
			q    float64
		}{{"p50_ms", 0.50}, {"p95_ms", 0.95}, {"p99_ms", 0.99}} {
			if v, ok := s.Quantile(q.q); ok {
				w.Quantiles[q.name] = v * 1e3
			}
		}
	}
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i == NumBuckets-1 {
			w.Overflow = c
			continue
		}
		w.Buckets = append(w.Buckets, BucketJSON{LeMS: BucketBound(i) * 1e3, Count: c})
	}
	return w
}
