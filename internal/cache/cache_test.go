package cache

import (
	"math"
	"testing"
	"testing/quick"

	"memstream/internal/model"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

func catalog(t *testing.T, n int, d workload.XYDistribution) *workload.Catalog {
	t.Helper()
	cat, err := workload.NewCatalog(n, workload.DVD, d.Weights(n), 512)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlanPinsPopularPrefix(t *testing.T) {
	cat := catalog(t, 100, workload.XYDistribution{X: 10, Y: 90})
	// Room for 5 DVD titles (6.6GB each).
	p, err := Plan(cat, 33*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Titles) != 5 {
		t.Fatalf("pinned %d titles, want 5", len(p.Titles))
	}
	for i, id := range p.Titles {
		if id != i {
			t.Errorf("pinned title %d at slot %d, want ranked prefix", id, i)
		}
	}
	if p.Used != 5*workload.DVD.Size() {
		t.Errorf("used = %v", p.Used)
	}
	if math.Abs(p.Fraction-0.05) > 1e-9 {
		t.Errorf("fraction = %v, want 0.05", p.Fraction)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := catalog(t, 10, workload.XYDistribution{X: 10, Y: 90})
	if _, err := Plan(nil, units.GB); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := Plan(cat, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestPlanHitRatioMatchesEquation11(t *testing.T) {
	// Pinning the top 5% of a 10:90 catalog should give h ≈ (5/10)·0.9.
	cat := catalog(t, 200, workload.XYDistribution{X: 10, Y: 90})
	p, err := Plan(cat, 10*workload.DVD.Size())
	if err != nil {
		t.Fatal(err)
	}
	got := p.HitRatio(cat)
	want, _ := model.HitRatio(10, 90, 0.05)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("placement h = %v, Eq 11 h = %v", got, want)
	}
}

func TestPlacementContains(t *testing.T) {
	cat := catalog(t, 20, workload.XYDistribution{X: 10, Y: 90})
	p, _ := Plan(cat, 3*workload.DVD.Size())
	if !p.Contains(0) || !p.Contains(2) {
		t.Error("prefix titles missing")
	}
	if p.Contains(10) {
		t.Error("unpinned title reported present")
	}
}

func TestUpdateComputesDelta(t *testing.T) {
	old := &Placement{Titles: []int{0, 1, 2, 3}}
	next := &Placement{Titles: []int{0, 2, 5, 6}}
	evict, load := Update(old, next)
	if len(evict) != 2 || evict[0] != 1 || evict[1] != 3 {
		t.Errorf("evict = %v, want [1 3]", evict)
	}
	if len(load) != 2 || load[0] != 5 || load[1] != 6 {
		t.Errorf("load = %v, want [5 6]", load)
	}
	// Identical placements: nothing moves.
	e, l := Update(old, old)
	if len(e) != 0 || len(l) != 0 {
		t.Error("self-update should be empty")
	}
}

func TestPlanHybridPureCacheWinsForSkewedPopularity(t *testing.T) {
	disk := model.DeviceSpec{Rate: 300 * units.MBPS, Latency: units.Milliseconds(4.3)}
	memsSpec := model.DeviceSpec{Rate: 320 * units.MBPS, Latency: units.Milliseconds(0.59)}
	split, err := PlanHybrid(4, 10*units.GB, disk, memsSpec,
		10*units.KBPS, 1000*units.GB, 1, 99, 2*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if split.Streams <= 0 {
		t.Fatal("no streams sustained")
	}
	// With 1:99 popularity and 4% coverage of the hot set, caching should
	// dominate the split.
	if split.CacheBytes < split.BufferBytes {
		t.Errorf("split = cache %v / buffer %v; expected cache-heavy", split.CacheBytes, split.BufferBytes)
	}
}

func TestPlanHybridBufferWinsForUniformPopularity(t *testing.T) {
	disk := model.DeviceSpec{Rate: 300 * units.MBPS, Latency: units.Milliseconds(4.3)}
	memsSpec := model.DeviceSpec{Rate: 320 * units.MBPS, Latency: units.Milliseconds(0.59)}
	split, err := PlanHybrid(4, 10*units.GB, disk, memsSpec,
		10*units.KBPS, 1000*units.GB, 50, 50, 2*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform popularity: a 4% cache absorbs only 4% of traffic, so
	// buffering should carry the split (the paper's §7 motivation).
	if split.BufferBytes < split.CacheBytes {
		t.Errorf("split = cache %v / buffer %v; expected buffer-heavy", split.CacheBytes, split.BufferBytes)
	}
}

func TestPlanHybridErrors(t *testing.T) {
	disk := model.DeviceSpec{Rate: 300 * units.MBPS, Latency: units.Milliseconds(4.3)}
	memsSpec := model.DeviceSpec{Rate: 320 * units.MBPS, Latency: units.Milliseconds(0.59)}
	if _, err := PlanHybrid(0, 10*units.GB, disk, memsSpec, units.MBPS, units.TB, 10, 90, units.GB); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PlanHybrid(2, 0, disk, memsSpec, units.MBPS, units.TB, 10, 90, units.GB); err == nil {
		t.Error("zero per-device accepted")
	}
}

func TestLRUBasics(t *testing.T) {
	c, err := NewLRU(10 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(1, 4*units.GB) {
		t.Error("first access hit")
	}
	if !c.Access(1, 4*units.GB) {
		t.Error("second access missed")
	}
	if c.Used() != 4*units.GB || c.Len() != 1 {
		t.Errorf("used=%v len=%d", c.Used(), c.Len())
	}
	if c.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v", c.HitRatio())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c, _ := NewLRU(10 * units.GB)
	c.Access(1, 4*units.GB)
	c.Access(2, 4*units.GB)
	c.Access(1, 4*units.GB) // refresh 1
	c.Access(3, 4*units.GB) // evicts 2
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("expected 1 and 3 resident")
	}
	if c.Contains(2) {
		t.Error("2 should have been evicted")
	}
}

func TestLRUOversizedNeverInserted(t *testing.T) {
	c, _ := NewLRU(1 * units.GB)
	if c.Access(1, 2*units.GB) {
		t.Error("oversized access hit")
	}
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("oversized title inserted")
	}
}

func TestLRUValidation(t *testing.T) {
	if _, err := NewLRU(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

// On a popularity-skewed stream of accesses, pinned placement (which knows
// the distribution) should match or beat LRU — streaming data has no
// temporal locality beyond popularity.
func TestPinnedBeatsOrMatchesLRU(t *testing.T) {
	dist := workload.XYDistribution{X: 5, Y: 95}
	cat := catalog(t, 200, dist)
	capacity := 10 * workload.DVD.Size()

	pinned, err := Plan(cat, capacity)
	if err != nil {
		t.Fatal(err)
	}
	lru, _ := NewLRU(capacity)
	rng := sim.NewRNG(11)
	var pinnedHits, accesses int
	for i := 0; i < 20000; i++ {
		title := cat.Pick(rng)
		accesses++
		if pinned.Contains(title.ID) {
			pinnedHits++
		}
		lru.Access(title.ID, title.Size)
	}
	pinnedRatio := float64(pinnedHits) / float64(accesses)
	if pinnedRatio < lru.HitRatio()-0.02 {
		t.Errorf("pinned hit ratio %.3f below LRU %.3f", pinnedRatio, lru.HitRatio())
	}
}

// Property: LRU never exceeds its capacity.
func TestLRUCapacityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c, err := NewLRU(1 * units.GB)
		if err != nil {
			return false
		}
		for _, op := range ops {
			c.Access(int(op%32), units.Bytes(op)*10*units.MB)
			if c.Used() > 1*units.GB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
