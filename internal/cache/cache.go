// Package cache plans the contents of a MEMS multimedia cache: which
// titles to pin (popularity-ranked prefix placement), how the cache is
// refreshed (offline, during service downtime — paper §3.2), and an LRU
// cache used as the best-effort baseline the paper contrasts with
// (traditional caching suits best-effort data, not streaming).
package cache

import (
	"fmt"
	"sort"

	"memstream/internal/model"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// Placement is a planned cache image: the set of pinned titles.
type Placement struct {
	Titles   []int // title IDs, most popular first
	Used     units.Bytes
	Capacity units.Bytes
	Fraction float64 // p: fraction of the catalog held
}

// Plan chooses the most popular prefix of the catalog that fits in
// capacity. Titles must be popularity-ranked (workload.NewCatalog output);
// Plan re-sorts defensively by Rank.
func Plan(cat *workload.Catalog, capacity units.Bytes) (*Placement, error) {
	if cat == nil || len(cat.Titles) == 0 {
		return nil, fmt.Errorf("cache: empty catalog")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive capacity %v", capacity)
	}
	ranked := make([]workload.Title, len(cat.Titles))
	copy(ranked, cat.Titles)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].Rank < ranked[j].Rank })

	p := &Placement{Capacity: capacity}
	for _, t := range ranked {
		if p.Used+t.Size > capacity {
			break
		}
		p.Titles = append(p.Titles, t.ID)
		p.Used += t.Size
	}
	total := cat.TotalSize()
	if total > 0 {
		p.Fraction = float64(p.Used) / float64(total)
	}
	return p, nil
}

// Contains reports whether a title is pinned.
func (p *Placement) Contains(titleID int) bool {
	for _, id := range p.Titles {
		if id == titleID {
			return true
		}
	}
	return false
}

// HitRatio returns the empirical hit ratio of the placement over the
// catalog's popularity weights.
func (p *Placement) HitRatio(cat *workload.Catalog) float64 {
	pinned := make(map[int]bool, len(p.Titles))
	for _, id := range p.Titles {
		pinned[id] = true
	}
	var hit, total float64
	for _, t := range cat.Titles {
		total += t.Weight
		if pinned[t.ID] {
			hit += t.Weight
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// Update computes the offline refresh between two placements: titles to
// evict and titles to load. The paper updates the cache "off-line, during
// service down-time" to track popularity changes.
func Update(old, new_ *Placement) (evict, load []int) {
	oldSet := make(map[int]bool, len(old.Titles))
	for _, id := range old.Titles {
		oldSet[id] = true
	}
	newSet := make(map[int]bool, len(new_.Titles))
	for _, id := range new_.Titles {
		newSet[id] = true
	}
	for _, id := range old.Titles {
		if !newSet[id] {
			evict = append(evict, id)
		}
	}
	for _, id := range new_.Titles {
		if !oldSet[id] {
			load = append(load, id)
		}
	}
	return evict, load
}

// HybridSplit is the paper's future-work configuration (§7): part of the
// MEMS bank buffers disk IOs, the rest caches popular titles.
type HybridSplit struct {
	BufferBytes units.Bytes
	CacheBytes  units.Bytes
	Streams     int // total streams sustained at this split
}

// PlanHybrid searches the buffer/cache split of a k-device bank (in
// per-device-capacity steps) that maximizes sustained streams for the
// given DRAM budget, popularity and catalog. Devices are whole units: j
// devices cache (striped), k−j devices buffer.
func PlanHybrid(k int, perDevice units.Bytes, disk, memsSpec model.DeviceSpec,
	bitRate units.ByteRate, contentSize units.Bytes, x, y float64,
	dram units.Bytes) (HybridSplit, error) {

	if k <= 0 || perDevice <= 0 {
		return HybridSplit{}, fmt.Errorf("cache: bad bank (k=%d, per-device %v)", k, perDevice)
	}
	best := HybridSplit{}
	for j := 0; j <= k; j++ { // j devices cache, k-j buffer
		n := hybridStreams(j, k-j, perDevice, disk, memsSpec, bitRate, contentSize, x, y, dram)
		if n > best.Streams {
			best = HybridSplit{
				BufferBytes: perDevice.Mul(float64(k - j)),
				CacheBytes:  perDevice.Mul(float64(j)),
				Streams:     n,
			}
		}
	}
	if best.Streams == 0 {
		return best, fmt.Errorf("%w: no split of %d devices sustains any stream",
			model.ErrInfeasible, k)
	}
	return best, nil
}

// hybridStreams returns the max streams for a fixed split: cache absorbs
// hits; the disk side (optionally MEMS-buffered) carries the misses.
func hybridStreams(cacheK, bufK int, perDevice units.Bytes, disk, memsSpec model.DeviceSpec,
	bitRate units.ByteRate, contentSize units.Bytes, x, y float64, dram units.Bytes) int {

	p := 0.0
	if contentSize > 0 {
		p = float64(perDevice.Mul(float64(cacheK))) / float64(contentSize)
	}
	h := 0.0
	if cacheK > 0 {
		var err error
		h, err = model.HitRatio(x, y, p)
		if err != nil {
			return 0
		}
	}
	feasible := func(n int) bool {
		nc := int(h * float64(n))
		nd := n - nc
		var used units.Bytes
		if nc > 0 {
			cp, err := model.StripedCache(nc, cacheK, bitRate, memsSpec)
			if err != nil {
				return false
			}
			used += cp.TotalDRAM
		}
		if nd > 0 {
			if bufK > 0 {
				bp, err := model.BufferPlan(model.BufferConfig{
					Load: model.StreamLoad{N: nd, BitRate: bitRate},
					Disk: disk, Tier: memsSpec, K: bufK, SizePerDevice: perDevice,
				})
				if err != nil {
					return false
				}
				used += bp.TotalDRAM
			} else {
				dp, err := model.DiskDirect(model.StreamLoad{N: nd, BitRate: bitRate}, disk)
				if err != nil {
					return false
				}
				used += dp.TotalDRAM
			}
		}
		return used <= dram
	}
	lo, hi := 0, 2
	if !feasible(1) {
		return 0
	}
	for feasible(hi) {
		lo = hi
		hi *= 2
		if hi > 1<<24 {
			break
		}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
