package cache

import (
	"container/list"
	"fmt"

	"memstream/internal/units"
)

// LRU is a byte-capacity least-recently-used cache over title IDs. The
// paper notes traditional caching (Smith's survey) suits best-effort data
// with temporal locality — streaming data has none, so LRU serves as the
// baseline that popularity-pinned placement is compared against.
type LRU struct {
	capacity units.Bytes
	used     units.Bytes
	order    *list.List // front = most recent
	items    map[int]*list.Element

	Hits, Misses uint64
}

type lruEntry struct {
	id   int
	size units.Bytes
}

// NewLRU creates an LRU cache with the given byte capacity.
func NewLRU(capacity units.Bytes) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive LRU capacity %v", capacity)
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[int]*list.Element),
	}, nil
}

// Access touches a title of the given size: a hit refreshes recency; a
// miss inserts the title, evicting least-recently-used titles to fit.
// It reports whether the access hit. Titles larger than the cache are
// never inserted.
func (c *LRU) Access(id int, size units.Bytes) bool {
	if e, ok := c.items[id]; ok {
		c.order.MoveToFront(e)
		c.Hits++
		return true
	}
	c.Misses++
	if size > c.capacity || size <= 0 {
		return false
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(lruEntry)
		c.order.Remove(back)
		delete(c.items, ent.id)
		c.used -= ent.size
	}
	c.items[id] = c.order.PushFront(lruEntry{id: id, size: size})
	c.used += size
	return false
}

// Contains reports whether a title is resident without touching recency.
func (c *LRU) Contains(id int) bool {
	_, ok := c.items[id]
	return ok
}

// Used returns resident bytes.
func (c *LRU) Used() units.Bytes { return c.used }

// Len returns resident title count.
func (c *LRU) Len() int { return len(c.items) }

// HitRatio returns hits/(hits+misses), 0 before any access.
func (c *LRU) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
