// Package wheel is a hierarchical timer wheel keyed on integer ticks —
// the pacing data plane's replacement for one runtime timer per stream.
//
// A paced stream's deadlines are perfectly regular: every chunk is due
// at a quantum boundary. The Go runtime's timer heap charges O(log n)
// per operation and wakes one goroutine per timer; with 100k streams
// that is 100k heap entries and a million wakeups per second at a 100ms
// quantum. The wheel exploits the regularity instead: a deadline is a
// tick number, arming is two array indexings and a list push, and one
// caller-owned clock (a single time.Ticker) advances the whole
// population, collecting every due timer in one batch.
//
// Layout: level 0 has 256 one-tick slots; levels 1–3 have 64 slots of
// 256, 16384 and 1048576 ticks respectively, spanning 2^26 ticks
// (~78 days at a 100ms quantum). A timer armed beyond the span parks in
// the outermost slot and re-cascades until its delta fits — arming is
// O(1), firing is exact. When the low bits of the clock wrap, the
// matching upper-level slot cascades down one level (the classic
// Linux-timer design), so each timer is touched at most levels-1 times
// before it fires.
//
// Concurrency: Arm and Cancel may be called from any goroutine; Advance
// and DrainAll must be called from a single driver goroutine. All state
// is guarded by one mutex — due timers are collected into the caller's
// scratch slice under the lock and fired by the caller after it is
// released, so firing code may freely re-Arm (allocation-free: the
// scratch is reused and Timer nodes are intrusive).
package wheel

import "sync"

// Tick geometry. Level 0 resolves single ticks; each higher level is
// 64× coarser.
const (
	l0Bits = 8
	l0Size = 1 << l0Bits
	l0Mask = l0Size - 1

	lBits = 6
	lSize = 1 << lBits
	lMask = lSize - 1

	hiLevels = 3

	// spanBits is the horizon the wheel resolves exactly: deltas of
	// [1, 2^spanBits) ticks. Farther deadlines clamp to the outermost
	// slot and re-cascade.
	spanBits = l0Bits + hiLevels*lBits
	span     = int64(1) << spanBits
)

// Timer is one schedulable deadline, embedded intrusively in the
// caller's per-item state. Data is set once at initialization and
// carried back on expiry; the zero Timer is ready to Arm. A Timer must
// not be armed on two wheels at once.
type Timer struct {
	// Data identifies the owner on expiry (set once, read-only after).
	Data any

	next, prev *Timer
	slot       *list
	when       int64
}

// When returns the timer's absolute deadline tick. Meaningful only
// while armed (or just collected by Advance, before any re-Arm).
func (t *Timer) When() int64 { return t.when }

// list is one slot's intrusive doubly-linked list.
type list struct{ head *Timer }

func (l *list) push(t *Timer) {
	t.prev = nil
	t.next = l.head
	if l.head != nil {
		l.head.prev = t
	}
	l.head = t
	t.slot = l
}

// unlink removes t from its slot. t.slot must be non-nil.
func unlink(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		t.slot.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev, t.slot = nil, nil, nil
}

// Wheel is a hierarchical timer wheel. The zero value is not usable;
// create with New.
type Wheel struct {
	mu      sync.Mutex
	current int64 // last tick fully advanced past
	armed   int

	l0 [l0Size]list
	hi [hiLevels][lSize]list
}

// New returns an empty wheel positioned at tick 0.
func New() *Wheel { return &Wheel{} }

// Current returns the wheel clock: the last tick passed to Advance.
func (w *Wheel) Current() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.current
}

// Len returns the number of armed timers.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.armed
}

// Arm schedules t to fire at absolute tick `when`, moving it if already
// armed. A deadline at or before the current tick is clamped to the
// next tick — a zero-delay Arm fires on the next Advance, never
// synchronously.
func (w *Wheel) Arm(t *Timer, when int64) {
	w.mu.Lock()
	if t.slot != nil {
		unlink(t)
		w.armed--
	}
	if when <= w.current {
		when = w.current + 1
	}
	t.when = when
	w.place(t, nil)
	w.armed++
	w.mu.Unlock()
}

// Cancel disarms t, reporting whether it was armed. A cancelled timer
// can be re-armed.
func (w *Wheel) Cancel(t *Timer) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.slot == nil {
		return false
	}
	unlink(t)
	w.armed--
	return true
}

// place files t by the delta between its deadline and the wheel clock.
// Called with w.mu held. During cascades a re-filed timer may already be
// due (delta ≤ 0); it is appended to *due instead of re-queued. Arm
// guarantees when > current, so it passes due == nil safely.
func (w *Wheel) place(t *Timer, due *[]*Timer) {
	d := t.when - w.current
	switch {
	case d <= 0:
		*due = append(*due, t)
	case d < 1<<l0Bits:
		w.l0[t.when&l0Mask].push(t)
	case d < 1<<(l0Bits+lBits):
		w.hi[0][(t.when>>l0Bits)&lMask].push(t)
	case d < 1<<(l0Bits+2*lBits):
		w.hi[1][(t.when>>(l0Bits+lBits))&lMask].push(t)
	case d < span:
		w.hi[2][(t.when>>(l0Bits+2*lBits))&lMask].push(t)
	default:
		// Beyond the horizon: park in the slot of the farthest exact
		// deadline; the cascade re-files it each rotation until the
		// remaining delta fits.
		far := w.current + span - 1
		w.hi[2][(far>>(l0Bits+2*lBits))&lMask].push(t)
	}
}

// cascade re-files every timer in the given upper-level slot one level
// down (or into due, if the deadline has arrived). Called with w.mu
// held.
func (w *Wheel) cascade(level, idx int, due *[]*Timer) {
	head := w.hi[level][idx].head
	w.hi[level][idx].head = nil
	for t := head; t != nil; {
		next := t.next
		t.next, t.prev, t.slot = nil, nil, nil
		w.place(t, due)
		t = next
	}
}

// Advance moves the wheel clock to tick `to`, appending every timer
// whose deadline has arrived to due (in no particular order) and
// returning the extended slice. Collected timers are disarmed; the
// caller fires them after Advance returns and may re-Arm from there.
// Pass a reused scratch slice to keep the steady state allocation-free.
// Advance must be called from a single driver goroutine.
func (w *Wheel) Advance(to int64, due []*Timer) []*Timer {
	w.mu.Lock()
	before := len(due)
	for w.current < to {
		w.current++
		c := w.current
		// When the low bits wrap, pull the next upper-level slot down —
		// and when that level's bits wrap too, the one above it.
		if c&l0Mask == 0 {
			w.cascade(0, int((c>>l0Bits)&lMask), &due)
			if (c>>l0Bits)&lMask == 0 {
				w.cascade(1, int((c>>(l0Bits+lBits))&lMask), &due)
				if (c>>(l0Bits+lBits))&lMask == 0 {
					w.cascade(2, int((c>>(l0Bits+2*lBits))&lMask), &due)
				}
			}
		}
		// Expire the current slot. Placement guarantees every entry here
		// has when == c: level-0 deltas are < 256, and slot index is
		// when mod 256.
		for t := w.l0[c&l0Mask].head; t != nil; {
			next := t.next
			t.next, t.prev, t.slot = nil, nil, nil
			due = append(due, t)
			t = next
		}
		w.l0[c&l0Mask].head = nil
	}
	w.armed -= len(due) - before
	w.mu.Unlock()
	return due
}

// DrainAll disarms every timer and appends them all to due — the
// shutdown sweep. Like Advance, it must be called from the driver
// goroutine (or after the driver has stopped).
func (w *Wheel) DrainAll(due []*Timer) []*Timer {
	w.mu.Lock()
	drain := func(l *list) {
		for t := l.head; t != nil; {
			next := t.next
			t.next, t.prev, t.slot = nil, nil, nil
			due = append(due, t)
			t = next
		}
		l.head = nil
	}
	for i := range w.l0 {
		drain(&w.l0[i])
	}
	for level := range w.hi {
		for i := range w.hi[level] {
			drain(&w.hi[level][i])
		}
	}
	w.armed = 0
	w.mu.Unlock()
	return due
}
