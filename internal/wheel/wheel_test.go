package wheel

import (
	"math/rand"
	"sync"
	"testing"
)

// fireAll advances to `to` one call and returns the Data values fired.
func fireAll(w *Wheel, to int64) []int {
	var out []int
	for _, t := range w.Advance(to, nil) {
		out = append(out, t.Data.(int))
	}
	return out
}

func TestArmFiresAtExactTick(t *testing.T) {
	w := New()
	tm := &Timer{Data: 1}
	w.Arm(tm, 5)
	if got := w.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if fired := fireAll(w, 4); len(fired) != 0 {
		t.Fatalf("fired %v before the deadline", fired)
	}
	if fired := fireAll(w, 5); len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("Advance(5) fired %v, want [1]", fired)
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len = %d after fire, want 0", got)
	}
	if got := w.Current(); got != 5 {
		t.Fatalf("Current = %d, want 5", got)
	}
}

// A deadline at or before the wheel clock clamps to the next tick: a
// zero-delay Arm fires on the next Advance, never synchronously and
// never lost.
func TestZeroDelayArmFiresNextTick(t *testing.T) {
	w := New()
	w.Advance(10, nil)
	for _, when := range []int64{10, 3, -7} {
		tm := &Timer{Data: int(when)}
		w.Arm(tm, when)
		if got := tm.When(); got != w.Current()+1 {
			t.Fatalf("Arm(%d): When = %d, want clamp to %d", when, got, w.Current()+1)
		}
		if fired := fireAll(w, w.Current()+1); len(fired) != 1 {
			t.Fatalf("Arm(%d): next tick fired %v, want exactly it", when, fired)
		}
	}
}

func TestCancelPreventsFire(t *testing.T) {
	w := New()
	tm := &Timer{Data: 1}
	w.Arm(tm, 3)
	if !w.Cancel(tm) {
		t.Fatal("Cancel of an armed timer reported false")
	}
	if w.Cancel(tm) {
		t.Fatal("second Cancel reported true")
	}
	if fired := fireAll(w, 10); len(fired) != 0 {
		t.Fatalf("cancelled timer fired: %v", fired)
	}
	// A cancelled timer is reusable.
	w.Arm(tm, 12)
	if fired := fireAll(w, 12); len(fired) != 1 {
		t.Fatalf("re-armed timer did not fire: %v", fired)
	}
}

func TestReArmMovesDeadline(t *testing.T) {
	w := New()
	tm := &Timer{Data: 1}
	w.Arm(tm, 5)
	w.Arm(tm, 9) // move, not duplicate
	if got := w.Len(); got != 1 {
		t.Fatalf("Len after re-arm = %d, want 1", got)
	}
	if fired := fireAll(w, 5); len(fired) != 0 {
		t.Fatalf("old deadline fired after re-arm: %v", fired)
	}
	if fired := fireAll(w, 9); len(fired) != 1 {
		t.Fatalf("moved deadline did not fire: %v", fired)
	}
}

// Deadlines on every level — level 0, one and two cascades deep, the
// outermost level, and beyond the 2^26-tick horizon (which parks and
// re-cascades) — all fire at exactly their tick. The beyond-horizon
// case is advanced in one big jump; the others step through each tick.
func TestCascadeFiresExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-tick advance")
	}
	deadlines := []int64{
		1, 255, // level 0
		256, 300, 16383, // level 1
		16384, 1 << 19, // level 2
		1 << 20, 1<<22 + 12345, // level 3
	}
	w := New()
	timers := make([]*Timer, len(deadlines))
	for i, when := range deadlines {
		timers[i] = &Timer{Data: i}
		w.Arm(timers[i], when)
	}
	fired := make(map[int]int64)
	var due []*Timer
	for tick := int64(1); tick <= 1<<22+12345; tick++ {
		due = w.Advance(tick, due[:0])
		for _, tm := range due {
			fired[tm.Data.(int)] = tick
		}
		if len(fired) == len(deadlines) {
			break
		}
		// Skip empty stretches to keep the test fast, but always land
		// on each deadline and the tick just before it.
		next := int64(1 << 40)
		for i, when := range deadlines {
			if _, done := fired[i]; !done && when > tick && when < next {
				next = when
			}
		}
		if next < 1<<40 && next-1 > tick {
			tick = next - 2 // loop ++ lands on next-1, then next
		}
	}
	for i, when := range deadlines {
		if fired[i] != when {
			t.Errorf("timer %d: fired at tick %d, want %d", i, fired[i], when)
		}
	}

	// Beyond the horizon: parks in the outermost slot, re-cascades, and
	// still fires at the exact tick under a single huge Advance.
	far := &Timer{Data: 99}
	w2 := New()
	w2.Arm(far, span+77)
	due = w2.Advance(span+76, due[:0])
	if len(due) != 0 {
		t.Fatalf("beyond-horizon timer fired early")
	}
	due = w2.Advance(span+77, due[:0])
	if len(due) != 1 || due[0].Data.(int) != 99 {
		t.Fatalf("beyond-horizon timer did not fire at its tick: %v", due)
	}
}

// One big Advance collects everything due in between, in one batch.
func TestBigJumpCollectsAllDue(t *testing.T) {
	w := New()
	const n = 1000
	for i := 0; i < n; i++ {
		w.Arm(&Timer{Data: i}, int64(1+i*7%5000))
	}
	due := w.Advance(5000, nil)
	if len(due) != n {
		t.Fatalf("Advance(5000) fired %d timers, want %d", len(due), n)
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len = %d after full drain, want 0", got)
	}
}

func TestDrainAll(t *testing.T) {
	w := New()
	for i := 0; i < 100; i++ {
		w.Arm(&Timer{Data: i}, int64(1+i*1009))
	}
	due := w.DrainAll(nil)
	if len(due) != 100 {
		t.Fatalf("DrainAll returned %d timers, want 100", len(due))
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len = %d after DrainAll, want 0", got)
	}
	if fired := fireAll(w, 1<<21); len(fired) != 0 {
		t.Fatalf("drained timers fired later: %d", len(fired))
	}
}

// Advance reuses the caller's scratch without allocating in steady
// state, and the armed count survives a non-empty scratch prefix.
func TestAdvanceScratchReuseAndCount(t *testing.T) {
	w := New()
	a, b := &Timer{Data: 1}, &Timer{Data: 2}
	w.Arm(a, 1)
	w.Arm(b, 2)
	scratch := make([]*Timer, 0, 8)
	scratch = w.Advance(1, scratch)
	if len(scratch) != 1 {
		t.Fatalf("first advance fired %d, want 1", len(scratch))
	}
	// Deliberately keep the fired entry in the scratch: the armed count
	// must only drop by what THIS call collected.
	scratch = w.Advance(2, scratch)
	if len(scratch) != 2 {
		t.Fatalf("cumulative scratch = %d, want 2", len(scratch))
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

// The concurrent contract: Arm/Cancel from many goroutines while one
// driver advances. Run under -race. Each goroutine owns its timers, so
// ownership transfers only through the wheel.
func TestConcurrentArmCancelAdvanceHammer(t *testing.T) {
	w := New()
	const (
		owners    = 8
		perOwner  = 64
		iters     = 2000
		horizonMx = 4096
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Driver: advance one tick at a time, discarding fired timers.
	var fired int
	wg.Add(1)
	go func() {
		defer wg.Done()
		due := make([]*Timer, 0, 256)
		tick := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tick++
			due = w.Advance(tick, due[:0])
			fired += len(due)
		}
	}()

	var owg sync.WaitGroup
	for o := 0; o < owners; o++ {
		owg.Add(1)
		go func(o int) {
			defer owg.Done()
			rng := rand.New(rand.NewSource(int64(o)))
			timers := make([]*Timer, perOwner)
			for i := range timers {
				timers[i] = &Timer{Data: o*perOwner + i}
			}
			for i := 0; i < iters; i++ {
				tm := timers[rng.Intn(perOwner)]
				if rng.Intn(4) == 0 {
					w.Cancel(tm)
				} else {
					w.Arm(tm, w.Current()+1+rng.Int63n(horizonMx))
				}
			}
		}(o)
	}
	owg.Wait()
	close(stop)
	wg.Wait()

	// Post-hammer sanity: Len matches a full drain.
	n := w.Len()
	if got := len(w.DrainAll(nil)); got != n {
		t.Fatalf("Len = %d but DrainAll returned %d", n, got)
	}
}

func BenchmarkArmAdvance(b *testing.B) {
	w := New()
	timers := make([]*Timer, 1024)
	for i := range timers {
		timers[i] = &Timer{Data: i}
		w.Arm(timers[i], int64(1+i%64))
	}
	due := make([]*Timer, 0, 1024)
	tick := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		due = w.Advance(tick, due[:0])
		for _, tm := range due {
			w.Arm(tm, tick+1+int64(tm.Data.(int)%64))
		}
	}
}

func BenchmarkArmCancel(b *testing.B) {
	w := New()
	tm := &Timer{Data: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Arm(tm, int64(i%4096)+w.Current()+1)
		w.Cancel(tm)
	}
}
