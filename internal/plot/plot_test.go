package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestChartRenderBasics(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "x", YLabel: "y"}
	c.Add("linear", []Point{{1, 1}, {2, 2}, {3, 3}})
	out := c.Render()
	for _, want := range []string{"demo", "linear", "*", "x", "y"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %q", out)
	}
	// A log chart whose every point is non-positive is also empty.
	c2 := &Chart{LogY: true}
	c2.Add("bad", []Point{{1, 0}, {2, -5}})
	if !strings.Contains(c2.Render(), "(no data)") {
		t.Error("log chart with non-positive values should be empty")
	}
}

func TestChartLogAxes(t *testing.T) {
	c := &Chart{LogX: true, LogY: true, Width: 40, Height: 10}
	c.Add("s", []Point{{1, 1}, {10, 10}, {100, 100}, {1000, 1000}})
	out := c.Render()
	lines := strings.Split(out, "\n")
	// With log-log axes the power series is a straight diagonal. Scanning
	// rows top (largest Y) to bottom, marker columns strictly decrease.
	lastCol := 1 << 30
	count := 0
	for _, line := range lines {
		idx := strings.IndexByte(line, '*')
		if idx < 0 || !strings.Contains(line, "|") {
			continue
		}
		count++
		if idx >= lastCol {
			t.Errorf("log-log diagonal violated at column %d after %d", idx, lastCol)
		}
		lastCol = idx
	}
	if count != 4 {
		t.Errorf("marker rows = %d, want 4", count)
	}
}

func TestChartMultipleSeriesDistinctMarkers(t *testing.T) {
	c := &Chart{Width: 30, Height: 8}
	c.Add("a", []Point{{0, 0}, {1, 1}})
	c.Add("b", []Point{{0, 1}, {1, 0}})
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{}
	c.Add("flat", []Point{{1, 5}, {2, 5}})
	out := c.Render()
	if strings.Contains(out, "(no data)") {
		t.Error("constant series should still render")
	}
}

// Property: Render never panics and always terminates for arbitrary data.
func TestChartRenderTotalProperty(t *testing.T) {
	f := func(xs, ys []int16, logx, logy bool) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Point{float64(xs[i]), float64(ys[i])}
		}
		c := &Chart{LogX: logx, LogY: logy, Width: 20, Height: 6}
		c.Add("s", pts)
		return len(c.Render()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContourRender(t *testing.T) {
	c := &Contour{
		Title:      "regions",
		Thresholds: []float64{25, 50, 75},
		Glyphs:     []byte(" .+#"),
		Cells: [][]float64{
			{10, 30, 60, 90},
			{20, 40, 70, 99},
		},
		XTicks: []string{"1", "2", "3", "4"},
		YTicks: []string{"hi", "lo"},
		XLabel: "ratio",
		YLabel: "bitrate",
	}
	out := c.Render()
	for _, want := range []string{"regions", "#", "+", ".", "hi", "lo", "ratio", "bitrate", "≥ 75"} {
		if !strings.Contains(out, want) {
			t.Errorf("contour missing %q:\n%s", want, out)
		}
	}
}

func TestContourEmptyAndDefaults(t *testing.T) {
	c := &Contour{}
	if !strings.Contains(c.Render(), "(no data)") {
		t.Error("empty contour should say so")
	}
	// Mismatched glyphs fall back to defaults without panicking.
	c2 := &Contour{Thresholds: []float64{50}, Cells: [][]float64{{10, 60}}}
	if out := c2.Render(); out == "" {
		t.Error("default-glyph contour empty")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Table 1", Headers: []string{"Year", "Device", "GB"}}
	tb.AddRow("2002", "DRAM", "0.5")
	tb.AddRow("2007", "MEMS", "10")
	out := tb.Render()
	if !strings.Contains(out, "Table 1") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines align to the same width.
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Errorf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[3], "| 2002 | DRAM   | 0.5 |") {
		t.Errorf("row formatting: %q", lines[3])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("1", "2", "3") // extra cell widens the table
	tb.AddRow("4")
	out := tb.Render()
	if !strings.Contains(out, "3") || !strings.Contains(out, "4") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	tb := &Table{Title: "t"}
	if out := tb.Render(); !strings.Contains(out, "t") {
		t.Errorf("empty table lost title: %q", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]Series{
		{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
		{Name: "b,c", Points: []Point{{2, 200}}},
	})
	want := "x,a,b;c\n1,10,\n2,20,200\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestCSVEmpty(t *testing.T) {
	if out := CSV(nil); out != "x\n" {
		t.Errorf("empty CSV = %q", out)
	}
}

func TestFmtAxis(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1500, "1.5k"},
		{2e6, "2M"},
		{3e9, "3G"},
		{4e12, "4T"},
		{0.5, "0.5"},
		{0.001, "0.001"},
	}
	for _, tc := range tests {
		if got := fmtAxis(tc.v); got != tc.want {
			t.Errorf("fmtAxis(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestBarChartRender(t *testing.T) {
	b := &BarChart{
		Title:  "Fig 9 style",
		Series: []string{"w/o cache", "replicated", "striped"},
		Groups: []BarGroup{
			{Label: "1:99", Values: []float64{6717, 13999, 13999}},
			{Label: "50:50", Values: []float64{6717, 6150, 6150}},
		},
		Width: 30,
	}
	out := b.Render()
	for _, want := range []string{"Fig 9 style", "1:99", "50:50", "replicated", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar chart missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	countBars := func(s string) int { return strings.Count(s, "█") }
	var maxLine, woLine int
	for _, l := range lines {
		if strings.Contains(l, "replicated") && strings.Contains(l, "14k") {
			maxLine = countBars(l)
		}
		if strings.Contains(l, "w/o cache") && maxLine == 0 {
			woLine = countBars(l)
		}
	}
	if maxLine == 0 {
		t.Fatalf("peak bar not found:\n%s", out)
	}
	if woLine >= maxLine {
		t.Errorf("baseline bar (%d) not shorter than peak (%d)", woLine, maxLine)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	empty := &BarChart{Title: "e"}
	if !strings.Contains(empty.Render(), "(no data)") {
		t.Error("empty chart should say so")
	}
	zero := &BarChart{Series: []string{"a"}, Groups: []BarGroup{{Label: "g", Values: []float64{0}}}}
	if out := zero.Render(); !strings.Contains(out, "|") {
		t.Errorf("zero-value chart broken: %q", out)
	}
	// Tiny positive values still show one cell.
	tiny := &BarChart{Series: []string{"a", "b"}, Groups: []BarGroup{{Label: "g", Values: []float64{1000, 1}}}}
	out := tiny.Render()
	if strings.Count(out, "█") < 2 {
		t.Errorf("tiny bar dropped:\n%s", out)
	}
}
