// Package plot renders the experiment results as terminal graphics: ASCII
// line charts with optional logarithmic axes (Figures 2, 6, 8), contour
// region maps (Figure 7b), grouped-bar summaries (Figure 9) and aligned
// tables (Tables 1–3), plus CSV export for external tooling. It stands in
// for the paper's gnuplot pipeline.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named line on a chart.
type Series struct {
	Name   string
	Points []Point
}

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	Series []Series
}

// markers distinguish series within the plot area.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Add appends a series.
func (c *Chart) Add(name string, pts []Point) {
	c.Series = append(c.Series, Series{Name: name, Points: pts})
}

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// transform maps a value onto an axis, honoring log scaling.
func transform(v float64, log bool) (float64, bool) {
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.dims()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for _, p := range s.Points {
			x, okx := transform(p.X, c.LogX)
			y, oky := transform(p.Y, c.LogY)
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			x, okx := transform(p.X, c.LogX)
			y, oky := transform(p.Y, c.LogY)
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = mark
			}
		}
	}

	inv := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	yTop, yBot := inv(maxY, c.LogY), inv(minY, c.LogY)
	label := func(v float64) string { return fmtAxis(v) }

	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for i, row := range grid {
		prefix := strings.Repeat(" ", 10)
		switch i {
		case 0:
			prefix = fmt.Sprintf("%9s ", label(yTop))
		case h - 1:
			prefix = fmt.Sprintf("%9s ", label(yBot))
		case h / 2:
			prefix = fmt.Sprintf("%9s ", label(inv((minY+maxY)/2, c.LogY)))
		}
		fmt.Fprintf(&b, "%s|%s\n", prefix, string(row))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", w))
	xLeft, xRight := inv(minX, c.LogX), inv(maxX, c.LogX)
	gap := w - len(label(xLeft)) - len(label(xRight))
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s%s%s%s\n", strings.Repeat(" ", 10),
		label(xLeft), strings.Repeat(" ", gap), label(xRight))
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat(" ", 10), c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// fmtAxis renders an axis value compactly (1.2k, 3.4M, 10G).
func fmtAxis(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e12:
		return fmt.Sprintf("%.3gT", v/1e12)
	case a >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case a == 0:
		return "0"
	case a < 0.01:
		return fmt.Sprintf("%.2g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Contour renders a 2D scalar field as banded regions, like the paper's
// Figure 7(b): each cell is drawn with the glyph of the highest threshold
// it clears.
type Contour struct {
	Title      string
	XLabel     string
	YLabel     string
	XTicks     []string // one per column
	YTicks     []string // one per row (top to bottom)
	Thresholds []float64
	Glyphs     []byte // len(Thresholds)+1 glyphs, lowest band first
	Cells      [][]float64
}

// Render draws the contour map.
func (c *Contour) Render() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.Cells) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	glyphs := c.Glyphs
	if len(glyphs) != len(c.Thresholds)+1 {
		glyphs = []byte(" .:=#%@&")[:len(c.Thresholds)+1]
	}
	tickW := 0
	for _, t := range c.YTicks {
		if len(t) > tickW {
			tickW = len(t)
		}
	}
	for i, row := range c.Cells {
		tick := ""
		if i < len(c.YTicks) {
			tick = c.YTicks[i]
		}
		fmt.Fprintf(&b, "%*s |", tickW, tick)
		for _, v := range row {
			g := glyphs[0]
			for ti, th := range c.Thresholds {
				if v >= th {
					g = glyphs[ti+1]
				}
			}
			b.WriteByte(g)
			b.WriteByte(g) // double width for aspect ratio
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +%s\n", tickW, "", strings.Repeat("-", 2*len(c.Cells[0])))
	if len(c.XTicks) > 0 {
		fmt.Fprintf(&b, "%*s  %s\n", tickW, "", strings.Join(c.XTicks, " "))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s\n", tickW, "", c.XLabel)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%*s  y: %s\n", tickW, "", c.YLabel)
	}
	for i, th := range c.Thresholds {
		fmt.Fprintf(&b, "  %c ≥ %g\n", glyphs[i+1], th)
	}
	return b.String()
}

// Table renders aligned text tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return b.String()
	}
	width := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", width[i], cell)
		}
		b.WriteString("|\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		for i := 0; i < cols; i++ {
			fmt.Fprintf(&b, "|%s", strings.Repeat("-", width[i]+2))
		}
		b.WriteString("|\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders series as a wide CSV: the union of X values in the first
// column, one column per series (empty cells where a series lacks that X).
func CSV(series []Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%g", p.Y)
					break
				}
			}
			fmt.Fprintf(&b, ",%s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
