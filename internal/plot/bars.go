package plot

import (
	"fmt"
	"math"
	"strings"
)

// BarGroup is one cluster of bars sharing an X label (e.g. one popularity
// distribution in the paper's Figure 9).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart renders grouped horizontal bars — the terminal-friendly
// equivalent of the paper's clustered vertical bar figures.
type BarChart struct {
	Title  string
	Series []string // one name per bar within a group
	Groups []BarGroup
	Width  int // bar area width in characters (default 50)
}

// Render draws the chart.
func (b *BarChart) Render() string {
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	if len(b.Groups) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	width := b.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, g := range b.Groups {
		for _, v := range g.Values {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	labelW := 0
	for _, g := range b.Groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	nameW := 0
	for _, s := range b.Series {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	for gi, g := range b.Groups {
		if gi > 0 {
			sb.WriteByte('\n')
		}
		for vi, v := range g.Values {
			label := ""
			if vi == 0 {
				label = g.Label
			}
			name := ""
			if vi < len(b.Series) {
				name = b.Series[vi]
			}
			bars := int(math.Round(v / max * float64(width)))
			if v > 0 && bars == 0 {
				bars = 1
			}
			if bars < 0 {
				bars = 0
			}
			fmt.Fprintf(&sb, "%-*s %-*s |%s %s\n",
				labelW, label, nameW, name,
				strings.Repeat("█", bars), fmtAxis(v))
		}
	}
	return sb.String()
}
