package serve

import (
	"bufio"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/units"
)

// testConfig provisions the FutureDisk admission spec with fast test
// deadlines. Individual tests override fields before calling New.
func testConfig(dram units.Bytes) Config {
	p := disk.FutureDisk()
	return Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: dram,
		},
		DefaultRate:  100 * units.KBPS,
		Limit:        64 * units.KB,
		ReadTimeout:  100 * time.Millisecond,
		WriteTimeout: 100 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Quantum:      10 * time.Millisecond,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// runHandle drives one connection through the handler on a pipe and
// returns the client end plus a channel that closes when the handler
// (and its releases) have unwound.
func runHandle(t *testing.T, s *Server) (net.Conn, <-chan struct{}) {
	t.Helper()
	client, srv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer srv.Close()
		s.handle(srv)
	}()
	t.Cleanup(func() {
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("handler did not unwind")
		}
	})
	return client, done
}

func waitDone(t *testing.T, done <-chan struct{}, within time.Duration, what string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(within):
		t.Fatalf("%s: handler still running after %v", what, within)
	}
}

// A client that connects and never sends a request line is reaped by the
// read deadline instead of pinning a goroutine forever.
func TestReadDeadlineReapsSilentClient(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	_, done := runHandle(t, s)
	waitDone(t, done, 2*time.Second, "silent client")
	if got := s.metrics.Reaped.Load(); got != 1 {
		t.Errorf("Reaped = %d, want 1", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d, want 0", got)
	}
}

// A slowloris client that trickles a partial line and stalls hits the
// same reaper.
func TestReadDeadlineReapsPartialLine(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("PLA")); err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, 2*time.Second, "partial line")
	if got := s.metrics.Reaped.Load(); got != 1 {
		t.Errorf("Reaped = %d, want 1", got)
	}
}

// A request "line" that never terminates within maxRequestLine bytes is
// cut off by the size limit, not buffered without bound.
func TestOversizeRequestLineReaped(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	client, done := runHandle(t, s)
	go client.Write([]byte(strings.Repeat("X", 4*maxRequestLine))) // blocks on the pipe; handler stops at the limit
	waitDone(t, done, 2*time.Second, "oversize line")
	if got := s.metrics.Reaped.Load(); got != 1 {
		t.Errorf("Reaped = %d, want 1", got)
	}
}

// Regression for the Reaped miscount: a client that writes a partial
// request line and disconnects used to be counted as a slowloris reap.
// The server never timed anything out — that is an abort.
func TestPartialLineDisconnectCountsAborted(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("PLA")); err != nil {
		t.Fatal(err)
	}
	client.Close() // vanish mid-request-line
	waitDone(t, done, 2*time.Second, "partial line disconnect")
	if got := s.metrics.Aborted.Load(); got != 1 {
		t.Errorf("Aborted = %d, want 1", got)
	}
	if got := s.metrics.Reaped.Load(); got != 0 {
		t.Errorf("Reaped = %d, want 0 (no deadline fired)", got)
	}
}

// A clean connect-and-close with no bytes sent counts under neither
// Reaped nor Aborted: no request was ever started (health probes must
// not pollute the outcome counters).
func TestSilentCleanCloseUncounted(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	client, done := runHandle(t, s)
	client.Close()
	waitDone(t, done, 2*time.Second, "clean close")
	if got := s.metrics.Reaped.Load(); got != 0 {
		t.Errorf("Reaped = %d, want 0", got)
	}
	if got := s.metrics.Aborted.Load(); got != 0 {
		t.Errorf("Aborted = %d, want 0", got)
	}
}

// Regression for the Evicted miscount: a client that vanishes before the
// "OK streaming" banner is written used to count as an eviction even
// though no paced chunk was ever sent. It aborts; the slot still comes
// back.
func TestBannerWriteFailureCountsAborted(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	client.Close() // gone before reading the banner
	waitDone(t, done, 2*time.Second, "banner write failure")
	if got := s.metrics.Aborted.Load(); got != 1 {
		t.Errorf("Aborted = %d, want 1", got)
	}
	if got := s.metrics.Evicted.Load(); got != 0 {
		t.Errorf("Evicted = %d, want 0 (server never killed anything)", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after abort, want 0", got)
	}
	if got := s.metrics.ActiveStreams.Load(); got != 0 {
		t.Errorf("ActiveStreams = %d after abort, want 0", got)
	}
}

// A client that disconnects mid-stream (read some chunks, then gone) is
// an abort, not an eviction: Evicted stays strictly "the server killed
// it" (write deadline or drain/stop force-close).
func TestMidStreamDisconnectCountsAborted(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 0 // unlimited: the stream ends only when the client goes away
	s := newTestServer(t, cfg)
	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(client)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q, %v", line, err)
	}
	buf := make([]byte, 4096)
	if _, err := r.Read(buf); err != nil { // at least one paced chunk arrived
		t.Fatal(err)
	}
	client.Close() // vanish mid-stream
	waitDone(t, done, 2*time.Second, "mid-stream disconnect")
	if got := s.metrics.Aborted.Load(); got != 1 {
		t.Errorf("Aborted = %d, want 1", got)
	}
	if got := s.metrics.Evicted.Load(); got != 0 {
		t.Errorf("Evicted = %d, want 0", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after abort, want 0", got)
	}
}

// The eviction guarantee: a client that stops reading mid-stream loses
// its connection within the write deadline and its admission slot is
// returned — stalled clients cannot pin Theorem 1 capacity.
func TestStalledReaderEvictedAndSlotReleased(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 0 // unlimited: only eviction can end the stream
	s := newTestServer(t, cfg)
	client, done := runHandle(t, s)

	if _, err := client.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	if got := s.Admitted(); got != 1 {
		t.Fatalf("Admitted = %d mid-stream, want 1", got)
	}

	// Stop reading entirely. The pipe is unbuffered, so the next chunk
	// write blocks until the write deadline evicts us.
	start := time.Now()
	waitDone(t, done, 2*time.Second, "stalled reader")
	if elapsed := time.Since(start); elapsed > 1*time.Second {
		t.Errorf("eviction took %v, want within ~write deadline (100ms)", elapsed)
	}
	if got := s.metrics.Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d, want 1", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after eviction, want 0", got)
	}
	if got := s.metrics.ActiveStreams.Load(); got != 0 {
		t.Errorf("ActiveStreams = %d after eviction, want 0", got)
	}
}

// Regression for the sub-quantum rate bug: at 5 B/s a 100ms quantum owes
// 0.5 bytes, which int truncation turned into a zero-length chunk — the
// stream never progressed and held its slot forever. The pacer carries
// fractional bytes, so the stream completes and releases.
func TestSubQuantumRateStreamCompletes(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 3 * units.B
	s := newTestServer(t, cfg)
	client, done := runHandle(t, s)

	if _, err := client.Write([]byte("PLAY 5B\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(client)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, 5*time.Second, "sub-quantum stream")
	if len(body) != 3 {
		t.Errorf("streamed %d bytes at 5B/s, want 3", len(body))
	}
	if got := s.metrics.Completed.Load(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after completion, want 0", got)
	}
}

// The BUSY path for admission-control refusal performs no Release: a
// refused PLAY must leave the admitted population exactly as it was.
func TestAdmissionBusyPerformsNoRelease(t *testing.T) {
	cfg := testConfig(1 * units.MB) // tiny DRAM: a handful of heavy streams
	s := newTestServer(t, cfg)
	full := 0
	for {
		ok, err := s.cfg.Admission.TryAdmit(10 * units.MBPS)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		full++
	}
	if full == 0 {
		t.Fatal("expected a positive admission capacity")
	}

	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("PLAY 10MB\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "BUSY") {
		t.Fatalf("over-capacity response = %q", line)
	}
	waitDone(t, done, 2*time.Second, "admission busy")
	if got := s.Admitted(); got != full {
		t.Errorf("Admitted = %d after BUSY, want %d (refusal must not release)", got, full)
	}
	if got := s.metrics.AdmissionBusy.Load(); got != 1 {
		t.Errorf("AdmissionBusy = %d, want 1", got)
	}
}

func TestStatAndMetricsCommands(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("STAT\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK admitted=0 capacity=") {
		t.Fatalf("STAT response = %q", line)
	}
	waitDone(t, done, 2*time.Second, "STAT")

	client2, done2 := runHandle(t, s)
	if _, err := client2.Write([]byte("METRICS\n")); err != nil {
		t.Fatal(err)
	}
	line, err = bufio.NewReader(client2).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"accepted=", "sheds=", "reaped=", "aborted=", "admitted=", "evicted=", "bytes_out=", "lag_samples=0"} {
		if !strings.Contains(line, key) {
			t.Errorf("METRICS response %q missing %q", line, key)
		}
	}
	// No streams have run: the lag quantile keys must be absent, not 0.000.
	if strings.Contains(line, "lag_p95_ms=") {
		t.Errorf("METRICS response %q renders lag quantiles with lag_samples=0", line)
	}
	waitDone(t, done2, 2*time.Second, "METRICS")
}

func TestBadRequests(t *testing.T) {
	for _, req := range []string{"PLAY fast", "PLAY -3KB", "DELETE everything", "   "} {
		s := newTestServer(t, testConfig(1*units.GB))
		client, done := runHandle(t, s)
		if _, err := client.Write([]byte(req + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(client).ReadString('\n')
		if err != nil {
			t.Fatalf("%q: %v", req, err)
		}
		if !strings.HasPrefix(line, "ERR") {
			t.Errorf("request %q: response %q, want ERR", req, line)
		}
		waitDone(t, done, 2*time.Second, req)
		if got := s.metrics.BadRequests.Load(); got != 1 {
			t.Errorf("request %q: BadRequests = %d, want 1", req, got)
		}
	}
}

// --- Serve-level lifecycle tests over real TCP ---

// startServe launches Serve on a loopback listener and returns the dial
// address, the cancel that triggers the drain, and the Serve error channel.
func startServe(t *testing.T, s *Server) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		errc <- s.Serve(ctx, ln)
		close(done)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after cancel")
		}
	})
	return ln.Addr().String(), cancel, errc
}

// The graceful-drain guarantee: cancelling the serve context (what
// SIGINT/SIGTERM trigger in cmd/memserve) stops accepting, force-closes
// in-flight streams at the drain deadline, releases every admission
// slot, and returns nil.
func TestDrainReleasesAllSlots(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 0 // unlimited: streams end only by eviction or drain
	cfg.DrainTimeout = 300 * time.Millisecond
	s := newTestServer(t, cfg)
	addr, cancel, errc := startServe(t, s)

	// Three live streams, each with a client that keeps reading.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("PLAY 100KB\n")); err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(line, "OK streaming") {
			t.Fatalf("PLAY response = %q", line)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			io.Copy(io.Discard, r) // keep consuming until the server closes us
		}()
	}
	waitFor(t, time.Second, func() bool { return s.Admitted() == 3 })

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within the drain window")
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after drain, want 0", got)
	}
	if got := s.metrics.ActiveStreams.Load(); got != 0 {
		t.Errorf("ActiveStreams = %d after drain, want 0", got)
	}
	if got := s.activeConns(); got != 0 {
		t.Errorf("%d connections still tracked after drain", got)
	}
	wg.Wait() // all clients saw the server close their stream
	// New connections are refused once the listener is down.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Error("dial succeeded after drain; listener should be closed")
	}
}

// A drain lets short in-flight streams finish: the stream completes its
// byte budget well before the drain deadline and counts as Completed,
// not Evicted.
func TestDrainLetsInFlightStreamsFinish(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 10 * units.KB // ~100ms at 100KB/s with 10ms quanta
	cfg.DrainTimeout = 5 * time.Second
	s := newTestServer(t, cfg)
	addr, cancel, errc := startServe(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel() // drain begins while the stream is in flight

	n, _ := io.Copy(io.Discard, r)
	if n < int64(cfg.Limit) {
		t.Errorf("drained stream delivered %d bytes, want ≥ %v", n, cfg.Limit)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Serve did not return before the drain deadline despite streams finishing")
	}
	if got := s.metrics.Completed.Load(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
	if got := s.metrics.Evicted.Load(); got != 0 {
		t.Errorf("Evicted = %d, want 0", got)
	}
}

// The max-connections semaphore sheds excess connections with a fast
// BUSY and no admission Release; the slot frees once the occupant leaves.
func TestMaxConnsShedsWithoutRelease(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.MaxConns = 1
	cfg.ReadTimeout = 2 * time.Second
	s := newTestServer(t, cfg)
	addr, _, _ := startServe(t, s)

	// Occupy the single slot with a connection that never speaks.
	occupant, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer occupant.Close()
	waitFor(t, time.Second, func() bool { return s.metrics.Accepted.Load() == 1 })

	shedConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer shedConn.Close()
	line, err := bufio.NewReader(shedConn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "BUSY") {
		t.Fatalf("over-cap response = %q, want BUSY", line)
	}
	if got := s.metrics.Sheds.Load(); got != 1 {
		t.Errorf("Sheds = %d, want 1", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after shed, want 0 (shed must not touch admission)", got)
	}

	// Free the slot and verify the semaphore was not double-released or
	// leaked: the next connection is served normally.
	occupant.Close()
	waitFor(t, 5*time.Second, func() bool {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return false
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("STAT\n")); err != nil {
			return false
		}
		conn.SetReadDeadline(time.Now().Add(time.Second))
		resp, err := bufio.NewReader(conn).ReadString('\n')
		return err == nil && strings.HasPrefix(resp, "OK")
	})
}

func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", within)
}
