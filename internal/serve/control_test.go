package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memstream/internal/metrics"
	"memstream/internal/units"
)

// dialPlay starts one admitted stream against a Serve-run server and
// returns its reader; the caller keeps the conn open for the test body.
func dialPlay(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	return conn, r
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", path, err)
	}
}

func TestControlStatusAndMetricsDocuments(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 0
	s := newTestServer(t, cfg)
	addr, _, _ := startServe(t, s)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	_, r1 := dialPlay(t, addr)
	go io.Copy(io.Discard, r1)
	_, r2 := dialPlay(t, addr)
	go io.Copy(io.Discard, r2)
	waitFor(t, 2*time.Second, func() bool { return s.Admitted() == 2 })

	var st metrics.Status
	getJSON(t, ts, "/status", &st)
	if st.Server != "memserve" || st.State != "serving" {
		t.Errorf("status = %+v, want serving memserve", st)
	}
	if st.Admitted != 2 || st.ActiveStreams != 2 {
		t.Errorf("status admitted=%d active=%d, want 2/2", st.Admitted, st.ActiveStreams)
	}
	if st.Capacity <= 0 || st.AggregateBps != 2*100e3 {
		t.Errorf("status capacity=%d aggregate=%v, want >0 and 200000", st.Capacity, st.AggregateBps)
	}

	// Let at least one paced quantum land so lag samples and bytes exist.
	waitFor(t, 2*time.Second, func() bool { return s.metrics.lagSamples() > 0 })

	var doc metrics.Document
	getJSON(t, ts, "/metrics", &doc)
	if doc.Counters["admitted_total"] != 2 {
		t.Errorf("admitted_total = %d, want 2", doc.Counters["admitted_total"])
	}
	if doc.Gauges["active_streams"] != 2 {
		t.Errorf("active_streams gauge = %d, want 2", doc.Gauges["active_streams"])
	}
	if len(doc.Streams) != 2 {
		t.Fatalf("streams = %+v, want 2 entries", doc.Streams)
	}
	if doc.Streams[0].ID >= doc.Streams[1].ID {
		t.Errorf("streams not ordered by id: %+v", doc.Streams)
	}
	for _, st := range doc.Streams {
		if st.RateBps != 100e3 {
			t.Errorf("stream %d rate = %v, want 100000", st.ID, st.RateBps)
		}
	}
	if doc.Lag.Count == 0 {
		t.Error("lag histogram empty after paced quanta")
	}
	if len(doc.Tiers) != 2 || doc.Tiers[0].Name != "dram" || doc.Tiers[1].Name != "disk" {
		t.Fatalf("tiers = %+v, want [dram disk]", doc.Tiers)
	}
	if doc.Tiers[1].AggregateBps != 2*100e3 || doc.Tiers[1].Utilization <= 0 {
		t.Errorf("disk tier = %+v, want aggregate 200000 and positive utilization", doc.Tiers[1])
	}
	if doc.Tiers[0].UsedBytes <= 0 {
		t.Errorf("dram tier = %+v, want positive planned use with admitted streams", doc.Tiers[0])
	}
}

func TestControlStreamStop(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 0
	s := newTestServer(t, cfg)
	addr, _, _ := startServe(t, s)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	_, r := dialPlay(t, addr)
	copied := make(chan struct{})
	go func() { io.Copy(io.Discard, r); close(copied) }()
	waitFor(t, 2*time.Second, func() bool { return s.Admitted() == 1 })

	var doc metrics.Document
	getJSON(t, ts, "/metrics", &doc)
	if len(doc.Streams) != 1 {
		t.Fatalf("streams = %+v, want 1", doc.Streams)
	}
	id := doc.Streams[0].ID

	resp, err := ts.Client().Post(fmt.Sprintf("%s/streams/%d/stop", ts.URL, id), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stop = %d, want 200", resp.StatusCode)
	}

	// The client sees its stream end, the slot returns, and the kill
	// counts as an eviction (server-initiated force-close).
	select {
	case <-copied:
	case <-time.After(2 * time.Second):
		t.Fatal("client still streaming after control-plane stop")
	}
	waitFor(t, 2*time.Second, func() bool { return s.Admitted() == 0 })
	if got := s.metrics.Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d after stop, want 1", got)
	}
	if got := s.metrics.Aborted.Load(); got != 0 {
		t.Errorf("Aborted = %d after stop, want 0", got)
	}

	// Stopping a dead id is a 404.
	resp, err = ts.Client().Post(fmt.Sprintf("%s/streams/%d/stop", ts.URL, id), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stop dead id = %d, want 404", resp.StatusCode)
	}
}

func TestControlDrainTrigger(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Limit = 0
	cfg.DrainTimeout = 300 * time.Millisecond
	s := newTestServer(t, cfg)
	addr, _, errc := startServe(t, s)
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	_, r := dialPlay(t, addr)
	go io.Copy(io.Discard, r)
	waitFor(t, 2*time.Second, func() bool { return s.Admitted() == 1 })

	resp, err := ts.Client().Post(ts.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain = %d, want 202", resp.StatusCode)
	}

	// Serve returns nil exactly as with a context cancel, slots released.
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after control-plane drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after POST /drain")
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after drain, want 0", got)
	}
	var st metrics.Status
	getJSON(t, ts, "/status", &st)
	if st.State != "draining" {
		t.Errorf("state = %q after drain, want draining", st.State)
	}
}

// The satellite race test: N goroutines hammer the collector (lag
// histogram + sharded bytes counter) while GET /metrics snapshots
// concurrently. Run under -race in CI; the decoded documents must be
// valid JSON with internally consistent histograms every time.
func TestControlMetricsUnderConcurrentLoad(t *testing.T) {
	s := newTestServer(t, testConfig(1*units.GB))
	ts := httptest.NewServer(s.ControlHandler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.metrics.BytesOut.Handle()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					s.metrics.ObserveLag(float64(i%50) * 1e-4)
					h.Add(1024)
					s.metrics.Completed.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		var doc metrics.Document
		getJSON(t, ts, "/metrics", &doc)
		var bucketSum uint64 = doc.Lag.Overflow
		for _, b := range doc.Lag.Buckets {
			bucketSum += b.Count
		}
		if bucketSum != doc.Lag.Count {
			t.Fatalf("histogram count %d != bucket sum %d", doc.Lag.Count, bucketSum)
		}
		if doc.Lag.Count > 0 {
			if _, ok := doc.Lag.Quantiles["p95_ms"]; !ok {
				t.Fatal("histogram has samples but no quantiles")
			}
		}
	}
	close(stop)
	wg.Wait()
}
