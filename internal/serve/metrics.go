package serve

import (
	"fmt"
	"strings"
	"sync/atomic"

	"memstream/internal/metrics"
)

// Metrics is the supervisor's observability surface: monotonic counters
// for every connection outcome plus a pacing-lag histogram. Everything on
// the streaming path is lock-free: the low-rate outcome counters are
// plain atomics, the per-chunk BytesOut counter is sharded per stream
// (metrics.Counter), and each lag sample is one atomic bucket increment
// (metrics.Histogram) — no mutex anywhere, replacing the previous
// sync.Mutex-guarded sampling reservoir that every stream contended on.
//
// Connection outcomes are disjoint by design:
//
//   - Reaped: the server timed out a request line (read deadline) or cut
//     an unterminated line at maxRequestLine — hostile-idle clients.
//   - Aborted: the client vanished of its own accord — disconnected
//     mid-request-line, before the streaming banner, or mid-stream.
//   - Evicted: the server killed an admitted stream — a stalled reader
//     hit the write deadline, or drain/control-plane force-closed it.
//
// Earlier versions cross-counted these (a partial-line disconnect counted
// as a reap; a failed banner write counted as an eviction), which made
// the counters useless for telling hostile clients from flaky ones.
type Metrics struct {
	Accepted      atomic.Uint64   // connections admitted past the conn semaphore
	Sheds         atomic.Uint64   // connections shed BUSY at the max-conns cap
	Reaped        atomic.Uint64   // request lines reaped: read-deadline timeout or maxRequestLine overflow
	Aborted       atomic.Uint64   // clients that disconnected on their own (mid-line, pre-banner, or mid-stream)
	BadRequests   atomic.Uint64   // malformed or unknown commands
	AdmittedTotal atomic.Uint64   // PLAY requests admitted by Theorem 1
	AdmissionBusy atomic.Uint64   // PLAY requests refused by Theorem 1
	Completed     atomic.Uint64   // streams that delivered their full byte budget
	Evicted       atomic.Uint64   // streams the server killed: write deadline or drain/stop force-close
	BytesOut      metrics.Counter // stream payload bytes written (sharded; one handle per stream)

	// Wheel-plane instrumentation (all zero in goroutine mode):
	// WheelTicks counts wheel advances (quanta the tick loop settled,
	// including catch-up after an overrun), WheelFires counts due
	// streams drained — fires/ticks is the batch factor, and fires per
	// second is the wakeup rate one ticker replaces.
	WheelTicks atomic.Uint64
	WheelFires atomic.Uint64

	ActiveStreams atomic.Int64  // gauge: streams currently holding a slot
	WheelStreams  metrics.Gauge // gauge: streams parked on (or being served by) the wheel

	Lag metrics.Histogram // pacing lag per quantum, seconds
}

func newMetrics() *Metrics { return &Metrics{} }

// ObserveLag records one pacing-lag sample (seconds a chunk completed
// after its quantum boundary). Lock-free and allocation-free.
func (m *Metrics) ObserveLag(sec float64) { m.Lag.Observe(sec) }

// LagQuantile returns the q-quantile of the pacing-lag histogram in
// seconds; ok is false when no lag has been observed yet.
func (m *Metrics) LagQuantile(q float64) (float64, bool) { return m.Lag.Quantile(q) }

// lagSamples reports how many lag observations were made.
func (m *Metrics) lagSamples() uint64 { return m.Lag.N() }

// counterMap renders every outcome counter under its wire name — the one
// schema shared by the METRICS text line and the HTTP /metrics document.
func (m *Metrics) counterMap() map[string]uint64 {
	return map[string]uint64{
		"accepted":       m.Accepted.Load(),
		"sheds":          m.Sheds.Load(),
		"reaped":         m.Reaped.Load(),
		"aborted":        m.Aborted.Load(),
		"bad_requests":   m.BadRequests.Load(),
		"admitted_total": m.AdmittedTotal.Load(),
		"admission_busy": m.AdmissionBusy.Load(),
		"completed":      m.Completed.Load(),
		"evicted":        m.Evicted.Load(),
		"bytes_out":      m.BytesOut.Total(),
		"wheel_ticks":    m.WheelTicks.Load(),
		"wheel_fires":    m.WheelFires.Load(),
	}
}

// Line renders the expvar-style single-line METRICS response body:
// space-separated key=value pairs, stable key order. admitted is the
// current admission-controller gauge, passed in by the server because
// the controller lives behind its lock, not here.
//
// The lag quantile keys are omitted while lag_samples=0: a reader must
// never mistake "no data yet" for "true zero lag" (previously both
// rendered as lag_p50_ms=0.000).
func (m *Metrics) Line(admitted int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "accepted=%d", m.Accepted.Load())
	fmt.Fprintf(&b, " sheds=%d", m.Sheds.Load())
	fmt.Fprintf(&b, " reaped=%d", m.Reaped.Load())
	fmt.Fprintf(&b, " aborted=%d", m.Aborted.Load())
	fmt.Fprintf(&b, " bad_requests=%d", m.BadRequests.Load())
	fmt.Fprintf(&b, " admitted=%d", admitted)
	fmt.Fprintf(&b, " admitted_total=%d", m.AdmittedTotal.Load())
	fmt.Fprintf(&b, " admission_busy=%d", m.AdmissionBusy.Load())
	fmt.Fprintf(&b, " active_streams=%d", m.ActiveStreams.Load())
	fmt.Fprintf(&b, " completed=%d", m.Completed.Load())
	fmt.Fprintf(&b, " evicted=%d", m.Evicted.Load())
	fmt.Fprintf(&b, " bytes_out=%d", m.BytesOut.Total())
	fmt.Fprintf(&b, " wheel_streams=%d", m.WheelStreams.Load())
	fmt.Fprintf(&b, " wheel_ticks=%d", m.WheelTicks.Load())
	fmt.Fprintf(&b, " wheel_fires=%d", m.WheelFires.Load())
	// One snapshot serves both the count and the quantiles, so the line
	// can never pair lag_samples=0 with a nonzero quantile (torn read).
	snap := m.Lag.Snapshot()
	fmt.Fprintf(&b, " lag_samples=%d", snap.N)
	if snap.N > 0 {
		names := [...]string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"}
		qs := [...]float64{0.50, 0.95, 0.99}
		for i, name := range names {
			v, _ := snap.Quantile(qs[i])
			fmt.Fprintf(&b, " %s=%.3f", name, v*1e3)
		}
	}
	return b.String()
}
