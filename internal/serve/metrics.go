package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"memstream/internal/sim"
)

// Metrics is the supervisor's observability surface: monotonic counters
// for every connection outcome plus a pacing-lag histogram. Counters are
// atomics so the hot streaming path never takes a lock; the lag reservoir
// (a sim.Reservoir, the same estimator the simulator uses for delivery
// margins) has its own mutex because Observe mutates shared state.
type Metrics struct {
	Accepted      atomic.Uint64 // connections admitted past the conn semaphore
	Sheds         atomic.Uint64 // connections shed BUSY at the max-conns cap
	Reaped        atomic.Uint64 // request lines that hit the read deadline
	BadRequests   atomic.Uint64 // malformed or unknown commands
	AdmittedTotal atomic.Uint64 // PLAY requests admitted by Theorem 1
	AdmissionBusy atomic.Uint64 // PLAY requests refused by Theorem 1
	Completed     atomic.Uint64 // streams that delivered their full byte budget
	Evicted       atomic.Uint64 // streams killed by a write deadline or drain
	BytesOut      atomic.Uint64 // stream payload bytes written

	ActiveStreams atomic.Int64 // gauge: streams currently holding a slot

	mu  sync.Mutex
	lag *sim.Reservoir // pacing lag per quantum, in seconds
}

// lagReservoirCap bounds the retained lag sample; 8192 matches the
// simulator's margin reservoirs.
const lagReservoirCap = 8192

func newMetrics(seed uint64) *Metrics {
	return &Metrics{lag: sim.NewReservoir(lagReservoirCap, seed)}
}

// ObserveLag records one pacing-lag sample (seconds a chunk completed
// after its quantum boundary).
func (m *Metrics) ObserveLag(sec float64) {
	m.mu.Lock()
	m.lag.Observe(sec)
	m.mu.Unlock()
}

// LagQuantile returns the q-quantile of the pacing-lag sample in seconds;
// ok is false when no lag has been observed yet.
func (m *Metrics) LagQuantile(q float64) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lag.Quantile(q)
}

// lagSamples reports how many lag observations were made.
func (m *Metrics) lagSamples() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lag.N()
}

// lagSnapshot reads the sample count and the rendered quantiles under one
// lock acquisition, so a METRICS line never mixes the count from before a
// concurrent ObserveLag with quantiles from after it (a torn line such as
// lag_samples=0 alongside a nonzero lag_p50_ms).
func (m *Metrics) lagSnapshot(qs []float64) (n uint64, vals []float64) {
	vals = make([]float64, len(qs))
	m.mu.Lock()
	defer m.mu.Unlock()
	n = m.lag.N()
	for i, q := range qs {
		if v, ok := m.lag.Quantile(q); ok {
			vals[i] = v
		}
	}
	return n, vals
}

// Line renders the expvar-style single-line METRICS response body:
// space-separated key=value pairs, stable key order. admitted is the
// current admission-controller gauge, passed in by the server because
// the controller lives behind its lock, not here.
func (m *Metrics) Line(admitted int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "accepted=%d", m.Accepted.Load())
	fmt.Fprintf(&b, " sheds=%d", m.Sheds.Load())
	fmt.Fprintf(&b, " reaped=%d", m.Reaped.Load())
	fmt.Fprintf(&b, " bad_requests=%d", m.BadRequests.Load())
	fmt.Fprintf(&b, " admitted=%d", admitted)
	fmt.Fprintf(&b, " admitted_total=%d", m.AdmittedTotal.Load())
	fmt.Fprintf(&b, " admission_busy=%d", m.AdmissionBusy.Load())
	fmt.Fprintf(&b, " active_streams=%d", m.ActiveStreams.Load())
	fmt.Fprintf(&b, " completed=%d", m.Completed.Load())
	fmt.Fprintf(&b, " evicted=%d", m.Evicted.Load())
	fmt.Fprintf(&b, " bytes_out=%d", m.BytesOut.Load())
	names := [...]string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"}
	n, vals := m.lagSnapshot([]float64{0.50, 0.95, 0.99})
	fmt.Fprintf(&b, " lag_samples=%d", n)
	for i, name := range names {
		fmt.Fprintf(&b, " %s=%.3f", name, vals[i]*1e3)
	}
	return b.String()
}
