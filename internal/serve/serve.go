// Package serve is the production front-end for the admission-controlled
// streaming server: a connection supervisor that wraps the analytical
// planner's MixedAdmission controller with the lifecycle machinery a
// network-facing process needs and the demo listener lacked.
//
// Admission capacity is the scarce resource Theorem 1 guards, so the
// supervisor's job is to make sure no connection can pin an admitted
// slot beyond its useful life:
//
//   - a read deadline on the request line reaps slowloris clients that
//     connect and never speak (bounded in bytes as well as time);
//   - a write deadline on every streamed chunk evicts clients that stop
//     reading, returning their slot to the admission controller;
//   - a max-connections semaphore sheds excess connections with a fast
//     BUSY line before they consume a goroutine or file descriptor;
//   - context cancellation (wired to SIGINT/SIGTERM by cmd/memserve)
//     triggers a graceful drain: stop accepting, let in-flight streams
//     finish up to a deadline, force-close the rest, and release every
//     admission slot before returning;
//   - pacing runs against absolute monotonic-clock quantum boundaries
//     (units.Pacer), so a blocked write delays one chunk without
//     shifting the whole schedule, and sub-byte-per-quantum rates carry
//     their fractional bytes instead of stalling forever.
//
// The wire protocol stays the demo's line protocol: "PLAY <rate>",
// "STAT", plus a new "METRICS" command exposing the supervisor's
// counters and pacing-lag histogram (see Metrics.Line).
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memstream/internal/metrics"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/units"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultReadTimeout  = 5 * time.Second
	DefaultWriteTimeout = 5 * time.Second
	DefaultDrainTimeout = 10 * time.Second
	DefaultMaxConns     = 1024
	DefaultQuantum      = 100 * time.Millisecond

	// maxRequestLine bounds the request line in bytes, so a client
	// trickling an endless header cannot hold the reader past it.
	maxRequestLine = 1024

	// maxWriteChunk caps a single Write: after a blocked write the pacer
	// owes a catch-up burst (rate × stall), which is sent as bounded
	// slices instead of one allocation proportional to the stall.
	maxWriteChunk = 256 << 10
)

// payloadPattern is the one immutable synthetic payload every stream
// slices its chunks from. Streams used to allocate and fill a private
// buffer each (population × up to 256KB of dead memory and a fill loop
// on the admission path); sharing one read-only pattern makes the
// steady-state write path allocation-free. Nothing may ever write into
// it.
var payloadPattern = func() []byte {
	buf := make([]byte, maxWriteChunk)
	for i := range buf {
		buf[i] = byte('A' + i%26)
	}
	return buf
}()

// PacingMode selects the data plane that wakes streams at quantum
// boundaries.
type PacingMode int

const (
	// PacingGoroutine is the classic plane: every stream owns a
	// goroutine with a private runtime timer. Simple, and the baseline
	// the wheel is benchmarked against.
	PacingGoroutine PacingMode = iota
	// PacingWheel parks all streams on one hierarchical timer wheel; a
	// single ticker goroutine batches the due population each quantum
	// to a small writer-worker pool (Config.Writers). O(workers)
	// runtime timers regardless of population.
	PacingWheel
)

// String renders the flag spelling.
func (m PacingMode) String() string {
	if m == PacingWheel {
		return "wheel"
	}
	return "goroutine"
}

// ParsePacing parses a -pacing flag value.
func ParsePacing(s string) (PacingMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "goroutine":
		return PacingGoroutine, nil
	case "wheel":
		return PacingWheel, nil
	}
	return 0, fmt.Errorf("serve: unknown pacing mode %q (want goroutine or wheel)", s)
}

// Config parameterizes a Server. Admission and DefaultRate are required;
// every zero duration/count takes the package default.
type Config struct {
	Admission   *schedule.MixedAdmission
	DefaultRate units.ByteRate // PLAY with no rate argument
	Limit       units.Bytes    // bytes streamed per client; 0 = unlimited

	ReadTimeout  time.Duration // request-line deadline (slowloris reaping)
	WriteTimeout time.Duration // per-chunk write deadline (stalled-reader eviction)
	DrainTimeout time.Duration // graceful-drain budget after ctx cancellation
	MaxConns     int           // concurrent-connection cap (BUSY shed beyond it)
	Quantum      time.Duration // pacing quantum

	Pacing  PacingMode // goroutine-per-stream (default) or timer wheel
	Writers int        // wheel writer workers; 0 = GOMAXPROCS

	Logf func(format string, args ...any) // nil = silent
}

// Server supervises one listener. Create with New; run with Serve.
type Server struct {
	cfg     Config
	sem     chan struct{}
	metrics *Metrics
	started time.Time

	// drainCh triggers the graceful drain from inside the process (the
	// control plane's POST /drain), equivalent to cancelling Serve's ctx.
	drainOnce sync.Once
	drainCh   chan struct{}
	draining  atomic.Bool

	nextStreamID atomic.Uint64

	// plane is the timer-wheel data plane; nil in goroutine mode.
	plane *wheelPlane

	mu      sync.Mutex // guards adm (MixedAdmission is not goroutine-safe), conns, and streams
	conns   map[net.Conn]struct{}
	streams map[uint64]*streamState
}

// streamState is one live paced stream's control-plane record (identity
// for POST /streams/{id}/stop and the per-stream byte gauge the /metrics
// document reports) plus its write-path state. The write-path fields
// (pacer, sent, out, deadlineAt) are owned by whichever goroutine is
// currently pacing the stream — its own goroutine in PacingGoroutine,
// exactly one wheel worker at a time in PacingWheel — and are shared by
// both planes through writeChunks. bytes is the one field read by other
// goroutines (the control plane), hence atomic.
type streamState struct {
	id    uint64
	rate  units.ByteRate
	start time.Time
	conn  net.Conn
	bytes atomic.Uint64

	pacer *units.Pacer
	sent  units.Bytes
	out   metrics.Handle // pinned BytesOut shard: uncontended per-chunk adds
	// deadlineAt is when the conn's write deadline was last armed; the
	// deadline is re-armed only once more than half of WriteTimeout has
	// elapsed since, replacing a SetWriteDeadline syscall per chunk
	// with one per ~WriteTimeout/2.
	deadlineAt time.Time
}

// New validates cfg, fills defaults, and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Admission == nil {
		return nil, errors.New("serve: Config.Admission is required")
	}
	if cfg.DefaultRate <= 0 {
		return nil, fmt.Errorf("serve: non-positive default rate %v", cfg.DefaultRate)
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.Writers <= 0 {
		cfg.Writers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConns),
		metrics: newMetrics(),
		started: time.Now(),
		drainCh: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		streams: make(map[uint64]*streamState),
	}
	if cfg.Pacing == PacingWheel {
		s.plane = newWheelPlane(s)
	}
	return s, nil
}

// Close releases the server's background machinery — today the wheel
// plane's ticker and worker pool; a no-op in goroutine mode. Any
// streams still parked on the wheel are evicted. Idempotent. Serve does
// NOT call it: the plane outlives a drain so tests and embedders can
// run multiple loads; call Close when the Server is done for good.
func (s *Server) Close() {
	if s.plane != nil {
		s.plane.stop()
	}
}

// Metrics exposes the supervisor's counters and lag histogram.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Admitted reports the admission controller's current stream count.
func (s *Server) Admitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Admission.Admitted()
}

// Capacity is the homogeneous-rate yardstick shown in STAT responses:
// the largest stream count at the default rate the admission spec
// sustains. The actual admission decision handles arbitrary rate mixes.
func (s *Server) Capacity() int {
	return model.MaxStreamsDirect(s.cfg.DefaultRate, s.cfg.Admission.Disk, s.cfg.Admission.DRAMCap)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// the listener closes immediately, in-flight streams get up to
// DrainTimeout to finish, stragglers are force-closed, and every
// admission slot is released before Serve returns. Serve closes ln.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
		case <-s.drainCh: // control-plane POST /drain
		case <-stop:
			return
		}
		s.draining.Store(true)
		ln.Close() // unblocks Accept
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.draining.Load() || errors.Is(err, net.ErrClosed) {
				break
			}
			s.logf("serve: accept: %v", err)
			time.Sleep(10 * time.Millisecond) // avoid a hot loop on persistent errors
			continue
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// At the connection cap: shed fast, off the accept loop, and
			// without touching admission — a shed must not Release a slot
			// it never held.
			s.metrics.Sheds.Add(1)
			go shed(conn)
			continue
		}
		s.metrics.Accepted.Add(1)
		s.track(conn)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-s.sem }()
			defer s.untrack(conn)
			defer conn.Close()
			s.handle(conn)
		}()
	}

	// Graceful drain: accepting has stopped; in-flight streams may finish
	// up to the deadline, then the rest are force-closed (their write
	// paths error out and unwind, releasing their slots).
	s.draining.Store(true)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.logf("serve: drain deadline after %v; force-closing %d connections",
			s.cfg.DrainTimeout, s.activeConns())
		s.closeAll()
		<-done
	}

	// Safety net: every handler has unwound, so any slot still held would
	// be leaked capacity. Reclaim it loudly.
	s.mu.Lock()
	leaked := s.cfg.Admission.ReleaseAll()
	s.mu.Unlock()
	if leaked > 0 {
		s.logf("serve: drain reclaimed %d leaked admission slots", leaked)
	}
	return nil
}

// Drain triggers the graceful drain from inside the process — the
// control plane's POST /drain. Equivalent to cancelling the Serve
// context; safe to call repeatedly and before Serve starts.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Draining reports whether the server has begun (or finished) draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Started returns the supervisor's construction time (uptime anchor).
func (s *Server) Started() time.Time { return s.started }

// StopStream force-closes the live stream with the given id — the
// control plane's POST /streams/{id}/stop. The stream's write path
// errors out with net.ErrClosed and unwinds, releasing its admission
// slot and counting under Evicted (a server-initiated kill, exactly like
// a drain force-close). It reports whether the id named a live stream.
func (s *Server) StopStream(id uint64) bool {
	s.mu.Lock()
	st, ok := s.streams[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	st.conn.Close()
	return true
}

// registerStream records a newly admitted stream for the control plane.
func (s *Server) registerStream(st *streamState) {
	s.mu.Lock()
	s.streams[st.id] = st
	s.mu.Unlock()
}

func (s *Server) deregisterStream(id uint64) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

// shed refuses one connection with a fast BUSY line. The short deadline
// bounds the goroutine even against a client with a zero receive window.
func shed(conn net.Conn) {
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	fmt.Fprintln(conn, "BUSY connection capacity exhausted")
	conn.Close()
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) activeConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) closeAll() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	// Streams parked on the wheel may be armed seconds out (sub-quantum
	// skip-ahead); evict them now rather than waiting for their next
	// wake to notice the closed connection.
	if s.plane != nil {
		s.plane.kickAll()
	}
}

// writeLine writes one protocol line under the write deadline.
func (s *Server) writeLine(conn net.Conn, format string, args ...any) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_, err := fmt.Fprintf(conn, format+"\n", args...)
	return err
}

// handle serves one connection: read the request line under the read
// deadline, dispatch the command, and — for PLAY — hold an admission
// slot exactly as long as the stream runs.
func (s *Server) handle(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	r := bufio.NewReaderSize(io.LimitReader(conn, maxRequestLine), maxRequestLine)
	line, err := r.ReadString('\n')
	if err != nil {
		var ne net.Error
		switch {
		case errors.As(err, &ne) && ne.Timeout():
			// Read deadline: a slowloris (or silent) client held the line
			// open without completing a request — reap it.
			s.metrics.Reaped.Add(1)
		case errors.Is(err, io.EOF) && len(line) >= maxRequestLine:
			// Size-limit EOF: the "line" never terminated inside
			// maxRequestLine — a byte-bounded slowloris, same reap.
			s.metrics.Reaped.Add(1)
		case len(line) > 0:
			// The client started a request and disconnected before
			// finishing it: an abort, not a reap — the server never timed
			// anything out. (A clean connect-and-close with no bytes sent
			// stays uncounted: no request was ever started.)
			s.metrics.Aborted.Add(1)
		}
		return
	}
	conn.SetReadDeadline(time.Time{})

	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		s.metrics.BadRequests.Add(1)
		s.writeLine(conn, "ERR empty request")
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "STAT":
		s.mu.Lock()
		admitted := s.cfg.Admission.Admitted()
		agg := s.cfg.Admission.Aggregate()
		s.mu.Unlock()
		s.writeLine(conn, "OK admitted=%d capacity=%d aggregate=%v", admitted, s.Capacity(), agg)
	case "METRICS":
		s.writeLine(conn, "OK %s", s.metrics.Line(s.Admitted()))
	case "PLAY":
		s.play(conn, fields)
	default:
		s.metrics.BadRequests.Add(1)
		s.writeLine(conn, "ERR unknown command %q", fields[0])
	}
}

// play admits and runs one stream.
func (s *Server) play(conn net.Conn, fields []string) {
	rate := s.cfg.DefaultRate
	if len(fields) > 1 {
		parsed, err := units.ParseRate(fields[1])
		if err != nil || parsed <= 0 {
			s.metrics.BadRequests.Add(1)
			s.writeLine(conn, "ERR bad rate %q", fields[1])
			return
		}
		rate = parsed
	}
	s.mu.Lock()
	ok, err := s.cfg.Admission.TryAdmit(rate)
	s.mu.Unlock()
	if err != nil || !ok {
		s.metrics.AdmissionBusy.Add(1)
		s.writeLine(conn, "BUSY real-time capacity exhausted")
		return
	}
	s.metrics.AdmittedTotal.Add(1)
	s.metrics.ActiveStreams.Add(1)
	st := &streamState{id: s.nextStreamID.Add(1), rate: rate, start: time.Now(), conn: conn}
	s.registerStream(st)
	defer func() {
		s.deregisterStream(st.id)
		s.mu.Lock()
		s.cfg.Admission.Release(rate)
		s.mu.Unlock()
		s.metrics.ActiveStreams.Add(-1)
	}()
	if err := s.writeLine(conn, "OK streaming at %v", rate); err != nil {
		// The client vanished before a single paced chunk was written:
		// that is an abort, not an eviction — the server never had to
		// kill anything.
		s.metrics.Aborted.Add(1)
		return
	}
	if s.plane != nil {
		s.plane.run(st)
	} else {
		s.stream(st)
	}
}

// writeOutcome classifies one quantum's worth of chunk writes.
type writeOutcome int

const (
	writeOK      writeOutcome = iota // all due bytes written, stream continues
	writeDone                        // byte budget (Config.Limit) reached
	writeEvicted                     // server killed it: write deadline or force-close
	writeAborted                     // client vanished: reset/EPIPE
)

// writeChunks writes n due bytes to the stream's connection as slices
// of the shared immutable payload pattern — the one write path both
// pacing planes share. It is allocation-free and syscall-light:
//
//   - chunks are slices of payloadPattern, never per-stream buffers;
//   - the write deadline is re-armed only when more than half of
//     WriteTimeout has elapsed since the last arm (st.deadlineAt), not
//     per chunk — the caller's coarse now makes the check free. A
//     stalled reader still blocks into a deadline armed at most
//     WriteTimeout/2+quantum ago, so eviction happens within
//     WriteTimeout of the last arm, i.e. WriteTimeout+one quantum of
//     the stall;
//   - n is clamped to the remaining byte budget, so a completed stream
//     delivers exactly Limit bytes in every pacing mode (catch-up
//     bursts cannot overshoot).
//
// Multi-chunk catch-up bursts refresh now per chunk so a legitimately
// slow reader draining a long burst is not evicted for exceeding one
// deadline armed at burst start.
func (s *Server) writeChunks(st *streamState, n int, now time.Time) writeOutcome {
	if s.cfg.Limit > 0 {
		if remain := int(s.cfg.Limit - st.sent); n > remain {
			n = remain
		}
	}
	for n > 0 {
		m := n
		if m > maxWriteChunk {
			m = maxWriteChunk
		}
		if half := s.cfg.WriteTimeout / 2; st.deadlineAt.IsZero() || now.Sub(st.deadlineAt) >= half {
			st.conn.SetWriteDeadline(now.Add(s.cfg.WriteTimeout))
			st.deadlineAt = now
		}
		if _, err := st.conn.Write(payloadPattern[:m]); err != nil {
			var ne net.Error
			if (errors.As(err, &ne) && ne.Timeout()) || errors.Is(err, net.ErrClosed) {
				return writeEvicted
			}
			return writeAborted
		}
		st.out.Add(uint64(m))
		st.bytes.Add(uint64(m))
		st.sent += units.Bytes(m)
		n -= m
		if s.cfg.Limit > 0 && st.sent >= s.cfg.Limit {
			return writeDone
		}
		if n > 0 {
			now = time.Now() // burst path only; single-chunk quanta never pay this
		}
	}
	return writeOK
}

// stream paces synthetic data on the goroutine-per-stream plane: each
// chunk is due at an absolute quantum boundary anchored to the stream's
// start on the monotonic clock (units.Pacer carries fractional bytes,
// so any positive rate eventually reaches the byte budget), and this
// goroutine's private runtime timer sleeps to each boundary. The write
// itself — pattern slicing, deadline amortization, outcome
// classification — is writeChunks, shared with the wheel plane.
//
// Lag is sampled from the post-wake coarse clock against the boundary:
// it reads scheduler wake-up latency directly, and client back-pressure
// with one quantum of delay (a blocked write surfaces in the next
// wake's clock). That is one time.Now per quantum instead of the
// previous several per chunk.
//
// A failed chunk write ends the stream under one of two counters:
// Evicted when the server killed it (the write deadline expired on a
// stalled reader, or drain/StopStream closed the connection out from
// under us — net.ErrClosed), Aborted when the client simply vanished
// (reset/EPIPE). Lumping those together previously made server-initiated
// kills indistinguishable from client churn.
func (s *Server) stream(st *streamState) {
	st.pacer = units.NewPacer(st.rate, s.cfg.Quantum)
	st.out = s.metrics.BytesOut.Handle()
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		n := st.pacer.Next()
		boundary := st.pacer.Deadline(start)
		if d := time.Until(boundary); d > 0 {
			timer.Reset(d)
			<-timer.C
		}
		now := time.Now() // the quantum's coarse clock: lag + deadline checks
		switch s.writeChunks(st, n, now) {
		case writeOK:
			if lag := now.Sub(boundary); lag > 0 {
				s.metrics.ObserveLag(lag.Seconds())
			} else {
				s.metrics.ObserveLag(0)
			}
		case writeDone:
			s.metrics.ObserveLag(now.Sub(boundary).Seconds())
			s.metrics.Completed.Add(1)
			return
		case writeEvicted:
			s.metrics.Evicted.Add(1)
			return
		case writeAborted:
			s.metrics.Aborted.Add(1)
			return
		}
	}
}
