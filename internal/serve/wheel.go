package serve

import (
	"sync"
	"time"

	"memstream/internal/units"
	"memstream/internal/wheel"
)

// The timer-wheel data plane (Config.Pacing == PacingWheel).
//
// The goroutine-per-stream plane charges every stream a private runtime
// timer: at 100k streams and a 100ms quantum that is a million timer
// wakeups per second through the runtime's timer heaps, and wakeup
// pressure — not NIC bandwidth — becomes the population cap. The wheel
// plane inverts the ownership: streams are passive entries on one
// hierarchical timer wheel (internal/wheel) keyed in quantum ticks, a
// single ticker goroutine advances the wheel each quantum, and the due
// population is batched to a fixed pool of writer workers
// (Config.Writers, default GOMAXPROCS). Total runtime timers:
// O(workers), independent of population.
//
// Per tick, the loop advances the wheel and splits the due batch into
// contiguous spans, one per worker. Workers drain their span: settle
// the stream's byte debt against its pacer (NextBatch catches up across
// missed ticks, so a late tick conserves bytes instead of dropping
// them), write the due chunks from the shared payload pattern
// (writeChunks — the same write path the goroutine plane uses), then
// re-arm the stream's timer for its next non-empty quantum
// (QuantaToNonzero parks sub-quantum streams past the ticks where they
// would emit nothing).
//
// Clock economy: one time.Now per stream per wake (read in step), never
// per chunk — the same budget as the goroutine plane. A single clock
// read shared by the whole tick would be cheaper still, but it is
// unsound: a worker that blocks on a nearly-stalled reader makes the
// shared timestamp arbitrarily stale for the streams behind it in the
// span, so their half-expiry checks understate real elapsed time, the
// write-deadline re-arm is skipped, and healthy streams are spuriously
// evicted by deadlines that lapsed while they were queued.
//
// The connection's handler goroutine still exists — it parks on the
// stream's done channel so the supervisor's admission/semaphore/conn
// accounting is identical in both modes — but it owns no timer and
// never wakes until the stream ends.
//
// Known trade-off: a worker that hits a stalled reader blocks in Write
// until the armed deadline expires (at most WriteTimeout), delaying the
// streams behind it in that tick's batch; the lag histogram makes that
// visible, and the write deadline bounds it. Eviction semantics match
// the goroutine plane: deadline expiry and force-close count Evicted,
// client resets count Aborted.
type wheelPlane struct {
	s       *Server
	quantum time.Duration
	start   time.Time // tick 0 on the monotonic clock
	w       *wheel.Wheel
	workers int

	// maxSkip bounds the sub-quantum skip-ahead (~1s) so force-close and
	// StopStream are noticed promptly even by near-idle streams.
	maxSkip int64

	// armMu serializes arming against the drain sweep: once draining is
	// set no stream can re-park, so kickAll's eviction sweep is total.
	armMu    sync.Mutex
	draining bool

	batches  chan wheelBatch
	stopOnce sync.Once
	stopCh   chan struct{}
	loopDone chan struct{}
	workerWG sync.WaitGroup
}

// wheelStream is one stream parked on the wheel: the intrusive timer,
// the shared stream state, the stream's tick cursor (how many quanta
// its pacer has settled), and the done channel its handler goroutine
// parks on. Between fire and re-arm exactly one worker owns it.
type wheelStream struct {
	timer wheel.Timer
	st    *streamState
	tick  int64
	done  chan struct{}
}

// wheelBatch is one worker's span of a tick's due population.
type wheelBatch struct {
	timers []*wheel.Timer
	tick   int64
	wg     *sync.WaitGroup
}

func newWheelPlane(s *Server) *wheelPlane {
	p := &wheelPlane{
		s:       s,
		quantum: s.cfg.Quantum,
		start:   time.Now(),
		w:       wheel.New(),
		workers: s.cfg.Writers,
		maxSkip: max(1, int64(time.Second/s.cfg.Quantum)),
		// A deep buffer so the tick loop never blocks handing spans out.
		batches:  make(chan wheelBatch, 4*s.cfg.Writers),
		stopCh:   make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for i := 0; i < p.workers; i++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	go p.loop()
	return p
}

// admit parks a new stream on the wheel: the pacer anchors to the
// wheel's tick grid (first fire at the next boundary) and the stream's
// done channel closes when a worker or the drain sweep finishes it.
func (p *wheelPlane) admit(st *streamState) *wheelStream {
	st.pacer = units.NewPacer(st.rate, p.quantum)
	st.out = p.s.metrics.BytesOut.Handle()
	ws := &wheelStream{st: st, done: make(chan struct{})}
	ws.timer.Data = ws
	ws.tick = p.w.Current()
	p.s.metrics.WheelStreams.Add(1)

	p.armMu.Lock()
	if p.draining {
		// Admitted during the force-close sweep: evict immediately, the
		// same outcome the sweep gives every parked stream.
		p.armMu.Unlock()
		p.s.metrics.Evicted.Add(1)
		p.finish(ws, writeEvicted)
	} else {
		p.w.Arm(&ws.timer, ws.tick+1)
		p.armMu.Unlock()
	}
	return ws
}

// run parks the calling handler goroutine while the wheel paces its
// stream; the handler's deferred releases run when the stream ends.
func (p *wheelPlane) run(st *streamState) {
	<-p.admit(st).done
}

// loop is the plane's one runtime timer: a ticker at the pacing
// quantum. Each tick it advances the wheel to the tick the wall clock
// says we are at (catching up if the previous batch overran), collects
// the due population into a reused scratch, and fans contiguous spans
// out to the workers, waiting for the batch so the scratch can be
// reused — the steady state allocates nothing.
func (p *wheelPlane) loop() {
	defer close(p.loopDone)
	ticker := time.NewTicker(p.quantum)
	defer ticker.Stop()
	due := make([]*wheel.Timer, 0, 1024)
	var batchWG sync.WaitGroup
	for {
		select {
		case <-p.stopCh:
			return
		case now := <-ticker.C:
			target := int64(now.Sub(p.start) / p.quantum)
			cur := p.w.Current()
			if target <= cur {
				continue
			}
			p.s.metrics.WheelTicks.Add(uint64(target - cur))
			due = p.w.Advance(target, due[:0])
			if len(due) == 0 {
				continue
			}
			p.s.metrics.WheelFires.Add(uint64(len(due)))
			span := (len(due) + p.workers - 1) / p.workers
			for off := 0; off < len(due); off += span {
				end := off + span
				if end > len(due) {
					end = len(due)
				}
				batchWG.Add(1)
				p.batches <- wheelBatch{timers: due[off:end], tick: target, wg: &batchWG}
			}
			batchWG.Wait()
		}
	}
}

func (p *wheelPlane) worker() {
	defer p.workerWG.Done()
	for b := range p.batches {
		for _, t := range b.timers {
			p.step(t.Data.(*wheelStream), b.tick)
		}
		b.wg.Done()
	}
}

// step services one due stream for one wheel tick: settle the byte debt
// since the stream's last settled tick, write it, sample lag against
// the quantum boundary, and re-arm (or finish). The clock is read once
// here, after any queueing behind earlier streams in the span, so the
// lag sample honestly includes worker head-of-line delay and the
// write-deadline half-expiry check never understates elapsed time.
// Allocation-free in steady state.
func (p *wheelPlane) step(ws *wheelStream, tick int64) {
	n := ws.st.pacer.NextBatch(tick - ws.tick)
	ws.tick = tick
	now := time.Now()
	switch p.s.writeChunks(ws.st, n, now) {
	case writeOK:
		if n > 0 {
			boundary := p.start.Add(time.Duration(tick) * p.quantum)
			if lag := now.Sub(boundary); lag > 0 {
				p.s.metrics.ObserveLag(lag.Seconds())
			} else {
				p.s.metrics.ObserveLag(0)
			}
		}
		p.rearm(ws)
	case writeDone:
		boundary := p.start.Add(time.Duration(tick) * p.quantum)
		p.s.metrics.ObserveLag(now.Sub(boundary).Seconds())
		p.s.metrics.Completed.Add(1)
		p.finish(ws, writeDone)
	case writeEvicted:
		p.s.metrics.Evicted.Add(1)
		p.finish(ws, writeEvicted)
	case writeAborted:
		p.s.metrics.Aborted.Add(1)
		p.finish(ws, writeAborted)
	}
}

// rearm parks the stream for its next non-empty quantum. During a drain
// sweep re-parking is refused and the stream is evicted instead (its
// connection is already closed or about to be).
func (p *wheelPlane) rearm(ws *wheelStream) {
	k := ws.st.pacer.QuantaToNonzero()
	if k > p.maxSkip {
		k = p.maxSkip
	}
	p.armMu.Lock()
	if p.draining {
		p.armMu.Unlock()
		p.s.metrics.Evicted.Add(1)
		p.finish(ws, writeEvicted)
		return
	}
	p.w.Arm(&ws.timer, ws.tick+k)
	p.armMu.Unlock()
}

// finish ends a wheel stream: the counters were already settled by the
// caller (finish itself only maintains the gauge) and the handler
// goroutine parked in run unwinds to release conn/slot/registry.
func (p *wheelPlane) finish(ws *wheelStream, _ writeOutcome) {
	p.s.metrics.WheelStreams.Add(-1)
	close(ws.done)
}

// kickAll evicts every parked stream — the drain force-close sweep.
// Setting draining under armMu first guarantees no worker re-parks a
// stream after the sweep, so every stream ends exactly once: parked
// streams end here, in-flight ones end in their worker (failed write on
// the closed conn, or the rearm refusal above).
func (p *wheelPlane) kickAll() {
	p.armMu.Lock()
	p.draining = true
	due := p.w.DrainAll(nil)
	p.armMu.Unlock()
	for _, t := range due {
		ws := t.Data.(*wheelStream)
		p.s.metrics.Evicted.Add(1)
		p.finish(ws, writeEvicted)
	}
}

// stop shuts the plane down: sweep every parked stream, stop the tick
// loop, and drain the workers. Idempotent.
func (p *wheelPlane) stop() {
	p.stopOnce.Do(func() {
		close(p.stopCh)
		<-p.loopDone
		p.kickAll()
		close(p.batches)
		p.workerWG.Wait()
	})
}
