package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"memstream/internal/metrics"
	"memstream/internal/model"
	"memstream/internal/units"
)

// The HTTP control plane: a JSON API over the supervisor's live state,
// served by cmd/memserve next to the TCP streaming port.
//
//	GET  /metrics            full document: counters, lag histogram,
//	                         per-tier admission gauges, per-stream list
//	                         (the stream array is streamed, not buffered)
//	GET  /status             cheap liveness/occupancy view
//	POST /streams/{id}/stop  force-close one live stream
//	POST /drain              trigger the graceful drain
//
// The wire schema lives in internal/metrics (Document, Status, ...) so
// cmd/memsload's probe and verifier decode exactly what is encoded here.

// ControlHandler returns the control-plane HTTP handler.
func (s *Server) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetricsHTTP)
	mux.HandleFunc("GET /status", s.handleStatusHTTP)
	mux.HandleFunc("POST /streams/{id}/stop", s.handleStreamStop)
	mux.HandleFunc("POST /drain", s.handleDrainHTTP)
	return mux
}

// state renders the drain flag as the wire state string.
func (s *Server) state() string {
	if s.Draining() {
		return "draining"
	}
	return "serving"
}

// status assembles the GET /status document.
func (s *Server) status() metrics.Status {
	s.mu.Lock()
	admitted := s.cfg.Admission.Admitted()
	agg := s.cfg.Admission.Aggregate()
	conns := len(s.conns)
	s.mu.Unlock()
	return metrics.Status{
		Server:        "memserve",
		State:         s.state(),
		Admitted:      admitted,
		Capacity:      s.Capacity(),
		ActiveStreams: s.metrics.ActiveStreams.Load(),
		Conns:         conns,
		AggregateBps:  float64(agg),
		UptimeMS:      math.Round(float64(time.Since(s.started)) / float64(time.Millisecond)),
	}
}

// tiers renders the admission controller's per-tier view: what Theorem 1
// has committed of the disk's bandwidth and the DRAM budget for the
// current population. The DRAM figure is the plan's TotalDRAM — the
// buffer space the admitted mix requires — not a live allocator gauge.
func (s *Server) tiers() []metrics.Tier {
	s.mu.Lock()
	adm := s.cfg.Admission
	admitted := adm.Admitted()
	agg := adm.Aggregate()
	disk := adm.Disk
	dramCap := adm.DRAMCap
	s.mu.Unlock()

	diskTier := metrics.Tier{
		Name:         "disk",
		RateBps:      float64(disk.Rate),
		AggregateBps: float64(agg),
	}
	if disk.Rate > 0 {
		diskTier.Utilization = float64(agg) / float64(disk.Rate)
	}
	dramTier := metrics.Tier{Name: "dram", CapBytes: float64(dramCap)}
	if admitted > 0 {
		load := model.StreamLoad{N: admitted, BitRate: units.ByteRate(float64(agg) / float64(admitted))}
		if plan, err := model.DiskDirect(load, disk); err == nil {
			dramTier.UsedBytes = float64(plan.TotalDRAM)
			if dramCap > 0 {
				dramTier.Utilization = float64(plan.TotalDRAM) / float64(dramCap)
			}
		}
	}
	return []metrics.Tier{dramTier, diskTier}
}

// streamStats snapshots the live stream registry, ordered by id.
func (s *Server) streamStats() []metrics.Stream {
	now := time.Now()
	s.mu.Lock()
	out := make([]metrics.Stream, 0, len(s.streams))
	for _, st := range s.streams {
		out = append(out, metrics.Stream{
			ID:      st.id,
			RateBps: float64(st.rate),
			Bytes:   st.bytes.Load(),
			AgeMS:   math.Round(float64(now.Sub(st.start)) / float64(time.Millisecond)),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleMetricsHTTP serves the full metrics document. The envelope
// (counters, gauges, histogram, tiers) is marshalled at once, but the
// per-stream array — the only part that grows with load — is streamed
// entry-by-entry with periodic flushes, so a server carrying thousands
// of streams starts responding immediately and never buffers the whole
// document.
func (s *Server) handleMetricsHTTP(w http.ResponseWriter, r *http.Request) {
	doc := metrics.Document{
		Server:   "memserve",
		State:    s.state(),
		UptimeMS: math.Round(float64(time.Since(s.started)) / float64(time.Millisecond)),
		Counters: s.metrics.counterMap(),
		Gauges: map[string]int64{
			"admitted":       int64(s.Admitted()),
			"capacity":       int64(s.Capacity()),
			"active_streams": s.metrics.ActiveStreams.Load(),
			"wheel_streams":  s.metrics.WheelStreams.Load(),
			"conns":          int64(s.activeConns()),
		},
		Lag:   s.metrics.Lag.Snapshot().Wire(),
		Tiers: s.tiers(),
	}
	envelope, err := json.Marshal(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The marshalled doc ends `"streams":null}` — Streams is nil and is
	// declared last in metrics.Document. Strip the closing `null}` and
	// stream the array in its place.
	const tail = `null}`
	if !bytes.HasSuffix(envelope, []byte(`"streams":`+tail)) {
		// Schema drift guard: fall back to buffering the whole document.
		doc.Streams = s.streamStats()
		json.NewEncoder(w).Encode(doc)
		return
	}
	head := envelope[:len(envelope)-len(tail)]
	w.Write(head)
	w.Write([]byte{'['})
	flusher, _ := w.(http.Flusher)
	for i, st := range s.streamStats() {
		if i > 0 {
			w.Write([]byte{','})
		}
		entry, err := json.Marshal(st)
		if err != nil {
			// The envelope is already on the wire; the best we can do is
			// truncate, which the client's JSON decoder will reject.
			return
		}
		w.Write(entry)
		if flusher != nil && i%64 == 63 {
			flusher.Flush()
		}
	}
	w.Write([]byte("]}"))
}

func (s *Server) handleStatusHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.status())
}

func (s *Server) handleStreamStop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"bad stream id %q"}`, r.PathValue("id")), http.StatusBadRequest)
		return
	}
	if !s.StopStream(id) {
		http.Error(w, fmt.Sprintf(`{"error":"no live stream %d"}`, id), http.StatusNotFound)
		return
	}
	s.logf("serve: control plane stopped stream %d", id)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"id":%d,"stopped":true}`+"\n", id)
}

func (s *Server) handleDrainHTTP(w http.ResponseWriter, r *http.Request) {
	s.Drain()
	s.logf("serve: control plane triggered drain")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, `{"state":"draining"}`)
}
