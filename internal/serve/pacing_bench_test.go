package serve

// The data-plane measurement rig: allocation gates and micro-benchmarks
// for the shared write path and the wheel step, plus the env-gated
// population-scaling harness that records how far each pacing plane
// scales before the lag-p99 budget is blown (scripts/bench.sh runs it to
// produce the pacing section of BENCH_3.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/metrics"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/units"
)

// nullConn is a net.Conn that discards writes at memory speed — the
// stand-in client for write-path benchmarks and the scaling harness,
// where the interesting cost is pacing machinery, not socket I/O. Close
// makes subsequent writes fail with net.ErrClosed, which the write path
// classifies as an eviction: the harness's teardown switch.
type nullConn struct{ closed atomic.Bool }

func (c *nullConn) Write(b []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	return len(b), nil
}
func (c *nullConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (c *nullConn) Close() error                     { c.closed.Store(true); return nil }
func (c *nullConn) LocalAddr() net.Addr              { return nullAddr{} }
func (c *nullConn) RemoteAddr() net.Addr             { return nullAddr{} }
func (c *nullConn) SetDeadline(time.Time) error      { return nil }
func (c *nullConn) SetReadDeadline(time.Time) error  { return nil }
func (c *nullConn) SetWriteDeadline(time.Time) error { return nil }

type nullAddr struct{}

func (nullAddr) Network() string { return "null" }
func (nullAddr) String() string  { return "null" }

// benchConfig is testConfig without the *testing.T coupling, sized for
// unlimited steady-state streaming.
func benchConfig(mode PacingMode) Config {
	p := disk.FutureDisk()
	return Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: 64 * units.GB,
		},
		DefaultRate:  100 * units.KBPS,
		Limit:        0,
		WriteTimeout: 5 * time.Second,
		Quantum:      10 * time.Millisecond,
		Pacing:       mode,
	}
}

func newBenchServer(tb testing.TB, mode PacingMode) *Server {
	tb.Helper()
	s, err := New(benchConfig(mode))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

// benchStream builds a streamState wired to a nullConn, ready for
// direct writeChunks/step calls.
func benchStream(s *Server, id uint64, rate units.ByteRate) (*streamState, *nullConn) {
	conn := &nullConn{}
	st := &streamState{id: id, rate: rate, start: time.Now(), conn: conn}
	st.pacer = units.NewPacer(rate, s.cfg.Quantum)
	st.out = s.metrics.BytesOut.Handle()
	return st, conn
}

// The steady-state write path must not allocate: chunks are slices of
// the shared payload pattern and every metric touch is a pinned-shard or
// bucket atomic. This is the gate that keeps the 100k-stream data plane
// out of the garbage collector's hands.
func TestWriteChunksZeroAllocs(t *testing.T) {
	s := newBenchServer(t, PacingGoroutine)
	st, _ := benchStream(s, 1, 100*units.KBPS)
	s.writeChunks(st, 1500, time.Now()) // warm the deadline state
	allocs := testing.AllocsPerRun(200, func() {
		s.writeChunks(st, 1500, time.Now())
	})
	if allocs != 0 {
		t.Errorf("writeChunks allocates %.1f/op in steady state, want 0", allocs)
	}
}

// The whole wheel step — catch-up batch, write, lag sample, re-arm —
// must also be allocation-free per stream-wake.
func TestWheelStepZeroAllocs(t *testing.T) {
	s := newBenchServer(t, PacingWheel)
	p := s.plane
	st, _ := benchStream(s, 1, 100*units.KBPS)
	ws := &wheelStream{st: st, done: make(chan struct{})}
	ws.timer.Data = ws
	s.metrics.WheelStreams.Add(1)
	// Step along a tick cursor far ahead of the live wheel so the plane's
	// own ticker never races us for the timer.
	tick := p.w.Current() + 1<<20
	ws.tick = tick - 1
	p.step(ws, tick)
	allocs := testing.AllocsPerRun(200, func() {
		tick++
		p.step(ws, tick)
	})
	if allocs != 0 {
		t.Errorf("wheel step allocates %.1f/op in steady state, want 0", allocs)
	}
}

// BenchmarkWriteChunks measures the shared write path per chunk at
// representative chunk sizes (ns/chunk, MB/s, allocs).
func BenchmarkWriteChunks(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("chunk=%dKB", size>>10), func(b *testing.B) {
			s := newBenchServer(b, PacingGoroutine)
			st, _ := benchStream(s, 1, 100*units.KBPS)
			now := time.Now()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.writeChunks(st, size, now)
			}
		})
	}
}

// BenchmarkWheelStep measures one stream-wake on the wheel plane: pacer
// catch-up, chunk write, lag sample, re-arm. This is the per-stream
// per-quantum cost that bounds sustainable population.
func BenchmarkWheelStep(b *testing.B) {
	s := newBenchServer(b, PacingWheel)
	p := s.plane
	st, _ := benchStream(s, 1, 100*units.KBPS)
	ws := &wheelStream{st: st, done: make(chan struct{})}
	ws.timer.Data = ws
	s.metrics.WheelStreams.Add(1)
	tick := p.w.Current() + 1<<20
	ws.tick = tick - 1
	b.SetBytes(int64(units.BytesIn(st.rate, s.cfg.Quantum)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		p.step(ws, tick)
	}
}

// --- population-scaling harness ---

type scalingPoint struct {
	Mode          string  `json:"mode"`
	Streams       int     `json:"streams"`
	LagP50MS      float64 `json:"lag_p50_ms"`
	LagP95MS      float64 `json:"lag_p95_ms"`
	LagP99MS      float64 `json:"lag_p99_ms"`
	WakeupsPerSec float64 `json:"wakeups_per_sec"`
	TicksPerSec   float64 `json:"ticks_per_sec,omitempty"` // wheel only
	Sustained     bool    `json:"sustained"`               // lag_p99 within budget
}

type scalingReport struct {
	Schema         string         `json:"schema"`
	GOMAXPROCS     int            `json:"gomaxprocs"`
	QuantumMS      float64        `json:"quantum_ms"`
	RateBps        float64        `json:"rate_bps"`
	WarmupMS       float64        `json:"warmup_ms"`
	MeasureMS      float64        `json:"measure_ms"`
	BudgetMS       float64        `json:"budget_ms"`
	Points         []scalingPoint `json:"points"`
	MaxSustainable map[string]int `json:"max_sustainable"`
	WheelRatio     float64        `json:"wheel_over_goroutine_ratio"`
}

// subSnap returns the histogram delta b-a: the samples observed between
// two snapshots of the same histogram.
func subSnap(b, a metrics.Snapshot) metrics.Snapshot {
	var d metrics.Snapshot
	for i := range b.Counts {
		d.Counts[i] = b.Counts[i] - a.Counts[i]
		d.N += d.Counts[i]
	}
	d.SumNS = b.SumNS - a.SumNS
	return d
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestPacingScalingHarness sweeps stream populations across both pacing
// planes against synthetic clients and records lag quantiles and wakeup
// rates per point, plus the largest population each plane sustains
// within the lag-p99 budget (half a quantum). Gated behind
// PACING_SCALING_OUT because a full sweep takes tens of seconds and its
// numbers only mean something on an otherwise idle machine:
//
//	PACING_SCALING_OUT=/tmp/pacing.json go test ./internal/serve/ -run ScalingHarness -v
//
// Knobs: PACING_SCALING_POPS (comma-separated ladder),
// PACING_SCALING_WARM_MS, PACING_SCALING_MEASURE_MS.
func TestPacingScalingHarness(t *testing.T) {
	outPath := os.Getenv("PACING_SCALING_OUT")
	if outPath == "" {
		t.Skip("set PACING_SCALING_OUT=<path> to run the pacing scaling harness")
	}
	const (
		quantum = 20 * time.Millisecond
		rate    = 10 * units.KBPS // 200 B per quantum: every wake emits
	)
	warm := time.Duration(envInt("PACING_SCALING_WARM_MS", 500)) * time.Millisecond
	measure := time.Duration(envInt("PACING_SCALING_MEASURE_MS", 2000)) * time.Millisecond
	budget := quantum / 2

	pops := []int{1000, 5000, 10000, 25000, 50000, 100000}
	if v := os.Getenv("PACING_SCALING_POPS"); v != "" {
		pops = pops[:0]
		for _, f := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				t.Fatalf("bad PACING_SCALING_POPS entry %q", f)
			}
			pops = append(pops, n)
		}
	}

	report := scalingReport{
		Schema:         "pacing-scaling/v1",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		QuantumMS:      float64(quantum) / 1e6,
		RateBps:        float64(rate),
		WarmupMS:       float64(warm) / 1e6,
		MeasureMS:      float64(measure) / 1e6,
		BudgetMS:       float64(budget) / 1e6,
		MaxSustainable: map[string]int{},
	}

	for _, mode := range []PacingMode{PacingGoroutine, PacingWheel} {
		for _, pop := range pops {
			pt := runScalingPoint(t, mode, pop, quantum, rate, warm, measure, budget)
			report.Points = append(report.Points, pt)
			if pt.Sustained && pop > report.MaxSustainable[mode.String()] {
				report.MaxSustainable[mode.String()] = pop
			}
			t.Logf("%-9s %6d streams: lag p99 %.2fms, %.0f wakeups/s, sustained=%v",
				mode, pop, pt.LagP99MS, pt.WakeupsPerSec, pt.Sustained)
		}
	}
	if g := report.MaxSustainable["goroutine"]; g > 0 {
		report.WheelRatio = float64(report.MaxSustainable["wheel"]) / float64(g)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (max sustainable: %v, ratio %.1fx)", outPath, report.MaxSustainable, report.WheelRatio)
}

// runScalingPoint runs one (mode, population) cell: inject pop paced
// streams against null clients, warm up, measure lag and wakeup deltas
// over the window, then tear everything down by closing the conns (the
// write path sees net.ErrClosed and evicts).
func runScalingPoint(t *testing.T, mode PacingMode, pop int, quantum time.Duration,
	rate units.ByteRate, warm, measure, budget time.Duration) scalingPoint {
	t.Helper()
	cfg := benchConfig(mode)
	cfg.Quantum = quantum
	cfg.DefaultRate = rate
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conns := make([]*nullConn, pop)
	var wg sync.WaitGroup
	for i := 0; i < pop; i++ {
		st, conn := benchStream(s, uint64(i+1), rate)
		conns[i] = conn
		if mode == PacingWheel {
			// Wheel streams need no goroutine: admit parks them on the
			// wheel and eviction closes their done channel unobserved.
			st.pacer = nil // admit builds the pacer itself
			s.plane.admit(st)
		} else {
			st.pacer = nil
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.stream(st)
			}()
		}
	}

	time.Sleep(warm)
	lagA := s.metrics.Lag.Snapshot()
	firesA := s.metrics.WheelFires.Load()
	ticksA := s.metrics.WheelTicks.Load()
	time.Sleep(measure)
	lagB := s.metrics.Lag.Snapshot()
	firesB := s.metrics.WheelFires.Load()
	ticksB := s.metrics.WheelTicks.Load()

	for _, c := range conns {
		c.Close()
	}
	if mode == PacingWheel {
		deadline := time.Now().Add(30 * time.Second)
		for s.metrics.WheelStreams.Load() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("wheel teardown: %d streams still parked", s.metrics.WheelStreams.Load())
			}
			time.Sleep(50 * time.Millisecond)
		}
	} else {
		wg.Wait()
	}

	window := subSnap(lagB, lagA)
	secs := measure.Seconds()
	pt := scalingPoint{Mode: mode.String(), Streams: pop}
	if p, ok := window.Quantile(0.50); ok {
		pt.LagP50MS = p * 1e3
	}
	if p, ok := window.Quantile(0.95); ok {
		pt.LagP95MS = p * 1e3
	}
	if p, ok := window.Quantile(0.99); ok {
		pt.LagP99MS = p * 1e3
		pt.Sustained = time.Duration(p*float64(time.Second)) <= budget
	}
	if mode == PacingWheel {
		pt.WakeupsPerSec = float64(firesB-firesA) / secs
		pt.TicksPerSec = float64(ticksB-ticksA) / secs
	} else {
		// One lag sample per stream-quantum: the sample rate IS the
		// runtime-timer wakeup rate.
		pt.WakeupsPerSec = float64(window.N) / secs
	}
	return pt
}
