package serve

import (
	"bufio"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"memstream/internal/units"
)

func TestParsePacing(t *testing.T) {
	cases := []struct {
		in   string
		want PacingMode
		ok   bool
	}{
		{"", PacingGoroutine, true},
		{"goroutine", PacingGoroutine, true},
		{"GOROUTINE", PacingGoroutine, true},
		{"wheel", PacingWheel, true},
		{" Wheel ", PacingWheel, true},
		{"heap", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePacing(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePacing(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePacing(%q) succeeded, want error", c.in)
		}
	}
	if PacingGoroutine.String() != "goroutine" || PacingWheel.String() != "wheel" {
		t.Errorf("String() = %q/%q", PacingGoroutine, PacingWheel)
	}
}

// playStream drives one PLAY through runHandle and returns the buffered
// reader positioned after the "OK streaming" banner.
func playStream(t *testing.T, s *Server, rate string) (net.Conn, *bufio.Reader, <-chan struct{}) {
	t.Helper()
	client, done := runHandle(t, s)
	if _, err := client.Write([]byte("PLAY " + rate + "\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(client)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	return client, r, done
}

// The wheel plane delivers exactly the byte budget and counts Completed,
// just like the goroutine plane.
func TestWheelStreamCompletes(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Pacing = PacingWheel
	cfg.Writers = 2
	s := newTestServer(t, cfg)
	_, r, done := playStream(t, s, "500KB")
	body, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, 5*time.Second, "wheel stream")
	if len(body) != int(cfg.Limit) {
		t.Errorf("wheel stream delivered %d bytes, want exactly %v", len(body), cfg.Limit)
	}
	if got := s.metrics.Completed.Load(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after completion, want 0", got)
	}
	if got := s.metrics.WheelStreams.Load(); got != 0 {
		t.Errorf("WheelStreams gauge = %d after completion, want 0", got)
	}
	if got := s.metrics.WheelFires.Load(); got == 0 {
		t.Error("WheelFires = 0 after a completed wheel stream")
	}
}

// The sub-quantum regression, wheel edition: at 5 B/s a 10ms quantum owes
// 0.05 bytes. The wheel must park the stream across the empty quanta
// (QuantaToNonzero) and still complete the budget — fractional bytes
// survive the skip-ahead.
func TestWheelSubQuantumRateStreamCompletes(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Pacing = PacingWheel
	cfg.Limit = 3 * units.B
	s := newTestServer(t, cfg)
	_, r, done := playStream(t, s, "5B")
	body, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, done, 5*time.Second, "sub-quantum wheel stream")
	if len(body) != 3 {
		t.Errorf("streamed %d bytes at 5B/s, want 3", len(body))
	}
	if got := s.metrics.Completed.Load(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
	// The park must actually skip empty quanta: 3 bytes at 5B/s take
	// ~600ms = 60 quanta, but only ~3 of them emit. Allow slack for the
	// maxSkip cap and spurious rounding wakes, but far fewer than one
	// fire per quantum.
	if fires := s.metrics.WheelFires.Load(); fires > 20 {
		t.Errorf("WheelFires = %d for 3 emitting quanta; skip-ahead is not parking empty ticks", fires)
	}
}

// The eviction-latency bound that deadline amortization must preserve:
// re-arming SetWriteDeadline only after half-expiry still guarantees a
// stalled reader is evicted within WriteTimeout + one quantum of the
// stall (the blocking write starts at most a quantum after the stall and
// blocks into a deadline at most WriteTimeout away). Checked in both
// pacing modes.
func TestStalledReaderEvictionBound(t *testing.T) {
	for _, mode := range []PacingMode{PacingGoroutine, PacingWheel} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testConfig(1 * units.GB)
			cfg.Pacing = mode
			cfg.Limit = 0 // only eviction can end the stream
			cfg.WriteTimeout = 300 * time.Millisecond
			cfg.Quantum = 20 * time.Millisecond
			s := newTestServer(t, cfg)
			_, r, done := playStream(t, s, "100KB")
			// Consume one chunk so the stream is demonstrably flowing,
			// then stall completely.
			buf := make([]byte, 64<<10)
			if _, err := r.Read(buf); err != nil {
				t.Fatal(err)
			}
			stall := time.Now()
			waitDone(t, done, 5*time.Second, "stalled reader")
			elapsed := time.Since(stall)
			// WriteTimeout + one quantum, plus scheduler slack. A per-write
			// deadline refresh bug (pushing the deadline on every blocked
			// retry) or a lost-wake bug would blow far past this.
			if bound := cfg.WriteTimeout + cfg.Quantum + 400*time.Millisecond; elapsed > bound {
				t.Errorf("eviction took %v, want within %v (WriteTimeout+quantum+slack)", elapsed, bound)
			}
			if got := s.metrics.Evicted.Load(); got != 1 {
				t.Errorf("Evicted = %d, want 1", got)
			}
			if got := s.Admitted(); got != 0 {
				t.Errorf("Admitted = %d after eviction, want 0", got)
			}
		})
	}
}

// Pacing equivalence, part 1: with every client reading to completion,
// both planes deliver exactly admitted × Limit bytes — the byte counts
// match across modes because writeChunks clamps catch-up bursts to the
// budget.
func TestPacingEquivalenceBytes(t *testing.T) {
	const clients = 5
	bytesOut := make(map[PacingMode]uint64)
	for _, mode := range []PacingMode{PacingGoroutine, PacingWheel} {
		cfg := testConfig(1 * units.GB)
		cfg.Pacing = mode
		cfg.Writers = 2
		cfg.Quantum = 5 * time.Millisecond
		cfg.Limit = 16 * units.KB
		s := newTestServer(t, cfg)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			_, r, done := playStream(t, s, "500KB")
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(io.Discard, r)
				waitDone(t, done, 10*time.Second, "equivalence client")
			}()
		}
		wg.Wait()
		m := s.metrics
		if got := m.Completed.Load(); got != clients {
			t.Errorf("%v: Completed = %d, want %d", mode, got, clients)
		}
		if got, want := m.BytesOut.Total(), uint64(clients)*uint64(cfg.Limit); got != want {
			t.Errorf("%v: bytes_out = %d, want exactly %d", mode, got, want)
		}
		bytesOut[mode] = m.BytesOut.Total()
	}
	if bytesOut[PacingGoroutine] != bytesOut[PacingWheel] {
		t.Errorf("byte counts diverge across modes: goroutine=%d wheel=%d",
			bytesOut[PacingGoroutine], bytesOut[PacingWheel])
	}
}

// Pacing equivalence, part 2: under a mixed population — completions,
// a mid-stream abort, a stalled reader — every admitted stream ends
// under exactly one outcome counter in both modes:
// completed + evicted + aborted == admitted.
func TestPacingEquivalenceConservation(t *testing.T) {
	for _, mode := range []PacingMode{PacingGoroutine, PacingWheel} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testConfig(1 * units.GB)
			cfg.Pacing = mode
			cfg.Writers = 2
			cfg.Quantum = 5 * time.Millisecond
			cfg.Limit = 16 * units.KB
			s := newTestServer(t, cfg)
			var wg sync.WaitGroup

			// Two clients read to completion.
			for i := 0; i < 2; i++ {
				_, r, done := playStream(t, s, "500KB")
				wg.Add(1)
				go func() {
					defer wg.Done()
					io.Copy(io.Discard, r)
					waitDone(t, done, 10*time.Second, "completing client")
				}()
			}
			// One client vanishes mid-stream (abort).
			abortClient, abortR, abortDone := playStream(t, s, "500KB")
			buf := make([]byte, 4096)
			if _, err := abortR.Read(buf); err != nil {
				t.Fatal(err)
			}
			abortClient.Close()
			// One client stalls and is evicted by the write deadline.
			_, stallR, stallDone := playStream(t, s, "500KB")
			if _, err := stallR.Read(buf); err != nil {
				t.Fatal(err)
			}

			wg.Wait()
			waitDone(t, abortDone, 5*time.Second, "aborting client")
			waitDone(t, stallDone, 5*time.Second, "stalled client")

			m := s.metrics
			admitted := m.AdmittedTotal.Load()
			completed := m.Completed.Load()
			evicted := m.Evicted.Load()
			aborted := m.Aborted.Load()
			if admitted != 4 {
				t.Fatalf("AdmittedTotal = %d, want 4", admitted)
			}
			if completed+evicted+aborted != admitted {
				t.Errorf("%v: completed(%d)+evicted(%d)+aborted(%d) != admitted(%d)",
					mode, completed, evicted, aborted, admitted)
			}
			if completed != 2 {
				t.Errorf("%v: Completed = %d, want 2", mode, completed)
			}
			if got := s.Admitted(); got != 0 {
				t.Errorf("%v: Admitted = %d after all streams ended, want 0", mode, got)
			}
			if got := m.ActiveStreams.Load(); got != 0 {
				t.Errorf("%v: ActiveStreams = %d, want 0", mode, got)
			}
			if got := m.WheelStreams.Load(); got != 0 {
				t.Errorf("%v: WheelStreams = %d, want 0", mode, got)
			}
		})
	}
}

// Close on a wheel server sweeps every parked stream: each is evicted
// exactly once, the handlers unwind, and conservation holds.
func TestWheelCloseEvictsParkedStreams(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Pacing = PacingWheel
	cfg.Writers = 2
	cfg.Limit = 0 // unlimited: only the sweep can end these streams
	s := newTestServer(t, cfg)

	const clients = 3
	var wg sync.WaitGroup
	dones := make([]<-chan struct{}, clients)
	for i := 0; i < clients; i++ {
		_, r, done := playStream(t, s, "100KB")
		dones[i] = done
		wg.Add(1)
		go func() {
			defer wg.Done()
			io.Copy(io.Discard, r) // read until the server ends us
		}()
	}
	waitFor(t, 2*time.Second, func() bool { return s.metrics.WheelStreams.Load() == clients })

	s.Close()
	for i, done := range dones {
		waitDone(t, done, 5*time.Second, "swept stream")
		_ = i
	}
	wg.Wait()
	m := s.metrics
	if got := m.Evicted.Load(); got != clients {
		t.Errorf("Evicted = %d after Close, want %d", got, clients)
	}
	if got, want := m.Completed.Load()+m.Evicted.Load()+m.Aborted.Load(), m.AdmittedTotal.Load(); got != want {
		t.Errorf("outcome sum = %d, admitted = %d", got, want)
	}
	if got := m.WheelStreams.Load(); got != 0 {
		t.Errorf("WheelStreams = %d after Close, want 0", got)
	}
	if got := s.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after Close, want 0", got)
	}
}

// StopStream reaches a wheel-parked stream: the control-plane kill
// closes the conn, the stream's next wake observes net.ErrClosed, and it
// counts Evicted — same semantics as the goroutine plane. Over real TCP
// (net.Pipe conflates self-close and peer-close into io.ErrClosedPipe,
// so the Evicted/Aborted split is only observable here).
func TestWheelStopStream(t *testing.T) {
	cfg := testConfig(1 * units.GB)
	cfg.Pacing = PacingWheel
	cfg.Limit = 0
	s := newTestServer(t, cfg)
	addr, _, _ := startServe(t, s)
	_, r := dialPlay(t, addr)
	copied := make(chan struct{})
	go func() { io.Copy(io.Discard, r); close(copied) }()
	waitFor(t, 2*time.Second, func() bool { return s.metrics.BytesOut.Total() > 0 })

	if !s.StopStream(1) {
		t.Fatal("StopStream(1) found no stream")
	}
	select {
	case <-copied:
	case <-time.After(5 * time.Second):
		t.Fatal("client still streaming after StopStream")
	}
	waitFor(t, 2*time.Second, func() bool { return s.Admitted() == 0 })
	if got := s.metrics.Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d after StopStream, want 1", got)
	}
	if got := s.metrics.Aborted.Load(); got != 0 {
		t.Errorf("Aborted = %d after StopStream, want 0", got)
	}
}
