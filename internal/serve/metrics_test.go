package serve

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseLine splits a METRICS line into its key=value pairs.
func parseLine(t *testing.T, line string) map[string]string {
	t.Helper()
	kv := map[string]string{}
	for _, f := range strings.Fields(line) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed field %q in %q", f, line)
		}
		kv[k] = v
	}
	return kv
}

// Regression: with zero lag samples the line used to render
// lag_p50_ms=0.000, indistinguishable from true zero lag. The quantile
// keys must be omitted until at least one sample exists, and appear once
// one does — including a genuine zero-lag sample, which then correctly
// renders 0.000 alongside lag_samples=1.
func TestMetricsLineOmitsQuantilesWithoutSamples(t *testing.T) {
	m := newMetrics()
	kv := parseLine(t, m.Line(3))
	if kv["admitted"] != "3" {
		t.Errorf("admitted = %q, want 3", kv["admitted"])
	}
	if kv["lag_samples"] != "0" {
		t.Errorf("lag_samples = %q, want 0", kv["lag_samples"])
	}
	for _, k := range []string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"} {
		if v, present := kv[k]; present {
			t.Errorf("%s = %q present with no samples; key must be omitted", k, v)
		}
	}
	if _, present := kv["aborted"]; !present {
		t.Error("aborted key missing from METRICS line")
	}

	m.ObserveLag(0) // a true zero-lag quantum
	kv = parseLine(t, m.Line(3))
	if kv["lag_samples"] != "1" {
		t.Errorf("lag_samples = %q after one observation, want 1", kv["lag_samples"])
	}
	for _, k := range []string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"} {
		if kv[k] != "0.000" {
			t.Errorf("%s = %q, want 0.000 (true zero lag, now distinguishable by lag_samples=1)", k, kv[k])
		}
	}
}

// TestMetricsLineNotTorn is the regression test for a torn METRICS line:
// Line used to read lag_samples and each quantile under separate lock
// acquisitions, so a concurrent ObserveLag could land between them and
// produce lag_samples=0 alongside a nonzero lag_p50_ms. The histogram
// rendering derives both from one snapshot, so that combination stays
// impossible; run under -race this also proves the lock-free observe and
// snapshot paths are data-race-free.
func TestMetricsLineNotTorn(t *testing.T) {
	m := newMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					m.ObserveLag(float64(w*1000+i) * 1e-3)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		kv := parseLine(t, m.Line(0))
		n, err := strconv.ParseUint(kv["lag_samples"], 10, 64)
		if err != nil {
			t.Fatalf("bad lag_samples %q: %v", kv["lag_samples"], err)
		}
		for _, k := range []string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"} {
			v, present := kv[k]
			if n == 0 {
				if present {
					t.Fatalf("torn line: lag_samples=0 but %s=%v rendered", k, v)
				}
				continue
			}
			if !present {
				t.Fatalf("lag_samples=%d but %s missing", n, k)
			}
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("bad %s %q: %v", k, v, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
