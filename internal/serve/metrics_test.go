package serve

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseLine splits a METRICS line into its key=value pairs.
func parseLine(t *testing.T, line string) map[string]string {
	t.Helper()
	kv := map[string]string{}
	for _, f := range strings.Fields(line) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed field %q in %q", f, line)
		}
		kv[k] = v
	}
	return kv
}

func TestMetricsLineKeysAndZeroQuantiles(t *testing.T) {
	m := newMetrics(1)
	kv := parseLine(t, m.Line(3))
	if kv["admitted"] != "3" {
		t.Errorf("admitted = %q, want 3", kv["admitted"])
	}
	if kv["lag_samples"] != "0" {
		t.Errorf("lag_samples = %q, want 0", kv["lag_samples"])
	}
	for _, k := range []string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"} {
		if kv[k] != "0.000" {
			t.Errorf("%s = %q, want 0.000 with no samples", k, kv[k])
		}
	}
}

// TestMetricsLineNotTorn is the regression test for a torn METRICS line:
// Line used to read lag_samples and each quantile under separate lock
// acquisitions, so a concurrent ObserveLag could land between them and
// produce lag_samples=0 alongside a nonzero lag_p50_ms. With the
// single-lock snapshot that combination is impossible. Run under -race
// this also proves the snapshot path is properly locked.
func TestMetricsLineNotTorn(t *testing.T) {
	m := newMetrics(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					m.ObserveLag(float64(w*1000+i) * 1e-3)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		kv := parseLine(t, m.Line(0))
		n, err := strconv.ParseUint(kv["lag_samples"], 10, 64)
		if err != nil {
			t.Fatalf("bad lag_samples %q: %v", kv["lag_samples"], err)
		}
		for _, k := range []string{"lag_p50_ms", "lag_p95_ms", "lag_p99_ms"} {
			v, err := strconv.ParseFloat(kv[k], 64)
			if err != nil {
				t.Fatalf("bad %s %q: %v", k, kv[k], err)
			}
			if n == 0 && v != 0 {
				t.Fatalf("torn line: lag_samples=0 but %s=%v", k, v)
			}
		}
	}
	close(stop)
	wg.Wait()
}
