package schedule

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/model"
	"memstream/internal/units"
)

func diskSpec() model.DeviceSpec {
	return model.DeviceSpec{Rate: 300 * units.MBPS, Latency: units.Milliseconds(4.3)}
}

func TestNewTimeCycle(t *testing.T) {
	plan, err := model.DiskDirect(model.StreamLoad{N: 20, BitRate: units.MBPS}, diskSpec())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTimeCycle(20, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tc.Entries) != 20 {
		t.Fatalf("entries = %d", len(tc.Entries))
	}
	if tc.Period != plan.Cycle {
		t.Errorf("period = %v, want %v", tc.Period, plan.Cycle)
	}
	// Order is stable, streams 0..N-1.
	for i, e := range tc.Entries {
		if e.Stream != i {
			t.Fatalf("entry %d is stream %d", i, e.Stream)
		}
	}
}

func TestNewTimeCycleErrors(t *testing.T) {
	plan, _ := model.DiskDirect(model.StreamLoad{N: 5, BitRate: units.MBPS}, diskSpec())
	if _, err := NewTimeCycle(0, plan); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewTimeCycle(5, model.DirectPlan{}); err == nil {
		t.Error("zero plan accepted")
	}
}

func TestTimeCycleValidate(t *testing.T) {
	bad := &TimeCycle{Period: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero period accepted")
	}
	bad = &TimeCycle{Period: time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("empty entries accepted")
	}
	bad = &TimeCycle{Period: time.Second, Entries: []Entry{{Stream: 0, IOSize: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero IO size accepted")
	}
}

// The schedule's sustained throughput equals the aggregate stream rate —
// the defining property of time-cycle scheduling.
func TestTimeCycleThroughputMatchesLoad(t *testing.T) {
	load := model.StreamLoad{N: 50, BitRate: units.MBPS}
	plan, _ := model.DiskDirect(load, diskSpec())
	tc, _ := NewTimeCycle(load.N, plan)
	got := float64(tc.Throughput())
	want := float64(load.Aggregate())
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("throughput = %v, want %v", tc.Throughput(), load.Aggregate())
	}
}

func TestBytesPerCycle(t *testing.T) {
	tc := &TimeCycle{Period: time.Second, Entries: []Entry{
		{0, 1 * units.MB}, {1, 2 * units.MB},
	}}
	if got := tc.BytesPerCycle(); got != 3*units.MB {
		t.Errorf("BytesPerCycle = %v", got)
	}
}

func TestCycleIndex(t *testing.T) {
	tc := &TimeCycle{Period: 100 * time.Millisecond, Entries: []Entry{{0, units.MB}}}
	if tc.CycleIndex(0) != 0 || tc.CycleIndex(99*time.Millisecond) != 0 {
		t.Error("cycle 0 wrong")
	}
	if tc.CycleIndex(100*time.Millisecond) != 1 || tc.CycleIndex(250*time.Millisecond) != 2 {
		t.Error("later cycles wrong")
	}
}

func TestAdmissionUpToCapacity(t *testing.T) {
	a := &Admission{Disk: diskSpec(), BitRate: 10 * units.MBPS}
	admitted := 0
	for {
		ok, err := a.TryAdmit()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		admitted++
		if admitted > 1000 {
			t.Fatal("admission never saturated")
		}
	}
	if admitted != 29 {
		t.Errorf("admitted %d HDTV streams, want 29 (bandwidth bound)", admitted)
	}
	if a.Admitted() != 29 {
		t.Errorf("Admitted() = %d", a.Admitted())
	}
}

func TestAdmissionDRAMBound(t *testing.T) {
	// A tiny DRAM budget binds before disk bandwidth does.
	a := &Admission{Disk: diskSpec(), BitRate: 10 * units.MBPS, DRAMCap: 10 * units.MB}
	n := 0
	for {
		ok, _ := a.TryAdmit()
		if !ok {
			break
		}
		n++
	}
	if n == 0 || n >= 29 {
		t.Errorf("DRAM-bound admission = %d, want within (0, 29)", n)
	}
	plan, _ := model.DiskDirect(model.StreamLoad{N: n, BitRate: 10 * units.MBPS}, diskSpec())
	if plan.TotalDRAM > 10*units.MB {
		t.Errorf("admitted plan uses %v > 10MB cap", plan.TotalDRAM)
	}
}

func TestAdmissionRelease(t *testing.T) {
	a := &Admission{Disk: diskSpec(), BitRate: 10 * units.MBPS}
	for i := 0; i < 29; i++ {
		if ok, _ := a.TryAdmit(); !ok {
			t.Fatalf("admission %d failed", i)
		}
	}
	if ok, _ := a.TryAdmit(); ok {
		t.Fatal("30th stream admitted")
	}
	a.Release()
	if ok, _ := a.TryAdmit(); !ok {
		t.Fatal("re-admission after release failed")
	}
	// Release never goes negative.
	empty := &Admission{Disk: diskSpec(), BitRate: units.MBPS}
	empty.Release()
	if empty.Admitted() != 0 {
		t.Error("Release underflowed")
	}
}

func TestEDFOrdering(t *testing.T) {
	var e EDF
	e.Push(&Deadline{Stream: 2, Deadline: 30 * time.Millisecond})
	e.Push(&Deadline{Stream: 0, Deadline: 10 * time.Millisecond})
	e.Push(&Deadline{Stream: 1, Deadline: 20 * time.Millisecond})
	if e.Len() != 3 {
		t.Fatalf("len = %d", e.Len())
	}
	if p := e.Peek(); p.Stream != 0 {
		t.Errorf("peek = stream %d, want 0", p.Stream)
	}
	for want := 0; want < 3; want++ {
		d := e.Pop()
		if d.Stream != want {
			t.Fatalf("pop order wrong: got stream %d, want %d", d.Stream, want)
		}
	}
	if e.Pop() != nil || e.Peek() != nil {
		t.Error("empty queue should return nil")
	}
}

// Property: EDF pops deadlines in nondecreasing order regardless of push
// order.
func TestEDFSortedProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		var e EDF
		for i, d := range ds {
			e.Push(&Deadline{Stream: i, Deadline: time.Duration(d) * time.Millisecond})
		}
		last := time.Duration(-1)
		for e.Len() > 0 {
			d := e.Pop()
			if d.Deadline < last {
				return false
			}
			last = d.Deadline
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixedAdmissionHeterogeneousRates(t *testing.T) {
	a := &MixedAdmission{Disk: diskSpec()}
	// Admit a mix until the disk saturates: 20 HDTV + DivX filler.
	for i := 0; i < 20; i++ {
		ok, err := a.TryAdmit(10 * units.MBPS)
		if err != nil || !ok {
			t.Fatalf("HDTV admission %d failed", i)
		}
	}
	divx := 0
	for {
		ok, err := a.TryAdmit(100 * units.KBPS)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		divx++
		if divx > 10000 {
			t.Fatal("admission never saturated")
		}
	}
	// 20x10MB/s = 200MB/s leaves <100MB/s: DivX count is bounded by it.
	if divx == 0 || divx >= 1000 {
		t.Errorf("divx admitted = %d, want within (0, 1000)", divx)
	}
	if got := a.Aggregate(); float64(got) >= 300e6 {
		t.Errorf("aggregate %v not below disk rate", got)
	}
}

func TestMixedAdmissionRelease(t *testing.T) {
	a := &MixedAdmission{Disk: diskSpec()}
	if ok, _ := a.TryAdmit(10 * units.MBPS); !ok {
		t.Fatal("admission failed")
	}
	if !a.Release(10 * units.MBPS) {
		t.Fatal("release failed")
	}
	if a.Release(10 * units.MBPS) {
		t.Fatal("double release succeeded")
	}
	if a.Admitted() != 0 {
		t.Errorf("admitted = %d", a.Admitted())
	}
}

func TestMixedAdmissionRejectsBadRate(t *testing.T) {
	a := &MixedAdmission{Disk: diskSpec()}
	if _, err := a.TryAdmit(0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestMixedAdmissionDRAMBound(t *testing.T) {
	a := &MixedAdmission{Disk: diskSpec(), DRAMCap: 10 * units.MB}
	n := 0
	for {
		ok, _ := a.TryAdmit(1 * units.MBPS)
		if !ok {
			break
		}
		n++
	}
	if n == 0 || n > 299 {
		t.Errorf("DRAM-capped admission = %d", n)
	}
}
