// Package schedule implements the IO-scheduling layer of the streaming
// server: time-cycle (QPMS-style) schedules in which every stream receives
// exactly one IO per cycle, an admission controller backed by the
// analytical model, and an EDF scheduler as the baseline the literature
// compares against (paper §6).
package schedule

import (
	"container/heap"
	"fmt"
	"time"

	"memstream/internal/model"
	"memstream/internal/units"
)

// Entry is one stream's slot within a time cycle.
type Entry struct {
	Stream int
	IOSize units.Bytes
}

// TimeCycle is a fixed-order, fixed-period IO schedule: in each period
// every entry receives exactly one IO, always in the same order (paper §3:
// "the IO scheduler services the streams in the same order in each
// time-cycle").
type TimeCycle struct {
	Period  time.Duration
	Entries []Entry
}

// NewTimeCycle builds a schedule from a feasible direct plan: N equal
// slots of the plan's IO size at the plan's period.
func NewTimeCycle(n int, plan model.DirectPlan) (*TimeCycle, error) {
	if n <= 0 {
		return nil, fmt.Errorf("schedule: need at least one stream")
	}
	if plan.Cycle <= 0 || plan.IOSize <= 0 {
		return nil, fmt.Errorf("schedule: degenerate plan %+v", plan)
	}
	tc := &TimeCycle{Period: plan.Cycle, Entries: make([]Entry, n)}
	for i := range tc.Entries {
		tc.Entries[i] = Entry{Stream: i, IOSize: plan.IOSize}
	}
	return tc, nil
}

// Validate checks internal consistency.
func (tc *TimeCycle) Validate() error {
	if tc.Period <= 0 {
		return fmt.Errorf("schedule: non-positive period %v", tc.Period)
	}
	if len(tc.Entries) == 0 {
		return fmt.Errorf("schedule: empty cycle")
	}
	for _, e := range tc.Entries {
		if e.IOSize <= 0 {
			return fmt.Errorf("schedule: stream %d has non-positive IO size", e.Stream)
		}
	}
	return nil
}

// BytesPerCycle returns the data moved in one period.
func (tc *TimeCycle) BytesPerCycle() units.Bytes {
	var s units.Bytes
	for _, e := range tc.Entries {
		s += e.IOSize
	}
	return s
}

// Throughput returns the schedule's sustained data rate.
func (tc *TimeCycle) Throughput() units.ByteRate {
	return units.RateOf(tc.BytesPerCycle(), tc.Period)
}

// CycleIndex returns which cycle contains time t.
func (tc *TimeCycle) CycleIndex(t time.Duration) int64 {
	return int64(t / tc.Period)
}

// Admission is an admission controller: it tracks the committed stream
// population and admits a new stream only if the model still finds a
// feasible schedule within the DRAM budget.
type Admission struct {
	Disk    model.DeviceSpec
	BitRate units.ByteRate
	DRAMCap units.Bytes // 0 = unlimited

	admitted int
}

// Admitted returns the committed stream count.
func (a *Admission) Admitted() int { return a.admitted }

// TryAdmit attempts to admit one more stream; it reports whether the new
// population remains feasible, and commits it if so.
func (a *Admission) TryAdmit() (bool, error) {
	n := a.admitted + 1
	plan, err := model.DiskDirect(model.StreamLoad{N: n, BitRate: a.BitRate}, a.Disk)
	if err != nil {
		return false, nil // infeasible, not an error of the controller
	}
	if a.DRAMCap > 0 && plan.TotalDRAM > a.DRAMCap {
		return false, nil
	}
	a.admitted = n
	return true, nil
}

// Release removes one stream from the committed population.
func (a *Admission) Release() {
	if a.admitted > 0 {
		a.admitted--
	}
}

// Deadline is a pending request with a completion deadline, for EDF.
type Deadline struct {
	Stream   int
	IOSize   units.Bytes
	Deadline time.Duration
	index    int
}

// EDF is an earliest-deadline-first queue, the baseline real-time disk
// scheduler (Daigle & Strosnider) contrasted with time-cycle scheduling.
type EDF struct {
	h edfHeap
}

type edfHeap []*Deadline

func (h edfHeap) Len() int           { return len(h) }
func (h edfHeap) Less(i, j int) bool { return h[i].Deadline < h[j].Deadline }
func (h edfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index, h[j].index = i, j }
func (h *edfHeap) Push(x any)        { d := x.(*Deadline); d.index = len(*h); *h = append(*h, d) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return d
}

// Push queues a request.
func (e *EDF) Push(d *Deadline) { heap.Push(&e.h, d) }

// Pop removes and returns the request with the earliest deadline, or nil
// when empty.
func (e *EDF) Pop() *Deadline {
	if len(e.h) == 0 {
		return nil
	}
	return heap.Pop(&e.h).(*Deadline)
}

// Peek returns the earliest-deadline request without removing it.
func (e *EDF) Peek() *Deadline {
	if len(e.h) == 0 {
		return nil
	}
	return e.h[0]
}

// Len reports queued requests.
func (e *EDF) Len() int { return len(e.h) }
