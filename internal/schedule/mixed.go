package schedule

import (
	"fmt"

	"memstream/internal/model"
	"memstream/internal/units"
)

// MixedAdmission is an admission controller for heterogeneous stream
// rates. The paper's model takes (N, B̄) with B̄ the average bit-rate of
// the streams serviced; this controller maintains that average over the
// currently admitted population and re-checks Theorem 1 feasibility for
// every candidate.
type MixedAdmission struct {
	Disk    model.DeviceSpec
	DRAMCap units.Bytes // 0 = unlimited

	rates []units.ByteRate
}

// Admitted returns the committed stream count.
func (a *MixedAdmission) Admitted() int { return len(a.rates) }

// Aggregate returns the admitted population's total bandwidth.
func (a *MixedAdmission) Aggregate() units.ByteRate {
	var sum float64
	for _, r := range a.rates {
		sum += float64(r)
	}
	return units.ByteRate(sum)
}

// feasible evaluates the plan for the given population.
func feasibleMixed(disk model.DeviceSpec, dramCap units.Bytes, rates []units.ByteRate) bool {
	n := len(rates)
	if n == 0 {
		return true
	}
	var sum float64
	for _, r := range rates {
		sum += float64(r)
	}
	load := model.StreamLoad{N: n, BitRate: units.ByteRate(sum / float64(n))}
	plan, err := model.DiskDirect(load, disk)
	if err != nil {
		return false
	}
	return dramCap == 0 || plan.TotalDRAM <= dramCap
}

// TryAdmit attempts to admit a stream at the given rate, committing it if
// the resulting population remains feasible.
func (a *MixedAdmission) TryAdmit(rate units.ByteRate) (bool, error) {
	if rate <= 0 {
		return false, fmt.Errorf("schedule: non-positive rate %v", rate)
	}
	candidate := append(append([]units.ByteRate{}, a.rates...), rate)
	if !feasibleMixed(a.Disk, a.DRAMCap, candidate) {
		return false, nil
	}
	a.rates = candidate
	return true, nil
}

// Release removes one admitted stream of the given rate. It reports
// whether such a stream was present.
func (a *MixedAdmission) Release(rate units.ByteRate) bool {
	for i, r := range a.rates {
		if r == rate {
			a.rates = append(a.rates[:i], a.rates[i+1:]...)
			return true
		}
	}
	return false
}

// ReleaseAll removes every admitted stream and returns how many were
// released. A serving front-end that force-closes its remaining
// connections after a drain deadline uses this to guarantee no admission
// capacity stays pinned by connections that never unwound normally.
func (a *MixedAdmission) ReleaseAll() int {
	n := len(a.rates)
	a.rates = a.rates[:0]
	return n
}
