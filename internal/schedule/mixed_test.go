package schedule

import (
	"testing"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/units"
)

func testAdmission(dram units.Bytes) *MixedAdmission {
	p := disk.FutureDisk()
	return &MixedAdmission{
		Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
		DRAMCap: dram,
	}
}

func TestMixedAdmitRelease(t *testing.T) {
	a := testAdmission(1 * units.GB)
	ok, err := a.TryAdmit(100 * units.KBPS)
	if err != nil || !ok {
		t.Fatalf("TryAdmit = %v, %v", ok, err)
	}
	ok, err = a.TryAdmit(200 * units.KBPS)
	if err != nil || !ok {
		t.Fatalf("TryAdmit = %v, %v", ok, err)
	}
	if got := a.Admitted(); got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
	if got := a.Aggregate(); got != 300*units.KBPS {
		t.Errorf("Aggregate = %v, want 300KB/s", got)
	}
	if !a.Release(100 * units.KBPS) {
		t.Error("Release of an admitted rate returned false")
	}
	if a.Release(100 * units.KBPS) {
		t.Error("second Release of the same rate returned true")
	}
	if got := a.Admitted(); got != 1 {
		t.Errorf("Admitted = %d after release, want 1", got)
	}
}

func TestMixedRejectsNonPositiveRate(t *testing.T) {
	a := testAdmission(1 * units.GB)
	if _, err := a.TryAdmit(0); err == nil {
		t.Error("TryAdmit(0) did not error")
	}
	if _, err := a.TryAdmit(-1 * units.KBPS); err == nil {
		t.Error("TryAdmit(-1KB/s) did not error")
	}
}

func TestMixedRefusesInfeasible(t *testing.T) {
	a := testAdmission(1 * units.MB) // tiny DRAM budget
	admitted := 0
	for i := 0; i < 100; i++ {
		ok, err := a.TryAdmit(10 * units.MBPS)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		admitted++
	}
	if admitted == 0 || admitted == 100 {
		t.Fatalf("admitted %d heavy streams under 1MB DRAM; want a small positive count", admitted)
	}
	// The refused admission must not have mutated the population.
	if got := a.Admitted(); got != admitted {
		t.Errorf("Admitted = %d after refusal, want %d", got, admitted)
	}
}

func TestMixedReleaseAll(t *testing.T) {
	a := testAdmission(1 * units.GB)
	for i := 0; i < 5; i++ {
		if ok, err := a.TryAdmit(100 * units.KBPS); err != nil || !ok {
			t.Fatalf("admit %d failed", i)
		}
	}
	if got := a.ReleaseAll(); got != 5 {
		t.Errorf("ReleaseAll = %d, want 5", got)
	}
	if got := a.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after ReleaseAll, want 0", got)
	}
	if got := a.Aggregate(); got != 0 {
		t.Errorf("Aggregate = %v after ReleaseAll, want 0", got)
	}
	if got := a.ReleaseAll(); got != 0 {
		t.Errorf("ReleaseAll on empty population = %d, want 0", got)
	}
	// The controller is reusable after a full drain.
	if ok, err := a.TryAdmit(100 * units.KBPS); err != nil || !ok {
		t.Error("TryAdmit failed after ReleaseAll")
	}
}
