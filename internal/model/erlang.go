package model

import "fmt"

// ErlangB returns the Erlang-B blocking probability for offered load a
// (erlangs) on n servers, via the standard numerically stable recurrence
//
//	B(0) = 1;  B(k) = a·B(k−1) / (k + a·B(k−1))
//
// In this library "servers" are admission slots: the capacity N a plan
// supports. The dynamics experiment's simulated blocking converges to
// this closed form, tying the paper's throughput results to the
// teletraffic capacity view.
func ErlangB(a float64, n int) (float64, error) {
	if a < 0 {
		return 0, fmt.Errorf("model: negative offered load %g", a)
	}
	if n < 0 {
		return 0, fmt.Errorf("model: negative server count %d", n)
	}
	b := 1.0
	for k := 1; k <= n; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b, nil
}

// ErlangCapacity returns the fewest admission slots keeping Erlang-B
// blocking at or below target for offered load a. It returns an error for
// unattainable targets.
func ErlangCapacity(a, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("model: blocking target %g outside (0,1)", target)
	}
	if a < 0 {
		return 0, fmt.Errorf("model: negative offered load %g", a)
	}
	b := 1.0
	for n := 1; n <= 1<<22; n++ {
		b = a * b / (float64(n) + a*b)
		if b <= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("model: no capacity below 2^22 meets target %g at load %g", target, a)
}
