package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/units"
)

// Paper-default device specs (Table 3, §5 conventions): disk pays average
// seek + rotation; MEMS pays its maximum positioning latency.
func futureDiskSpec() DeviceSpec {
	return DeviceSpec{Rate: 300 * units.MBPS, Latency: units.Milliseconds(4.3)}
}

func g3Spec() DeviceSpec {
	return DeviceSpec{Rate: 320 * units.MBPS, Latency: units.Milliseconds(0.59)}
}

func TestStreamLoadValidate(t *testing.T) {
	if err := (StreamLoad{N: 10, BitRate: units.MBPS}).Validate(); err != nil {
		t.Error(err)
	}
	for _, l := range []StreamLoad{{0, units.MBPS}, {-1, units.MBPS}, {5, 0}, {5, -1}} {
		if err := l.Validate(); err == nil {
			t.Errorf("load %+v accepted", l)
		}
	}
}

func TestDeviceSpecValidate(t *testing.T) {
	if err := (DeviceSpec{Rate: 1, Latency: 0}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (DeviceSpec{Rate: 0, Latency: 0}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (DeviceSpec{Rate: 1, Latency: -time.Second}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestDiskDirectClosedForm(t *testing.T) {
	// Hand computation: N=100, B̄=1MB/s, R=300MB/s, L̄=4.3ms.
	// T = 100·0.0043·3e8/(3e8−1e8) = 0.645s; S = B̄·T = 645KB.
	load := StreamLoad{N: 100, BitRate: 1 * units.MBPS}
	plan, err := DiskDirect(load, futureDiskSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.Cycle, units.Seconds(0.645); !durClose(got, want, 1e-9) {
		t.Errorf("cycle = %v, want %v", got, want)
	}
	if got, want := float64(plan.PerStream), 645e3; math.Abs(got-want) > 1 {
		t.Errorf("S = %v, want 645KB", plan.PerStream)
	}
	if got, want := float64(plan.TotalDRAM), 64.5e6; math.Abs(got-want) > 100 {
		t.Errorf("total = %v, want 64.5MB", plan.TotalDRAM)
	}
	if plan.IOSize != plan.PerStream {
		t.Error("IO size should equal per-stream buffer in the direct plan")
	}
}

func durClose(a, b time.Duration, rel float64) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d <= rel*float64(b)+1e3 // 1µs absolute slack
}

func TestDiskDirectInfeasibleAtBandwidth(t *testing.T) {
	// 30 HDTV streams at 10MB/s exactly saturate a 300MB/s disk.
	load := StreamLoad{N: 30, BitRate: 10 * units.MBPS}
	_, err := DiskDirect(load, futureDiskSpec())
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// 29 streams are feasible (the paper's HDTV case).
	if _, err := DiskDirect(StreamLoad{N: 29, BitRate: 10 * units.MBPS}, futureDiskSpec()); err != nil {
		t.Fatalf("29 HDTV streams should be feasible: %v", err)
	}
}

func TestPaperHDTVDRAMRequirement(t *testing.T) {
	// Paper §5.1.3: "the DRAM requirement for the 10MB/s bit-rate range is
	// approximately 1.5GB" for the maximum stream count without MEMS.
	n := MaxStreamsDirect(10*units.MBPS, futureDiskSpec(), 0)
	if n != 29 {
		t.Fatalf("max HDTV streams = %d, want 29", n)
	}
	plan, err := DiskDirect(StreamLoad{N: n, BitRate: 10 * units.MBPS}, futureDiskSpec())
	if err != nil {
		t.Fatal(err)
	}
	got := float64(plan.TotalDRAM)
	if got < 0.8e9 || got > 2e9 {
		t.Errorf("HDTV DRAM requirement = %v, paper says ≈1.5GB", plan.TotalDRAM)
	}
}

func TestPaperLowBitRateDRAMRequirement(t *testing.T) {
	// Paper Fig 6(a): "the DRAM requirement for a fully utilized disk
	// ranges from 1GB for 10MB/s streams to 1TB for 10KB/s streams."
	n := MaxStreamsDirect(10*units.KBPS, futureDiskSpec(), 0)
	if n < 29000 || n > 30000 {
		t.Fatalf("max mp3 streams = %d, want ≈29999", n)
	}
	plan, err := DiskDirect(StreamLoad{N: n - 500, BitRate: 10 * units.KBPS}, futureDiskSpec())
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalDRAM < 100*units.GB {
		t.Errorf("near-full-utilization mp3 DRAM = %v, paper says O(1TB)", plan.TotalDRAM)
	}
}

func TestMEMSDirectUsesMEMSParameters(t *testing.T) {
	load := StreamLoad{N: 100, BitRate: 1 * units.MBPS}
	mp, err := MEMSDirect(load, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	dp, _ := DiskDirect(load, futureDiskSpec())
	// MEMS latency is ~7x lower; the buffer should be several times smaller.
	if float64(mp.PerStream) > 0.3*float64(dp.PerStream) {
		t.Errorf("MEMS buffer %v not well below disk buffer %v", mp.PerStream, dp.PerStream)
	}
}

func TestBufferPlanReducesDRAMByOrderOfMagnitude(t *testing.T) {
	// Fig 6: with a 2-device G3 buffer, DRAM drops by ~an order of
	// magnitude for low/medium bit-rates.
	for _, br := range []units.ByteRate{10 * units.KBPS, 100 * units.KBPS, 1 * units.MBPS} {
		n := MaxStreamsDirect(br, futureDiskSpec(), 0) / 2 // mid-load point
		if n < 1 {
			t.Fatalf("no feasible streams at %v", br)
		}
		load := StreamLoad{N: n, BitRate: br}
		direct, err := DiskDirect(load, futureDiskSpec())
		if err != nil {
			t.Fatal(err)
		}
		cfg := BufferConfig{
			Load: load, Disk: futureDiskSpec(), Tier: g3Spec(),
			K: 2, SizePerDevice: 10 * units.GB,
		}
		k, buffered, err := MinFeasibleK(cfg, 2, 64)
		if err != nil {
			t.Fatalf("%v at %v", err, br)
		}
		ratio := float64(direct.TotalDRAM) / float64(buffered.TotalDRAM)
		if ratio < 4 {
			t.Errorf("bit-rate %v (k=%d): DRAM reduction %.1fx, want ≥4x", br, k, ratio)
		}
	}
}

func TestBufferPlanHandChecked(t *testing.T) {
	// Small hand-checkable instance: N=10, B̄=1MB/s, k=2, Size=10GB.
	cfg := BufferConfig{
		Load:          StreamLoad{N: 10, BitRate: 1 * units.MBPS},
		Disk:          futureDiskSpec(),
		Tier:          g3Spec(),
		K:             2,
		SizePerDevice: 10 * units.GB,
	}
	plan, err := BufferPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// C = 10·0.00059·320e6 / (640e6 − 2·11·1e6) = 1.888e6/6.18e8 s
	wantC := 10 * 0.00059 * 320e6 / (640e6 - 22e6)
	if !durClose(plan.MinMEMSCycle, units.Seconds(wantC), 1e-9) {
		t.Errorf("C = %v, want %vs", plan.MinMEMSCycle, wantC)
	}
	// T_disk = k·Size/(2NB̄) = 20e9/2e7 = 1000s.
	if !durClose(plan.DiskCycle, units.Seconds(1000), 1e-9) {
		t.Errorf("T_disk = %v, want 1000s", plan.DiskCycle)
	}
	// S = B̄·C·(1+2/10)·T/(T−C).
	td := 1000.0
	wantS := 1e6 * wantC * 1.2 * td / (td - wantC)
	if math.Abs(float64(plan.PerStreamDRAM)-wantS) > 1 {
		t.Errorf("S = %v, want %v", plan.PerStreamDRAM, units.Bytes(wantS))
	}
	if plan.M < 1 || plan.M >= 10 {
		t.Errorf("M = %d out of range", plan.M)
	}
	// Staged data fits the bank.
	if plan.MEMSBufferUse > 20*units.GB+1 {
		t.Errorf("staged %v exceeds bank capacity", plan.MEMSBufferUse)
	}
}

func TestBufferPlanSingleStreamDegenerate(t *testing.T) {
	cfg := BufferConfig{
		Load: StreamLoad{N: 1, BitRate: 1 * units.MBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(), K: 2, SizePerDevice: 10 * units.GB,
	}
	plan, err := BufferPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.M != 1 {
		t.Errorf("M = %d, want 1 for N=1", plan.M)
	}
}

func TestBufferPlanInfeasibleBandwidth(t *testing.T) {
	// A single G3 device (320MB/s) cannot buffer a fully loaded 300MB/s
	// disk: it would need 2x the disk's streaming bandwidth (paper §3.1).
	cfg := BufferConfig{
		Load: StreamLoad{N: 250, BitRate: 1 * units.MBPS}, // 250MB/s of streams
		Disk: futureDiskSpec(), Tier: g3Spec(), K: 1, SizePerDevice: 10 * units.GB,
	}
	_, err := BufferPlan(cfg)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Two devices (640MB/s) suffice.
	cfg.K = 2
	if _, err := BufferPlan(cfg); err != nil {
		t.Fatalf("k=2 should be feasible: %v", err)
	}
}

func TestBufferPlanCapacityBound(t *testing.T) {
	// Shrink the devices until Eq 7 fails.
	cfg := BufferConfig{
		Load: StreamLoad{N: 1000, BitRate: 1 * units.MBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(), K: 2, SizePerDevice: 10 * units.MB,
	}
	_, err := BufferPlan(cfg)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible (capacity)", err)
	}
}

func TestMinFeasibleK(t *testing.T) {
	cfg := BufferConfig{
		Load: StreamLoad{N: 250, BitRate: 1 * units.MBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(), SizePerDevice: 10 * units.GB,
	}
	k, _, err := MinFeasibleK(cfg, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("k = %d, want 2", k)
	}
	// Huge load: more devices needed.
	cfg.Load = StreamLoad{N: 25000, BitRate: 10 * units.KBPS} // 2(N+k-1)B ≈ 500MB/s
	k2, _, err := MinFeasibleK(cfg, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k2 < 2 {
		t.Errorf("k = %d", k2)
	}
	// Impossible load.
	cfg.Load = StreamLoad{N: 400, BitRate: 1 * units.MBPS} // disk itself saturated
	if _, _, err := MinFeasibleK(cfg, 2, 64); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// Corollary 2: for N ≫ k, a k-device bank behaves as one device with k×
// throughput and latency/k — the buffered plan's C matches the plan built
// on the equivalent single device.
func TestCorollary2Property(t *testing.T) {
	f := func(kk, nn uint8) bool {
		k := int(kk%7) + 2
		n := (int(nn)+10)*100*k + k // N divisible by k, large
		cfg := BufferConfig{
			Load: StreamLoad{N: n, BitRate: 10 * units.KBPS},
			Disk: futureDiskSpec(), Tier: g3Spec(), K: k,
			SizePerDevice: 10 * units.GB,
		}
		plan, err := BufferPlan(cfg)
		if err != nil {
			return true // infeasible points are outside the corollary
		}
		eq := EffectiveBankSpec(g3Spec(), k, Replicated) // kR, L/k
		cfgEq := cfg
		cfgEq.K = 1
		cfgEq.Tier = eq
		cfgEq.SizePerDevice = cfg.SizePerDevice.Mul(float64(k))
		planEq, err := BufferPlan(cfgEq)
		if err != nil {
			return true
		}
		rel := math.Abs(float64(plan.MinMEMSCycle-planEq.MinMEMSCycle)) / float64(planEq.MinMEMSCycle)
		return rel < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the per-stream DRAM buffer grows with N (more streams → longer
// cycles → more staging per stream).
func TestDiskDirectMonotoneInN(t *testing.T) {
	f := func(a, b uint8) bool {
		na, nb := int(a)+1, int(b)+1
		if na > nb {
			na, nb = nb, na
		}
		pa, errA := DiskDirect(StreamLoad{N: na, BitRate: 1 * units.MBPS}, futureDiskSpec())
		pb, errB := DiskDirect(StreamLoad{N: nb, BitRate: 1 * units.MBPS}, futureDiskSpec())
		if errA != nil || errB != nil {
			return true
		}
		return pa.PerStream <= pb.PerStream+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: buffered DRAM never exceeds direct DRAM once the bank is
// feasible at low/medium bit-rates (the paper's design guideline (i)).
func TestBufferedBeatsDirectProperty(t *testing.T) {
	f := func(nn uint16) bool {
		n := int(nn%5000) + 100
		load := StreamLoad{N: n, BitRate: 100 * units.KBPS}
		direct, err := DiskDirect(load, futureDiskSpec())
		if err != nil {
			return true
		}
		cfg := BufferConfig{Load: load, Disk: futureDiskSpec(), Tier: g3Spec(),
			SizePerDevice: 10 * units.GB}
		_, plan, err := MinFeasibleK(cfg, 2, 64)
		if err != nil {
			return true
		}
		return plan.TotalDRAM <= direct.TotalDRAM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaxStreamsDirectWithDRAMCap(t *testing.T) {
	// With a 5GB cap (paper §5.1.3), mp3 streams are DRAM-limited well
	// below the 30k bandwidth limit.
	n := MaxStreamsDirect(10*units.KBPS, futureDiskSpec(), 5*units.GB)
	if n <= 0 || n >= 29999 {
		t.Fatalf("capped max streams = %d", n)
	}
	plan, _ := DiskDirect(StreamLoad{N: n, BitRate: 10 * units.KBPS}, futureDiskSpec())
	if plan.TotalDRAM > 5*units.GB {
		t.Errorf("plan at max N uses %v > cap", plan.TotalDRAM)
	}
	next, err := DiskDirect(StreamLoad{N: n + 1, BitRate: 10 * units.KBPS}, futureDiskSpec())
	if err == nil && next.TotalDRAM <= 5*units.GB {
		t.Error("max N is not maximal")
	}
}

func TestMaxStreamsDirectInfeasible(t *testing.T) {
	// Bit-rate above the disk rate: no streams at all.
	if n := MaxStreamsDirect(400*units.MBPS, futureDiskSpec(), 0); n != 0 {
		t.Errorf("n = %d, want 0", n)
	}
}

func TestMaxStreamsBuffered(t *testing.T) {
	cfg := BufferConfig{
		Load: StreamLoad{BitRate: 100 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(), K: 2, SizePerDevice: 10 * units.GB,
	}
	n := MaxStreamsBuffered(cfg, 1*units.GB)
	if n <= 0 {
		t.Fatal("no buffered streams feasible")
	}
	direct := MaxStreamsDirect(100*units.KBPS, futureDiskSpec(), 1*units.GB)
	if n <= direct {
		t.Errorf("buffered max (%d) should exceed direct max (%d) at equal DRAM", n, direct)
	}
}

func TestStreamLoadAggregate(t *testing.T) {
	l := StreamLoad{N: 100, BitRate: 1 * units.MBPS}
	if got := l.Aggregate(); got != 100*units.MBPS {
		t.Errorf("Aggregate = %v, want 100MB/s", got)
	}
}

func TestBufferConfigValidate(t *testing.T) {
	good := BufferConfig{
		Load: StreamLoad{N: 10, BitRate: units.MBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(), K: 2, SizePerDevice: 10 * units.GB,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*BufferConfig){
		func(c *BufferConfig) { c.Load.N = 0 },
		func(c *BufferConfig) { c.Disk.Rate = 0 },
		func(c *BufferConfig) { c.Tier.Rate = 0 },
		func(c *BufferConfig) { c.K = 0 },
		func(c *BufferConfig) { c.SizePerDevice = 0 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDiskDirectValidation(t *testing.T) {
	if _, err := DiskDirect(StreamLoad{N: 0, BitRate: units.MBPS}, futureDiskSpec()); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := DiskDirect(StreamLoad{N: 5, BitRate: units.MBPS}, DeviceSpec{}); err == nil {
		t.Error("zero device accepted")
	}
}

func TestCostFunctionsRejectBadInputs(t *testing.T) {
	bad := CostModel{} // zero prices
	load := StreamLoad{N: 10, BitRate: units.MBPS}
	if _, err := CostWithoutMEMS(load, futureDiskSpec(), bad); err == nil {
		t.Error("bad costs accepted by CostWithoutMEMS")
	}
	cfg := BufferConfig{Load: load, Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 2, SizePerDevice: 10 * units.GB}
	if _, err := CostWithBuffer(cfg, bad); err == nil {
		t.Error("bad costs accepted by CostWithBuffer")
	}
	ccfg := CacheConfig{Load: load, Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Striped, SizePerDevice: 10 * units.GB,
		ContentSize: units.TB, X: 10, Y: 90}
	if _, err := CostWithCache(ccfg, bad); err == nil {
		t.Error("bad costs accepted by CostWithCache")
	}
	// Infeasible loads propagate errors too.
	heavy := StreamLoad{N: 1000, BitRate: units.MBPS}
	if _, err := CostWithoutMEMS(heavy, futureDiskSpec(), Table3Costs()); err == nil {
		t.Error("infeasible load accepted by CostWithoutMEMS")
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{
		Load: StreamLoad{N: 10, BitRate: units.MBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: units.TB,
		X: 10, Y: 90,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*CacheConfig){
		func(c *CacheConfig) { c.Load.BitRate = 0 },
		func(c *CacheConfig) { c.Disk.Latency = -time.Second },
		func(c *CacheConfig) { c.Tier.Rate = -1 },
		func(c *CacheConfig) { c.K = -1 },
		func(c *CacheConfig) { c.SizePerDevice = 0 },
		func(c *CacheConfig) { c.ContentSize = 0 },
		func(c *CacheConfig) { c.X = 200 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPolicyStringUnknown(t *testing.T) {
	if got := CachePolicy(9).String(); got != "policy(9)" {
		t.Errorf("unknown policy = %q", got)
	}
}

func TestCapDiskCycle(t *testing.T) {
	// The hand-checked Theorem 2 instance: T_disk maximizes to the
	// capacity bound, k·Size/(2NB̄) = 1000s.
	cfg := BufferConfig{
		Load:          StreamLoad{N: 10, BitRate: 1 * units.MBPS},
		Disk:          futureDiskSpec(),
		Tier:          g3Spec(),
		K:             2,
		SizePerDevice: 10 * units.GB,
	}
	fresh := func() BufferedPlan {
		plan, err := BufferPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	orig := fresh()
	if !durClose(orig.DiskCycle, units.Seconds(1000), 1e-9) {
		t.Fatalf("T_disk = %v, want 1000s", orig.DiskCycle)
	}

	// A limit above the planned cycle leaves every field untouched.
	p := fresh()
	p.CapDiskCycle(2000*time.Second, cfg.Load)
	if p != orig {
		t.Errorf("cap above plan mutated it:\n got %+v\nwant %+v", p, orig)
	}

	// A limit below recomputes the dependent quantities for the shorter
	// cycle: S_disk-mems = B̄·T and T_mems = T·M/N.
	p = fresh()
	p.CapDiskCycle(20*time.Second, cfg.Load)
	if p.DiskCycle != 20*time.Second {
		t.Errorf("T_disk = %v, want 20s", p.DiskCycle)
	}
	if got, want := float64(p.DiskIOSize), 20e6; math.Abs(got-want) > 1 {
		t.Errorf("DiskIOSize = %v, want 20MB", p.DiskIOSize)
	}
	if want := time.Duration(float64(20*time.Second) * float64(p.M) / 10); p.MEMSCycle != want {
		t.Errorf("MEMSCycle = %v, want %v", p.MEMSCycle, want)
	}
	if p.MEMSCycle < p.MinMEMSCycle {
		t.Errorf("MEMSCycle %v below the bandwidth floor %v", p.MEMSCycle, p.MinMEMSCycle)
	}
	if p.M != orig.M || p.MinMEMSCycle != orig.MinMEMSCycle {
		t.Errorf("cap changed M or C: %+v", p)
	}

	// A cap so tight that T·M/N lands under C clamps to the floor.
	p = fresh()
	p.CapDiskCycle(time.Millisecond, cfg.Load)
	if p.MEMSCycle != p.MinMEMSCycle {
		t.Errorf("MEMSCycle = %v, want clamped to C = %v", p.MEMSCycle, p.MinMEMSCycle)
	}
}
