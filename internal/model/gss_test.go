package model

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/units"
)

func minSeek() time.Duration { return units.Milliseconds(0.3 + 1.5) } // track seek + rotation

func TestSweepLatency(t *testing.T) {
	avg, min := units.Milliseconds(4.3), minSeek()
	if got := SweepLatency(avg, min, 1); got != avg {
		t.Errorf("batch 1 = %v, want avg", got)
	}
	big := SweepLatency(avg, min, 1000)
	if big < min || big > avg {
		t.Errorf("batch 1000 = %v outside [min, avg]", big)
	}
	if d := big - min; d > units.Milliseconds(0.2) {
		t.Errorf("large batches should approach min: got %v", big)
	}
	// Monotone decreasing in batch size.
	prev := avg
	for _, b := range []int{2, 4, 16, 64, 256} {
		cur := SweepLatency(avg, min, b)
		if cur > prev {
			t.Errorf("SweepLatency not monotone at batch %d", b)
		}
		prev = cur
	}
}

func TestGSSDegenerateCases(t *testing.T) {
	load := StreamLoad{N: 100, BitRate: 1 * units.MBPS}
	d := futureDiskSpec()

	// g = N: every stream in its own group — per-IO latency is the full
	// random-access average, buffer factor (1 + 1/N).
	rr, err := GSS(load, d, minSeek(), load.N)
	if err != nil {
		t.Fatal(err)
	}
	th1, _ := DiskDirect(load, d)
	if rr.Cycle != th1.Cycle {
		t.Errorf("g=N cycle %v != Theorem 1 cycle %v", rr.Cycle, th1.Cycle)
	}
	// g = 1: one big sweep — shortest cycle, biggest buffer factor (2x).
	scan, err := GSS(load, d, minSeek(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Cycle >= rr.Cycle {
		t.Errorf("g=1 cycle %v not below g=N cycle %v", scan.Cycle, rr.Cycle)
	}
	wantFactor := 2.0
	gotFactor := float64(scan.PerStream) / (float64(load.BitRate) * scan.Cycle.Seconds())
	if gotFactor < wantFactor-1e-9 || gotFactor > wantFactor+1e-9 {
		t.Errorf("g=1 buffer factor = %v, want 2", gotFactor)
	}
}

func TestGSSValidation(t *testing.T) {
	load := StreamLoad{N: 10, BitRate: units.MBPS}
	d := futureDiskSpec()
	if _, err := GSS(load, d, minSeek(), 0); err == nil {
		t.Error("g=0 accepted")
	}
	if _, err := GSS(load, d, minSeek(), 11); err == nil {
		t.Error("g>N accepted")
	}
	if _, err := GSS(load, d, d.Latency+time.Second, 2); err == nil {
		t.Error("min latency above avg accepted")
	}
	if _, err := GSS(StreamLoad{N: 400, BitRate: units.MBPS}, d, minSeek(), 4); !errors.Is(err, ErrInfeasible) {
		t.Error("overload not infeasible")
	}
}

func TestOptimalGSSBeatsBothExtremes(t *testing.T) {
	// The whole point of GSS: an interior g beats both degenerate forms
	// when latency amortization and buffer growth pull against each other.
	load := StreamLoad{N: 500, BitRate: 100 * units.KBPS}
	d := futureDiskSpec()
	best, err := OptimalGSS(load, d, minSeek())
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := GSS(load, d, minSeek(), 1)
	rr, _ := GSS(load, d, minSeek(), load.N)
	if best.TotalDRAM > scan.TotalDRAM || best.TotalDRAM > rr.TotalDRAM {
		t.Errorf("optimal (g=%d, %v) worse than extremes (%v / %v)",
			best.Groups, best.TotalDRAM, scan.TotalDRAM, rr.TotalDRAM)
	}
	if best.Groups <= 1 || best.Groups >= load.N {
		t.Logf("optimal g = %d (boundary optimum is possible but unusual)", best.Groups)
	}
}

func TestGSSRelatesToMEMSBuffering(t *testing.T) {
	// The paper positions MEMS buffering against scheduler-level
	// trade-offs: even the optimal GSS on the bare disk needs far more
	// DRAM than a 2-device MEMS buffer at a medium load.
	load := StreamLoad{N: 1000, BitRate: 100 * units.KBPS}
	d := futureDiskSpec()
	gss, err := OptimalGSS(load, d, minSeek())
	if err != nil {
		t.Fatal(err)
	}
	cfg := BufferConfig{Load: load, Disk: d, Tier: g3Spec(), K: 2, SizePerDevice: 10 * units.GB}
	buffered, err := BufferPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(buffered.TotalDRAM) > 0.5*float64(gss.TotalDRAM) {
		t.Errorf("MEMS buffer (%v) should beat optimal GSS (%v) by >2x",
			buffered.TotalDRAM, gss.TotalDRAM)
	}
}

// Property: the GSS group slot times the group count is the cycle, and
// the buffer factor is exactly (1 + 1/g).
func TestGSSInvariantsProperty(t *testing.T) {
	load := StreamLoad{N: 200, BitRate: 100 * units.KBPS}
	d := futureDiskSpec()
	f := func(gg uint8) bool {
		g := int(gg)%load.N + 1
		p, err := GSS(load, d, minSeek(), g)
		if err != nil {
			return true
		}
		slotOK := p.GroupSlot == p.Cycle/time.Duration(g)
		factor := float64(p.PerStream) / (float64(load.BitRate) * p.Cycle.Seconds())
		want := 1 + 1/float64(g)
		return slotOK && factor > want-1e-9 && factor < want+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
