package model

import (
	"fmt"
	"math"
	"time"

	"memstream/internal/units"
)

// GSSPlan sizes a server under Grouped Sweeping Scheduling (Yu, Chen and
// Kandlur — the paper's citation [25] for the "simple resource trade-off"
// class of schedulers). GSS splits the N streams into g groups; each
// group is serviced once per cycle with a seek-optimized sweep, so the
// scheduler trades buffer space against seek overhead:
//
//   - g = N degenerates to per-stream round-robin (minimum buffer,
//     maximum seeking);
//   - g = 1 degenerates to a full SCAN over all streams (maximum seek
//     amortization, maximum buffer).
//
// A stream serviced at the start of its group's slot in one cycle may be
// serviced at the end of it in the next, so the per-stream buffer is
// S = B̄·T·(1 + 1/g) instead of Theorem 1's B̄·T.
type GSSPlan struct {
	Groups     int
	Cycle      time.Duration // T
	GroupSlot  time.Duration // T/g
	PerStream  units.Bytes   // B̄·T·(1+1/g)
	TotalDRAM  units.Bytes
	SweepBatch int // streams swept together: ⌈N/g⌉
}

// SweepLatency estimates the per-IO positioning cost when b requests are
// serviced in one elevator sweep over a device with random-access latency
// avg and minimum (track-to-track) latency min: consecutive sweep targets
// are ~1/(b+1) of the span apart, and positioning shrinks toward min as
// the batch grows. The interpolation matches the square-root seek law
// used by the device models.
func SweepLatency(avg, min time.Duration, b int) time.Duration {
	if b <= 1 {
		return avg
	}
	frac := math.Sqrt(1 / float64(b+1)) // sqrt law over 1/(b+1) span
	l := float64(min) + (float64(avg)-float64(min))*frac
	return time.Duration(l)
}

// GSS computes the GSS plan for g groups. The cycle satisfies the same
// feasibility recurrence as Theorem 1 but with the batch-dependent sweep
// latency: N·(L̄(⌈N/g⌉) + B̄·T/R) ≤ T.
func GSS(load StreamLoad, dev DeviceSpec, minLatency time.Duration, g int) (GSSPlan, error) {
	if err := load.Validate(); err != nil {
		return GSSPlan{}, err
	}
	if err := dev.Validate(); err != nil {
		return GSSPlan{}, err
	}
	if g < 1 || g > load.N {
		return GSSPlan{}, fmt.Errorf("model: GSS groups g=%d outside [1, N=%d]", g, load.N)
	}
	if minLatency < 0 || minLatency > dev.Latency {
		return GSSPlan{}, fmt.Errorf("model: GSS minimum latency %v outside [0, %v]",
			minLatency, dev.Latency)
	}
	batch := (load.N + g - 1) / g
	eff := DeviceSpec{Rate: dev.Rate, Latency: SweepLatency(dev.Latency, minLatency, batch)}
	t, _, err := cycleAndBuffer(float64(load.N), load.BitRate, eff)
	if err != nil {
		return GSSPlan{}, err
	}
	s := units.Bytes(float64(load.BitRate) * t.Seconds() * (1 + 1/float64(g)))
	return GSSPlan{
		Groups:     g,
		Cycle:      t,
		GroupSlot:  t / time.Duration(g),
		PerStream:  s,
		TotalDRAM:  s.Mul(float64(load.N)),
		SweepBatch: batch,
	}, nil
}

// OptimalGSS searches g ∈ [1, N] for the plan minimizing total DRAM. The
// trade-off is unimodal in practice (buffer term falls in g, seek term
// rises), but we scan exhaustively in O(N) — N is bounded by the stream
// population, and each probe is O(1).
func OptimalGSS(load StreamLoad, dev DeviceSpec, minLatency time.Duration) (GSSPlan, error) {
	var best GSSPlan
	found := false
	for g := 1; g <= load.N; g++ {
		p, err := GSS(load, dev, minLatency, g)
		if err != nil {
			continue
		}
		if !found || p.TotalDRAM < best.TotalDRAM {
			best, found = p, true
		}
	}
	if !found {
		return GSSPlan{}, fmt.Errorf("%w: no GSS group count feasible", ErrInfeasible)
	}
	return best, nil
}
