package model

import (
	"errors"
	"testing"

	"memstream/internal/units"
)

// bufCfg is a known-feasible buffered configuration: the paper's DVD
// operating point against the FutureDisk with a G3-class middle tier.
func bufCfg(n, k int) BufferConfig {
	return BufferConfig{
		Load:          StreamLoad{N: n, BitRate: 1 * units.MBPS},
		Disk:          futureDiskSpec(),
		Tier:          g3Spec(),
		K:             k,
		SizePerDevice: 10 * units.GB,
	}
}

func TestMinFeasibleKAtLowerBound(t *testing.T) {
	// k = kMin = 2 already admits a plan at this load, so the search must
	// return the bound itself, with the plan matching a direct BufferPlan
	// at that k.
	cfg := bufCfg(150, 0)
	k, plan, err := MinFeasibleK(cfg, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("k = %d, want the kMin bound 2", k)
	}
	cfg.K = 2
	want, err := BufferPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan != want {
		t.Errorf("plan %+v differs from BufferPlan at k=2: %+v", plan, want)
	}
}

func TestMinFeasibleKClampsKMin(t *testing.T) {
	// kMin below 1 is clamped to 1; for a tier with 2x the disk's
	// bandwidth even a single device suffices.
	fast := g3Spec()
	fast.Rate = 4 * futureDiskSpec().Rate
	cfg := bufCfg(150, 0)
	cfg.Tier = fast
	k, _, err := MinFeasibleK(cfg, -3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("k = %d, want 1 for a tier with ample bandwidth", k)
	}
}

func TestMinFeasibleKGrowsBank(t *testing.T) {
	// Starve per-device bandwidth so several devices are needed: the
	// returned k must be minimal (k-1 infeasible, k feasible).
	slow := g3Spec()
	slow.Rate = futureDiskSpec().Rate / 4
	cfg := bufCfg(150, 0)
	cfg.Tier = slow
	k, _, err := MinFeasibleK(cfg, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 2 {
		t.Fatalf("k = %d, want a bank wider than kMin for a slow tier", k)
	}
	cfg.K = k - 1
	if _, err := BufferPlan(cfg); err == nil {
		t.Errorf("k-1 = %d unexpectedly feasible; MinFeasibleK not minimal", k-1)
	}
	cfg.K = k
	if _, err := BufferPlan(cfg); err != nil {
		t.Errorf("returned k = %d not feasible: %v", k, err)
	}
}

func TestMinFeasibleKExhaustsRange(t *testing.T) {
	// A tier that cannot hold even one stream's staging data stays
	// infeasible at every k in range: the error must wrap ErrInfeasible.
	tiny := g3Spec()
	cfg := bufCfg(150, 0)
	cfg.Tier = tiny
	cfg.SizePerDevice = 1 // one byte per device
	_, _, err := MinFeasibleK(cfg, 2, 8)
	if err == nil {
		t.Fatal("infeasible config accepted")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error %v does not wrap ErrInfeasible", err)
	}
}

func TestMaxFeasibleBoundaries(t *testing.T) {
	// Nothing feasible: even n=1 fails.
	if n := maxFeasible(func(int) bool { return false }); n != 0 {
		t.Errorf("all-infeasible: got %d, want 0", n)
	}
	// Exactly n=1 feasible (the doubling probe starts above it).
	if n := maxFeasible(func(n int) bool { return n <= 1 }); n != 1 {
		t.Errorf("n*=1: got %d, want 1", n)
	}
	// Thresholds on and off powers of two, where lo/hi bracketing is
	// easiest to get wrong.
	for _, want := range []int{2, 3, 64, 100, 1023, 1024, 1025} {
		want := want
		got := maxFeasible(func(n int) bool { return n <= want })
		if got != want {
			t.Errorf("n*=%d: got %d", want, got)
		}
	}
}

func TestMaxFeasibleNonMonotone(t *testing.T) {
	// maxFeasible assumes monotone feasibility. With a non-monotone
	// predicate (a feasibility island at [1,10] and another at [30,40])
	// the binary search must still terminate and report a point inside
	// the first island rather than hanging or escaping past the last
	// infeasible probe.
	pred := func(n int) bool { return n <= 10 || (n >= 30 && n <= 40) }
	got := maxFeasible(pred)
	if !pred(got) {
		t.Fatalf("returned infeasible n = %d", got)
	}
	if got < 10 {
		t.Errorf("returned n = %d below the first island's edge 10", got)
	}
}
