package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/units"
	"memstream/internal/workload"
)

func TestHitRatioEquation11(t *testing.T) {
	tests := []struct {
		x, y, p float64
		want    float64
	}{
		{10, 90, 0.10, 0.90}, // p = X: all hot content cached
		{10, 90, 0.05, 0.45}, // p = X/2: half the hot share
		{10, 90, 0.55, 0.95}, // p > X: hot plus half the cold
		{10, 90, 1.00, 1.00}, // everything cached
		{10, 90, 0.00, 0.00}, // nothing cached
		{1, 99, 0.01, 0.99},  // 1:99 with one device caching 1% (paper Fig 9a, $50)
		{50, 50, 0.50, 0.50}, // uniform popularity: h = p
		{50, 50, 0.25, 0.25}, // uniform: h scales linearly
		{20, 80, 0.10, 0.40}, // below the knee
	}
	for _, tc := range tests {
		got, err := HitRatio(tc.x, tc.y, tc.p)
		if err != nil {
			t.Errorf("HitRatio(%g,%g,%g): %v", tc.x, tc.y, tc.p, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("HitRatio(%g,%g,%g) = %v, want %v", tc.x, tc.y, tc.p, got, tc.want)
		}
	}
}

func TestHitRatioErrors(t *testing.T) {
	for _, bad := range [][3]float64{{0, 90, 0.1}, {101, 90, 0.1}, {10, 0, 0.1}, {10, 101, 0.1}, {10, 90, -0.1}} {
		if _, err := HitRatio(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("HitRatio(%v) accepted", bad)
		}
	}
	// p > 1 clamps rather than failing.
	if h, err := HitRatio(10, 90, 1.5); err != nil || h != 1 {
		t.Errorf("HitRatio(p=1.5) = %v, %v; want 1, nil", h, err)
	}
}

// Property: the hit ratio is monotone in p and within [0,1].
func TestHitRatioMonotoneProperty(t *testing.T) {
	f := func(x, y uint8, pa, pb uint8) bool {
		xv, yv := float64(x%99)+1, float64(y%99)+1
		a, b := float64(pa)/255, float64(pb)/255
		if a > b {
			a, b = b, a
		}
		ha, errA := HitRatio(xv, yv, a)
		hb, errB := HitRatio(xv, yv, b)
		if errA != nil || errB != nil {
			return false
		}
		return ha <= hb+1e-12 && ha >= 0 && hb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripedCacheFormula(t *testing.T) {
	// Eq 12 with n=100, k=4, B̄=100KB/s, G3:
	// S = n·L̄·(kR)·B̄/(kR − n·B̄)
	n, k := 100, 4
	br := 100 * units.KBPS
	plan, err := StripedCache(n, k, br, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	kr := 4 * 320e6
	want := 100 * 0.00059 * kr * 1e5 / (kr - 100*1e5)
	if math.Abs(float64(plan.PerStream)-want) > 1 {
		t.Errorf("S = %v, want %v", plan.PerStream, units.Bytes(want))
	}
}

func TestReplicatedCacheFormula(t *testing.T) {
	// Eq 13 with n=100, k=4: m = (n+k-1)/k = 25.75 streams per device.
	n, k := 100, 4
	br := 100 * units.KBPS
	plan, err := ReplicatedCache(n, k, br, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	kr := 4 * 320e6
	m := float64(n+k-1) / float64(k)
	want := 1e5 * (m * 0.00059 * kr / (kr - float64(n+k-1)*1e5))
	if math.Abs(float64(plan.PerStream)-want) > 1 {
		t.Errorf("S = %v, want %v", plan.PerStream, units.Bytes(want))
	}
}

func TestReplicatedBeatsStripedForManyStreams(t *testing.T) {
	// With n ≫ k, replication's ~k× lower effective latency shrinks the
	// per-stream buffer by nearly k× (paper §5.2.1: replication wins for
	// highly skewed popularity where all hits fit either way).
	n, k := 1000, 4
	br := 10 * units.KBPS
	st, err := StripedCache(n, k, br, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	re, err := ReplicatedCache(n, k, br, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st.PerStream) / float64(re.PerStream)
	if ratio < 3 || ratio > 4.5 {
		t.Errorf("striped/replicated buffer ratio = %.2f, want ≈k=4", ratio)
	}
}

func TestCachesEquivalentAtK1(t *testing.T) {
	// Paper §5.2.1: "When k = 1, the replicated and striped caching is
	// equivalent."
	st, err := StripedCache(50, 1, units.MBPS, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	re, err := ReplicatedCache(50, 1, units.MBPS, g3Spec())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(st.PerStream-re.PerStream)) > 1e-6 {
		t.Errorf("k=1: striped %v != replicated %v", st.PerStream, re.PerStream)
	}
}

// Corollary 3: a striped bank equals a single device with k× throughput,
// same latency.
func TestCorollary3Property(t *testing.T) {
	f := func(kk, nn uint8) bool {
		k := int(kk%8) + 1
		n := int(nn) + 1
		sc, err := StripedCache(n, k, 100*units.KBPS, g3Spec())
		if err != nil {
			return true
		}
		eq := EffectiveBankSpec(g3Spec(), k, Striped)
		dp, err := DiskDirect(StreamLoad{N: n, BitRate: 100 * units.KBPS}, eq)
		if err != nil {
			return true
		}
		return math.Abs(float64(sc.PerStream-dp.PerStream)) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Corollary 4: for n divisible by k, a replicated bank equals a single
// device with k× throughput and latency/k.
func TestCorollary4Property(t *testing.T) {
	f := func(kk, nn uint8) bool {
		k := int(kk%8) + 1
		n := (int(nn) + 1) * k * 50 // large and divisible by k
		rc, err := ReplicatedCache(n, k, 10*units.KBPS, g3Spec())
		if err != nil {
			return true
		}
		eq := EffectiveBankSpec(g3Spec(), k, Replicated)
		dp, err := DiskDirect(StreamLoad{N: n, BitRate: 10 * units.KBPS}, eq)
		if err != nil {
			return true
		}
		rel := math.Abs(float64(rc.PerStream-dp.PerStream)) / float64(dp.PerStream)
		return rel < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheBandwidthValidity(t *testing.T) {
	// Beyond k·R_mems of aggregate demand the cache is infeasible.
	_, err := StripedCache(33, 1, 10*units.MBPS, g3Spec()) // 330MB/s > 320MB/s
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("striped overload: %v", err)
	}
	_, err = ReplicatedCache(3200, 1, 100*units.KBPS, g3Spec()) // exactly R
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("replicated overload: %v", err)
	}
}

func TestCacheArgValidation(t *testing.T) {
	if _, err := StripedCache(0, 1, units.MBPS, g3Spec()); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ReplicatedCache(1, 0, units.MBPS, g3Spec()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := StripedCache(1, 1, 0, g3Spec()); err == nil {
		t.Error("zero bit-rate accepted")
	}
}

func TestCachedFraction(t *testing.T) {
	cfg := CacheConfig{
		Load: StreamLoad{N: 100, BitRate: units.MBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 4, SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
		X: 10, Y: 90,
	}
	cfg.Policy = Striped
	if got := cfg.CachedFraction(); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("striped p = %v, want 0.04", got)
	}
	cfg.Policy = Replicated
	if got := cfg.CachedFraction(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("replicated p = %v, want 0.01", got)
	}
	// Cache bigger than the catalog clamps to 1.
	cfg.ContentSize = 5 * units.GB
	if got := cfg.CachedFraction(); got != 1 {
		t.Errorf("oversized cache p = %v, want 1", got)
	}
}

func TestCachePlanSplitsStreams(t *testing.T) {
	cfg := CacheConfig{
		Load: StreamLoad{N: 1000, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
		X: 1, Y: 99,
	}
	plan, err := CachePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// p = 1% = X ⇒ h = 0.99 ⇒ 990 streams from the cache.
	if math.Abs(plan.HitRatio-0.99) > 1e-12 {
		t.Errorf("h = %v, want 0.99", plan.HitRatio)
	}
	if plan.FromCache != 990 || plan.FromDisk != 10 {
		t.Errorf("split = %d/%d, want 990/10", plan.FromCache, plan.FromDisk)
	}
	if plan.TotalDRAM != plan.CacheSide.TotalDRAM+plan.DiskSide.TotalDRAM {
		t.Error("total DRAM mismatch")
	}
	if plan.TotalDRAM <= 0 {
		t.Error("zero DRAM plan")
	}
}

func TestCachePlanAllFromCache(t *testing.T) {
	cfg := CacheConfig{
		Load: StreamLoad{N: 100, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Replicated,
		SizePerDevice: 10 * units.GB, ContentSize: 10 * units.GB, // whole catalog cached
		X: 10, Y: 90,
	}
	plan, err := CachePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HitRatio != 1 || plan.FromDisk != 0 {
		t.Errorf("h=%v fromDisk=%d, want 1, 0", plan.HitRatio, plan.FromDisk)
	}
	if plan.DiskSide.TotalDRAM != 0 {
		t.Error("disk side should be empty")
	}
}

func TestCachePlanValidation(t *testing.T) {
	bad := CacheConfig{}
	if _, err := CachePlan(bad); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if Striped.String() != "striped" || Replicated.String() != "replicated" {
		t.Error("policy names wrong")
	}
}

func TestCostModel(t *testing.T) {
	c := Table3Costs()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.DeviceCost(0); math.Abs(float64(got-10)) > 1e-9 {
		t.Errorf("device cost = %v, want $10", got)
	}
	if got := c.BankCost(4); math.Abs(float64(got-40)) > 1e-9 {
		t.Errorf("bank cost = %v, want $40", got)
	}
	if got := c.DRAMCost(5 * units.GB); math.Abs(float64(got-100)) > 1e-9 {
		t.Errorf("DRAM cost = %v, want $100", got)
	}
	// The paper's headline ratio: MEMS buffering is 20x cheaper per byte.
	if ratio := float64(c.DRAMPerGB) / float64(c.Tiers[0].PerGB); ratio != 20 {
		t.Errorf("DRAM/MEMS price ratio = %v, want 20", ratio)
	}
	if got := c.DRAMFor(100); got != 5*units.GB {
		t.Errorf("DRAMFor($100) = %v, want 5GB", got)
	}
	if got := c.DRAMFor(-1); got != 0 {
		t.Errorf("DRAMFor(-$1) = %v, want 0", got)
	}
}

func TestCostModelValidate(t *testing.T) {
	for _, c := range []CostModel{
		NewCostModel(0, 1, units.GB),
		NewCostModel(20, 0, units.GB),
		NewCostModel(20, 1, 0),
		{DRAMPerGB: 20}, // no tiers at all
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("cost model %+v accepted", c)
		}
	}
}

func TestCostWithBufferCheaperAtLowBitRates(t *testing.T) {
	// The paper's guideline (i): MEMS buffering cuts cost for low/medium
	// bit-rates.
	costs := Table3Costs()
	load := StreamLoad{N: 10000, BitRate: 10 * units.KBPS}
	without, err := CostWithoutMEMS(load, futureDiskSpec(), costs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BufferConfig{Load: load, Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 2, SizePerDevice: 10 * units.GB}
	with, err := CostWithBuffer(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Errorf("buffered cost %v not below direct cost %v", with, without)
	}
	reduction := 1 - float64(with)/float64(without)
	// Paper §5.1.2: 80–90% cost reduction.
	if reduction < 0.5 {
		t.Errorf("cost reduction = %.0f%%, paper reports 80–90%%", reduction*100)
	}
}

func TestCostWithCache(t *testing.T) {
	costs := Table3Costs()
	cfg := CacheConfig{
		Load: StreamLoad{N: 5000, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
		X: 1, Y: 99,
	}
	with, err := CostWithCache(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if with <= 10 {
		t.Errorf("cache cost %v should include the $10 device", with)
	}
}

func TestMaxStreamsCachedBeatsDirectForSkewedPopularity(t *testing.T) {
	// Figure 9(a) behaviour at 1:99: a cache-equipped server at equal cost
	// beats the no-cache server.
	costs := Table3Costs()
	budget := units.Dollars(50)
	dramOnly := costs.DRAMFor(budget)
	direct := MaxStreamsDirect(10*units.KBPS, futureDiskSpec(), dramOnly)

	k := 1
	dramWithCache := costs.DRAMFor(budget - costs.BankCost(k))
	cfg := CacheConfig{
		Load: StreamLoad{N: 1, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: k, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
		X: 1, Y: 99,
	}
	cached := MaxStreamsCached(cfg, dramWithCache)
	if cached <= direct {
		t.Errorf("cached max %d not above direct max %d at 1:99", cached, direct)
	}
}

func TestMaxStreamsCachedUniformPopularityNotCostEffective(t *testing.T) {
	// Figure 9(a) at 50:50: the cache cannot pay for itself.
	costs := Table3Costs()
	budget := units.Dollars(50)
	direct := MaxStreamsDirect(10*units.KBPS, futureDiskSpec(), costs.DRAMFor(budget))
	cfg := CacheConfig{
		Load: StreamLoad{N: 1, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
		X: 50, Y: 50,
	}
	cached := MaxStreamsCached(cfg, costs.DRAMFor(budget-costs.BankCost(1)))
	if cached >= direct {
		t.Errorf("uniform popularity: cached %d should not beat direct %d", cached, direct)
	}
}

// Consistency: CachePlan equals CachePlanWithHit at Eq 11's own h.
func TestCachePlanWithHitConsistencyProperty(t *testing.T) {
	f := func(nn uint16, xRaw, yRaw uint8) bool {
		x := float64(xRaw%50) + 1
		y := x + float64(yRaw)*(99-x)/255 // ensure Y ≥ X
		cfg := CacheConfig{
			Load: StreamLoad{N: int(nn%2000) + 10, BitRate: 10 * units.KBPS},
			Disk: futureDiskSpec(), Tier: g3Spec(),
			K: 2, Policy: Striped,
			SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
			X: x, Y: y,
		}
		a, errA := CachePlan(cfg)
		h, errH := HitRatio(x, y, cfg.CachedFraction())
		if errH != nil {
			return false
		}
		b, errB := CachePlanWithHit(cfg, h)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a.FromCache == b.FromCache && a.TotalDRAM == b.TotalDRAM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCachePlanWithHitValidation(t *testing.T) {
	cfg := CacheConfig{
		Load: StreamLoad{N: 100, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 1, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
	}
	// X/Y zero: they are ignored, the supplied h governs.
	plan, err := CachePlanWithHit(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FromCache != 50 {
		t.Errorf("FromCache = %d, want 50", plan.FromCache)
	}
	for _, h := range []float64{-0.1, 1.1} {
		if _, err := CachePlanWithHit(cfg, h); err == nil {
			t.Errorf("h=%v accepted", h)
		}
	}
}

// Regression: X/Y must be ignored entirely on the WithHit path. The old
// code only substituted placeholders for the exact pair X==0 && Y==0, so
// a single-zero pair (out of range for Eq 11, but irrelevant here) drew a
// spurious "X:Y out of range" error.
func TestCachePlanWithHitIgnoresPartialXY(t *testing.T) {
	// An empirical-Zipf hit ratio, as a caller bypassing Eq 11 would
	// supply: the probability mass of the cached prefix of a Zipf(1.0)
	// catalog.
	w := workload.Zipf(1000, 1.0)
	cat, err := workload.NewCatalog(1000, workload.MediaClass{
		Name: "zipf", BitRate: 10 * units.KBPS, Duration: time.Hour,
	}, w, 512)
	if err != nil {
		t.Fatal(err)
	}
	h := cat.TopFraction(0.02)
	if h <= 0 || h >= 1 {
		t.Fatalf("empirical hit ratio %v outside (0,1)", h)
	}

	base := CacheConfig{
		Load: StreamLoad{N: 100, BitRate: 10 * units.KBPS},
		Disk: futureDiskSpec(), Tier: g3Spec(),
		K: 2, Policy: Striped,
		SizePerDevice: 10 * units.GB, ContentSize: 1000 * units.GB,
	}
	var want CachedPlan
	for i, xy := range []struct{ x, y float64 }{{0, 0}, {0, 40}, {40, 0}, {10, 90}} {
		cfg := base
		cfg.X, cfg.Y = xy.x, xy.y
		plan, err := CachePlanWithHit(cfg, h)
		if err != nil {
			t.Fatalf("X=%g Y=%g: %v", xy.x, xy.y, err)
		}
		if i == 0 {
			want = plan
			continue
		}
		if plan != want {
			t.Errorf("X=%g Y=%g: plan differs from zeroed-X/Y plan", xy.x, xy.y)
		}
	}
}

// Equivalence: a one-device striped cache is exactly Corollary 1's direct
// MEMS service.
func TestStripedK1EqualsMEMSDirectProperty(t *testing.T) {
	f := func(nn uint16) bool {
		n := int(nn%3000) + 1
		sc, errA := StripedCache(n, 1, 10*units.KBPS, g3Spec())
		md, errB := MEMSDirect(StreamLoad{N: n, BitRate: 10 * units.KBPS}, g3Spec())
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return sc.PerStream == md.PerStream && sc.Cycle == md.Cycle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
