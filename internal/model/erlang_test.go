package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values.
	tests := []struct {
		a    float64
		n    int
		want float64
	}{
		{0, 10, 0},
		{1, 1, 0.5},
		{2, 2, 0.4},
		{10, 10, 0.2146},
		{100, 100, 0.0757},
	}
	for _, tc := range tests {
		got, err := ErlangB(tc.a, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("ErlangB(%g,%d) = %.4f, want %.4f", tc.a, tc.n, got, tc.want)
		}
	}
}

func TestErlangBErrors(t *testing.T) {
	if _, err := ErlangB(-1, 5); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := ErlangB(1, -1); err == nil {
		t.Error("negative servers accepted")
	}
	// n=0 blocks everything offered.
	if b, _ := ErlangB(5, 0); b != 1 {
		t.Errorf("B(a,0) = %v, want 1", b)
	}
}

func TestErlangCapacity(t *testing.T) {
	n, err := ErlangCapacity(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// 100 erlangs at 1% blocking needs ≈117 servers.
	if n < 110 || n > 125 {
		t.Errorf("capacity = %d, want ≈117", n)
	}
	b, _ := ErlangB(100, n)
	if b > 0.01 {
		t.Errorf("blocking at capacity = %v", b)
	}
	bPrev, _ := ErlangB(100, n-1)
	if bPrev <= 0.01 {
		t.Error("capacity not minimal")
	}
	if _, err := ErlangCapacity(100, 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := ErlangCapacity(-1, 0.01); err == nil {
		t.Error("negative load accepted")
	}
}

// Property: blocking decreases in n and increases in a.
func TestErlangBMonotoneProperty(t *testing.T) {
	f := func(aRaw, nRaw uint8) bool {
		a := float64(aRaw%50) + 1
		n := int(nRaw%50) + 1
		b1, err1 := ErlangB(a, n)
		b2, err2 := ErlangB(a, n+1)
		b3, err3 := ErlangB(a+1, n)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return b2 <= b1+1e-12 && b3 >= b1-1e-12 && b1 >= 0 && b1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The simulated admission process converges to the Erlang-B closed form —
// the theory behind the dynamics experiment.
func TestSimulatedBlockingMatchesErlangB(t *testing.T) {
	p := workload.SessionProcess{
		ArrivalRate: 0.5, // 0.5/s · 200s hold = 100 erlangs offered
		MeanHold:    200 * time.Second,
		BitRate:     units.MBPS,
	}
	sessions, err := p.Generate(sim.NewRNG(17), 40*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	const capN = 100
	stats := workload.ReplayAdmission(sessions, func(busy int) bool { return busy < capN })
	want, _ := ErlangB(p.OfferedLoad(), capN)
	if math.Abs(stats.BlockProb-want) > 0.02 {
		t.Errorf("simulated blocking %.4f, Erlang-B %.4f", stats.BlockProb, want)
	}
}
