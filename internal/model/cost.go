package model

import (
	"fmt"
	"math"

	"memstream/internal/units"
)

// TierCost prices one middle tier: devices are bought whole, so a bank
// of k devices costs k·PerGB·DeviceSize even when partially used (the
// paper's Eq 2, stated there for MEMS).
type TierCost struct {
	PerGB      units.Dollars // C_tier, $/GB
	DeviceSize units.Bytes   // Size_tier, capacity of one device
}

// CostModel carries the unit prices of the buffering media: DRAM per
// byte plus one entry per middle tier. The paper's hierarchy has exactly
// one middle tier (MEMS); the vector form prices arbitrary N-tier
// hierarchies with the same per-device model.
type CostModel struct {
	DRAMPerGB units.Dollars // C_dram, $/GB
	Tiers     []TierCost    // middle tiers, outermost first
}

// NewCostModel builds the common single-middle-tier model.
func NewCostModel(dramPerGB, tierPerGB units.Dollars, deviceSize units.Bytes) CostModel {
	return CostModel{
		DRAMPerGB: dramPerGB,
		Tiers:     []TierCost{{PerGB: tierPerGB, DeviceSize: deviceSize}},
	}
}

// Table3Costs returns the paper's 2007 price points: DRAM $20/GB, MEMS
// $1/GB in 10GB devices ($10/device).
func Table3Costs() CostModel {
	return NewCostModel(20, 1, 10*units.GB)
}

// Validate checks the prices.
func (c CostModel) Validate() error {
	if c.DRAMPerGB <= 0 || len(c.Tiers) == 0 {
		return fmt.Errorf("model: cost model has non-positive entries: %+v", c)
	}
	for _, t := range c.Tiers {
		if t.PerGB <= 0 || t.DeviceSize <= 0 {
			return fmt.Errorf("model: cost model has non-positive entries: %+v", c)
		}
	}
	return nil
}

// DRAMCost prices a DRAM allocation.
func (c CostModel) DRAMCost(b units.Bytes) units.Dollars {
	return units.PerGB(c.DRAMPerGB).Cost(b)
}

// DeviceCost prices one device of tier i (C_tier · Size_tier).
func (c CostModel) DeviceCost(i int) units.Dollars {
	t := c.Tiers[i]
	return units.PerGB(t.PerGB).Cost(t.DeviceSize)
}

// BankCost prices a k-device bank of the first middle tier (the
// per-device model of Eq 2).
func (c CostModel) BankCost(k int) units.Dollars {
	return c.TierBankCost(0, k)
}

// TierBankCost prices a k-device bank of tier i.
func (c CostModel) TierBankCost(i, k int) units.Dollars {
	return units.Dollars(float64(k) * float64(c.DeviceCost(i)))
}

// HierarchyCost prices a whole configuration: dram bytes of DRAM plus a
// bank per middle tier, ks[i] devices of tier i. Eq 2/9 generalized to N
// tiers.
func (c CostModel) HierarchyCost(dram units.Bytes, ks []int) (units.Dollars, error) {
	if len(ks) != len(c.Tiers) {
		return 0, fmt.Errorf("model: %d bank sizes for %d tiers", len(ks), len(c.Tiers))
	}
	total := c.DRAMCost(dram)
	for i, k := range ks {
		total += c.TierBankCost(i, k)
	}
	return total, nil
}

// DRAMFor inverts DRAMCost: how much DRAM a budget buys.
func (c CostModel) DRAMFor(budget units.Dollars) units.Bytes {
	if budget <= 0 {
		return 0
	}
	return units.Bytes(float64(budget) / float64(c.DRAMPerGB) * 1e9)
}

// CostWithoutMEMS evaluates Eq 1: the buffering cost of a direct
// disk→DRAM server.
func CostWithoutMEMS(load StreamLoad, disk DeviceSpec, costs CostModel) (units.Dollars, error) {
	if err := costs.Validate(); err != nil {
		return 0, err
	}
	plan, err := DiskDirect(load, disk)
	if err != nil {
		return 0, err
	}
	return costs.DRAMCost(plan.TotalDRAM), nil
}

// CostWithBuffer evaluates Eq 2: the buffering cost with a k-device MEMS
// buffer — the bank at per-device prices plus the (reduced) DRAM.
func CostWithBuffer(cfg BufferConfig, costs CostModel) (units.Dollars, error) {
	if err := costs.Validate(); err != nil {
		return 0, err
	}
	plan, err := BufferPlan(cfg)
	if err != nil {
		return 0, err
	}
	return costs.BankCost(cfg.K) + costs.DRAMCost(plan.TotalDRAM), nil
}

// CostWithCache evaluates Eq 9: bank cost plus DRAM for both the
// cache-served and disk-served stream groups.
func CostWithCache(cfg CacheConfig, costs CostModel) (units.Dollars, error) {
	if err := costs.Validate(); err != nil {
		return 0, err
	}
	plan, err := CachePlan(cfg)
	if err != nil {
		return 0, err
	}
	return costs.BankCost(cfg.K) + costs.DRAMCost(plan.TotalDRAM), nil
}

// MinFeasibleK returns the smallest bank size (at least kMin) whose
// aggregate bandwidth and capacity admit a buffered plan for cfg.Load,
// or an error when even maxK devices do not suffice. The paper's buffer
// experiments use kMin = 2 because a single device cannot supply twice
// the FutureDisk streaming bandwidth (its §5.1).
func MinFeasibleK(cfg BufferConfig, kMin, maxK int) (int, BufferedPlan, error) {
	if kMin < 1 {
		kMin = 1
	}
	for k := kMin; k <= maxK; k++ {
		cfg.K = k
		plan, err := BufferPlan(cfg)
		if err == nil {
			return k, plan, nil
		}
	}
	return 0, BufferedPlan{}, fmt.Errorf("%w: no feasible bank size in [%d,%d]",
		ErrInfeasible, kMin, maxK)
}

// MaxStreamsDirect returns the largest N a direct disk→DRAM server
// sustains with at most dramCap of DRAM (0 = unlimited; then only disk
// bandwidth limits N). Total DRAM N·S(N) grows monotonically in N, so a
// binary search over N suffices.
func MaxStreamsDirect(bitRate units.ByteRate, disk DeviceSpec, dramCap units.Bytes) int {
	feasible := func(n int) bool {
		plan, err := DiskDirect(StreamLoad{N: n, BitRate: bitRate}, disk)
		if err != nil {
			return false
		}
		return dramCap == 0 || plan.TotalDRAM <= dramCap
	}
	return maxFeasible(feasible)
}

// MaxStreamsCached returns the largest N a cache-equipped server sustains
// with at most dramCap of DRAM. cfg.Load.N is ignored; the other fields
// configure the cache.
func MaxStreamsCached(cfg CacheConfig, dramCap units.Bytes) int {
	feasible := func(n int) bool {
		c := cfg
		c.Load.N = n
		plan, err := CachePlan(c)
		if err != nil {
			return false
		}
		return dramCap == 0 || plan.TotalDRAM <= dramCap
	}
	return maxFeasible(feasible)
}

// MaxStreamsBuffered returns the largest N a MEMS-buffered server sustains
// with at most dramCap of DRAM.
func MaxStreamsBuffered(cfg BufferConfig, dramCap units.Bytes) int {
	feasible := func(n int) bool {
		c := cfg
		c.Load.N = n
		plan, err := BufferPlan(c)
		if err != nil {
			return false
		}
		return dramCap == 0 || plan.TotalDRAM <= dramCap
	}
	return maxFeasible(feasible)
}

// maxFeasible finds the largest n with feasible(n) true, assuming
// feasibility is monotone (true up to some n*, false beyond). Returns 0
// when even n = 1 is infeasible.
func maxFeasible(feasible func(int) bool) int {
	if !feasible(1) {
		return 0
	}
	lo, hi := 1, 2
	for feasible(hi) {
		lo = hi
		if hi > math.MaxInt32/2 {
			return hi // unbounded in practice; caller's parameters are degenerate
		}
		hi *= 2
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
