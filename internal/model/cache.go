package model

import (
	"fmt"
	"math"
	"time"

	"memstream/internal/units"
)

// CachePolicy selects how cached content is spread over a k-device bank
// (paper §3.2).
type CachePolicy uint8

// Cache-management policies.
const (
	// Striped bit/byte-stripes every title across all k devices, accessed
	// in lock-step: k× throughput, unchanged latency, full k·Size_mems
	// capacity (Theorem 3 / Corollary 3).
	Striped CachePolicy = iota
	// Replicated stores a full copy on every device: k× throughput,
	// ~k× lower effective latency, but only Size_mems of distinct content
	// (Theorem 4 / Corollary 4).
	Replicated
)

// String names the policy.
func (p CachePolicy) String() string {
	switch p {
	case Striped:
		return "striped"
	case Replicated:
		return "replicated"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// HitRatio evaluates Eq 11: under an X:Y popularity distribution, a cache
// holding the most popular fraction p of the content sees hit ratio
//
//	h = (p/X)·Y                         if p ≤ X
//	h = Y + ((p−X)/(100−X))·(100−Y)     otherwise
//
// with X, Y in percent and p in [0,1]. The result is in [0,1].
func HitRatio(x, y, p float64) (float64, error) {
	if x <= 0 || x > 100 || y <= 0 || y > 100 {
		return 0, fmt.Errorf("model: X:Y = %g:%g out of range", x, y)
	}
	if p < 0 {
		return 0, fmt.Errorf("model: cached fraction %g negative", p)
	}
	if p > 1 {
		p = 1
	}
	pPct := p * 100
	if x >= pPct {
		return (pPct / x) * (y / 100), nil
	}
	h := y/100 + (pPct-x)/(100-x)*((100-y)/100)
	if h > 1 {
		h = 1
	}
	return h, nil
}

// StripedCache computes Theorem 3: the per-stream DRAM buffer when n
// streams are serviced from a striped k-device MEMS cache:
//
//	S_mems-dram = n·L̄_mems·(k·R_mems)·B̄ / (k·R_mems − n·B̄)   (Eq 12)
//
// The bank behaves as one device with k× the throughput and unchanged
// latency (Corollary 3).
func StripedCache(n int, k int, bitRate units.ByteRate, mems DeviceSpec) (DirectPlan, error) {
	if err := validateCacheArgs(n, k, bitRate, mems); err != nil {
		return DirectPlan{}, err
	}
	bank := DeviceSpec{
		Rate:    units.ByteRate(float64(k) * float64(mems.Rate)),
		Latency: mems.Latency,
	}
	return DiskDirect(StreamLoad{N: n, BitRate: bitRate}, bank)
}

// ReplicatedCache computes Theorem 4: the per-stream DRAM buffer when n
// streams are serviced from a replicated k-device MEMS cache. Each device
// serves ⌈n/k⌉ streams independently, so
//
//	S_mems-dram = ((n+k−1)/k)·L̄_mems·(k·R_mems)·B̄ / (k·R_mems − (n+k−1)·B̄)   (Eq 13)
//
// For n ≫ k the bank behaves as one device with k× the throughput and
// latency/k (Corollary 4).
func ReplicatedCache(n int, k int, bitRate units.ByteRate, mems DeviceSpec) (DirectPlan, error) {
	if err := validateCacheArgs(n, k, bitRate, mems); err != nil {
		return DirectPlan{}, err
	}
	m := float64(n+k-1) / float64(k) // ⌈n/k⌉ bound used by the paper
	kr := float64(k) * float64(mems.Rate)
	agg := m * float64(k) * float64(bitRate)
	if agg >= kr {
		return DirectPlan{}, fmt.Errorf("%w: replicated cache needs k·R_mems > (n+k−1)·B̄ (have %v ≤ %v)",
			ErrInfeasible, units.ByteRate(kr), units.ByteRate(agg))
	}
	t := m * mems.Latency.Seconds() * kr / (kr - float64(n+k-1)*float64(bitRate))
	s := units.Bytes(float64(bitRate) * t)
	return DirectPlan{
		Cycle:     units.Seconds(t),
		PerStream: s,
		TotalDRAM: s.Mul(float64(n)),
		IOSize:    s,
	}, nil
}

func validateCacheArgs(n, k int, bitRate units.ByteRate, mems DeviceSpec) error {
	if n <= 0 {
		return fmt.Errorf("model: need at least one cached stream, got %d", n)
	}
	if k <= 0 {
		return fmt.Errorf("model: need at least one MEMS device, got %d", k)
	}
	if bitRate <= 0 {
		return fmt.Errorf("model: non-positive bit-rate %v", bitRate)
	}
	return mems.Validate()
}

// CacheConfig describes a server with a k-device middle-tier content
// cache (MEMS in the paper).
type CacheConfig struct {
	Load          StreamLoad
	Disk          DeviceSpec
	Tier          DeviceSpec // middle-tier device (the paper's MEMS)
	K             int
	Policy        CachePolicy
	SizePerDevice units.Bytes // Size_mems
	ContentSize   units.Bytes // Size_disk: total catalog footprint
	X, Y          float64     // popularity distribution
}

// Validate checks the configuration.
func (c CacheConfig) Validate() error {
	if err := c.validatePopularityFree(); err != nil {
		return err
	}
	if _, err := HitRatio(c.X, c.Y, 0); err != nil {
		return err
	}
	return nil
}

// validatePopularityFree checks everything except the X:Y popularity
// fields — the subset that matters when the hit ratio is supplied
// externally and X/Y play no role.
func (c CacheConfig) validatePopularityFree() error {
	if err := c.Load.Validate(); err != nil {
		return err
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.Tier.Validate(); err != nil {
		return err
	}
	if c.K <= 0 {
		return fmt.Errorf("model: need at least one MEMS device, got %d", c.K)
	}
	if c.SizePerDevice <= 0 || c.ContentSize <= 0 {
		return fmt.Errorf("model: non-positive capacity (mems %v, content %v)",
			c.SizePerDevice, c.ContentSize)
	}
	return nil
}

// CachedFraction returns p, the fraction of the catalog the bank can hold
// under the policy: striping pools capacity, replication stores one copy's
// worth (paper §4.2).
func (c CacheConfig) CachedFraction() float64 {
	var capacity units.Bytes
	if c.Policy == Striped {
		capacity = c.SizePerDevice.Mul(float64(c.K))
	} else {
		capacity = c.SizePerDevice
	}
	p := float64(capacity) / float64(c.ContentSize)
	return math.Min(p, 1)
}

// CachedPlan is the sizing of a cache-equipped server.
type CachedPlan struct {
	HitRatio  float64     // h (Eq 11)
	FromCache int         // n = round(h·N)
	FromDisk  int         // N − n
	CacheSide DirectPlan  // per-stream buffer for cache-served streams (Eq 12/13)
	DiskSide  DirectPlan  // per-stream buffer for disk-served streams (Eq 10)
	TotalDRAM units.Bytes // combined DRAM requirement
}

// CachePlan sizes a cache-equipped server: it applies Eq 11 for the hit
// ratio, then Theorem 3 or 4 for the cache-served streams and Eq 10
// (Theorem 1 with (1−h)·N streams) for the disk-served remainder.
func CachePlan(cfg CacheConfig) (CachedPlan, error) {
	if err := cfg.Validate(); err != nil {
		return CachedPlan{}, err
	}
	h, err := HitRatio(cfg.X, cfg.Y, cfg.CachedFraction())
	if err != nil {
		return CachedPlan{}, err
	}
	return CachePlanWithHit(cfg, h)
}

// CachePlanWithHit is CachePlan with an externally supplied hit ratio —
// for popularity models other than X:Y (e.g. an empirical Zipf catalog),
// where h comes from the catalog's weights rather than Eq 11. The X/Y
// fields of cfg are ignored entirely on this path, so any values —
// including zero or partially-zero pairs — are accepted.
func CachePlanWithHit(cfg CacheConfig, h float64) (CachedPlan, error) {
	if err := cfg.validatePopularityFree(); err != nil {
		return CachedPlan{}, err
	}
	if h < 0 || h > 1 {
		return CachedPlan{}, fmt.Errorf("model: hit ratio %g outside [0,1]", h)
	}
	n := int(math.Round(h * float64(cfg.Load.N)))
	if n > cfg.Load.N {
		n = cfg.Load.N
	}
	nd := cfg.Load.N - n

	var plan CachedPlan
	plan.HitRatio = h
	plan.FromCache = n
	plan.FromDisk = nd

	if n > 0 {
		var cp DirectPlan
		var err error
		if cfg.Policy == Striped {
			cp, err = StripedCache(n, cfg.K, cfg.Load.BitRate, cfg.Tier)
		} else {
			cp, err = ReplicatedCache(n, cfg.K, cfg.Load.BitRate, cfg.Tier)
		}
		if err != nil {
			return CachedPlan{}, fmt.Errorf("cache side: %w", err)
		}
		plan.CacheSide = cp
	}
	if nd > 0 {
		dp, err := DiskDirect(StreamLoad{N: nd, BitRate: cfg.Load.BitRate}, cfg.Disk)
		if err != nil {
			return CachedPlan{}, fmt.Errorf("disk side: %w", err)
		}
		plan.DiskSide = dp
	}
	plan.TotalDRAM = plan.CacheSide.TotalDRAM + plan.DiskSide.TotalDRAM
	return plan, nil
}

// EffectiveBankSpec returns the single-device equivalent of a k-bank under
// the policy, per Corollaries 2–4: throughput always scales by k; latency
// is unchanged for striping and divides by k for replication (and for the
// round-robin buffer bank of Corollary 2).
func EffectiveBankSpec(mems DeviceSpec, k int, policy CachePolicy) DeviceSpec {
	out := DeviceSpec{
		Rate:    units.ByteRate(float64(k) * float64(mems.Rate)),
		Latency: mems.Latency,
	}
	if policy == Replicated {
		out.Latency = time.Duration(float64(mems.Latency) / float64(k))
	}
	return out
}
