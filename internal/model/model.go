// Package model implements the paper's analytical framework (its Section
// 4): closed-form minimum DRAM buffer sizes for real-time streaming under
// time-cycle scheduling, with and without a bank of k MEMS devices used as
// a disk buffer or as a content cache, plus the buffering-cost model.
//
// Conventions (paper §5): MEMS IOs are charged the device's maximum
// positioning latency; disk IOs are charged the scheduler-determined
// average. All streams are CBR at the average bit-rate B̄ (VBR adds a
// cushion, paper footnote 1; see workload.CushionFor).
package model

import (
	"errors"
	"fmt"
	"math"
	"time"

	"memstream/internal/units"
)

// ErrInfeasible reports that no IO schedule can satisfy the real-time
// requirement with the given parameters (e.g. the device lacks bandwidth
// for N streams).
var ErrInfeasible = errors.New("model: real-time requirement infeasible")

// StreamLoad describes the stream population the server must sustain.
type StreamLoad struct {
	N       int            // number of concurrent streams
	BitRate units.ByteRate // B̄, average stream bit-rate
}

// Validate checks the load.
func (l StreamLoad) Validate() error {
	if l.N <= 0 {
		return fmt.Errorf("model: need at least one stream, got %d", l.N)
	}
	if l.BitRate <= 0 {
		return fmt.Errorf("model: non-positive bit-rate %v", l.BitRate)
	}
	return nil
}

// Aggregate returns N·B̄.
func (l StreamLoad) Aggregate() units.ByteRate {
	return units.ByteRate(float64(l.N) * float64(l.BitRate))
}

// DeviceSpec carries the two numbers the model needs per device: its media
// transfer rate R_d and its per-IO latency L̄_d under the chosen
// convention.
type DeviceSpec struct {
	Rate    units.ByteRate
	Latency time.Duration
}

// Validate checks the spec.
func (d DeviceSpec) Validate() error {
	if d.Rate <= 0 {
		return fmt.Errorf("model: non-positive device rate %v", d.Rate)
	}
	if d.Latency < 0 {
		return fmt.Errorf("model: negative device latency %v", d.Latency)
	}
	return nil
}

// cycleAndBuffer solves the basic time-cycle recurrence: in one cycle T the
// device performs one IO per stream, paying L̄ positioning plus S/R
// transfer per IO, with S = B̄·T to sustain playback:
//
//	N·(L̄ + B̄·T/R) ≤ T  ⇒  T ≥ N·L̄·R / (R − N·B̄)
//
// It returns the minimal cycle and the per-stream buffer S = B̄·T.
func cycleAndBuffer(n float64, bitRate units.ByteRate, dev DeviceSpec) (time.Duration, units.Bytes, error) {
	agg := n * float64(bitRate)
	if agg >= float64(dev.Rate) {
		return 0, 0, fmt.Errorf("%w: aggregate %v ≥ device rate %v",
			ErrInfeasible, units.ByteRate(agg), dev.Rate)
	}
	t := n * dev.Latency.Seconds() * float64(dev.Rate) / (float64(dev.Rate) - agg)
	s := units.Bytes(float64(bitRate) * t)
	return units.Seconds(t), s, nil
}

// DirectPlan is the result of Theorem 1 (disk→DRAM) or Corollary 1
// (MEMS→DRAM): a feasible minimal time-cycle schedule.
type DirectPlan struct {
	Cycle     time.Duration // IO cycle T
	PerStream units.Bytes   // per-stream DRAM buffer S (Eq 3/4)
	TotalDRAM units.Bytes   // N·S
	IOSize    units.Bytes   // device IO size per stream per cycle (= S)
}

// DiskDirect computes Theorem 1: the minimum per-stream DRAM buffer for a
// system streaming straight from the disk:
//
//	S_disk-dram = N·L̄_disk·R_disk·B̄ / (R_disk − N·B̄)   (Eq 3)
func DiskDirect(load StreamLoad, disk DeviceSpec) (DirectPlan, error) {
	if err := load.Validate(); err != nil {
		return DirectPlan{}, err
	}
	if err := disk.Validate(); err != nil {
		return DirectPlan{}, err
	}
	t, s, err := cycleAndBuffer(float64(load.N), load.BitRate, disk)
	if err != nil {
		return DirectPlan{}, err
	}
	return DirectPlan{
		Cycle:     t,
		PerStream: s,
		TotalDRAM: s.Mul(float64(load.N)),
		IOSize:    s,
	}, nil
}

// MEMSDirect computes Corollary 1: the minimum per-stream DRAM buffer when
// streaming straight from a single MEMS device (Eq 4).
func MEMSDirect(load StreamLoad, mems DeviceSpec) (DirectPlan, error) {
	return DiskDirect(load, mems) // identical algebra with R, L̄ of the MEMS device
}

// BufferConfig describes a k-device middle-tier bank (MEMS in the
// paper) used as a disk buffer.
type BufferConfig struct {
	Load          StreamLoad
	Disk          DeviceSpec
	Tier          DeviceSpec  // middle-tier device (the paper's MEMS)
	K             int         // devices in the bank
	SizePerDevice units.Bytes // Size_tier, capacity of one device
}

// Validate checks the configuration.
func (c BufferConfig) Validate() error {
	if err := c.Load.Validate(); err != nil {
		return err
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.Tier.Validate(); err != nil {
		return err
	}
	if c.K <= 0 {
		return fmt.Errorf("model: need at least one MEMS device, got %d", c.K)
	}
	if c.SizePerDevice <= 0 {
		return fmt.Errorf("model: non-positive MEMS capacity %v", c.SizePerDevice)
	}
	return nil
}

// BufferedPlan is the result of Theorem 2: a feasible schedule for a
// system that stages every disk IO through a k-device MEMS buffer.
type BufferedPlan struct {
	DiskCycle    time.Duration // T_disk, maximized subject to Eq 6–8
	MEMSCycle    time.Duration // T_mems = (M/N)·T_disk
	M            int           // disk transfers per MEMS IO cycle (Eq 8)
	MinMEMSCycle time.Duration // C, the bandwidth-limited minimum MEMS cycle

	PerStreamDRAM units.Bytes // S_mems-dram (Eq 5)
	TotalDRAM     units.Bytes // N·S_mems-dram
	DiskIOSize    units.Bytes // S_disk-mems = B̄·T_disk per stream
	MEMSBufferUse units.Bytes // staged data across the bank (≤ k·Size_mems)
}

// BufferPlan computes Theorem 2. The per-stream DRAM buffer is
//
//	S_mems-dram = B̄·C·(1 + (2k−2)/N)·T_disk / (T_disk − C)   (Eq 5)
//	C = N·L̄_mems·R_mems / (k·R_mems − 2·(N+k−1)·B̄)
//
// where T_disk is the largest cycle satisfying the real-time lower bound
// (Eq 6), the MEMS capacity bound 2·N·T_disk·B̄ ≤ k·Size_mems (Eq 7), and
// the rational cycle-ratio requirement T_mems/T_disk = M/N with integer
// M < N (Eq 8).
func BufferPlan(cfg BufferConfig) (BufferedPlan, error) {
	if err := cfg.Validate(); err != nil {
		return BufferedPlan{}, err
	}
	n := float64(cfg.Load.N)
	k := float64(cfg.K)
	b := float64(cfg.Load.BitRate)
	rm := float64(cfg.Tier.Rate)

	// Bandwidth feasibility at the MEMS bank: it moves every byte twice
	// (disk-side write + DRAM-side read), with up to ⌈N/k⌉-imbalance
	// captured by the (N+k−1) term.
	denom := k*rm - 2*(n+k-1)*b
	if denom <= 0 {
		return BufferedPlan{}, fmt.Errorf(
			"%w: MEMS bank bandwidth %v cannot sustain 2×(N+k−1)×B̄ = %v",
			ErrInfeasible, units.ByteRate(k*rm), units.ByteRate(2*(n+k-1)*b))
	}
	c := n * cfg.Tier.Latency.Seconds() * rm / denom

	// Eq 6: the disk itself must sustain N streams.
	tMin, _, err := cycleAndBuffer(n, cfg.Load.BitRate, cfg.Disk)
	if err != nil {
		return BufferedPlan{}, err
	}

	// Eq 7: double-buffered staged data must fit in the bank.
	tCap := k * float64(cfg.SizePerDevice) / (2 * n * b)
	tDisk := tCap
	if tDisk < tMin.Seconds() {
		return BufferedPlan{}, fmt.Errorf(
			"%w: MEMS capacity bound T≤%.3fs is below the disk's minimum cycle %v",
			ErrInfeasible, tCap, tMin)
	}
	if tDisk <= c {
		return BufferedPlan{}, fmt.Errorf(
			"%w: disk cycle %.3fs does not exceed minimum MEMS cycle %.3fs",
			ErrInfeasible, tDisk, c)
	}

	// Eq 8: T_mems/T_disk = M/N with integer M < N. Pick the smallest M
	// whose MEMS cycle is still feasible (≥ C); larger M only delays
	// disk-side transfers.
	m := int(math.Ceil(c * n / tDisk))
	if m < 1 {
		m = 1
	}
	switch {
	case cfg.Load.N == 1:
		// Degenerate single-stream pipeline: Eq 8's strict M < N cannot
		// hold; the schedule collapses to lock-step cycles (M = 1).
		m = 1
	case m >= cfg.Load.N:
		return BufferedPlan{}, fmt.Errorf(
			"%w: cycle ratio M=%d must stay below N=%d", ErrInfeasible, m, cfg.Load.N)
	}
	tMems := float64(m) / n * tDisk
	if tMems < c {
		tMems = c // guard against rounding at tiny N
	}

	s := b * c * (1 + (2*k-2)/n) * tDisk / (tDisk - c)
	plan := BufferedPlan{
		DiskCycle:     units.Seconds(tDisk),
		MEMSCycle:     units.Seconds(tMems),
		M:             m,
		MinMEMSCycle:  units.Seconds(c),
		PerStreamDRAM: units.Bytes(s),
		TotalDRAM:     units.Bytes(s * n),
		DiskIOSize:    units.Bytes(b * tDisk),
		MEMSBufferUse: units.Bytes(2 * n * tDisk * b),
	}
	return plan, nil
}

// CapDiskCycle bounds the plan's disk cycle at limit and recomputes the
// dependent quantities. Theorem 2 maximizes T_disk to the capacity bound
// (often hundreds of seconds), which is fine analytically but impractical
// to simulate; capping shrinks the disk-side IO proportionally
// (S_disk-mems = B̄·T_disk) while the MEMS cycle keeps the plan's M/N
// ratio, clamped at the bandwidth-limited minimum C. The load must be the
// one the plan was computed for. A plan already within the limit is left
// untouched.
func (p *BufferedPlan) CapDiskCycle(limit time.Duration, load StreamLoad) {
	if p.DiskCycle <= limit {
		return
	}
	p.DiskCycle = limit
	p.DiskIOSize = units.Bytes(float64(load.BitRate) * limit.Seconds())
	p.MEMSCycle = time.Duration(float64(limit) * float64(p.M) / float64(load.N))
	if p.MEMSCycle < p.MinMEMSCycle {
		p.MEMSCycle = p.MinMEMSCycle
	}
}
