package ring

import (
	"testing"
)

func TestFIFO(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.PushBack(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		if v := r.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	var r Ring[int]
	// Interleave pushes and pops so head walks around the buffer many
	// times without growing.
	next, want := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			r.PushBack(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if v := r.PopFront(); v != want {
				t.Fatalf("round %d: PopFront = %d, want %d", round, v, want)
			} else {
				want++
			}
		}
	}
	if n := len(r.buf); n > 8 {
		t.Errorf("steady-state ring grew to %d slots, want <= 8", n)
	}
}

func TestAt(t *testing.T) {
	var r Ring[string]
	r.PushBack("a")
	r.PushBack("b")
	r.PushBack("c")
	r.PopFront()
	r.PushBack("d") // ring now wraps: b c d
	for i, want := range []string{"b", "c", "d"} {
		if got := r.At(i); got != want {
			t.Errorf("At(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestRemoveAtPreservesOrder(t *testing.T) {
	// Remove every position from every fill pattern and compare against a
	// reference slice model, including wrapped states.
	for pre := 0; pre < 12; pre++ { // pops before filling, to wrap head
		for rm := 0; rm < 6; rm++ {
			var r Ring[int]
			for i := 0; i < pre; i++ {
				r.PushBack(-1)
			}
			for i := 0; i < pre; i++ {
				r.PopFront()
			}
			ref := []int{}
			for i := 0; i < 6; i++ {
				r.PushBack(i)
				ref = append(ref, i)
			}
			got := r.RemoveAt(rm)
			want := ref[rm]
			ref = append(ref[:rm], ref[rm+1:]...)
			if got != want {
				t.Fatalf("pre=%d RemoveAt(%d) = %d, want %d", pre, rm, got, want)
			}
			for i, w := range ref {
				if v := r.At(i); v != w {
					t.Fatalf("pre=%d rm=%d: At(%d) = %d, want %d", pre, rm, i, v, w)
				}
			}
			if r.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", r.Len(), len(ref))
			}
		}
	}
}

func TestGrowUnwraps(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 5; i++ {
		r.PushBack(i)
	}
	for i := 0; i < 5; i++ {
		r.PopFront()
	}
	// head is mid-buffer; pushing past capacity must unwrap correctly.
	for i := 0; i < 40; i++ {
		r.PushBack(i)
	}
	for i := 0; i < 40; i++ {
		if v := r.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(r *Ring[int]){
		"PopFront": func(r *Ring[int]) { r.PopFront() },
		"At":       func(r *Ring[int]) { r.At(0) },
		"RemoveAt": func(r *Ring[int]) { r.RemoveAt(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty ring did not panic", name)
				}
			}()
			var r Ring[int]
			fn(&r)
		}()
	}
}

func BenchmarkPushPop(b *testing.B) {
	var r Ring[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PushBack(i)
		r.PopFront()
	}
}
