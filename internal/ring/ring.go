// Package ring provides a growable circular FIFO buffer.
//
// It replaces the copy-shift queue idiom (`copy(q, q[1:])`) that made
// every dequeue O(n): PushBack and PopFront are O(1) amortized, and the
// backing array is reused across the queue's lifetime so a steady-state
// producer/consumer pair allocates nothing. RemoveAt preserves element
// order (it shifts the shorter side), so policy schedulers that pick from
// the middle keep their arrival-order semantics.
package ring

// Ring is a growable circular FIFO. The zero value is an empty ring ready
// to use.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PopFront removes and returns the head element. It panics on an empty
// ring, mirroring a slice-index panic in the idiom it replaces.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ring: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Reset empties the ring, keeping the backing array. Element slots are
// cleared so a pooled ring does not pin references from its previous life.
func (r *Ring[T]) Reset() {
	clear(r.buf)
	r.head, r.n = 0, 0
}

// At returns the i-th element in queue order (0 is the head).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: At out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// RemoveAt removes and returns the i-th element in queue order,
// preserving the relative order of the rest. It shifts whichever side of
// i is shorter, so RemoveAt(0) and RemoveAt(Len()-1) are O(1) and the
// worst case moves Len()/2 elements.
func (r *Ring[T]) RemoveAt(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: RemoveAt out of range")
	}
	m := len(r.buf)
	v := r.buf[(r.head+i)%m]
	if i < r.n-i-1 {
		// Shift [0, i) forward one step, then drop the old head.
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)%m] = r.buf[(r.head+j-1)%m]
		}
		var zero T
		r.buf[r.head] = zero
		r.head = (r.head + 1) % m
	} else {
		// Shift (i, n) back one step, then drop the old tail.
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)%m] = r.buf[(r.head+j+1)%m]
		}
		var zero T
		r.buf[(r.head+r.n-1)%m] = zero
	}
	r.n--
	return v
}

// grow doubles the backing array, unwrapping the ring so head returns
// to index 0.
func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
