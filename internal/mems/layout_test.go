package mems

import (
	"testing"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

func TestLayoutConstructorsValidate(t *testing.T) {
	d, _ := New(G3())
	if _, err := NewContiguous(d, 0); err == nil {
		t.Error("contiguous n=0 accepted")
	}
	if _, err := NewInterleaved(d, 0, units.MB); err == nil {
		t.Error("interleaved n=0 accepted")
	}
	if _, err := NewInterleaved(d, 10, 20*units.GB); err == nil {
		t.Error("oversized interleave accepted")
	}
}

func TestLayoutMapBounds(t *testing.T) {
	d, _ := New(G3())
	co, _ := NewContiguous(d, 8)
	il, _ := NewInterleaved(d, 8, 1*units.MB)
	for _, l := range []Layout{co, il} {
		if _, err := l.Map(8, 0); err == nil {
			t.Errorf("%s: out-of-range stream accepted", l.Name())
		}
		if _, err := l.Map(-1, 0); err == nil {
			t.Errorf("%s: negative stream accepted", l.Name())
		}
		blocks := d.Geometry().Blocks
		for s := 0; s < 8; s++ {
			for _, b := range []int64{0, 1000, 1 << 20, 1 << 24} {
				lbn, err := l.Map(s, b)
				if err != nil {
					t.Fatalf("%s: Map(%d,%d): %v", l.Name(), s, b, err)
				}
				if lbn < 0 || lbn >= blocks {
					t.Fatalf("%s: Map(%d,%d) = %d outside device", l.Name(), s, b, lbn)
				}
			}
		}
	}
}

func TestInterleavedDistinctSlots(t *testing.T) {
	d, _ := New(G3())
	const n = 16
	il, _ := NewInterleaved(d, n, 1*units.MB)
	// At equal progress, all streams occupy disjoint chunks of one stripe.
	seen := map[int64]int{}
	for s := 0; s < n; s++ {
		lbn, err := il.Map(s, 4096) // same block offset for everyone
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[lbn]; dup {
			t.Fatalf("streams %d and %d collide at LBN %d", prev, s, lbn)
		}
		seen[lbn] = s
	}
}

// The future-work claim: streaming-aware placement cuts positioning time
// for lock-step round-robin service.
func TestInterleavedBeatsContiguous(t *testing.T) {
	const n = 32
	const ioBytes = 1 * units.MB
	run := func(l Layout) time.Duration {
		d, _ := New(G3())
		chunkBlocks := int64(ioBytes / d.Geometry().BlockSize)
		var now time.Duration
		var pos time.Duration
		// Ten cycles of one IO per stream, all streams advancing together.
		for cycle := int64(0); cycle < 10; cycle++ {
			for s := 0; s < n; s++ {
				lbn, err := l.Map(s, cycle*chunkBlocks)
				if err != nil {
					t.Fatal(err)
				}
				if lbn+chunkBlocks > d.Geometry().Blocks {
					lbn = d.Geometry().Blocks - chunkBlocks
				}
				c, err := d.Service(now, device.Request{
					Op: device.Read, Block: lbn, Blocks: chunkBlocks, Stream: s,
				})
				if err != nil {
					t.Fatal(err)
				}
				pos += c.Position
				now = c.Finish
			}
		}
		return pos
	}
	dd, _ := New(G3())
	co, err := NewContiguous(dd, n)
	if err != nil {
		t.Fatal(err)
	}
	il, err := NewInterleaved(dd, n, ioBytes)
	if err != nil {
		t.Fatal(err)
	}
	contig := run(co)
	inter := run(il)
	if inter >= contig/2 {
		t.Errorf("interleaved positioning %v not well below contiguous %v", inter, contig)
	}
}
