package mems

import (
	"fmt"

	"memstream/internal/units"
)

// Layout maps stream-relative block addresses onto device LBNs. The
// paper's future work (§7) calls for "intelligent placement policies for
// data on the MEMS device so as to improve the access characteristics";
// these two layouts realize the baseline and the optimization.
type Layout interface {
	// Name identifies the policy.
	Name() string
	// Map translates (stream, stream-relative block) to a device LBN.
	// Requests must stay within one chunk (callers issue IO-sized
	// requests, which is what the chunk is sized to).
	Map(stream int, block int64) (int64, error)
}

// Contiguous is the naive placement: each stream's data occupies one
// contiguous extent. Round-robin service over N streams then pays a long
// X seek on every stream switch, because concurrent streams live far
// apart on the sled.
type Contiguous struct {
	perStream int64 // blocks per stream extent
	streams   int
}

// NewContiguous allocates n equal extents over the device.
func NewContiguous(d *Device, n int) (*Contiguous, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mems: need at least one stream")
	}
	per := d.Geometry().Blocks / int64(n)
	if per < 1 {
		return nil, fmt.Errorf("mems: %d streams exceed device blocks", n)
	}
	return &Contiguous{perStream: per, streams: n}, nil
}

// Name identifies the policy.
func (c *Contiguous) Name() string { return "contiguous" }

// Map places stream s's block b inside its extent (wrapping within it).
func (c *Contiguous) Map(stream int, block int64) (int64, error) {
	if stream < 0 || stream >= c.streams {
		return 0, fmt.Errorf("mems: stream %d outside layout of %d", stream, c.streams)
	}
	return int64(stream)*c.perStream + block%c.perStream, nil
}

// Interleaved is the streaming-aware placement: the j-th chunk of every
// stream is grouped into the j-th stripe, so streams progressing in lock
// step (which time-cycle scheduling guarantees) always access neighboring
// sled positions. Stream switches within a cycle then cost near-minimal X
// movement.
type Interleaved struct {
	chunk   int64 // blocks per chunk (one IO)
	streams int
	stripes int64 // chunks per stream that fit
}

// NewInterleaved builds the interleaving for n streams issuing IOs of
// ioSize bytes.
func NewInterleaved(d *Device, n int, ioSize units.Bytes) (*Interleaved, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mems: need at least one stream")
	}
	chunk := int64(ioSize / d.Geometry().BlockSize)
	if chunk < 1 {
		chunk = 1
	}
	stripes := d.Geometry().Blocks / (int64(n) * chunk)
	if stripes < 1 {
		return nil, fmt.Errorf("mems: %d streams with %v IOs exceed device capacity", n, ioSize)
	}
	return &Interleaved{chunk: chunk, streams: n, stripes: stripes}, nil
}

// Name identifies the policy.
func (il *Interleaved) Name() string { return "interleaved" }

// Map sends stream s's block b to stripe (b/chunk), slot s within the
// stripe, wrapping when the stream outgrows the stripes.
func (il *Interleaved) Map(stream int, block int64) (int64, error) {
	if stream < 0 || stream >= il.streams {
		return 0, fmt.Errorf("mems: stream %d outside layout of %d", stream, il.streams)
	}
	stripe := (block / il.chunk) % il.stripes
	within := block % il.chunk
	return stripe*int64(il.streams)*il.chunk + int64(stream)*il.chunk + within, nil
}

var (
	_ Layout = (*Contiguous)(nil)
	_ Layout = (*Interleaved)(nil)
)
