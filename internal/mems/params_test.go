package mems

import (
	"testing"
	"time"
)

// TestGenerationMonotonicity pins the scaling story the G1/G2
// interpolation is built on: each generation's latencies are no worse and
// its bandwidth, capacity, and prices strictly improve. A parameter edit
// that breaks the trajectory breaks the generations experiment's claim.
func TestGenerationMonotonicity(t *testing.T) {
	gens := []Params{G1(), G2(), G3()}
	for i := 1; i < len(gens); i++ {
		prev, cur := gens[i-1], gens[i]
		if cur.MaxLatency() > prev.MaxLatency() {
			t.Errorf("%s max latency %v exceeds %s's %v",
				cur.Name, cur.MaxLatency(), prev.Name, prev.MaxLatency())
		}
		if cur.AvgLatency() > prev.AvgLatency() {
			t.Errorf("%s avg latency %v exceeds %s's %v",
				cur.Name, cur.AvgLatency(), prev.Name, prev.AvgLatency())
		}
		if cur.Rate <= prev.Rate {
			t.Errorf("%s rate %v not above %s's %v", cur.Name, cur.Rate, prev.Name, prev.Rate)
		}
		if cur.Capacity <= prev.Capacity {
			t.Errorf("%s capacity %v not above %s's %v",
				cur.Name, cur.Capacity, prev.Name, prev.Capacity)
		}
		if cur.CostPerGB >= prev.CostPerGB {
			t.Errorf("%s $/GB %v not below %s's %v",
				cur.Name, cur.CostPerGB, prev.Name, prev.CostPerGB)
		}
		if cur.CostPerDev >= prev.CostPerDev {
			t.Errorf("%s $/device %v not below %s's %v",
				cur.Name, cur.CostPerDev, prev.Name, prev.CostPerDev)
		}
		if cur.Year <= prev.Year {
			t.Errorf("%s year %d not after %s's %d", cur.Name, cur.Year, prev.Name, prev.Year)
		}
	}
	for _, p := range gens {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.AvgLatency() > p.MaxLatency() {
			t.Errorf("%s: avg latency %v above max %v", p.Name, p.AvgLatency(), p.MaxLatency())
		}
	}
}

// TestParamsValidateRejects exercises every arm of Validate with a
// single-field mutation of the known-good G3 parameters.
func TestParamsValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero capacity", func(p *Params) { p.Capacity = 0 }},
		{"negative capacity", func(p *Params) { p.Capacity = -1 }},
		{"zero sector", func(p *Params) { p.SectorBytes = 0 }},
		{"zero cylinders", func(p *Params) { p.Cylinders = 0 }},
		{"negative cylinders", func(p *Params) { p.Cylinders = -4 }},
		{"zero tips", func(p *Params) { p.ActiveTips = 0 }},
		{"zero rate", func(p *Params) { p.Rate = 0 }},
		{"negative rate", func(p *Params) { p.Rate = -1 }},
		{"negative seek X", func(p *Params) { p.FullStrokeSeekX = -time.Microsecond }},
		{"negative seek Y", func(p *Params) { p.FullStrokeSeekY = -time.Microsecond }},
		{"negative settle", func(p *Params) { p.SettleX = -time.Microsecond }},
		{"negative turnaround", func(p *Params) { p.Turnaround = -time.Microsecond }},
	}
	for _, tc := range cases {
		p := G3()
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
	if err := G3().Validate(); err != nil {
		t.Fatalf("unmutated G3 rejected: %v", err)
	}
}
