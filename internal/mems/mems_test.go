package mems

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

func TestGenerationsValidate(t *testing.T) {
	for _, p := range []Params{G1(), G2(), G3()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestG3MatchesPaperTable3(t *testing.T) {
	p := G3()
	if p.Rate != 320*units.MBPS {
		t.Errorf("G3 rate = %v, want 320MB/s", p.Rate)
	}
	if p.Capacity != 10*units.GB {
		t.Errorf("G3 capacity = %v, want 10GB", p.Capacity)
	}
	if p.FullStrokeSeekX != 450*time.Microsecond {
		t.Errorf("G3 full-stroke = %v, want 0.45ms", p.FullStrokeSeekX)
	}
	if p.SettleX != 140*time.Microsecond {
		t.Errorf("G3 settle = %v, want 0.14ms", p.SettleX)
	}
	if p.CostPerGB != 1 || p.CostPerDev != 10 {
		t.Errorf("G3 cost = $%v/GB $%v/dev, want $1/GB $10/dev", p.CostPerGB, p.CostPerDev)
	}
}

func TestMaxLatency(t *testing.T) {
	p := G3()
	want := p.FullStrokeSeekX + p.SettleX // 0.59ms; Y path is shorter
	if got := p.MaxLatency(); got != want {
		t.Errorf("MaxLatency = %v, want %v", got, want)
	}
	// Table 1 predicts 0.4–1 ms access time for 2007 MEMS.
	if got := p.MaxLatency(); got < 400*time.Microsecond || got > time.Millisecond {
		t.Errorf("G3 max latency %v outside paper's 0.4–1ms band", got)
	}
}

func TestAvgLatencyBelowMax(t *testing.T) {
	for _, p := range []Params{G1(), G2(), G3()} {
		avg, max := p.AvgLatency(), p.MaxLatency()
		if avg <= 0 || avg >= max {
			t.Errorf("%s: avg latency %v not in (0, %v)", p.Name, avg, max)
		}
		// Average random positioning should be well under the full stroke.
		if avg > time.Duration(0.9*float64(max)) {
			t.Errorf("%s: avg latency %v implausibly close to max %v", p.Name, avg, max)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Capacity = 0 },
		func(p *Params) { p.SectorBytes = 0 },
		func(p *Params) { p.Cylinders = 0 },
		func(p *Params) { p.ActiveTips = 0 },
		func(p *Params) { p.Rate = 0 },
		func(p *Params) { p.SettleX = -time.Millisecond },
	}
	for i, mut := range mutations {
		p := G3()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewDeviceGeometry(t *testing.T) {
	d, err := New(G3())
	if err != nil {
		t.Fatal(err)
	}
	g := d.Geometry()
	if g.BlockSize != 512 {
		t.Errorf("block size = %v", g.BlockSize)
	}
	// Capacity is preserved up to cylinder-rounding.
	if math.Abs(float64(g.Capacity()-10*units.GB)) > float64(10*units.MB) {
		t.Errorf("capacity = %v, want ≈10GB", g.Capacity())
	}
}

func TestSeekTimeZeroAtCurrentPosition(t *testing.T) {
	d, _ := New(G3())
	if got := d.SeekTime(0); got != 0 {
		t.Errorf("seek to current position = %v, want 0", got)
	}
}

func TestSeekTimeFullStroke(t *testing.T) {
	d, _ := New(G3())
	// Seeking from block 0 to the far corner costs ≈ full stroke + settle.
	last := d.Geometry().Blocks - 1
	got := d.SeekTime(last)
	max := d.Params().MaxLatency()
	if got < time.Duration(0.9*float64(max)) || got > max {
		t.Errorf("far-corner seek = %v, want ≈%v", got, max)
	}
}

func TestSeekTimeSquareRootLaw(t *testing.T) {
	d, _ := New(G3())
	bpc := d.Geometry().Blocks / int64(d.Params().Cylinders)
	// Quarter stroke should cost about half of a full stroke (sqrt law),
	// comparing X components net of settle.
	settle := d.Params().SettleX
	quarter := d.SeekTime(bpc*int64(d.Params().Cylinders/4)) - settle
	full := d.SeekTime(bpc*int64(d.Params().Cylinders-1)) - settle
	ratio := float64(quarter) / float64(full)
	if math.Abs(ratio-0.5) > 0.1 {
		t.Errorf("quarter/full stroke ratio = %v, want ≈0.5", ratio)
	}
}

func TestServiceTransfersAtRate(t *testing.T) {
	d, _ := New(G3())
	// ~1 MB contiguous from the current position: no seek, pure transfer.
	const blocks = 2000 // 1.024e6 bytes at 512B sectors
	c, err := d.Service(0, device.Request{Op: device.Read, Block: 0, Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	wantXfer := (units.Bytes(blocks) * 512).Duration(320 * units.MBPS)
	if diff := c.Transfer - wantXfer; diff < 0 || diff > time.Millisecond {
		t.Errorf("transfer = %v, want ≈%v (+cyl crossings)", c.Transfer, wantXfer)
	}
	if c.Position != 0 {
		t.Errorf("position = %v, want 0", c.Position)
	}
}

func TestServiceUpdatesSledState(t *testing.T) {
	d, _ := New(G3())
	far := d.Geometry().Blocks / 2
	if _, err := d.Service(0, device.Request{Block: far, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	// Re-reading right after the previous request ends is nearly free.
	c, err := d.Service(time.Millisecond, device.Request{Block: far + 8, Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Position > 100*time.Microsecond {
		t.Errorf("sequential continuation position cost = %v, want tiny", c.Position)
	}
}

func TestServiceRejectsOutOfRange(t *testing.T) {
	d, _ := New(G3())
	if _, err := d.Service(0, device.Request{Block: d.Geometry().Blocks, Blocks: 1}); err == nil {
		t.Fatal("out-of-range request accepted")
	}
	if _, err := d.Service(0, device.Request{Block: 0, Blocks: 0}); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestServiceAccounting(t *testing.T) {
	d, _ := New(G3())
	for i := int64(0); i < 10; i++ {
		if _, err := d.Service(0, device.Request{Block: i * 1000, Blocks: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Served() != 10 {
		t.Errorf("Served = %d", d.Served())
	}
	if d.BusyTime() != d.TotalSeekTime()+d.TotalTransferTime() {
		t.Error("busy time != seek + transfer")
	}
	d.Reset()
	if d.Served() != 0 || d.BusyTime() != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestEffectiveThroughputMatchesFig2Shape(t *testing.T) {
	// Random 1MB IOs at max latency should deliver far less than the media
	// rate; 8MB should deliver most of it (Figure 2 shape).
	d, _ := New(G3())
	m := d.Model()
	at := func(io units.Bytes) float64 {
		return float64(device.EffectiveThroughput(io, m.Rate, m.MaxLatency)) / float64(m.Rate)
	}
	if u := at(128 * units.KB); u > 0.5 {
		t.Errorf("128KB utilization = %v, want < 0.5", u)
	}
	if u := at(8 * units.MB); u < 0.9 {
		t.Errorf("8MB utilization = %v, want > 0.9", u)
	}
}

func TestModelLatenciesConsistent(t *testing.T) {
	d, _ := New(G3())
	m := d.Model()
	if m.AvgLatency >= m.MaxLatency {
		t.Errorf("avg %v >= max %v", m.AvgLatency, m.MaxLatency)
	}
	if m.Name != "G3 MEMS" || m.CostPerDev != 10 {
		t.Errorf("model metadata wrong: %+v", m)
	}
}

// Property: every measured service positioning time is bounded by the
// device's published maximum latency.
func TestSeekBoundedProperty(t *testing.T) {
	d, _ := New(G3())
	max := d.Params().MaxLatency()
	f := func(a uint32) bool {
		lbn := int64(a) % d.Geometry().Blocks
		c, err := d.Service(0, device.Request{Block: lbn, Blocks: 1})
		if err != nil {
			return false
		}
		return c.Position <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: seek time from a fixed position is monotone in cylinder
// distance (net of the Y component, which we make constant by probing
// track starts).
func TestSeekMonotoneInDistanceProperty(t *testing.T) {
	d, _ := New(G3())
	bpc := d.Geometry().Blocks / int64(d.Params().Cylinders)
	f := func(a, b uint16) bool {
		ca := int(a) % d.Params().Cylinders
		cb := int(b) % d.Params().Cylinders
		if ca > cb {
			ca, cb = cb, ca
		}
		d.Reset()
		ta := d.SeekTime(int64(ca) * bpc)
		d.Reset()
		tb := d.SeekTime(int64(cb) * bpc)
		return ta <= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulerFCFSOrder(t *testing.T) {
	d, _ := New(G3())
	s := NewScheduler(d, FCFS)
	for i := 0; i < 5; i++ {
		s.Enqueue(device.Request{Block: int64(4-i) * 1e6, Blocks: 8, Stream: i})
	}
	cs, err := s.DrainAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		if c.Stream != i {
			t.Fatalf("FCFS served stream %d at position %d", c.Stream, i)
		}
	}
}

func TestSchedulerSPTFBeatsFCFS(t *testing.T) {
	mk := func(policy Policy) time.Duration {
		d, _ := New(G3())
		s := NewScheduler(d, policy)
		// Scatter requests; SPTF should finish the batch sooner.
		blocks := d.Geometry().Blocks
		for i := 0; i < 40; i++ {
			lbn := (int64(i) * 7919 * 12345) % blocks
			if lbn < 0 {
				lbn += blocks
			}
			s.Enqueue(device.Request{Block: lbn, Blocks: 8})
		}
		cs, err := s.DrainAll(0)
		if err != nil {
			t.Fatal(err)
		}
		return cs[len(cs)-1].Finish
	}
	fcfs, sptf := mk(FCFS), mk(SPTF)
	if sptf >= fcfs {
		t.Errorf("SPTF (%v) not faster than FCFS (%v)", sptf, fcfs)
	}
}

func TestSchedulerElevatorServesAll(t *testing.T) {
	d, _ := New(G3())
	s := NewScheduler(d, Elevator)
	n := 30
	for i := 0; i < n; i++ {
		s.Enqueue(device.Request{Block: int64((i * 997) % 1000 * 10000), Blocks: 4, Stream: i})
	}
	cs, err := s.DrainAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != n {
		t.Fatalf("served %d of %d", len(cs), n)
	}
	seen := make(map[int]bool)
	for _, c := range cs {
		seen[c.Stream] = true
	}
	if len(seen) != n {
		t.Errorf("elevator dropped requests: %d unique", len(seen))
	}
}

func TestSchedulerQueueDelay(t *testing.T) {
	d, _ := New(G3())
	s := NewScheduler(d, FCFS)
	s.Enqueue(device.Request{Block: 0, Blocks: 8, Issued: 0})
	c, ok, err := s.Dispatch(5 * time.Millisecond)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if c.QueueDelay != 5*time.Millisecond {
		t.Errorf("QueueDelay = %v, want 5ms", c.QueueDelay)
	}
}

func TestSchedulerEmptyDispatch(t *testing.T) {
	d, _ := New(G3())
	s := NewScheduler(d, SPTF)
	if _, ok, err := s.Dispatch(0); ok || err != nil {
		t.Fatalf("empty dispatch: ok=%v err=%v", ok, err)
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || SPTF.String() != "sptf" || Elevator.String() != "elevator" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestOnDeviceCache(t *testing.T) {
	// Paper §3 assumes MEMS devices include on-device caches like disks'.
	d, _ := New(G3())
	if err := d.EnableCache(16*units.MB, 1*units.GBPS); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableCache(16*units.MB, 0); err == nil {
		t.Fatal("zero interface rate accepted")
	}
	far := d.Geometry().Blocks - 4096
	first, err := d.Service(0, device.Request{Op: device.Read, Block: far, Blocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Move the sled away, then re-read: the cache hit must skip the seek.
	if _, err := d.Service(first.Finish, device.Request{Op: device.Read, Block: 0, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	hit, err := d.Service(first.Finish+time.Second, device.Request{Op: device.Read, Block: far, Blocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Position != 0 {
		t.Errorf("cache hit paid positioning %v", hit.Position)
	}
	if hit.ServiceTime() >= first.ServiceTime() {
		t.Errorf("hit (%v) not faster than miss (%v)", hit.ServiceTime(), first.ServiceTime())
	}
	if d.Cache().Hits != 1 {
		t.Errorf("cache hits = %d", d.Cache().Hits)
	}
	// A write to the cached range invalidates it.
	if _, err := d.Service(hit.Finish, device.Request{Op: device.Write, Block: far + 100, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	again, err := d.Service(hit.Finish+time.Second, device.Request{Op: device.Read, Block: far, Blocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if again.Position == 0 {
		t.Error("invalidated range still served from cache")
	}
}

func TestTipSparing(t *testing.T) {
	d, _ := New(G3())
	full := d.Model().Rate

	// Failures within the ~10% spare pool cost nothing.
	spares := d.Params().ActiveTips / 10
	if err := d.FailTips(spares); err != nil {
		t.Fatal(err)
	}
	if d.Model().Rate != full {
		t.Errorf("rate derated within spare pool: %v", d.Model().Rate)
	}

	// Beyond the spares, the rate derates proportionally.
	if err := d.FailTips(spares + d.Params().ActiveTips/4); err != nil {
		t.Fatal(err)
	}
	derated := d.Model().Rate
	want := float64(full) * 0.75
	if math.Abs(float64(derated)-want) > 0.01*want {
		t.Errorf("derated rate = %v, want ≈%v", derated, units.ByteRate(want))
	}
	// Transfers actually slow down.
	c1, err := d.Service(0, device.Request{Op: device.Read, Block: 0, Blocks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailTips(0); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	c2, err := d.Service(0, device.Request{Op: device.Read, Block: 0, Blocks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Transfer <= c2.Transfer {
		t.Errorf("derated transfer %v not slower than healthy %v", c1.Transfer, c2.Transfer)
	}
	if d.FailedTips() != 0 {
		t.Errorf("FailedTips = %d after reset to 0", d.FailedTips())
	}
	// Bounds.
	if err := d.FailTips(-1); err == nil {
		t.Error("negative failures accepted")
	}
	if err := d.FailTips(d.Params().ActiveTips + 1); err == nil {
		t.Error("failing more tips than exist accepted")
	}
}
