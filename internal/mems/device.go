package mems

import (
	"fmt"
	"math"
	"time"

	"memstream/internal/device"
	"memstream/internal/units"
)

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Device is a simulated MEMS storage device. It tracks the sled position
// between requests so that service times reflect actual displacement, the
// way the CMU simulator does, rather than charging a constant.
//
// Device is not safe for concurrent use; in a simulation it belongs to a
// single Engine goroutine.
type Device struct {
	p    Params
	geom device.Geometry

	blocksPerTrack int64 // sectors a single Y sweep yields across all active tips
	tracksPerCyl   int64 // always 1 in this layout; kept for clarity

	// Sled state.
	cyl  int     // current X position (cylinder)
	ypos float64 // current Y position, fraction of full stroke
	ydir int     // +1 or -1, direction of last sweep

	// Optional on-device read cache (paper §3 assumes MEMS devices carry
	// one, like disk-drive caches). Nil when disabled.
	cache     *device.ReadCache
	cacheRate units.ByteRate

	// failedTips counts tips marked failed via FailTips.
	failedTips int

	// Statistics.
	served    uint64
	busy      time.Duration
	seekTime  time.Duration
	xferTime  time.Duration
	lastStats device.Completion
}

// FailTips marks n of the device's tips as failed. The CMU designs carry
// spare tips (about 10% of the array); failures up to the spare pool are
// remapped with no performance effect, and failures beyond it derate the
// aggregate transfer rate proportionally — fewer tips stream the sled's
// data, so every transfer takes longer. Capacity is preserved (data moves
// to the regions served by surviving tips).
func (d *Device) FailTips(n int) error {
	if n < 0 || n > d.p.ActiveTips {
		return fmt.Errorf("mems: cannot fail %d of %d tips", n, d.p.ActiveTips)
	}
	d.failedTips = n
	return nil
}

// FailedTips reports how many tips have been failed.
func (d *Device) FailedTips() int { return d.failedTips }

// spareTips is the reserve fraction of the tip array (CMU designs carry
// roughly 10% spares).
func (d *Device) spareTips() int { return d.p.ActiveTips / 10 }

// effectiveRate is the media rate after tip failures: full until the
// spares are exhausted, then proportional to surviving active tips.
func (d *Device) effectiveRate() units.ByteRate {
	if d.failedTips <= d.spareTips() {
		return d.p.Rate
	}
	surviving := d.p.ActiveTips - (d.failedTips - d.spareTips())
	return units.ByteRate(float64(d.p.Rate) * float64(surviving) / float64(d.p.ActiveTips))
}

// EnableCache attaches an on-device read cache of the given byte capacity
// served at ifaceRate (the device interface speed, typically several times
// the media rate). Cache hits skip positioning and media transfer.
func (d *Device) EnableCache(capacity units.Bytes, ifaceRate units.ByteRate) error {
	if ifaceRate <= 0 {
		return fmt.Errorf("mems: non-positive cache interface rate %v", ifaceRate)
	}
	c, err := device.NewReadCache(int64(capacity / d.geom.BlockSize))
	if err != nil {
		return err
	}
	d.cache = c
	d.cacheRate = ifaceRate
	return nil
}

// Cache returns the attached read cache, or nil.
func (d *Device) Cache() *device.ReadCache { return d.cache }

// New constructs a Device from params.
func New(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	blocks := int64(p.Capacity / p.SectorBytes)
	bpt := blocks / int64(p.Cylinders)
	if bpt <= 0 {
		return nil, fmt.Errorf("mems: %s: capacity too small for %d cylinders", p.Name, p.Cylinders)
	}
	return &Device{
		p:              p,
		geom:           device.Geometry{BlockSize: p.SectorBytes, Blocks: bpt * int64(p.Cylinders)},
		blocksPerTrack: bpt,
		tracksPerCyl:   1,
		ydir:           1,
	}, nil
}

// Params returns the device's parameter set.
func (d *Device) Params() Params { return d.p }

// Geometry returns the logical block geometry.
func (d *Device) Geometry() device.Geometry { return d.geom }

// Model returns the static performance description used by the analytical
// framework.
func (d *Device) Model() device.Model {
	return device.Model{
		Name:       d.p.Name,
		Rate:       d.effectiveRate(),
		AvgLatency: d.p.AvgLatency(),
		MaxLatency: d.p.MaxLatency(),
		Capacity:   d.geom.Capacity(),
		CostPerGB:  d.p.CostPerGB,
		CostPerDev: d.p.CostPerDev,
	}
}

// Cylinder returns the cylinder holding logical block lbn.
func (d *Device) Cylinder(lbn int64) int {
	return int(lbn / d.blocksPerTrack)
}

// yFraction returns the Y sweep position of lbn within its cylinder.
func (d *Device) yFraction(lbn int64) float64 {
	off := lbn % d.blocksPerTrack
	return float64(off) / float64(d.blocksPerTrack)
}

// SeekTime returns the positioning time to move the sled from its current
// position to block lbn, without performing the move: the maximum of the X
// seek (plus settle when the cylinder changes) and the Y reposition (plus
// turnaround when the sweep direction must reverse).
func (d *Device) SeekTime(lbn int64) time.Duration {
	targetCyl := d.Cylinder(lbn)
	targetY := d.yFraction(lbn)

	var tx time.Duration
	if targetCyl != d.cyl {
		frac := math.Abs(float64(targetCyl-d.cyl)) / float64(d.p.Cylinders)
		tx = time.Duration(float64(d.p.FullStrokeSeekX)*sqrtf(frac)) + d.p.SettleX
	}

	dy := targetY - d.ypos
	ty := time.Duration(float64(d.p.FullStrokeSeekY) * sqrtf(math.Abs(dy)))
	// Reading proceeds in +Y; if the sled ended its last sweep moving away
	// from the target start we pay a turnaround.
	if (dy < 0 && d.ydir > 0) || (dy > 0 && d.ydir < 0) {
		ty += d.p.Turnaround
	}

	if tx > ty {
		return tx
	}
	return ty
}

// Service performs one request: it seeks, transfers, updates sled state and
// returns the completion record. now is the simulation time at which the
// device starts the request.
func (d *Device) Service(now time.Duration, r device.Request) (device.Completion, error) {
	if err := d.geom.Validate(r); err != nil {
		return device.Completion{}, err
	}
	if d.cache != nil {
		if r.Op == device.Write {
			d.cache.Invalidate(r.Block, r.Blocks)
		} else if d.cache.Lookup(r.Block, r.Blocks) {
			// Cache hit: served from on-device buffer at interface speed;
			// the sled does not move.
			bytes := units.Bytes(r.Blocks) * d.geom.BlockSize
			xfer := bytes.Duration(d.cacheRate)
			c := device.Completion{Request: r, Start: now, Finish: now + xfer, Transfer: xfer}
			d.served++
			d.busy += xfer
			d.xferTime += xfer
			d.lastStats = c
			return c, nil
		}
	}
	seek := d.SeekTime(r.Block)

	// Transfer: blocks stream at the aggregate tip rate; each cylinder
	// boundary crossed mid-transfer costs one settle (the sled nudges to
	// the next X position and resumes the sweep).
	bytes := units.Bytes(r.Blocks) * d.geom.BlockSize
	xfer := bytes.Duration(d.effectiveRate())
	firstCyl := d.Cylinder(r.Block)
	lastCyl := d.Cylinder(r.Block + r.Blocks - 1)
	if lastCyl > firstCyl {
		xfer += time.Duration(lastCyl-firstCyl) * d.p.SettleX
	}

	// Update sled state to the end of the transfer.
	end := r.Block + r.Blocks - 1
	d.cyl = d.Cylinder(end)
	d.ypos = d.yFraction(end)
	d.ydir = 1

	c := device.Completion{
		Request:  r,
		Start:    now,
		Finish:   now + seek + xfer,
		Position: seek,
		Transfer: xfer,
	}
	d.served++
	d.busy += seek + xfer
	d.seekTime += seek
	d.xferTime += xfer
	d.lastStats = c
	if d.cache != nil && r.Op == device.Read {
		d.cache.Insert(r.Block, r.Blocks)
	}
	return c, nil
}

// Reset returns the sled to cylinder 0, Y=0 and clears statistics.
func (d *Device) Reset() {
	d.cyl, d.ypos, d.ydir = 0, 0, 1
	d.served, d.busy, d.seekTime, d.xferTime = 0, 0, 0, 0
}

// Served reports the number of completed requests.
func (d *Device) Served() uint64 { return d.served }

// BusyTime reports cumulative service time.
func (d *Device) BusyTime() time.Duration { return d.busy }

// TotalSeekTime reports cumulative positioning time.
func (d *Device) TotalSeekTime() time.Duration { return d.seekTime }

// TotalTransferTime reports cumulative media transfer time.
func (d *Device) TotalTransferTime() time.Duration { return d.xferTime }
