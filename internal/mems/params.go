// Package mems models a MEMS-based storage device after the CMU
// architecture of Schlosser, Griffin, Nagle and Ganger (ASPLOS 2000): a
// spring-mounted magnetic media sled suspended over a two-dimensional array
// of fixed read/write tips. The sled seeks in X (cross-track, requiring a
// settle phase) and streams in Y at constant velocity while thousands of
// tips transfer concurrently.
//
// The paper under reproduction uses the CMU "third generation" (G3) device
// predictions for 2007: 320 MB/s, 0.45 ms full-stroke seek, 0.14 ms X settle
// time, 10 GB per device, $1/GB and $10/device (its Table 3). This package
// reproduces those numbers as a full device simulator: logical blocks are
// mapped onto (cylinder, track, sector) coordinates, seeks follow the
// spring-mass square-root law, and per-request service times emerge from
// sled position rather than from a constant.
package mems

import (
	"fmt"
	"time"

	"memstream/internal/units"
)

// Params describes one MEMS device generation.
type Params struct {
	Name string
	Year int

	// Capacity and layout.
	Capacity    units.Bytes
	SectorBytes units.Bytes // logical block size
	Cylinders   int         // distinct X positions
	ActiveTips  int         // tips transferring concurrently

	// Sled dynamics. Seek time across a fraction f of the full stroke
	// follows the constant-acceleration law t = FullStrokeSeek * sqrt(f);
	// X repositioning additionally pays SettleX once.
	FullStrokeSeekX time.Duration
	FullStrokeSeekY time.Duration
	SettleX         time.Duration
	// Turnaround is the penalty for reversing Y direction between
	// back-to-back transfers (springs must decelerate and re-launch).
	Turnaround time.Duration

	// Media rate with all active tips streaming.
	Rate units.ByteRate

	// Cost model (paper Table 3 uses per-device entry cost, Eq 2).
	CostPerGB  units.Dollars
	CostPerDev units.Dollars
}

// G1 is a first-generation device (c. 2003). The CMU papers published full
// parameters only for their baseline and G3 designs; G1/G2 here follow the
// generation-over-generation scaling CMU described (density doubling,
// actuator improvements), anchored so G3 matches the paper's Table 3.
func G1() Params {
	return Params{
		Name:            "G1 MEMS",
		Year:            2003,
		Capacity:        3.46 * units.GB,
		SectorBytes:     512,
		Cylinders:       2500,
		ActiveTips:      1280,
		FullStrokeSeekX: units.Milliseconds(0.81),
		FullStrokeSeekY: units.Milliseconds(0.81),
		SettleX:         units.Milliseconds(0.22),
		Turnaround:      units.Milliseconds(0.06),
		Rate:            89.6 * units.MBPS,
		CostPerGB:       10,
		CostPerDev:      35,
	}
}

// G2 is a second-generation device (c. 2005), interpolated as for G1.
func G2() Params {
	return Params{
		Name:            "G2 MEMS",
		Year:            2005,
		Capacity:        6.92 * units.GB,
		SectorBytes:     512,
		Cylinders:       2500,
		ActiveTips:      2560,
		FullStrokeSeekX: units.Milliseconds(0.60),
		FullStrokeSeekY: units.Milliseconds(0.60),
		SettleX:         units.Milliseconds(0.18),
		Turnaround:      units.Milliseconds(0.05),
		Rate:            180 * units.MBPS,
		CostPerGB:       3,
		CostPerDev:      21,
	}
}

// G3 is the third-generation device the paper evaluates (its Table 3):
// 10 GB, 320 MB/s, 0.45 ms full-stroke seek, 0.14 ms X settle, $1/GB,
// $10/device.
func G3() Params {
	return Params{
		Name:            "G3 MEMS",
		Year:            2007,
		Capacity:        10 * units.GB,
		SectorBytes:     512,
		Cylinders:       2500,
		ActiveTips:      3200,
		FullStrokeSeekX: units.Milliseconds(0.45),
		FullStrokeSeekY: units.Milliseconds(0.45),
		SettleX:         units.Milliseconds(0.14),
		Turnaround:      units.Milliseconds(0.04),
		Rate:            320 * units.MBPS,
		CostPerGB:       1,
		CostPerDev:      10,
	}
}

// Validate checks the parameter set for internal consistency.
func (p Params) Validate() error {
	switch {
	case p.Capacity <= 0:
		return fmt.Errorf("mems: %s: non-positive capacity", p.Name)
	case p.SectorBytes <= 0:
		return fmt.Errorf("mems: %s: non-positive sector size", p.Name)
	case p.Cylinders <= 0:
		return fmt.Errorf("mems: %s: non-positive cylinder count", p.Name)
	case p.ActiveTips <= 0:
		return fmt.Errorf("mems: %s: non-positive tip count", p.Name)
	case p.Rate <= 0:
		return fmt.Errorf("mems: %s: non-positive rate", p.Name)
	case p.FullStrokeSeekX < 0 || p.FullStrokeSeekY < 0 || p.SettleX < 0 || p.Turnaround < 0:
		return fmt.Errorf("mems: %s: negative timing parameter", p.Name)
	}
	return nil
}

// MaxLatency is the worst-case positioning time: a full X stroke plus
// settle, with the (shorter or equal) Y reposition fully overlapped. The
// paper's evaluation always charges MEMS IOs this maximum (its §5).
func (p Params) MaxLatency() time.Duration {
	x := p.FullStrokeSeekX + p.SettleX
	y := p.FullStrokeSeekY + p.Turnaround
	if y > x {
		return y
	}
	return x
}

// AvgLatency is the expected positioning time for a uniformly random
// relocation: E[max(tX+settle, tY)] with both displacement fractions
// uniform on |a-b| for a,b ~ U[0,1]. Computed by fixed-grid numerical
// integration at construction time (no RNG involved).
func (p Params) AvgLatency() time.Duration {
	const grid = 200
	var sum, weight float64
	for i := 0; i < grid; i++ {
		// Displacement fraction u has density 2(1-u) on [0,1].
		u := (float64(i) + 0.5) / grid
		wu := 2 * (1 - u)
		tx := p.FullStrokeSeekX.Seconds()*sqrtf(u) + p.SettleX.Seconds()
		for j := 0; j < grid; j++ {
			v := (float64(j) + 0.5) / grid
			wv := 2 * (1 - v)
			ty := p.FullStrokeSeekY.Seconds()*sqrtf(v) + p.Turnaround.Seconds()
			m := tx
			if ty > m {
				m = ty
			}
			sum += wu * wv * m
			weight += wu * wv
		}
	}
	return units.Seconds(sum / weight)
}
