package mems

import (
	"fmt"
	"time"

	"memstream/internal/device"
	"memstream/internal/ring"
)

// Policy selects the order in which queued requests are serviced.
type Policy uint8

// Scheduling policies.
const (
	// FCFS services requests in arrival order.
	FCFS Policy = iota
	// SPTF services the request with the shortest positioning time from
	// the current sled position (greedy, like disk SPTF).
	SPTF
	// Elevator sweeps the cylinders in alternating directions.
	Elevator
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SPTF:
		return "sptf"
	case Elevator:
		return "elevator"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Scheduler orders pending requests for a Device and services them one at a
// time. It is a pure in-simulation component: Next/Dispatch advance the
// device's state; the caller owns simulated time. The pending queue is a
// ring buffer: FCFS dispatch (pick index 0) is O(1) instead of the O(n)
// slice shift it used to be, and the positioning-aware policies scan it
// in arrival order exactly as before.
type Scheduler struct {
	dev    *Device
	policy Policy
	queue  ring.Ring[device.Request]
	sweep  int // elevator direction
}

// NewScheduler wraps dev with the given policy.
func NewScheduler(dev *Device, policy Policy) *Scheduler {
	return &Scheduler{dev: dev, policy: policy, sweep: 1}
}

// Enqueue adds a request to the pending queue.
func (s *Scheduler) Enqueue(r device.Request) { s.queue.PushBack(r) }

// Len reports the number of pending requests.
func (s *Scheduler) Len() int { return s.queue.Len() }

// pick returns the index of the next request to service.
func (s *Scheduler) pick() int {
	switch s.policy {
	case SPTF:
		best, bestT := 0, time.Duration(1<<62)
		for i, n := 0, s.queue.Len(); i < n; i++ {
			if t := s.dev.SeekTime(s.queue.At(i).Block); t < bestT {
				best, bestT = i, t
			}
		}
		return best
	case Elevator:
		cur := s.dev.cyl
		best, bestD := -1, 1<<31
		// Prefer the nearest request in the sweep direction.
		for i, n := 0, s.queue.Len(); i < n; i++ {
			d := s.dev.Cylinder(s.queue.At(i).Block) - cur
			if s.sweep < 0 {
				d = -d
			}
			if d >= 0 && d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			return best
		}
		// Nothing ahead: reverse and retry.
		s.sweep = -s.sweep
		return s.pick()
	default:
		return 0
	}
}

// Dispatch services the next request according to the policy, starting at
// simulated time now. It reports false when the queue is empty.
func (s *Scheduler) Dispatch(now time.Duration) (device.Completion, bool, error) {
	if s.queue.Len() == 0 {
		return device.Completion{}, false, nil
	}
	r := s.queue.RemoveAt(s.pick())
	c, err := s.dev.Service(now, r)
	if err != nil {
		return device.Completion{}, false, err
	}
	c.QueueDelay = now - r.Issued
	return c, true, nil
}

// DrainAll services every queued request back-to-back starting at now and
// returns the completions in service order.
func (s *Scheduler) DrainAll(now time.Duration) ([]device.Completion, error) {
	var out []device.Completion
	t := now
	for s.queue.Len() > 0 {
		c, ok, err := s.Dispatch(t)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, c)
		t = c.Finish
	}
	return out, nil
}
