// Command memserve is the network-facing streaming server: it fronts the
// analytical planner's admission control (Theorem 1 with the FutureDisk
// profile and the configured DRAM budget) with the internal/serve
// connection supervisor. Clients connect over TCP and send one line:
//
//	PLAY <bitrate>      e.g. "PLAY 100KB" — request a stream at that rate
//	STAT                — admitted streams, capacity yardstick, aggregate rate
//	METRICS             — supervisor counters + pacing-lag histogram
//
// Admitted clients receive synthetic stream data paced at the requested
// rate until -limit bytes have been sent or they disconnect. The server
// says "BUSY" exactly when the model says one more stream would violate
// the real-time requirement — and the supervisor guarantees that slot
// accounting survives hostile clients: silent connections are reaped by
// the read deadline, clients that stop reading are evicted by the write
// deadline, connections beyond -max-conns are shed before they cost a
// goroutine, and SIGINT/SIGTERM drain gracefully, releasing every slot.
//
// The admission spec plans against the disk's block-weighted effective
// zone rate (disk.Device.EffectiveRate), matching the simulator's
// diskSpec: planning against the outer-zone maximum would overcommit
// whole-surface layouts. STAT's capacity= yardstick therefore reads
// lower — and honestly — compared with the old OuterRate figure.
//
// With -http, memserve also serves the JSON control plane on a second
// listener (see internal/serve ControlHandler and EXPERIMENTS.md):
//
//	GET  /metrics            counters, lag histogram, tiers, live streams
//	GET  /status             liveness/occupancy view
//	POST /streams/{id}/stop  force-close one stream
//	POST /drain              trigger the graceful drain
//
// Usage:
//
//	memserve -addr :9090 -http :9091 -dram 1GB -bitrate 100KB \
//	         -read-timeout 5s -write-timeout 5s -drain 10s -max-conns 1024
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/serve"
	"memstream/internal/units"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	httpAddr := flag.String("http", "", "HTTP control-plane address (empty = disabled)")
	dram := flag.String("dram", "1GB", "DRAM budget for admission control")
	rate := flag.String("bitrate", "100KB", "per-stream bit-rate the server is provisioned for")
	limit := flag.String("limit", "1MB", "bytes to stream per client (0 = unlimited)")
	readTO := flag.Duration("read-timeout", serve.DefaultReadTimeout, "request-line deadline (slowloris reaping)")
	writeTO := flag.Duration("write-timeout", serve.DefaultWriteTimeout, "per-chunk write deadline (stalled-reader eviction)")
	drain := flag.Duration("drain", serve.DefaultDrainTimeout, "graceful-drain budget on SIGINT/SIGTERM")
	maxConns := flag.Int("max-conns", serve.DefaultMaxConns, "concurrent connection cap (BUSY shed beyond it)")
	quantum := flag.Duration("quantum", serve.DefaultQuantum, "pacing quantum")
	flag.Parse()

	srv, err := build(*dram, *rate, *limit, *readTO, *writeTO, *drain, *maxConns, *quantum)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}
	log.Printf("memserve: listening on %s (provisioned for %v streams at %s, %s DRAM, max %d conns)",
		ln.Addr(), srv.Capacity(), *rate, *dram, *maxConns)

	// The control plane outlives the drain: /metrics and /status stay
	// answerable while (and after) the streaming listener winds down, so
	// operators and the smoke test can observe the drain itself. It is
	// closed only when main returns.
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("memserve: control plane: %v", err)
		}
		hs := &http.Server{Handler: srv.ControlHandler()}
		defer hs.Close()
		go func() {
			if err := hs.Serve(hln); err != nil && err != http.ErrServerClosed {
				log.Printf("memserve: control plane: %v", err)
			}
		}()
		log.Printf("memserve: control plane on http://%s", hln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("memserve: %v", err)
	}
	log.Printf("memserve: drained; %s", srv.Metrics().Line(srv.Admitted()))
}

// build wires the admission controller and supervisor. The disk spec uses
// the instantiated drive's block-weighted EffectiveRate — the same rate
// the server simulator plans against (server.diskSpec) — so the network
// front-end and the simulation agree on what one disk can sustain.
func build(dram, rate, limit string, readTO, writeTO, drain time.Duration, maxConns int, quantum time.Duration) (*serve.Server, error) {
	dramCap, err := units.ParseBytes(dram)
	if err != nil {
		return nil, err
	}
	bitRate, err := units.ParseRate(rate)
	if err != nil {
		return nil, err
	}
	limitBytes, err := units.ParseBytes(limit)
	if err != nil {
		return nil, err
	}
	d, err := disk.New(disk.FutureDisk())
	if err != nil {
		return nil, err
	}
	return serve.New(serve.Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: d.EffectiveRate(), Latency: d.Params().AvgAccess()},
			DRAMCap: dramCap,
		},
		DefaultRate:  bitRate,
		Limit:        limitBytes,
		ReadTimeout:  readTO,
		WriteTimeout: writeTO,
		DrainTimeout: drain,
		MaxConns:     maxConns,
		Quantum:      quantum,
		Logf:         log.Printf,
	})
}
