// Command memserve is a demonstration streaming server that uses the
// analytical planner for admission control. Clients connect over TCP and
// send one line:
//
//	PLAY <bitrate>      e.g. "PLAY 100KB" — request a stream at that rate
//	STAT                — report admitted streams and capacity
//
// Admitted clients receive synthetic stream data paced at the requested
// rate until they disconnect (or -limit bytes have been sent). Admission
// uses the paper's Theorem 1 with the FutureDisk profile and the
// configured DRAM budget, so the server says "busy" exactly when the
// model says one more stream would violate the real-time requirement.
//
// Usage:
//
//	memserve -addr :9090 -dram 1GB -bitrate 100KB
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/units"
)

type server struct {
	mu    sync.Mutex
	adm   *schedule.MixedAdmission
	rate  units.ByteRate // default per-stream rate and capacity yardstick
	limit units.Bytes
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	dram := flag.String("dram", "1GB", "DRAM budget for admission control")
	rate := flag.String("bitrate", "100KB", "per-stream bit-rate the server is provisioned for")
	limit := flag.String("limit", "1MB", "bytes to stream per client (0 = unlimited)")
	flag.Parse()

	dramCap, err := units.ParseBytes(*dram)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}
	bitRate, err := units.ParseRate(*rate)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}
	limitBytes, err := units.ParseBytes(*limit)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}

	p := disk.FutureDisk()
	s := &server{
		adm: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: dramCap,
		},
		rate:  bitRate,
		limit: limitBytes,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}
	log.Printf("memserve: listening on %s (provisioned for %v streams at %v, %v DRAM)",
		ln.Addr(), s.capacity(), bitRate, dramCap)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("memserve: accept: %v", err)
			continue
		}
		go s.handle(conn)
	}
}

// capacity is the homogeneous-rate yardstick shown in STAT responses; the
// actual admission decision handles arbitrary rate mixes.
func (s *server) capacity() int {
	return model.MaxStreamsDirect(s.rate, s.adm.Disk, s.adm.DRAMCap)
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		fmt.Fprintln(conn, "ERR empty request")
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "STAT":
		s.mu.Lock()
		admitted := s.adm.Admitted()
		agg := s.adm.Aggregate()
		s.mu.Unlock()
		fmt.Fprintf(conn, "OK admitted=%d capacity=%d aggregate=%v\n", admitted, s.capacity(), agg)
	case "PLAY":
		rate := s.rate
		if len(fields) > 1 {
			parsed, err := units.ParseRate(fields[1])
			if err != nil {
				fmt.Fprintf(conn, "ERR bad rate %q\n", fields[1])
				return
			}
			rate = parsed
		}
		s.mu.Lock()
		ok, err := s.adm.TryAdmit(rate)
		s.mu.Unlock()
		if err != nil || !ok {
			fmt.Fprintln(conn, "BUSY real-time capacity exhausted")
			return
		}
		defer func() {
			s.mu.Lock()
			s.adm.Release(rate)
			s.mu.Unlock()
		}()
		fmt.Fprintf(conn, "OK streaming at %v\n", rate)
		s.stream(conn, rate)
	default:
		fmt.Fprintf(conn, "ERR unknown command %q\n", fields[0])
	}
}

// stream paces synthetic data at the requested rate in 100ms quanta.
func (s *server) stream(conn net.Conn, rate units.ByteRate) {
	const quantum = 100 * time.Millisecond
	chunk := make([]byte, int(units.BytesIn(rate, quantum)))
	for i := range chunk {
		chunk[i] = byte('A' + i%26)
	}
	var sent units.Bytes
	ticker := time.NewTicker(quantum)
	defer ticker.Stop()
	for range ticker.C {
		if _, err := conn.Write(chunk); err != nil {
			return
		}
		sent += units.Bytes(len(chunk))
		if s.limit > 0 && sent >= s.limit {
			return
		}
	}
}
