// Command memserve is the network-facing streaming server: it fronts the
// analytical planner's admission control (Theorem 1 with the FutureDisk
// profile and the configured DRAM budget) with the internal/serve
// connection supervisor. Clients connect over TCP and send one line:
//
//	PLAY <bitrate>      e.g. "PLAY 100KB" — request a stream at that rate
//	STAT                — admitted streams, capacity yardstick, aggregate rate
//	METRICS             — supervisor counters + pacing-lag histogram
//
// Admitted clients receive synthetic stream data paced at the requested
// rate until -limit bytes have been sent or they disconnect. The server
// says "BUSY" exactly when the model says one more stream would violate
// the real-time requirement — and the supervisor guarantees that slot
// accounting survives hostile clients: silent connections are reaped by
// the read deadline, clients that stop reading are evicted by the write
// deadline, connections beyond -max-conns are shed before they cost a
// goroutine, and SIGINT/SIGTERM drain gracefully, releasing every slot.
//
// The admission spec plans against the disk's block-weighted effective
// zone rate (disk.Device.EffectiveRate), matching the simulator's
// diskSpec: planning against the outer-zone maximum would overcommit
// whole-surface layouts. STAT's capacity= yardstick therefore reads
// lower — and honestly — compared with the old OuterRate figure.
//
// With -http, memserve also serves the JSON control plane on a second
// listener (see internal/serve ControlHandler and EXPERIMENTS.md):
//
//	GET  /metrics            counters, lag histogram, tiers, live streams
//	GET  /status             liveness/occupancy view
//	POST /streams/{id}/stop  force-close one stream
//	POST /drain              trigger the graceful drain
//
// Usage:
//
//	memserve -addr :9090 -http :9091 -dram 1GB -bitrate 100KB \
//	         -read-timeout 5s -write-timeout 5s -drain 10s -max-conns 1024 \
//	         -pacing wheel -writers 4
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/serve"
	"memstream/internal/units"
)

// options collects every tunable main parses from flags; build turns it
// into a serve.Server. Zero durations/counts take the serve defaults.
type options struct {
	dram     string // DRAM budget for admission control
	rate     string // per-stream provisioning bit-rate
	limit    string // bytes streamed per client; "0" = unlimited
	readTO   time.Duration
	writeTO  time.Duration
	drain    time.Duration
	maxConns int
	quantum  time.Duration
	pacing   string // "goroutine" or "wheel"
	writers  int    // wheel writer workers; 0 = GOMAXPROCS
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	httpAddr := flag.String("http", "", "HTTP control-plane address (empty = disabled)")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof on the control-plane listener, with mutex and block profiling enabled (requires -http)")
	var o options
	flag.StringVar(&o.dram, "dram", "1GB", "DRAM budget for admission control")
	flag.StringVar(&o.rate, "bitrate", "100KB", "per-stream bit-rate the server is provisioned for")
	flag.StringVar(&o.limit, "limit", "1MB", "bytes to stream per client (0 = unlimited)")
	flag.DurationVar(&o.readTO, "read-timeout", serve.DefaultReadTimeout, "request-line deadline (slowloris reaping)")
	flag.DurationVar(&o.writeTO, "write-timeout", serve.DefaultWriteTimeout, "per-chunk write deadline (stalled-reader eviction)")
	flag.DurationVar(&o.drain, "drain", serve.DefaultDrainTimeout, "graceful-drain budget on SIGINT/SIGTERM")
	flag.IntVar(&o.maxConns, "max-conns", serve.DefaultMaxConns, "concurrent connection cap (BUSY shed beyond it)")
	flag.DurationVar(&o.quantum, "quantum", serve.DefaultQuantum, "pacing quantum")
	flag.StringVar(&o.pacing, "pacing", "goroutine", "pacing data plane: goroutine (timer per stream) or wheel (one timer wheel, pooled writers)")
	flag.IntVar(&o.writers, "writers", 0, "wheel-plane writer workers (0 = GOMAXPROCS); ignored with -pacing=goroutine")
	flag.Parse()

	srv, err := build(o)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("memserve: %v", err)
	}
	log.Printf("memserve: listening on %s (provisioned for %v streams at %s, %s DRAM, max %d conns, %s pacing)",
		ln.Addr(), srv.Capacity(), o.rate, o.dram, o.maxConns, o.pacing)

	// The control plane outlives the drain: /metrics and /status stay
	// answerable while (and after) the streaming listener winds down, so
	// operators and the smoke test can observe the drain itself. It is
	// closed only when main returns.
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("memserve: control plane: %v", err)
		}
		handler := srv.ControlHandler()
		if *enablePprof {
			handler = withPprof(handler)
		}
		hs := &http.Server{Handler: handler}
		defer hs.Close()
		go func() {
			if err := hs.Serve(hln); err != nil && err != http.ErrServerClosed {
				log.Printf("memserve: control plane: %v", err)
			}
		}()
		log.Printf("memserve: control plane on http://%s (pprof=%v)", hln.Addr(), *enablePprof)
	} else if *enablePprof {
		log.Fatalf("memserve: -pprof requires -http")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatalf("memserve: %v", err)
	}
	log.Printf("memserve: drained; %s", srv.Metrics().Line(srv.Admitted()))
}

// withPprof mounts the runtime profiling endpoints next to the control
// plane and switches on the contention profilers the data plane cares
// about: the mutex profile (who fights over locks) and the block profile
// (who parks on channels — the wheel's batch hand-off shows up here).
//
//	go tool pprof http://host:port/debug/pprof/mutex
//	go tool pprof http://host:port/debug/pprof/block
func withPprof(control http.Handler) http.Handler {
	runtime.SetMutexProfileFraction(100) // sample 1/100 mutex contention events
	runtime.SetBlockProfileRate(100_000) // sample blocking ≥100µs (in expectation)
	mux := http.NewServeMux()
	mux.Handle("/", control)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// build wires the admission controller and supervisor. The disk spec uses
// the instantiated drive's block-weighted EffectiveRate — the same rate
// the server simulator plans against (server.diskSpec) — so the network
// front-end and the simulation agree on what one disk can sustain.
func build(o options) (*serve.Server, error) {
	dramCap, err := units.ParseBytes(o.dram)
	if err != nil {
		return nil, err
	}
	bitRate, err := units.ParseRate(o.rate)
	if err != nil {
		return nil, err
	}
	limitBytes, err := units.ParseBytes(o.limit)
	if err != nil {
		return nil, err
	}
	pacing, err := serve.ParsePacing(o.pacing)
	if err != nil {
		return nil, err
	}
	d, err := disk.New(disk.FutureDisk())
	if err != nil {
		return nil, err
	}
	return serve.New(serve.Config{
		Admission: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: d.EffectiveRate(), Latency: d.Params().AvgAccess()},
			DRAMCap: dramCap,
		},
		DefaultRate:  bitRate,
		Limit:        limitBytes,
		ReadTimeout:  o.readTO,
		WriteTimeout: o.writeTO,
		DrainTimeout: o.drain,
		MaxConns:     o.maxConns,
		Quantum:      o.quantum,
		Pacing:       pacing,
		Writers:      o.writers,
		Logf:         log.Printf,
	})
}
