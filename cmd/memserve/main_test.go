package main

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/schedule"
	"memstream/internal/units"
)

func testServer(dram units.Bytes, bitRate units.ByteRate) *server {
	p := disk.FutureDisk()
	return &server{
		adm: &schedule.MixedAdmission{
			Disk:    model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()},
			DRAMCap: dram,
		},
		rate:  bitRate,
		limit: 64 * units.KB,
	}
}

// exchange runs the handler on one end of a pipe and returns the first
// response line plus how many stream bytes followed.
func exchange(t *testing.T, s *server, request string) (string, int) {
	t.Helper()
	client, srv := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.handle(srv)
	}()
	if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte(request + "\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(client)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	// Drain whatever stream data follows until the server closes.
	n := 0
	buf := make([]byte, 4096)
	for {
		m, err := r.Read(buf)
		n += m
		if err != nil {
			break
		}
	}
	client.Close()
	wg.Wait()
	return strings.TrimSpace(line), n
}

func TestStatReportsCapacity(t *testing.T) {
	s := testServer(1*units.GB, 100*units.KBPS)
	line, _ := exchange(t, s, "STAT")
	if !strings.HasPrefix(line, "OK admitted=0 capacity=") {
		t.Fatalf("STAT response = %q", line)
	}
}

func TestPlayStreamsData(t *testing.T) {
	s := testServer(1*units.GB, 100*units.KBPS)
	line, n := exchange(t, s, "PLAY 100KB")
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	if n < int(s.limit) {
		t.Errorf("streamed %d bytes, want ≥ %v", n, s.limit)
	}
	// Admission released after the stream ends.
	if s.adm.Admitted() != 0 {
		t.Errorf("admitted = %d after disconnect", s.adm.Admitted())
	}
}

func TestPlayRejectsBadRate(t *testing.T) {
	s := testServer(1*units.GB, 100*units.KBPS)
	line, _ := exchange(t, s, "PLAY fast")
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("bad-rate response = %q", line)
	}
}

func TestUnknownCommand(t *testing.T) {
	s := testServer(1*units.GB, 100*units.KBPS)
	line, _ := exchange(t, s, "DELETE everything")
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("response = %q", line)
	}
}

func TestBusyWhenAdmissionExhausted(t *testing.T) {
	// Tiny DRAM budget: very few admissible streams.
	s := testServer(1*units.MB, 10*units.MBPS)
	cap := s.capacity()
	if cap <= 0 || cap > 10 {
		t.Fatalf("test wants a small capacity, got %d", cap)
	}
	// Saturate admission directly, then try a connection.
	for i := 0; i < cap; i++ {
		ok, err := s.adm.TryAdmit(10 * units.MBPS)
		if err != nil || !ok {
			t.Fatalf("admit %d failed", i)
		}
	}
	line, _ := exchange(t, s, "PLAY")
	if !strings.HasPrefix(line, "BUSY") {
		t.Fatalf("over-capacity response = %q", line)
	}
}
