package main

import (
	"bufio"
	"context"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/units"
)

func TestBuildValidatesFlags(t *testing.T) {
	if _, err := build("nonsense", "100KB", "1MB", 0, 0, 0, 0, 0); err == nil {
		t.Error("bad -dram accepted")
	}
	if _, err := build("1GB", "fast", "1MB", 0, 0, 0, 0, 0); err == nil {
		t.Error("bad -bitrate accepted")
	}
	if _, err := build("1GB", "100KB", "much", 0, 0, 0, 0, 0); err == nil {
		t.Error("bad -limit accepted")
	}
	if _, err := build("1GB", "100KB", "1MB", 0, 0, 0, 0, 0); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

// The admission spec must plan against the block-weighted effective zone
// rate, like the simulator's diskSpec — not the outer-zone maximum, which
// overcommits whole-surface layouts. The capacity yardstick is therefore
// strictly lower than an OuterRate plan would claim.
func TestCapacityUsesEffectiveRate(t *testing.T) {
	srv, err := build("1GB", "100KB", "1MB", 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := disk.FutureDisk()
	d, err := disk.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.EffectiveRate() >= p.OuterRate {
		t.Fatalf("EffectiveRate %v not below OuterRate %v; test premise broken",
			d.EffectiveRate(), p.OuterRate)
	}
	effective := model.MaxStreamsDirect(100*units.KBPS,
		model.DeviceSpec{Rate: d.EffectiveRate(), Latency: p.AvgAccess()}, 1*units.GB)
	outer := model.MaxStreamsDirect(100*units.KBPS,
		model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()}, 1*units.GB)
	if got := srv.Capacity(); got != effective {
		t.Errorf("Capacity = %d, want the EffectiveRate plan %d", got, effective)
	}
	if srv.Capacity() >= outer {
		t.Errorf("Capacity = %d not below the OuterRate plan %d; admission would overcommit inner zones",
			srv.Capacity(), outer)
	}
}

// End-to-end SIGTERM drain: the wiring main uses (signal.NotifyContext →
// serve.Serve) must stop accepting, evict the in-flight stream at the
// drain deadline, release its slot, and return nil — exit code 0.
func TestSigtermDrainReleasesSlots(t *testing.T) {
	srv, err := build("1GB", "100KB", "0", 100*time.Millisecond, 100*time.Millisecond,
		300*time.Millisecond, 16, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	go io.Copy(io.Discard, r) // keep reading; with -limit 0 only the drain ends us

	// Deliver a real SIGTERM to ourselves; NotifyContext turns it into
	// the drain trigger instead of killing the test binary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain after SIGTERM")
	}
	if got := srv.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after SIGTERM drain, want 0", got)
	}
	if got := srv.Metrics().Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d, want 1 (the unlimited stream force-closed at the deadline)", got)
	}
}
