package main

import (
	"bufio"
	"context"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"memstream/internal/disk"
	"memstream/internal/model"
	"memstream/internal/units"
)

// buildOpts is the test baseline: defaults everywhere, with overrides
// applied by the caller.
func buildOpts() options {
	return options{dram: "1GB", rate: "100KB", limit: "1MB"}
}

func TestBuildValidatesFlags(t *testing.T) {
	for _, c := range []struct {
		name   string
		mutate func(*options)
	}{
		{"bad -dram", func(o *options) { o.dram = "nonsense" }},
		{"bad -bitrate", func(o *options) { o.rate = "fast" }},
		{"bad -limit", func(o *options) { o.limit = "much" }},
		{"bad -pacing", func(o *options) { o.pacing = "heap" }},
	} {
		o := buildOpts()
		c.mutate(&o)
		if srv, err := build(o); err == nil {
			srv.Close()
			t.Errorf("%s accepted", c.name)
		}
	}
	for _, pacing := range []string{"", "goroutine", "wheel"} {
		o := buildOpts()
		o.pacing = pacing
		srv, err := build(o)
		if err != nil {
			t.Errorf("pacing %q rejected: %v", pacing, err)
			continue
		}
		srv.Close()
	}
}

// The admission spec must plan against the block-weighted effective zone
// rate, like the simulator's diskSpec — not the outer-zone maximum, which
// overcommits whole-surface layouts. The capacity yardstick is therefore
// strictly lower than an OuterRate plan would claim.
func TestCapacityUsesEffectiveRate(t *testing.T) {
	srv, err := build(buildOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := disk.FutureDisk()
	d, err := disk.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.EffectiveRate() >= p.OuterRate {
		t.Fatalf("EffectiveRate %v not below OuterRate %v; test premise broken",
			d.EffectiveRate(), p.OuterRate)
	}
	effective := model.MaxStreamsDirect(100*units.KBPS,
		model.DeviceSpec{Rate: d.EffectiveRate(), Latency: p.AvgAccess()}, 1*units.GB)
	outer := model.MaxStreamsDirect(100*units.KBPS,
		model.DeviceSpec{Rate: p.OuterRate, Latency: p.AvgAccess()}, 1*units.GB)
	if got := srv.Capacity(); got != effective {
		t.Errorf("Capacity = %d, want the EffectiveRate plan %d", got, effective)
	}
	if srv.Capacity() >= outer {
		t.Errorf("Capacity = %d not below the OuterRate plan %d; admission would overcommit inner zones",
			srv.Capacity(), outer)
	}
}

// End-to-end SIGTERM drain: the wiring main uses (signal.NotifyContext →
// serve.Serve) must stop accepting, evict the in-flight stream at the
// drain deadline, release its slot, and return nil — exit code 0.
func TestSigtermDrainReleasesSlots(t *testing.T) {
	o := buildOpts()
	o.limit = "0"
	o.readTO = 100 * time.Millisecond
	o.writeTO = 100 * time.Millisecond
	o.drain = 300 * time.Millisecond
	o.maxConns = 16
	o.quantum = 10 * time.Millisecond
	srv, err := build(o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PLAY 100KB\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	go io.Copy(io.Discard, r) // keep reading; with -limit 0 only the drain ends us

	// Deliver a real SIGTERM to ourselves; NotifyContext turns it into
	// the drain trigger instead of killing the test binary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain after SIGTERM")
	}
	if got := srv.Admitted(); got != 0 {
		t.Errorf("Admitted = %d after SIGTERM drain, want 0", got)
	}
	if got := srv.Metrics().Evicted.Load(); got != 1 {
		t.Errorf("Evicted = %d, want 1 (the unlimited stream force-closed at the deadline)", got)
	}
}

// End-to-end wheel plane through the real wiring: -pacing=wheel serves a
// PLAY to completion over TCP and the METRICS line shows the wheel
// actually drove the stream (nonzero ticks and fires).
func TestWheelPacingEndToEnd(t *testing.T) {
	o := buildOpts()
	o.limit = "32KB"
	o.quantum = 5 * time.Millisecond
	o.pacing = "wheel"
	o.writers = 2
	srv, err := build(o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PLAY 500KB\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK streaming") {
		t.Fatalf("PLAY response = %q", line)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 32000 { // ParseBytes("32KB") is decimal
		t.Errorf("streamed %d bytes, want 32000", len(body))
	}

	metricsConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer metricsConn.Close()
	if _, err := metricsConn.Write([]byte("METRICS\n")); err != nil {
		t.Fatal(err)
	}
	mline, err := bufio.NewReader(metricsConn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mline, "completed=1") {
		t.Errorf("METRICS %q missing completed=1", mline)
	}
	if strings.Contains(mline, "wheel_ticks=0 ") || !strings.Contains(mline, "wheel_ticks=") {
		t.Errorf("METRICS %q: wheel plane idle, want nonzero wheel_ticks", mline)
	}
	if strings.Contains(mline, "wheel_fires=0") {
		t.Errorf("METRICS %q: wheel never fired a stream", mline)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
