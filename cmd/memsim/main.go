// Command memsim exercises the device simulators directly: it generates or
// replays an IO trace against the disk and MEMS models and reports
// per-device service behaviour — a small standalone counterpart to the
// DiskSim-style tooling the CMU MEMS papers used. With -experiments it
// instead drives the full experiment suite on a parallel worker pool with
// per-run metrics.
//
// Usage:
//
//	memsim -device g3 -n 10000 -io 64KB            # random IOs on G3 MEMS
//	memsim -device nvm-optane -n 10000 -io 64KB    # any tier registry set
//	memsim -device futuredisk -policy c-look ...    # scheduled batch
//	memsim -record trace.txt ...                    # save the trace
//	memsim -replay trace.txt -device g3             # replay a saved trace
//	memsim -experiments -parallel 8 -json m.json    # parallel experiment suite
//	memsim -experiments -run 'fig9.*' -out results  # a family, artifacts to files
//	memsim -scale 1000000 -shards 8 -json s.json    # sharded scaling scenario
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/experiments"
	"memstream/internal/model"
	"memstream/internal/server"
	"memstream/internal/shard"
	"memstream/internal/sim"
	"memstream/internal/tier"
	"memstream/internal/trace"
	"memstream/internal/units"
)

// serviceable abstracts the two device simulators for the replay loop.
type serviceable interface {
	Service(now time.Duration, r device.Request) (device.Completion, error)
	Geometry() device.Geometry
	Model() device.Model
}

func main() {
	devName := flag.String("device", "g3", "device: a middle-tier set name ("+strings.Join(tier.Names(), ", ")+"; g1..g3 alias mems-g*), or futuredisk, atlas10k3, array2, array4")
	n := flag.Int("n", 10000, "number of random IOs to generate")
	ioSize := flag.String("io", "64KB", "IO size for generated traces")
	seed := flag.Uint64("seed", 1, "RNG seed for generated traces")
	policy := flag.String("policy", "fcfs", "scheduling for generated batches: fcfs, sptf/sstf, elevator/c-look")
	tierName := flag.String("tier", tier.Default, "middle-tier parameter set for -experiments and -sim: "+strings.Join(tier.Names(), ", "))
	record := flag.String("record", "", "write the generated trace to this file")
	replay := flag.String("replay", "", "replay a trace file instead of generating")
	exp := flag.Bool("experiments", false, "run the experiment suite instead of a device trace")
	runPat := flag.String("run", "", "with -experiments: run experiments matching this anchored regexp (default: all)")
	parallel := flag.Int("parallel", 0, "with -experiments: worker count (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "with -experiments or -scale: write the JSON document to this file")
	shards := flag.Int("shards", 1, "shard goroutine count for -experiments and -scale (results are byte-identical at any value)")
	scale := flag.Int("scale", 0, "run the sharded scaling scenario with this many total streams")
	scalePer := flag.Int("scale-per", 4096, "with -scale: streams per partition (the unit of determinism)")
	scaleRate := flag.String("scale-rate", "10KB", "with -scale: per-stream bit rate")
	outDir := flag.String("out", "", "with -experiments: write artifact text files to this directory")
	simMode := flag.String("sim", "", "run one server simulation with per-cycle tracing: direct, edf, buffered, cached, hybrid")
	simStreams := flag.Int("streams", 0, "with -sim: concurrent streams (0 = mode default)")
	simRate := flag.String("bitrate", "", "with -sim: per-stream bit rate, e.g. 1MB (default: mode default)")
	tracePath := flag.String("trace", "", "with -sim: write the trace JSON document to this file (default stdout)")
	flag.Parse()

	experiments.SetShardWorkers(*shards)
	if err := experiments.SetTier(*tierName); err != nil {
		fatal(err)
	}
	if *exp {
		if err := runExperiments(*runPat, *seed, *parallel, *jsonPath, *outDir, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *scale > 0 {
		if err := runScale(*scale, *scalePer, *scaleRate, *seed, *shards, *jsonPath, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *simMode != "" {
		if err := runSim(*simMode, *tierName, *simStreams, *simRate, *seed, *tracePath); err != nil {
			fatal(err)
		}
		return
	}

	dev, isDisk, err := openDevice(*devName)
	if err != nil {
		fatal(err)
	}

	var events []trace.Event
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		events, err = trace.ReadText(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		size, err := units.ParseBytes(*ioSize)
		if err != nil {
			fatal(err)
		}
		events = generate(dev.Geometry(), *n, size, *seed)
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteText(f, events); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	completions, err := runTrace(dev, isDisk, *policy, events)
	if err != nil {
		fatal(err)
	}
	report(dev, events, completions)
}

func openDevice(name string) (serviceable, bool, error) {
	switch name {
	case "futuredisk":
		d, err := disk.New(disk.FutureDisk())
		return d, true, err
	case "atlas10k3":
		d, err := disk.New(disk.Atlas10K3())
		return d, true, err
	case "array2":
		a, err := disk.NewArray(2, disk.FutureDisk(), units.Bytes(1e6))
		return a, true, err
	case "array4":
		a, err := disk.NewArray(4, disk.FutureDisk(), units.Bytes(1e6))
		return a, true, err
	}
	// Everything else is a middle-tier registry name ("mems-g3",
	// "nvm-optane", ...; "g1".."g3" alias the MEMS generations).
	spec, err := tier.Lookup(name)
	if err != nil {
		return nil, false, err
	}
	d, err := tier.New(spec)
	return d, false, err
}

func generate(g device.Geometry, n int, io units.Bytes, seed uint64) []trace.Event {
	rng := sim.NewRNG(seed)
	blocks := int64(io / g.BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	events := make([]trace.Event, n)
	for i := range events {
		lbn := int64(rng.Float64() * float64(g.Blocks-blocks))
		events[i] = trace.Event{
			At: time.Duration(i) * time.Microsecond, // batch arrival
			Op: device.Read, Block: lbn, Blocks: blocks, Stream: i,
		}
	}
	return events
}

func runTrace(dev serviceable, isDisk bool, policy string, events []trace.Event) ([]device.Completion, error) {
	switch d := dev.(type) {
	case *disk.Device:
		p := disk.FCFS
		switch policy {
		case "sptf", "sstf":
			p = disk.SSTF
		case "elevator", "c-look":
			p = disk.CLook
		}
		s := disk.NewScheduler(d, p)
		for _, e := range events {
			s.Enqueue(e.Request())
		}
		return s.DrainAll(0)
	case tier.Device:
		p, err := tier.ParsePolicy(policy)
		if err != nil {
			return nil, err
		}
		s := tier.NewScheduler(d, p)
		for _, e := range events {
			s.Enqueue(e.Request())
		}
		return s.DrainAll(0)
	case *disk.Array:
		// Arrays serve in arrival order; member parallelism happens inside.
		var out []device.Completion
		var now time.Duration
		for _, e := range events {
			c, err := d.Service(now, e.Request())
			if err != nil {
				return out, err
			}
			out = append(out, c)
			now = c.Finish
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported device type %T", dev)
}

func report(dev serviceable, events []trace.Event, cs []device.Completion) {
	if len(cs) == 0 {
		fmt.Println("no completions")
		return
	}
	m := dev.Model()
	var pos, xfer time.Duration
	var bytes units.Bytes
	for _, c := range cs {
		pos += c.Position
		xfer += c.Transfer
		bytes += units.Bytes(c.Blocks) * dev.Geometry().BlockSize
	}
	span := cs[len(cs)-1].Finish
	st := trace.Summarize(events)
	fmt.Printf("device:          %s (R=%v, L̄=%v, max %v)\n", m.Name, m.Rate, m.AvgLatency, m.MaxLatency)
	fmt.Printf("trace:           %d events (%d reads, %d writes), %d blocks\n",
		st.Events, st.Reads, st.Writes, st.TotalBlocks)
	fmt.Printf("elapsed:         %v\n", span.Round(time.Microsecond))
	fmt.Printf("throughput:      %v\n", units.RateOf(bytes, span))
	fmt.Printf("avg positioning: %v\n", (pos / time.Duration(len(cs))).Round(time.Microsecond))
	fmt.Printf("avg transfer:    %v\n", (xfer / time.Duration(len(cs))).Round(time.Microsecond))
	fmt.Printf("utilization:     %.1f%% of media rate\n",
		100*float64(units.RateOf(bytes, span))/float64(m.Rate))
}

// runExperiments drives the experiment suite on a parallel worker pool,
// printing one progress line per completed run. Artifacts are written in
// ID order after the suite completes, so -out trees are byte-identical at
// any -parallel value; only the progress lines reflect completion order.
func runExperiments(pattern string, rootSeed uint64, parallel int, jsonPath, outDir string, w io.Writer) error {
	ids, err := experiments.Match(pattern)
	if err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	progress := func(done, total int, rep experiments.RunReport) {
		status := fmt.Sprintf("events=%d streams=%d underflows=%d",
			rep.Events, rep.Streams, rep.Underflows)
		if rep.Error != "" {
			status = "FAILED: " + rep.Error
		}
		fmt.Fprintf(w, "[%*d/%d] %-18s %8v  %s\n",
			len(fmt.Sprint(total)), done, total, rep.ID, rep.Wall.Round(time.Millisecond), status)
	}
	suite, err := experiments.RunSuite(ids, rootSeed, parallel, progress)
	if err != nil {
		return err
	}
	for _, rep := range suite.Runs {
		if rep.Error != "" {
			continue
		}
		if outDir != "" {
			text := fmt.Sprintf("==== %s: %s ====\n%s\n", rep.ID, rep.Title, rep.Result.Output)
			path := filepath.Join(outDir, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(suite, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "suite: %d runs, %d failed, parallel=%d, seed=%d, wall %v\n",
		len(suite.Runs), suite.Failed(), suite.Parallel, suite.RootSeed,
		suite.Wall.Round(time.Millisecond))
	if n := suite.Failed(); n > 0 {
		return fmt.Errorf("%d of %d experiments failed", n, len(suite.Runs))
	}
	return nil
}

// scaleDoc is the JSON document -scale emits: the scenario identity, the
// deterministic merged counters (byte-identical at any -shards value), and
// the execution figures (wall clock and per-shard rates, which are not).
// scripts/bench.sh folds this into the BENCH_<n>.json "scaling" array.
type scaleDoc struct {
	Plan       string `json:"plan"`
	Streams    int    `json:"streams"`
	Partitions int    `json:"partitions"`
	Shards     int    `json:"shards"`
	Seed       uint64 `json:"seed"`

	Events        uint64        `json:"events"`
	Cycles        int64         `json:"cycles"`
	Underflows    int           `json:"underflows"`
	SimulatedTime time.Duration `json:"simulated_ns"`

	WallNS int64 `json:"wall_ns"`
	// EventsPerSec is end-to-end: merged events over total wall clock.
	EventsPerSec float64 `json:"events_per_sec"`
	// AggregateEventsPerSec sums the per-shard uncontended rates — the
	// capacity figure once the host has a core per shard (see DESIGN.md).
	AggregateEventsPerSec float64       `json:"aggregate_events_per_sec"`
	Stripes               []stripeEntry `json:"stripes"`
}

// stripeEntry is one shard goroutine's execution record.
type stripeEntry struct {
	Shard        int     `json:"shard"`
	Parts        int     `json:"parts"`
	Events       uint64  `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// runScale runs the uniform sharded scaling scenario: total streams in
// partitions of per, each partition an independent direct-mode server,
// striped across shard goroutines. The merged summary printed to w is
// byte-identical at any shard count; the JSON document additionally
// records the shard-dependent execution figures.
func runScale(total, per int, rateStr string, seed uint64, shards int, jsonPath string, w io.Writer) error {
	rate := 10 * units.KBPS
	if rateStr != "" {
		b, err := units.ParseBytes(rateStr)
		if err != nil {
			return fmt.Errorf("bad -scale-rate: %w", err)
		}
		rate = units.ByteRate(b)
	}
	plan, err := shard.Uniform(total, per, rate, 0)
	if err != nil {
		return err
	}
	rep, err := shard.Run(plan, seed, shards)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "plan %s: %d partitions, root seed %d\n", rep.Plan, rep.Partitions, rep.RootSeed)
	fmt.Fprint(w, rep.Merged.Render())
	fmt.Fprintf(w, "shards=%d wall=%v events_per_sec=%.0f aggregate_events_per_sec=%.0f\n",
		rep.Shards, rep.Wall.Round(time.Millisecond),
		rep.WallEventsPerSec(), rep.AggregateEventsPerSec())

	if jsonPath == "" {
		return nil
	}
	doc := scaleDoc{
		Plan:       rep.Plan,
		Streams:    rep.Merged.Streams,
		Partitions: rep.Partitions,
		Shards:     rep.Shards,
		Seed:       rep.RootSeed,

		Events:        rep.Merged.Events,
		Cycles:        rep.Merged.Cycles,
		Underflows:    rep.Merged.Underflows,
		SimulatedTime: rep.Merged.SimulatedTime,

		WallNS:                int64(rep.Wall),
		EventsPerSec:          rep.WallEventsPerSec(),
		AggregateEventsPerSec: rep.AggregateEventsPerSec(),
	}
	for _, s := range rep.Stripe {
		doc.Stripes = append(doc.Stripes, stripeEntry{
			Shard: s.Shard, Parts: s.Parts, Events: s.Events,
			WallNS: int64(s.Wall), EventsPerSec: s.EventsPerSec(),
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// traceDoc is the JSON document -sim emits: the run's identity, its
// end-of-run scalars, and the per-cycle time series the server's probe
// recorded (see EXPERIMENTS.md for the schema).
type traceDoc struct {
	Mode          string        `json:"mode"`
	Streams       int           `json:"streams"`
	BitRate       units.Bytes   `json:"bit_rate_bps"`
	Seed          uint64        `json:"seed"`
	SimulatedTime time.Duration `json:"simulated_ns"`
	Cycles        int64         `json:"cycles"`
	Events        uint64        `json:"events"`
	Underflows    int           `json:"underflows"`
	DRAMHighWater units.Bytes   `json:"dram_high_water"`
	DiskUtil      float64       `json:"disk_util"`
	MEMSUtil      float64       `json:"mems_util"`
	Trace         *server.Trace `json:"trace"`
}

// runSim runs one server simulation with the observability probe attached
// and writes the per-cycle trace JSON document to path (stdout if empty).
func runSim(mode, tierName string, streams int, rate string, seed uint64, path string) error {
	spec, err := tier.Lookup(tierName)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Disk: disk.FutureDisk(), Tier: spec, K: 2,
		Titles: 50, X: 10, Y: 90, Seed: seed, Trace: true,
	}
	// Mode defaults mirror the paper's operating points: DVD-rate streams
	// on the disk paths, DivX-rate fan-out on the cache paths.
	n, br := 50, 1*units.MBPS
	switch mode {
	case "direct":
		cfg.Mode = server.Direct
	case "edf":
		cfg.Mode = server.Direct
		cfg.UseEDF = true
	case "buffered":
		cfg.Mode = server.Buffered
		n = 100
	case "cached":
		cfg.Mode = server.Cached
		cfg.CachePolicy = model.Striped
		n, br = 200, 100*units.KBPS
		cfg.Titles = 400
	case "hybrid":
		cfg.Mode = server.Hybrid
		cfg.K, cfg.CacheDevices = 4, 2
		n, br = 300, 100*units.KBPS
		cfg.Titles = 400
	default:
		return fmt.Errorf("unknown -sim mode %q (want direct, edf, buffered, cached, hybrid)", mode)
	}
	if streams > 0 {
		n = streams
	}
	if rate != "" {
		b, err := units.ParseBytes(rate)
		if err != nil {
			return fmt.Errorf("bad -bitrate: %w", err)
		}
		br = units.ByteRate(b)
	}
	cfg.N, cfg.BitRate = n, br

	res, err := server.Run(cfg)
	if err != nil {
		return err
	}
	doc := traceDoc{
		Mode:          mode,
		Streams:       res.Streams,
		BitRate:       units.Bytes(br),
		Seed:          seed,
		SimulatedTime: res.SimulatedTime,
		Cycles:        res.Cycles,
		Events:        res.Events,
		Underflows:    res.Underflows,
		DRAMHighWater: res.DRAMHighWater,
		DiskUtil:      res.DiskUtil,
		MEMSUtil:      res.MEMSUtil,
		Trace:         res.Trace,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memsim:", err)
	os.Exit(1)
}
