// Command memsim exercises the device simulators directly: it generates or
// replays an IO trace against the disk and MEMS models and reports
// per-device service behaviour — a small standalone counterpart to the
// DiskSim-style tooling the CMU MEMS papers used. With -experiments it
// instead drives the full experiment suite on a parallel worker pool with
// per-run metrics.
//
// Usage:
//
//	memsim -device g3 -n 10000 -io 64KB            # random IOs on G3 MEMS
//	memsim -device futuredisk -policy c-look ...    # scheduled batch
//	memsim -record trace.txt ...                    # save the trace
//	memsim -replay trace.txt -device g3             # replay a saved trace
//	memsim -experiments -parallel 8 -json m.json    # parallel experiment suite
//	memsim -experiments -run 'fig9.*' -out results  # a family, artifacts to files
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"memstream/internal/device"
	"memstream/internal/disk"
	"memstream/internal/experiments"
	"memstream/internal/mems"
	"memstream/internal/sim"
	"memstream/internal/trace"
	"memstream/internal/units"
)

// serviceable abstracts the two device simulators for the replay loop.
type serviceable interface {
	Service(now time.Duration, r device.Request) (device.Completion, error)
	Geometry() device.Geometry
	Model() device.Model
}

func main() {
	devName := flag.String("device", "g3", "device: g3, g2, g1, futuredisk, atlas10k3, array2, array4")
	n := flag.Int("n", 10000, "number of random IOs to generate")
	ioSize := flag.String("io", "64KB", "IO size for generated traces")
	seed := flag.Uint64("seed", 1, "RNG seed for generated traces")
	policy := flag.String("policy", "fcfs", "scheduling for generated batches: fcfs, sptf/sstf, elevator/c-look")
	record := flag.String("record", "", "write the generated trace to this file")
	replay := flag.String("replay", "", "replay a trace file instead of generating")
	exp := flag.Bool("experiments", false, "run the experiment suite instead of a device trace")
	runPat := flag.String("run", "", "with -experiments: run experiments matching this anchored regexp (default: all)")
	parallel := flag.Int("parallel", 0, "with -experiments: worker count (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "with -experiments: write the per-run metrics document to this file")
	outDir := flag.String("out", "", "with -experiments: write artifact text files to this directory")
	flag.Parse()

	if *exp {
		if err := runExperiments(*runPat, *seed, *parallel, *jsonPath, *outDir, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	dev, isDisk, err := openDevice(*devName)
	if err != nil {
		fatal(err)
	}

	var events []trace.Event
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		events, err = trace.ReadText(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		size, err := units.ParseBytes(*ioSize)
		if err != nil {
			fatal(err)
		}
		events = generate(dev.Geometry(), *n, size, *seed)
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteText(f, events); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	completions, err := runTrace(dev, isDisk, *policy, events)
	if err != nil {
		fatal(err)
	}
	report(dev, events, completions)
}

func openDevice(name string) (serviceable, bool, error) {
	switch name {
	case "g1":
		d, err := mems.New(mems.G1())
		return d, false, err
	case "g2":
		d, err := mems.New(mems.G2())
		return d, false, err
	case "g3":
		d, err := mems.New(mems.G3())
		return d, false, err
	case "futuredisk":
		d, err := disk.New(disk.FutureDisk())
		return d, true, err
	case "atlas10k3":
		d, err := disk.New(disk.Atlas10K3())
		return d, true, err
	case "array2":
		a, err := disk.NewArray(2, disk.FutureDisk(), units.Bytes(1e6))
		return a, true, err
	case "array4":
		a, err := disk.NewArray(4, disk.FutureDisk(), units.Bytes(1e6))
		return a, true, err
	}
	return nil, false, fmt.Errorf("unknown device %q", name)
}

func generate(g device.Geometry, n int, io units.Bytes, seed uint64) []trace.Event {
	rng := sim.NewRNG(seed)
	blocks := int64(io / g.BlockSize)
	if blocks < 1 {
		blocks = 1
	}
	events := make([]trace.Event, n)
	for i := range events {
		lbn := int64(rng.Float64() * float64(g.Blocks-blocks))
		events[i] = trace.Event{
			At: time.Duration(i) * time.Microsecond, // batch arrival
			Op: device.Read, Block: lbn, Blocks: blocks, Stream: i,
		}
	}
	return events
}

func runTrace(dev serviceable, isDisk bool, policy string, events []trace.Event) ([]device.Completion, error) {
	switch d := dev.(type) {
	case *disk.Device:
		p := disk.FCFS
		switch policy {
		case "sptf", "sstf":
			p = disk.SSTF
		case "elevator", "c-look":
			p = disk.CLook
		}
		s := disk.NewScheduler(d, p)
		for _, e := range events {
			s.Enqueue(e.Request())
		}
		return s.DrainAll(0)
	case *mems.Device:
		p := mems.FCFS
		switch policy {
		case "sptf", "sstf":
			p = mems.SPTF
		case "elevator", "c-look":
			p = mems.Elevator
		}
		s := mems.NewScheduler(d, p)
		for _, e := range events {
			s.Enqueue(e.Request())
		}
		return s.DrainAll(0)
	case *disk.Array:
		// Arrays serve in arrival order; member parallelism happens inside.
		var out []device.Completion
		var now time.Duration
		for _, e := range events {
			c, err := d.Service(now, e.Request())
			if err != nil {
				return out, err
			}
			out = append(out, c)
			now = c.Finish
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported device type %T", dev)
}

func report(dev serviceable, events []trace.Event, cs []device.Completion) {
	if len(cs) == 0 {
		fmt.Println("no completions")
		return
	}
	m := dev.Model()
	var pos, xfer time.Duration
	var bytes units.Bytes
	for _, c := range cs {
		pos += c.Position
		xfer += c.Transfer
		bytes += units.Bytes(c.Blocks) * dev.Geometry().BlockSize
	}
	span := cs[len(cs)-1].Finish
	st := trace.Summarize(events)
	fmt.Printf("device:          %s (R=%v, L̄=%v, max %v)\n", m.Name, m.Rate, m.AvgLatency, m.MaxLatency)
	fmt.Printf("trace:           %d events (%d reads, %d writes), %d blocks\n",
		st.Events, st.Reads, st.Writes, st.TotalBlocks)
	fmt.Printf("elapsed:         %v\n", span.Round(time.Microsecond))
	fmt.Printf("throughput:      %v\n", units.RateOf(bytes, span))
	fmt.Printf("avg positioning: %v\n", (pos / time.Duration(len(cs))).Round(time.Microsecond))
	fmt.Printf("avg transfer:    %v\n", (xfer / time.Duration(len(cs))).Round(time.Microsecond))
	fmt.Printf("utilization:     %.1f%% of media rate\n",
		100*float64(units.RateOf(bytes, span))/float64(m.Rate))
}

// runExperiments drives the experiment suite on a parallel worker pool,
// printing one progress line per completed run. Artifacts are written in
// ID order after the suite completes, so -out trees are byte-identical at
// any -parallel value; only the progress lines reflect completion order.
func runExperiments(pattern string, rootSeed uint64, parallel int, jsonPath, outDir string, w io.Writer) error {
	ids, err := experiments.Match(pattern)
	if err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	progress := func(done, total int, rep experiments.RunReport) {
		status := fmt.Sprintf("events=%d streams=%d underflows=%d",
			rep.Events, rep.Streams, rep.Underflows)
		if rep.Error != "" {
			status = "FAILED: " + rep.Error
		}
		fmt.Fprintf(w, "[%*d/%d] %-18s %8v  %s\n",
			len(fmt.Sprint(total)), done, total, rep.ID, rep.Wall.Round(time.Millisecond), status)
	}
	suite, err := experiments.RunSuite(ids, rootSeed, parallel, progress)
	if err != nil {
		return err
	}
	for _, rep := range suite.Runs {
		if rep.Error != "" {
			continue
		}
		if outDir != "" {
			text := fmt.Sprintf("==== %s: %s ====\n%s\n", rep.ID, rep.Title, rep.Result.Output)
			path := filepath.Join(outDir, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(suite, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "suite: %d runs, %d failed, parallel=%d, seed=%d, wall %v\n",
		len(suite.Runs), suite.Failed(), suite.Parallel, suite.RootSeed,
		suite.Wall.Round(time.Millisecond))
	if n := suite.Failed(); n > 0 {
		return fmt.Errorf("%d of %d experiments failed", n, len(suite.Runs))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memsim:", err)
	os.Exit(1)
}
