package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memstream/internal/device"
	"memstream/internal/experiments"
	"memstream/internal/trace"
	"memstream/internal/units"
)

func TestOpenDevice(t *testing.T) {
	for _, name := range []string{"g1", "g2", "g3", "futuredisk", "atlas10k3"} {
		dev, isDisk, err := openDevice(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if dev == nil {
			t.Errorf("%s: nil device", name)
		}
		wantDisk := name == "futuredisk" || name == "atlas10k3"
		if isDisk != wantDisk {
			t.Errorf("%s: isDisk = %v", name, isDisk)
		}
	}
	if _, _, err := openDevice("floppy"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestGenerateWithinGeometry(t *testing.T) {
	dev, _, err := openDevice("g3")
	if err != nil {
		t.Fatal(err)
	}
	g := dev.Geometry()
	events := generate(g, 500, 64*units.KB, 1)
	if len(events) != 500 {
		t.Fatalf("events = %d", len(events))
	}
	for _, e := range events {
		if err := g.Validate(e.Request()); err != nil {
			t.Fatalf("generated invalid request: %v", err)
		}
	}
	// Deterministic for a fixed seed.
	again := generate(g, 500, 64*units.KB, 1)
	for i := range events {
		if events[i] != again[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestRunTraceAllPolicies(t *testing.T) {
	for _, name := range []string{"g3", "futuredisk"} {
		for _, policy := range []string{"fcfs", "sptf", "elevator"} {
			dev, _, err := openDevice(name)
			if err != nil {
				t.Fatal(err)
			}
			events := generate(dev.Geometry(), 100, 64*units.KB, 2)
			cs, err := runTrace(dev, name == "futuredisk", policy, events)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, policy, err)
			}
			if len(cs) != len(events) {
				t.Fatalf("%s/%s: served %d of %d", name, policy, len(cs), len(events))
			}
		}
	}
}

func TestTraceRoundTripThroughSim(t *testing.T) {
	dev, _, _ := openDevice("g3")
	events := generate(dev.Geometry(), 50, 32*units.KB, 3)
	st := trace.Summarize(events)
	if st.Events != 50 || st.Reads != 50 {
		t.Fatalf("summary = %+v", st)
	}
	cs, err := runTrace(dev, false, "sptf", events)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range cs {
		if c.Op != device.Read {
			t.Fatal("non-read completion")
		}
		total += c.Blocks
	}
	if total != st.TotalBlocks {
		t.Errorf("blocks served %d != trace %d", total, st.TotalBlocks)
	}
}

func TestOpenArrayDevices(t *testing.T) {
	for _, name := range []string{"array2", "array4"} {
		dev, isDisk, err := openDevice(name)
		if err != nil {
			t.Fatal(err)
		}
		if !isDisk || dev == nil {
			t.Fatalf("%s: isDisk=%v dev=%v", name, isDisk, dev)
		}
		events := generate(dev.Geometry(), 50, 1024*1024, 7)
		cs, err := runTrace(dev, true, "fcfs", events)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != 50 {
			t.Fatalf("%s served %d of 50", name, len(cs))
		}
	}
}

func TestRunExperimentsSuite(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	outA := filepath.Join(dir, "a")
	outB := filepath.Join(dir, "b")
	var log strings.Builder
	if err := runExperiments("table.|besteffort", 5, 1, jsonPath, outA, &log); err != nil {
		t.Fatal(err)
	}
	if err := runExperiments("table.|besteffort", 5, 4, "", outB, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Artifacts are byte-identical regardless of worker count.
	for _, id := range []string{"besteffort", "table1", "table2", "table3"} {
		a, err := os.ReadFile(filepath.Join(outA, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(outB, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s artifact differs between parallel=1 and parallel=4", id)
		}
	}
	var suite experiments.SuiteReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &suite); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if suite.RootSeed != 5 || len(suite.Runs) != 4 {
		t.Errorf("suite = %+v", suite)
	}
	if !strings.Contains(log.String(), "suite: 4 runs, 0 failed") {
		t.Errorf("missing summary line:\n%s", log.String())
	}
	if strings.Count(log.String(), "[") != 4 {
		t.Errorf("want one progress line per run:\n%s", log.String())
	}
}

func TestRunExperimentsBadPattern(t *testing.T) {
	if err := runExperiments("nope99", 1, 1, "", "", io.Discard); err == nil {
		t.Error("unmatched pattern accepted")
	}
}

// scaleOutput runs the scaling scenario and returns (summary text, JSON doc).
func scaleOutput(t *testing.T, shards int) (string, scaleDoc) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scale.json")
	var out strings.Builder
	if err := runScale(512, 128, "100KB", 7, shards, path, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc scaleDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("scale doc not valid JSON: %v", err)
	}
	return out.String(), doc
}

// The merged counters and every summary line except the execution figures
// are byte-identical however many shards run the scenario; the JSON doc
// carries the shard-dependent figures alongside.
func TestRunScaleDeterministicAcrossShards(t *testing.T) {
	out1, doc1 := scaleOutput(t, 1)
	out4, doc4 := scaleOutput(t, 4)

	if doc1.Streams != 512 || doc1.Partitions != 4 || doc1.Shards != 1 {
		t.Errorf("doc = %+v", doc1)
	}
	if doc4.Shards != 4 || len(doc4.Stripes) != 4 {
		t.Errorf("doc = %+v", doc4)
	}
	if doc1.Events != doc4.Events || doc1.Cycles != doc4.Cycles ||
		doc1.Underflows != doc4.Underflows || doc1.SimulatedTime != doc4.SimulatedTime {
		t.Errorf("merged counters differ across shard counts:\n 1: %+v\n 4: %+v", doc1, doc4)
	}
	if doc1.EventsPerSec <= 0 || doc4.AggregateEventsPerSec <= 0 {
		t.Errorf("throughput figures not positive: %+v / %+v", doc1, doc4)
	}
	// All summary lines but the trailing shards= execution line match.
	strip := func(s string) string {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		return strings.Join(lines[:len(lines)-1], "\n")
	}
	if strip(out1) != strip(out4) {
		t.Errorf("deterministic summary differs:\n shards=1:\n%s\n shards=4:\n%s", out1, out4)
	}
	if !strings.Contains(out4, "aggregate_events_per_sec=") {
		t.Errorf("summary missing throughput line:\n%s", out4)
	}
}

func TestRunScaleBadArguments(t *testing.T) {
	if err := runScale(100, 10, "walrus", 1, 1, "", io.Discard); err == nil {
		t.Error("bad -scale-rate accepted")
	}
	if err := runScale(0, 10, "10KB", 1, 1, "", io.Discard); err == nil {
		t.Error("zero stream total accepted")
	}
}
