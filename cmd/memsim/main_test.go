package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memstream/internal/device"
	"memstream/internal/experiments"
	"memstream/internal/trace"
	"memstream/internal/units"
)

func TestOpenDevice(t *testing.T) {
	for _, name := range []string{"g1", "g2", "g3", "futuredisk", "atlas10k3"} {
		dev, isDisk, err := openDevice(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if dev == nil {
			t.Errorf("%s: nil device", name)
		}
		wantDisk := name == "futuredisk" || name == "atlas10k3"
		if isDisk != wantDisk {
			t.Errorf("%s: isDisk = %v", name, isDisk)
		}
	}
	if _, _, err := openDevice("floppy"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestGenerateWithinGeometry(t *testing.T) {
	dev, _, err := openDevice("g3")
	if err != nil {
		t.Fatal(err)
	}
	g := dev.Geometry()
	events := generate(g, 500, 64*units.KB, 1)
	if len(events) != 500 {
		t.Fatalf("events = %d", len(events))
	}
	for _, e := range events {
		if err := g.Validate(e.Request()); err != nil {
			t.Fatalf("generated invalid request: %v", err)
		}
	}
	// Deterministic for a fixed seed.
	again := generate(g, 500, 64*units.KB, 1)
	for i := range events {
		if events[i] != again[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestRunTraceAllPolicies(t *testing.T) {
	for _, name := range []string{"g3", "futuredisk"} {
		for _, policy := range []string{"fcfs", "sptf", "elevator"} {
			dev, _, err := openDevice(name)
			if err != nil {
				t.Fatal(err)
			}
			events := generate(dev.Geometry(), 100, 64*units.KB, 2)
			cs, err := runTrace(dev, name == "futuredisk", policy, events)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, policy, err)
			}
			if len(cs) != len(events) {
				t.Fatalf("%s/%s: served %d of %d", name, policy, len(cs), len(events))
			}
		}
	}
}

func TestTraceRoundTripThroughSim(t *testing.T) {
	dev, _, _ := openDevice("g3")
	events := generate(dev.Geometry(), 50, 32*units.KB, 3)
	st := trace.Summarize(events)
	if st.Events != 50 || st.Reads != 50 {
		t.Fatalf("summary = %+v", st)
	}
	cs, err := runTrace(dev, false, "sptf", events)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range cs {
		if c.Op != device.Read {
			t.Fatal("non-read completion")
		}
		total += c.Blocks
	}
	if total != st.TotalBlocks {
		t.Errorf("blocks served %d != trace %d", total, st.TotalBlocks)
	}
}

func TestOpenArrayDevices(t *testing.T) {
	for _, name := range []string{"array2", "array4"} {
		dev, isDisk, err := openDevice(name)
		if err != nil {
			t.Fatal(err)
		}
		if !isDisk || dev == nil {
			t.Fatalf("%s: isDisk=%v dev=%v", name, isDisk, dev)
		}
		events := generate(dev.Geometry(), 50, 1024*1024, 7)
		cs, err := runTrace(dev, true, "fcfs", events)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != 50 {
			t.Fatalf("%s served %d of 50", name, len(cs))
		}
	}
}

func TestRunExperimentsSuite(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	outA := filepath.Join(dir, "a")
	outB := filepath.Join(dir, "b")
	var log strings.Builder
	if err := runExperiments("table.|besteffort", 5, 1, jsonPath, outA, &log); err != nil {
		t.Fatal(err)
	}
	if err := runExperiments("table.|besteffort", 5, 4, "", outB, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Artifacts are byte-identical regardless of worker count.
	for _, id := range []string{"besteffort", "table1", "table2", "table3"} {
		a, err := os.ReadFile(filepath.Join(outA, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(outB, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s artifact differs between parallel=1 and parallel=4", id)
		}
	}
	var suite experiments.SuiteReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &suite); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if suite.RootSeed != 5 || len(suite.Runs) != 4 {
		t.Errorf("suite = %+v", suite)
	}
	if !strings.Contains(log.String(), "suite: 4 runs, 0 failed") {
		t.Errorf("missing summary line:\n%s", log.String())
	}
	if strings.Count(log.String(), "[") != 4 {
		t.Errorf("want one progress line per run:\n%s", log.String())
	}
}

func TestRunExperimentsBadPattern(t *testing.T) {
	if err := runExperiments("nope99", 1, 1, "", "", io.Discard); err == nil {
		t.Error("unmatched pattern accepted")
	}
}
